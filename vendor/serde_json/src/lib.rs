//! Minimal vendored `serde_json`: [`to_string`] over the vendored
//! `serde::Serialize`, and [`from_str`] into an untyped [`Value`] (the
//! journal readers' path — typed deserialization is not vendored).

use std::collections::BTreeMap;
use std::fmt;

/// Serialization/parse error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde_json: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serializes `value` to a JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.json_write(&mut out);
    Ok(out)
}

/// An untyped JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (kept as f64; journal counters stay exact up to 2^53).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object (sorted keys).
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Member lookup (`None` for non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as f64, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as u64, if numeric and integral.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as &str, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }
}

impl serde::Serialize for Value {
    fn json_write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => b.json_write(out),
            Value::Number(n) => n.json_write(out),
            Value::String(s) => s.json_write(out),
            Value::Array(a) => a.json_write(out),
            Value::Object(m) => {
                out.push('{');
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    k.json_write(out);
                    out.push(':');
                    v.json_write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Parses one JSON document into a [`Value`].
pub fn from_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing bytes at offset {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!("expected '{}' at offset {}", b as char, self.pos)))
        }
    }

    fn eat_lit(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_lit("null") => Ok(Value::Null),
            Some(b't') if self.eat_lit("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_lit("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error(format!("unexpected {other:?} at offset {}", self.pos))),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("bad \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            // Surrogate pairs unsupported (never emitted by
                            // the vendored writer); map them to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        other => return Err(Error(format!("bad escape {other:?}"))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error("invalid utf-8".into()))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>().map(Value::Number).map_err(|_| Error(format!("bad number '{text}'")))
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(out));
        }
        loop {
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(out));
                }
                other => return Err(Error(format!("expected ',' or ']', got {other:?}"))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut out = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            out.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(out));
                }
                other => return Err(Error(format!("expected ',' or '}}', got {other:?}"))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_objects() {
        let src = r#"{"a":1,"b":[true,null,"x\ny"],"c":{"d":1.5e-3}}"#;
        let v = from_str(src).unwrap();
        assert_eq!(v.get("a").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("b").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("c").unwrap().get("d").unwrap().as_f64(), Some(1.5e-3));
        let back = to_string(&v).unwrap();
        assert_eq!(from_str(&back).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str("{").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("12 34").is_err());
    }
}
