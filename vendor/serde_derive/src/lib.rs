//! Minimal vendored `serde_derive`.
//!
//! Supports exactly the shapes this workspace serializes: non-generic
//! structs with named fields and unit-variant enums, plus the
//! `#[serde(skip)]` field attribute. The generated `Serialize` impl writes
//! JSON directly through the vendored `serde::Serialize::json_write`;
//! `Deserialize` is a marker impl (nothing in the workspace deserializes
//! typed values — journals are read back via `serde_json::Value`).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed derive input: item name plus either fields or variants.
struct Item {
    name: String,
    kind: ItemKind,
}

enum ItemKind {
    /// Named struct fields, in declaration order, minus `#[serde(skip)]`.
    Struct(Vec<String>),
    /// Unit enum variants.
    Enum(Vec<String>),
}

/// Returns whether an attribute token group means `#[serde(skip)]`.
fn is_serde_skip(group: &proc_macro::Group) -> bool {
    let mut toks = group.stream().into_iter();
    match (toks.next(), toks.next()) {
        (Some(TokenTree::Ident(i)), Some(TokenTree::Group(inner))) => {
            i.to_string() == "serde"
                && inner
                    .stream()
                    .into_iter()
                    .any(|t| matches!(&t, TokenTree::Ident(i) if i.to_string() == "skip"))
        }
        _ => false,
    }
}

fn parse_item(input: TokenStream) -> Item {
    let mut toks = input.into_iter().peekable();
    // Skip outer attributes and visibility.
    let mut kind_word = String::new();
    while let Some(t) = toks.next() {
        match t {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                toks.next(); // the [...] group
            }
            TokenTree::Ident(i) => {
                let s = i.to_string();
                if s == "pub" {
                    if matches!(toks.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                    {
                        toks.next();
                    }
                } else if s == "struct" || s == "enum" {
                    kind_word = s;
                    break;
                }
            }
            _ => {}
        }
    }
    let name = match toks.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde_derive: expected item name, got {other:?}"),
    };
    let body = loop {
        match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g,
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                panic!("vendored serde_derive does not support generic types ({name})")
            }
            Some(_) => continue,
            None => panic!("serde_derive: no braced body on {name} (tuple/unit items unsupported)"),
        }
    };

    if kind_word == "struct" {
        Item { name, kind: ItemKind::Struct(parse_named_fields(body.stream())) }
    } else {
        Item { name, kind: ItemKind::Enum(parse_unit_variants(body.stream())) }
    }
}

fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut toks = body.into_iter().peekable();
    loop {
        // One field: attrs, visibility, name, ':', type, ','.
        let mut skip = false;
        let name = loop {
            match toks.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    if let Some(TokenTree::Group(g)) = toks.next() {
                        skip |= is_serde_skip(&g);
                    }
                }
                Some(TokenTree::Ident(i)) if i.to_string() == "pub" => {
                    if matches!(toks.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                    {
                        toks.next();
                    }
                }
                Some(TokenTree::Ident(i)) => break i.to_string(),
                Some(other) => panic!("serde_derive: unexpected token in fields: {other}"),
                None => return fields,
            }
        };
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive: expected ':' after field {name}, got {other:?}"),
        }
        // Consume the type: everything up to a ',' at angle-bracket depth 0.
        let mut depth = 0i32;
        loop {
            match toks.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => depth += 1,
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => depth -= 1,
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && depth == 0 => break,
                Some(_) => {}
                None => break,
            }
        }
        if !skip {
            fields.push(name);
        }
    }
}

fn parse_unit_variants(body: TokenStream) -> Vec<String> {
    let mut variants = Vec::new();
    let mut toks = body.into_iter();
    while let Some(t) = toks.next() {
        match t {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                toks.next();
            }
            TokenTree::Ident(i) => variants.push(i.to_string()),
            TokenTree::Punct(p) if p.as_char() == ',' => {}
            TokenTree::Group(_) => {
                panic!("vendored serde_derive supports unit enum variants only")
            }
            other => panic!("serde_derive: unexpected token in enum body: {other}"),
        }
    }
    variants
}

/// Derives the vendored `serde::Serialize` (direct JSON writing).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::Struct(fields) => {
            let mut code = String::from("out.push('{');\n");
            for (i, f) in fields.iter().enumerate() {
                if i > 0 {
                    code.push_str("out.push(',');\n");
                }
                code.push_str(&format!(
                    "out.push_str(\"\\\"{f}\\\":\");\nserde::Serialize::json_write(&self.{f}, out);\n"
                ));
            }
            code.push_str("out.push('}');");
            code
        }
        ItemKind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("{name}::{v} => out.push_str(\"\\\"{v}\\\"\"),"))
                .collect();
            format!("match self {{ {} }}", arms.join("\n"))
        }
    };
    format!(
        "impl serde::Serialize for {name} {{\n\
         fn json_write(&self, out: &mut String) {{\n{body}\n}}\n}}"
    )
    .parse()
    .expect("serde_derive: generated Serialize impl parses")
}

/// Derives the vendored `serde::Deserialize` marker.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    format!("impl<'de> serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .expect("serde_derive: generated Deserialize impl parses")
}
