//! Minimal vendored `serde`.
//!
//! The real serde separates data model from format; this workspace only
//! ever serializes to JSON (JSONL journals and measurement lines), so the
//! vendored [`Serialize`] writes JSON text directly. The derive macro
//! (re-exported from the vendored `serde_derive`) supports named-field
//! structs, unit enums, and `#[serde(skip)]`. [`Deserialize`] is a marker
//! trait — readers parse into `serde_json::Value` instead.

pub use serde_derive::{Deserialize, Serialize};

/// Serialize `self` as JSON text.
pub trait Serialize {
    /// Appends the JSON encoding of `self` to `out`.
    fn json_write(&self, out: &mut String);
}

/// Marker for types the real serde could deserialize (vendored readers go
/// through `serde_json::Value`).
pub trait Deserialize<'de>: Sized {}

/// Escapes and appends a JSON string literal.
pub fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

macro_rules! impl_serialize_int {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn json_write(&self, out: &mut String) {
                out.push_str(&self.to_string());
            }
        }
    )*};
}

impl_serialize_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

impl Serialize for bool {
    fn json_write(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

impl Serialize for f64 {
    fn json_write(&self, out: &mut String) {
        if self.is_finite() {
            // `{:?}` prints the shortest representation that round-trips;
            // its exponent form (`1e-7`) is valid JSON.
            out.push_str(&format!("{self:?}"));
        } else {
            // JSON has no NaN/Inf; mirror serde_json's lossy `null`.
            out.push_str("null");
        }
    }
}

impl Serialize for f32 {
    fn json_write(&self, out: &mut String) {
        (*self as f64).json_write(out)
    }
}

impl Serialize for str {
    fn json_write(&self, out: &mut String) {
        write_json_string(self, out);
    }
}

impl Serialize for String {
    fn json_write(&self, out: &mut String) {
        write_json_string(self, out);
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn json_write(&self, out: &mut String) {
        (**self).json_write(out)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn json_write(&self, out: &mut String) {
        match self {
            Some(v) => v.json_write(out),
            None => out.push_str("null"),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn json_write(&self, out: &mut String) {
        out.push('[');
        for (i, v) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            v.json_write(out);
        }
        out.push(']');
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn json_write(&self, out: &mut String) {
        self.as_slice().json_write(out)
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn json_write(&self, out: &mut String) {
        self.as_slice().json_write(out)
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn json_write(&self, out: &mut String) {
        out.push('[');
        self.0.json_write(out);
        out.push(',');
        self.1.json_write(out);
        out.push(']');
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn json_write(&self, out: &mut String) {
        out.push('[');
        self.0.json_write(out);
        out.push(',');
        self.1.json_write(out);
        out.push(',');
        self.2.json_write(out);
        out.push(']');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn json<T: Serialize>(v: T) -> String {
        let mut s = String::new();
        v.json_write(&mut s);
        s
    }

    #[test]
    fn primitives_encode() {
        assert_eq!(json(42u64), "42");
        assert_eq!(json(-3i32), "-3");
        assert_eq!(json(true), "true");
        assert_eq!(json(1.5f64), "1.5");
        assert_eq!(json(f64::NAN), "null");
        assert_eq!(json("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(json(vec![1u32, 2, 3]), "[1,2,3]");
        assert_eq!(json((1u32, "x")), "[1,\"x\"]");
        assert_eq!(json(Option::<u32>::None), "null");
    }
}
