//! Minimal vendored `rand_chacha`: a genuine ChaCha block function driving
//! [`rand::RngCore`]. Deterministic and statistically strong; **not**
//! stream-compatible with the crates.io implementation (which this
//! workspace never relies on — only on determinism per seed).

use rand::{RngCore, SeedableRng};

/// ChaCha with `R` double-rounds (8 rounds ⇒ `R = 4`).
#[derive(Clone, Debug)]
pub struct ChaChaRng<const R: usize> {
    /// Key + constants + counter + nonce state (RFC 7539 layout).
    state: [u32; 16],
    /// Current keystream block.
    buf: [u32; 16],
    /// Next unread word of `buf` (16 = exhausted).
    idx: usize,
}

/// The 8-round variant (what the workspace seeds workloads with).
pub type ChaCha8Rng = ChaChaRng<4>;
/// The 12-round variant.
pub type ChaCha12Rng = ChaChaRng<6>;
/// The 20-round variant.
pub type ChaCha20Rng = ChaChaRng<10>;

#[inline(always)]
fn quarter(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl<const R: usize> ChaChaRng<R> {
    fn refill(&mut self) {
        let mut w = self.state;
        for _ in 0..R {
            // Column round.
            quarter(&mut w, 0, 4, 8, 12);
            quarter(&mut w, 1, 5, 9, 13);
            quarter(&mut w, 2, 6, 10, 14);
            quarter(&mut w, 3, 7, 11, 15);
            // Diagonal round.
            quarter(&mut w, 0, 5, 10, 15);
            quarter(&mut w, 1, 6, 11, 12);
            quarter(&mut w, 2, 7, 8, 13);
            quarter(&mut w, 3, 4, 9, 14);
        }
        for (b, (wi, si)) in self.buf.iter_mut().zip(w.iter().zip(&self.state)) {
            *b = wi.wrapping_add(*si);
        }
        // 64-bit block counter in words 12..14.
        let ctr = (self.state[12] as u64 | ((self.state[13] as u64) << 32)).wrapping_add(1);
        self.state[12] = ctr as u32;
        self.state[13] = (ctr >> 32) as u32;
        self.idx = 0;
    }
}

impl<const R: usize> SeedableRng for ChaChaRng<R> {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u32; 16];
        // "expand 32-byte k" constants.
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for i in 0..8 {
            state[4 + i] = u32::from_le_bytes(seed[4 * i..4 * i + 4].try_into().unwrap());
        }
        // Counter and nonce start at zero.
        Self { state, buf: [0; 16], idx: 16 }
    }
}

impl<const R: usize> RngCore for ChaChaRng<R> {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn chacha20_matches_rfc7539_block_one() {
        // RFC 7539 §2.3.2 test vector: key 00.01...1f, nonce
        // 00:00:00:09:00:00:00:4a:00:00:00:00, counter 1. Our nonce is
        // fixed at zero, so patch state directly to check the block fn.
        let mut key = [0u8; 32];
        for (i, b) in key.iter_mut().enumerate() {
            *b = i as u8;
        }
        let mut rng = ChaCha20Rng::from_seed(key);
        rng.state[12] = 1;
        rng.state[13] = 0x0900_0000;
        rng.state[14] = 0x4a00_0000;
        rng.state[15] = 0;
        rng.refill();
        assert_eq!(rng.buf[0], 0xe4e7_f110);
        assert_eq!(rng.buf[15], 0x4e3c_50a2);
    }

    #[test]
    fn uniform_range_sanity() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut counts = [0u32; 10];
        for _ in 0..10_000 {
            counts[rng.random_range(0..10usize)] += 1;
        }
        for c in counts {
            assert!((700..1300).contains(&c), "suspiciously non-uniform: {counts:?}");
        }
    }
}
