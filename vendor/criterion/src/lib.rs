//! Minimal vendored `criterion`.
//!
//! Provides the API subset the workspace benches use — benchmark groups,
//! `bench_function`, `iter`, `iter_batched`, throughput annotation — backed
//! by a plain wall-clock timing loop (median of `sample_size` samples, with
//! a short warmup). No statistical analysis, plots, or baselines; good
//! enough to compare before/after within one machine, which is all the
//! benches are used for here.

use std::time::{Duration, Instant};

/// Opaque value barrier (prevents const-folding the benchmarked input).
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation attached to a group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// How `iter_batched` amortizes setup.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// One setup per iteration (large inputs).
    LargeInput,
    /// Small batches (treated identically here).
    SmallInput,
    /// Per-iteration setup (treated identically here).
    PerIteration,
}

/// A benchmark identifier (`group/function/parameter`).
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter display.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function.into(), parameter) }
    }

    /// An id from a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

/// Anything usable as a `bench_function` id.
pub trait IntoBenchmarkId {
    /// The display id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// The timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, once per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup.
        black_box(routine());
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
        }
    }

    /// Times `routine` over fresh inputs from `setup` (setup untimed).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        for _ in 0..self.sample_size {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.samples.push(t0.elapsed());
        }
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the number of timed samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotates per-iteration throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { samples: Vec::new(), sample_size: self.sample_size };
        f(&mut b);
        b.samples.sort_unstable();
        let median = b.samples.get(b.samples.len() / 2).copied().unwrap_or_default();
        let label = format!("{}/{}", self.name, id.into_id());
        match self.throughput {
            Some(Throughput::Elements(n)) if median > Duration::ZERO => {
                let rate = n as f64 / median.as_secs_f64();
                println!("{label:<50} {median:>12.3?}/iter  {rate:>14.0} elem/s");
            }
            Some(Throughput::Bytes(n)) if median > Duration::ZERO => {
                let rate = n as f64 / median.as_secs_f64() / (1 << 20) as f64;
                println!("{label:<50} {median:>12.3?}/iter  {rate:>10.1} MiB/s");
            }
            _ => println!("{label:<50} {median:>12.3?}/iter"),
        }
        self
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== group {name}");
        BenchmarkGroup { name, sample_size: 20, throughput: None, _criterion: self }
    }

    /// Runs an ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Declares a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_api_runs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(2);
        g.throughput(Throughput::Elements(100));
        let mut runs = 0u32;
        g.bench_function("noop", |b| b.iter(|| runs += 1));
        g.bench_function(BenchmarkId::new("id", 7), |b| {
            b.iter_batched(|| 5u64, |x| x * 2, BatchSize::LargeInput)
        });
        g.finish();
        assert!(runs >= 2);
    }
}
