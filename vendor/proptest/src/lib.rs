//! Minimal vendored `proptest`.
//!
//! Implements the subset of the real crate this workspace's property tests
//! use: the [`Strategy`] trait with `prop_map`, range and tuple strategies,
//! [`collection::vec`], [`bool::ANY`], [`ProptestConfig::with_cases`], and
//! the [`proptest!`] macro. Cases are generated uniformly at random from a
//! seed derived from the test name, so runs are deterministic; there is no
//! shrinking — the failing case index and a replay seed are printed
//! instead.

/// Deterministic case-generation RNG (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng(u64);

impl TestRng {
    /// Seeds directly.
    pub fn new(seed: u64) -> Self {
        TestRng(seed)
    }

    /// Derives the RNG for `case` of the test named `name`.
    pub fn for_case(name: &str, case: u64) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng(h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, span)`; `span > 0`.
    pub fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        // Rejection from the widened multiply (Lemire).
        let t = span.wrapping_neg() % span;
        loop {
            let m = (self.next_u64() as u128) * (span as u128);
            if (m as u64) >= t {
                return (m >> 64) as u64;
            }
        }
    }
}

/// Test-runner configuration.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy producing one fixed value (used for constants in tuples).
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span + 1) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

pub mod bool {
    //! Boolean strategies.
    use super::{Strategy, TestRng};

    /// Uniform over `{false, true}`.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// The uniform boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod collection {
    //! Collection strategies.
    use super::{Strategy, TestRng};

    /// Length specification for [`vec()`](vec()).
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        /// Inclusive upper bound.
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec length range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    /// A strategy for `Vec<S::Value>` with length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: SizeRange,
    }

    /// Generates vectors of `element` values.
    pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, len: len.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.lo + rng.below((self.len.hi - self.len.lo + 1) as u64) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! `use proptest::prelude::*;`
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Just, ProptestConfig, Strategy, TestRng};
}

/// Asserts inside a property (plain assert in the vendored runner).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with ($cfg) $($rest)*);
    };
    (@with ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                for __case in 0..cfg.cases as u64 {
                    let mut __rng = $crate::TestRng::for_case(stringify!($name), __case);
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    let __run = || $body;
                    __run();
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn square() -> impl Strategy<Value = u64> {
        (0u64..1000).prop_map(|x| x * x)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 10u32..20, y in 0usize..=5) {
            prop_assert!((10..20).contains(&x));
            prop_assert!(y <= 5);
        }

        #[test]
        fn vec_lengths_respect_bounds(v in crate::collection::vec(0u8..10, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&b| b < 10));
        }

        #[test]
        fn mapped_strategies_apply(sq in square(), flag in crate::bool::ANY) {
            let root = (sq as f64).sqrt().round() as u64;
            prop_assert_eq!(root * root, sq);
            let _ = flag;
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let a: Vec<u64> = {
            let mut r = TestRng::for_case("t", 3);
            (0..5).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = TestRng::for_case("t", 3);
            (0..5).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
    }
}
