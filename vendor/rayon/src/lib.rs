//! Minimal vendored `rayon` facade.
//!
//! Exposes the API subset this workspace uses — [`join`], `par_iter`,
//! `par_iter_mut`, `into_par_iter`, `par_sort_unstable_by_key`, `map_init` —
//! with **identical semantics but sequential std-iterator execution** (plus
//! a bounded thread budget for `join`, which degrades to sequential on
//! single-core hosts). All simulation *accounting* in this workspace is
//! deterministic by design and never depends on scheduling, so swapping the
//! real rayon back in changes wall-clock time only.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

fn thread_budget() -> &'static AtomicUsize {
    static BUDGET: OnceLock<AtomicUsize> = OnceLock::new();
    BUDGET.get_or_init(|| {
        let n = std::thread::available_parallelism().map_or(1, |n| n.get());
        AtomicUsize::new(n.saturating_sub(1))
    })
}

fn try_acquire_thread() -> bool {
    let b = thread_budget();
    let mut cur = b.load(Ordering::Relaxed);
    while cur > 0 {
        match b.compare_exchange_weak(cur, cur - 1, Ordering::Acquire, Ordering::Relaxed) {
            Ok(_) => return true,
            Err(c) => cur = c,
        }
    }
    false
}

fn release_thread() {
    thread_budget().fetch_add(1, Ordering::Release);
}

/// Runs both closures, potentially in parallel (bounded by the machine's
/// core count), and returns both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if try_acquire_thread() {
        let out = std::thread::scope(|s| {
            let hb = s.spawn(b);
            let ra = a();
            (ra, hb.join())
        });
        release_thread();
        match out {
            (ra, Ok(rb)) => (ra, rb),
            (_, Err(p)) => std::panic::resume_unwind(p),
        }
    } else {
        (a(), b())
    }
}

/// Number of threads the facade may use.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

pub mod prelude {
    //! `use rayon::prelude::*;` — parallel-iterator entry points.

    /// `par_iter`/`par_iter_mut` over slices (and anything derefing to one).
    pub trait ParallelSlice<T> {
        /// Parallel shared iteration (sequential in this facade).
        fn par_iter(&self) -> std::slice::Iter<'_, T>;
        /// Parallel exclusive iteration (sequential in this facade).
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T>;
    }

    impl<T> ParallelSlice<T> for [T] {
        #[inline]
        fn par_iter(&self) -> std::slice::Iter<'_, T> {
            self.iter()
        }
        #[inline]
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
            self.iter_mut()
        }
    }

    /// `into_par_iter` over owning collections and ranges.
    pub trait IntoParallelIterator {
        /// Element type.
        type Item;
        /// Underlying iterator type.
        type Iter: Iterator<Item = Self::Item>;
        /// Consumes `self` into a (sequential) "parallel" iterator.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<T> IntoParallelIterator for Vec<T> {
        type Item = T;
        type Iter = std::vec::IntoIter<T>;
        #[inline]
        fn into_par_iter(self) -> Self::Iter {
            self.into_iter()
        }
    }

    impl<T> IntoParallelIterator for std::ops::Range<T>
    where
        std::ops::Range<T>: Iterator<Item = T>,
    {
        type Item = T;
        type Iter = std::ops::Range<T>;
        #[inline]
        fn into_par_iter(self) -> Self::Iter {
            self
        }
    }

    /// Rayon-specific adaptors missing from `std::iter::Iterator`.
    pub trait ParallelIteratorExt: Iterator + Sized {
        /// Maps with a per-worker scratch value built by `init` (one worker
        /// here, so `init` runs once).
        #[inline]
        fn map_init<I, S, F, R>(self, init: I, mut f: F) -> impl Iterator<Item = R>
        where
            I: Fn() -> S,
            F: FnMut(&mut S, Self::Item) -> R,
        {
            let mut scratch = init();
            self.map(move |item| f(&mut scratch, item))
        }

        /// Hint ignored by the sequential facade.
        #[inline]
        fn with_min_len(self, _len: usize) -> Self {
            self
        }
    }

    impl<I: Iterator> ParallelIteratorExt for I {}

    /// Parallel in-place sorts (sequential in this facade).
    pub trait ParallelSliceSort<T> {
        /// Unstable sort by key.
        fn par_sort_unstable_by_key<K: Ord, F: FnMut(&T) -> K>(&mut self, f: F);
        /// Unstable sort by comparator.
        fn par_sort_unstable_by<F: FnMut(&T, &T) -> std::cmp::Ordering>(&mut self, f: F);
        /// Unstable natural-order sort.
        fn par_sort_unstable(&mut self)
        where
            T: Ord;
    }

    impl<T> ParallelSliceSort<T> for [T] {
        #[inline]
        fn par_sort_unstable_by_key<K: Ord, F: FnMut(&T) -> K>(&mut self, f: F) {
            self.sort_unstable_by_key(f)
        }
        #[inline]
        fn par_sort_unstable_by<F: FnMut(&T, &T) -> std::cmp::Ordering>(&mut self, f: F) {
            self.sort_unstable_by(f)
        }
        #[inline]
        fn par_sort_unstable(&mut self)
        where
            T: Ord,
        {
            self.sort_unstable()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn join_returns_both_results() {
        let (a, b) = super::join(|| 2 + 2, || "ok");
        assert_eq!((a, b), (4, "ok"));
    }

    #[test]
    fn nested_join_does_not_deadlock() {
        fn sum(lo: u64, hi: u64) -> u64 {
            if hi - lo < 100 {
                (lo..hi).sum()
            } else {
                let mid = lo + (hi - lo) / 2;
                let (a, b) = super::join(|| sum(lo, mid), || sum(mid, hi));
                a + b
            }
        }
        assert_eq!(sum(0, 10_000), (0..10_000u64).sum());
    }

    #[test]
    fn par_iter_chain_compiles_and_agrees() {
        let v = vec![1u64, 2, 3, 4];
        let doubled: Vec<u64> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
        let mut sorted = [(3, 'c'), (1, 'a'), (2, 'b')];
        sorted.par_sort_unstable_by_key(|(k, _)| *k);
        assert_eq!(sorted[0].1, 'a');
        let with_scratch: Vec<u64> = v.into_par_iter().map_init(|| 10u64, |s, x| *s + x).collect();
        assert_eq!(with_scratch, vec![11, 12, 13, 14]);
    }
}
