//! Minimal vendored `rayon` with a real work-stealing executor.
//!
//! Exposes the API subset this workspace uses — [`join`], `par_iter`,
//! `par_iter_mut`, `into_par_iter`, `par_sort_unstable_by_key`, `map_init`,
//! [`ThreadPool`], [`ThreadPoolBuilder`] — executing on a bounded
//! work-stealing thread pool (per-worker LIFO deques, FIFO injector,
//! steal-while-waiting `join`, see the private `registry` module).
//!
//! **Determinism contract.** Parallelism changes wall-clock time only:
//! `collect` writes each item into the output slot of its *input index*
//! (never completion order), `join` returns `(a, b)` positionally, and the
//! parallel sorts pick every boundary from the data alone — so with pure
//! per-item closures, results are bit-identical at any thread count,
//! including 1. `tests/parallel_determinism.rs` at the workspace root holds
//! the whole simulator to exactly this.
//!
//! Thread count: [`ThreadPoolBuilder::build_global`] (the bench harness's
//! `--threads` flag), else `RAYON_NUM_THREADS`, else available parallelism.
//! Tests comparing schedules use explicit [`ThreadPool`]s and
//! [`ThreadPool::install`].

mod iter;
mod registry;
mod sort;

use registry::Registry;
use std::sync::Arc;

/// Runs both closures, in parallel when a worker is free, and returns both
/// results positionally. Panics in either closure propagate after *both*
/// have resolved; the job budget is restored by RAII even on unwind.
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    match registry::current_worker() {
        Some((index, reg)) => {
            // Safety: a worker's registry outlives every frame on its stack.
            let reg = unsafe { &*reg };
            registry::join_in_worker(reg, index, oper_a, oper_b)
        }
        None => {
            let reg = Arc::clone(registry::global_registry());
            registry::in_registry(&reg, move || join(oper_a, oper_b))
        }
    }
}

/// Number of threads in the current pool: the pool this thread belongs to
/// when called from inside [`ThreadPool::install`], else the global pool
/// (building it on first use).
pub fn current_num_threads() -> usize {
    match registry::current_worker() {
        // Safety: a worker's registry outlives every frame on its stack.
        Some((_, reg)) => unsafe { (*reg).n_threads },
        None => registry::global_registry().n_threads,
    }
}

/// Jobs pushed but not yet finished in the current (or global) pool. Zero
/// when quiescent — the executor regression tests assert the budget is
/// restored even after panicking jobs.
pub fn debug_outstanding_jobs() -> usize {
    match registry::current_worker() {
        // Safety: as in [`current_num_threads`].
        Some((_, reg)) => unsafe { (*reg).outstanding_jobs() },
        None => registry::global_registry().outstanding_jobs(),
    }
}

/// Configures the global pool before first use.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

/// Error from [`ThreadPoolBuilder::build_global`]: the global pool already
/// exists (some parallel work already ran, or it was built twice).
#[derive(Debug)]
pub struct GlobalPoolAlreadyBuilt;

impl std::fmt::Display for GlobalPoolAlreadyBuilt {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "the global thread pool has already been initialized")
    }
}

impl std::error::Error for GlobalPoolAlreadyBuilt {}

impl ThreadPoolBuilder {
    /// An unconfigured builder (thread count from `RAYON_NUM_THREADS`, else
    /// the machine).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker count explicitly (`0` keeps the default).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = if n == 0 { None } else { Some(n) };
        self
    }

    /// Installs the configuration as the process-global pool.
    pub fn build_global(self) -> Result<(), GlobalPoolAlreadyBuilt> {
        match self.num_threads {
            // Nothing to pin down — the lazy default already honours the
            // environment.
            None => Ok(()),
            Some(n) => registry::init_global(n).map_err(|()| GlobalPoolAlreadyBuilt),
        }
    }
}

/// An explicitly sized pool, independent of the global one. Used by the
/// determinism tests to run identical workloads at 1, 2, and 8 threads
/// within a single process.
pub struct ThreadPool {
    registry: Arc<Registry>,
}

impl ThreadPool {
    /// Builds a pool with `num_threads` workers (min 1).
    pub fn new(num_threads: usize) -> Self {
        Self { registry: Registry::new(num_threads) }
    }

    /// Runs `op` inside this pool: every `join`/`par_iter` reached from it
    /// schedules on this pool's workers. Blocks until `op` returns.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R + Send,
        R: Send,
    {
        registry::in_registry(&self.registry, op)
    }

    /// This pool's worker count.
    pub fn current_num_threads(&self) -> usize {
        self.registry.n_threads
    }

    /// Jobs pushed but not yet finished on this pool (see
    /// [`debug_outstanding_jobs`]).
    pub fn outstanding_jobs(&self) -> usize {
        self.registry.outstanding_jobs()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Workers drain remaining queues, then exit and release their Arcs.
        self.registry.terminate();
    }
}

pub mod prelude {
    //! `use rayon::prelude::*;` — parallel-iterator entry points.
    pub use crate::iter::{
        FromParallelIterator, IntoParallelIterator, ParallelIterator, ParallelSlice, Producer,
    };
    pub use crate::sort::ParallelSliceSort;
}

pub use iter::{
    ChunksParIter, ChunksParIterMut, Enumerate, IntoParallelIterator, Map, MapInit, MinLen,
    ParallelIterator, ParallelSlice, Producer, RangeParIter, SliceParIter, SliceParIterMut,
    VecParIter, Zip,
};
pub use sort::ParallelSliceSort;

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_chunks_zip_for_each_writes_every_slot() {
        let src: Vec<u64> = (0..10_007).collect();
        let mut dst = vec![0u64; src.len()];
        dst.par_chunks_mut(64).zip(src.par_chunks(64)).for_each(|(d, s)| {
            for (a, b) in d.iter_mut().zip(s) {
                *a = b * 3;
            }
        });
        assert!(dst.iter().zip(&src).all(|(a, b)| *a == b * 3));
    }

    #[test]
    fn join_returns_both_results() {
        let (a, b) = super::join(|| 2 + 2, || "ok");
        assert_eq!((a, b), (4, "ok"));
    }

    #[test]
    fn nested_join_does_not_deadlock() {
        fn sum(lo: u64, hi: u64) -> u64 {
            if hi - lo < 100 {
                (lo..hi).sum()
            } else {
                let mid = lo + (hi - lo) / 2;
                let (a, b) = super::join(|| sum(lo, mid), || sum(mid, hi));
                a + b
            }
        }
        assert_eq!(sum(0, 10_000), (0..10_000u64).sum());
    }

    #[test]
    fn par_iter_chain_compiles_and_agrees() {
        let v = vec![1u64, 2, 3, 4];
        let doubled: Vec<u64> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
        let mut sorted = [(3, 'c'), (1, 'a'), (2, 'b')];
        sorted.par_sort_unstable_by_key(|(k, _)| *k);
        assert_eq!(sorted[0].1, 'a');
        let with_scratch: Vec<u64> = v.into_par_iter().map_init(|| 10u64, |s, x| *s + x).collect();
        assert_eq!(with_scratch, vec![11, 12, 13, 14]);
    }

    #[test]
    fn collect_preserves_input_order_at_scale() {
        let n = 100_000usize;
        let v: Vec<usize> = (0..n).collect();
        let out: Vec<usize> = v.par_iter().map(|&x| x * 3).collect();
        assert!(out.iter().enumerate().all(|(i, &x)| x == i * 3));
    }

    #[test]
    fn par_iter_mut_zip_enumerate_matches_sequential() {
        let mut state = vec![0u64; 10_000];
        let tasks: Vec<u64> = (0..10_000u64).rev().collect();
        let replies: Vec<u64> = state
            .par_iter_mut()
            .zip(tasks.into_par_iter())
            .enumerate()
            .map(|(i, (s, t))| {
                *s = t;
                i as u64 + t
            })
            .collect();
        assert!(replies.iter().all(|&r| r == 9_999));
        assert_eq!(state[0], 9_999);
        assert_eq!(state[9_999], 0);
    }

    #[test]
    fn par_sort_matches_std_sort_with_duplicates() {
        let mut a: Vec<u64> =
            (0..50_000u64).map(|i| i.wrapping_mul(0x9E3779B97F4A7C15) % 997).collect();
        let mut b = a.clone();
        a.par_sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn par_sort_by_key_is_thread_count_invariant() {
        let data: Vec<(u64, u64)> =
            (0..30_000u64).map(|i| (i.wrapping_mul(0x2545F4914F6CDD1D) % 251, i)).collect();
        let sort = || {
            let mut v = data.clone();
            v.par_sort_unstable_by_key(|&(k, x)| (k, x));
            v
        };
        let one = super::ThreadPool::new(1).install(sort);
        let four = super::ThreadPool::new(4).install(sort);
        assert_eq!(one, four);
    }

    #[test]
    fn install_runs_on_the_pool() {
        let pool = super::ThreadPool::new(3);
        let inside = pool.install(super::current_num_threads);
        assert_eq!(inside, 3);
        assert_eq!(pool.outstanding_jobs(), 0);
    }
}
