//! Parallel unstable sorts with a thread-count-invariant result.
//!
//! Algorithm: recursive halving down to a fixed cutoff (`sort_unstable_by`
//! per leaf), then parallel two-way merges that split on a pivot with binary
//! search. Every boundary — leaf cutoffs, merge pivots, tie placement —
//! depends only on the *data*, never on the pool size, so the output is a
//! deterministic function of the input at any thread count. Ties always take
//! the left run first, which makes the merge phase stable even though leaf
//! sorts are not.
//!
//! The merge moves elements bitwise through a `MaybeUninit` buffer. No user
//! code runs while elements are logically duplicated between slice and
//! buffer (comparator calls happen before each move, copies back are plain
//! `memcpy`), so a panicking comparator unwinds with the source slice still
//! fully initialized — buffered copies leak, nothing double-drops.

use crate::join;
use std::cmp::Ordering;
use std::mem::MaybeUninit;

/// Below this many elements a leaf sorts sequentially.
const SEQ_SORT_CUTOFF: usize = 4096;
/// Below this many elements a merge runs sequentially.
const SEQ_MERGE_CUTOFF: usize = 4096;

/// Parallel in-place unstable sorts over slices.
pub trait ParallelSliceSort<T> {
    /// Unstable parallel sort by key.
    fn par_sort_unstable_by_key<K: Ord, F: Fn(&T) -> K + Sync>(&mut self, f: F);
    /// Unstable parallel sort by comparator.
    fn par_sort_unstable_by<F: Fn(&T, &T) -> Ordering + Sync>(&mut self, f: F);
    /// Unstable parallel natural-order sort.
    fn par_sort_unstable(&mut self)
    where
        T: Ord;
}

impl<T: Send + Sync> ParallelSliceSort<T> for [T] {
    fn par_sort_unstable_by_key<K: Ord, F: Fn(&T) -> K + Sync>(&mut self, f: F) {
        par_sort_by(self, &|a, b| f(a).cmp(&f(b)));
    }
    fn par_sort_unstable_by<F: Fn(&T, &T) -> Ordering + Sync>(&mut self, f: F) {
        par_sort_by(self, &f);
    }
    fn par_sort_unstable(&mut self)
    where
        T: Ord,
    {
        par_sort_by(self, &T::cmp);
    }
}

fn par_sort_by<T: Send + Sync, C: Fn(&T, &T) -> Ordering + Sync>(v: &mut [T], cmp: &C) {
    if v.len() <= SEQ_SORT_CUTOFF {
        v.sort_unstable_by(|a, b| cmp(a, b));
        return;
    }
    let len = v.len();
    let mut buf: Vec<MaybeUninit<T>> = Vec::with_capacity(len);
    buf.resize_with(len, MaybeUninit::uninit);
    sort_rec(v, &mut buf, cmp);
    // `buf` holds bitwise copies already moved back into `v`; dropping the
    // Vec frees the allocation without dropping elements.
}

fn sort_rec<T: Send + Sync, C: Fn(&T, &T) -> Ordering + Sync>(
    v: &mut [T],
    buf: &mut [MaybeUninit<T>],
    cmp: &C,
) {
    if v.len() <= SEQ_SORT_CUTOFF {
        v.sort_unstable_by(|a, b| cmp(a, b));
        return;
    }
    let mid = v.len() / 2;
    {
        let (vl, vr) = v.split_at_mut(mid);
        let (bl, br) = buf.split_at_mut(mid);
        join(|| sort_rec(vl, bl, cmp), || sort_rec(vr, br, cmp));
    }
    {
        let (a, b) = v.split_at(mid);
        par_merge(a, b, buf, cmp);
    }
    // Safety: the merge wrote all `v.len()` slots of `buf`; this moves them
    // back over the originals in one memcpy (no user code in between).
    unsafe {
        std::ptr::copy_nonoverlapping(buf.as_ptr() as *const T, v.as_mut_ptr(), v.len());
    }
}

/// Merges sorted runs `a` and `b` into `out`, ties taking `a` first. Large
/// merges split around a pivot so both halves proceed in parallel.
fn par_merge<T: Send + Sync, C: Fn(&T, &T) -> Ordering + Sync>(
    a: &[T],
    b: &[T],
    out: &mut [MaybeUninit<T>],
    cmp: &C,
) {
    debug_assert_eq!(a.len() + b.len(), out.len());
    if out.len() <= SEQ_MERGE_CUTOFF {
        seq_merge(a, b, out, cmp);
        return;
    }
    let (am, bm) = if a.len() >= b.len() {
        // Pivot a[am] goes right; strictly-smaller b elements go left, so
        // b's equals stay right of every equal a element.
        let am = a.len() / 2;
        let bm = b.partition_point(|x| cmp(x, &a[am]) == Ordering::Less);
        (am, bm)
    } else {
        // Pivot b[bm] goes right; a elements ≤ pivot go left — same
        // "a wins ties" rule as the sequential merge.
        let bm = b.len() / 2;
        let am = a.partition_point(|x| cmp(x, &b[bm]) != Ordering::Greater);
        (am, bm)
    };
    let (al, ar) = a.split_at(am);
    let (bl, br) = b.split_at(bm);
    let (ol, or_) = out.split_at_mut(am + bm);
    join(|| par_merge(al, bl, ol, cmp), || par_merge(ar, br, or_, cmp));
}

fn seq_merge<T, C: Fn(&T, &T) -> Ordering + Sync>(
    a: &[T],
    b: &[T],
    out: &mut [MaybeUninit<T>],
    cmp: &C,
) {
    let (mut i, mut j) = (0, 0);
    for slot in out.iter_mut() {
        let take_a = if i == a.len() {
            false
        } else if j == b.len() {
            true
        } else {
            cmp(&a[i], &b[j]) != Ordering::Greater
        };
        let src = if take_a {
            let s = &a[i];
            i += 1;
            s
        } else {
            let s = &b[j];
            j += 1;
            s
        };
        // Safety: a bitwise move into the buffer; the original slot is
        // overwritten by the copy-back in `sort_rec` before anything could
        // drop it twice.
        slot.write(unsafe { std::ptr::read(src) });
    }
}
