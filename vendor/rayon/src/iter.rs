//! Index-preserving parallel iterators.
//!
//! The model is rayon's producer/consumer split reduced to what this
//! workspace needs: a [`Producer`] knows its exact length, can split itself
//! at an index, and can drain sequentially once it is small enough. Every
//! combinator (`map`, `map_init`, `enumerate`, `zip`, `with_min_len`) is
//! itself a producer, and [`ParallelIterator::collect`] recursively splits
//! the chain with [`crate::join`], each leaf writing its items into the
//! *slots of the output that correspond to its input indices*.
//!
//! That slot discipline is the determinism contract the simulator builds
//! on: `collect` returns items in input order — never completion order —
//! so results are bit-identical at any thread count, provided the mapped
//! closures are pure per item. `map_init` scratch state is per *chunk*
//! (chunk boundaries depend on the pool size), so scratch must not leak
//! into outputs — the workspace only uses it for disabled cost meters.

use std::mem::{ManuallyDrop, MaybeUninit};

/// A splittable, exactly-sized source of items.
// Producers are transient splitting state, not containers; `is_empty`
// would never be called.
#[allow(clippy::len_without_is_empty)]
pub trait Producer: Sized + Send {
    /// Item produced.
    type Item: Send;
    /// Sequential drain of one chunk.
    type SeqIter: Iterator<Item = Self::Item>;

    /// Exact number of items.
    fn len(&self) -> usize;
    /// Splits into `[0, index)` and `[index, len)`.
    fn split_at(self, index: usize) -> (Self, Self);
    /// Drains this chunk sequentially.
    fn into_seq(self) -> Self::SeqIter;
    /// Smallest chunk worth splitting off (see `with_min_len`).
    fn min_len(&self) -> usize {
        1
    }
}

/// Combinators + order-preserving collection, available on every producer.
pub trait ParallelIterator: Producer {
    /// Maps each item through `f` (cloned per chunk).
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Clone + Send,
    {
        Map { base: self, f }
    }

    /// Maps with per-chunk scratch state built by `init`.
    fn map_init<S, R, I, F>(self, init: I, f: F) -> MapInit<Self, I, F>
    where
        I: Fn() -> S + Clone + Send,
        F: FnMut(&mut S, Self::Item) -> R + Clone + Send,
        R: Send,
    {
        MapInit { base: self, init, f }
    }

    /// Pairs each item with its global index.
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate { base: self, offset: 0 }
    }

    /// Zips with another producer, truncating to the shorter.
    fn zip<B: Producer>(self, other: B) -> Zip<Self, B> {
        Zip { a: self, b: other }
    }

    /// Floors the chunk size used when splitting.
    fn with_min_len(self, min: usize) -> MinLen<Self> {
        MinLen { base: self, min: min.max(1) }
    }

    /// Collects into `C`, preserving input order.
    fn collect<C: FromParallelIterator<Self::Item>>(self) -> C {
        C::from_par_iter(self)
    }

    /// Runs `f` on every item. Side effects through `&mut T` items are the
    /// point (`par_iter_mut`/`par_chunks_mut` writers); ordering of the
    /// calls across chunks is unspecified, so `f` must be independent per
    /// item — same contract as `map`.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Clone + Send,
    {
        let _: Vec<()> = self.map(f).collect();
    }
}

impl<P: Producer> ParallelIterator for P {}

/// Order-preserving parallel collection target.
pub trait FromParallelIterator<T: Send>: Sized {
    /// Builds `Self` from a producer, in input order.
    fn from_par_iter<P: Producer<Item = T>>(producer: P) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<P: Producer<Item = T>>(producer: P) -> Self {
        collect_vec(producer)
    }
}

/// Leaf chunk size: ~4 chunks per pool thread, floored by `with_min_len`.
/// Chunking affects scheduling granularity only — outputs land in input
/// slots regardless.
fn chunk_size(len: usize, min_len: usize) -> usize {
    let pieces = 4 * crate::current_num_threads();
    (len / pieces.max(1)).max(min_len).max(1)
}

fn collect_vec<P: Producer>(producer: P) -> Vec<P::Item> {
    let len = producer.len();
    let mut slots: Vec<MaybeUninit<P::Item>> = Vec::with_capacity(len);
    slots.resize_with(len, MaybeUninit::uninit);
    let chunk = chunk_size(len, producer.min_len());
    fill_slots(producer, &mut slots, chunk);
    // Safety: `fill_slots` wrote every slot exactly once (it asserts each
    // leaf filled its whole sub-slice). On panic inside a chunk the written
    // items leak rather than double-drop: `Vec<MaybeUninit<_>>` never drops
    // its elements.
    let mut slots = ManuallyDrop::new(slots);
    unsafe { Vec::from_raw_parts(slots.as_mut_ptr() as *mut P::Item, len, slots.capacity()) }
}

fn fill_slots<P: Producer>(producer: P, slots: &mut [MaybeUninit<P::Item>], chunk: usize) {
    let len = producer.len();
    debug_assert_eq!(len, slots.len());
    if len <= chunk {
        let mut wrote = 0;
        for item in producer.into_seq() {
            slots[wrote].write(item);
            wrote += 1;
        }
        assert_eq!(wrote, len, "producer drained fewer items than its reported length");
    } else {
        let mid = len / 2;
        let (left, right) = producer.split_at(mid);
        let (slots_l, slots_r) = slots.split_at_mut(mid);
        crate::join(|| fill_slots(left, slots_l, chunk), || fill_slots(right, slots_r, chunk));
    }
}

// ---------------------------------------------------------------------
// Sources
// ---------------------------------------------------------------------

/// Shared-slice source (`par_iter`).
pub struct SliceParIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> Producer for SliceParIter<'a, T> {
    type Item = &'a T;
    type SeqIter = std::slice::Iter<'a, T>;

    fn len(&self) -> usize {
        self.slice.len()
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.slice.split_at(index);
        (Self { slice: l }, Self { slice: r })
    }
    fn into_seq(self) -> Self::SeqIter {
        self.slice.iter()
    }
}

/// Exclusive-slice source (`par_iter_mut`).
pub struct SliceParIterMut<'a, T> {
    slice: &'a mut [T],
}

impl<'a, T: Send> Producer for SliceParIterMut<'a, T> {
    type Item = &'a mut T;
    type SeqIter = std::slice::IterMut<'a, T>;

    fn len(&self) -> usize {
        self.slice.len()
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.slice.split_at_mut(index);
        (Self { slice: l }, Self { slice: r })
    }
    fn into_seq(self) -> Self::SeqIter {
        self.slice.iter_mut()
    }
}

/// Chunked shared-slice source (`par_chunks`): items are `size`-element
/// subslices, the last possibly shorter. `len`/`split_at` are in units of
/// chunks so splits always land on chunk boundaries.
pub struct ChunksParIter<'a, T> {
    slice: &'a [T],
    size: usize,
}

impl<'a, T: Sync> Producer for ChunksParIter<'a, T> {
    type Item = &'a [T];
    type SeqIter = std::slice::Chunks<'a, T>;

    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let at = (index * self.size).min(self.slice.len());
        let (l, r) = self.slice.split_at(at);
        (Self { slice: l, size: self.size }, Self { slice: r, size: self.size })
    }
    fn into_seq(self) -> Self::SeqIter {
        self.slice.chunks(self.size)
    }
}

/// Chunked exclusive-slice source (`par_chunks_mut`).
pub struct ChunksParIterMut<'a, T> {
    slice: &'a mut [T],
    size: usize,
}

impl<'a, T: Send> Producer for ChunksParIterMut<'a, T> {
    type Item = &'a mut [T];
    type SeqIter = std::slice::ChunksMut<'a, T>;

    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let at = (index * self.size).min(self.slice.len());
        let (l, r) = self.slice.split_at_mut(at);
        (Self { slice: l, size: self.size }, Self { slice: r, size: self.size })
    }
    fn into_seq(self) -> Self::SeqIter {
        self.slice.chunks_mut(self.size)
    }
}

/// Owning source (`Vec::into_par_iter`). Splits move the tail into a fresh
/// allocation — cheap for the header-sized payloads this workspace scatters.
pub struct VecParIter<T> {
    vec: Vec<T>,
}

impl<T: Send> Producer for VecParIter<T> {
    type Item = T;
    type SeqIter = std::vec::IntoIter<T>;

    fn len(&self) -> usize {
        self.vec.len()
    }
    fn split_at(mut self, index: usize) -> (Self, Self) {
        let tail = self.vec.split_off(index);
        (self, Self { vec: tail })
    }
    fn into_seq(self) -> Self::SeqIter {
        self.vec.into_iter()
    }
}

/// Integer-range source (`Range::into_par_iter`).
pub struct RangeParIter<T> {
    range: std::ops::Range<T>,
}

macro_rules! impl_range_producer {
    ($($t:ty),*) => {$(
        impl Producer for RangeParIter<$t> {
            type Item = $t;
            type SeqIter = std::ops::Range<$t>;

            fn len(&self) -> usize {
                self.range.end.saturating_sub(self.range.start) as usize
            }
            fn split_at(self, index: usize) -> (Self, Self) {
                let mid = self.range.start + index as $t;
                (
                    Self { range: self.range.start..mid },
                    Self { range: mid..self.range.end },
                )
            }
            fn into_seq(self) -> Self::SeqIter {
                self.range
            }
        }
    )*};
}

impl_range_producer!(u32, u64, usize);

// ---------------------------------------------------------------------
// Adaptors
// ---------------------------------------------------------------------

/// See [`ParallelIterator::map`].
pub struct Map<P, F> {
    base: P,
    f: F,
}

/// Sequential tail of [`Map`].
pub struct MapSeq<I, F> {
    base: I,
    f: F,
}

impl<I: Iterator, R, F: FnMut(I::Item) -> R> Iterator for MapSeq<I, F> {
    type Item = R;
    fn next(&mut self) -> Option<R> {
        self.base.next().map(&mut self.f)
    }
}

impl<P, R, F> Producer for Map<P, F>
where
    P: Producer,
    R: Send,
    F: Fn(P::Item) -> R + Clone + Send,
{
    type Item = R;
    type SeqIter = MapSeq<P::SeqIter, F>;

    fn len(&self) -> usize {
        self.base.len()
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.base.split_at(index);
        (Self { base: l, f: self.f.clone() }, Self { base: r, f: self.f })
    }
    fn into_seq(self) -> Self::SeqIter {
        MapSeq { base: self.base.into_seq(), f: self.f }
    }
    fn min_len(&self) -> usize {
        self.base.min_len()
    }
}

/// See [`ParallelIterator::map_init`].
pub struct MapInit<P, I, F> {
    base: P,
    init: I,
    f: F,
}

/// Sequential tail of [`MapInit`]: one scratch value per chunk.
pub struct MapInitSeq<It, S, F> {
    base: It,
    scratch: S,
    f: F,
}

impl<It: Iterator, S, R, F: FnMut(&mut S, It::Item) -> R> Iterator for MapInitSeq<It, S, F> {
    type Item = R;
    fn next(&mut self) -> Option<R> {
        let item = self.base.next()?;
        Some((self.f)(&mut self.scratch, item))
    }
}

impl<P, S, R, I, F> Producer for MapInit<P, I, F>
where
    P: Producer,
    I: Fn() -> S + Clone + Send,
    F: FnMut(&mut S, P::Item) -> R + Clone + Send,
    R: Send,
{
    type Item = R;
    type SeqIter = MapInitSeq<P::SeqIter, S, F>;

    fn len(&self) -> usize {
        self.base.len()
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.base.split_at(index);
        (
            Self { base: l, init: self.init.clone(), f: self.f.clone() },
            Self { base: r, init: self.init, f: self.f },
        )
    }
    fn into_seq(self) -> Self::SeqIter {
        let scratch = (self.init)();
        MapInitSeq { base: self.base.into_seq(), scratch, f: self.f }
    }
    fn min_len(&self) -> usize {
        self.base.min_len()
    }
}

/// See [`ParallelIterator::enumerate`].
pub struct Enumerate<P> {
    base: P,
    offset: usize,
}

/// Sequential tail of [`Enumerate`], counting from a split-adjusted offset.
pub struct EnumerateSeq<I> {
    base: I,
    next_index: usize,
}

impl<I: Iterator> Iterator for EnumerateSeq<I> {
    type Item = (usize, I::Item);
    fn next(&mut self) -> Option<Self::Item> {
        let item = self.base.next()?;
        let index = self.next_index;
        self.next_index += 1;
        Some((index, item))
    }
}

impl<P: Producer> Producer for Enumerate<P> {
    type Item = (usize, P::Item);
    type SeqIter = EnumerateSeq<P::SeqIter>;

    fn len(&self) -> usize {
        self.base.len()
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.base.split_at(index);
        (Self { base: l, offset: self.offset }, Self { base: r, offset: self.offset + index })
    }
    fn into_seq(self) -> Self::SeqIter {
        EnumerateSeq { base: self.base.into_seq(), next_index: self.offset }
    }
    fn min_len(&self) -> usize {
        self.base.min_len()
    }
}

/// See [`ParallelIterator::zip`].
pub struct Zip<A, B> {
    a: A,
    b: B,
}

impl<A: Producer, B: Producer> Producer for Zip<A, B> {
    type Item = (A::Item, B::Item);
    type SeqIter = std::iter::Zip<A::SeqIter, B::SeqIter>;

    fn len(&self) -> usize {
        self.a.len().min(self.b.len())
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (al, ar) = self.a.split_at(index);
        let (bl, br) = self.b.split_at(index);
        (Self { a: al, b: bl }, Self { a: ar, b: br })
    }
    fn into_seq(self) -> Self::SeqIter {
        self.a.into_seq().zip(self.b.into_seq())
    }
    fn min_len(&self) -> usize {
        self.a.min_len().max(self.b.min_len())
    }
}

/// See [`ParallelIterator::with_min_len`].
pub struct MinLen<P> {
    base: P,
    min: usize,
}

impl<P: Producer> Producer for MinLen<P> {
    type Item = P::Item;
    type SeqIter = P::SeqIter;

    fn len(&self) -> usize {
        self.base.len()
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.base.split_at(index);
        (Self { base: l, min: self.min }, Self { base: r, min: self.min })
    }
    fn into_seq(self) -> Self::SeqIter {
        self.base.into_seq()
    }
    fn min_len(&self) -> usize {
        self.base.min_len().max(self.min)
    }
}

// ---------------------------------------------------------------------
// Entry traits
// ---------------------------------------------------------------------

/// `par_iter` / `par_iter_mut` over slices (and anything derefing to one).
pub trait ParallelSlice<T> {
    /// Parallel shared iteration.
    fn par_iter(&self) -> SliceParIter<'_, T>;
    /// Parallel exclusive iteration.
    fn par_iter_mut(&mut self) -> SliceParIterMut<'_, T>;
    /// Parallel iteration over `size`-element subslices (last may be short).
    fn par_chunks(&self, size: usize) -> ChunksParIter<'_, T>;
    /// Parallel exclusive iteration over `size`-element subslices.
    fn par_chunks_mut(&mut self, size: usize) -> ChunksParIterMut<'_, T>;
}

impl<T> ParallelSlice<T> for [T] {
    #[inline]
    fn par_iter(&self) -> SliceParIter<'_, T> {
        SliceParIter { slice: self }
    }
    #[inline]
    fn par_iter_mut(&mut self) -> SliceParIterMut<'_, T> {
        SliceParIterMut { slice: self }
    }
    #[inline]
    fn par_chunks(&self, size: usize) -> ChunksParIter<'_, T> {
        assert!(size > 0, "chunk size must be nonzero");
        ChunksParIter { slice: self, size }
    }
    #[inline]
    fn par_chunks_mut(&mut self, size: usize) -> ChunksParIterMut<'_, T> {
        assert!(size > 0, "chunk size must be nonzero");
        ChunksParIterMut { slice: self, size }
    }
}

/// `into_par_iter` over owning collections and ranges.
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;
    /// Producer this converts into.
    type Producer: Producer<Item = Self::Item>;
    /// Consumes `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Producer;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Producer = VecParIter<T>;
    #[inline]
    fn into_par_iter(self) -> VecParIter<T> {
        VecParIter { vec: self }
    }
}

macro_rules! impl_range_into_par {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for std::ops::Range<$t> {
            type Item = $t;
            type Producer = RangeParIter<$t>;
            #[inline]
            fn into_par_iter(self) -> RangeParIter<$t> {
                RangeParIter { range: self }
            }
        }
    )*};
}

impl_range_into_par!(u32, u64, usize);
