//! The work-stealing executor behind the facade.
//!
//! A [`Registry`] owns `n` worker threads, one LIFO deque per worker plus a
//! FIFO injector for jobs arriving from outside the pool. Parallelism is
//! expressed entirely through [`join`]: the caller pushes the second closure
//! onto its own deque, runs the first inline, then either pops the second
//! back (nobody stole it) or *steals other work* while waiting for the thief
//! to finish — a worker waiting on a latch never blocks the pool, which is
//! what makes arbitrarily nested `join`s deadlock-free even with one thread.
//!
//! Jobs are type-erased pointers to [`StackJob`]s living on the stack of the
//! `join`/[`in_registry`] caller; the caller never returns before the job's
//! latch is set, so the erased pointer cannot dangle. Panics inside either
//! closure are caught, carried through the latch, and re-thrown at the join
//! point; an RAII [`BudgetGuard`] returns the job budget even on unwind (the
//! pre-pool facade leaked its thread budget on exactly that path).

use std::cell::{Cell, UnsafeCell};
use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Duration;

/// Worker stack size: tree builds recurse on worker stacks.
const WORKER_STACK_BYTES: usize = 8 << 20;
/// Spin iterations before a waiter yields (join) or sleeps (worker loop).
const SPIN_TRIES: usize = 32;
/// Condvar poll period — an upper bound on wakeup latency if a notification
/// races with a worker going to sleep.
const SLEEP_POLL: Duration = Duration::from_millis(2);

// ---------------------------------------------------------------------
// Type-erased jobs
// ---------------------------------------------------------------------

/// An erased pointer to a [`StackJob`] somewhere below us on a stack.
pub(crate) struct JobRef {
    ptr: *const (),
    exec: unsafe fn(*const (), &Registry),
}

// Safety: a JobRef is only created from a StackJob whose closure is `Send`,
// and the job executes on exactly one thread.
unsafe impl Send for JobRef {}

impl JobRef {
    /// Identity of the underlying job (used by `join` to recognise its own
    /// unstolen child at the top of the deque).
    pub(crate) fn tag(&self) -> *const () {
        self.ptr
    }

    /// Runs the job. Safety: the referenced `StackJob` must still be alive
    /// and not yet executed.
    unsafe fn execute(self, registry: &Registry) {
        unsafe { (self.exec)(self.ptr, registry) }
    }
}

/// A closure + result slot + completion latch, allocated on the caller's
/// stack and kept alive until the latch is set.
pub(crate) struct StackJob<F, R> {
    f: UnsafeCell<Option<F>>,
    result: UnsafeCell<Option<std::thread::Result<R>>>,
    pub(crate) latch: Latch,
}

// Safety: the closure moves to the executing thread (F: Send) and the result
// moves back (R: Send); the latch orders the two accesses.
unsafe impl<F: Send, R: Send> Sync for StackJob<F, R> {}

impl<F, R> StackJob<F, R>
where
    F: FnOnce() -> R + Send,
    R: Send,
{
    pub(crate) fn new(f: F) -> Self {
        Self { f: UnsafeCell::new(Some(f)), result: UnsafeCell::new(None), latch: Latch::new() }
    }

    /// Erases this job. Safety: the caller must keep `self` alive until the
    /// latch is set (i.e. must wait on the latch before returning).
    pub(crate) unsafe fn as_job_ref(&self) -> JobRef {
        JobRef { ptr: self as *const Self as *const (), exec: execute_stack_job::<F, R> }
    }

    /// Takes the result after the latch is set, re-throwing a captured panic.
    pub(crate) fn unwrap_result(&self) -> R {
        debug_assert!(self.latch.probe());
        // Safety: latch set ⇒ the executing thread is done with the slot and
        // we are the only reader.
        let res = unsafe { (*self.result.get()).take() };
        match res.expect("job finished without storing a result") {
            Ok(r) => r,
            Err(payload) => panic::resume_unwind(payload),
        }
    }
}

unsafe fn execute_stack_job<F, R>(ptr: *const (), registry: &Registry)
where
    F: FnOnce() -> R + Send,
    R: Send,
{
    let job = unsafe { &*(ptr as *const StackJob<F, R>) };
    {
        // The guard returns the budget even if the closure unwinds, and is
        // dropped *before* the latch fires — a waiter observing completion
        // must never see the budget still held.
        let _budget = BudgetGuard(registry);
        let f = unsafe { (*job.f.get()).take() }.expect("job executed twice");
        let result = panic::catch_unwind(AssertUnwindSafe(f));
        unsafe { *job.result.get() = Some(result) };
    }
    // Last touch of the job: after this store the owner may free it. Blocked
    // external waiters are woken through registry-owned memory only.
    job.latch.set();
    registry.notify_job_done();
}

// ---------------------------------------------------------------------
// Latches and sleep
// ---------------------------------------------------------------------

/// A one-shot completion flag, probed lock-free by steal-loops.
///
/// Deliberately *just* an atomic: the latch lives inside a [`StackJob`] on
/// the waiter's stack, and the instant a waiter observes `done` it may take
/// the result and pop that frame. The `set` store therefore has to be the
/// executing thread's final access to the job's memory — any wakeup
/// machinery (mutex, condvar) must live in memory that outlives the job,
/// i.e. the [`Registry`] (see [`Registry::wait_for_latch`]).
pub(crate) struct Latch {
    done: AtomicBool,
}

impl Latch {
    fn new() -> Self {
        Self { done: AtomicBool::new(false) }
    }

    pub(crate) fn probe(&self) -> bool {
        self.done.load(Ordering::Acquire)
    }

    /// SeqCst pairs with the `external_waiters` handshake in
    /// [`Registry::wait_for_latch`]/[`Registry::notify_job_done`].
    fn set(&self) {
        self.done.store(true, Ordering::SeqCst);
    }
}

/// Wakeup channel for idle workers. The generation counter closes the
/// notify/sleep race exactly; the poll timeout is belt-and-braces.
struct Sleep {
    generation: Mutex<u64>,
    cv: Condvar,
}

impl Sleep {
    fn new() -> Self {
        Self { generation: Mutex::new(0), cv: Condvar::new() }
    }

    fn notify(&self) {
        *self.generation.lock().unwrap() += 1;
        self.cv.notify_all();
    }

    fn current(&self) -> u64 {
        *self.generation.lock().unwrap()
    }

    fn sleep(&self, seen: u64) {
        let gen = self.generation.lock().unwrap();
        let _ = self.cv.wait_timeout_while(gen, SLEEP_POLL, |g| *g == seen).unwrap();
    }
}

// ---------------------------------------------------------------------
// The registry
// ---------------------------------------------------------------------

/// A pool of `n` workers with their deques. Created once per
/// [`crate::ThreadPool`] (or lazily for the global pool) and kept alive by
/// the worker threads' `Arc`s.
pub(crate) struct Registry {
    queues: Vec<Mutex<VecDeque<JobRef>>>,
    injector: Mutex<VecDeque<JobRef>>,
    sleep: Sleep,
    /// Wakeups for external (non-worker) threads blocked in
    /// [`Registry::wait_for_latch`]. Registry-owned so job completion never
    /// has to touch a latch's memory after its `done` store.
    job_done: Sleep,
    /// External threads currently blocked in [`Registry::wait_for_latch`] —
    /// lets [`Registry::notify_job_done`] skip the mutex when nobody waits.
    external_waiters: AtomicUsize,
    shutdown: AtomicBool,
    /// Pushed-but-unfinished jobs — the "budget" regression tests assert this
    /// returns to zero even when jobs panic.
    outstanding: AtomicUsize,
    pub(crate) n_threads: usize,
}

thread_local! {
    /// `(worker index, owning registry)` for pool threads, `None` elsewhere.
    static WORKER: Cell<Option<(usize, *const Registry)>> = const { Cell::new(None) };
}

pub(crate) fn current_worker() -> Option<(usize, *const Registry)> {
    WORKER.with(|w| w.get())
}

impl Registry {
    pub(crate) fn new(n_threads: usize) -> Arc<Registry> {
        let n = n_threads.max(1);
        let registry = Arc::new(Registry {
            queues: (0..n).map(|_| Mutex::new(VecDeque::new())).collect(),
            injector: Mutex::new(VecDeque::new()),
            sleep: Sleep::new(),
            job_done: Sleep::new(),
            external_waiters: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            outstanding: AtomicUsize::new(0),
            n_threads: n,
        });
        for index in 0..n {
            let reg = Arc::clone(&registry);
            std::thread::Builder::new()
                .name(format!("pim-rayon-{index}"))
                .stack_size(WORKER_STACK_BYTES)
                .spawn(move || worker_loop(reg, index))
                .expect("failed to spawn pool worker");
        }
        registry
    }

    pub(crate) fn outstanding_jobs(&self) -> usize {
        self.outstanding.load(Ordering::Relaxed)
    }

    pub(crate) fn terminate(&self) {
        self.shutdown.store(true, Ordering::Relaxed);
        self.sleep.notify();
    }

    fn push_local(&self, me: usize, job: JobRef) {
        self.outstanding.fetch_add(1, Ordering::Relaxed);
        self.queues[me].lock().unwrap().push_back(job);
        self.sleep.notify();
    }

    pub(crate) fn inject(&self, job: JobRef) {
        self.outstanding.fetch_add(1, Ordering::Relaxed);
        self.injector.lock().unwrap().push_back(job);
        self.sleep.notify();
    }

    /// Pops the caller's own newest job if it is still `tag` (LIFO), i.e.
    /// nobody stole it.
    fn take_local_if(&self, me: usize, tag: *const ()) -> Option<JobRef> {
        let mut q = self.queues[me].lock().unwrap();
        if q.back().is_some_and(|j| j.tag() == tag) {
            q.pop_back()
        } else {
            None
        }
    }

    /// Own deque (newest first), then the injector, then steals oldest-first
    /// from the other workers.
    fn take_work(&self, me: usize) -> Option<JobRef> {
        if let Some(j) = self.queues[me].lock().unwrap().pop_back() {
            return Some(j);
        }
        if let Some(j) = self.injector.lock().unwrap().pop_front() {
            return Some(j);
        }
        for offset in 1..self.n_threads {
            let victim = (me + offset) % self.n_threads;
            if let Some(j) = self.queues[victim].lock().unwrap().pop_front() {
                return Some(j);
            }
        }
        None
    }

    /// Wakes external threads blocked in [`wait_for_latch`]. Called by
    /// [`execute_stack_job`] *after* the latch's `done` store — only registry
    /// memory is touched once a job is marked complete.
    ///
    /// [`wait_for_latch`]: Registry::wait_for_latch
    fn notify_job_done(&self) {
        if self.external_waiters.load(Ordering::SeqCst) > 0 {
            self.job_done.notify();
        }
    }

    /// Blocks the calling (non-worker) thread until `latch` is set.
    ///
    /// The SeqCst waiter-count/`done` handshake guarantees the setter either
    /// sees our registration (and notifies) or we see `done` on the re-probe;
    /// [`Sleep`]'s poll timeout backstops the remaining notify/sleep window.
    pub(crate) fn wait_for_latch(&self, latch: &Latch) {
        self.external_waiters.fetch_add(1, Ordering::SeqCst);
        while !latch.probe() {
            let seen = self.job_done.current();
            if latch.probe() {
                break;
            }
            self.job_done.sleep(seen);
        }
        self.external_waiters.fetch_sub(1, Ordering::SeqCst);
    }

    /// Runs one job; the job's own RAII guard (see [`execute_stack_job`])
    /// returns the budget even if it unwinds.
    fn execute_job(&self, job: JobRef) {
        // Safety: jobs in the queues are alive (their owners wait on the
        // latch) and not yet executed (queues hand each ref out once).
        unsafe { job.execute(self) }
    }
}

/// RAII budget return — drops even when the job panics.
struct BudgetGuard<'a>(&'a Registry);

impl Drop for BudgetGuard<'_> {
    fn drop(&mut self) {
        self.0.outstanding.fetch_sub(1, Ordering::Relaxed);
    }
}

fn worker_loop(registry: Arc<Registry>, me: usize) {
    WORKER.with(|w| w.set(Some((me, Arc::as_ptr(&registry)))));
    let mut idle_spins = 0usize;
    // Shutdown is only honoured once `take_work` comes up empty, so jobs
    // already queued at terminate time still run and their waiters wake —
    // the drain guarantee `ThreadPool::drop` documents.
    loop {
        if let Some(job) = registry.take_work(me) {
            registry.execute_job(job);
            idle_spins = 0;
        } else if registry.shutdown.load(Ordering::Relaxed) {
            break;
        } else if idle_spins < SPIN_TRIES {
            std::hint::spin_loop();
            idle_spins += 1;
        } else {
            let seen = registry.sleep.current();
            // Re-check under the freshly read generation so a push between
            // our last `take_work` and `sleep` cannot be missed.
            if let Some(job) = registry.take_work(me) {
                registry.execute_job(job);
                idle_spins = 0;
            } else {
                registry.sleep.sleep(seen);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------

static GLOBAL: OnceLock<Arc<Registry>> = OnceLock::new();

/// Thread count for the lazily built global pool: `RAYON_NUM_THREADS` if set
/// and positive, else the machine's available parallelism.
fn default_num_threads() -> usize {
    std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
}

pub(crate) fn global_registry() -> &'static Arc<Registry> {
    GLOBAL.get_or_init(|| Registry::new(default_num_threads()))
}

/// Installs `size` as the global pool's thread count. Fails if the global
/// pool already exists.
pub(crate) fn init_global(size: usize) -> Result<(), ()> {
    let mut fresh = false;
    GLOBAL.get_or_init(|| {
        fresh = true;
        Registry::new(size)
    });
    if fresh {
        Ok(())
    } else {
        Err(())
    }
}

/// Runs `f` inside `registry`: directly if the current thread already is one
/// of its workers, otherwise injected as a job while this thread blocks.
pub(crate) fn in_registry<R, F>(registry: &Arc<Registry>, f: F) -> R
where
    R: Send,
    F: FnOnce() -> R + Send,
{
    if let Some((_, current)) = current_worker() {
        if std::ptr::eq(current, Arc::as_ptr(registry)) {
            return f();
        }
    }
    let job = StackJob::new(f);
    // Safety: we wait on the latch below, keeping `job` alive throughout.
    let job_ref = unsafe { job.as_job_ref() };
    registry.inject(job_ref);
    registry.wait_for_latch(&job.latch);
    job.unwrap_result()
}

/// `join` on a thread that is a worker of `registry`.
pub(crate) fn join_in_worker<A, B, RA, RB>(
    registry: &Registry,
    me: usize,
    oper_a: A,
    oper_b: B,
) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let job_b = StackJob::new(oper_b);
    // Safety: we do not return before `job_b`'s latch is set (either we run
    // it inline or we wait for the thief), so the erased ref stays valid.
    let ref_b = unsafe { job_b.as_job_ref() };
    let tag_b = ref_b.tag();
    registry.push_local(me, ref_b);

    // Run `a` inline, holding any panic until `b` is resolved — unwinding
    // earlier would free the stack slot a thief may still be writing to.
    let result_a = panic::catch_unwind(AssertUnwindSafe(oper_a));

    if let Some(job) = registry.take_local_if(me, tag_b) {
        // Nobody stole `b`: run it inline.
        registry.execute_job(job);
    } else {
        // Stolen: make ourselves useful until the thief finishes.
        let mut spins = 0usize;
        while !job_b.latch.probe() {
            if let Some(other) = registry.take_work(me) {
                registry.execute_job(other);
                spins = 0;
            } else if spins < SPIN_TRIES {
                std::hint::spin_loop();
                spins += 1;
            } else {
                std::thread::yield_now();
                spins = 0;
            }
        }
    }

    match result_a {
        Ok(ra) => (ra, job_b.unwrap_result()),
        Err(payload) => {
            // `b` is resolved (latch set) — drop its result, propagate `a`.
            let _ = panic::catch_unwind(AssertUnwindSafe(|| job_b.unwrap_result()));
            panic::resume_unwind(payload)
        }
    }
}
