//! Minimal vendored `rand` exposing the 0.9-series API subset this
//! workspace uses: [`RngCore`], [`SeedableRng`], the [`Rng`] extension
//! trait with `random::<T>()` / `random_range(..)`, and a prelude.
//! Vendored because the build environment has no network access.
//!
//! The distributions are honest uniform samplers (Lemire-style rejection
//! for integer ranges, 53-bit mantissa scaling for `f64`), so workload
//! generators built on top keep sane statistical behavior — but the
//! streams are **not** bit-compatible with the real `rand` crate.

pub mod prelude {
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

pub mod seq {
    //! Sequence sampling helpers.
    use crate::RngCore;

    /// Slice shuffling/choosing (the subset of the real trait in use).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element (`None` when empty).
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = crate::uniform_u64(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[crate::uniform_u64(rng, self.len() as u64) as usize])
            }
        }
    }
}

/// A source of random 32/64-bit words.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for c in &mut chunks {
            c.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let b = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&b[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Raw seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanded with SplitMix64 (the
    /// same construction the real `rand` uses).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let b = z.to_le_bytes();
            chunk.copy_from_slice(&b[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types producible by [`Rng::random`].
pub trait Random {
    /// Samples one value uniformly from the type's full domain
    /// (`[0, 1)` for floats).
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_random_int {
    ($($t:ty => $via:ident),* $(,)?) => {$(
        impl Random for $t {
            #[inline]
            fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )*};
}

impl_random_int!(
    u8 => next_u32, u16 => next_u32, u32 => next_u32,
    u64 => next_u64, usize => next_u64, u128 => next_u64,
    i8 => next_u32, i16 => next_u32, i32 => next_u32,
    i64 => next_u64, isize => next_u64,
);

impl Random for bool {
    #[inline]
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Random for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    #[inline]
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Scalars with a uniform range sampler. A single blanket impl of
/// [`SampleRange`] over this trait (mirroring the real crate's structure)
/// is what lets the compiler unify `0..n`'s literal type with the
/// context-required output type.
pub trait SampleUniform: Sized {
    /// Uniform sample from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`
    /// (`inclusive = true`). Panics when the range is empty.
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R, lo: Self, hi: Self, inclusive: bool,
            ) -> Self {
                // Widen through i128 so the span fits u64 for every
                // 64-bit-or-narrower scalar, signed or not.
                let span = (hi as i128) - (lo as i128);
                if inclusive {
                    assert!(span >= 0, "cannot sample empty range");
                    if span as u128 > u64::MAX as u128 {
                        return rng.next_u64() as $t; // full 64-bit domain
                    }
                    if span as u64 == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    (lo as i128 + uniform_u64(rng, span as u64 + 1) as i128) as $t
                } else {
                    assert!(span > 0, "cannot sample empty range");
                    (lo as i128 + uniform_u64(rng, span as u64) as i128) as $t
                }
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    #[inline]
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        _inclusive: bool,
    ) -> Self {
        assert!(lo < hi, "cannot sample empty range");
        lo + f64::random(rng) * (hi - lo)
    }
}

impl SampleUniform for f32 {
    #[inline]
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        _inclusive: bool,
    ) -> Self {
        assert!(lo < hi, "cannot sample empty range");
        lo + f32::random(rng) * (hi - lo)
    }
}

/// Ranges samplable by [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range. Panics when empty.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    #[inline]
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for std::ops::RangeInclusive<T> {
    #[inline]
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(rng, *self.start(), *self.end(), true)
    }
}

/// Unbiased uniform sample from `[0, span)` (`span > 0`) by rejection.
#[inline]
pub(crate) fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    // Lemire's widening-multiply method: reject when the low half falls in
    // the biased zone `[0, 2^64 mod span)`.
    let t = span.wrapping_neg() % span;
    loop {
        let v = rng.next_u64();
        let m = (v as u128) * (span as u128);
        if (m as u64) >= t {
            return (m >> 64) as u64;
        }
    }
}

/// Extension trait with the ergonomic sampling methods of rand 0.9.
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its full domain.
    #[inline]
    fn random<T: Random>(&mut self) -> T {
        T::random(self)
    }

    /// Samples uniformly from `range`.
    #[inline]
    fn random_range<T: SampleUniform, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        f64::random(self) < p
    }

    /// Fills a byte slice (alias of [`RngCore::fill_bytes`]).
    #[inline]
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = Counter(7);
        for _ in 0..1000 {
            let x: u32 = r.random_range(10..20);
            assert!((10..20).contains(&x));
            let y: usize = r.random_range(0..3);
            assert!(y < 3);
            let z: u64 = r.random_range(0..=5);
            assert!(z <= 5);
            let f: f64 = r.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn inclusive_full_domain_does_not_overflow() {
        let mut r = Counter(3);
        let _: u64 = r.random_range(0..=u64::MAX);
    }
}
