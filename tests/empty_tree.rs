//! Regression tests: every batch operation on an empty tree must return
//! empty results instead of panicking — whether the tree was born empty
//! (built over no points) or emptied by deleting everything.

use pim_zd_tree_repro::{workloads, Aabb, MachineConfig, Metric, PimZdConfig, PimZdTree, Point};

fn empty_tree() -> PimZdTree<3> {
    let cfg = PimZdConfig::skew_resistant(8);
    PimZdTree::build(&[], cfg, MachineConfig::with_modules(8))
}

fn assert_all_queries_empty(t: &mut PimZdTree<3>) {
    let pts = workloads::uniform::<3>(32, 7);
    assert!(t.is_empty());
    assert!(t.batch_contains(&pts).iter().all(|&f| !f), "contains: all absent");
    for k in [0, 1, 5] {
        let knn = t.batch_knn(&pts, k, Metric::L2);
        assert_eq!(knn.len(), pts.len());
        assert!(knn.iter().all(Vec::is_empty), "kNN (k={k}): all empty");
        let knn1 = t.batch_knn(&pts, k, Metric::L1);
        assert!(knn1.iter().all(Vec::is_empty), "kNN ℓ1 (k={k}): all empty");
    }
    let boxes = [Aabb::universe(), Aabb::new(Point::new([1, 1, 1]), Point::new([9, 9, 9]))];
    assert_eq!(t.batch_box_count(&boxes), vec![0, 0]);
    assert!(t.batch_box_fetch(&boxes).iter().all(Vec::is_empty));
    assert_eq!(t.batch_delete(&pts), 0, "deleting from empty removes nothing");
    assert!(t.space_bytes() == 0, "empty tree stores nothing");
}

#[test]
fn born_empty_tree_answers_everything_empty() {
    let mut t = empty_tree();
    assert_all_queries_empty(&mut t);
}

#[test]
fn empty_input_batches_are_no_ops() {
    let mut t = empty_tree();
    t.batch_insert(&[]);
    assert_eq!(t.batch_delete(&[]), 0);
    assert!(t.batch_contains(&[]).is_empty());
    assert!(t.batch_knn(&[], 3, Metric::L2).is_empty());
    assert!(t.batch_box_count(&[]).is_empty());
    assert!(t.batch_box_fetch(&[]).is_empty());
    assert_eq!(t.epoch(), 0, "empty batches do not advance the epoch");
}

#[test]
fn deleted_to_empty_tree_answers_everything_empty() {
    let pts = workloads::uniform::<3>(400, 3);
    let cfg = PimZdConfig::throughput_optimized(400, 8);
    let mut t = PimZdTree::build(&pts, cfg, MachineConfig::with_modules(8));
    assert_eq!(t.len(), 400);
    assert_eq!(t.batch_delete(&pts), 400);
    assert_all_queries_empty(&mut t);
}

#[test]
fn emptied_tree_accepts_new_inserts() {
    let pts = workloads::uniform::<3>(300, 5);
    let cfg = PimZdConfig::skew_resistant(8);
    let mut t = PimZdTree::build(&pts, cfg, MachineConfig::with_modules(8));
    assert_eq!(t.batch_delete(&pts), 300);
    assert_all_queries_empty(&mut t);
    t.batch_insert(&pts[..50]);
    assert_eq!(t.len(), 50);
    assert!(t.batch_contains(&pts[..50]).iter().all(|&f| f));
    let knn = t.batch_knn(&pts[..4], 1, Metric::L2);
    for (q, res) in pts[..4].iter().zip(&knn) {
        assert_eq!(res[0].1, *q, "inserted point is its own nearest neighbor");
    }
}

#[test]
fn insert_into_born_empty_tree_works() {
    let mut t = empty_tree();
    let pts = workloads::uniform::<3>(64, 9);
    t.batch_insert(&pts);
    assert_eq!(t.len(), 64);
    assert!(t.batch_contains(&pts).iter().all(|&f| f));
    assert_eq!(t.batch_box_count(&[Aabb::universe()]), vec![64]);
}
