//! Property-based tests (proptest) over core data-structure invariants.

use pim_geom::{max_coord_for_dim, Aabb, Metric, Point};
use pim_memsim::{CpuConfig, CpuMeter};
use pim_zd_tree_repro::{MachineConfig, PimZdConfig, PimZdTree};
use pim_zdtree_base::ZdTree;
use pim_zorder::prefix::Prefix;
use pim_zorder::ZKey;
use proptest::prelude::*;

fn coord3() -> impl Strategy<Value = u32> {
    0..=max_coord_for_dim(3)
}

fn point3() -> impl Strategy<Value = Point<3>> {
    (coord3(), coord3(), coord3()).prop_map(|(x, y, z)| Point::new([x, y, z]))
}

fn points3(max: usize) -> impl Strategy<Value = Vec<Point<3>>> {
    proptest::collection::vec(point3(), 1..max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Fast and naive Morton encoders agree, and decode inverts encode.
    #[test]
    fn morton_roundtrip_and_equivalence(p in point3()) {
        let k = ZKey::<3>::encode(&p);
        prop_assert_eq!(k, ZKey::<3>::encode_naive(&p));
        prop_assert_eq!(k.decode(), p);
    }

    /// Morton order sorts a point before another iff interleaved bits do:
    /// keys agree with lexicographic comparison of the bit interleaving.
    #[test]
    fn morton_order_matches_prefix_order(a in point3(), b in point3()) {
        let (ka, kb) = (ZKey::<3>::encode(&a), ZKey::<3>::encode(&b));
        let lcp = ka.common_prefix_len(kb);
        if lcp < ZKey::<3>::BITS {
            // The first differing bit decides the order.
            prop_assert_eq!(ka < kb, ka.bit(lcp) < kb.bit(lcp));
        } else {
            prop_assert_eq!(ka, kb);
        }
    }

    /// A prefix's box contains exactly the points whose keys it covers.
    #[test]
    fn prefix_box_is_exact(p in point3(), q in point3(), len in 0u32..=63) {
        let pre = Prefix::new(ZKey::<3>::encode(&p), len);
        let kq = ZKey::<3>::encode(&q);
        prop_assert_eq!(pre.covers(kq), pre.to_box().contains(&q));
    }

    /// Box minimum distances lower-bound every member's distance.
    #[test]
    fn box_min_dist_is_a_lower_bound(
        a in point3(), b in point3(), q in point3()
    ) {
        let bx = Aabb::new(a, b);
        for metric in [Metric::L1, Metric::L2, Metric::Linf] {
            for member in [a, b] {
                prop_assert!(bx.min_dist(&q, metric) <= metric.cmp_dist(&q, &member));
            }
        }
    }

    /// The zd-tree is canonical: build(set) == insert-in-any-split order.
    #[test]
    fn zdtree_history_independence(pts in points3(300), split in 0usize..300) {
        let split = split.min(pts.len());
        let whole = ZdTree::build(&pts, 8);
        let mut staged = ZdTree::build(&pts[..split], 8);
        let mut m = CpuMeter::new(CpuConfig::xeon());
        staged.batch_insert(&pts[split..], &mut m);
        staged.check_invariants();
        prop_assert_eq!(whole.all_points(), staged.all_points());
        prop_assert_eq!(whole.node_count(), staged.node_count());
    }

    /// zd-tree kNN equals brute force on arbitrary point sets (duplicates,
    /// collinear degeneracies and all).
    #[test]
    fn zdtree_knn_is_exact(pts in points3(200), q in point3(), k in 1usize..20) {
        let t = ZdTree::build(&pts, 4);
        let mut m = CpuMeter::new(CpuConfig::xeon());
        let got = t.knn(&q, k, Metric::L2, &mut m);
        let want = pim_zdtree_base::query::oracle::knn(&pts, &q, k, Metric::L2);
        prop_assert_eq!(got, want);
    }

    /// zd-tree box count equals a linear scan.
    #[test]
    fn zdtree_box_count_is_exact(pts in points3(200), a in point3(), b in point3()) {
        let t = ZdTree::build(&pts, 4);
        let mut m = CpuMeter::new(CpuConfig::xeon());
        let bx = Aabb::new(a, b);
        prop_assert_eq!(
            t.box_count(&bx, &mut m),
            pts.iter().filter(|p| bx.contains(p)).count() as u64
        );
    }
}

proptest! {
    // The distributed index is slower to exercise: fewer, fatter cases.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// PIM index invariants + oracle equality hold on arbitrary data with an
    /// arbitrary insert split, in both configurations.
    #[test]
    fn pim_index_matches_oracle(
        pts in points3(400),
        split in 0usize..400,
        skew_mode in proptest::bool::ANY,
        q in point3(),
    ) {
        let split = split.min(pts.len());
        let cfg = if skew_mode {
            PimZdConfig::skew_resistant(8)
        } else {
            PimZdConfig::throughput_optimized(pts.len() as u64, 8)
        };
        let mut t = PimZdTree::build(&pts[..split], cfg, MachineConfig::with_modules(8));
        t.batch_insert(&pts[split..]);
        t.check_invariants(&pts);

        let oracle = ZdTree::build(&pts, cfg.leaf_cap);
        let mut m = CpuMeter::new(CpuConfig::xeon());
        let got = t.batch_knn(&[q], 5, Metric::L2);
        let want = oracle.batch_knn(&[q], 5, Metric::L2, &mut m);
        prop_assert_eq!(&got[0], &want[0]);
    }

    /// Lazy counters stay in the Lemma 3.1 band under random update mixes
    /// (checked inside `check_invariants`).
    #[test]
    fn lazy_counters_stay_in_band(
        base in points3(300),
        extra in points3(300),
        del_stride in 2usize..8,
    ) {
        let cfg = PimZdConfig::skew_resistant(8);
        let mut t = PimZdTree::build(&base, cfg, MachineConfig::with_modules(8));
        t.batch_insert(&extra);
        let del: Vec<Point<3>> = base.iter().step_by(del_stride).copied().collect();
        let removed = t.batch_delete(&del);
        prop_assert_eq!(removed, del.len());

        let mut live: Vec<Point<3>> = Vec::new();
        let mut budget: std::collections::HashMap<[u32;3], usize> = Default::default();
        for p in &del { *budget.entry(p.coords).or_insert(0) += 1; }
        for p in base.iter().chain(extra.iter()) {
            if let Some(b) = budget.get_mut(&p.coords) {
                if *b > 0 { *b -= 1; continue; }
            }
            live.push(*p);
        }
        t.check_invariants(&live);
    }
}
