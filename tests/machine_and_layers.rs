//! Integration tests for machine-level behaviours of the index: L0
//! replication, transfer-API sensitivity, per-dimension generality, and
//! accounting sanity.

use pim_memsim::{CacheConfig, CpuConfig};
use pim_sim::config::TransferApi;
use pim_zd_tree_repro::{workloads, MachineConfig, Metric, PimZdConfig, PimZdTree};

/// A host CPU with an unrealistically tiny LLC, to force L0 overflow.
fn tiny_cpu() -> CpuConfig {
    CpuConfig { llc: CacheConfig::tiny(8 * 1024), ..CpuConfig::xeon() }
}

#[test]
fn l0_replicates_when_it_outgrows_the_cache() {
    let pts = workloads::uniform::<3>(30_000, 1);
    // Low θ_L0 → large L0; tiny LLC → must replicate (§3.1).
    let mut cfg = PimZdConfig::skew_resistant(16);
    cfg.theta_l0 = 64;
    let small =
        PimZdTree::build_with_cpu(&pts, cfg, MachineConfig::with_modules(16), CpuConfig::xeon());
    let replicated =
        PimZdTree::build_with_cpu(&pts, cfg, MachineConfig::with_modules(16), tiny_cpu());
    assert!(
        replicated.space_bytes() > small.space_bytes(),
        "replicated L0 must add space: {} !> {}",
        replicated.space_bytes(),
        small.space_bytes()
    );
    // Correctness unaffected.
    let mut r = replicated;
    let found = r.batch_contains(&pts[..100]);
    assert!(found.iter().all(|&f| f));
}

#[test]
fn sdk_api_slows_small_batches_most() {
    let pts = workloads::uniform::<3>(20_000, 2);
    let run = |api: TransferApi, batch: usize| {
        let mut machine = MachineConfig::with_modules(64);
        machine.api = api;
        let cfg = PimZdConfig::throughput_optimized(20_000, 64);
        let mut t = PimZdTree::build(&pts, cfg, machine);
        let q = workloads::knn_queries(&pts, batch, 3);
        let _ = t.batch_contains(&q);
        t.last_op_stats().breakdown.total_s()
    };
    let slow_small = run(TransferApi::Sdk, 200) / run(TransferApi::Direct, 200);
    let slow_large = run(TransferApi::Sdk, 20_000) / run(TransferApi::Direct, 20_000);
    assert!(slow_small > 1.0, "SDK must cost something");
    assert!(
        slow_small > slow_large,
        "overhead must amortize with batch size: {slow_small:.3} !> {slow_large:.3}"
    );
}

#[test]
fn four_dimensional_index_works() {
    let pts = workloads::uniform::<4>(4_000, 3);
    let cfg = PimZdConfig::throughput_optimized(4_000, 8);
    let mut t = PimZdTree::build(&pts, cfg, MachineConfig::with_modules(8));
    t.check_invariants(&pts);
    let q = pts[123];
    let got = t.batch_knn(&[q], 5, Metric::L2);
    // Brute force.
    let mut want: Vec<(u64, _)> = pts.iter().map(|p| (Metric::L2.cmp_dist(&q, p), *p)).collect();
    want.sort_unstable_by_key(|(d, p)| (*d, p.coords));
    want.truncate(5);
    assert_eq!(got[0], want);
}

#[test]
fn five_dimensional_l1_metric() {
    let pts = workloads::uniform::<5>(2_000, 4);
    let cfg = PimZdConfig::skew_resistant(8);
    let mut t = PimZdTree::build(&pts, cfg, MachineConfig::with_modules(8));
    let q = pts[55];
    let got = t.batch_knn(&[q], 3, Metric::L1);
    let mut want: Vec<(u64, _)> = pts.iter().map(|p| (Metric::L1.cmp_dist(&q, p), *p)).collect();
    want.sort_unstable_by_key(|(d, p)| (*d, p.coords));
    want.truncate(3);
    assert_eq!(got[0], want);
}

#[test]
fn practical_chunking_toggle_changes_cost_not_results() {
    let pts = workloads::uniform::<3>(20_000, 5);
    let machine = MachineConfig::with_modules(32);
    let mut on_cfg = PimZdConfig::skew_resistant(32);
    on_cfg.toggles.practical_chunking = true;
    let mut off_cfg = on_cfg;
    off_cfg.toggles.practical_chunking = false;

    let mut on = PimZdTree::build(&pts, on_cfg, machine);
    let mut off = PimZdTree::build(&pts, off_cfg, machine);
    let q = workloads::knn_queries(&pts, 2_000, 6);

    let a = on.batch_contains(&q);
    let b = off.batch_contains(&q);
    assert_eq!(a, b, "results must be identical");
    let cyc_on = on.last_op_stats().pim_cycles;
    let cyc_off = off.last_op_stats().pim_cycles;
    assert!(
        cyc_on < cyc_off,
        "dense chunk directories must save PIM cycles: {cyc_on} !< {cyc_off}"
    );
}

#[test]
fn op_stats_are_internally_consistent() {
    let pts = workloads::uniform::<3>(10_000, 7);
    let cfg = PimZdConfig::throughput_optimized(10_000, 16);
    let mut t = PimZdTree::build(&pts, cfg, MachineConfig::with_modules(16));
    let q = workloads::knn_queries(&pts, 1_000, 8);
    let res = t.batch_knn(&q, 7, Metric::L2);
    let s = t.last_op_stats().clone();
    let total: usize = res.iter().map(Vec::len).sum();
    assert_eq!(s.elements as usize, total);
    assert_eq!(s.batch_ops, 1_000);
    assert!(s.breakdown.total_s() > 0.0);
    assert!(s.throughput() > 0.0);
    assert!(s.worst_imbalance >= 1.0);
    let e = s.energy(&pim_sim::EnergyModel::default());
    assert!(e.total_j() > 0.0);
}

#[test]
fn skew_resistant_pulls_under_concentration() {
    // All queries target one point: skew-resistant must pull (host time
    // grows, imbalance stays bounded); throughput-optimized cannot pull.
    let pts = workloads::uniform::<3>(40_000, 9);
    let machine = MachineConfig::with_modules(64);
    let hot = vec![pts[7]; 20_000];

    let mut skw = PimZdTree::build(&pts, PimZdConfig::skew_resistant(64), machine);
    let _ = skw.batch_contains(&hot);
    let s_skw = skw.last_op_stats().clone();

    let mut thr = PimZdTree::build(&pts, PimZdConfig::throughput_optimized(40_000, 64), machine);
    let _ = thr.batch_contains(&hot);
    let s_thr = thr.last_op_stats().clone();

    // The skew-resistant config pulls the hot meta-node to the host, so its
    // PIM side stays nearly idle, while the throughput-optimized config
    // funnels all 20k searches through one module.
    assert!(
        s_skw.breakdown.pim_s < s_thr.breakdown.pim_s / 4.0,
        "pulling must unload the straggler module: {:.2e} !< {:.2e}/4",
        s_skw.breakdown.pim_s,
        s_thr.breakdown.pim_s
    );
    assert!(
        s_skw.breakdown.total_s() < s_thr.breakdown.total_s(),
        "and win end-to-end under point skew"
    );
}

#[test]
fn index_survives_empty_and_refill_cycles() {
    let cfg = PimZdConfig::skew_resistant(8);
    let mut t = PimZdTree::<3>::new(cfg, MachineConfig::with_modules(8));
    for cycle in 0..3 {
        let pts = workloads::uniform::<3>(2_000, 100 + cycle);
        t.batch_insert(&pts);
        t.check_invariants(&pts);
        let removed = t.batch_delete(&pts);
        assert_eq!(removed, 2_000, "cycle {cycle}");
        assert!(t.is_empty());
        t.check_invariants(&[]);
    }
}

#[test]
fn single_point_index_works_end_to_end() {
    let cfg = PimZdConfig::throughput_optimized(1, 4);
    let mut t = PimZdTree::<3>::new(cfg, MachineConfig::with_modules(4));
    let p = pim_geom::Point::new([7u32, 8, 9]);
    t.batch_insert(&[p]);
    assert_eq!(t.batch_contains(&[p]), vec![true]);
    let nn = t.batch_knn(&[pim_geom::Point::new([0u32, 0, 0])], 1, Metric::L2);
    assert_eq!(nn[0][0].1, p);
    let c = t.batch_box_count(&[pim_geom::Aabb::universe()]);
    assert_eq!(c[0], 1);
    assert_eq!(t.batch_delete(&[p]), 1);
    t.check_invariants(&[]);
}
