//! Property-based hardening of the durability artifacts: arbitrarily
//! damaged checkpoint images and WAL files must be rejected with a *typed*
//! [`DurabilityError`] — never a panic, never a silently wrong tree.
//!
//! Three damage families are exercised, per artifact:
//! - single bit flips anywhere in the image,
//! - truncation to any shorter length,
//! - version-field bumps (forward-incompatible files).

use pim_zd_tree_repro::index::wal;
use pim_zd_tree_repro::{
    workloads, DurabilityError, MachineConfig, PimZdConfig, PimZdTree, Wal, WalOp, WalReadMode,
};
use proptest::prelude::*;
use std::path::PathBuf;

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("pzd-corrupt-{}-{name}", std::process::id()))
}

/// A small but fully populated checkpoint image (L0 + module fragments +
/// counters), built once per process.
fn checkpoint_image() -> &'static [u8] {
    use std::sync::OnceLock;
    static IMG: OnceLock<Vec<u8>> = OnceLock::new();
    IMG.get_or_init(|| {
        let pts = workloads::uniform::<3>(900, 17);
        let cfg = PimZdConfig::skew_resistant(8);
        let mut t = PimZdTree::build(&pts, cfg, MachineConfig::with_modules(8));
        t.batch_insert(&workloads::uniform::<3>(120, 18));
        t.batch_delete(&pts[..60]);
        t.checkpoint_bytes()
    })
}

/// A WAL file with several complete records, built once per process.
fn wal_image() -> &'static [u8] {
    use std::sync::OnceLock;
    static IMG: OnceLock<Vec<u8>> = OnceLock::new();
    IMG.get_or_init(|| {
        let path = tmp("seed.wal");
        let mut w = Wal::create::<3>(&path).expect("create wal");
        for (i, op) in [WalOp::Insert, WalOp::Delete, WalOp::Insert].iter().enumerate() {
            let pts = workloads::uniform::<3>(40 + i, 40 + i as u64);
            w.append::<3>(i as u64 + 1, *op, &pts).expect("append");
        }
        let bytes = std::fs::read(&path).expect("read wal back");
        let _ = std::fs::remove_file(&path);
        bytes
    })
}

/// Damaged checkpoints must fail typed; only a lucky flip inside an
/// unvalidated byte could still decode, and then it must round-trip.
fn check_checkpoint(bytes: &[u8]) {
    match PimZdTree::<3>::restore_bytes(bytes) {
        Err(
            DurabilityError::BadMagic { .. }
            | DurabilityError::BadVersion { .. }
            | DurabilityError::DimMismatch { .. }
            | DurabilityError::Truncated { .. }
            | DurabilityError::Corrupt { .. }
            | DurabilityError::Io(_),
        ) => {}
        Ok(t) => {
            // The checksums make false acceptance of a *flipped* image
            // astronomically unlikely; reaching here means the damage was
            // outside any covered byte, i.e. the image was intact.
            assert_eq!(t.checkpoint_bytes(), bytes, "accepted image must round-trip");
        }
    }
}

fn check_wal(bytes: &[u8], mode: WalReadMode) {
    match wal::decode_wal::<3>(bytes, mode) {
        Ok((_, consumed)) => {
            assert!(consumed <= bytes.len(), "cannot consume past the end");
        }
        Err(
            DurabilityError::BadMagic { .. }
            | DurabilityError::BadVersion { .. }
            | DurabilityError::DimMismatch { .. }
            | DurabilityError::Truncated { .. }
            | DurabilityError::Corrupt { .. }
            | DurabilityError::Io(_),
        ) => {}
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bit_flipped_checkpoints_never_panic(pos in 0usize..1 << 20, bit in 0u8..8) {
        let mut img = checkpoint_image().to_vec();
        let pos = pos % img.len();
        img[pos] ^= 1 << bit;
        check_checkpoint(&img);
    }

    #[test]
    fn truncated_checkpoints_never_panic(cut in 0usize..1 << 20) {
        let img = checkpoint_image();
        let cut = cut % img.len();
        prop_assert!(
            PimZdTree::<3>::restore_bytes(&img[..cut]).is_err(),
            "a strict prefix can never be a valid checkpoint"
        );
    }

    #[test]
    fn version_bumped_checkpoints_are_rejected(v in 2u32..=u32::MAX) {
        let mut img = checkpoint_image().to_vec();
        img[8..12].copy_from_slice(&v.to_le_bytes());
        prop_assert_eq!(
            PimZdTree::<3>::restore_bytes(&img).err(),
            Some(DurabilityError::BadVersion { artifact: "checkpoint", found: v, supported: 1 })
        );
    }

    #[test]
    fn bit_flipped_wals_never_panic(pos in 0usize..1 << 16, bit in 0u8..8, strict in proptest::bool::ANY) {
        let mut img = wal_image().to_vec();
        let pos = pos % img.len();
        img[pos] ^= 1 << bit;
        let mode = if strict { WalReadMode::Strict } else { WalReadMode::Recovery };
        check_wal(&img, mode);
    }

    #[test]
    fn truncated_wals_never_panic(cut in 0usize..1 << 16, strict in proptest::bool::ANY) {
        let img = wal_image();
        let cut = cut % img.len();
        let mode = if strict { WalReadMode::Strict } else { WalReadMode::Recovery };
        check_wal(&img[..cut], mode);
        if strict && cut > 16 {
            // Any mid-record cut is a torn tail: Strict must refuse it.
            let frame_ok = {
                let (recs, consumed) = wal::decode_wal::<3>(&img[..cut], WalReadMode::Recovery)
                    .expect("recovery tolerates torn tails");
                drop(recs);
                consumed == cut
            };
            if !frame_ok {
                prop_assert!(wal::decode_wal::<3>(&img[..cut], WalReadMode::Strict).is_err());
            }
        }
    }

    #[test]
    fn version_bumped_wals_are_rejected(v in 2u32..=u32::MAX, strict in proptest::bool::ANY) {
        let mut img = wal_image().to_vec();
        img[8..12].copy_from_slice(&v.to_le_bytes());
        let mode = if strict { WalReadMode::Strict } else { WalReadMode::Recovery };
        prop_assert_eq!(
            wal::decode_wal::<3>(&img, mode).err(),
            Some(DurabilityError::BadVersion { artifact: "wal", found: v, supported: 1 })
        );
    }
}
