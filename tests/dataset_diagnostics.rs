//! The §5 dataset assumptions, checked against the synthetic generators:
//! bounded ratio (Definition 1) and bounded expansion constant
//! (Definition 2). The paper notes its index stays *correct* regardless;
//! these tests document which regimes the workloads exercise.

use pim_zd_tree_repro::{geom, workloads};

#[test]
fn uniform_data_has_bounded_expansion() {
    let pts = workloads::uniform::<3>(4_000, 1);
    let gamma = geom::estimate_expansion_constant(&pts, 12, 8);
    // Uniform 3D data doubles ball volume 8x per radius doubling; sampling
    // noise allowed.
    assert!((2.0..=32.0).contains(&gamma), "uniform expansion constant out of band: {gamma}");
}

#[test]
fn osm_like_data_expands_faster_than_uniform() {
    let uni = workloads::uniform::<3>(3_000, 2);
    let osm = workloads::osm_like::<3>(3_000, 2);
    let g_uni = geom::estimate_expansion_constant(&uni, 10, 8);
    let g_osm = geom::estimate_expansion_constant(&osm, 10, 8);
    // Clustered data has sharp density cliffs: doubling a ball that sits
    // inside a cluster can swallow whole neighborhoods.
    assert!(g_osm > g_uni, "clustered data should have larger γ: {g_osm} !> {g_uni}");
}

#[test]
fn generated_data_has_poly_bounded_ratio() {
    // On a small sample the ratio d_max/d_min must stay well below the
    // 2^63 worst case of the raw key space — poly(n) territory.
    for (name, pts) in [
        ("uniform", workloads::uniform::<3>(500, 3)),
        ("cosmos", workloads::cosmos_like::<3>(500, 3)),
    ] {
        if let Some(r) = geom::bounded_ratio(&pts) {
            assert!(r < 1e9, "{name} ratio blew up: {r}");
            assert!(r > 1.0);
        }
    }
}

#[test]
fn gini_targets_match_the_paper() {
    // The calibration claims of DESIGN.md substitution 2, end to end.
    let cosmos = workloads::cosmos_like::<3>(200_000, 4);
    let osm = workloads::osm_like::<3>(200_000, 4);
    let g_c = workloads::gini_over_bins(&cosmos, 2048);
    let g_o = workloads::gini_over_bins(&osm, 2048);
    assert!((g_c - 0.287).abs() < 0.12, "COSMOS-like Gini {g_c} vs paper 0.287");
    assert!((g_o - 0.967).abs() < 0.04, "OSM-like Gini {g_o} vs paper 0.967");
}
