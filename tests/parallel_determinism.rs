//! Thread-count invariance of the whole simulation stack.
//!
//! The executor's contract (vendor/rayon) is that parallelism changes
//! wall-clock only: every reduction is index-ordered, never
//! completion-ordered. This test holds the *entire* stack to it — a seeded
//! mini end-to-end workload (build + insert + delete + contains + kNN +
//! BoxCount + BoxFetch) runs at 1, 2, and 8 threads inside explicit pools,
//! and the serialized trace journal, per-op `OpStats`, per-phase Fig-6
//! breakdowns, and all query results must be **byte-identical** across the
//! three schedules.

use pim_zd_tree_repro::sim::trace::JournalSink;
use pim_zd_tree_repro::{workloads, MachineConfig, Metric, PimZdConfig, PimZdTree};

const SEED: u64 = 2026;
const N: usize = 6_000;
const MODULES: usize = 16;

/// Everything observable from one run, in byte-comparable form.
#[derive(Debug, PartialEq, Eq)]
struct RunArtifacts {
    /// The full JSONL-serialized `JournalSink` output.
    journal_jsonl: String,
    /// `Debug` rendering of each batched op's `OpStats`, in op order
    /// (covers simulated seconds, bytes, rounds, imbalance bit-for-bit).
    op_stats: Vec<String>,
    /// Fig-6 per-phase breakdown aggregated from the journal:
    /// (phase, pim_s bits, comm_s bits, overhead_s bits, rounds).
    per_phase: Vec<(String, u64, u64, u64, u64)>,
    /// Query results flattened to a fingerprint stream.
    results: Vec<u64>,
    /// Points removed by the delete batch.
    deleted: usize,
}

/// The seeded mini end-to-end workload; must be a pure function of `SEED`.
fn run_workload() -> RunArtifacts {
    let pts = workloads::uniform::<3>(N, SEED);
    let cfg = PimZdConfig::skew_resistant(MODULES);
    let mut t = PimZdTree::build(&pts, cfg, MachineConfig::with_modules(MODULES));

    let (sink, journal) = JournalSink::new();
    t.set_trace_sink(Box::new(sink));

    let mut op_stats = Vec::new();
    let mut results: Vec<u64> = Vec::new();

    let extra = workloads::uniform::<3>(800, SEED + 1);
    t.batch_insert(&extra);
    op_stats.push(format!("{:?}", t.last_op_stats()));

    let deleted = t.batch_delete(&pts[..400]);
    op_stats.push(format!("{:?}", t.last_op_stats()));

    let probes = workloads::knn_queries(&pts, 300, SEED + 2);
    let found = t.batch_contains(&probes);
    op_stats.push(format!("{:?}", t.last_op_stats()));
    results.extend(found.iter().map(|&b| b as u64));

    for metric in [Metric::L1, Metric::L2, Metric::Linf] {
        let knn = t.batch_knn(&probes[..150], 4, metric);
        op_stats.push(format!("{:?}", t.last_op_stats()));
        results.extend(knn.iter().flat_map(|r| r.iter().map(|(d, p)| d ^ u64::from(p.coords[0]))));
    }

    let side = workloads::box_side_for_expected::<3>(N, 30.0);
    let boxes = workloads::box_queries(&pts, 200, side, SEED + 3);
    let counts = t.batch_box_count(&boxes);
    op_stats.push(format!("{:?}", t.last_op_stats()));
    results.extend(counts.iter().copied());

    let fetched = t.batch_box_fetch(&boxes[..100]);
    op_stats.push(format!("{:?}", t.last_op_stats()));
    results.extend(fetched.iter().flat_map(|r| r.iter().map(|p| u64::from(p.coords[1]))));

    // Fig-6 per-phase aggregation, exactly as `trace_summary` groups it.
    // f64 sums are compared as bit patterns: identical summation order at
    // any thread count is part of the determinism contract.
    let mut per_phase: Vec<(String, u64, u64, u64, u64)> = Vec::new();
    for rec in journal.snapshot() {
        let phase = rec.phase.split('/').next().unwrap_or("").to_string();
        if per_phase.last().map(|(p, ..)| p.as_str()) != Some(phase.as_str()) {
            per_phase.push((phase, 0, 0, 0, 0));
        }
        let e = per_phase.last_mut().unwrap();
        e.1 = (f64::from_bits(e.1) + rec.breakdown.pim_s).to_bits();
        e.2 = (f64::from_bits(e.2) + rec.breakdown.comm_s).to_bits();
        e.3 = (f64::from_bits(e.3) + rec.breakdown.overhead_s).to_bits();
        e.4 += 1;
    }

    RunArtifacts { journal_jsonl: journal.to_jsonl(), op_stats, per_phase, results, deleted }
}

#[test]
fn full_stack_is_byte_identical_at_1_2_and_8_threads() {
    let baseline = rayon::ThreadPool::new(1).install(run_workload);
    assert!(!baseline.journal_jsonl.is_empty(), "workload must journal rounds");
    assert!(baseline.per_phase.len() >= 4, "expected several traced phases");
    assert!(baseline.deleted > 0, "delete batch must remove points");

    for threads in [2usize, 8] {
        let pool = rayon::ThreadPool::new(threads);
        assert_eq!(pool.current_num_threads(), threads);
        let run = pool.install(run_workload);
        assert_eq!(
            run.journal_jsonl, baseline.journal_jsonl,
            "trace journal diverged at {threads} threads"
        );
        assert_eq!(
            run.op_stats, baseline.op_stats,
            "per-op SimStats diverged at {threads} threads"
        );
        assert_eq!(
            run.per_phase, baseline.per_phase,
            "Fig-6 per-phase breakdown diverged at {threads} threads"
        );
        assert_eq!(run.results, baseline.results, "query results diverged at {threads} threads");
        assert_eq!(run.deleted, baseline.deleted);
        assert_eq!(pool.outstanding_jobs(), 0, "pool must be quiescent after the run");
    }
}

#[test]
fn repeated_runs_on_one_pool_are_identical() {
    // Same pool, same seed, twice in a row: smokes out any state leaking
    // between runs through the executor (queues, worker TLS, budget).
    let pool = rayon::ThreadPool::new(4);
    let a = pool.install(run_workload);
    let b = pool.install(run_workload);
    assert_eq!(a, b);
    assert_eq!(pool.outstanding_jobs(), 0);
}
