//! Oracle equivalence for the scale-out shard router (ARCHITECTURE.md §10).
//!
//! An N-shard [`ShardedZdTree`] must be observationally identical to one
//! [`PimZdTree`] holding the same multiset: sharding is a performance
//! topology, not a semantics change. Properties drive both against each
//! other *and* against a brute-force scan, under the two input families
//! where partitioned indexes classically break — duplicate-heavy tiny
//! cubes (points collide across shard boundaries, ties must resolve by
//! the documented `(distance, coords)` rule) and Varden skew (nearly all
//! mass on one rank, so the kNN widen phase and the rebalancer both run
//! hot). Also here: rebalance-under-churn and a fault plan pinned to one
//! rank — results must stay byte-identical to the clean single-rank
//! reference through both.

use pim_zd_tree_repro::workloads as wl;
use pim_zd_tree_repro::{
    Aabb, FaultConfig, FaultPlan, MachineConfig, Metric, PimZdConfig, PimZdTree, Point,
    ShardConfig, ShardedZdTree,
};
use proptest::prelude::*;

const METRICS: [Metric; 3] = [Metric::L1, Metric::L2, Metric::Linf];

fn zcfg(n: usize) -> PimZdConfig {
    PimZdConfig::throughput_optimized(n.max(64) as u64, 8)
}

fn build_pair(ranks: usize, data: &[Point<3>]) -> (ShardedZdTree<3>, PimZdTree<3>) {
    let machine = MachineConfig::with_modules(8);
    let cfg = zcfg(data.len());
    let sh = ShardedZdTree::build(data, ShardConfig::new(ranks), cfg, machine);
    let single = PimZdTree::build(data, cfg, machine);
    (sh, single)
}

/// Brute-force kNN, ties by (distance, coords). `batch_knn` returns
/// *distinct* points (duplicate stored copies collapse — the single-rank
/// step-5 sort/dedup/truncate contract), so the oracle dedups too.
fn knn_oracle(data: &[Point<3>], q: &Point<3>, k: usize, metric: Metric) -> Vec<(u64, Point<3>)> {
    let mut all: Vec<(u64, Point<3>)> = data.iter().map(|p| (metric.cmp_dist(q, p), *p)).collect();
    all.sort_unstable_by_key(|(d, p)| (*d, p.coords));
    all.dedup();
    all.truncate(k);
    all
}

/// Points in a 6×6×6 cube: duplicates arrive quickly, and with more than a
/// handful of ranks almost every query's neighbourhood spans a boundary.
fn tiny_point() -> impl Strategy<Value = Point<3>> {
    (0u32..6, 0u32..6, 0u32..6).prop_map(|(x, y, z)| Point::new([x, y, z]))
}

fn tiny_points(max: usize) -> impl Strategy<Value = Vec<Point<3>>> {
    proptest::collection::vec(tiny_point(), 1..max)
}

/// Box-fetch result order is unspecified (the sharded router returns
/// coords-sorted, the single rank in traversal order): canonicalize.
fn sorted(rows: Vec<Vec<Point<3>>>) -> Vec<Vec<Point<3>>> {
    rows.into_iter()
        .map(|mut v| {
            v.sort_unstable_by_key(|p| p.coords);
            v
        })
        .collect()
}

fn aabb_from(a: Point<3>, b: Point<3>) -> Aabb<3> {
    let lo = std::array::from_fn(|i| a.coords[i].min(b.coords[i]));
    let hi = std::array::from_fn(|i| a.coords[i].max(b.coords[i]));
    Aabb::new(Point::new(lo), Point::new(hi))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// N-shard kNN ≡ single rank ≡ brute force, duplicate-heavy inputs,
    /// every metric, k from 0 past the tree size.
    #[test]
    fn sharded_knn_matches_single_rank_and_brute_force(
        data in tiny_points(48),
        queries in tiny_points(5),
        k in 0usize..64,
        ranks in 2usize..6,
    ) {
        let (mut sh, mut single) = build_pair(ranks, &data);
        for metric in METRICS {
            let got = sh.batch_knn(&queries, k, metric);
            let want = single.batch_knn(&queries, k, metric);
            prop_assert_eq!(&got, &want);
            for (q, row) in queries.iter().zip(&got) {
                prop_assert_eq!(row, &knn_oracle(&data, q, k, metric));
            }
        }
    }

    /// N-shard BoxCount / BoxFetch / Contains ≡ single rank ≡ brute force.
    #[test]
    fn sharded_box_ops_match_single_rank_and_brute_force(
        data in tiny_points(48),
        corners in proptest::collection::vec((tiny_point(), tiny_point()), 1..5),
        ranks in 2usize..6,
    ) {
        let (mut sh, mut single) = build_pair(ranks, &data);
        let boxes: Vec<Aabb<3>> = corners.iter().map(|(a, b)| aabb_from(*a, *b)).collect();
        let counts = sh.batch_box_count(&boxes);
        prop_assert_eq!(&counts, &single.batch_box_count(&boxes));
        let fetched = sorted(sh.batch_box_fetch(&boxes));
        prop_assert_eq!(&fetched, &sorted(single.batch_box_fetch(&boxes)));
        for (b, (count, fetch)) in boxes.iter().zip(counts.iter().zip(&fetched)) {
            let brute = data.iter().filter(|p| b.contains(p)).count();
            prop_assert_eq!(*count as usize, brute);
            prop_assert_eq!(fetch.len(), brute);
        }
        let probes: Vec<Point<3>> = corners.iter().map(|(a, _)| *a).collect();
        let got = sh.batch_contains(&probes);
        prop_assert_eq!(&got, &single.batch_contains(&probes));
        for (p, present) in probes.iter().zip(&got) {
            prop_assert_eq!(*present, data.contains(p));
        }
    }

    /// Insert + delete churn with an aggressive rebalancer: results stay
    /// equivalent after every mutation round, and migration never changes
    /// the stored multiset size.
    #[test]
    fn rebalance_under_churn_preserves_equivalence(
        data in tiny_points(40),
        extra in tiny_points(24),
        ranks in 2usize..5,
        seed in 0u64..1024,
    ) {
        let machine = MachineConfig::with_modules(8);
        let cfg = zcfg(data.len() + extra.len());
        let mut scfg = ShardConfig::new(ranks);
        scfg.rebalance_threshold = 1.01; // rebalance on nearly every batch
        let mut sh = ShardedZdTree::build(&data, scfg, cfg, machine);
        let mut single = PimZdTree::build(&data, cfg, machine);
        let queries = wl::point_queries(&data, 8, 1, seed);
        for round in 0..3 {
            sh.batch_insert(&extra);
            single.batch_insert(&extra);
            prop_assert_eq!(sh.len(), single.len(), "round {} insert", round);
            prop_assert_eq!(
                sh.batch_knn(&queries, 4, Metric::L2),
                single.batch_knn(&queries, 4, Metric::L2)
            );
            let half = extra.len() / 2 + 1;
            let removed = sh.batch_delete(&extra[..half]);
            prop_assert_eq!(removed, single.batch_delete(&extra[..half]));
            prop_assert_eq!(sh.len(), single.len(), "round {} delete", round);
            prop_assert_eq!(sh.batch_contains(&extra), single.batch_contains(&extra));
            // Restore for the next round.
            let rest = sh.batch_delete(&extra);
            prop_assert_eq!(rest, single.batch_delete(&extra));
        }
    }
}

/// Varden skew: nearly all points (and queries) on a filament owned by few
/// ranks. The widen phase and rebalancer both engage; equivalence holds.
#[test]
fn varden_skewed_inputs_stay_equivalent() {
    let data = wl::varden::<3>(4_000, 7);
    let (mut sh, mut single) = build_pair(8, &data);
    let queries = wl::point_queries(&data, 128, 3, 11);
    for k in [1usize, 10] {
        assert_eq!(
            sh.batch_knn(&queries, k, Metric::L2),
            single.batch_knn(&queries, k, Metric::L2)
        );
    }
    let side = wl::box_side_for_expected::<3>(data.len(), 100.0);
    let boxes = wl::box_queries(&data, 64, side, 13);
    assert_eq!(sh.batch_box_count(&boxes), single.batch_box_count(&boxes));
    assert_eq!(sorted(sh.batch_box_fetch(&boxes)), sorted(single.batch_box_fetch(&boxes)));
    let st = sh.last_shard_stats();
    assert!(st.fanout() >= 1.0 && st.busy_cycle_imbalance() >= 1.0);
}

/// A fault plan pinned to one rank of four: retries/salvage are confined to
/// that rank's fault plane and results remain byte-identical to the clean
/// single-rank reference.
#[test]
fn fault_plan_on_one_rank_preserves_results() {
    let data = wl::uniform::<3>(3_000, 21);
    let (mut sh, mut single) = build_pair(4, &data);
    sh.set_fault_plan_on(1, Some(FaultPlan::new(FaultConfig::uniform(0.15, 0xF00D))));
    let queries = wl::point_queries(&data, 200, 2, 23);
    assert_eq!(sh.batch_knn(&queries, 10, Metric::L2), single.batch_knn(&queries, 10, Metric::L2));
    let side = wl::box_side_for_expected::<3>(data.len(), 10.0);
    let boxes = wl::box_queries(&data, 100, side, 29);
    assert_eq!(sh.batch_box_count(&boxes), single.batch_box_count(&boxes));
    assert_eq!(sorted(sh.batch_box_fetch(&boxes)), sorted(single.batch_box_fetch(&boxes)));
    assert_eq!(sh.batch_contains(&data[..256]), single.batch_contains(&data[..256]));
    // The faulty rank really did fault (retry/salvage rounds happened),
    // and its fault plane stayed confined to rank 1.
    assert!(
        sh.rank(1).fault_log().total_faults() > 0,
        "fault plan on rank 1 must actually inject faults"
    );
    assert_eq!(sh.rank(0).fault_log().total_faults(), 0, "faults must not leak across ranks");
}
