//! Crash-restart recovery reproduces the oracle byte-for-byte.
//!
//! The acceptance criterion for the durability layer: a seeded workload
//! interrupted at a batch boundary and recovered via checkpoint + WAL
//! replay must produce **byte-identical** query results, trace journals,
//! and metrics snapshots to an uninterrupted oracle run — at 1, 2, and 8
//! rayon threads. The only permitted divergence is the recovery marker
//! itself: `FaultLog::host_crashes`, which is deliberately excluded from
//! journals, metrics, and `total_faults()`.

use pim_zd_tree_repro::sim::trace::JournalSink;
use pim_zd_tree_repro::sim::Metrics;
use pim_zd_tree_repro::{
    workloads, MachineConfig, Metric, PimZdConfig, PimZdTree, Point, Wal, WalReadMode,
};
use std::path::PathBuf;

const SEED: u64 = 4047;
const N: usize = 4_000;
const MODULES: usize = 8;

/// The seeded mutation schedule: checkpoint after `CKPT` batches, crash
/// after `CRASH`, finish at `BATCHES.len()`.
const CKPT: usize = 2;
const CRASH: usize = 4;

enum Op {
    Insert(u64, usize),
    Delete(usize, usize),
}

fn batches() -> Vec<(bool, Vec<Point<3>>)> {
    let base = workloads::uniform::<3>(N, SEED);
    let schedule = [
        Op::Insert(SEED + 10, 300),
        Op::Delete(0, 200),
        Op::Insert(SEED + 11, 250),
        Op::Delete(500, 150),
        Op::Insert(SEED + 12, 200),
        Op::Delete(900, 100),
    ];
    schedule
        .iter()
        .map(|op| match op {
            Op::Insert(seed, n) => (true, workloads::uniform::<3>(*n, *seed)),
            Op::Delete(off, n) => (false, base[*off..off + n].to_vec()),
        })
        .collect()
}

fn fresh_tree() -> PimZdTree<3> {
    let pts = workloads::uniform::<3>(N, SEED);
    let cfg = PimZdConfig::skew_resistant(MODULES);
    PimZdTree::build(&pts, cfg, MachineConfig::with_modules(MODULES))
}

fn apply(t: &mut PimZdTree<3>, batch: &(bool, Vec<Point<3>>)) {
    if batch.0 {
        t.batch_insert(&batch.1);
    } else {
        t.batch_delete(&batch.1);
    }
}

/// Everything observable after the post-checkpoint phase, byte-comparable.
#[derive(Debug, PartialEq, Eq)]
struct Artifacts {
    journal_jsonl: String,
    metrics_text: String,
    results: Vec<u64>,
    epoch: u64,
    len: usize,
}

/// Attaches fresh observers, applies `tail` batches, runs the query mix,
/// and collects the artifacts. Both the oracle and the recovered tree go
/// through this exact function, so any divergence is state, not harness.
fn observe(mut t: PimZdTree<3>, tail: &[(bool, Vec<Point<3>>)]) -> (Artifacts, u64) {
    let (sink, journal) = JournalSink::new();
    t.set_trace_sink(Box::new(sink));
    t.set_metrics(Metrics::enabled_new());

    for b in tail {
        apply(&mut t, b);
    }

    let mut results: Vec<u64> = Vec::new();
    let probes = workloads::uniform::<3>(400, SEED + 99);
    results.extend(t.batch_contains(&probes).iter().map(|&b| b as u64));
    for (d, p) in t.batch_knn(&probes[..200], 4, Metric::L2).iter().flatten() {
        results.push(d ^ u64::from(p.coords[0]));
    }
    let side = workloads::box_side_for_expected::<3>(N, 25.0);
    let boxes = workloads::box_queries(&probes, 150, side, SEED + 98);
    results.extend(t.batch_box_count(&boxes));

    let art = Artifacts {
        journal_jsonl: journal.to_jsonl(),
        metrics_text: t.metrics().snapshot_text().expect("metrics were attached"),
        results,
        epoch: t.epoch(),
        len: t.len(),
    };
    (art, t.fault_log().host_crashes)
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("pzd-durability-{}-{name}", std::process::id()))
}

/// One full scenario at the current thread count: oracle vs crash+recover.
fn run_scenario(tag: &str) -> Artifacts {
    let all = batches();
    let ckpt_path = tmp(&format!("{tag}.ckpt"));
    let wal_path = tmp(&format!("{tag}.wal"));

    // Oracle: uninterrupted run, observed from the checkpoint epoch on.
    let mut oracle = fresh_tree();
    for b in &all[..CKPT] {
        apply(&mut oracle, b);
    }
    let (want, oracle_crashes) = observe(oracle, &all[CKPT..]);
    assert_eq!(oracle_crashes, 0, "the oracle never crashes");
    assert_eq!(want.epoch, all.len() as u64);

    // Crashing run: checkpoint at the same epoch, log every later batch,
    // then die between batch boundaries by dropping the tree.
    let mut victim = fresh_tree();
    for b in &all[..CKPT] {
        apply(&mut victim, b);
    }
    victim.checkpoint_to(&ckpt_path).expect("checkpoint");
    victim.set_wal(Wal::create::<3>(&wal_path).expect("create wal"));
    for b in &all[CKPT..CRASH] {
        apply(&mut victim, b);
    }
    drop(victim); // host crash: everything volatile is gone

    // Recovery: restore the checkpoint, attach fresh observers *before*
    // replay so replayed batches journal exactly like the oracle's, replay
    // the WAL, then continue the remaining schedule.
    let mut revived = PimZdTree::<3>::restore_from(&ckpt_path).expect("restore");
    assert_eq!(revived.epoch(), CKPT as u64);
    let (sink, journal) = JournalSink::new();
    revived.set_trace_sink(Box::new(sink));
    revived.set_metrics(Metrics::enabled_new());
    let replayed = revived.replay_wal(&wal_path, WalReadMode::Recovery).expect("replay");
    assert_eq!(replayed, (CRASH - CKPT) as u64, "every logged batch replays");
    assert_eq!(revived.epoch(), CRASH as u64);
    assert_eq!(revived.fault_log().host_crashes, 1, "recovery is recorded once");

    // Continue the remaining schedule and queries on the same observers.
    let mut results: Vec<u64> = Vec::new();
    for b in &all[CRASH..] {
        apply(&mut revived, b);
    }
    let probes = workloads::uniform::<3>(400, SEED + 99);
    results.extend(revived.batch_contains(&probes).iter().map(|&b| b as u64));
    for (d, p) in revived.batch_knn(&probes[..200], 4, Metric::L2).iter().flatten() {
        results.push(d ^ u64::from(p.coords[0]));
    }
    let side = workloads::box_side_for_expected::<3>(N, 25.0);
    let boxes = workloads::box_queries(&probes, 150, side, SEED + 98);
    results.extend(revived.batch_box_count(&boxes));

    let got = Artifacts {
        journal_jsonl: journal.to_jsonl(),
        metrics_text: revived.metrics().snapshot_text().expect("metrics were attached"),
        results,
        epoch: revived.epoch(),
        len: revived.len(),
    };

    assert_eq!(got.epoch, want.epoch, "recovered run ends at the oracle epoch");
    assert_eq!(got.len, want.len, "recovered run holds the oracle point count");
    assert_eq!(got.results, want.results, "query results diverged after recovery");
    assert_eq!(got.journal_jsonl, want.journal_jsonl, "trace journal diverged after recovery");
    assert_eq!(got.metrics_text, want.metrics_text, "metrics diverged after recovery");

    let _ = std::fs::remove_file(&ckpt_path);
    let _ = std::fs::remove_file(&wal_path);
    want
}

#[test]
fn crash_recovery_is_byte_identical_across_thread_counts() {
    let baseline = rayon::ThreadPool::new(1).install(|| run_scenario("t1"));
    assert!(!baseline.journal_jsonl.is_empty(), "workload must journal rounds");
    for threads in [2usize, 8] {
        let pool = rayon::ThreadPool::new(threads);
        let tag = format!("t{threads}");
        let run = pool.install(|| run_scenario(&tag));
        assert_eq!(run, baseline, "durability artifacts diverged at {threads} threads");
    }
}

#[test]
fn recover_reattaches_the_wal_and_keeps_logging() {
    let all = batches();
    let ckpt_path = tmp("reattach.ckpt");
    let wal_path = tmp("reattach.wal");

    let mut victim = fresh_tree();
    for b in &all[..CKPT] {
        apply(&mut victim, b);
    }
    victim.checkpoint_to(&ckpt_path).expect("checkpoint");
    victim.set_wal(Wal::create::<3>(&wal_path).expect("create wal"));
    for b in &all[CKPT..CRASH] {
        apply(&mut victim, b);
    }
    drop(victim);

    // recover() = restore + replay + torn-tail truncation + re-append.
    let (mut revived, replayed) = PimZdTree::<3>::recover(&ckpt_path, &wal_path).expect("recover");
    assert_eq!(replayed, (CRASH - CKPT) as u64);
    assert_eq!(revived.epoch(), CRASH as u64);

    // New batches land in the same log; a second crash recovers them too.
    for b in &all[CRASH..] {
        apply(&mut revived, b);
    }
    let want_len = revived.len();
    drop(revived);

    let (again, replayed2) = PimZdTree::<3>::recover(&ckpt_path, &wal_path).expect("re-recover");
    assert_eq!(replayed2, (all.len() - CKPT) as u64, "full log replays from the checkpoint");
    assert_eq!(again.epoch(), all.len() as u64);
    assert_eq!(again.len(), want_len);
    assert_eq!(again.fault_log().host_crashes, 1, "one recovery event per restore");

    let _ = std::fs::remove_file(&ckpt_path);
    let _ = std::fs::remove_file(&wal_path);
}

/// Satellite pin for the SoA leaf conversion: checkpoint → restore →
/// checkpoint must stay **byte-identical** now that leaf payloads are
/// stored lane-major in memory. The `PZDCKPT1` wire layout is unchanged —
/// per point a little-endian `u64` key then D little-endian `u32` coords —
/// so a checkpoint written by the SoA tree re-serializes to the same bytes
/// after a full AoS→SoA rebuild through `restore_bytes`. The tree is
/// mutated first so leaves have been through the merge/remove paths, not
/// just the bulk build.
#[test]
fn checkpoint_restore_checkpoint_is_byte_identical_with_soa_leaves() {
    let all = batches();
    let mut t = fresh_tree();
    for b in &all {
        apply(&mut t, b);
    }

    let first = t.checkpoint_bytes();
    assert_eq!(&first[..8], b"PZDCKPT1", "format magic is pinned");

    let restored = PimZdTree::<3>::restore_bytes(&first).expect("restore");
    assert_eq!(restored.len(), t.len());
    assert_eq!(restored.epoch(), t.epoch());
    let second = restored.checkpoint_bytes();
    assert_eq!(first, second, "re-serialization must be byte-identical");

    // And the restored tree answers queries identically.
    let probes = workloads::uniform::<3>(200, SEED + 77);
    let mut a = t;
    let mut b = restored;
    assert_eq!(a.batch_contains(&probes), b.batch_contains(&probes));
    assert_eq!(
        a.batch_knn(&probes[..50], 5, Metric::L2),
        b.batch_knn(&probes[..50], 5, Metric::L2)
    );
}
