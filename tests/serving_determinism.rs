//! Thread-count invariance and snapshot-read isolation of the serving
//! layer.
//!
//! `pim-serve`'s contract: given a recorded arrival trace and a seed, the
//! run's results, serving journal, and metrics snapshot are byte-identical
//! at any host thread count — all timing lives in virtual time, behind the
//! trace. This test replays one fixed trace at 1, 2, and 8 threads inside
//! explicit pools and compares every artifact byte for byte, then pins the
//! snapshot-read semantics: a query dispatched while a write batch is in
//! flight observes exactly the pre-batch epoch, and none of the batch's
//! points.

use pim_zd_tree_repro::serve::{BatchPolicy, PimServer, ServeConfig};
use pim_zd_tree_repro::sim::Metrics;
use pim_zd_tree_repro::workloads::{
    open_loop_trace, Arrival, ArrivalTrace, ReqOp, RequestMix, RequestSampler,
};
use pim_zd_tree_repro::{workloads, MachineConfig, PimZdConfig, PimZdTree, Point};

const SEED: u64 = 2026;
const N: usize = 5_000;
const MODULES: usize = 16;

/// Everything observable from one serving run, in byte-comparable form.
#[derive(Debug, PartialEq, Eq)]
struct RunArtifacts {
    /// Canonical per-request reply JSONL (ids, times, epochs, result
    /// fingerprints).
    results_jsonl: String,
    /// The per-batch serving journal JSONL.
    journal_jsonl: String,
    /// The Prometheus-style metrics snapshot.
    metrics_text: String,
    /// FNV digest of the results (redundant with `results_jsonl`, kept as
    /// the one-number summary the docs quote).
    digest: u64,
}

fn fixed_trace(data: &[Point<3>]) -> ArrivalTrace<3> {
    // Write-tinged read-heavy mix at a rate that keeps several batches in
    // flight, so the run exercises budget seals, size seals, pipelined
    // snapshot reads, and (with the small queue below) admission control.
    let mix = RequestMix { insert: 25, delete: 10, ..RequestMix::read_heavy() };
    open_loop_trace(data, 700, 150_000.0, &mix, SEED ^ 0x7ACE)
}

/// One full serving run; must be a pure function of its inputs.
fn run_serving() -> RunArtifacts {
    let data = workloads::uniform::<3>(N, SEED);
    let tree = PimZdTree::build(
        &data,
        PimZdConfig::throughput_optimized(N as u64, MODULES),
        MachineConfig::with_modules(MODULES),
    );
    let cfg = ServeConfig {
        policy: BatchPolicy { budget_us: 500, ..BatchPolicy::default() },
        queue_cap: 96,
        snapshot_reads: true,
    };
    let mut server = PimServer::new(tree, cfg);
    let metrics = Metrics::enabled_new();
    server.set_metrics(metrics.clone());
    let report = server.run_trace(&fixed_trace(&data));
    RunArtifacts {
        results_jsonl: report.results_jsonl(),
        journal_jsonl: report.journal_jsonl(),
        metrics_text: metrics.snapshot_text().unwrap(),
        digest: report.results_digest(),
    }
}

#[test]
fn serving_run_is_byte_identical_at_1_2_and_8_threads() {
    let baseline = rayon::ThreadPool::new(1).install(run_serving);
    assert!(!baseline.results_jsonl.is_empty());
    assert!(
        baseline.journal_jsonl.contains("\"snapshot\":true"),
        "the fixed trace must exercise pipelined snapshot reads:\n{}",
        baseline.journal_jsonl
    );
    assert!(baseline.metrics_text.contains("serve_requests_total"));

    for threads in [2usize, 8] {
        let pool = rayon::ThreadPool::new(threads);
        let run = pool.install(run_serving);
        assert_eq!(
            run.results_jsonl, baseline.results_jsonl,
            "serving results diverged at {threads} threads"
        );
        assert_eq!(
            run.journal_jsonl, baseline.journal_jsonl,
            "serving journal diverged at {threads} threads"
        );
        assert_eq!(
            run.metrics_text, baseline.metrics_text,
            "metrics snapshot diverged at {threads} threads"
        );
        assert_eq!(run.digest, baseline.digest);
        assert_eq!(pool.outstanding_jobs(), 0, "pool must be quiescent after the run");
    }
}

#[test]
fn trace_jsonl_roundtrip_preserves_the_run() {
    // A trace written to JSONL and read back drives an identical run —
    // the on-disk form is the determinism boundary, not the in-memory one.
    let data = workloads::uniform::<3>(N, SEED);
    let trace = fixed_trace(&data);
    let roundtripped = ArrivalTrace::<3>::from_jsonl(&trace.to_jsonl()).unwrap();
    assert_eq!(trace, roundtripped);

    let build = || {
        PimServer::new(
            PimZdTree::build(
                &data,
                PimZdConfig::throughput_optimized(N as u64, MODULES),
                MachineConfig::with_modules(MODULES),
            ),
            ServeConfig::default(),
        )
    };
    let a = build().run_trace(&trace);
    let b = build().run_trace(&roundtripped);
    assert_eq!(a.results_jsonl(), b.results_jsonl());
    assert_eq!(a.journal_jsonl(), b.journal_jsonl());
}

#[test]
fn snapshot_reads_observe_exactly_the_pre_batch_epoch() {
    // Hand-built trace with deterministic overlap. With max_batch = 200
    // and no estimator history, the size target is exactly 200:
    //   * 199 inserts at t=0 stay below it, seal by budget at t=1000, and
    //     dispatch (the round takes well over 1 us of virtual time);
    //   * 200 contains-probes at t=1001 hit the size target on arrival and
    //     dispatch immediately — while the insert round is in flight;
    //   * a late probe wave at t=1s runs after everything drained.
    // The mid-flight probes must run against the pre-batch snapshot:
    // pre-batch epoch in the reply, none of the in-flight points visible.
    let data = workloads::uniform::<3>(N, SEED);
    let tree = PimZdTree::build(
        &data,
        PimZdConfig::throughput_optimized(N as u64, MODULES),
        MachineConfig::with_modules(MODULES),
    );
    let epoch0 = tree.epoch();
    let fresh: Vec<Point<3>> =
        (0..200u32).map(|i| Point::new([500_000 + i, 500_000, 500_000])).collect();

    let mut arrivals: Vec<Arrival<3>> =
        fresh[..199].iter().map(|p| Arrival { t_us: 0, op: ReqOp::Insert(*p) }).collect();
    arrivals.extend(fresh.iter().map(|p| Arrival { t_us: 1_001, op: ReqOp::Contains(*p) }));
    arrivals
        .extend(fresh[..199].iter().map(|p| Arrival { t_us: 1_000_000, op: ReqOp::Contains(*p) }));

    let cfg = ServeConfig {
        policy: BatchPolicy {
            budget_us: 1_000,
            min_batch: 1,
            max_batch: 200,
            ..BatchPolicy::default()
        },
        ..ServeConfig::default()
    };
    let mut server = PimServer::new(tree, cfg);
    let report = server.run_trace(&ArrivalTrace { arrivals });

    let inserts: Vec<_> = report.replies.iter().filter(|r| r.op == "insert").collect();
    assert_eq!(inserts.len(), 199);
    assert!(inserts.iter().all(|r| r.epoch == epoch0 + 1), "insert batch produced epoch0+1");
    let ins = inserts[0];
    assert_eq!(ins.dispatch_us, 1_000, "insert seals by budget at t=1000");

    // The early probe wave dispatched at t=1001, strictly inside the
    // insert's flight window, and saw the PRE-batch world: old epoch,
    // points absent (fingerprint 0 = "false").
    let early: Vec<_> =
        report.replies.iter().filter(|r| r.op == "contains" && r.arrival_us == 1_001).collect();
    assert_eq!(early.len(), 200);
    assert!(ins.complete_us > 1_001, "a 199-point insert round must outlast 1 us of virtual time");
    for r in &early {
        assert_eq!(r.dispatch_us, 1_001, "size target reached => immediate dispatch");
        assert!(r.dispatch_us >= ins.dispatch_us && r.dispatch_us < ins.complete_us);
        assert_eq!(r.epoch, epoch0, "mid-flight read must be pinned to the pre-batch epoch");
        assert_eq!(r.fingerprint, 0, "mid-flight read must not see in-flight inserts");
    }
    assert!(report.journal_jsonl().contains("\"snapshot\":true"));

    // The late wave ran on the live tree after the write drained: new
    // epoch, all inserted points visible.
    let late: Vec<_> =
        report.replies.iter().filter(|r| r.op == "contains" && r.arrival_us == 1_000_000).collect();
    assert_eq!(late.len(), 199);
    for r in &late {
        assert!(r.dispatch_us >= ins.complete_us);
        assert_eq!(r.epoch, epoch0 + 1);
        assert_eq!(r.fingerprint, 1, "post-completion read must see the applied batch");
    }
}

#[test]
fn closed_loop_replay_matches_at_different_thread_counts() {
    // Record a closed-loop run at 1 thread, replay the recorded trace at 8
    // threads: byte-identical artifacts. This is the full determinism
    // story in one test — record anywhere, replay anywhere.
    let data = workloads::uniform::<3>(N, SEED);
    let load = pim_zd_tree_repro::serve::ClosedLoop {
        clients: 12,
        requests_per_client: 25,
        think_us: 80,
        mix: RequestMix::read_heavy(),
        seed: SEED ^ 0xC10,
    };
    let build = || {
        PimServer::new(
            PimZdTree::build(
                &data,
                PimZdConfig::throughput_optimized(N as u64, MODULES),
                MachineConfig::with_modules(MODULES),
            ),
            ServeConfig::default(),
        )
    };

    let (rep_rec, trace) =
        rayon::ThreadPool::new(1).install(|| build().run_closed_loop(&load, &data));
    let rep_play = rayon::ThreadPool::new(8).install(|| build().run_trace(&trace));
    assert_eq!(rep_rec.results_jsonl(), rep_play.results_jsonl());
    assert_eq!(rep_rec.journal_jsonl(), rep_play.journal_jsonl());

    // The sampler drawing the payloads is itself seed-pure.
    let mut s1 = RequestSampler::new(&data, load.mix, load.seed);
    let mut s2 = RequestSampler::new(&data, load.mix, load.seed);
    for _ in 0..32 {
        assert_eq!(s1.next_op(), s2.next_op());
    }
}
