//! Observability invariants of the metrics registry.
//!
//! Two contracts are held here:
//!
//! 1. **Thread-count invariance** — every metric is fed from the simulator's
//!    sequential accounting blocks, so the full snapshot (exposition text
//!    and JSON) must be *byte-identical* at 1, 2, and 8 executor threads,
//!    exactly like the trace journal in `parallel_determinism.rs`.
//! 2. **Registry ↔ `SimStats` consistency** — the registry is a second
//!    view of the same accounting, not an estimate: round counts and byte
//!    counters must agree exactly, per-module busy cycles must sum to the
//!    machine total, and the float second-sums must agree to rounding.

use pim_zd_tree_repro::sim::Metrics;
use pim_zd_tree_repro::{workloads, MachineConfig, Metric, PimZdConfig, PimZdTree};

const SEED: u64 = 2026;
const N: usize = 6_000;
const MODULES: usize = 16;

/// Seeded mini workload covering every metered path: insert (splices via
/// delete), delete, contains, kNN, box count/fetch. Returns the tree with
/// its metrics handle still attached.
fn run_workload() -> (PimZdTree<3>, Metrics) {
    let pts = workloads::uniform::<3>(N, SEED);
    let cfg = PimZdConfig::skew_resistant(MODULES);
    let mut t = PimZdTree::build(&pts, cfg, MachineConfig::with_modules(MODULES));
    let metrics = Metrics::enabled_new();
    t.set_metrics(metrics.clone());

    let extra = workloads::uniform::<3>(800, SEED + 1);
    t.batch_insert(&extra);
    let _ = t.batch_delete(&pts[..400]);

    let probes = workloads::knn_queries(&pts, 300, SEED + 2);
    let _ = t.batch_contains(&probes);
    let _ = t.batch_knn(&probes[..150], 4, Metric::L2);

    let side = workloads::box_side_for_expected::<3>(N, 30.0);
    let boxes = workloads::box_queries(&pts, 200, side, SEED + 3);
    let _ = t.batch_box_count(&boxes);
    let _ = t.batch_box_fetch(&boxes[..100]);
    (t, metrics)
}

fn snapshots() -> (String, String) {
    let (_, metrics) = run_workload();
    (metrics.snapshot_text().unwrap(), metrics.snapshot_json().unwrap())
}

#[test]
fn metrics_snapshots_are_byte_identical_at_1_2_and_8_threads() {
    let (base_text, base_json) = rayon::ThreadPool::new(1).install(snapshots);
    assert!(base_text.contains("# TYPE sim_rounds_total counter"), "{base_text}");
    assert!(base_text.contains("host_batches_total"), "host feeds missing:\n{base_text}");

    for threads in [2usize, 8] {
        let pool = rayon::ThreadPool::new(threads);
        assert_eq!(pool.current_num_threads(), threads);
        let (text, json) = pool.install(snapshots);
        assert_eq!(text, base_text, "metrics text snapshot diverged at {threads} threads");
        assert_eq!(json, base_json, "metrics JSON snapshot diverged at {threads} threads");
    }
}

#[test]
fn registry_agrees_with_sim_stats() {
    let (t, metrics) = run_workload();
    let stats = t.sim_stats().clone();

    metrics
        .with(|m| {
            // Exact integer counters.
            assert_eq!(m.counter_sum("sim_rounds_total"), stats.rounds);
            assert_eq!(m.counter_sum("sim_cpu_to_pim_bytes_total"), stats.cpu_to_pim_bytes);
            assert_eq!(m.counter_sum("sim_pim_to_cpu_bytes_total"), stats.pim_to_cpu_bytes);
            // Per-module busy cycles partition the machine total exactly.
            assert_eq!(m.counter_sum("sim_module_busy_cycles_total"), stats.total_pim_cycles);

            // Float sums: the registry groups by phase, `SimStats` adds in
            // round order, so allow only summation-order rounding.
            let close = |a: f64, b: f64| (a - b).abs() <= 1e-9 * b.abs().max(1.0);
            assert!(close(m.counter_sum_f("sim_pim_seconds_total"), stats.pim_s));
            assert!(close(m.counter_sum_f("sim_comm_seconds_total"), stats.comm_s));
            assert!(close(m.counter_sum_f("sim_overhead_seconds_total"), stats.overhead_s));

            // Host-side feeds fired for each batched op family.
            for op in ["insert", "delete", "search", "knn", "box_count", "box_fetch"] {
                assert_eq!(
                    m.counter("host_batches_total", &[("op", op)]),
                    Some(1),
                    "missing host batch counter for {op}"
                );
            }
            // The fault-free workload must not invent fault metrics.
            assert_eq!(m.counter_sum("sim_faults_total"), 0);
            assert_eq!(m.counter_sum("sim_retries_total"), 0);
        })
        .expect("metrics handle is enabled");
}

#[test]
fn detached_run_records_nothing_and_changes_no_results() {
    // The same workload with metrics never attached must produce the same
    // query results (observability is passive) — spot-check via stats.
    let (a, metrics) = run_workload();
    let pts = workloads::uniform::<3>(N, SEED);
    let cfg = PimZdConfig::skew_resistant(MODULES);
    let mut b = PimZdTree::build(&pts, cfg, MachineConfig::with_modules(MODULES));
    let extra = workloads::uniform::<3>(800, SEED + 1);
    b.batch_insert(&extra);
    let _ = b.batch_delete(&pts[..400]);
    let probes = workloads::knn_queries(&pts, 300, SEED + 2);
    let _ = b.batch_contains(&probes);
    let _ = b.batch_knn(&probes[..150], 4, Metric::L2);
    let side = workloads::box_side_for_expected::<3>(N, 30.0);
    let boxes = workloads::box_queries(&pts, 200, side, SEED + 3);
    let _ = b.batch_box_count(&boxes);
    let _ = b.batch_box_fetch(&boxes[..100]);

    assert!(!b.metrics().enabled());
    assert_eq!(format!("{:?}", a.sim_stats()), format!("{:?}", b.sim_stats()));
    assert!(metrics.with(|m| m.n_series()).unwrap() > 10, "metered run recorded families");
}
