//! Thread-count invariance of the scale-out shard router.
//!
//! A 4-rank [`ShardedZdTree`] runs a seeded end-to-end workload (build +
//! insert + delete + contains + kNN with cross-shard widening + BoxCount +
//! BoxFetch + a forced skew-driven rebalance) inside explicit 1-, 2-, and
//! 8-thread pools. Ranks execute concurrently on the pool, but every
//! reduction is index-ordered and every rank journals into its own buffer,
//! so the per-rank trace journals, the merged metrics snapshot, per-op
//! `ShardOpStats`, and all query results must be **byte-identical** across
//! the three schedules (ISSUE acceptance criterion; ARCHITECTURE.md §10
//! "determinism quarantine").

use pim_zd_tree_repro::sim::Metrics;
use pim_zd_tree_repro::{
    workloads as wl, MachineConfig, Metric, PimZdConfig, ShardConfig, ShardedZdTree,
};

const SEED: u64 = 2026;
const N: usize = 5_000;
const RANKS: usize = 4;

/// Everything observable from one run, in byte-comparable form.
#[derive(Debug, PartialEq, Eq)]
struct RunArtifacts {
    /// Per-rank JSONL trace journals, rank order.
    journals: Vec<String>,
    /// Merged metrics snapshot (text exposition; sorted and typed).
    metrics: String,
    /// `Debug` rendering of each op's `ShardOpStats` (covers per-rank and
    /// aggregate simulated seconds, bytes, rounds, imbalance bit-for-bit).
    op_stats: Vec<String>,
    /// Query results flattened to a fingerprint stream.
    results: Vec<u64>,
    /// (leaf moves, cell splits, migrated points) after the forced rebalance.
    rebalance: (u64, u64, u64),
}

/// The seeded workload; must be a pure function of `SEED`.
fn run_workload() -> RunArtifacts {
    let data = wl::uniform::<3>(N, SEED);
    let mut scfg = ShardConfig::new(RANKS);
    scfg.rebalance_threshold = 1.05; // make the rebalancer part of the run
    let zcfg = PimZdConfig::throughput_optimized(N as u64, 16);
    let mut t = ShardedZdTree::build(&data, scfg, zcfg, MachineConfig::with_modules(16));
    let journals = t.attach_journals();
    let metrics = Metrics::enabled_new();
    t.set_metrics(metrics.clone());

    let mut op_stats = Vec::new();
    let mut results = Vec::new();
    let snap = |t: &ShardedZdTree<3>, results: &mut Vec<u64>, fp: u64| {
        results.push(fp);
        format!("{:?}", t.last_shard_stats())
    };

    let extra = wl::point_queries(&data, 600, 9, SEED ^ 0xA);
    t.batch_insert(&extra);
    op_stats.push(snap(&t, &mut results, t.len() as u64));

    let removed = t.batch_delete(&extra[..250]);
    op_stats.push(snap(&t, &mut results, removed as u64));

    let probes = wl::point_queries(&data, 300, 2, SEED ^ 0xB);
    let found = t.batch_contains(&probes);
    op_stats.push(snap(&t, &mut results, found.iter().filter(|&&f| f).count() as u64));

    // Hot-cell kNN storm: concentrates heat so the skew rebalancer fires.
    let hot = wl::hot_cell_queries(&data, 400, 0.8, 8, SEED ^ 0xC);
    for _ in 0..3 {
        let rows = t.batch_knn(&hot, 10, Metric::L2);
        let fp = rows.iter().flatten().fold(0u64, |acc, (d, p)| {
            acc.wrapping_mul(0x100000001B3).wrapping_add(d ^ p.coords[0] as u64)
        });
        op_stats.push(snap(&t, &mut results, fp));
    }

    let side = wl::box_side_for_expected::<3>(N, 50.0);
    let boxes = wl::box_queries(&data, 120, side, SEED ^ 0xD);
    let counts = t.batch_box_count(&boxes);
    op_stats.push(snap(&t, &mut results, counts.iter().sum()));
    let fetched = t.batch_box_fetch(&boxes);
    op_stats.push(snap(&t, &mut results, fetched.iter().map(|v| v.len() as u64).sum()));

    let (moves, splits, migrated) = t.rebalance_counters();
    t.merge_rank_metrics();
    RunArtifacts {
        journals: journals.iter().map(|j| j.to_jsonl()).collect(),
        metrics: metrics.snapshot_text().expect("metrics enabled"),
        op_stats,
        results,
        rebalance: (moves, splits, migrated),
    }
}

#[test]
fn four_rank_run_is_byte_identical_at_1_2_8_threads() {
    let baseline = rayon::ThreadPool::new(1).install(run_workload);
    assert!(
        baseline.journals.iter().any(|j| !j.is_empty()),
        "the workload must journal rounds on at least one rank"
    );
    assert!(
        baseline.rebalance.0 + baseline.rebalance.1 > 0,
        "the hot-cell storm must trigger the rebalancer (moves={} splits={})",
        baseline.rebalance.0,
        baseline.rebalance.1
    );
    for threads in [2usize, 8] {
        let pool = rayon::ThreadPool::new(threads);
        assert_eq!(pool.current_num_threads(), threads);
        let run = pool.install(run_workload);
        for (r, (a, b)) in baseline.journals.iter().zip(&run.journals).enumerate() {
            assert_eq!(a, b, "rank {r} journal diverged at {threads} threads");
        }
        assert_eq!(run.metrics, baseline.metrics, "metrics diverged at {threads} threads");
        assert_eq!(run.op_stats, baseline.op_stats, "op stats diverged at {threads} threads");
        assert_eq!(run.results, baseline.results, "results diverged at {threads} threads");
        assert_eq!(run.rebalance, baseline.rebalance, "rebalance diverged at {threads} threads");
    }
}

/// Repeated runs inside the *same* pool are also identical (no hidden
/// global state leaks between `ShardedZdTree` instances).
#[test]
fn repeated_runs_in_one_pool_are_identical() {
    let pool = rayon::ThreadPool::new(4);
    let a = pool.install(run_workload);
    let b = pool.install(run_workload);
    assert_eq!(a, b);
}
