//! Fault injection and recovery: the index must survive module failures.
//!
//! Three contracts are held here, end to end:
//!
//! 1. **Scripted kill**: fail-stopping live modules mid-workload loses no
//!    data — every query still agrees with the shared-memory oracle, the
//!    dead modules' masters are salvaged and re-homed, and the trace
//!    journal shows the salvage rounds.
//! 2. **Seeded injection**: under a `FaultPlan` mixing transient handler
//!    faults, reply drops/corruptions, stragglers, and permanent deaths,
//!    query results are *identical* to the fault-free run (retry and
//!    recovery are exact, not approximate).
//! 3. **Determinism**: the same fault seed yields byte-identical trace
//!    journals and results at 1, 2, and 8 host threads — fault draws are
//!    part of PR 2's thread-count-invariance contract.

use pim_zd_tree_repro::sim::trace::JournalSink;
use pim_zd_tree_repro::{
    workloads, FaultConfig, FaultPlan, MachineConfig, Metric, PimZdConfig, PimZdTree,
};
use pim_zdtree_base::ZdTree;
use proptest::prelude::*;

const MODULES: usize = 16;

fn build_index(n: usize, seed: u64) -> (Vec<pim_zd_tree_repro::Point<3>>, PimZdTree<3>) {
    let pts = workloads::uniform::<3>(n, seed);
    let cfg = PimZdConfig::throughput_optimized(n as u64, MODULES);
    let t = PimZdTree::build(&pts, cfg, MachineConfig::with_modules(MODULES));
    (pts, t)
}

/// Query fingerprints covering all operation families.
fn query_fingerprint(t: &mut PimZdTree<3>, pts: &[pim_zd_tree_repro::Point<3>]) -> Vec<u64> {
    let mut out = Vec::new();
    let probes: Vec<_> = pts.iter().step_by(23).copied().collect();
    out.extend(t.batch_contains(&probes).iter().map(|&b| b as u64));
    let queries = workloads::knn_queries(pts, 40, 7);
    for (d, p) in t.batch_knn(&queries, 4, Metric::L2).iter().flatten() {
        out.push(d ^ u64::from(p.coords[0]));
    }
    let side = workloads::box_side_for_expected::<3>(pts.len().max(1), 20.0);
    let boxes = workloads::box_queries(pts, 30, side, 11);
    out.extend(t.batch_box_count(&boxes));
    out
}

#[test]
fn scripted_kills_preserve_oracle_results_and_journal_recovery() {
    let (pts, mut t) = build_index(8_000, 42);
    let cfg_leaf_cap = t.cfg.leaf_cap;
    let mut meter = pim_memsim::CpuMeter::new(pim_memsim::CpuConfig::xeon());

    let (sink, journal) = JournalSink::new();
    t.set_trace_sink(Box::new(sink));

    // Kill three modules; with thousands of points over 16 modules each
    // holds master fragments, so recovery must migrate data.
    for m in [1usize, 7, 12] {
        t.kill_module(m);
    }

    // Updates after the kills: recovery runs inside the first round.
    let extra = workloads::uniform::<3>(600, 43);
    t.batch_insert(&extra);
    let removed = t.batch_delete(&pts[..300]);

    let mut all: Vec<_> = pts[300..].to_vec();
    all.extend_from_slice(&extra);
    let oracle2 = ZdTree::build(&all, cfg_leaf_cap);
    assert_eq!(removed, 300, "deletes must still find their targets");

    // Every query family agrees with the oracle built from surviving data.
    let probes: Vec<_> = all.iter().step_by(17).copied().collect();
    assert_eq!(
        t.batch_contains(&probes),
        oracle2.batch_contains(&probes, &mut meter),
        "contains diverged after module deaths"
    );
    let queries = workloads::knn_queries(&all, 30, 5);
    assert_eq!(
        t.batch_knn(&queries, 8, Metric::L2),
        oracle2.batch_knn(&queries, 8, Metric::L2, &mut meter),
        "kNN diverged after module deaths"
    );
    let side = workloads::box_side_for_expected::<3>(all.len(), 50.0);
    let boxes = workloads::box_queries(&all, 25, side, 9);
    let got = t.batch_box_count(&boxes);
    let brute: Vec<u64> = boxes.iter().map(|b| oracle2.box_count(b, &mut meter)).collect();
    assert_eq!(got, brute, "box counts diverged after module deaths");

    // Recovery observable: salvages happened, the dead modules are
    // evacuated, and the journal carries Salvage rounds + fault events.
    let log = t.fault_log();
    assert_eq!(log.deaths, 3);
    assert!(log.salvages >= 3, "each dead module is salvaged once");
    assert!(log.salvaged_bytes > 0);
    assert_eq!(t.n_live_modules(), MODULES - 3);
    let jsonl = journal.to_jsonl();
    assert!(jsonl.contains("\"kind\":\"Salvage\""), "journal must show salvage rounds");
    assert!(jsonl.contains("\"faults\":"), "journal must carry fault events");
}

#[test]
fn seeded_fault_plan_matches_fault_free_results() {
    // Fault-free baseline.
    let (pts, mut base) = build_index(5_000, 77);
    let extra = workloads::uniform::<3>(400, 78);
    base.batch_insert(&extra);
    let mut all = pts.clone();
    all.extend_from_slice(&extra);
    let want = query_fingerprint(&mut base, &all);

    // Same workload under an aggressive mixed plan (transients, drops,
    // corruptions, stragglers, rare deaths).
    let (_, mut t) = build_index(5_000, 77);
    t.set_fault_plan(Some(FaultPlan::new(FaultConfig::uniform(0.15, 0xF00D))));
    t.batch_insert(&extra);
    let got = query_fingerprint(&mut t, &all);

    assert_eq!(got, want, "recoverable faults must not change any query result");
    let log = t.fault_log();
    assert!(log.total_faults() > 0, "the plan must actually inject at this rate");
    assert!(log.retries > 0, "transient faults must force retries");
}

#[test]
fn fault_journal_is_byte_identical_across_thread_counts() {
    let run = || {
        let (pts, mut t) = build_index(4_000, 99);
        let (sink, journal) = JournalSink::new();
        t.set_trace_sink(Box::new(sink));
        t.set_fault_plan(Some(FaultPlan::new(FaultConfig::uniform(0.12, 0xBEEF))));
        let extra = workloads::uniform::<3>(500, 100);
        t.batch_insert(&extra);
        t.kill_module(3);
        let mut all = pts;
        all.extend_from_slice(&extra);
        let fp = query_fingerprint(&mut t, &all);
        let log = format!("{:?}", t.fault_log());
        (journal.to_jsonl(), fp, log)
    };
    let baseline = rayon::ThreadPool::new(1).install(run);
    assert!(baseline.0.contains("\"faults\":"), "plan must inject during the workload");
    for threads in [2usize, 8] {
        let out = rayon::ThreadPool::new(threads).install(run);
        assert_eq!(out.0, baseline.0, "fault journal diverged at {threads} threads");
        assert_eq!(out.1, baseline.1, "query results diverged at {threads} threads");
        assert_eq!(out.2, baseline.2, "fault log diverged at {threads} threads");
    }
}

#[test]
fn zero_rate_plan_changes_nothing() {
    let run = |plan: Option<FaultPlan>| {
        let (pts, mut t) = build_index(3_000, 55);
        let (sink, journal) = JournalSink::new();
        t.set_trace_sink(Box::new(sink));
        t.set_fault_plan(plan);
        let extra = workloads::uniform::<3>(300, 56);
        t.batch_insert(&extra);
        let mut all = pts;
        all.extend_from_slice(&extra);
        let fp = query_fingerprint(&mut t, &all);
        (journal.to_jsonl(), fp)
    };
    let without = run(None);
    let with = run(Some(FaultPlan::new(FaultConfig::uniform(0.0, 123))));
    assert_eq!(with.0, without.0, "a zero-rate plan must not change journal bytes");
    assert_eq!(with.1, without.1, "a zero-rate plan must not change results");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Oracle equivalence under injection: for any seed and rate in the
    /// recoverable band, the faulted index answers queries exactly like
    /// the fault-free one.
    #[test]
    fn any_recoverable_plan_preserves_query_results(
        seed in 0u64..1u64 << 48,
        rate_milli in 0u64..250,
    ) {
        let rate = rate_milli as f64 / 1000.0;
        let pts = workloads::uniform::<3>(1_200, 7);
        let cfg = PimZdConfig::throughput_optimized(1_200u64, 8);

        let mut base = PimZdTree::build(&pts, cfg, MachineConfig::with_modules(8));
        let extra = workloads::uniform::<3>(150, 8);
        base.batch_insert(&extra);
        let mut all = pts.clone();
        all.extend_from_slice(&extra);
        let want = query_fingerprint(&mut base, &all);

        let mut t = PimZdTree::build(&pts, cfg, MachineConfig::with_modules(8));
        t.set_fault_plan(Some(FaultPlan::new(FaultConfig::uniform(rate, seed))));
        t.batch_insert(&extra);
        let got = query_fingerprint(&mut t, &all);
        prop_assert_eq!(got, want);
    }
}
