//! Executor regression and stress tests (vendor/rayon).
//!
//! The budget-leak regression: the pre-pool facade skipped its
//! `release_thread` bookkeeping when `join`'s first closure panicked. The
//! executor now returns the job budget with an RAII guard dropped on every
//! path, including unwinds — these tests panic in `a`, in `b`, and in both,
//! then assert the pool is quiescent *and still usable*.
//!
//! The stress shape from the issue: nested `join` at depth ≥ 3 inside a
//! `par_iter` with far more tasks than threads, checked for deadlock
//! freedom (including on a 1-thread pool, where `join` must run everything
//! inline or steal it back), correct results, and a restored budget.

use rayon::prelude::*;
use rayon::ThreadPool;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// The panic payload as a string, for asserting *which* panic propagated.
fn payload_str(p: &(dyn std::any::Any + Send)) -> &str {
    p.downcast_ref::<&str>()
        .copied()
        .or_else(|| p.downcast_ref::<String>().map(String::as_str))
        .unwrap_or("<non-string payload>")
}

#[test]
fn panic_in_first_closure_propagates_and_restores_budget() {
    let pool = ThreadPool::new(2);
    let err =
        catch_unwind(AssertUnwindSafe(|| pool.install(|| rayon::join(|| panic!("boom-a"), || 7))))
            .expect_err("panic must propagate out of join");
    assert_eq!(payload_str(&*err), "boom-a");
    assert_eq!(pool.outstanding_jobs(), 0, "budget leaked on `a` panic");

    // The regression's real symptom: the pool wedged afterwards.
    assert_eq!(pool.install(|| rayon::join(|| 1, || 2)), (1, 2));
    assert_eq!(pool.outstanding_jobs(), 0);
}

#[test]
fn panic_in_second_closure_propagates_and_restores_budget() {
    let pool = ThreadPool::new(2);
    let err = catch_unwind(AssertUnwindSafe(|| {
        pool.install(|| rayon::join(|| 7, || -> u32 { panic!("boom-b") }))
    }))
    .expect_err("panic must propagate out of join");
    assert_eq!(payload_str(&*err), "boom-b");
    assert_eq!(pool.outstanding_jobs(), 0, "budget leaked on `b` panic");
    assert_eq!(pool.install(|| rayon::join(|| 3, || 4)), (3, 4));
}

#[test]
fn double_panic_propagates_first_closure_and_restores_budget() {
    let pool = ThreadPool::new(2);
    let err = catch_unwind(AssertUnwindSafe(|| {
        pool.install(|| rayon::join(|| -> u32 { panic!("boom-a") }, || -> u32 { panic!("boom-b") }))
    }))
    .expect_err("panic must propagate out of join");
    // Both closures panicked; `a`'s payload wins (the documented order).
    assert_eq!(payload_str(&*err), "boom-a");
    assert_eq!(pool.outstanding_jobs(), 0, "budget leaked on double panic");
    assert_eq!(pool.install(|| rayon::join(|| 5, || 6)), (5, 6));
}

#[test]
fn panic_inside_par_iter_propagates_and_restores_budget() {
    let pool = ThreadPool::new(3);
    let v: Vec<u64> = (0..500).collect();
    let err = catch_unwind(AssertUnwindSafe(|| {
        pool.install(|| {
            v.par_iter()
                .with_min_len(1)
                .map(|&x| if x == 313 { panic!("boom-item") } else { x })
                .collect::<Vec<u64>>()
        })
    }))
    .expect_err("item panic must propagate out of collect");
    assert_eq!(payload_str(&*err), "boom-item");
    assert_eq!(pool.outstanding_jobs(), 0, "budget leaked on collect panic");
    let ok: Vec<u64> = pool.install(|| v.par_iter().map(|&x| x + 1).collect());
    assert_eq!(ok[499], 500);
}

/// A depth-`d` binary join tree under every item — the issue's stress shape.
fn nested_sum(x: u64, depth: u32) -> u64 {
    if depth == 0 {
        x
    } else {
        let (a, b) = rayon::join(|| nested_sum(x, depth - 1), || nested_sum(x + 1, depth - 1));
        a + b
    }
}

#[test]
fn nested_join_inside_par_iter_with_oversubscription() {
    // 400 tasks on 2 threads, each task a join tree of depth 4 (≥ 3), so the
    // deques constantly hold stolen-back and cross-stolen jobs.
    let expected: Vec<u64> = (0..400u64).map(|x| nested_sum_seq(x, 4)).collect();
    for threads in [1usize, 2, 8] {
        let pool = ThreadPool::new(threads);
        let tasks: Vec<u64> = (0..400).collect();
        let got: Vec<u64> =
            pool.install(|| tasks.par_iter().with_min_len(1).map(|&x| nested_sum(x, 4)).collect());
        assert_eq!(got, expected, "wrong results at {threads} threads");
        assert_eq!(pool.outstanding_jobs(), 0, "budget leaked at {threads} threads");
    }
}

/// Sequential twin of [`nested_sum`] for the expected values.
fn nested_sum_seq(x: u64, depth: u32) -> u64 {
    if depth == 0 {
        x
    } else {
        nested_sum_seq(x, depth - 1) + nested_sum_seq(x + 1, depth - 1)
    }
}

#[test]
fn global_pool_join_panic_propagates_from_external_thread() {
    // Through the lazily built global pool (an external thread injecting):
    // same propagation and budget contract as explicit pools.
    let err =
        catch_unwind(AssertUnwindSafe(|| rayon::join(|| -> u32 { panic!("boom-global") }, || 7)))
            .expect_err("panic must propagate through the injected job");
    assert_eq!(payload_str(&*err), "boom-global");
    assert_eq!(rayon::debug_outstanding_jobs(), 0);
    assert_eq!(rayon::join(|| 1, || 2), (1, 2));
}

#[test]
fn deep_recursion_on_one_thread_does_not_deadlock() {
    // A 1-thread pool must complete arbitrarily nested joins by running or
    // stealing back every child itself.
    let pool = ThreadPool::new(1);
    let total: u64 = pool.install(|| {
        fn sum(lo: u64, hi: u64) -> u64 {
            if hi - lo <= 8 {
                (lo..hi).sum()
            } else {
                let mid = lo + (hi - lo) / 2;
                let (a, b) = rayon::join(|| sum(lo, mid), || sum(mid, hi));
                a + b
            }
        }
        sum(0, 100_000)
    });
    assert_eq!(total, (0..100_000u64).sum());
    assert_eq!(pool.outstanding_jobs(), 0);
}
