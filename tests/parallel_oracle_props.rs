//! Property tests: the parallel batch query paths vs a sequential oracle.
//!
//! `par_batch_knn` / `par_batch_box_count` / `par_batch_box_fetch` /
//! `par_batch_contains` execute on the real work-stealing pool; each
//! property compares them against a brute-force scan of the input multiset
//! under all three metrics. Inputs are drawn from a tiny coordinate cube so
//! duplicate points are common, and `k` ranges past the tree size — the two
//! edge cases where a wrong tie rule or off-by-one would hide.
//!
//! The CI matrix runs this file under `RAYON_NUM_THREADS` 1 and 4, so the
//! oracle equality is itself checked under two schedules.

use pim_geom::{Aabb, Metric, Point};
use pim_zdtree_base::ZdTree;
use proptest::prelude::*;

const METRICS: [Metric; 3] = [Metric::L1, Metric::L2, Metric::Linf];

/// Points in a 8×8×8 cube: collisions (duplicates) arrive quickly.
fn tiny_point() -> impl Strategy<Value = Point<3>> {
    (0u32..8, 0u32..8, 0u32..8).prop_map(|(x, y, z)| Point::new([x, y, z]))
}

fn tiny_points(max: usize) -> impl Strategy<Value = Vec<Point<3>>> {
    proptest::collection::vec(tiny_point(), 1..max)
}

/// Brute-force kNN over the stored multiset: every stored copy competes,
/// ties resolved by (distance, coordinates) — the tree's documented rule.
fn knn_oracle(data: &[Point<3>], q: &Point<3>, k: usize, metric: Metric) -> Vec<(u64, Point<3>)> {
    let mut all: Vec<(u64, Point<3>)> = data.iter().map(|p| (metric.cmp_dist(q, p), *p)).collect();
    all.sort_unstable_by_key(|(d, p)| (*d, p.coords));
    all.truncate(k);
    all
}

/// A box spanned by two random corners (normalized per dimension).
fn aabb_from(a: Point<3>, b: Point<3>) -> Aabb<3> {
    let lo =
        [a.coords[0].min(b.coords[0]), a.coords[1].min(b.coords[1]), a.coords[2].min(b.coords[2])];
    let hi =
        [a.coords[0].max(b.coords[0]), a.coords[1].max(b.coords[1]), a.coords[2].max(b.coords[2])];
    Aabb::new(Point::new(lo), Point::new(hi))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Parallel batch kNN ≡ brute force, all metrics, k from 0 past |tree|.
    #[test]
    fn par_batch_knn_matches_brute_force(
        data in tiny_points(40),
        queries in tiny_points(6),
        k in 0usize..64,
        leaf_cap in 1usize..6,
    ) {
        let tree = ZdTree::build(&data, leaf_cap);
        prop_assert_eq!(tree.len(), data.len());
        for metric in METRICS {
            let got = tree.par_batch_knn(&queries, k, metric);
            for (q, res) in queries.iter().zip(&got) {
                let want = knn_oracle(&data, q, k, metric);
                prop_assert_eq!(res.len(), want.len().min(k));
                prop_assert_eq!(res, &want, "kNN diverged under {:?}", metric);
            }
        }
    }

    /// Parallel BoxCount and BoxFetch ≡ brute-force membership scans; fetch
    /// returns exactly the multiset the count claims.
    #[test]
    fn par_batch_box_queries_match_brute_force(
        data in tiny_points(48),
        corners in proptest::collection::vec((tiny_point(), tiny_point()), 1..8),
        leaf_cap in 1usize..6,
    ) {
        let tree = ZdTree::build(&data, leaf_cap);
        let boxes: Vec<Aabb<3>> = corners.into_iter().map(|(a, b)| aabb_from(a, b)).collect();

        let counts = tree.par_batch_box_count(&boxes);
        let fetched = tree.par_batch_box_fetch(&boxes);
        prop_assert_eq!(counts.len(), boxes.len());
        prop_assert_eq!(fetched.len(), boxes.len());

        for ((b, count), hits) in boxes.iter().zip(&counts).zip(&fetched) {
            let want_count = data.iter().filter(|p| b.contains(p)).count() as u64;
            prop_assert_eq!(*count, want_count);
            prop_assert_eq!(hits.len() as u64, want_count, "fetch disagrees with count");
            // Compare as multisets: the tree returns Morton order, the
            // oracle input order.
            let mut got: Vec<[u32; 3]> = hits.iter().map(|p| p.coords).collect();
            let mut want: Vec<[u32; 3]> =
                data.iter().filter(|p| b.contains(p)).map(|p| p.coords).collect();
            got.sort_unstable();
            want.sort_unstable();
            prop_assert_eq!(got, want);
        }
    }

    /// Parallel membership ≡ linear scan, probing both present and absent
    /// points.
    #[test]
    fn par_batch_contains_matches_brute_force(
        data in tiny_points(40),
        probes in tiny_points(20),
        leaf_cap in 1usize..6,
    ) {
        let tree = ZdTree::build(&data, leaf_cap);
        let got = tree.par_batch_contains(&probes);
        for (p, present) in probes.iter().zip(&got) {
            prop_assert_eq!(*present, data.contains(p));
        }
    }
}
