//! Determinism of the whole simulation stack and the paper's scaling claims
//! (Table 2 / §7.3 "Sensitivity to Dataset Sizes").

use pim_zd_tree_repro::{workloads, MachineConfig, Metric, PimZdConfig, PimZdTree};

/// Builds, runs a fixed op mix, and fingerprints results + accounting.
fn run_fingerprint(seed: u64) -> (Vec<u64>, u64, u64, u64) {
    let pts = workloads::uniform::<3>(8_000, seed);
    let cfg = PimZdConfig::skew_resistant(16);
    let mut t = PimZdTree::build(&pts, cfg, MachineConfig::with_modules(16));

    let extra = workloads::uniform::<3>(1_000, seed + 1);
    t.batch_insert(&extra);
    let ins = t.last_op_stats().clone();

    let queries = workloads::knn_queries(&pts, 200, seed + 2);
    let knn = t.batch_knn(&queries, 5, Metric::L2);
    let knn_stats = t.last_op_stats().clone();

    let fingerprint: Vec<u64> =
        knn.iter().flat_map(|r| r.iter().map(|(d, p)| d ^ (p.coords[0] as u64))).collect();
    (fingerprint, ins.channel_bytes, knn_stats.channel_bytes, ins.rounds + knn_stats.rounds)
}

#[test]
fn whole_stack_is_deterministic() {
    // Same seed → bit-identical results AND bit-identical accounting, even
    // though modules execute on rayon threads.
    let a = run_fingerprint(42);
    let b = run_fingerprint(42);
    assert_eq!(a, b, "simulation must be deterministic");
    let c = run_fingerprint(43);
    assert_ne!(a.0, c.0, "different seeds must differ");
}

#[test]
fn search_communication_is_independent_of_n() {
    // Theorem 5.3 / §7.3: per-op communication depends on P (and the layer
    // thresholds), not on n. Grow n 8x and check bytes/op stays flat.
    let per_op_bytes = |n: usize| {
        let pts = workloads::uniform::<3>(n, 7);
        let cfg = PimZdConfig::skew_resistant(32);
        let mut t = PimZdTree::build(&pts, cfg, MachineConfig::with_modules(32));
        let q = workloads::knn_queries(&pts, 2_000, 9);
        let _ = t.batch_contains(&q);
        t.last_op_stats().channel_bytes as f64 / 2_000.0
    };
    let small = per_op_bytes(8_000);
    let large = per_op_bytes(64_000);
    assert!(large < small * 2.0, "search bytes/op grew with n: {small:.1} → {large:.1}");
}

#[test]
fn space_is_linear_in_n() {
    // Theorem 5.1: space = O(n + replication terms).
    let space = |n: usize| {
        let pts = workloads::uniform::<3>(n, 3);
        let cfg = PimZdConfig::throughput_optimized(n as u64, 16);
        PimZdTree::build(&pts, cfg, MachineConfig::with_modules(16)).space_bytes()
    };
    let s1 = space(10_000);
    let s4 = space(40_000);
    let ratio = s4 as f64 / s1 as f64;
    assert!(
        (2.5..=6.0).contains(&ratio),
        "space should scale ≈linearly: 4x points → {ratio:.2}x bytes"
    );
}

#[test]
fn skew_resistant_space_overhead_is_bounded() {
    // Table 2: both configurations take O(n) space; the skew-resistant
    // caching multiplies structure bytes by a bounded factor only.
    let pts = workloads::uniform::<3>(30_000, 5);
    let thr = PimZdTree::build(
        &pts,
        PimZdConfig::throughput_optimized(30_000, 32),
        MachineConfig::with_modules(32),
    )
    .space_bytes();
    let skw =
        PimZdTree::build(&pts, PimZdConfig::skew_resistant(32), MachineConfig::with_modules(32))
            .space_bytes();
    let ratio = skw as f64 / thr as f64;
    assert!(ratio < 4.0, "skew-resistant space blew up: {ratio:.2}x");
}

#[test]
fn load_stays_balanced_on_uniform_batches() {
    // Lemma 5.2 regime: batch ≫ P log P ⇒ whp-balanced PIM execution.
    let pts = workloads::uniform::<3>(40_000, 6);
    let cfg = PimZdConfig::throughput_optimized(40_000, 32);
    let mut t = PimZdTree::build(&pts, cfg, MachineConfig::with_modules(32));
    let q = workloads::knn_queries(&pts, 20_000, 8);
    let _ = t.batch_contains(&q);
    let s = t.last_op_stats().clone();
    assert!(
        s.worst_imbalance < 4.0,
        "uniform batch should be balanced, got {:.2}x",
        s.worst_imbalance
    );
}

#[test]
fn rounds_are_bounded_by_layer_depth() {
    // Theorem 5.3: worst-case O(log_B θ_L0) communication rounds per batch.
    let pts = workloads::uniform::<3>(50_000, 10);
    let cfg = PimZdConfig::skew_resistant(32);
    let mut t = PimZdTree::build(&pts, cfg, MachineConfig::with_modules(32));
    let q = workloads::knn_queries(&pts, 5_000, 11);
    let _ = t.batch_contains(&q);
    let s = t.last_op_stats().clone();
    assert!(s.rounds <= 12, "search took {} rounds", s.rounds);
}
