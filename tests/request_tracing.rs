//! Cross-layer linkage and determinism of causal request tracing.
//!
//! The serving tracer's contract (`pim-serve::trace`, ARCHITECTURE.md §9):
//!
//! 1. **Linkage** — every non-rejected reply resolves to exactly one batch
//!    journal entry, and every batch to at least one simulator round; live
//!    batches' round-id ranges resolve into the round journal.
//! 2. **Exactness** — for 100% of completed requests the five phase spans
//!    (queue/wait/cpu/pim/comm) sum to the reply latency, exactly.
//! 3. **Determinism** — span stream, batch stream, round journal, and the
//!    trace-event export are byte-identical at 1, 2, and 8 threads.
//! 4. **Zero-cost-off** — tracing on vs off changes no reply and no
//!    journal byte.
//!
//! The trace-event export is additionally run through the same shape
//! validator CI applies to generated files (`pim_bench::trace_events`).

use pim_bench::trace_events::validate_trace_events;
use pim_zd_tree_repro::serve::{BatchPolicy, PimServer, ServeConfig, ServeReport, ServeTrace};
use pim_zd_tree_repro::sim::{JournalSink, RoundRecord};
use pim_zd_tree_repro::workloads::{open_loop_trace, ArrivalTrace, RequestMix};
use pim_zd_tree_repro::{workloads, MachineConfig, PimZdConfig, PimZdTree, Point};

const SEED: u64 = 2026;
const N: usize = 5_000;
const MODULES: usize = 16;

fn fixed_trace(data: &[Point<3>]) -> ArrivalTrace<3> {
    // Same write-tinged read-heavy shape as tests/serving_determinism.rs:
    // exercises budget seals, size seals, pipelined snapshot reads, and
    // (with the small queue below) admission-control rejections.
    let mix = RequestMix { insert: 25, delete: 10, ..RequestMix::read_heavy() };
    open_loop_trace(data, 700, 150_000.0, &mix, SEED ^ 0x7ACE)
}

/// One traced serving run: the report, the span/batch record, and the
/// simulator round journal.
fn traced_run(tracing: bool) -> (ServeReport, Option<ServeTrace>, Vec<RoundRecord>) {
    let data = workloads::uniform::<3>(N, SEED);
    let tree = PimZdTree::build(
        &data,
        PimZdConfig::throughput_optimized(N as u64, MODULES),
        MachineConfig::with_modules(MODULES),
    );
    let cfg = ServeConfig {
        policy: BatchPolicy { budget_us: 500, ..BatchPolicy::default() },
        queue_cap: 96,
        snapshot_reads: true,
    };
    let mut server = PimServer::new(tree, cfg);
    let (sink, journal) = JournalSink::new();
    server.set_trace_sink(Box::new(sink));
    server.set_tracing(tracing);
    let report = server.run_trace(&fixed_trace(&data));
    (report, server.take_trace(), journal.snapshot())
}

#[test]
fn every_completed_reply_links_to_one_batch_and_its_rounds() {
    let (report, trace, rounds) = traced_run(true);
    let trace = trace.expect("tracing was on");
    assert_eq!(trace.requests.len(), report.replies.len(), "one span record per request");
    assert!(report.rejected > 0, "the fixed trace must exercise rejections");
    assert!(trace.batches.iter().any(|b| b.snapshot), "and pipelined snapshot reads");

    for (reply, rt) in report.replies.iter().zip(&trace.requests) {
        assert_eq!(rt.id.0, reply.id, "span records are in reply order");
        assert_eq!(rt.op, reply.op);
        assert_eq!(rt.rejected, reply.rejected);
        assert_eq!(rt.arrival_us, reply.arrival_us);
        if reply.rejected {
            assert_eq!(rt.batch, None);
            assert_eq!(rt.span_sum_us(), 0);
            continue;
        }
        // Exactness: the five spans sum to the reply latency for 100% of
        // completed requests — not approximately, not 99% of them.
        assert_eq!(
            rt.span_sum_us(),
            reply.latency_us(),
            "spans of request {} must sum to its latency",
            reply.id
        );
        assert_eq!(rt.dispatch_us, reply.dispatch_us);
        assert_eq!(rt.complete_us, reply.complete_us);

        // Linkage: exactly one batch journal entry owns the request.
        let seq = rt.batch.expect("completed request has a batch");
        let batch = trace.batch(seq).expect("the batch is journaled");
        assert_eq!(batch.epoch, reply.epoch, "reply epoch comes from the batch");
        assert!(batch.sealed_us >= rt.arrival_us && batch.dispatch_us == rt.dispatch_us);
        assert_eq!(trace.batches.iter().filter(|b| b.seq == seq).count(), 1);
    }

    // Every batch produced at least one simulator round, and live batches'
    // round ranges resolve into the round journal (snapshot batches run on
    // a private machine whose rounds are deliberately not journaled).
    for b in &trace.batches {
        assert!(b.round_hi > b.round_lo, "batch {} produced no rounds", b.seq);
        assert_eq!(b.service_us, b.complete_us - b.dispatch_us);
        assert_eq!(b.cpu_us + b.pim_us + b.comm_us, b.service_us, "batch-level exactness");
        if b.snapshot {
            assert!(!b.owns_round(b.round_lo), "snapshot ranges never resolve as live");
        } else {
            for round in b.round_lo..b.round_hi {
                assert!(b.owns_round(round));
                assert!(
                    rounds.iter().any(|r| r.round == round),
                    "live round {round} of batch {} missing from the journal",
                    b.seq
                );
            }
        }
    }
    // Live ranges tile without overlap: no round is owned by two batches.
    for r in &rounds {
        assert!(
            trace.batches.iter().filter(|b| b.owns_round(r.round)).count() <= 1,
            "round {} owned by more than one batch",
            r.round
        );
    }
}

#[test]
fn trace_artifacts_are_byte_identical_at_1_2_and_8_threads() {
    let run = || {
        let (report, trace, rounds) = traced_run(true);
        let trace = trace.unwrap();
        (
            trace.spans_jsonl(),
            trace.batches_jsonl(),
            trace.trace_events(&rounds),
            report.results_jsonl(),
        )
    };
    let baseline = rayon::ThreadPool::new(1).install(run);
    assert!(!baseline.0.is_empty() && !baseline.2.is_empty());
    for threads in [2usize, 8] {
        let got = rayon::ThreadPool::new(threads).install(run);
        assert_eq!(got.0, baseline.0, "span stream diverged at {threads} threads");
        assert_eq!(got.1, baseline.1, "batch stream diverged at {threads} threads");
        assert_eq!(got.2, baseline.2, "trace-event export diverged at {threads} threads");
        assert_eq!(got.3, baseline.3, "replies diverged at {threads} threads");
    }
}

#[test]
fn tracing_is_pure_observation() {
    let (with, _, rounds_with) = traced_run(true);
    let (without, no_trace, rounds_without) = traced_run(false);
    assert!(no_trace.is_none(), "take_trace yields nothing when tracing is off");
    assert_eq!(with.results_jsonl(), without.results_jsonl());
    assert_eq!(with.journal_jsonl(), without.journal_jsonl());
    assert_eq!(rounds_with.len(), rounds_without.len(), "tracing adds no simulator rounds");
}

#[test]
fn trace_event_export_passes_the_ci_shape_gate() {
    let (_, trace, rounds) = traced_run(true);
    let text = trace.unwrap().trace_events(&rounds);
    let doc = serde_json::from_str(&text).expect("export is well-formed JSON");
    let stats = validate_trace_events(&doc).expect("export passes the shape validator");
    assert!(stats.complete > 0, "request phase spans present");
    assert!(stats.spans > 0, "lane B/E spans present");
    assert!(stats.tracks >= 3, "request + both lane tracks at minimum");
}
