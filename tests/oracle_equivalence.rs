//! Cross-crate integration: the PIM index must agree with the shared-memory
//! zd-tree oracle on every operation, across configurations, datasets, and
//! update schedules.

use pim_memsim::{CpuConfig, CpuMeter};
use pim_zd_tree_repro::{workloads, Aabb, MachineConfig, Metric, PimZdConfig, PimZdTree, Point};
use pim_zdtree_base::ZdTree;

fn meter() -> CpuMeter {
    CpuMeter::new(CpuConfig::xeon())
}

/// Runs the full operation battery comparing index vs oracle.
fn battery(data: &[Point<3>], index: &mut PimZdTree<3>, oracle: &ZdTree<3>, seed: u64) {
    let mut m = meter();

    // Point membership.
    let probes: Vec<Point<3>> = data.iter().step_by(37).copied().collect();
    let got = index.batch_contains(&probes);
    let want = oracle.batch_contains(&probes, &mut m);
    assert_eq!(got, want, "contains diverged");

    // kNN across metrics and k values.
    let queries = workloads::knn_queries(data, 25, seed);
    for metric in [Metric::L2, Metric::L1, Metric::Linf] {
        for k in [1usize, 8] {
            let got = index.batch_knn(&queries, k, metric);
            let want = oracle.batch_knn(&queries, k, metric, &mut m);
            for (qid, (g, w)) in got.iter().zip(&want).enumerate() {
                assert_eq!(g, w, "kNN diverged: metric {metric:?} k={k} q#{qid}");
            }
        }
    }

    // Box queries at three selectivities.
    for expect in [1.0, 10.0, 100.0] {
        let side = workloads::box_side_for_expected::<3>(data.len().max(1), expect);
        let boxes = workloads::box_queries(data, 20, side, seed ^ 0xB0);
        let got = index.batch_box_count(&boxes);
        let want: Vec<u64> = boxes.iter().map(|b| oracle.box_count(b, &mut m)).collect();
        assert_eq!(got, want, "box_count diverged at expect={expect}");

        let got = index.batch_box_fetch(&boxes);
        for (i, b) in boxes.iter().enumerate() {
            let mut g: Vec<[u32; 3]> = got[i].iter().map(|p| p.coords).collect();
            let mut w: Vec<[u32; 3]> =
                oracle.box_fetch(b, &mut m).iter().map(|p| p.coords).collect();
            g.sort_unstable();
            w.sort_unstable();
            assert_eq!(g, w, "box_fetch diverged at expect={expect} box#{i}");
        }
    }
}

#[test]
fn uniform_throughput_mode() {
    let data = workloads::uniform::<3>(10_000, 1);
    let cfg = PimZdConfig::throughput_optimized(10_000, 32);
    let mut index = PimZdTree::build(&data, cfg, MachineConfig::with_modules(32));
    let oracle = ZdTree::build(&data, cfg.leaf_cap);
    battery(&data, &mut index, &oracle, 11);
}

#[test]
fn uniform_skew_resistant_mode() {
    let data = workloads::uniform::<3>(12_000, 2);
    let cfg = PimZdConfig::skew_resistant(32);
    let mut index = PimZdTree::build(&data, cfg, MachineConfig::with_modules(32));
    let oracle = ZdTree::build(&data, cfg.leaf_cap);
    battery(&data, &mut index, &oracle, 22);
}

#[test]
fn osm_like_skewed_data() {
    let data = workloads::osm_like::<3>(10_000, 3);
    let cfg = PimZdConfig::skew_resistant(32);
    let mut index = PimZdTree::build(&data, cfg, MachineConfig::with_modules(32));
    let oracle = ZdTree::build(&data, cfg.leaf_cap);
    battery(&data, &mut index, &oracle, 33);
}

#[test]
fn cosmos_like_data_throughput_mode() {
    let data = workloads::cosmos_like::<3>(10_000, 4);
    let cfg = PimZdConfig::throughput_optimized(10_000, 16);
    let mut index = PimZdTree::build(&data, cfg, MachineConfig::with_modules(16));
    let oracle = ZdTree::build(&data, cfg.leaf_cap);
    battery(&data, &mut index, &oracle, 44);
}

#[test]
fn equivalence_survives_update_schedule() {
    // Interleave inserts and deletes, checking the battery between rounds.
    let initial = workloads::uniform::<3>(6_000, 5);
    let extra = workloads::uniform::<3>(6_000, 6);
    let cfg = PimZdConfig::skew_resistant(16);
    let mut index = PimZdTree::build(&initial, cfg, MachineConfig::with_modules(16));
    let mut oracle = ZdTree::build(&initial, cfg.leaf_cap);
    let mut m = meter();
    let mut live: Vec<Point<3>> = initial.clone();

    for round in 0..3 {
        let ins = &extra[round * 2_000..(round + 1) * 2_000];
        index.batch_insert(ins);
        oracle.batch_insert(ins, &mut m);
        live.extend_from_slice(ins);

        let del: Vec<Point<3>> = live.iter().step_by(5).copied().collect();
        let a = index.batch_delete(&del);
        let b = oracle.batch_delete(&del, &mut m);
        assert_eq!(a, b, "delete count diverged in round {round}");
        // Rebuild the live multiset.
        let removed: std::collections::HashSet<[u32; 3]> = del.iter().map(|p| p.coords).collect();
        let mut budget: std::collections::HashMap<[u32; 3], usize> = Default::default();
        for p in &del {
            *budget.entry(p.coords).or_insert(0) += 1;
        }
        let mut kept = Vec::with_capacity(live.len());
        for p in live {
            if removed.contains(&p.coords) {
                let b = budget.get_mut(&p.coords).unwrap();
                if *b > 0 {
                    *b -= 1;
                    continue;
                }
            }
            kept.push(p);
        }
        live = kept;

        assert_eq!(index.len(), oracle.len(), "sizes diverged in round {round}");
        index.check_invariants(&live);
        battery(&live, &mut index, &oracle, 100 + round as u64);
    }
}

#[test]
fn two_dimensional_equivalence() {
    let data = workloads::uniform::<2>(8_000, 7);
    let cfg = PimZdConfig::throughput_optimized(8_000, 16);
    let mut index = PimZdTree::build(&data, cfg, MachineConfig::with_modules(16));
    let oracle = ZdTree::build(&data, cfg.leaf_cap);
    let mut m = meter();

    let queries: Vec<Point<2>> = data.iter().step_by(400).copied().collect();
    let got = index.batch_knn(&queries, 10, Metric::L2);
    let want = oracle.batch_knn(&queries, 10, Metric::L2, &mut m);
    assert_eq!(got, want, "2D kNN diverged");

    let boxes: Vec<Aabb<2>> = workloads::box_queries(&data, 20, 1 << 27, 8);
    let got = index.batch_box_count(&boxes);
    let want: Vec<u64> = boxes.iter().map(|b| oracle.box_count(b, &mut m)).collect();
    assert_eq!(got, want, "2D box_count diverged");
}

#[test]
fn pkdtree_also_agrees_on_queries() {
    // Sanity: the second baseline answers the same queries identically.
    use pim_pkdtree::PkdTree;
    let data = workloads::uniform::<3>(5_000, 9);
    let cfg = PimZdConfig::throughput_optimized(5_000, 16);
    let mut index = PimZdTree::build(&data, cfg, MachineConfig::with_modules(16));
    let pkd = PkdTree::build(&data, 32);
    let mut m = meter();
    let queries = workloads::knn_queries(&data, 30, 10);
    let got = index.batch_knn(&queries, 6, Metric::L2);
    let want: Vec<_> = queries.iter().map(|q| pkd.knn(q, 6, Metric::L2, &mut m)).collect();
    assert_eq!(got, want);
}
