//! Shape-regression tests: fast, reduced-scale versions of the paper's key
//! evaluation claims. They guard the *qualitative* results (who wins, what
//! stays flat, which direction an ablation moves) so refactors of the cost
//! model or the index can't silently break the reproduction.

use pim_bench::harness::{
    make_queries, run_cell_cpu, run_cell_pim, scaled_cpu, CpuRunner, OpKind, PimRunner,
};
use pim_bench::Dataset;
use pim_geom::Metric;
use pim_sim::MachineConfig;
use pim_workloads as wl;
use pim_zd_tree::{PimZdConfig, PimZdTree};

const N: usize = 120_000;
const MODULES: usize = 512;
const BATCH: usize = 12_000;

fn setup() -> (Vec<pim_geom::Point<3>>, Vec<pim_geom::Point<3>>) {
    Dataset::Uniform.warmup_and_test(N, 99)
}

#[test]
fn fig5_shape_pim_wins_box_count() {
    let (warm, test) = setup();
    let cfg = PimZdConfig::throughput_optimized(N as u64, MODULES);
    let mut pim = PimRunner::new(&warm, cfg, MachineConfig::with_modules(MODULES), "pim");
    let mut pkd = CpuRunner::pkd(&warm);
    let op = OpKind::BoxCount(10.0);
    // Larger batch so the per-round mux overhead is amortized (the regime
    // the paper measures; Fig. 7's low-batch penalty is tested separately).
    let q = make_queries(op, &test, N, BATCH * 4, 1);
    let a = run_cell_pim(&mut pim, op, &q);
    let b = run_cell_cpu(&mut pkd, op, &q);
    assert!(
        a.throughput > 1.2 * b.throughput,
        "BoxCount must favour PIM: {:.2e} !> 1.2×{:.2e}",
        a.throughput,
        b.throughput
    );
    assert!(a.traffic < b.traffic, "and use less memory traffic");
}

#[test]
fn fig5_shape_large_knn_is_pims_weak_spot() {
    let (warm, test) = setup();
    let cfg = PimZdConfig::throughput_optimized(N as u64, MODULES);
    let mut pim = PimRunner::new(&warm, cfg, MachineConfig::with_modules(MODULES), "pim");
    let mut pkd = CpuRunner::pkd(&warm);
    let small = make_queries(OpKind::Knn(1), &test, N, BATCH, 2);
    let large = make_queries(OpKind::Knn(100), &test, N, BATCH, 2);
    let r1 = run_cell_pim(&mut pim, OpKind::Knn(1), &small).throughput
        / run_cell_cpu(&mut pkd, OpKind::Knn(1), &small).throughput;
    let r100 = run_cell_pim(&mut pim, OpKind::Knn(100), &large).throughput
        / run_cell_cpu(&mut pkd, OpKind::Knn(100), &large).throughput;
    assert!(r1 > 1.0, "PIM must win 1-NN (got {r1:.2}x)");
    assert!(
        r100 < r1,
        "the PIM advantage must shrink with k (paper's crossover): {r100:.2} !< {r1:.2}"
    );
}

#[test]
fn fig8_shape_pim_flat_baseline_degrades() {
    let run = |n: usize| {
        let (warm, test) = Dataset::Uniform.warmup_and_test(n, 5);
        let cfg = PimZdConfig::throughput_optimized(n as u64, MODULES);
        let mut pim = PimRunner::new(&warm, cfg, MachineConfig::with_modules(MODULES), "pim");
        let mut zd = CpuRunner::zd(&warm);
        let op = OpKind::Knn(1);
        let q = make_queries(op, &test, n, BATCH, 6);
        (run_cell_pim(&mut pim, op, &q).throughput, run_cell_cpu(&mut zd, op, &q).throughput)
    };
    let (pim_s, zd_s) = run(60_000);
    let (pim_l, zd_l) = run(360_000);
    let pim_drop = pim_s / pim_l;
    let zd_drop = zd_s / zd_l;
    assert!(
        pim_drop < zd_drop,
        "PIM must degrade less with 6x data: pim {pim_drop:.2}x vs zd {zd_drop:.2}x"
    );
    assert!(pim_drop < 1.4, "PIM should be near-flat, dropped {pim_drop:.2}x");
}

#[test]
fn fig9_shape_skew_resistance() {
    let warm = wl::uniform::<3>(N, 7);
    let varden = wl::varden::<3>(N / 10, 8);
    let machine = MachineConfig::with_modules(MODULES);
    let mut thr = PimZdTree::build_with_cpu(
        &warm,
        PimZdConfig::throughput_optimized(N as u64, MODULES),
        machine,
        scaled_cpu(N),
    );
    let mut skw = PimZdTree::build_with_cpu(
        &warm,
        PimZdConfig::skew_resistant(MODULES),
        machine,
        scaled_cpu(N),
    );
    let measure = |t: &mut PimZdTree<3>, frac: f64| {
        let q = wl::mixed_queries(&warm, &varden, BATCH, frac, 9);
        let _ = t.batch_knn(&q, 1, Metric::L2);
        t.last_op_stats().throughput()
    };
    let thr_drop = measure(&mut thr, 0.0) / measure(&mut thr, 0.05);
    let skw_drop = measure(&mut skw, 0.0) / measure(&mut skw, 0.05);
    assert!(
        thr_drop > skw_drop,
        "skew must hurt the throughput-optimized config more: {thr_drop:.2}x vs {skw_drop:.2}x"
    );
}

#[test]
fn table3_shape_coarse_fine_helps_knn() {
    let (warm, test) = setup();
    let machine = MachineConfig::with_modules(MODULES);
    let mut on_cfg = PimZdConfig::throughput_optimized(N as u64, MODULES);
    let mut off_cfg = on_cfg;
    off_cfg.toggles.coarse_fine_knn = false;
    let _ = &mut on_cfg;
    let mut on = PimRunner::new(&warm, on_cfg, machine, "on");
    let mut off = PimRunner::new(&warm, off_cfg, machine, "off");
    let op = OpKind::Knn(10);
    let q = make_queries(op, &test, N, BATCH, 10);
    let t_on = run_cell_pim(&mut on, op, &q).throughput;
    let t_off = run_cell_pim(&mut off, op, &q).throughput;
    assert!(t_on > t_off, "ℓ1-anchored filtering must beat ℓ2-on-PIM: {t_on:.2e} !> {t_off:.2e}");
}

#[test]
fn table2_shape_throughput_config_uses_fewer_rounds() {
    let warm = wl::uniform::<3>(N, 11);
    let machine = MachineConfig::with_modules(MODULES);
    let mut thr =
        PimZdTree::build(&warm, PimZdConfig::throughput_optimized(N as u64, MODULES), machine);
    let mut skw = PimZdTree::build(&warm, PimZdConfig::skew_resistant(MODULES), machine);
    let q = wl::knn_queries(&warm, BATCH, 12);
    let _ = thr.batch_contains(&q);
    let r_thr = thr.last_op_stats().rounds;
    let _ = skw.batch_contains(&q);
    let r_skw = skw.last_op_stats().rounds;
    assert!(r_thr <= 2, "O(1)-communication search, got {r_thr} rounds");
    assert!(r_skw >= r_thr, "finer chunking costs rounds: {r_skw} !>= {r_thr}");
}
