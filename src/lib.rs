//! Umbrella crate for the PIM-zd-tree reproduction workspace.
//!
//! Re-exports the public surface of every member crate so examples and
//! downstream users can depend on a single name. See the workspace README
//! for the architecture overview and DESIGN.md for the paper-to-code map.

pub use pim_geom as geom;
pub use pim_memsim as memsim;
pub use pim_pkdtree as pkdtree;
pub use pim_serve as serve;
pub use pim_sim as sim;
pub use pim_workloads as workloads;
pub use pim_zd_tree as index;
pub use pim_zdtree_base as zdtree;
pub use pim_zorder as zorder;

pub use pim_geom::{Aabb, Metric, Point};
pub use pim_sim::{FaultConfig, FaultLog, FaultPlan, MachineConfig};
pub use pim_zd_tree::{DurabilityError, PimZdConfig, PimZdTree, Wal, WalOp, WalReadMode};
pub use pim_zd_tree::{PlacementTable, ShardConfig, ShardedZdTree};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn facade_builds_an_index() {
        let pts = workloads::uniform::<3>(500, 1);
        let cfg = PimZdConfig::throughput_optimized(500, 8);
        let mut t = PimZdTree::build(&pts, cfg, MachineConfig::with_modules(8));
        assert_eq!(t.len(), 500);
        let found = t.batch_contains(&pts[..10]);
        assert!(found.iter().all(|&f| f));
    }
}
