//! Batch insertions and deletions.
//!
//! Both operations preserve the *canonical* compressed structure: after any
//! update the tree is identical to one freshly built from the resulting
//! point set (history independence, §1 — "the structure is independent of
//! the order of data point insertions"). Insertion merges a sorted batch
//! down the tree in O(k·log(1 + n/k)) work (Lemma 2.1 (iv)); deletion
//! splices emptied nodes and collapses small subtrees back into leaves.

use crate::costs;
use crate::node::{addr, Keyed, Node, NodeId, NodeKind};
use crate::tree::{is_leaf_set, keyed_sorted, set_prefix, ZdTree};
use pim_geom::Point;
use pim_memsim::CpuMeter;
use pim_zorder::prefix::Prefix;

impl<const D: usize> ZdTree<D> {
    /// Inserts a batch of points (multiset semantics: duplicates stack).
    pub fn batch_insert(&mut self, points: &[Point<D>], meter: &mut CpuMeter) {
        if points.is_empty() {
            return;
        }
        // Batch preprocessing: key computation + sort.
        meter.work(points.len() as u64 * (costs::zorder_fast_cycles(D) + costs::SORT_PER_KEY));
        self.charge_batch_state(points.len(), meter);
        let items = keyed_sorted(points);
        self.root = Some(match self.root {
            None => self.build_subtree(&items, meter),
            Some(r) => self.merge(r, &items, meter),
        });
        self.n_points += points.len();
    }

    /// Deletes a batch of points. Each batch element removes at most one
    /// stored instance of that exact point; absent points are ignored.
    /// Returns the number of points actually removed.
    pub fn batch_delete(&mut self, points: &[Point<D>], meter: &mut CpuMeter) -> usize {
        if points.is_empty() || self.root.is_none() {
            return 0;
        }
        meter.work(points.len() as u64 * (costs::zorder_fast_cycles(D) + costs::SORT_PER_KEY));
        self.charge_batch_state(points.len(), meter);
        let items = keyed_sorted(points);
        let mut removed = 0usize;
        self.root = self.remove(self.root.unwrap(), &items, &mut removed, meter);
        self.n_points -= removed;
        removed
    }

    /// Allocates a node, charging the meter for the record write.
    fn alloc_charged(&mut self, node: Node<D>, meter: &mut CpuMeter) -> NodeId {
        let leaf_pts = match &node.kind {
            NodeKind::Leaf { points } => points.len(),
            NodeKind::Internal { .. } => 0,
        };
        let id = self.alloc(node);
        meter.work(costs::NODE_VISIT);
        meter.touch(addr::node(id), addr::NODE_BYTES, true);
        if leaf_pts > 0 {
            let slot = (self.leaf_cap as u64).max(leaf_pts as u64) * (8 + Point::<D>::wire_bytes());
            meter.touch(
                addr::leaf_points(id, slot),
                leaf_pts as u64 * (8 + Point::<D>::wire_bytes()),
                true,
            );
        }
        id
    }

    /// Builds the canonical subtree over sorted `items` with arena
    /// allocation (used for fresh subtrees hanging off a merge).
    pub(crate) fn build_subtree(&mut self, items: &[Keyed<D>], meter: &mut CpuMeter) -> NodeId {
        debug_assert!(!items.is_empty());
        if is_leaf_set(items, self.leaf_cap) {
            return self.alloc_charged(
                Node {
                    prefix: set_prefix(items),
                    count: items.len() as u32,
                    kind: NodeKind::Leaf { points: items.to_vec() },
                },
                meter,
            );
        }
        let pre = set_prefix(items);
        let split = items.partition_point(|(k, _)| k.bit(pre.len) == 0);
        let left = self.build_subtree(&items[..split], meter);
        let right = self.build_subtree(&items[split..], meter);
        self.alloc_charged(
            Node {
                prefix: pre,
                count: items.len() as u32,
                kind: NodeKind::Internal { left, right },
            },
            meter,
        )
    }

    /// Releases an entire subtree's arena slots.
    fn release_subtree(&mut self, id: NodeId) {
        if let NodeKind::Internal { left, right } = self.node(id).kind {
            self.release_subtree(left);
            self.release_subtree(right);
        }
        self.release(id);
    }

    /// Merges sorted `items` into the subtree at `id`, returning the new
    /// subtree root (ids may change as nodes split or collapse).
    fn merge(&mut self, id: NodeId, items: &[Keyed<D>], meter: &mut CpuMeter) -> NodeId {
        if items.is_empty() {
            return id;
        }
        self.charge_visit(id, meter);
        let np = self.node(id).prefix;
        let ncount = self.node(id).count as usize;
        let total = ncount + items.len();

        // Divergence of the batch from this node's prefix: because items are
        // sorted, the minimum common-prefix length over the batch is reached
        // at the first or last item (prefix lengths are an ultrametric).
        let first = items.first().unwrap().0;
        let last = items.last().unwrap().0;
        let b = first.common_prefix_len(np.key).min(last.common_prefix_len(np.key));

        if b < np.len {
            // The batch escapes this node's prefix: a new canonical node
            // appears at depth b (the LCP of the union set).
            if total <= self.leaf_cap {
                // Small union: collapse everything into one leaf.
                let mut all = Vec::with_capacity(total);
                self.collect_points(id, &mut all);
                self.charge_leaf_points(id, ncount, meter);
                self.release_subtree(id);
                all.extend_from_slice(items);
                all.sort_unstable_by_key(|(k, p)| (*k, p.coords));
                meter.work(total as u64 * costs::SORT_PER_KEY);
                return self.build_subtree(&all, meter);
            }
            let new_pre = Prefix::new(np.key, b);
            let node_side = np.key.bit(b);
            let split = items.partition_point(|(k, _)| k.bit(b) == 0);
            let (zero_items, one_items) = items.split_at(split);
            let (same, other) =
                if node_side == 0 { (zero_items, one_items) } else { (one_items, zero_items) };
            debug_assert!(!other.is_empty(), "divergence implies an escaping item");
            let merged_same = self.merge(id, same, meter);
            let built_other = self.build_subtree(other, meter);
            let (left, right) = if node_side == 0 {
                (merged_same, built_other)
            } else {
                (built_other, merged_same)
            };
            return self.alloc_charged(
                Node {
                    prefix: new_pre,
                    count: total as u32,
                    kind: NodeKind::Internal { left, right },
                },
                meter,
            );
        }

        // Batch entirely under this node's prefix.
        match &self.node(id).kind {
            NodeKind::Leaf { points } => {
                // Merge two sorted runs.
                let mut merged = Vec::with_capacity(total);
                let (mut i, mut j) = (0, 0);
                let old = points.clone();
                self.charge_leaf_points(id, old.len(), meter);
                meter.work(total as u64 * 4);
                while i < old.len() && j < items.len() {
                    if (old[i].0, old[i].1.coords) <= (items[j].0, items[j].1.coords) {
                        merged.push(old[i]);
                        i += 1;
                    } else {
                        merged.push(items[j]);
                        j += 1;
                    }
                }
                merged.extend_from_slice(&old[i..]);
                merged.extend_from_slice(&items[j..]);

                if is_leaf_set(&merged, self.leaf_cap) {
                    let pre = set_prefix(&merged);
                    let n = &mut self.nodes[id as usize];
                    n.prefix = pre;
                    n.count = merged.len() as u32;
                    n.kind = NodeKind::Leaf { points: merged };
                    meter.touch(addr::node(id), addr::NODE_BYTES, true);
                    id
                } else {
                    // Leaf overflows: rebuild this subtree canonically.
                    self.release(id);
                    self.build_subtree(&merged, meter)
                }
            }
            NodeKind::Internal { left, right } => {
                let (left, right) = (*left, *right);
                let split = items.partition_point(|(k, _)| k.bit(np.len) == 0);
                let (li, ri) = items.split_at(split);
                let new_left = self.merge(left, li, meter);
                let new_right = self.merge(right, ri, meter);
                let n = &mut self.nodes[id as usize];
                n.count = total as u32;
                n.kind = NodeKind::Internal { left: new_left, right: new_right };
                meter.touch(addr::node(id), addr::NODE_BYTES, true);
                id
            }
        }
    }

    /// Removes sorted `items` from the subtree at `id`; returns the
    /// replacement root (`None` when the subtree empties).
    fn remove(
        &mut self,
        id: NodeId,
        items: &[Keyed<D>],
        removed: &mut usize,
        meter: &mut CpuMeter,
    ) -> Option<NodeId> {
        if items.is_empty() {
            return Some(id);
        }
        self.charge_visit(id, meter);
        let np = self.node(id).prefix;
        // Restrict the batch to the keys this node can contain.
        let (lo, hi) = np.key_range();
        let start = items.partition_point(|(k, _)| k.0 < lo);
        let end = items.partition_point(|(k, _)| k.0 <= hi);
        let items = &items[start..end];
        if items.is_empty() {
            return Some(id);
        }

        match &self.node(id).kind {
            NodeKind::Leaf { points } => {
                let old = points.clone();
                self.charge_leaf_points(id, old.len(), meter);
                meter.work((old.len() + items.len()) as u64 * 4);
                // Two-pointer multiset difference: each batch element removes
                // at most one matching stored instance.
                let mut kept: Vec<Keyed<D>> = Vec::with_capacity(old.len());
                let mut j = 0usize;
                let mut consumed = vec![false; items.len()];
                for entry in &old {
                    while j < items.len()
                        && (items[j].0, items[j].1.coords) < (entry.0, entry.1.coords)
                    {
                        j += 1;
                    }
                    // Find an unconsumed exact match at or after j.
                    let mut jj = j;
                    let mut matched = false;
                    while jj < items.len() && items[jj].0 == entry.0 {
                        if !consumed[jj] && items[jj].1 == entry.1 {
                            consumed[jj] = true;
                            matched = true;
                            break;
                        }
                        jj += 1;
                    }
                    if matched {
                        *removed += 1;
                    } else {
                        kept.push(*entry);
                    }
                }
                if kept.is_empty() {
                    self.release(id);
                    None
                } else {
                    let pre = set_prefix(&kept);
                    let n = &mut self.nodes[id as usize];
                    n.prefix = pre;
                    n.count = kept.len() as u32;
                    n.kind = NodeKind::Leaf { points: kept };
                    meter.touch(addr::node(id), addr::NODE_BYTES, true);
                    Some(id)
                }
            }
            NodeKind::Internal { left, right } => {
                let (left, right) = (*left, *right);
                let split = items.partition_point(|(k, _)| k.bit(np.len) == 0);
                let (li, ri) = items.split_at(split);
                let nl = self.remove(left, li, removed, meter);
                let nr = self.remove(right, ri, removed, meter);
                match (nl, nr) {
                    (None, None) => {
                        self.release(id);
                        None
                    }
                    (Some(c), None) | (None, Some(c)) => {
                        // Splice: compression forbids single-child nodes.
                        self.release(id);
                        Some(c)
                    }
                    (Some(l), Some(r)) => {
                        let count = self.node(l).count + self.node(r).count;
                        if (count as usize) <= self.leaf_cap {
                            // Collapse the small subtree back into one leaf.
                            let mut all = Vec::with_capacity(count as usize);
                            self.collect_points(l, &mut all);
                            self.collect_points(r, &mut all);
                            all.sort_unstable_by_key(|(k, p)| (*k, p.coords));
                            self.release_subtree(l);
                            self.release_subtree(r);
                            let pre = set_prefix(&all);
                            let n = &mut self.nodes[id as usize];
                            n.prefix = pre;
                            n.count = count;
                            n.kind = NodeKind::Leaf { points: all };
                            meter.touch(addr::node(id), addr::NODE_BYTES, true);
                        } else {
                            let n = &mut self.nodes[id as usize];
                            n.count = count;
                            n.kind = NodeKind::Internal { left: l, right: r };
                            meter.touch(addr::node(id), addr::NODE_BYTES, true);
                        }
                        Some(id)
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_memsim::{CpuConfig, CpuMeter};
    use pim_workloads::uniform;

    fn meter() -> CpuMeter {
        CpuMeter::new(CpuConfig::xeon())
    }

    /// Reference: rebuild from scratch and compare the stored multiset.
    fn assert_same_set(t: &ZdTree<3>, expect: &[Point<3>]) {
        let fresh = ZdTree::<3>::build(expect, t.leaf_cap());
        assert_eq!(t.all_points(), fresh.all_points());
        assert_eq!(t.node_count(), fresh.node_count(), "structure not canonical");
    }

    #[test]
    fn insert_into_empty_builds_canonically() {
        let pts = uniform::<3>(3_000, 1);
        let mut t = ZdTree::<3>::new(16);
        t.batch_insert(&pts, &mut meter());
        t.check_invariants();
        assert_same_set(&t, &pts);
    }

    #[test]
    fn staged_inserts_match_fresh_build() {
        let pts = uniform::<3>(6_000, 2);
        let mut t = ZdTree::<3>::new(16);
        let mut m = meter();
        for chunk in pts.chunks(1_000) {
            t.batch_insert(chunk, &mut m);
            t.check_invariants();
        }
        assert_same_set(&t, &pts);
    }

    #[test]
    fn insert_duplicates_stack() {
        let p = Point::new([9u32, 9, 9]);
        let mut t = ZdTree::<3>::new(4);
        let mut m = meter();
        t.batch_insert(&[p; 10], &mut m);
        t.batch_insert(&[p; 10], &mut m);
        assert_eq!(t.len(), 20);
        t.check_invariants();
    }

    #[test]
    fn delete_everything_empties_tree() {
        let pts = uniform::<3>(2_000, 3);
        let mut t = ZdTree::<3>::build(&pts, 16);
        let mut m = meter();
        let removed = t.batch_delete(&pts, &mut m);
        assert_eq!(removed, 2_000);
        assert!(t.is_empty());
        t.check_invariants();
    }

    #[test]
    fn delete_half_matches_fresh_build() {
        let pts = uniform::<3>(4_000, 4);
        let mut t = ZdTree::<3>::build(&pts, 16);
        let mut m = meter();
        let (del, keep) = pts.split_at(2_000);
        let removed = t.batch_delete(del, &mut m);
        assert_eq!(removed, 2_000);
        t.check_invariants();
        assert_same_set(&t, keep);
    }

    #[test]
    fn delete_absent_points_is_noop() {
        let pts = uniform::<3>(500, 5);
        let absent = uniform::<3>(100, 999);
        let mut t = ZdTree::<3>::build(&pts, 16);
        let mut m = meter();
        let removed = t.batch_delete(&absent, &mut m);
        assert!(removed <= 1, "random collision at most");
        t.check_invariants();
    }

    #[test]
    fn delete_one_duplicate_instance_at_a_time() {
        let p = Point::new([1u32, 2, 3]);
        let mut t = ZdTree::<3>::new(4);
        let mut m = meter();
        t.batch_insert(&[p; 3], &mut m);
        assert_eq!(t.batch_delete(&[p], &mut m), 1);
        assert_eq!(t.len(), 2);
        assert_eq!(t.batch_delete(&[p; 5], &mut m), 2);
        assert!(t.is_empty());
    }

    #[test]
    fn interleaved_updates_stay_canonical() {
        let pts = uniform::<3>(3_000, 6);
        let extra = uniform::<3>(1_000, 7);
        let mut t = ZdTree::<3>::build(&pts, 8);
        let mut m = meter();
        t.batch_delete(&pts[..1_500], &mut m);
        t.batch_insert(&extra, &mut m);
        t.check_invariants();
        let mut expect: Vec<Point<3>> = pts[1_500..].to_vec();
        expect.extend_from_slice(&extra);
        assert_same_set(&t, &expect);
    }

    #[test]
    fn updates_charge_the_meter() {
        let pts = uniform::<3>(1_000, 8);
        let mut t = ZdTree::<3>::new(16);
        let mut m = meter();
        t.batch_insert(&pts, &mut m);
        let s = m.stats();
        assert!(s.work_cycles > 0);
        assert!(s.dram_bytes > 0);
    }
}
