//! Shared-memory parallel batch-dynamic zd-tree (the baseline of \[12\] and
//! the correctness oracle for the PIM index).
//!
//! The zd-tree (§2.3) is a *compressed radix tree over Morton keys*: empty
//! leaves are omitted and single-child paths are contracted, so every
//! internal node has exactly two children and the structure is uniquely
//! determined by the key set (history-independent). A leaf holds up to
//! `leaf_cap` points (more only when forced by duplicate keys, which cannot
//! be split).
//!
//! Operations are *batch*-oriented, matching the paper's evaluation
//! protocol: `build`, `batch_insert`, `batch_delete`, `batch_knn`,
//! `batch_box_count`, `batch_box_fetch`. Construction parallelizes with
//! rayon; measured query/update paths are instrumented through a
//! [`pim_memsim::CpuMeter`] so every node visit charges cycles and memory
//! touches — that is how this baseline's Fig. 5 throughput and traffic
//! numbers are produced.

pub mod costs;
pub mod node;
pub mod query;
pub mod tree;
pub mod update;

pub use node::{Node, NodeKind};
pub use tree::ZdTree;
