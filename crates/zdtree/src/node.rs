//! Arena nodes of the compressed z-order radix tree.

use pim_geom::{Aabb, Point};
use pim_zorder::prefix::Prefix;
use pim_zorder::ZKey;

/// Handle into the node arena.
pub type NodeId = u32;

/// A point paired with its Morton key (keys are computed once on entry and
/// carried alongside; recomputation is a measured cost, not a hidden one).
pub type Keyed<const D: usize> = (ZKey<D>, Point<D>);

/// Payload of a node.
#[derive(Clone, Debug)]
pub enum NodeKind<const D: usize> {
    /// Two-child internal node (compression guarantees exactly two).
    Internal {
        /// Child covering the 0-side of the split bit.
        left: NodeId,
        /// Child covering the 1-side.
        right: NodeId,
    },
    /// Leaf holding its points sorted by key.
    Leaf {
        /// Points sorted by Morton key.
        points: Vec<Keyed<D>>,
    },
}

/// One node of the tree.
#[derive(Clone, Debug)]
pub struct Node<const D: usize> {
    /// The key prefix this node covers. For an internal node the split is at
    /// bit `prefix.len`; for a leaf it is the common prefix of its keys.
    pub prefix: Prefix<D>,
    /// Number of points in this subtree.
    pub count: u32,
    /// Internal links or points.
    pub kind: NodeKind<D>,
}

impl<const D: usize> Node<D> {
    /// The node's bounding box (the exact box of its prefix, §2.3 stores
    /// bounding boxes on all nodes).
    #[inline]
    pub fn bbox(&self) -> Aabb<D> {
        self.prefix.to_box()
    }

    /// Whether this node is a leaf.
    #[inline]
    pub fn is_leaf(&self) -> bool {
        matches!(self.kind, NodeKind::Leaf { .. })
    }
}

/// Virtual address regions for the cache model: node records and leaf point
/// storage live in disjoint regions so their cache behaviour is independent.
pub mod addr {
    /// Base of the node-record region.
    pub const NODE_REGION: u64 = 1 << 40;
    /// Base of the leaf point-storage region.
    pub const POINTS_REGION: u64 = 1 << 41;
    /// Bytes charged per node record (prefix + count + links, padded).
    pub const NODE_BYTES: u64 = 48;

    /// Address of a node record.
    #[inline]
    pub fn node(idx: super::NodeId) -> u64 {
        NODE_REGION + idx as u64 * NODE_BYTES
    }

    /// Address of a leaf's point storage (slot-per-node layout).
    #[inline]
    pub fn leaf_points(idx: super::NodeId, slot_bytes: u64) -> u64 {
        POINTS_REGION + idx as u64 * slot_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bbox_of_leaf_prefix_contains_its_points() {
        let pts: Vec<Keyed<3>> = [[1u32, 2, 3], [1, 2, 4]]
            .into_iter()
            .map(|c| {
                let p = Point::new(c);
                (ZKey::<3>::encode(&p), p)
            })
            .collect();
        let lcp = pts[0].0.common_prefix_len(pts[1].0);
        let n = Node::<3> {
            prefix: Prefix::new(pts[0].0, lcp),
            count: 2,
            kind: NodeKind::Leaf { points: pts.clone() },
        };
        for (_, p) in &pts {
            assert!(n.bbox().contains(p));
        }
    }

    #[test]
    fn address_regions_are_disjoint() {
        // A billion nodes still keeps the regions apart.
        assert!(addr::node(1 << 30) < addr::POINTS_REGION);
    }
}
