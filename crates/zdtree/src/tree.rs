//! The tree structure: construction, accessors, and invariants.

use crate::costs;
use crate::node::{addr, Keyed, Node, NodeId, NodeKind};
use pim_geom::Point;
use pim_memsim::CpuMeter;
use pim_zorder::prefix::Prefix;
use pim_zorder::ZKey;
use rayon::prelude::*;

/// Below this many items, recursion proceeds sequentially (task-spawn
/// overhead would dominate).
const PAR_CUTOFF: usize = 4096;

/// A shared-memory batch-dynamic zd-tree.
///
/// ```
/// use pim_zdtree_base::ZdTree;
/// use pim_geom::{Metric, Point};
/// use pim_memsim::CpuMeter;
///
/// let pts: Vec<Point<2>> = (0..100u32).map(|i| Point::new([i * 7, i * 13])).collect();
/// let tree = ZdTree::build(&pts, 8);
/// let mut meter = CpuMeter::disabled();
/// let nn = tree.knn(&Point::new([50, 100]), 3, Metric::L2, &mut meter);
/// assert_eq!(nn.len(), 3);
/// ```
pub struct ZdTree<const D: usize> {
    /// Node arena. Slots on the free list are garbage.
    pub(crate) nodes: Vec<Node<D>>,
    /// Free arena slots available for reuse.
    pub(crate) free: Vec<NodeId>,
    /// Root node, `None` when empty.
    pub(crate) root: Option<NodeId>,
    /// Maximum points per leaf (exceeded only by duplicate keys).
    pub(crate) leaf_cap: usize,
    /// Total points stored.
    pub(crate) n_points: usize,
}

/// Encodes and sorts a batch: the standard preprocessing of every operation.
/// Sorting is by (key, point) so duplicate keys have a canonical order —
/// with that total key, even the *unstable* parallel sort yields one
/// canonical permutation at any thread count.
pub(crate) fn keyed_sorted<const D: usize>(points: &[Point<D>]) -> Vec<Keyed<D>> {
    let mut items: Vec<Keyed<D>> = points.par_iter().map(|p| (ZKey::<D>::encode(p), *p)).collect();
    items.par_sort_unstable_by_key(|(k, p)| (*k, p.coords));
    items
}

/// Whether a canonical (sub)tree over `items` is a single leaf: few enough
/// points, or an unsplittable run of duplicate keys.
#[inline]
pub(crate) fn is_leaf_set<const D: usize>(items: &[Keyed<D>], leaf_cap: usize) -> bool {
    items.len() <= leaf_cap || items.first().unwrap().0 == items.last().unwrap().0
}

/// The canonical prefix of a sorted, non-empty item set: LCP(first, last).
#[inline]
pub(crate) fn set_prefix<const D: usize>(items: &[Keyed<D>]) -> Prefix<D> {
    let first = items.first().unwrap().0;
    let last = items.last().unwrap().0;
    Prefix::new(first, first.common_prefix_len(last))
}

/// Number of arena nodes the canonical tree over `items` occupies.
fn count_nodes<const D: usize>(items: &[Keyed<D>], leaf_cap: usize) -> usize {
    if items.is_empty() {
        return 0;
    }
    if is_leaf_set(items, leaf_cap) {
        return 1;
    }
    let pre = set_prefix(items);
    let split = items.partition_point(|(k, _)| k.bit(pre.len) == 0);
    let (l, r) = items.split_at(split);
    if items.len() >= PAR_CUTOFF {
        let (a, b) = rayon::join(|| count_nodes(l, leaf_cap), || count_nodes(r, leaf_cap));
        1 + a + b
    } else {
        1 + count_nodes(l, leaf_cap) + count_nodes(r, leaf_cap)
    }
}

/// Fills `arena` (a slice sized by [`count_nodes`]) with the canonical tree
/// over `items` in DFS preorder; the subtree root lands at `arena\[0\]`, whose
/// global id is `base`.
fn fill<const D: usize>(
    arena: &mut [Option<Node<D>>],
    items: &[Keyed<D>],
    base: NodeId,
    leaf_cap: usize,
) {
    debug_assert!(!items.is_empty());
    if is_leaf_set(items, leaf_cap) {
        arena[0] = Some(Node {
            prefix: set_prefix(items),
            count: items.len() as u32,
            kind: NodeKind::Leaf { points: items.to_vec() },
        });
        return;
    }
    let pre = set_prefix(items);
    let split = items.partition_point(|(k, _)| k.bit(pre.len) == 0);
    let (li, ri) = items.split_at(split);
    let ln = count_nodes(li, leaf_cap);
    let (root_slot, rest) = arena.split_first_mut().unwrap();
    let (l_arena, r_arena) = rest.split_at_mut(ln);
    *root_slot = Some(Node {
        prefix: pre,
        count: items.len() as u32,
        kind: NodeKind::Internal { left: base + 1, right: base + 1 + ln as NodeId },
    });
    if items.len() >= PAR_CUTOFF {
        rayon::join(
            || fill(l_arena, li, base + 1, leaf_cap),
            || fill(r_arena, ri, base + 1 + ln as NodeId, leaf_cap),
        );
    } else {
        fill(l_arena, li, base + 1, leaf_cap);
        fill(r_arena, ri, base + 1 + ln as NodeId, leaf_cap);
    }
}

impl<const D: usize> ZdTree<D> {
    /// Default leaf capacity used throughout the evaluation.
    pub const DEFAULT_LEAF_CAP: usize = 16;

    /// Creates an empty tree.
    pub fn new(leaf_cap: usize) -> Self {
        assert!(leaf_cap >= 1);
        Self { nodes: Vec::new(), free: Vec::new(), root: None, leaf_cap, n_points: 0 }
    }

    /// Builds the canonical tree over `points` in parallel (O(n) work after
    /// the sort, O(polylog) span — Lemma 2.1 (ii)).
    pub fn build(points: &[Point<D>], leaf_cap: usize) -> Self {
        let mut t = Self::new(leaf_cap);
        if points.is_empty() {
            return t;
        }
        let items = keyed_sorted(points);
        let n_nodes = count_nodes(&items, leaf_cap);
        let mut arena: Vec<Option<Node<D>>> = vec![None; n_nodes];
        fill(&mut arena, &items, 0, leaf_cap);
        t.nodes = arena.into_iter().map(|n| n.expect("fill covers arena")).collect();
        t.root = Some(0);
        t.n_points = items.len();
        t
    }

    /// Number of stored points.
    pub fn len(&self) -> usize {
        self.n_points
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.n_points == 0
    }

    /// Leaf capacity.
    pub fn leaf_cap(&self) -> usize {
        self.leaf_cap
    }

    /// Root id, if any.
    pub fn root(&self) -> Option<NodeId> {
        self.root
    }

    /// Immutable node access.
    #[inline]
    pub fn node(&self, id: NodeId) -> &Node<D> {
        &self.nodes[id as usize]
    }

    /// Number of live arena nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len() - self.free.len()
    }

    /// Resident bytes of the structure (arena + leaf points), for space
    /// accounting (Theorem 5.1 comparisons).
    pub fn resident_bytes(&self) -> u64 {
        let mut bytes = 0u64;
        for n in &self.nodes {
            bytes += addr::NODE_BYTES;
            if let NodeKind::Leaf { points } = &n.kind {
                bytes += points.len() as u64 * (8 + Point::<D>::wire_bytes());
            }
        }
        bytes
    }

    /// Allocates an arena slot.
    pub(crate) fn alloc(&mut self, node: Node<D>) -> NodeId {
        if let Some(id) = self.free.pop() {
            self.nodes[id as usize] = node;
            id
        } else {
            self.nodes.push(node);
            (self.nodes.len() - 1) as NodeId
        }
    }

    /// Releases an arena slot.
    pub(crate) fn release(&mut self, id: NodeId) {
        self.free.push(id);
    }

    /// Charges one node visit to the meter (record read + traversal step).
    #[inline]
    pub(crate) fn charge_visit(&self, id: NodeId, meter: &mut CpuMeter) {
        meter.work(costs::NODE_VISIT);
        meter.touch(addr::node(id), addr::NODE_BYTES, false);
    }

    /// Charges the per-item batch bookkeeping (input read + routing/output
    /// slot) that every batched operation streams through memory. Mirrors
    /// the PIM index's host-side query-state accounting so baseline
    /// comparisons are symmetric.
    pub(crate) fn charge_batch_state(&self, n: usize, meter: &mut CpuMeter) {
        const BATCH_REGION: u64 = 1 << 47;
        const SLOT: u64 = 24;
        for i in 0..n {
            meter.touch(BATCH_REGION + i as u64 * SLOT, SLOT, true);
        }
    }

    /// Charges reading a leaf's point payload.
    #[inline]
    pub(crate) fn charge_leaf_points(&self, id: NodeId, n_points: usize, meter: &mut CpuMeter) {
        let slot = (self.leaf_cap as u64).max(n_points as u64) * (8 + Point::<D>::wire_bytes());
        meter.touch(
            addr::leaf_points(id, slot),
            n_points as u64 * (8 + Point::<D>::wire_bytes()),
            false,
        );
    }

    /// Collects every point of a subtree (test/oracle helper; also used by
    /// subtree rebuilds in updates).
    pub(crate) fn collect_points(&self, id: NodeId, out: &mut Vec<Keyed<D>>) {
        match &self.node(id).kind {
            NodeKind::Leaf { points } => out.extend_from_slice(points),
            NodeKind::Internal { left, right } => {
                self.collect_points(*left, out);
                self.collect_points(*right, out);
            }
        }
    }

    /// All points, sorted by key (oracle helper).
    pub fn all_points(&self) -> Vec<Keyed<D>> {
        let mut out = Vec::with_capacity(self.n_points);
        if let Some(r) = self.root {
            self.collect_points(r, &mut out);
        }
        out
    }

    /// Exhaustively checks the canonical-structure invariants; panics with a
    /// description on violation. Test-only by convention (O(n log n)).
    pub fn check_invariants(&self) {
        let Some(root) = self.root else {
            assert_eq!(self.n_points, 0, "empty root but n_points > 0");
            return;
        };
        let total = self.check_node(root, None);
        assert_eq!(total as usize, self.n_points, "n_points mismatch");
    }

    fn check_node(&self, id: NodeId, parent_region: Option<(Prefix<D>, u8)>) -> u32 {
        let n = self.node(id);
        if let Some((ppre, side)) = parent_region {
            assert!(n.prefix.len > ppre.len, "child prefix must extend parent");
            let region = ppre.child(side);
            assert!(region.covers_prefix(&n.prefix), "child prefix outside its routing region");
        }
        match &n.kind {
            NodeKind::Leaf { points } => {
                assert!(!points.is_empty(), "empty leaf must be omitted");
                assert!(
                    points.len() <= self.leaf_cap || points.windows(2).all(|w| w[0].0 == w[1].0),
                    "oversized leaf without duplicate keys"
                );
                assert!(points.windows(2).all(|w| w[0].0 <= w[1].0), "leaf points unsorted");
                let pre = set_prefix(points);
                assert_eq!(pre.key, n.prefix.key, "leaf prefix key mismatch");
                assert_eq!(pre.len, n.prefix.len, "leaf prefix not canonical LCP");
                for (k, p) in points {
                    assert_eq!(*k, ZKey::<D>::encode(p), "stale key");
                    assert!(n.prefix.covers(*k), "point outside leaf prefix");
                }
                assert_eq!(n.count as usize, points.len(), "leaf count mismatch");
                points.len() as u32
            }
            NodeKind::Internal { left, right } => {
                let lc = self.check_node(*left, Some((n.prefix, 0)));
                let rc = self.check_node(*right, Some((n.prefix, 1)));
                assert_eq!(n.count, lc + rc, "internal count mismatch");
                assert!(lc > 0 && rc > 0, "compression violated: empty child");
                n.count
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_workloads::uniform;

    #[test]
    fn build_empty_and_tiny() {
        let t = ZdTree::<3>::build(&[], 4);
        assert!(t.is_empty());
        t.check_invariants();

        let pts = vec![Point::new([1u32, 2, 3])];
        let t = ZdTree::<3>::build(&pts, 4);
        assert_eq!(t.len(), 1);
        t.check_invariants();
    }

    #[test]
    fn build_uniform_is_canonical() {
        let pts = uniform::<3>(10_000, 42);
        let t = ZdTree::<3>::build(&pts, 16);
        assert_eq!(t.len(), 10_000);
        t.check_invariants();
        // 2n + O(1) nodes for leaf_cap = 1; far fewer for 16. Sanity bounds:
        assert!(t.node_count() < 2 * 10_000);
    }

    #[test]
    fn build_handles_duplicate_keys_beyond_leaf_cap() {
        let p = Point::new([5u32, 5, 5]);
        let pts = vec![p; 100];
        let t = ZdTree::<3>::build(&pts, 4);
        assert_eq!(t.len(), 100);
        t.check_invariants();
        assert_eq!(t.node_count(), 1, "all duplicates in one leaf");
    }

    #[test]
    fn build_is_history_independent() {
        // The canonical structure depends only on the point set: building
        // from a permuted input yields an identical traversal structure.
        let pts = uniform::<3>(5_000, 7);
        let mut shuffled = pts.clone();
        shuffled.reverse();
        let a = ZdTree::<3>::build(&pts, 8);
        let b = ZdTree::<3>::build(&shuffled, 8);
        assert_eq!(a.all_points(), b.all_points());
        assert_eq!(a.node_count(), b.node_count());
    }

    #[test]
    fn all_points_returns_sorted_keys() {
        let pts = uniform::<3>(2_000, 9);
        let t = ZdTree::<3>::build(&pts, 16);
        let all = t.all_points();
        assert_eq!(all.len(), 2_000);
        assert!(all.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn leaf_cap_one_gives_binary_tree_with_2n_nodes() {
        let pts = uniform::<3>(1_000, 11);
        let t = ZdTree::<3>::build(&pts, 1);
        t.check_invariants();
        // Exactly 2n - 1 nodes when all keys are distinct.
        let distinct: std::collections::HashSet<u64> =
            pts.iter().map(|p| ZKey::<3>::encode(p).0).collect();
        assert_eq!(t.node_count(), 2 * distinct.len() - 1);
    }

    #[test]
    fn resident_bytes_scales_with_n() {
        let small = ZdTree::<3>::build(&uniform::<3>(1_000, 1), 16);
        let large = ZdTree::<3>::build(&uniform::<3>(10_000, 1), 16);
        assert!(large.resident_bytes() > 5 * small.resident_bytes());
    }
}
