//! Queries: point membership, k-nearest-neighbor, and orthogonal range
//! (BoxCount / BoxFetch).
//!
//! kNN uses bounded best-first branch-and-bound with exact integer metric
//! comparisons and a deterministic `(distance, coordinates)` tie rule, so
//! results are reproducible and comparable bit-for-bit against the
//! brute-force oracle in tests.

use crate::costs;
use crate::node::{NodeId, NodeKind};
use crate::tree::ZdTree;
use pim_geom::{Aabb, Metric, Point};
use pim_memsim::CpuMeter;
use pim_zorder::ZKey;
use std::collections::BinaryHeap;

/// A kNN candidate ordered by (distance, coordinates) — `BinaryHeap` keeps
/// the *worst* candidate on top.
#[derive(PartialEq, Eq, Debug, Clone, Copy)]
struct Cand<const D: usize> {
    dist: u64,
    coords: [u32; D],
}

impl<const D: usize> Ord for Cand<D> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.dist, self.coords).cmp(&(other.dist, other.coords))
    }
}

impl<const D: usize> PartialOrd for Cand<D> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<const D: usize> ZdTree<D> {
    /// Whether the exact point is stored (point lookup along the key path).
    pub fn contains(&self, p: &Point<D>, meter: &mut CpuMeter) -> bool {
        meter.work(costs::zorder_fast_cycles(D));
        let key = ZKey::<D>::encode(p);
        let mut cur = match self.root {
            Some(r) => r,
            None => return false,
        };
        loop {
            self.charge_visit(cur, meter);
            let node = self.node(cur);
            if !node.prefix.covers(key) {
                return false;
            }
            match &node.kind {
                NodeKind::Leaf { points } => {
                    self.charge_leaf_points(cur, points.len(), meter);
                    meter.work(points.len() as u64 * 2);
                    return points.iter().any(|(k, q)| *k == key && q == p);
                }
                NodeKind::Internal { left, right } => {
                    cur = if key.bit(node.prefix.len) == 0 { *left } else { *right };
                }
            }
        }
    }

    /// Batch point-membership queries.
    pub fn batch_contains(&self, queries: &[Point<D>], meter: &mut CpuMeter) -> Vec<bool> {
        self.charge_batch_state(queries.len(), meter);
        queries.iter().map(|q| self.contains(q, meter)).collect()
    }

    /// The `k` nearest stored points to `q` under `metric`, sorted by
    /// (distance, coordinates). Returns fewer when the tree is smaller.
    pub fn knn(
        &self,
        q: &Point<D>,
        k: usize,
        metric: Metric,
        meter: &mut CpuMeter,
    ) -> Vec<(u64, Point<D>)> {
        let mut heap: BinaryHeap<Cand<D>> = BinaryHeap::with_capacity(k + 1);
        if let Some(r) = self.root {
            if k > 0 {
                self.knn_rec(r, q, k, metric, &mut heap, meter);
            }
        }
        let mut out: Vec<(u64, Point<D>)> =
            heap.into_iter().map(|c| (c.dist, Point::new(c.coords))).collect();
        out.sort_unstable_by_key(|(d, p)| (*d, p.coords));
        out
    }

    fn knn_rec(
        &self,
        id: NodeId,
        q: &Point<D>,
        k: usize,
        metric: Metric,
        heap: &mut BinaryHeap<Cand<D>>,
        meter: &mut CpuMeter,
    ) {
        self.charge_visit(id, meter);
        let node = self.node(id);
        match &node.kind {
            NodeKind::Leaf { points } => {
                self.charge_leaf_points(id, points.len(), meter);
                for (_, p) in points {
                    meter.work(costs::dist_cycles(D));
                    let cand = Cand { dist: metric.cmp_dist(q, p), coords: p.coords };
                    if heap.len() < k {
                        meter.work(costs::HEAP_OP);
                        heap.push(cand);
                    } else if cand < *heap.peek().unwrap() {
                        meter.work(costs::HEAP_OP);
                        heap.pop();
                        heap.push(cand);
                    }
                }
            }
            NodeKind::Internal { left, right } => {
                // Visit the child nearer to q first; prune on the bound.
                meter.work(2 * costs::box_test_cycles(D));
                let lb = self.node(*left).bbox();
                let rb = self.node(*right).bbox();
                let ld = lb.min_dist(q, metric);
                let rd = rb.min_dist(q, metric);
                let order = if ld <= rd {
                    [(ld, *left), (rd, *right)]
                } else {
                    [(rd, *right), (ld, *left)]
                };
                for (d, child) in order {
                    let prune = heap.len() == k && d > heap.peek().unwrap().dist;
                    if !prune {
                        self.knn_rec(child, q, k, metric, heap, meter);
                    }
                }
            }
        }
    }

    /// Batch kNN.
    pub fn batch_knn(
        &self,
        queries: &[Point<D>],
        k: usize,
        metric: Metric,
        meter: &mut CpuMeter,
    ) -> Vec<Vec<(u64, Point<D>)>> {
        self.charge_batch_state(queries.len(), meter);
        queries.iter().map(|q| self.knn(q, k, metric, meter)).collect()
    }

    /// Number of stored points inside the box (BoxCount).
    pub fn box_count(&self, query: &Aabb<D>, meter: &mut CpuMeter) -> u64 {
        match self.root {
            Some(r) => self.box_count_rec(r, query, meter),
            None => 0,
        }
    }

    fn box_count_rec(&self, id: NodeId, query: &Aabb<D>, meter: &mut CpuMeter) -> u64 {
        self.charge_visit(id, meter);
        meter.work(costs::box_test_cycles(D));
        let node = self.node(id);
        let nb = node.bbox();
        if !query.intersects(&nb) {
            return 0;
        }
        if query.contains_box(&nb) {
            // Whole subtree inside: the count answers without descent.
            return node.count as u64;
        }
        match &node.kind {
            NodeKind::Leaf { points } => {
                self.charge_leaf_points(id, points.len(), meter);
                meter.work(points.len() as u64 * costs::box_test_cycles(D));
                points.iter().filter(|(_, p)| query.contains(p)).count() as u64
            }
            NodeKind::Internal { left, right } => {
                self.box_count_rec(*left, query, meter) + self.box_count_rec(*right, query, meter)
            }
        }
    }

    /// All stored points inside the box (BoxFetch), sorted by key order.
    pub fn box_fetch(&self, query: &Aabb<D>, meter: &mut CpuMeter) -> Vec<Point<D>> {
        let mut out = Vec::new();
        if let Some(r) = self.root {
            self.box_fetch_rec(r, query, &mut out, meter);
        }
        out
    }

    fn box_fetch_rec(
        &self,
        id: NodeId,
        query: &Aabb<D>,
        out: &mut Vec<Point<D>>,
        meter: &mut CpuMeter,
    ) {
        self.charge_visit(id, meter);
        meter.work(costs::box_test_cycles(D));
        let node = self.node(id);
        let nb = node.bbox();
        if !query.intersects(&nb) {
            return;
        }
        if query.contains_box(&nb) {
            self.emit_subtree(id, out, meter);
            return;
        }
        match &node.kind {
            NodeKind::Leaf { points } => {
                self.charge_leaf_points(id, points.len(), meter);
                for (_, p) in points {
                    meter.work(costs::box_test_cycles(D));
                    if query.contains(p) {
                        meter.work(costs::EMIT);
                        out.push(*p);
                    }
                }
            }
            NodeKind::Internal { left, right } => {
                self.box_fetch_rec(*left, query, out, meter);
                self.box_fetch_rec(*right, query, out, meter);
            }
        }
    }

    /// Emits every point of a fully-covered subtree.
    fn emit_subtree(&self, id: NodeId, out: &mut Vec<Point<D>>, meter: &mut CpuMeter) {
        match &self.node(id).kind {
            NodeKind::Leaf { points } => {
                self.charge_leaf_points(id, points.len(), meter);
                meter.work(points.len() as u64 * costs::EMIT);
                out.extend(points.iter().map(|(_, p)| *p));
            }
            NodeKind::Internal { left, right } => {
                let (l, r) = (*left, *right);
                self.charge_visit(l, meter);
                self.charge_visit(r, meter);
                self.emit_subtree(l, out, meter);
                self.emit_subtree(r, out, meter);
            }
        }
    }

    /// Batch box counts.
    pub fn batch_box_count(&self, queries: &[Aabb<D>], meter: &mut CpuMeter) -> Vec<u64> {
        self.charge_batch_state(queries.len(), meter);
        queries.iter().map(|b| self.box_count(b, meter)).collect()
    }

    /// Batch box fetches.
    pub fn batch_box_fetch(&self, queries: &[Aabb<D>], meter: &mut CpuMeter) -> Vec<Vec<Point<D>>> {
        self.charge_batch_state(queries.len(), meter);
        queries.iter().map(|b| self.box_fetch(b, meter)).collect()
    }
}

/// Brute-force oracles used by tests across the workspace.
pub mod oracle {
    use super::*;

    /// k smallest (distance, coords) pairs by linear scan.
    pub fn knn<const D: usize>(
        data: &[Point<D>],
        q: &Point<D>,
        k: usize,
        metric: Metric,
    ) -> Vec<(u64, Point<D>)> {
        let mut all: Vec<(u64, Point<D>)> =
            data.iter().map(|p| (metric.cmp_dist(q, p), *p)).collect();
        all.sort_unstable_by_key(|(d, p)| (*d, p.coords));
        all.truncate(k);
        all
    }

    /// Linear-scan box count.
    pub fn box_count<const D: usize>(data: &[Point<D>], b: &Aabb<D>) -> u64 {
        data.iter().filter(|p| b.contains(p)).count() as u64
    }

    /// Linear-scan box fetch (unsorted).
    pub fn box_fetch<const D: usize>(data: &[Point<D>], b: &Aabb<D>) -> Vec<Point<D>> {
        data.iter().filter(|p| b.contains(p)).copied().collect()
    }
}

/// Sorts fetched points canonically for comparisons in tests.
pub fn sort_points<const D: usize>(mut pts: Vec<Point<D>>) -> Vec<Point<D>> {
    pts.sort_unstable_by_key(|p| (ZKey::<D>::encode(p), p.coords));
    pts
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_memsim::{CpuConfig, CpuMeter};
    use pim_workloads::{cosmos_like, uniform};
    use rand::prelude::*;
    use rand_chacha::ChaCha8Rng;

    fn meter() -> CpuMeter {
        CpuMeter::new(CpuConfig::xeon())
    }

    #[test]
    fn contains_finds_stored_points_only() {
        let pts = uniform::<3>(2_000, 1);
        let t = ZdTree::<3>::build(&pts, 16);
        let mut m = meter();
        for p in pts.iter().take(50) {
            assert!(t.contains(p, &mut m));
        }
        let absent = uniform::<3>(50, 777);
        for p in &absent {
            if !pts.contains(p) {
                assert!(!t.contains(p, &mut m));
            }
        }
    }

    #[test]
    fn knn_matches_brute_force_uniform() {
        let pts = uniform::<3>(3_000, 2);
        let t = ZdTree::<3>::build(&pts, 16);
        let mut m = meter();
        let queries = uniform::<3>(40, 3);
        for q in &queries {
            for k in [1usize, 5, 32] {
                let got = t.knn(q, k, Metric::L2, &mut m);
                let want = oracle::knn(&pts, q, k, Metric::L2);
                assert_eq!(got, want, "q={q:?} k={k}");
            }
        }
    }

    #[test]
    fn knn_matches_brute_force_l1_and_linf() {
        let pts = cosmos_like::<3>(2_000, 5);
        let t = ZdTree::<3>::build(&pts, 8);
        let mut m = meter();
        let q = pts[100];
        for metric in [Metric::L1, Metric::Linf] {
            assert_eq!(t.knn(&q, 10, metric, &mut m), oracle::knn(&pts, &q, 10, metric));
        }
    }

    #[test]
    fn knn_with_k_larger_than_n_returns_all() {
        let pts = uniform::<3>(10, 4);
        let t = ZdTree::<3>::build(&pts, 4);
        let mut m = meter();
        let got = t.knn(&pts[0], 100, Metric::L2, &mut m);
        assert_eq!(got.len(), 10);
    }

    #[test]
    fn knn_of_stored_point_starts_at_zero_distance() {
        let pts = uniform::<3>(500, 6);
        let t = ZdTree::<3>::build(&pts, 16);
        let mut m = meter();
        let got = t.knn(&pts[7], 1, Metric::L2, &mut m);
        assert_eq!(got[0].0, 0);
    }

    #[test]
    fn box_queries_match_brute_force() {
        let pts = uniform::<3>(3_000, 7);
        let t = ZdTree::<3>::build(&pts, 16);
        let mut m = meter();
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        for _ in 0..50 {
            let c = pts[rng.random_range(0..pts.len())];
            let side = 1u32 << rng.random_range(10..20);
            let lo = Point::new(c.coords.map(|x| x.saturating_sub(side / 2)));
            let hi = Point::new(c.coords.map(|x| {
                (x as u64 + side as u64 / 2).min(pim_geom::max_coord_for_dim(3) as u64) as u32
            }));
            let b = Aabb::new(lo, hi);
            assert_eq!(t.box_count(&b, &mut m), oracle::box_count(&pts, &b));
            let got = sort_points(t.box_fetch(&b, &mut m));
            let want = sort_points(oracle::box_fetch(&pts, &b));
            assert_eq!(got, want);
        }
    }

    #[test]
    fn box_covering_universe_returns_everything() {
        let pts = uniform::<3>(1_000, 9);
        let t = ZdTree::<3>::build(&pts, 16);
        let mut m = meter();
        let u = Aabb::<3>::universe();
        assert_eq!(t.box_count(&u, &mut m), 1_000);
        assert_eq!(t.box_fetch(&u, &mut m).len(), 1_000);
    }

    #[test]
    fn queries_on_empty_tree() {
        let t = ZdTree::<3>::new(16);
        let mut m = meter();
        assert!(t.knn(&Point::origin(), 5, Metric::L2, &mut m).is_empty());
        assert_eq!(t.box_count(&Aabb::universe(), &mut m), 0);
        assert!(!t.contains(&Point::origin(), &mut m));
    }

    #[test]
    fn knn_traffic_grows_with_cold_cache() {
        // A cold large tree forces misses; the same queries again are warm.
        let pts = uniform::<3>(60_000, 10);
        let t = ZdTree::<3>::build(&pts, 16);
        let mut m = CpuMeter::new(CpuConfig {
            llc: pim_memsim::CacheConfig::tiny(64 * 1024),
            ..CpuConfig::xeon()
        });
        let q = pts[0];
        let _ = t.knn(&q, 10, Metric::L2, &mut m);
        let cold = m.stats().dram_bytes;
        assert!(cold > 0, "cold traversal must touch DRAM");
    }
}

/// Parallel, unmetered batch queries (rayon). These are for *functional*
/// use of the baseline as a library or oracle — measurement runs use the
/// sequential metered variants so the cost accounting stays deterministic.
///
/// Determinism audit: `collect` writes each reply at its query's input
/// index, the `map_init` scratch is a *disabled* meter (no observable
/// state), and each per-query closure reads only `&self` — so the output
/// is identical at any thread count.
impl<const D: usize> ZdTree<D> {
    /// Parallel batch kNN (unmetered).
    pub fn par_batch_knn(
        &self,
        queries: &[Point<D>],
        k: usize,
        metric: Metric,
    ) -> Vec<Vec<(u64, Point<D>)>> {
        use rayon::prelude::*;
        queries
            .par_iter()
            .map_init(pim_memsim::CpuMeter::disabled, |m, q| self.knn(q, k, metric, m))
            .collect()
    }

    /// Parallel batch box count (unmetered).
    pub fn par_batch_box_count(&self, queries: &[Aabb<D>]) -> Vec<u64> {
        use rayon::prelude::*;
        queries
            .par_iter()
            .map_init(pim_memsim::CpuMeter::disabled, |m, b| self.box_count(b, m))
            .collect()
    }

    /// Parallel batch box fetch (unmetered).
    pub fn par_batch_box_fetch(&self, queries: &[Aabb<D>]) -> Vec<Vec<Point<D>>> {
        use rayon::prelude::*;
        queries
            .par_iter()
            .map_init(pim_memsim::CpuMeter::disabled, |m, b| self.box_fetch(b, m))
            .collect()
    }

    /// Parallel batch membership (unmetered).
    pub fn par_batch_contains(&self, queries: &[Point<D>]) -> Vec<bool> {
        use rayon::prelude::*;
        queries
            .par_iter()
            .map_init(pim_memsim::CpuMeter::disabled, |m, q| self.contains(q, m))
            .collect()
    }
}

#[cfg(test)]
mod par_tests {
    use super::*;
    use pim_memsim::{CpuConfig, CpuMeter};
    use pim_workloads::uniform;

    #[test]
    fn parallel_batches_match_sequential() {
        let pts = uniform::<3>(5_000, 21);
        let t = ZdTree::build(&pts, 16);
        let queries = uniform::<3>(200, 22);
        let mut m = CpuMeter::new(CpuConfig::xeon());
        assert_eq!(
            t.par_batch_knn(&queries, 7, Metric::L2),
            t.batch_knn(&queries, 7, Metric::L2, &mut m)
        );
        assert_eq!(t.par_batch_contains(&pts[..100]), vec![true; 100]);
        let side = pim_workloads::box_side_for_expected::<3>(5_000, 20.0);
        let boxes = pim_workloads::box_queries(&pts, 50, side, 23);
        assert_eq!(t.par_batch_box_count(&boxes), t.batch_box_count(&boxes, &mut m));
        let a: Vec<usize> = t.par_batch_box_fetch(&boxes).iter().map(Vec::len).collect();
        let b: Vec<usize> = t.batch_box_fetch(&boxes, &mut m).iter().map(Vec::len).collect();
        assert_eq!(a, b);
    }
}
