//! CPU cycle-cost constants for instrumented traversals.
//!
//! These are coarse per-step instruction estimates used by both baselines
//! (and by the host side of the PIM index); only their relative magnitudes
//! matter for the shape of the results. They follow the obvious instruction
//! counts of each step on a superscalar x86 core.

/// Pointer-chase + compare + branch of one internal-node traversal step.
pub const NODE_VISIT: u64 = 20;

/// Per-point distance evaluation in `d` dimensions on the CPU (multiply is
/// cheap here — that asymmetry versus PIM cores is the point of §6).
#[inline]
pub const fn dist_cycles(d: usize) -> u64 {
    6 * d as u64
}

/// Box/point or box/box overlap test in `d` dimensions.
#[inline]
pub const fn box_test_cycles(d: usize) -> u64 {
    8 * d as u64
}

/// Fast gap-interleave Morton encoding (§6): ~5 mask rounds × `d` coords.
#[inline]
pub const fn zorder_fast_cycles(d: usize) -> u64 {
    12 * d as u64
}

/// Naive bit-by-bit Morton encoding: ~4 ops per output bit (the Table 3
/// ablation charges this instead of [`zorder_fast_cycles`]).
#[inline]
pub const fn zorder_naive_cycles(d: usize, coord_bits: u32) -> u64 {
    4 * d as u64 * coord_bits as u64
}

/// Heap push/pop pair in a k-bounded priority queue.
pub const HEAP_OP: u64 = 30;

/// Per-element cost of moving a result into the output buffer.
pub const EMIT: u64 = 4;

/// Per-key cost of the batch preprocessing sort, amortized (radix-ish).
pub const SORT_PER_KEY: u64 = 25;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naive_encoding_is_much_slower() {
        assert!(zorder_naive_cycles(3, 21) > 5 * zorder_fast_cycles(3));
    }
}
