//! Batch formation policy: the latency budget, the adaptive size target,
//! and the recent-throughput estimator behind it.
//!
//! The batcher trades two costs against each other (ARCHITECTURE.md §8):
//! every BSP round pays a fixed setup cost (mux switch + per-transfer call
//! overhead — the effect the UPMEM benchmarking study measures at small
//! transfer sizes), so tiny batches waste the machine; but a request parked
//! in the accumulator is aging toward its latency budget, so huge batches
//! buy throughput with p99. The [`ThroughputEstimator`] fits the round cost
//! model `service ≈ a + b·n` from recently completed batches and derives the
//! **saturation size** — the batch size past which the per-request share of
//! the setup cost `a` has fallen below a slack fraction of the marginal
//! per-request cost `b`, i.e. where growing the batch further no longer
//! meaningfully amortizes anything.

/// Batch formation policy for one server.
///
/// A batch seals when **either** the oldest queued request of its class has
/// aged past `budget_us` **or** the class queue reaches the adaptive size
/// target (see [`BatchPolicy::target`]).
///
/// ```
/// use pim_serve::{BatchPolicy, ThroughputEstimator};
///
/// let policy = BatchPolicy { min_batch: 8, max_batch: 1024, ..BatchPolicy::default() };
/// let mut est = ThroughputEstimator::default();
/// // No history yet: accumulate until the budget forces a flush.
/// assert_eq!(policy.target(&est), 1024);
///
/// // Feed completed batches following service ≈ 1000 µs + 10 µs/request …
/// for n in [50u64, 100, 200, 400] {
///     est.observe(n as usize, 1_000.0 + 10.0 * n as f64);
/// }
/// // … the fit recovers (a=1000, b=10); with 10% slack the saturation
/// // size is a/(slack·b) = 1000 requests, clamped into the policy range.
/// assert_eq!(policy.target(&est), 1000);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct BatchPolicy {
    /// Max age (µs of virtual time) of the oldest queued request before its
    /// class is force-flushed.
    pub budget_us: u64,
    /// Lower clamp of the adaptive target.
    pub min_batch: usize,
    /// Upper clamp of the adaptive target (and hard cap on any batch).
    pub max_batch: usize,
    /// When false, the target is pinned at `max_batch` (budget-only
    /// batching — the ablation baseline).
    pub adaptive: bool,
    /// Amortization slack ε: a batch saturates a round once the per-request
    /// share of the round setup cost drops below ε × the marginal
    /// per-request cost.
    pub slack: f64,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        Self { budget_us: 1_000, min_batch: 16, max_batch: 4_096, adaptive: true, slack: 0.1 }
    }
}

impl BatchPolicy {
    /// The current size target for sealing a batch: the estimator's
    /// saturation size clamped to `[min_batch, max_batch]`, or `max_batch`
    /// while the estimator has too little history (the budget still bounds
    /// latency in that regime).
    pub fn target(&self, est: &ThroughputEstimator) -> usize {
        if !self.adaptive {
            return self.max_batch;
        }
        match est.saturation_size(self.slack) {
            Some(n) => n.clamp(self.min_batch, self.max_batch),
            None => self.max_batch,
        }
    }
}

/// Number of recent batch completions the estimator remembers.
const WINDOW: usize = 32;

/// Online least-squares fit of the per-class round cost model
/// `service_us ≈ a + b·batch_size` over a sliding window of recently
/// completed batches.
#[derive(Clone, Debug, Default)]
pub struct ThroughputEstimator {
    /// `(batch_size, service_us)` of recent completions, oldest first.
    window: Vec<(f64, f64)>,
}

impl ThroughputEstimator {
    /// Records one completed batch.
    pub fn observe(&mut self, batch_size: usize, service_us: f64) {
        if self.window.len() == WINDOW {
            self.window.remove(0);
        }
        self.window.push((batch_size as f64, service_us));
    }

    /// The fitted `(setup_us, per_request_us)` of the round cost model, or
    /// `None` until the window holds at least two distinct batch sizes.
    /// Negative fitted components clamp to zero (noise at tiny windows).
    pub fn fit(&self) -> Option<(f64, f64)> {
        let n = self.window.len() as f64;
        if n < 2.0 {
            return None;
        }
        let mean_x = self.window.iter().map(|(x, _)| x).sum::<f64>() / n;
        let mean_y = self.window.iter().map(|(_, y)| y).sum::<f64>() / n;
        let var: f64 = self.window.iter().map(|(x, _)| (x - mean_x) * (x - mean_x)).sum();
        if var == 0.0 {
            return None;
        }
        let cov: f64 = self.window.iter().map(|(x, y)| (x - mean_x) * (y - mean_y)).sum();
        let b = (cov / var).max(0.0);
        let a = (mean_y - b * mean_x).max(0.0);
        Some((a, b))
    }

    /// The batch size that saturates a round under slack ε: the smallest
    /// `n` with `a/n ≤ ε·b`, i.e. `⌈a / (ε·b)⌉`. `None` while unfitted or
    /// when the fitted marginal cost is zero (no per-request signal yet).
    pub fn saturation_size(&self, slack: f64) -> Option<usize> {
        let (a, b) = self.fit()?;
        if b <= 0.0 || slack <= 0.0 {
            return None;
        }
        Some((a / (slack * b)).ceil().max(1.0) as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_recovers_a_clean_linear_model() {
        let mut est = ThroughputEstimator::default();
        for n in [10u64, 20, 50, 80, 160] {
            est.observe(n as usize, 500.0 + 2.5 * n as f64);
        }
        let (a, b) = est.fit().unwrap();
        assert!((a - 500.0).abs() < 1e-6, "setup {a}");
        assert!((b - 2.5).abs() < 1e-9, "marginal {b}");
        // a/(0.2*b) = 1000
        assert_eq!(est.saturation_size(0.2), Some(1000));
    }

    #[test]
    fn degenerate_windows_give_no_target() {
        let mut est = ThroughputEstimator::default();
        assert!(est.fit().is_none());
        est.observe(100, 1_000.0);
        assert!(est.fit().is_none(), "one sample is not a fit");
        est.observe(100, 1_200.0);
        assert!(est.fit().is_none(), "identical sizes have zero variance");
        let policy = BatchPolicy::default();
        assert_eq!(policy.target(&est), policy.max_batch);
    }

    #[test]
    fn window_slides() {
        let mut est = ThroughputEstimator::default();
        // Old regime: huge setup cost.
        for n in [10u64, 100] {
            est.observe(n as usize, 100_000.0 + 1.0 * n as f64);
        }
        // Flood the window with the new regime: tiny setup cost.
        for _ in 0..WINDOW / 2 {
            for n in [10u64, 100] {
                est.observe(n as usize, 50.0 + 1.0 * n as f64);
            }
        }
        let (a, _) = est.fit().unwrap();
        assert!(a < 100.0, "stale regime must age out, fitted setup {a}");
    }

    #[test]
    fn non_adaptive_policy_pins_max() {
        let mut est = ThroughputEstimator::default();
        for n in [10u64, 1000] {
            est.observe(n as usize, 10.0 + 0.1 * n as f64);
        }
        let policy = BatchPolicy { adaptive: false, ..BatchPolicy::default() };
        assert_eq!(policy.target(&est), policy.max_batch);
    }
}
