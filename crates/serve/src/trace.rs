//! Causal request tracing: per-request phase spans, batch↔round linkage,
//! and Chrome trace-event (Perfetto) export.
//!
//! # Model
//!
//! Every admitted request gets a deterministic [`TraceId`] — its 0-based
//! admission index, the same number its [`Reply`](crate::Reply) carries —
//! and the tracer records one [`RequestTrace`] describing its whole life
//! through the batcher state machine (enqueue → seal → dispatch → reply)
//! as **exact integer spans in virtual µs**:
//!
//! ```text
//! arrival ──queue──▶ sealed ──wait──▶ dispatch ──cpu──pim──comm──▶ reply
//! ```
//!
//! The five spans sum to the request's `latency_us` *exactly* (tested for
//! 100% of completed requests): `queue_us` and `wait_us` fall out of the
//! batcher timestamps, and the batch's service time is split into
//! cpu/pim/comm µs by [`split_service_us`], a largest-remainder integer
//! apportionment of the simulator's [`OpBreakdown`] that loses nothing to
//! rounding.
//!
//! Each executed batch gets a [`BatchTrace`] carrying the cross-layer
//! link: the half-open range `[round_lo, round_hi)` of
//! [`RoundRecord`] ids the batch produced, read from
//! the executing machine's monotonic round counter immediately before and
//! after execution. A `Reply` therefore resolves to its batch journal
//! entry, which resolves to its BSP rounds and their Fig-6 phase
//! breakdowns. Snapshot read batches run on the snapshot's *private*
//! machine, whose counter continues from the checkpoint capture point —
//! their ranges may overlap later live ids, so every link carries the
//! `snapshot` flag as the disambiguating key (only live ranges index into
//! the live round journal).
//!
//! # Contracts
//!
//! * **Zero-cost-off** — the tracer is `Option`-gated like
//!   [`Metrics`](pim_sim::Metrics): every feeding site in the event loop
//!   is one branch when tracing is off, and the round-counter reads only
//!   happen when it is on. Tracing never perturbs virtual time.
//! * **Determinism** — all span data derives from virtual-time state, so
//!   the span stream, both JSONL renderings, and the trace-event export
//!   are byte-identical at any host thread count
//!   (`tests/request_tracing.rs`).

use pim_sim::RoundRecord;
use pim_zd_tree::OpBreakdown;
use serde::Serialize;

/// Deterministic identity of one request: its 0-based admission index,
/// assigned at arrival (trace order for replays). Equal to the `id` of the
/// request's [`Reply`](crate::Reply).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TraceId(pub u64);

impl std::fmt::Display for TraceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// The recorded life of one request, as exact virtual-µs spans.
///
/// For a completed request `queue_us + wait_us + cpu_us + pim_us +
/// comm_us == latency_us` exactly. A rejected request has every span 0 and
/// no batch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RequestTrace {
    /// The request's trace id (= reply id).
    pub id: TraceId,
    /// Stable class label (`insert`, `contains`, …).
    pub op: &'static str,
    /// Sequence number of the batch that served it (`None` when rejected).
    pub batch: Option<u64>,
    /// Virtual arrival time.
    pub arrival_us: u64,
    /// Virtual time the request's batch sealed (arrival time if rejected).
    pub sealed_us: u64,
    /// Virtual time the batch dispatched.
    pub dispatch_us: u64,
    /// Virtual reply time.
    pub complete_us: u64,
    /// Time queued before the batch sealed (`sealed_us - arrival_us`).
    pub queue_us: u64,
    /// Time sealed but waiting for a free lane (`dispatch_us - sealed_us`).
    pub wait_us: u64,
    /// Host-CPU share of the batch's service time.
    pub cpu_us: u64,
    /// PIM-module share of the batch's service time.
    pub pim_us: u64,
    /// Channel-transfer share of the batch's service time.
    pub comm_us: u64,
    /// Whether admission control rejected the request.
    pub rejected: bool,
}

impl RequestTrace {
    /// Reply latency in virtual µs (0 for rejected requests).
    pub fn latency_us(&self) -> u64 {
        self.complete_us - self.arrival_us
    }

    /// Sum of the five phase spans; equals [`Self::latency_us`] for every
    /// completed request (the tracer's exactness invariant).
    pub fn span_sum_us(&self) -> u64 {
        self.queue_us + self.wait_us + self.cpu_us + self.pim_us + self.comm_us
    }

    fn write_jsonl(&self, out: &mut String) {
        out.push_str("{\"id\":");
        self.id.0.json_write(out);
        out.push_str(",\"op\":\"");
        out.push_str(self.op);
        out.push('"');
        if self.rejected {
            out.push_str(",\"arrival_us\":");
            self.arrival_us.json_write(out);
            out.push_str(",\"rejected\":true}");
            return;
        }
        out.push_str(",\"batch\":");
        self.batch.expect("completed request has a batch").json_write(out);
        for (key, v) in [
            ("arrival_us", self.arrival_us),
            ("sealed_us", self.sealed_us),
            ("dispatch_us", self.dispatch_us),
            ("complete_us", self.complete_us),
            ("queue_us", self.queue_us),
            ("wait_us", self.wait_us),
            ("cpu_us", self.cpu_us),
            ("pim_us", self.pim_us),
            ("comm_us", self.comm_us),
            ("latency_us", self.latency_us()),
        ] {
            out.push_str(",\"");
            out.push_str(key);
            out.push_str("\":");
            v.json_write(out);
        }
        out.push('}');
    }
}

/// The recorded life of one executed batch, with its round-id link.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BatchTrace {
    /// Batch sequence number (dispatch order within each lane).
    pub seq: u64,
    /// Class label of the batch.
    pub class: &'static str,
    /// Requests in the batch.
    pub n: u64,
    /// Virtual seal time.
    pub sealed_us: u64,
    /// Virtual dispatch time.
    pub dispatch_us: u64,
    /// Virtual completion time.
    pub complete_us: u64,
    /// Service time (`complete_us - dispatch_us`).
    pub service_us: u64,
    /// Host-CPU share of `service_us` (see [`split_service_us`]).
    pub cpu_us: u64,
    /// PIM share of `service_us`.
    pub pim_us: u64,
    /// Channel share of `service_us`.
    pub comm_us: u64,
    /// Epoch the batch observed or produced (reply semantics).
    pub epoch: u64,
    /// Whether the batch ran against an epoch snapshot. Snapshot round ids
    /// live in the snapshot machine's private counter (continued from the
    /// checkpoint capture point) and must not be resolved against the live
    /// round journal.
    pub snapshot: bool,
    /// Whether this dispatch materialized the snapshot from its image
    /// (false for cache hits and live batches).
    pub materialized: bool,
    /// Seal reason label (`budget` / `size`).
    pub seal: &'static str,
    /// First round id produced by the batch (inclusive).
    pub round_lo: u64,
    /// One past the last round id produced by the batch.
    pub round_hi: u64,
}

impl BatchTrace {
    /// Whether `round` (a live-journal round id) belongs to this batch.
    /// Always false for snapshot batches — their ids are in a private
    /// counter space.
    pub fn owns_round(&self, round: u64) -> bool {
        !self.snapshot && round >= self.round_lo && round < self.round_hi
    }

    fn write_jsonl(&self, out: &mut String) {
        out.push_str("{\"batch\":");
        self.seq.json_write(out);
        out.push_str(",\"class\":\"");
        out.push_str(self.class);
        out.push('"');
        for (key, v) in [
            ("n", self.n),
            ("sealed_us", self.sealed_us),
            ("dispatch_us", self.dispatch_us),
            ("complete_us", self.complete_us),
            ("service_us", self.service_us),
            ("cpu_us", self.cpu_us),
            ("pim_us", self.pim_us),
            ("comm_us", self.comm_us),
            ("epoch", self.epoch),
        ] {
            out.push_str(",\"");
            out.push_str(key);
            out.push_str("\":");
            v.json_write(out);
        }
        out.push_str(",\"snapshot\":");
        self.snapshot.json_write(out);
        out.push_str(",\"materialized\":");
        self.materialized.json_write(out);
        out.push_str(",\"seal\":\"");
        out.push_str(self.seal);
        out.push_str("\",\"round_lo\":");
        self.round_lo.json_write(out);
        out.push_str(",\"round_hi\":");
        self.round_hi.json_write(out);
        out.push('}');
    }
}

/// Splits an integer service time into (cpu, pim, comm) µs proportional to
/// the simulator's [`OpBreakdown`], by floor-then-largest-remainder
/// apportionment: the three parts always sum to `service_us` exactly, and
/// the result is a deterministic function of its inputs. Ties in the
/// fractional remainders break in (cpu, pim, comm) order. A zero breakdown
/// attributes everything to cpu (the µs floor of `service_of` can exceed a
/// sub-µs simulated time).
pub fn split_service_us(service_us: u64, b: &OpBreakdown) -> (u64, u64, u64) {
    let parts = [b.cpu_s.max(0.0), b.pim_s.max(0.0), b.comm_s.max(0.0)];
    let total: f64 = parts.iter().sum();
    if total <= 0.0 {
        return (service_us, 0, 0);
    }
    let mut floors = [0u64; 3];
    let mut fracs = [0.0f64; 3];
    for i in 0..3 {
        let exact = parts[i] / total * service_us as f64;
        floors[i] = exact as u64; // trunc == floor for non-negative
        fracs[i] = exact - floors[i] as f64;
    }
    let mut rem = service_us - floors.iter().sum::<u64>();
    // Largest fractional remainder first; ties by index for determinism.
    let mut order = [0usize, 1, 2];
    order.sort_by(|&a, &b| fracs[b].partial_cmp(&fracs[a]).unwrap().then(a.cmp(&b)));
    for &i in order.iter().cycle() {
        if rem == 0 {
            break;
        }
        floors[i] += 1;
        rem -= 1;
    }
    (floors[0], floors[1], floors[2])
}

/// The complete span record of one serving run: requests sorted by id,
/// batches by sequence number. Produced by
/// [`PimServer::take_trace`](crate::PimServer::take_trace).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ServeTrace {
    /// One entry per request (admitted and rejected), sorted by id.
    pub requests: Vec<RequestTrace>,
    /// One entry per executed batch, sorted by sequence number.
    pub batches: Vec<BatchTrace>,
}

/// Request-class labels in fixed track order for the trace-event export.
const CLASS_TRACKS: [&str; 6] = ["insert", "delete", "contains", "knn", "box_count", "box_fetch"];

fn class_tid(label: &str) -> u64 {
    CLASS_TRACKS.iter().position(|&c| c == label).expect("known class label") as u64
}

/// One pending trace event, sortable into per-track monotone order.
struct Ev {
    pid: u64,
    tid: u64,
    ts: u64,
    json: String,
}

fn push_x(evs: &mut Vec<Ev>, pid: u64, tid: u64, name: &str, ts: u64, dur: u64, args: &str) {
    let mut json = String::new();
    json.push('{');
    json.push_str("\"name\":");
    name.json_write(&mut json);
    json.push_str(&format!(",\"ph\":\"X\",\"pid\":{pid},\"tid\":{tid},\"ts\":{ts},\"dur\":{dur}"));
    if !args.is_empty() {
        json.push_str(",\"args\":");
        json.push_str(args);
    }
    json.push('}');
    evs.push(Ev { pid, tid, ts, json });
}

fn meta(pid: u64, tid: Option<u64>, what: &str, name: &str) -> String {
    let mut json = format!("{{\"name\":\"{what}\",\"ph\":\"M\",\"pid\":{pid}");
    if let Some(tid) = tid {
        json.push_str(&format!(",\"tid\":{tid}"));
    }
    json.push_str(",\"args\":{\"name\":");
    name.json_write(&mut json);
    json.push_str("}}");
    json
}

impl ServeTrace {
    /// Per-request spans as canonical JSONL (one line per request, id
    /// order). This is `tail_report`'s input (`spans.jsonl`).
    pub fn spans_jsonl(&self) -> String {
        let mut out = String::new();
        for r in &self.requests {
            r.write_jsonl(&mut out);
            out.push('\n');
        }
        out
    }

    /// Per-batch link records as canonical JSONL (`batches.jsonl`).
    pub fn batches_jsonl(&self) -> String {
        let mut out = String::new();
        for b in &self.batches {
            b.write_jsonl(&mut out);
            out.push('\n');
        }
        out
    }

    /// The batch trace with sequence number `seq`, if any.
    pub fn batch(&self, seq: u64) -> Option<&BatchTrace> {
        self.batches.binary_search_by_key(&seq, |b| b.seq).ok().map(|i| &self.batches[i])
    }

    /// Renders the run as Chrome trace-event JSON, loadable in Perfetto
    /// (`ui.perfetto.dev`) or `chrome://tracing`. Timestamps are virtual
    /// µs. Three processes:
    ///
    /// * pid 1 `requests` — one track per request class; every completed
    ///   request contributes one complete (`X`) event per non-trivial
    ///   phase span, tagged with its trace id and batch.
    /// * pid 2 `lanes` — the exclusive write and read lanes; every batch
    ///   is one `B`/`E` duration pair over its flight window (the lanes
    ///   hold at most one batch each, so the pairs nest trivially).
    /// * pid 3 `modules` — one track per straggler module rank; every BSP
    ///   round of a **live** batch (resolved through the batch's round-id
    ///   range into `rounds`) is an `X` event on its busiest module's
    ///   track, laid out sequentially from the batch's dispatch.
    ///
    /// Events are ordered so `ts` is monotone non-decreasing within every
    /// `(pid, tid)` track — the shape `perf_diff --check-trace-events`
    /// validates. Byte-identical output at any host thread count.
    pub fn trace_events(&self, rounds: &[RoundRecord]) -> String {
        let mut evs: Vec<Ev> = Vec::new();

        // pid 1: request class tracks.
        for r in &self.requests {
            if r.rejected {
                continue;
            }
            let tid = class_tid(r.op);
            let args = format!(
                "{{\"trace_id\":{},\"batch\":{}}}",
                r.id.0,
                r.batch.expect("completed request has a batch")
            );
            let spans = [
                ("queue", r.arrival_us, r.queue_us),
                ("wait", r.sealed_us, r.wait_us),
                ("cpu", r.dispatch_us, r.cpu_us),
                ("pim", r.dispatch_us + r.cpu_us, r.pim_us),
                ("comm", r.dispatch_us + r.cpu_us + r.pim_us, r.comm_us),
            ];
            for (name, ts, dur) in spans {
                if dur > 0 {
                    push_x(&mut evs, 1, tid, name, ts, dur, &args);
                }
            }
        }

        // pid 2: lane tracks (B/E pairs; each lane is exclusive, so pairs
        // are sequential and balance trivially).
        for b in &self.batches {
            let tid = u64::from(!matches!(b.class, "insert" | "delete"));
            let name = format!("{}#{}", b.class, b.seq);
            let mut open = String::new();
            open.push_str("{\"name\":");
            name.json_write(&mut open);
            open.push_str(&format!(
                ",\"ph\":\"B\",\"pid\":2,\"tid\":{tid},\"ts\":{}",
                b.dispatch_us
            ));
            open.push_str(&format!(
                ",\"args\":{{\"batch\":{},\"n\":{},\"epoch\":{},\"snapshot\":{},\
                 \"seal\":\"{}\",\"round_lo\":{},\"round_hi\":{}}}}}",
                b.seq, b.n, b.epoch, b.snapshot, b.seal, b.round_lo, b.round_hi
            ));
            evs.push(Ev { pid: 2, tid, ts: b.dispatch_us, json: open });
            let mut close = String::new();
            close.push_str("{\"name\":");
            name.json_write(&mut close);
            close.push_str(&format!(
                ",\"ph\":\"E\",\"pid\":2,\"tid\":{tid},\"ts\":{}}}",
                b.complete_us
            ));
            evs.push(Ev { pid: 2, tid, ts: b.complete_us, json: close });
        }

        // pid 3: module tracks — live batches' rounds on their busiest
        // module's track, laid out sequentially from the dispatch instant.
        let mut module_tids: Vec<u64> = Vec::new();
        for b in &self.batches {
            if b.snapshot {
                continue;
            }
            let lo = rounds.partition_point(|r| r.round < b.round_lo);
            let mut offset = 0u64;
            for r in &rounds[lo..] {
                if r.round >= b.round_hi {
                    break;
                }
                let dur = ((r.breakdown.pim_s + r.breakdown.comm_s + r.breakdown.overhead_s) * 1e6)
                    .round() as u64;
                if let Some(&m) = r.stragglers.first() {
                    let tid = m as u64;
                    if !module_tids.contains(&tid) {
                        module_tids.push(tid);
                    }
                    let name = if r.phase.is_empty() { "round" } else { r.phase.as_str() };
                    let args = format!(
                        "{{\"round\":{},\"batch\":{},\"tasks\":{},\"max_cycles\":{}}}",
                        r.round, b.seq, r.tasks, r.max_cycles
                    );
                    push_x(&mut evs, 3, tid, name, b.dispatch_us + offset, dur, &args);
                }
                offset += dur;
            }
        }

        // Stable sort groups tracks and makes ts monotone per track while
        // preserving emission order on ties (E before the next B).
        evs.sort_by_key(|e| (e.pid, e.tid, e.ts));

        let mut out = String::from("{\"traceEvents\":[\n");
        let mut first = true;
        let mut push = |line: String, first: &mut bool| {
            if !*first {
                out.push_str(",\n");
            }
            *first = false;
            out.push_str(&line);
        };
        for (pid, name) in [(1, "requests"), (2, "lanes"), (3, "modules")] {
            push(meta(pid, None, "process_name", name), &mut first);
        }
        for (tid, label) in CLASS_TRACKS.iter().enumerate() {
            push(meta(1, Some(tid as u64), "thread_name", label), &mut first);
        }
        push(meta(2, Some(0), "thread_name", "write lane"), &mut first);
        push(meta(2, Some(1), "thread_name", "read lane"), &mut first);
        module_tids.sort_unstable();
        for tid in module_tids {
            push(meta(3, Some(tid), "thread_name", &format!("module {tid}")), &mut first);
        }
        for e in evs {
            push(e.json, &mut first);
        }
        out.push_str("\n]}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bd(cpu: f64, pim: f64, comm: f64) -> OpBreakdown {
        OpBreakdown { cpu_s: cpu, pim_s: pim, comm_s: comm }
    }

    #[test]
    fn split_is_exact_and_deterministic() {
        for (us, b) in [
            (1, bd(0.0, 0.0, 0.0)),
            (1, bd(1e-7, 2e-7, 3e-7)),
            (1000, bd(0.3, 0.3, 0.4)),
            (997, bd(1.0, 1.0, 1.0)),
            (123_456, bd(5e-3, 1e-2, 2e-3)),
        ] {
            let (c, p, m) = split_service_us(us, &b);
            assert_eq!(c + p + m, us, "split must be exact for {us} {b:?}");
            assert_eq!((c, p, m), split_service_us(us, &b), "split must be deterministic");
        }
    }

    #[test]
    fn split_follows_proportions() {
        let (c, p, m) = split_service_us(1_000, &bd(0.1, 0.7, 0.2));
        assert_eq!((c, p, m), (100, 700, 200));
        let (c, p, m) = split_service_us(10, &bd(0.0, 1.0, 0.0));
        assert_eq!((c, p, m), (0, 10, 0));
    }

    #[test]
    fn request_spans_sum_to_latency() {
        let r = RequestTrace {
            id: TraceId(7),
            op: "knn",
            batch: Some(3),
            arrival_us: 10,
            sealed_us: 25,
            dispatch_us: 30,
            complete_us: 100,
            queue_us: 15,
            wait_us: 5,
            cpu_us: 20,
            pim_us: 40,
            comm_us: 10,
            rejected: false,
        };
        assert_eq!(r.latency_us(), 90);
        assert_eq!(r.span_sum_us(), 90);
        let mut line = String::new();
        r.write_jsonl(&mut line);
        assert!(line.contains("\"latency_us\":90"), "{line}");
        assert!(line.contains("\"batch\":3"), "{line}");
    }

    #[test]
    fn trace_event_export_is_valid_shape() {
        let trace = ServeTrace {
            requests: vec![RequestTrace {
                id: TraceId(0),
                op: "contains",
                batch: Some(0),
                arrival_us: 0,
                sealed_us: 4,
                dispatch_us: 6,
                complete_us: 16,
                queue_us: 4,
                wait_us: 2,
                cpu_us: 3,
                pim_us: 5,
                comm_us: 2,
                rejected: false,
            }],
            batches: vec![BatchTrace {
                seq: 0,
                class: "contains",
                n: 1,
                sealed_us: 4,
                dispatch_us: 6,
                complete_us: 16,
                service_us: 10,
                cpu_us: 3,
                pim_us: 5,
                comm_us: 2,
                epoch: 0,
                snapshot: false,
                materialized: false,
                seal: "budget",
                round_lo: 0,
                round_hi: 0,
            }],
        };
        let text = trace.trace_events(&[]);
        let v = serde_json::from_str(&text).expect("export parses as JSON");
        let evs = v.get("traceEvents").and_then(|e| e.as_array()).unwrap();
        let bs = evs.iter().filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("B")).count();
        let es = evs.iter().filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("E")).count();
        assert_eq!(bs, es, "every B has an E");
        assert!(evs.iter().any(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X")));
        assert_eq!(trace.batch(0).unwrap().seq, 0);
        assert!(trace.batch(1).is_none());
    }
}
