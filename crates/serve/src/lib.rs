//! # pim-serve — the online serving layer for PIM-zd-tree
//!
//! The index's batched operations want *big* batches (a BSP round has a
//! fixed setup cost to amortize), but an online service receives requests
//! one at a time and is judged on tail latency. This crate bridges the two:
//! a request front-end that accumulates a concurrent stream of
//! inserts/deletes/kNN/box queries into batches under a latency budget,
//! pipelines batch formation against the in-flight BSP round, and serves
//! reads from epoch-pinned snapshots while a write batch is in flight.
//!
//! Three pieces:
//!
//! * [`BatchPolicy`] / [`ThroughputEstimator`] — when to seal a batch: on
//!   latency-budget expiry, or when the batch reaches the size a recent
//!   throughput fit says saturates a round.
//! * [`PimServer`] — the virtual-time event loop: admission control with
//!   bounded-queue backpressure, one write lane + one read lane, snapshot
//!   reads ([`pim_zd_tree::TreeSnapshot`]) for read/write pipelining.
//! * [`ServeReport`] — canonical run artifacts (per-request replies, batch
//!   journal, latency samples, simulated-cost totals), all byte-comparable.
//! * [`trace`] — opt-in causal request tracing ([`PimServer::set_tracing`]):
//!   per-request phase spans that sum exactly to the reply latency, batch →
//!   BSP-round links, and a Perfetto-loadable trace-event export. See
//!   ARCHITECTURE.md §9.
//!
//! # Determinism
//!
//! Everything is simulated in **virtual time**; wall clock and host thread
//! count never enter the model. Given a recorded
//! [`ArrivalTrace`](pim_workloads::ArrivalTrace) and a seed, results,
//! journals, and metrics snapshots are byte-reproducible at any thread
//! count (`tests/serving_determinism.rs`). Closed-loop runs *record* the
//! trace they induced, so any interactive experiment can be replayed
//! exactly. ARCHITECTURE.md §8 documents the design.
//!
//! ```
//! use pim_serve::{PimServer, ServeConfig};
//! use pim_sim::MachineConfig;
//! use pim_workloads::{open_loop_trace, uniform, RequestMix};
//! use pim_zd_tree::{PimZdConfig, PimZdTree};
//!
//! let data = uniform::<3>(2_000, 42);
//! let tree = PimZdTree::build(
//!     &data,
//!     PimZdConfig::throughput_optimized(2_000, 16),
//!     MachineConfig::with_modules(16),
//! );
//! let trace = open_loop_trace(&data, 200, 20_000.0, &RequestMix::read_heavy(), 7);
//! let mut server = PimServer::new(tree, ServeConfig::default());
//! let report = server.run_trace(&trace);
//! assert_eq!(report.replies.len(), trace.len());
//! assert!(report.latency_us(None).quantile(0.99) >= report.latency_us(None).quantile(0.5));
//! ```

#![deny(missing_docs)]

pub mod policy;
pub mod report;
pub mod server;
pub mod trace;

pub use policy::{BatchPolicy, ThroughputEstimator};
pub use report::{fnv_fold, Reply, SealReason, ServeReport, Totals, FNV_OFFSET};
pub use server::{ClassKey, ClosedLoop, PimServer, ServeConfig};
pub use trace::{split_service_us, BatchTrace, RequestTrace, ServeTrace, TraceId};
