//! The virtual-time serving event loop: admission, batching, pipelined
//! dispatch, and epoch snapshot reads.
//!
//! # Model
//!
//! [`PimServer`] replays a request stream in **virtual microseconds**. All
//! timing comes from the simulator: a dispatched batch occupies its lane for
//! `OpStats::breakdown.total_s()` of simulated time, and nothing in the loop
//! reads a wall clock or depends on host thread count. That makes every
//! artifact — replies, journal, latency percentiles, metrics — a pure
//! function of `(tree, config, trace)`.
//!
//! # Event loop
//!
//! Events are processed in nondecreasing virtual time; at one timestamp the
//! phases run in a fixed order, which *defines* the tie-breaks:
//!
//! 1. **Completions** (by batch sequence number): the finished batch's
//!    service time feeds its class's [`ThroughputEstimator`], replies are
//!    emitted, the lane frees, and closed-loop clients schedule their next
//!    request.
//! 2. **Arrivals** (trace order): admission control rejects when
//!    `pending + sealed` requests already fill the bounded queue
//!    ([`ServeConfig::queue_cap`]); admitted requests join their class
//!    queue, which seals into a batch the moment it reaches the adaptive
//!    size target ([`BatchPolicy::target`]).
//! 3. **Budget seals** (class order): any class whose oldest queued request
//!    has aged past [`BatchPolicy::budget_us`] seals, regardless of size.
//! 4. **Dispatch**: at most one write batch and one read batch are in
//!    flight. Writes dispatch in seal order. Reads dispatch concurrently
//!    with an in-flight write **only** when [`ServeConfig::snapshot_reads`]
//!    is on — the read then runs against the [`TreeSnapshot`] captured from
//!    the pre-write state and observes exactly the pre-batch epoch; with
//!    snapshots off, reads wait for the write lane to drain (no read ever
//!    observes a half-applied batch either way).
//!
//! # Result fingerprints
//!
//! Replies carry an FNV-1a fingerprint of the request's result instead of
//! the full payload: `contains` folds the boolean, `knn` folds every
//! neighbor's id and coordinates, `box_count` folds the count, `box_fetch`
//! folds the hit count and every returned coordinate, `insert` acks with 1,
//! and `delete` folds the batch's removed-count (the underlying
//! [`PimZdTree::batch_delete`] reports one aggregate count per batch).

use std::collections::{BTreeMap, VecDeque};

use pim_geom::{Aabb, Metric, Point};
use pim_sim::Metrics;
use pim_workloads::{Arrival, ArrivalTrace, ReqOp, RequestMix, RequestSampler};
use pim_zd_tree::{OpStats, PimZdTree, TreeSnapshot};

use crate::policy::{BatchPolicy, ThroughputEstimator};
use crate::report::{fnv_fold, Reply, SealReason, ServeReport, Totals, FNV_OFFSET};
use crate::trace::{split_service_us, BatchTrace, RequestTrace, ServeTrace, TraceId};

/// Batch-compatibility class of a request: requests batch together exactly
/// when their keys are equal (kNN batches share one `k`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum ClassKey {
    /// Point inserts.
    Insert,
    /// Point deletes.
    Delete,
    /// Membership probes.
    Contains,
    /// kNN queries with this `k`.
    Knn(usize),
    /// Range counts.
    BoxCount,
    /// Range fetches.
    BoxFetch,
}

impl ClassKey {
    /// The class of a request.
    pub fn of<const D: usize>(op: &ReqOp<D>) -> Self {
        match op {
            ReqOp::Insert(_) => ClassKey::Insert,
            ReqOp::Delete(_) => ClassKey::Delete,
            ReqOp::Contains(_) => ClassKey::Contains,
            ReqOp::Knn(_, k) => ClassKey::Knn(*k),
            ReqOp::BoxCount(_) => ClassKey::BoxCount,
            ReqOp::BoxFetch(_) => ClassKey::BoxFetch,
        }
    }

    /// Whether batches of this class mutate the index.
    pub fn is_write(&self) -> bool {
        matches!(self, ClassKey::Insert | ClassKey::Delete)
    }

    /// Stable label (matches [`ReqOp::label`]).
    pub fn label(&self) -> &'static str {
        match self {
            ClassKey::Insert => "insert",
            ClassKey::Delete => "delete",
            ClassKey::Contains => "contains",
            ClassKey::Knn(_) => "knn",
            ClassKey::BoxCount => "box_count",
            ClassKey::BoxFetch => "box_fetch",
        }
    }
}

/// Server configuration.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Batch formation policy.
    pub policy: BatchPolicy,
    /// Bounded-queue capacity: admission control rejects a new arrival when
    /// this many requests are already pending or sealed (backpressure).
    pub queue_cap: usize,
    /// Serve reads from an epoch snapshot while a write batch is in flight
    /// (off = reads wait for the write lane; the ablation baseline).
    pub snapshot_reads: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self { policy: BatchPolicy::default(), queue_cap: 8_192, snapshot_reads: true }
    }
}

/// A closed-loop load description: `clients` independent clients that each
/// issue a request, wait for its reply, think for `think_us`, and repeat,
/// `requests_per_client` times. Payloads come from a seeded
/// [`RequestSampler`] over the data distribution.
#[derive(Clone, Copy, Debug)]
pub struct ClosedLoop {
    /// Number of concurrent clients.
    pub clients: usize,
    /// Requests each client issues before stopping.
    pub requests_per_client: usize,
    /// Think time between a reply and the client's next request (µs).
    pub think_us: u64,
    /// Request mix to draw payloads from.
    pub mix: RequestMix,
    /// Payload sampler seed.
    pub seed: u64,
}

/// One admitted, not-yet-dispatched request.
struct Queued<const D: usize> {
    id: u64,
    arrival_us: u64,
    op: ReqOp<D>,
}

/// A sealed batch waiting for (or occupying) a lane.
struct Sealed<const D: usize> {
    seq: u64,
    class: ClassKey,
    reqs: Vec<Queued<D>>,
    sealed_us: u64,
    reason: SealReason,
}

/// An executing batch: results are already computed (execution happens at
/// dispatch), the reply is withheld until the simulated round completes.
struct Flight<const D: usize> {
    batch: Sealed<D>,
    dispatch_us: u64,
    complete_us: u64,
    service_us: u64,
    epoch: u64,
    snapshot: bool,
    fingerprints: Vec<u64>,
    /// Cross-layer link captured at execution time; present exactly when
    /// tracing is on.
    link: Option<FlightLink>,
}

/// What the tracer captures around a batch's execution: the round-id range
/// the batch produced on its executing machine and the exact integer split
/// of its service time (see `trace::split_service_us`).
struct FlightLink {
    round_lo: u64,
    round_hi: u64,
    cpu_us: u64,
    pim_us: u64,
    comm_us: u64,
    /// Whether this dispatch materialized the snapshot from its image.
    materialized: bool,
}

/// Per-run mutable state of the event loop.
struct RunState<const D: usize> {
    /// Future arrivals keyed by `(t_us, seq)`; the value carries the client
    /// index for closed-loop runs (`u32::MAX` in trace replays).
    arrivals: BTreeMap<(u64, u64), (ReqOp<D>, u32)>,
    next_id: u64,
    pending: BTreeMap<ClassKey, VecDeque<Queued<D>>>,
    sealed_writes: VecDeque<Sealed<D>>,
    sealed_reads: VecDeque<Sealed<D>>,
    /// Requests pending or sealed (the bounded queue's occupancy).
    queued: usize,
    write_flight: Option<Flight<D>>,
    read_flight: Option<Flight<D>>,
    estimators: BTreeMap<ClassKey, ThroughputEstimator>,
    /// Pre-write checkpoint image `(epoch, bytes)`, captured at each write
    /// dispatch while snapshot reads are enabled.
    snapshot_image: Option<(u64, Vec<u8>)>,
    /// Lazily materialized snapshot of `snapshot_image`.
    snapshot_cache: Option<TreeSnapshot<D>>,
    batch_seq: u64,
    replies: Vec<Reply>,
    journal: Vec<String>,
    totals: Totals,
    rejected: u64,
    batches: u64,
    snapshot_batches: u64,
    now: u64,
}

impl<const D: usize> RunState<D> {
    fn new() -> Self {
        Self {
            arrivals: BTreeMap::new(),
            next_id: 0,
            pending: BTreeMap::new(),
            sealed_writes: VecDeque::new(),
            sealed_reads: VecDeque::new(),
            queued: 0,
            write_flight: None,
            read_flight: None,
            estimators: BTreeMap::new(),
            snapshot_image: None,
            snapshot_cache: None,
            batch_seq: 0,
            replies: Vec::new(),
            journal: Vec::new(),
            totals: Totals::default(),
            rejected: 0,
            batches: 0,
            snapshot_batches: 0,
            now: 0,
        }
    }
}

/// Closed-loop driver state threaded through the event loop.
struct ClosedState<'a, const D: usize> {
    sampler: RequestSampler<'a, D>,
    think_us: u64,
    per_client: usize,
    issued: Vec<usize>,
    /// `owner[id]` = client that issued request `id`.
    owner: Vec<u32>,
    recorded: Vec<Arrival<D>>,
    seq: u64,
}

/// The serving front-end: owns the tree and replays request streams against
/// it under a [`ServeConfig`]. See the module docs for the full model.
pub struct PimServer<const D: usize> {
    tree: PimZdTree<D>,
    cfg: ServeConfig,
    metrics: Metrics,
    /// Per-run span buffers; `Some` exactly while request tracing is on
    /// (one branch per feeding site when off — the zero-cost-off bar the
    /// metrics and round-trace layers meet).
    tracer: Option<ServeTrace>,
}

impl<const D: usize> PimServer<D> {
    /// Wraps a built tree in a server.
    pub fn new(tree: PimZdTree<D>, cfg: ServeConfig) -> Self {
        Self { tree, cfg, metrics: Metrics::disabled(), tracer: None }
    }

    /// Turns causal request tracing on or off (off by default). While on,
    /// every run records a [`RequestTrace`] per request and a
    /// [`BatchTrace`] per executed batch — see [`crate::trace`]. Tracing
    /// never perturbs virtual time, so a traced run's replies and journal
    /// are byte-identical to an untraced one's.
    pub fn set_tracing(&mut self, on: bool) {
        self.tracer = on.then(ServeTrace::default);
    }

    /// Whether request tracing is on.
    pub fn tracing_enabled(&self) -> bool {
        self.tracer.is_some()
    }

    /// Takes the span record of the last traced run (`None` when tracing
    /// is off), leaving an empty buffer for the next run. Requests are
    /// sorted by id, batches by sequence number.
    pub fn take_trace(&mut self) -> Option<ServeTrace> {
        let mut trace = self.tracer.as_mut().map(std::mem::take)?;
        trace.requests.sort_by_key(|r| r.id);
        trace.batches.sort_by_key(|b| b.seq);
        Some(trace)
    }

    /// Attaches a round-trace sink to the underlying tree (see
    /// [`pim_sim::trace`]); the round journal it collects is what the
    /// per-batch round-id links of [`crate::trace`] resolve into.
    pub fn set_trace_sink(&mut self, sink: Box<dyn pim_sim::TraceSink>) {
        self.tree.set_trace_sink(sink);
    }

    /// Attaches a metrics registry to the server *and* the underlying tree.
    /// Serving metrics (`serve_*` families) are updated sequentially inside
    /// the event loop, so snapshots are thread-count independent.
    pub fn set_metrics(&mut self, metrics: Metrics) {
        self.metrics = metrics.clone();
        self.tree.set_metrics(metrics);
    }

    /// The underlying tree (e.g. to inspect epoch or size between runs).
    pub fn tree(&self) -> &PimZdTree<D> {
        &self.tree
    }

    /// Consumes the server, returning the tree with all applied writes.
    pub fn into_tree(self) -> PimZdTree<D> {
        self.tree
    }

    /// Replays a recorded open-loop trace to completion and returns the
    /// run's artifacts. Deterministic: same tree + config + trace → byte
    /// identical report, at any host thread count.
    pub fn run_trace(&mut self, trace: &ArrivalTrace<D>) -> ServeReport {
        if let Some(tr) = self.tracer.as_mut() {
            *tr = ServeTrace::default();
        }
        let mut st = RunState::new();
        for (i, a) in trace.arrivals.iter().enumerate() {
            st.arrivals.insert((a.t_us, i as u64), (a.op, u32::MAX));
        }
        self.drive(&mut st, None);
        finish(st)
    }

    /// Runs a closed-loop load until every client exhausts its request
    /// budget. Returns the artifacts **and** the recorded arrival trace;
    /// replaying that trace through [`Self::run_trace`] on an identical
    /// server reproduces the exact same artifacts (tested), which is how
    /// closed-loop experiments become shareable, deterministic traces.
    pub fn run_closed_loop(
        &mut self,
        load: &ClosedLoop,
        data: &[Point<D>],
    ) -> (ServeReport, ArrivalTrace<D>) {
        assert!(load.clients > 0, "closed loop needs at least one client");
        if let Some(tr) = self.tracer.as_mut() {
            *tr = ServeTrace::default();
        }
        let mut closed = ClosedState {
            sampler: RequestSampler::new(data, load.mix, load.seed),
            think_us: load.think_us,
            per_client: load.requests_per_client,
            issued: vec![0; load.clients],
            owner: Vec::new(),
            recorded: Vec::new(),
            seq: 0,
        };
        let mut st = RunState::new();
        for c in 0..load.clients {
            if load.requests_per_client == 0 {
                break;
            }
            let op = closed.sampler.next_op();
            st.arrivals.insert((0, closed.seq), (op, c as u32));
            closed.seq += 1;
            closed.issued[c] = 1;
        }
        self.drive(&mut st, Some(&mut closed));
        let trace = ArrivalTrace { arrivals: closed.recorded };
        (finish(st), trace)
    }

    // -----------------------------------------------------------------
    // Event loop
    // -----------------------------------------------------------------

    fn drive(&mut self, st: &mut RunState<D>, mut closed: Option<&mut ClosedState<'_, D>>) {
        while let Some(t) = self.next_event(st) {
            debug_assert!(t >= st.now, "virtual time must not run backwards");
            st.now = t;
            self.complete_at(st, t, closed.as_deref_mut());
            self.ingest_at(st, t, closed.as_deref_mut());
            self.seal_expired(st, t);
            self.dispatch_ready(st, t);
        }
    }

    /// The next virtual timestamp at which anything can happen.
    fn next_event(&self, st: &RunState<D>) -> Option<u64> {
        let mut t = None;
        let mut consider = |c: u64| t = Some(t.map_or(c, |x: u64| x.min(c)));
        if let Some(((at, _), _)) = st.arrivals.iter().next() {
            consider(*at);
        }
        for f in [&st.write_flight, &st.read_flight].into_iter().flatten() {
            consider(f.complete_us);
        }
        for q in st.pending.values() {
            if let Some(front) = q.front() {
                consider(front.arrival_us + self.cfg.policy.budget_us);
            }
        }
        t
    }

    /// Phase 1: finish flights whose round completes at `t`.
    fn complete_at(
        &mut self,
        st: &mut RunState<D>,
        t: u64,
        mut closed: Option<&mut ClosedState<'_, D>>,
    ) {
        let mut done: Vec<Flight<D>> = Vec::new();
        if st.write_flight.as_ref().is_some_and(|f| f.complete_us == t) {
            done.push(st.write_flight.take().unwrap());
        }
        if st.read_flight.as_ref().is_some_and(|f| f.complete_us == t) {
            done.push(st.read_flight.take().unwrap());
        }
        done.sort_by_key(|f| f.batch.seq);
        for f in done {
            let label = f.batch.class.label();
            st.estimators
                .entry(f.batch.class)
                .or_default()
                .observe(f.batch.reqs.len(), f.service_us as f64);
            if let Some(tr) = self.tracer.as_mut() {
                let link = f.link.as_ref().expect("tracing on implies a captured link");
                tr.batches.push(BatchTrace {
                    seq: f.batch.seq,
                    class: label,
                    n: f.batch.reqs.len() as u64,
                    sealed_us: f.batch.sealed_us,
                    dispatch_us: f.dispatch_us,
                    complete_us: f.complete_us,
                    service_us: f.service_us,
                    cpu_us: link.cpu_us,
                    pim_us: link.pim_us,
                    comm_us: link.comm_us,
                    epoch: f.epoch,
                    snapshot: f.snapshot,
                    materialized: link.materialized,
                    seal: f.batch.reason.as_str(),
                    round_lo: link.round_lo,
                    round_hi: link.round_hi,
                });
                for q in &f.batch.reqs {
                    tr.requests.push(RequestTrace {
                        id: TraceId(q.id),
                        op: label,
                        batch: Some(f.batch.seq),
                        arrival_us: q.arrival_us,
                        sealed_us: f.batch.sealed_us,
                        dispatch_us: f.dispatch_us,
                        complete_us: f.complete_us,
                        queue_us: f.batch.sealed_us - q.arrival_us,
                        wait_us: f.dispatch_us - f.batch.sealed_us,
                        cpu_us: link.cpu_us,
                        pim_us: link.pim_us,
                        comm_us: link.comm_us,
                        rejected: false,
                    });
                }
            }
            st.journal.push(format!(
                "{{\"batch\":{},\"class\":\"{}\",\"n\":{},\"sealed_us\":{},\"dispatch_us\":{},\
                 \"complete_us\":{},\"epoch\":{},\"snapshot\":{},\"seal\":\"{}\",\"service_us\":{}}}",
                f.batch.seq,
                label,
                f.batch.reqs.len(),
                f.batch.sealed_us,
                f.dispatch_us,
                f.complete_us,
                f.epoch,
                f.snapshot,
                f.batch.reason.as_str(),
                f.service_us,
            ));
            for (i, q) in f.batch.reqs.iter().enumerate() {
                st.replies.push(Reply {
                    id: q.id,
                    op: label,
                    arrival_us: q.arrival_us,
                    dispatch_us: f.dispatch_us,
                    complete_us: f.complete_us,
                    epoch: f.epoch,
                    fingerprint: f.fingerprints[i],
                    rejected: false,
                });
                self.metrics.with(|m| {
                    // The request id rides along as a bounded histogram
                    // exemplar (JSON snapshot only), so a latency bucket
                    // can name requests to look up in a span trace.
                    m.observe_exemplar(
                        "serve_latency_us",
                        &[("op", label)],
                        f.complete_us - q.arrival_us,
                        q.id,
                    )
                });
                if let Some(c) = closed.as_mut() {
                    schedule_next(c, st, q.id, f.complete_us);
                }
            }
        }
    }

    /// Phase 2: admit (or reject) every arrival stamped `t`, sealing any
    /// class that reaches its size target.
    fn ingest_at(
        &mut self,
        st: &mut RunState<D>,
        t: u64,
        mut closed: Option<&mut ClosedState<'_, D>>,
    ) {
        while let Some((&(at, seq), _)) = st.arrivals.iter().next() {
            if at != t {
                break;
            }
            let (op, client) = st.arrivals.remove(&(at, seq)).unwrap();
            let id = st.next_id;
            st.next_id += 1;
            let label = op.label();
            if let Some(c) = closed.as_mut() {
                debug_assert_eq!(c.owner.len() as u64, id);
                c.owner.push(client);
                c.recorded.push(Arrival { t_us: t, op });
            }
            self.metrics.with(|m| m.add("serve_requests_total", &[("op", label)], 1));
            if st.queued >= self.cfg.queue_cap {
                st.rejected += 1;
                st.replies.push(Reply {
                    id,
                    op: label,
                    arrival_us: t,
                    dispatch_us: t,
                    complete_us: t,
                    epoch: self.tree.epoch(),
                    fingerprint: 0,
                    rejected: true,
                });
                self.metrics.with(|m| m.add("serve_rejected_total", &[("op", label)], 1));
                if let Some(tr) = self.tracer.as_mut() {
                    tr.requests.push(RequestTrace {
                        id: TraceId(id),
                        op: label,
                        batch: None,
                        arrival_us: t,
                        sealed_us: t,
                        dispatch_us: t,
                        complete_us: t,
                        queue_us: 0,
                        wait_us: 0,
                        cpu_us: 0,
                        pim_us: 0,
                        comm_us: 0,
                        rejected: true,
                    });
                }
                if let Some(c) = closed.as_mut() {
                    // A rejection is an immediate (failed) reply: the client
                    // thinks, then retries-or-moves-on with its next request.
                    schedule_next(c, st, id, t);
                }
                continue;
            }
            let class = ClassKey::of(&op);
            st.pending.entry(class).or_default().push_back(Queued { id, arrival_us: t, op });
            st.queued += 1;
            let target = self
                .cfg
                .policy
                .target(st.estimators.entry(class).or_default())
                .min(self.cfg.policy.max_batch);
            if st.pending[&class].len() >= target {
                self.seal(st, class, t, SealReason::Size);
            }
        }
    }

    /// Phase 3: seal every class whose oldest request has exhausted the
    /// latency budget (repeatedly, in case a backlog spans several
    /// max-size batches).
    fn seal_expired(&mut self, st: &mut RunState<D>, t: u64) {
        let classes: Vec<ClassKey> = st.pending.keys().copied().collect();
        for class in classes {
            while st
                .pending
                .get(&class)
                .and_then(|q| q.front())
                .is_some_and(|front| front.arrival_us + self.cfg.policy.budget_us <= t)
            {
                self.seal(st, class, t, SealReason::Budget);
            }
        }
    }

    /// Seals up to `max_batch` requests of `class` into one batch.
    fn seal(&mut self, st: &mut RunState<D>, class: ClassKey, t: u64, reason: SealReason) {
        let q = st.pending.get_mut(&class).expect("seal of an empty class");
        let n = q.len().min(self.cfg.policy.max_batch);
        let reqs: Vec<Queued<D>> = q.drain(..n).collect();
        if q.is_empty() {
            st.pending.remove(&class);
        }
        let batch = Sealed { seq: st.batch_seq, class, reqs, sealed_us: t, reason };
        st.batch_seq += 1;
        st.batches += 1;
        let label = class.label();
        self.metrics.with(|m| {
            m.add("serve_batches_total", &[("op", label)], 1);
            m.observe("serve_batch_size", &[], batch.reqs.len() as u64);
            match reason {
                SealReason::Budget => m.add("serve_seal_budget_total", &[], 1),
                SealReason::Size => m.add("serve_seal_size_total", &[], 1),
            }
        });
        if class.is_write() {
            st.sealed_writes.push_back(batch);
        } else {
            st.sealed_reads.push_back(batch);
        }
    }

    /// Phase 4: fill free lanes from the sealed queues.
    fn dispatch_ready(&mut self, st: &mut RunState<D>, t: u64) {
        if st.write_flight.is_none() {
            if let Some(batch) = st.sealed_writes.pop_front() {
                st.queued -= batch.reqs.len();
                let flight = self.execute_write(st, batch, t);
                st.write_flight = Some(flight);
            }
        }
        if st.read_flight.is_none() && !st.sealed_reads.is_empty() {
            let use_snapshot = st.write_flight.is_some();
            if !use_snapshot || self.cfg.snapshot_reads {
                let batch = st.sealed_reads.pop_front().unwrap();
                st.queued -= batch.reqs.len();
                let flight = self.execute_read(st, batch, t, use_snapshot);
                st.read_flight = Some(flight);
            }
        }
    }

    /// Applies a write batch at dispatch time (capturing the pre-write
    /// snapshot image first) and schedules its completion.
    fn execute_write(&mut self, st: &mut RunState<D>, batch: Sealed<D>, t: u64) -> Flight<D> {
        // Captured before the snapshot image: any rounds the capture emits
        // belong to this dispatch's causal window.
        let round_lo = if self.tracer.is_some() { self.tree.next_round_id() } else { 0 };
        if self.cfg.snapshot_reads {
            let pre_epoch = self.tree.epoch();
            if st.snapshot_image.as_ref().map(|(e, _)| *e) != Some(pre_epoch) {
                st.snapshot_image = Some((pre_epoch, self.tree.checkpoint_bytes()));
                st.snapshot_cache = None;
            }
        }
        let pts: Vec<Point<D>> = batch.reqs.iter().map(|q| point_of(&q.op)).collect();
        let fingerprints: Vec<u64> = match batch.class {
            ClassKey::Insert => {
                self.tree.batch_insert(&pts);
                vec![1; pts.len()]
            }
            ClassKey::Delete => {
                let removed = self.tree.batch_delete(&pts) as u64;
                vec![removed; pts.len()]
            }
            other => unreachable!("write lane got read class {other:?}"),
        };
        let (service_us, stats) = service_of(self.tree.last_op_stats());
        st.totals.add(&stats);
        let link = self.tracer.is_some().then(|| {
            let (cpu_us, pim_us, comm_us) = split_service_us(service_us, &stats.breakdown);
            FlightLink {
                round_lo,
                round_hi: self.tree.next_round_id(),
                cpu_us,
                pim_us,
                comm_us,
                materialized: false,
            }
        });
        Flight {
            dispatch_us: t,
            complete_us: t + service_us,
            service_us,
            epoch: self.tree.epoch(),
            snapshot: false,
            fingerprints,
            batch,
            link,
        }
    }

    /// Runs a read batch at dispatch time — against the live tree, or
    /// against the pinned pre-write snapshot when a write is in flight —
    /// and schedules its completion.
    fn execute_read(
        &mut self,
        st: &mut RunState<D>,
        batch: Sealed<D>,
        t: u64,
        use_snapshot: bool,
    ) -> Flight<D> {
        let mut materialized = false;
        if use_snapshot {
            let (img_epoch, img) =
                st.snapshot_image.as_ref().expect("write in flight implies a captured image");
            if st.snapshot_cache.as_ref().map(|s| s.epoch()) != Some(*img_epoch) {
                st.snapshot_cache = Some(
                    TreeSnapshot::from_image(img).expect("self-produced image always restores"),
                );
                materialized = true;
            }
            st.snapshot_batches += 1;
            self.metrics.with(|m| m.add("serve_snapshot_reads_total", &[], 1));
        }
        let tracing = self.tracer.is_some();
        let (epoch, fingerprints, stats, round_lo, round_hi) = {
            let snap = st.snapshot_cache.as_mut();
            let mut target = if use_snapshot {
                ReadRef::Snap(snap.expect("snapshot materialized above"))
            } else {
                ReadRef::Live(&mut self.tree)
            };
            // A snapshot's machine continues the round counter from the
            // checkpoint capture point; its ids are private to it (the
            // link's `snapshot` flag disambiguates).
            let lo = if tracing { target.next_round_id() } else { 0 };
            let fps = run_read(&mut target, &batch);
            let hi = if tracing { target.next_round_id() } else { 0 };
            (target.epoch(), fps, target.stats().clone(), lo, hi)
        };
        let (service_us, stats) = service_of(&stats);
        st.totals.add(&stats);
        let link = tracing.then(|| {
            let (cpu_us, pim_us, comm_us) = split_service_us(service_us, &stats.breakdown);
            FlightLink { round_lo, round_hi, cpu_us, pim_us, comm_us, materialized }
        });
        Flight {
            dispatch_us: t,
            complete_us: t + service_us,
            service_us,
            epoch,
            snapshot: use_snapshot,
            fingerprints,
            batch,
            link,
        }
    }
}

/// Read-lane target: the live tree or a pinned snapshot.
enum ReadRef<'a, const D: usize> {
    Live(&'a mut PimZdTree<D>),
    Snap(&'a mut TreeSnapshot<D>),
}

impl<const D: usize> ReadRef<'_, D> {
    fn epoch(&self) -> u64 {
        match self {
            ReadRef::Live(t) => t.epoch(),
            ReadRef::Snap(s) => s.epoch(),
        }
    }

    fn stats(&self) -> &OpStats {
        match self {
            ReadRef::Live(t) => t.last_op_stats(),
            ReadRef::Snap(s) => s.last_op_stats(),
        }
    }

    fn next_round_id(&self) -> u64 {
        match self {
            ReadRef::Live(t) => t.next_round_id(),
            ReadRef::Snap(s) => s.next_round_id(),
        }
    }

    fn contains(&mut self, pts: &[Point<D>]) -> Vec<bool> {
        match self {
            ReadRef::Live(t) => t.batch_contains(pts),
            ReadRef::Snap(s) => s.batch_contains(pts),
        }
    }

    fn knn(&mut self, pts: &[Point<D>], k: usize) -> Vec<Vec<(u64, Point<D>)>> {
        match self {
            ReadRef::Live(t) => t.batch_knn(pts, k, Metric::L2),
            ReadRef::Snap(s) => s.batch_knn(pts, k, Metric::L2),
        }
    }

    fn box_count(&mut self, boxes: &[Aabb<D>]) -> Vec<u64> {
        match self {
            ReadRef::Live(t) => t.batch_box_count(boxes),
            ReadRef::Snap(s) => s.batch_box_count(boxes),
        }
    }

    fn box_fetch(&mut self, boxes: &[Aabb<D>]) -> Vec<Vec<Point<D>>> {
        match self {
            ReadRef::Live(t) => t.batch_box_fetch(boxes),
            ReadRef::Snap(s) => s.batch_box_fetch(boxes),
        }
    }
}

/// Executes one read batch against `target`, returning per-request result
/// fingerprints (see the module docs for the folding per class).
fn run_read<const D: usize>(target: &mut ReadRef<'_, D>, batch: &Sealed<D>) -> Vec<u64> {
    match batch.class {
        ClassKey::Contains => {
            let pts: Vec<Point<D>> = batch.reqs.iter().map(|q| point_of(&q.op)).collect();
            target.contains(&pts).into_iter().map(|b| b as u64).collect()
        }
        ClassKey::Knn(k) => {
            let pts: Vec<Point<D>> = batch.reqs.iter().map(|q| point_of(&q.op)).collect();
            target
                .knn(&pts, k)
                .into_iter()
                .map(|nbrs| {
                    nbrs.iter().fold(FNV_OFFSET, |fp, (id, p)| {
                        p.coords.iter().fold(fnv_fold(fp, *id), |fp, c| fnv_fold(fp, *c as u64))
                    })
                })
                .collect()
        }
        ClassKey::BoxCount => {
            let boxes: Vec<Aabb<D>> = batch.reqs.iter().map(|q| box_of(&q.op)).collect();
            target.box_count(&boxes)
        }
        ClassKey::BoxFetch => {
            let boxes: Vec<Aabb<D>> = batch.reqs.iter().map(|q| box_of(&q.op)).collect();
            target
                .box_fetch(&boxes)
                .into_iter()
                .map(|hits| {
                    hits.iter().fold(fnv_fold(FNV_OFFSET, hits.len() as u64), |fp, p| {
                        p.coords.iter().fold(fp, |fp, c| fnv_fold(fp, *c as u64))
                    })
                })
                .collect()
        }
        other => unreachable!("read lane got write class {other:?}"),
    }
}

/// The point payload of a point-carrying request.
fn point_of<const D: usize>(op: &ReqOp<D>) -> Point<D> {
    match op {
        ReqOp::Insert(p) | ReqOp::Delete(p) | ReqOp::Contains(p) | ReqOp::Knn(p, _) => *p,
        other => unreachable!("no point payload on {other:?}"),
    }
}

/// The box payload of a range request.
fn box_of<const D: usize>(op: &ReqOp<D>) -> Aabb<D> {
    match op {
        ReqOp::BoxCount(b) | ReqOp::BoxFetch(b) => *b,
        other => unreachable!("no box payload on {other:?}"),
    }
}

/// Converts a batch's simulated service time to whole virtual µs (≥ 1, so
/// completions never collide with their own dispatch instant).
fn service_of(stats: &OpStats) -> (u64, OpStats) {
    let us = (stats.breakdown.total_s() * 1e6).round() as u64;
    (us.max(1), stats.clone())
}

/// Schedules the owning client's next request after a reply at `t`.
fn schedule_next<const D: usize>(
    c: &mut ClosedState<'_, D>,
    st: &mut RunState<D>,
    id: u64,
    t: u64,
) {
    let client = c.owner[id as usize] as usize;
    if c.issued[client] < c.per_client {
        let op = c.sampler.next_op();
        st.arrivals.insert((t + c.think_us, c.seq), (op, client as u32));
        c.seq += 1;
        c.issued[client] += 1;
    }
}

/// Orders replies by id and freezes the run state into a report.
fn finish<const D: usize>(mut st: RunState<D>) -> ServeReport {
    debug_assert!(st.pending.is_empty(), "drained loop left pending requests");
    debug_assert!(st.write_flight.is_none() && st.read_flight.is_none());
    st.replies.sort_by_key(|r| r.id);
    ServeReport {
        replies: st.replies,
        batches: st.batches,
        snapshot_batches: st.snapshot_batches,
        rejected: st.rejected,
        makespan_us: st.now,
        journal: st.journal,
        totals: st.totals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_sim::MachineConfig;
    use pim_workloads::{open_loop_trace, uniform, RequestMix};
    use pim_zd_tree::PimZdConfig;

    fn server(n: usize, seed: u64, cfg: ServeConfig) -> (PimServer<3>, Vec<Point<3>>) {
        let data = uniform::<3>(n, seed);
        let tree = PimZdTree::build(
            &data,
            PimZdConfig::throughput_optimized(n as u64, 16),
            MachineConfig::with_modules(16),
        );
        (PimServer::new(tree, cfg), data)
    }

    #[test]
    fn trace_replay_is_deterministic_and_replies_every_request() {
        let (mut s, data) = server(3_000, 1, ServeConfig::default());
        let trace = open_loop_trace(&data, 400, 20_000.0, &RequestMix::read_heavy(), 7);
        let rep = s.run_trace(&trace);
        assert_eq!(rep.replies.len(), trace.len(), "one reply per request");
        assert!(rep.replies.iter().enumerate().all(|(i, r)| r.id == i as u64));
        assert!(rep.batches > 0);

        let (mut s2, _) = server(3_000, 1, ServeConfig::default());
        let rep2 = s2.run_trace(&trace);
        assert_eq!(rep.results_jsonl(), rep2.results_jsonl());
        assert_eq!(rep.journal_jsonl(), rep2.journal_jsonl());
        assert_eq!(rep.results_digest(), rep2.results_digest());
    }

    #[test]
    fn both_seal_reasons_occur_across_load_levels() {
        // Trickle: budget expiries dominate. Flood: size seals appear.
        let (mut s, data) = server(2_000, 2, ServeConfig::default());
        let trickle = open_loop_trace(&data, 60, 300.0, &RequestMix::read_heavy(), 3);
        let rep = s.run_trace(&trickle);
        assert!(rep.journal_jsonl().contains("\"seal\":\"budget\""), "{}", rep.journal_jsonl());

        let cfg = ServeConfig {
            policy: BatchPolicy { min_batch: 4, max_batch: 64, ..BatchPolicy::default() },
            ..ServeConfig::default()
        };
        let (mut s, data) = server(2_000, 2, cfg);
        let flood = open_loop_trace(&data, 800, 2_000_000.0, &RequestMix::read_heavy(), 3);
        let rep = s.run_trace(&flood);
        assert!(rep.journal_jsonl().contains("\"seal\":\"size\""), "{}", rep.journal_jsonl());
    }

    #[test]
    fn admission_control_rejects_past_queue_cap() {
        let cfg = ServeConfig { queue_cap: 8, ..ServeConfig::default() };
        let (mut s, data) = server(2_000, 3, cfg);
        // 200 requests in one virtual µs: far beyond an 8-slot queue.
        let flood = open_loop_trace(&data, 200, 200_000_000.0, &RequestMix::read_only(), 5);
        let rep = s.run_trace(&flood);
        assert!(rep.rejected > 0, "queue cap must bite");
        assert_eq!(rep.replies.len(), flood.len(), "rejections still reply");
        assert_eq!(rep.replies.iter().filter(|r| r.rejected).count() as u64, rep.rejected);
        assert!(rep.completed() + rep.rejected as usize == flood.len());
    }

    #[test]
    fn snapshot_reads_pin_the_pre_write_epoch() {
        let (mut s, data) = server(4_000, 4, ServeConfig::default());
        let epoch0 = s.tree().epoch();
        // Heavy write burst with reads interleaved at high rate, so read
        // batches dispatch while insert batches are (virtually) in flight.
        let mix = RequestMix { insert: 60, ..RequestMix::read_heavy() };
        let trace = open_loop_trace(&data, 600, 3_000_000.0, &mix, 11);
        let rep = s.run_trace(&trace);
        assert!(rep.snapshot_batches > 0, "expected mid-flight reads\n{}", rep.journal_jsonl());
        // Every snapshot read observed a consistent committed epoch, and
        // epochs only ever advanced.
        let mut last_write_epoch = epoch0;
        for r in &rep.replies {
            if r.rejected {
                continue;
            }
            if r.op == "insert" || r.op == "delete" {
                assert!(r.epoch > epoch0);
                last_write_epoch = last_write_epoch.max(r.epoch);
            } else {
                assert!(r.epoch <= last_write_epoch.max(epoch0) + 1);
            }
        }
        // With snapshots disabled, the same trace serves strictly
        // sequentially: no snapshot batches, same reply count.
        let cfg = ServeConfig { snapshot_reads: false, ..ServeConfig::default() };
        let (mut s2, _) = server(4_000, 4, cfg);
        let rep2 = s2.run_trace(&trace);
        assert_eq!(rep2.snapshot_batches, 0);
        assert_eq!(rep2.replies.len(), rep.replies.len());
    }

    #[test]
    fn closed_loop_records_a_replayable_trace() {
        let (mut s, data) = server(3_000, 6, ServeConfig::default());
        let load = ClosedLoop {
            clients: 8,
            requests_per_client: 30,
            think_us: 50,
            mix: RequestMix::read_heavy(),
            seed: 13,
        };
        let (rep, trace) = s.run_closed_loop(&load, &data);
        assert_eq!(trace.len(), 8 * 30, "every issued request is recorded");
        assert!(trace.arrivals.windows(2).all(|w| w[0].t_us <= w[1].t_us), "trace is sorted");

        // Replaying the recorded trace on an identical server reproduces
        // the run byte for byte.
        let (mut s2, _) = server(3_000, 6, ServeConfig::default());
        let rep2 = s2.run_trace(&trace);
        assert_eq!(rep.results_jsonl(), rep2.results_jsonl());
        assert_eq!(rep.journal_jsonl(), rep2.journal_jsonl());
        // And the JSONL round-trip of the trace is exact, so it can be
        // committed and replayed elsewhere.
        let back = ArrivalTrace::<3>::from_jsonl(&trace.to_jsonl()).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn writes_apply_and_reads_see_them_after_completion() {
        let (mut s, _) = server(2_000, 8, ServeConfig::default());
        let n0 = s.tree().len();
        // A burst of inserts at distinct far-away points, then (after the
        // write drains) contains probes for them.
        let fresh: Vec<Point<3>> =
            (0..40u32).map(|i| Point::new([100_000 + i, 100_000, 100_000])).collect();
        let mut arrivals: Vec<Arrival<3>> =
            fresh.iter().map(|p| Arrival { t_us: 0, op: ReqOp::Insert(*p) }).collect();
        arrivals.extend(fresh.iter().map(|p| Arrival { t_us: 1_000_000, op: ReqOp::Contains(*p) }));
        let rep = s.run_trace(&ArrivalTrace { arrivals });
        assert_eq!(s.tree().len(), n0 + 40);
        let probes: Vec<&Reply> = rep.replies.iter().filter(|r| r.op == "contains").collect();
        assert_eq!(probes.len(), 40);
        assert!(probes.iter().all(|r| r.fingerprint == 1), "late reads see the applied write");
    }

    #[test]
    fn metrics_families_are_populated() {
        let (mut s, data) = server(2_000, 9, ServeConfig::default());
        let m = Metrics::enabled_new();
        s.set_metrics(m.clone());
        let trace = open_loop_trace(&data, 200, 50_000.0, &RequestMix::read_heavy(), 17);
        let rep = s.run_trace(&trace);
        let text = m.snapshot_text().unwrap();
        for family in ["serve_requests_total", "serve_batches_total", "serve_latency_us"] {
            assert!(text.contains(family), "missing {family} in:\n{text}");
        }
        assert!(rep.batches > 0);
    }
}
