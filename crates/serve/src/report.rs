//! Artifacts of a serving run: per-request replies, the batch journal, and
//! the aggregate report.
//!
//! Everything here is a pure function of the run, rendered in canonical
//! forms (JSONL with fixed key order, FNV-1a digests) so two runs can be
//! compared byte for byte — the serving layer's determinism contract
//! (`tests/serving_determinism.rs`) is stated directly over these artifacts.

use pim_sim::Samples;
use pim_zd_tree::OpStats;

/// FNV-1a offset basis; result fingerprints start here.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// Folds one value into an FNV-1a fingerprint.
pub fn fnv_fold(fp: u64, v: u64) -> u64 {
    (fp ^ v).wrapping_mul(0x0000_0100_0000_01b3)
}

/// The fate of one request.
///
/// Every admitted request gets exactly one reply when its batch's virtual
/// BSP round completes; a request rejected by admission control gets an
/// immediate reply with [`Reply::rejected`] set (its `dispatch_us` and
/// `complete_us` equal the arrival time and its fingerprint is 0).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Reply {
    /// Request id: the 0-based admission order (trace order for replays).
    pub id: u64,
    /// Stable class label (`insert`, `delete`, `contains`, `knn`,
    /// `box_count`, `box_fetch`).
    pub op: &'static str,
    /// Virtual arrival time in µs.
    pub arrival_us: u64,
    /// Virtual time the request's batch was dispatched.
    pub dispatch_us: u64,
    /// Virtual time the batch's round completed (reply time).
    pub complete_us: u64,
    /// Epoch the request observed: for reads, the epoch of the view it ran
    /// against (snapshot reads report the pinned pre-batch epoch); for
    /// writes, the epoch the batch produced.
    pub epoch: u64,
    /// FNV-1a fingerprint of the request's result (see module docs of
    /// `server` for the per-class folding); 0 for rejected requests.
    /// Delete replies carry the *batch's* removed-count, since the
    /// underlying `batch_delete` reports one aggregate count per batch.
    pub fingerprint: u64,
    /// Whether admission control rejected the request.
    pub rejected: bool,
}

impl Reply {
    /// Reply latency in virtual µs (0 for rejected requests).
    pub fn latency_us(&self) -> u64 {
        self.complete_us - self.arrival_us
    }

    fn write_jsonl(&self, out: &mut String) {
        out.push_str("{\"id\":");
        out.push_str(&self.id.to_string());
        out.push_str(",\"op\":\"");
        out.push_str(self.op);
        out.push_str("\",\"arrival_us\":");
        out.push_str(&self.arrival_us.to_string());
        if self.rejected {
            out.push_str(",\"rejected\":true}");
            return;
        }
        out.push_str(",\"dispatch_us\":");
        out.push_str(&self.dispatch_us.to_string());
        out.push_str(",\"complete_us\":");
        out.push_str(&self.complete_us.to_string());
        out.push_str(",\"epoch\":");
        out.push_str(&self.epoch.to_string());
        out.push_str(",\"fp\":");
        out.push_str(&self.fingerprint.to_string());
        out.push('}');
    }
}

/// Why a batch was sealed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SealReason {
    /// The oldest queued request of the class aged past the latency budget.
    Budget,
    /// The class queue reached the adaptive size target.
    Size,
}

impl SealReason {
    /// Journal label (`budget` / `size`).
    pub fn as_str(&self) -> &'static str {
        match self {
            SealReason::Budget => "budget",
            SealReason::Size => "size",
        }
    }
}

/// Simulated-cost totals accumulated across every executed batch (live and
/// snapshot reads both count — a snapshot round is still simulated work).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Totals {
    /// Host CPU seconds.
    pub cpu_s: f64,
    /// PIM module seconds.
    pub pim_s: f64,
    /// Channel transfer seconds.
    pub comm_s: f64,
    /// BSP rounds.
    pub rounds: u64,
    /// Bytes crossing the memory channel.
    pub channel_bytes: u64,
    /// Host DRAM bytes touched.
    pub cpu_dram_bytes: u64,
}

impl Totals {
    /// Accumulates one batch's [`OpStats`].
    pub fn add(&mut self, s: &OpStats) {
        self.cpu_s += s.breakdown.cpu_s;
        self.pim_s += s.breakdown.pim_s;
        self.comm_s += s.breakdown.comm_s;
        self.rounds += s.rounds;
        self.channel_bytes += s.channel_bytes;
        self.cpu_dram_bytes += s.cpu_dram_bytes;
    }
}

/// The complete artifact set of one serving run.
#[derive(Clone, Debug, Default)]
pub struct ServeReport {
    /// One reply per request, sorted by request id.
    pub replies: Vec<Reply>,
    /// Number of executed batches.
    pub batches: u64,
    /// Of those, how many read batches ran against an epoch snapshot.
    pub snapshot_batches: u64,
    /// Requests turned away by admission control.
    pub rejected: u64,
    /// Virtual time of the last event in the run.
    pub makespan_us: u64,
    /// One JSONL line per executed batch (seal/dispatch/complete times,
    /// epoch, snapshot flag, seal reason, service time).
    pub journal: Vec<String>,
    /// Aggregate simulated cost of every executed batch.
    pub totals: Totals,
}

impl ServeReport {
    /// The batch journal as one JSONL string.
    pub fn journal_jsonl(&self) -> String {
        let mut out = String::new();
        for line in &self.journal {
            out.push_str(line);
            out.push('\n');
        }
        out
    }

    /// All replies in canonical JSONL (one line per request, id order).
    pub fn results_jsonl(&self) -> String {
        let mut out = String::new();
        for r in &self.replies {
            r.write_jsonl(&mut out);
            out.push('\n');
        }
        out
    }

    /// FNV-1a digest over [`Self::results_jsonl`] — a one-number summary of
    /// every result, reply time, and epoch in the run.
    pub fn results_digest(&self) -> u64 {
        self.results_jsonl().bytes().fold_digest()
    }

    /// Number of requests that completed (admitted and replied).
    pub fn completed(&self) -> usize {
        self.replies.iter().filter(|r| !r.rejected).count()
    }

    /// Achieved goodput in requests per virtual second.
    pub fn achieved_rate(&self) -> f64 {
        if self.makespan_us == 0 {
            0.0
        } else {
            self.completed() as f64 / (self.makespan_us as f64 / 1e6)
        }
    }

    /// Reply latencies in virtual µs of completed requests, optionally
    /// restricted to one class label. Empty when nothing matched.
    pub fn latency_us(&self, class: Option<&str>) -> Samples {
        let mut s = Samples::new();
        for r in &self.replies {
            if !r.rejected && class.is_none_or(|c| c == r.op) {
                s.push(r.latency_us() as f64);
            }
        }
        s
    }
}

trait FoldDigest {
    fn fold_digest(self) -> u64;
}

impl<I: Iterator<Item = u8>> FoldDigest for I {
    fn fold_digest(self) -> u64 {
        self.fold(FNV_OFFSET, |fp, b| fnv_fold(fp, b as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reply(id: u64, arrival: u64, complete: u64, rejected: bool) -> Reply {
        Reply {
            id,
            op: "contains",
            arrival_us: arrival,
            dispatch_us: arrival + 1,
            complete_us: complete,
            epoch: 0,
            fingerprint: 7,
            rejected,
        }
    }

    #[test]
    fn jsonl_and_digest_are_stable() {
        let rep = ServeReport {
            replies: vec![reply(0, 5, 40, false), reply(1, 6, 6, true)],
            makespan_us: 40,
            ..ServeReport::default()
        };
        let text = rep.results_jsonl();
        assert_eq!(
            text,
            "{\"id\":0,\"op\":\"contains\",\"arrival_us\":5,\"dispatch_us\":6,\
             \"complete_us\":40,\"epoch\":0,\"fp\":7}\n\
             {\"id\":1,\"op\":\"contains\",\"arrival_us\":6,\"rejected\":true}\n"
        );
        assert_eq!(rep.results_digest(), rep.clone().results_digest());
        assert_eq!(rep.completed(), 1);
        let mut lat = rep.latency_us(None);
        assert_eq!(lat.len(), 1);
        assert_eq!(lat.quantile(0.5), 35.0);
    }
}
