//! Integer-grid points with a const-generic dimension.

/// A `D`-dimensional point on the integer grid.
///
/// Coordinates are unsigned so that Morton interleaving is a direct bit
/// operation; datasets with real-valued coordinates are quantized by the
/// workload generators before they reach the index.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Point<const D: usize> {
    /// Coordinate per dimension, each below `2^coord_bits_for_dim(D)`.
    pub coords: [u32; D],
}

impl<const D: usize> std::default::Default for Point<D> {
    #[inline]
    fn default() -> Self {
        Self::origin()
    }
}

impl<const D: usize> Point<D> {
    /// Creates a point from raw coordinates.
    #[inline]
    pub const fn new(coords: [u32; D]) -> Self {
        Self { coords }
    }

    /// The origin (all coordinates zero).
    #[inline]
    pub const fn origin() -> Self {
        Self { coords: [0; D] }
    }

    /// Squared Euclidean (ℓ2²) distance to `other`.
    ///
    /// Exact in `u64`: each per-axis difference is < 2^31, its square < 2^62,
    /// and at most 8 dimensions are supported, so the sum fits comfortably in
    /// `u128`-free arithmetic only for D ≤ 2; we therefore widen through
    /// `u64` per axis and saturate, which is unreachable for valid grids.
    #[inline]
    pub fn l2_sq(&self, other: &Self) -> u64 {
        let mut acc = 0u64;
        for i in 0..D {
            let d = self.coords[i].abs_diff(other.coords[i]) as u64;
            acc = acc.saturating_add(d * d);
        }
        acc
    }

    /// Manhattan (ℓ1) distance to `other`.
    #[inline]
    pub fn l1(&self, other: &Self) -> u64 {
        let mut acc = 0u64;
        for i in 0..D {
            acc += self.coords[i].abs_diff(other.coords[i]) as u64;
        }
        acc
    }

    /// Chebyshev (ℓ∞) distance to `other`.
    #[inline]
    pub fn linf(&self, other: &Self) -> u64 {
        let mut acc = 0u64;
        for i in 0..D {
            acc = acc.max(self.coords[i].abs_diff(other.coords[i]) as u64);
        }
        acc
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(&self, other: &Self) -> Self {
        let mut c = [0u32; D];
        for i in 0..D {
            c[i] = self.coords[i].min(other.coords[i]);
        }
        Self { coords: c }
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(&self, other: &Self) -> Self {
        let mut c = [0u32; D];
        for i in 0..D {
            c[i] = self.coords[i].max(other.coords[i]);
        }
        Self { coords: c }
    }

    /// Size of the point in bytes as laid out in PIM local memory / on the
    /// memory bus. Used for communication accounting.
    #[inline]
    pub const fn wire_bytes() -> u64 {
        (D * core::mem::size_of::<u32>()) as u64
    }
}

impl<const D: usize> From<[u32; D]> for Point<D> {
    #[inline]
    fn from(coords: [u32; D]) -> Self {
        Self { coords }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distances_match_hand_computation() {
        let a = Point::new([1u32, 2, 3]);
        let b = Point::new([4u32, 6, 3]);
        assert_eq!(a.l2_sq(&b), 9 + 16);
        assert_eq!(a.l1(&b), 3 + 4);
        assert_eq!(a.linf(&b), 4);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = Point::new([10u32, 0]);
        let b = Point::new([3u32, 99]);
        assert_eq!(a.l2_sq(&b), b.l2_sq(&a));
        assert_eq!(a.l1(&b), b.l1(&a));
        assert_eq!(a.linf(&b), b.linf(&a));
    }

    #[test]
    fn metric_inequalities_l1_anchors_l2() {
        // ‖x‖2 ≤ ‖x‖1 ≤ √D·‖x‖2 — the anchoring fact behind the paper's
        // coarse/fine kNN filter (§6), checked on a sample of points.
        let pts = [
            (Point::new([0u32, 0, 0]), Point::new([5u32, 5, 5])),
            (Point::new([1u32, 2, 3]), Point::new([9u32, 1, 4])),
            (Point::new([7u32, 7, 0]), Point::new([0u32, 0, 0])),
        ];
        for (a, b) in pts {
            let l1 = a.l1(&b);
            let l2_sq = a.l2_sq(&b);
            // l2 <= l1  <=>  l2² <= l1²
            assert!(l2_sq <= l1 * l1);
            // l1 <= sqrt(3) l2  <=>  l1² <= 3 l2²
            assert!(l1 * l1 <= 3 * l2_sq);
        }
    }

    #[test]
    fn min_max_are_componentwise() {
        let a = Point::new([1u32, 9]);
        let b = Point::new([5u32, 2]);
        assert_eq!(a.min(&b), Point::new([1, 2]));
        assert_eq!(a.max(&b), Point::new([5, 9]));
    }

    #[test]
    fn wire_bytes_counts_coords() {
        assert_eq!(Point::<3>::wire_bytes(), 12);
        assert_eq!(Point::<2>::wire_bytes(), 8);
    }
}
