//! Axis-aligned bounding boxes with inclusive integer bounds.

use crate::metric::Metric;
use crate::point::Point;

/// An axis-aligned box `[lo, hi]` (both bounds inclusive) on the integer grid.
///
/// Inclusive bounds are the natural choice for z-order subdivision: the box of
/// a tree node covering bit-prefix `p` is exactly the set of points whose key
/// starts with `p`, and that set has inclusive integer corners.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Aabb<const D: usize> {
    /// Smallest corner (inclusive).
    pub lo: Point<D>,
    /// Largest corner (inclusive).
    pub hi: Point<D>,
}

impl<const D: usize> Aabb<D> {
    /// Creates a box from its two inclusive corners; corners are normalized
    /// component-wise so the result is always well-formed.
    #[inline]
    pub fn new(a: Point<D>, b: Point<D>) -> Self {
        Self { lo: a.min(&b), hi: a.max(&b) }
    }

    /// A degenerate box containing exactly one point.
    #[inline]
    pub fn point(p: Point<D>) -> Self {
        Self { lo: p, hi: p }
    }

    /// The box covering the entire coordinate grid for this dimension.
    #[inline]
    pub fn universe() -> Self {
        let m = crate::max_coord_for_dim(D);
        Self { lo: Point::origin(), hi: Point::new([m; D]) }
    }

    /// Whether `p` lies inside the box (bounds inclusive).
    #[inline]
    pub fn contains(&self, p: &Point<D>) -> bool {
        for i in 0..D {
            if p.coords[i] < self.lo.coords[i] || p.coords[i] > self.hi.coords[i] {
                return false;
            }
        }
        true
    }

    /// Whether `other` is entirely inside `self`.
    #[inline]
    pub fn contains_box(&self, other: &Self) -> bool {
        self.contains(&other.lo) && self.contains(&other.hi)
    }

    /// Whether the two boxes share at least one grid point.
    #[inline]
    pub fn intersects(&self, other: &Self) -> bool {
        for i in 0..D {
            if self.hi.coords[i] < other.lo.coords[i] || other.hi.coords[i] < self.lo.coords[i] {
                return false;
            }
        }
        true
    }

    /// Smallest box containing both `self` and `other`.
    #[inline]
    pub fn union(&self, other: &Self) -> Self {
        Self { lo: self.lo.min(&other.lo), hi: self.hi.max(&other.hi) }
    }

    /// Grows the box to include `p`.
    #[inline]
    pub fn expand(&mut self, p: &Point<D>) {
        self.lo = self.lo.min(p);
        self.hi = self.hi.max(p);
    }

    /// Per-axis gap between `p` and the box: 0 when `p`'s coordinate is
    /// within the slab, otherwise the distance to the nearer face.
    #[inline]
    fn axis_gap(&self, p: &Point<D>, i: usize) -> u64 {
        let c = p.coords[i];
        if c < self.lo.coords[i] {
            (self.lo.coords[i] - c) as u64
        } else if c > self.hi.coords[i] {
            (c - self.hi.coords[i]) as u64
        } else {
            0
        }
    }

    /// Minimum squared ℓ2 distance from `p` to any point of the box
    /// (0 if `p` is inside).
    #[inline]
    pub fn min_l2_sq(&self, p: &Point<D>) -> u64 {
        let mut acc = 0u64;
        for i in 0..D {
            let g = self.axis_gap(p, i);
            acc = acc.saturating_add(g * g);
        }
        acc
    }

    /// Minimum ℓ1 distance from `p` to any point of the box.
    #[inline]
    pub fn min_l1(&self, p: &Point<D>) -> u64 {
        let mut acc = 0u64;
        for i in 0..D {
            acc += self.axis_gap(p, i);
        }
        acc
    }

    /// Minimum ℓ∞ distance from `p` to any point of the box.
    #[inline]
    pub fn min_linf(&self, p: &Point<D>) -> u64 {
        let mut acc = 0u64;
        for i in 0..D {
            acc = acc.max(self.axis_gap(p, i));
        }
        acc
    }

    /// Minimum distance from `p` to the box under `metric`, in that metric's
    /// comparable form (ℓ2 is squared — see [`Metric::cmp_dist`]).
    #[inline]
    pub fn min_dist(&self, p: &Point<D>, metric: Metric) -> u64 {
        match metric {
            Metric::L1 => self.min_l1(p),
            Metric::L2 => self.min_l2_sq(p),
            Metric::Linf => self.min_linf(p),
        }
    }

    /// Whether every point of the box is within comparable distance `r` of
    /// `p` under `metric` (used to find the lowest tree node containing a
    /// candidate sphere in kNN, Alg 3 step 3).
    #[inline]
    pub fn max_dist_within(&self, p: &Point<D>, metric: Metric, r: u64) -> bool {
        // The farthest point of a box from p is a corner; per-axis the
        // farther face. Compute the farthest corner's distance.
        let mut far = [0u32; D];
        for i in 0..D {
            let dl = p.coords[i].abs_diff(self.lo.coords[i]);
            let dh = p.coords[i].abs_diff(self.hi.coords[i]);
            far[i] = if dl > dh { self.lo.coords[i] } else { self.hi.coords[i] };
        }
        let fp = Point::new(far);
        metric.cmp_dist(p, &fp) <= r
    }

    /// Number of grid points in the box (saturating; only used in tests and
    /// diagnostics).
    pub fn volume(&self) -> u128 {
        let mut v: u128 = 1;
        for i in 0..D {
            v = v.saturating_mul((self.hi.coords[i] - self.lo.coords[i]) as u128 + 1);
        }
        v
    }

    /// Size in bytes as laid out on the wire (two corners).
    #[inline]
    pub const fn wire_bytes() -> u64 {
        2 * Point::<D>::wire_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bx(lo: [u32; 2], hi: [u32; 2]) -> Aabb<2> {
        Aabb::new(Point::new(lo), Point::new(hi))
    }

    #[test]
    fn contains_is_inclusive() {
        let b = bx([2, 2], [5, 7]);
        assert!(b.contains(&Point::new([2, 2])));
        assert!(b.contains(&Point::new([5, 7])));
        assert!(b.contains(&Point::new([3, 4])));
        assert!(!b.contains(&Point::new([1, 4])));
        assert!(!b.contains(&Point::new([3, 8])));
    }

    #[test]
    fn intersects_handles_touching_edges() {
        let a = bx([0, 0], [4, 4]);
        let b = bx([4, 4], [8, 8]);
        let c = bx([5, 0], [8, 3]);
        assert!(a.intersects(&b), "shared corner counts as intersection");
        assert!(!a.intersects(&c));
    }

    #[test]
    fn min_dists_zero_inside() {
        let b = bx([2, 2], [5, 7]);
        let p = Point::new([3, 3]);
        assert_eq!(b.min_l2_sq(&p), 0);
        assert_eq!(b.min_l1(&p), 0);
        assert_eq!(b.min_linf(&p), 0);
    }

    #[test]
    fn min_dists_outside() {
        let b = bx([2, 2], [5, 7]);
        let p = Point::new([0, 10]);
        assert_eq!(b.min_l2_sq(&p), 2 * 2 + 3 * 3);
        assert_eq!(b.min_l1(&p), 2 + 3);
        assert_eq!(b.min_linf(&p), 3);
    }

    #[test]
    fn max_dist_within_uses_farthest_corner() {
        let b = bx([0, 0], [2, 2]);
        let p = Point::new([0, 0]);
        // farthest corner is (2,2): l2² = 8
        assert!(b.max_dist_within(&p, Metric::L2, 8));
        assert!(!b.max_dist_within(&p, Metric::L2, 7));
        assert!(b.max_dist_within(&p, Metric::L1, 4));
        assert!(!b.max_dist_within(&p, Metric::L1, 3));
    }

    #[test]
    fn union_and_expand_agree() {
        let a = bx([1, 5], [2, 6]);
        let b = bx([0, 7], [9, 9]);
        let u = a.union(&b);
        let mut e = a;
        e.expand(&Point::new([0, 7]));
        e.expand(&Point::new([9, 9]));
        assert_eq!(u, e);
        assert!(u.contains_box(&a) && u.contains_box(&b));
    }

    #[test]
    fn universe_contains_everything() {
        let u = Aabb::<3>::universe();
        assert!(u.contains(&Point::new([0, 0, 0])));
        let m = crate::max_coord_for_dim(3);
        assert!(u.contains(&Point::new([m, m, m])));
    }

    #[test]
    fn volume_counts_grid_points() {
        assert_eq!(bx([0, 0], [1, 2]).volume(), 6);
        assert_eq!(Aabb::<2>::point(Point::new([7, 7])).volume(), 1);
    }
}
