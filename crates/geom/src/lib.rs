//! Multi-dimensional points, axis-aligned boxes, and distance metrics.
//!
//! This crate is the geometric foundation of the PIM-zd-tree reproduction.
//! Points live on an integer grid (datasets are quantized to at most
//! [`MAX_COORD_BITS`] bits per dimension so that Morton keys fit in a `u64`),
//! which keeps every distance computation exact and deterministic — an
//! important property both for the simulator's reproducibility and for the
//! paper's coarse/fine two-stage kNN filtering, whose correctness argument
//! relies on exact metric inequalities.
//!
//! The crate also provides the two dataset diagnostics used by the paper's
//! theory (§5): *bounded ratio* (Definition 1) and the *expansion constant*
//! (Definition 2).

#![deny(missing_docs)]
#![allow(clippy::needless_range_loop)] // idiomatic for [T; D] const-generic arrays

pub mod aabb;
pub mod diagnostics;
pub mod metric;
pub mod point;
pub mod quantize;

pub use aabb::Aabb;
pub use diagnostics::{bounded_ratio, estimate_expansion_constant};
pub use metric::Metric;
pub use point::Point;
pub use quantize::Quantizer;

/// Maximum number of bits per coordinate for any supported dimension.
///
/// With `D` dimensions, `D * bits` must be at most 63 so a Morton key fits in
/// a `u64` with the sign bit free: 2D uses 31 bits, 3D uses 21 bits, 4D 15,
/// and so on. [`coord_bits_for_dim`] computes the per-dimension budget.
pub const MAX_COORD_BITS: u32 = 31;

/// Number of coordinate bits used per dimension for dimension `D`.
///
/// This is `min(31, 63 / D)`, matching the paper's 64-bit key layout (its
/// example packs 3 × 21-bit coordinates into a 64-bit key).
#[inline]
pub const fn coord_bits_for_dim(d: usize) -> u32 {
    let b = (63 / d) as u32;
    if b > MAX_COORD_BITS {
        MAX_COORD_BITS
    } else {
        b
    }
}

/// Largest representable coordinate value for dimension `D` (inclusive).
#[inline]
pub const fn max_coord_for_dim(d: usize) -> u32 {
    ((1u64 << coord_bits_for_dim(d)) - 1) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coord_bits_match_paper_layout() {
        assert_eq!(coord_bits_for_dim(2), 31);
        assert_eq!(coord_bits_for_dim(3), 21);
        assert_eq!(coord_bits_for_dim(4), 15);
        assert_eq!(coord_bits_for_dim(5), 12);
    }

    #[test]
    fn keys_fit_in_u64() {
        for d in 1..=8 {
            assert!(d as u32 * coord_bits_for_dim(d) <= 63, "dim {d} overflows");
        }
    }

    #[test]
    fn max_coord_consistent() {
        assert_eq!(max_coord_for_dim(3), (1 << 21) - 1);
        assert_eq!(max_coord_for_dim(2), (1 << 31) - 1);
    }
}
