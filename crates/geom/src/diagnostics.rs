//! Dataset diagnostics used by the paper's theory (§5).
//!
//! - **Bounded ratio** (Definition 1): `d_max / d_min` over all point pairs
//!   should be `poly(n)`.
//! - **Bounded expansion constant** (Definition 2): doubling a ball's radius
//!   should grow its population by at most a constant factor γ.
//!
//! These are *diagnostics*: the index is correct on arbitrary data (§5 notes
//! this explicitly); the bounds only sharpen the cost analysis. The
//! reproduction uses them in tests to confirm the synthetic datasets exercise
//! the regimes the paper assumes.

use crate::metric::Metric;
use crate::point::Point;

/// Computes the bounded-ratio statistic `d_max / d_min` (ℓ2) by exact
/// pairwise scan. Quadratic — intended for test-sized samples only.
///
/// Returns `None` if fewer than two distinct points exist (the ratio is then
/// undefined).
pub fn bounded_ratio<const D: usize>(points: &[Point<D>]) -> Option<f64> {
    let mut dmin_sq = u64::MAX;
    let mut dmax_sq = 0u64;
    for i in 0..points.len() {
        for j in (i + 1)..points.len() {
            let d = points[i].l2_sq(&points[j]);
            if d == 0 {
                continue; // duplicate points don't define a minimum distance
            }
            dmin_sq = dmin_sq.min(d);
            dmax_sq = dmax_sq.max(d);
        }
    }
    if dmax_sq == 0 || dmin_sq == u64::MAX {
        return None;
    }
    Some(((dmax_sq as f64) / (dmin_sq as f64)).sqrt())
}

/// Estimates the expansion constant γ of a point set by sampling.
///
/// For each of `samples` center points (taken round-robin from the set) and a
/// geometric ladder of radii, measures `|ball(x, 2r)| / |ball(x, r)|` and
/// returns the maximum ratio observed over balls with at least `min_ball`
/// points (tiny balls make the ratio statistically meaningless).
/// Quadratic per sample — test-sized inputs only.
pub fn estimate_expansion_constant<const D: usize>(
    points: &[Point<D>],
    samples: usize,
    min_ball: usize,
) -> f64 {
    if points.len() < 2 {
        return 1.0;
    }
    let stride = (points.len() / samples.max(1)).max(1);
    let mut gamma: f64 = 1.0;
    for center in points.iter().step_by(stride).take(samples) {
        // Distances from this center, in comparable (squared) form.
        let mut dists: Vec<u64> = points.iter().map(|p| Metric::L2.cmp_dist(center, p)).collect();
        dists.sort_unstable();
        // Radius ladder: distance of the 2^j-th nearest neighbor.
        let mut j = min_ball.max(2);
        while j < dists.len() {
            let r_sq = dists[j - 1];
            if r_sq == 0 {
                j *= 2;
                continue;
            }
            // |ball(x, r)| and |ball(x, 2r)|: squared radii compare as 4r².
            let k1 = dists.partition_point(|&d| d <= r_sq);
            let k2 = dists.partition_point(|&d| d <= r_sq.saturating_mul(4));
            if k1 >= min_ball {
                gamma = gamma.max(k2 as f64 / k1 as f64);
            }
            j *= 2;
        }
    }
    gamma
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_ratio_on_grid() {
        // 3 collinear points spaced 1 and 9 apart: ratio = 10.
        let pts = vec![Point::new([0u32, 0]), Point::new([1u32, 0]), Point::new([10u32, 0])];
        let r = bounded_ratio(&pts).unwrap();
        assert!((r - 10.0).abs() < 1e-9);
    }

    #[test]
    fn bounded_ratio_ignores_duplicates() {
        let pts = vec![Point::new([5u32, 5]), Point::new([5u32, 5]), Point::new([8u32, 9])];
        assert!(bounded_ratio(&pts).is_some());
    }

    #[test]
    fn bounded_ratio_undefined_for_degenerate_sets() {
        let pts = vec![Point::new([5u32, 5]); 4];
        assert!(bounded_ratio(&pts).is_none());
        assert!(bounded_ratio::<2>(&[]).is_none());
    }

    #[test]
    fn expansion_constant_small_on_uniform_grid() {
        // A uniform 2D grid has expansion constant ≈ 4 (area scaling).
        let mut pts = Vec::new();
        for x in 0..32u32 {
            for y in 0..32u32 {
                pts.push(Point::new([x * 100, y * 100]));
            }
        }
        let g = estimate_expansion_constant(&pts, 8, 4);
        assert!(g >= 2.0, "grid must expand, got {g}");
        assert!(g <= 16.0, "uniform grid should have small gamma, got {g}");
    }

    #[test]
    fn expansion_constant_trivial_cases() {
        assert_eq!(estimate_expansion_constant::<2>(&[], 4, 4), 1.0);
        assert_eq!(estimate_expansion_constant(&[Point::new([1u32, 1])], 4, 4), 1.0);
    }
}
