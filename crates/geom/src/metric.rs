//! Distance metrics and their "comparable form".
//!
//! All metrics return a `u64` that orders pairs the same way the true metric
//! does: ℓ1 and ℓ∞ return the exact distance, while ℓ2 returns the *squared*
//! distance (avoiding square roots keeps everything exact on the integer
//! grid). The paper's two-stage kNN filter (§6) relies on the inequality
//! `‖x‖₂ ≤ ‖x‖₁ ≤ √D·‖x‖₂`, exposed here as [`Metric::anchor_inflate`].

use crate::point::Point;

/// A distance metric on the integer grid.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Metric {
    /// Manhattan distance — cheap on PIM cores (additions only).
    L1,
    /// Euclidean distance (compared in squared form) — requires
    /// multiplications, which cost 32 cycles on UPMEM PIM cores.
    L2,
    /// Chebyshev distance.
    Linf,
}

impl Metric {
    /// Distance between two points in this metric's comparable form
    /// (ℓ2 squared; ℓ1/ℓ∞ exact).
    #[inline]
    pub fn cmp_dist<const D: usize>(self, a: &Point<D>, b: &Point<D>) -> u64 {
        match self {
            Metric::L1 => a.l1(b),
            Metric::L2 => a.l2_sq(b),
            Metric::Linf => a.linf(b),
        }
    }

    /// Whether evaluating this metric needs multiplications (slow on BLIMP
    /// PIM cores; drives the §6 coarse/fine execution split).
    #[inline]
    pub const fn needs_multiplication(self) -> bool {
        matches!(self, Metric::L2)
    }

    /// Given the ℓ1 distance `l1` of the k-th nearest neighbor under ℓ1,
    /// returns an ℓ1 radius guaranteed to contain the k-th nearest neighbor
    /// under ℓ2 in `D` dimensions.
    ///
    /// From `‖x‖₂ ≤ ‖x‖₁ ≤ √D ‖x‖₂`: if the ℓ1-kNN is at ℓ1 distance `x`,
    /// the ℓ2-kNN has ℓ2 distance ≤ x, hence ℓ1 distance ≤ √D·x. We round
    /// √D up via an integer ceiling on the squared comparison to stay exact.
    #[inline]
    pub fn anchor_inflate(l1: u64, d: usize) -> u64 {
        // ceil(sqrt(d) * l1) computed exactly: smallest r with r² ≥ d·l1².
        let target = (d as u128) * (l1 as u128) * (l1 as u128);
        let mut r = ((d as f64).sqrt() * l1 as f64) as u64;
        while (r as u128) * (r as u128) < target {
            r += 1;
        }
        r
    }

    /// Approximate PIM-core cycle cost of one distance evaluation in `D`
    /// dimensions, following UPMEM's published instruction costs
    /// (add/sub/cmp = 1 cycle, mul = 32 cycles).
    #[inline]
    pub fn pim_cycles(self, d: usize) -> u64 {
        let d = d as u64;
        match self {
            Metric::L1 => 3 * d,        // diff, abs, add per axis
            Metric::L2 => d * (32 + 3), // diff, abs, mul(32), add per axis
            Metric::Linf => 3 * d,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmp_dist_dispatches() {
        let a = Point::new([0u32, 0]);
        let b = Point::new([3u32, 4]);
        assert_eq!(Metric::L1.cmp_dist(&a, &b), 7);
        assert_eq!(Metric::L2.cmp_dist(&a, &b), 25);
        assert_eq!(Metric::Linf.cmp_dist(&a, &b), 4);
    }

    #[test]
    fn anchor_inflate_exact_squares() {
        // d = 4 → factor exactly 2.
        assert_eq!(Metric::anchor_inflate(10, 4), 20);
        // d = 1 → identity.
        assert_eq!(Metric::anchor_inflate(123, 1), 123);
    }

    #[test]
    fn anchor_inflate_is_sound_for_d3() {
        // r = anchor_inflate(x, 3) must satisfy r ≥ √3·x, i.e. r² ≥ 3x².
        for x in [0u64, 1, 2, 7, 1000, 1 << 20] {
            let r = Metric::anchor_inflate(x, 3);
            assert!((r as u128) * (r as u128) >= 3 * (x as u128) * (x as u128));
            // And not absurdly large (within +2 of the true ceiling).
            if x > 0 {
                let lower = ((3.0f64).sqrt() * x as f64).floor() as u64;
                assert!(r <= lower + 2);
            }
        }
    }

    #[test]
    fn only_l2_needs_multiplication() {
        assert!(Metric::L2.needs_multiplication());
        assert!(!Metric::L1.needs_multiplication());
        assert!(!Metric::Linf.needs_multiplication());
    }

    #[test]
    fn pim_cycles_orders_metrics() {
        assert!(Metric::L2.pim_cycles(3) > 10 * Metric::L1.pim_cycles(3) / 2);
    }
}
