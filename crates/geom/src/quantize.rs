//! Quantization of real-valued coordinates onto the integer grid.
//!
//! The index operates on integer Morton keys (21 bits/dim in 3D); real
//! datasets (astronomy catalogs, GPS traces) arrive as floats. A
//! [`Quantizer`] fits the data's bounding box once and maps points both
//! ways; the forward map is monotone per axis, so spatial relations
//! (containment, relative order) survive, and the inverse map lands within
//! half a grid cell of the original.

use crate::max_coord_for_dim;
use crate::point::Point;

/// Affine map between a real-valued bounding box and the integer grid.
///
/// ```
/// use pim_geom::Quantizer;
///
/// let data = vec![[0.0, -1.0], [10.0, 1.0], [5.0, 0.0]];
/// let (q, grid) = Quantizer::quantize_all(&data).unwrap();
/// let back = q.dequantize(&grid[2]);
/// assert!((back[0] - 5.0).abs() < 1e-6);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Quantizer<const D: usize> {
    lo: [f64; D],
    scale: [f64; D],
    inv_scale: [f64; D],
}

impl<const D: usize> Quantizer<D> {
    /// Fits a quantizer to the bounding box of `data`. Returns `None` for
    /// an empty input. Degenerate axes (all values equal) map to grid 0.
    pub fn fit(data: &[[f64; D]]) -> Option<Self> {
        let first = data.first()?;
        let mut lo = *first;
        let mut hi = *first;
        for p in data {
            for i in 0..D {
                lo[i] = lo[i].min(p[i]);
                hi[i] = hi[i].max(p[i]);
            }
        }
        Some(Self::from_bounds(lo, hi))
    }

    /// Builds a quantizer for the explicit real-valued box `[lo, hi]`.
    pub fn from_bounds(lo: [f64; D], hi: [f64; D]) -> Self {
        let m = max_coord_for_dim(D) as f64;
        let mut scale = [0.0; D];
        let mut inv_scale = [0.0; D];
        for i in 0..D {
            let w = hi[i] - lo[i];
            if w > 0.0 && w.is_finite() {
                scale[i] = m / w;
                inv_scale[i] = w / m;
            }
        }
        Self { lo, scale, inv_scale }
    }

    /// Maps a real point onto the grid (clamped to the fitted box).
    #[inline]
    pub fn quantize(&self, p: &[f64; D]) -> Point<D> {
        let m = max_coord_for_dim(D) as f64;
        let mut c = [0u32; D];
        for i in 0..D {
            let v = ((p[i] - self.lo[i]) * self.scale[i]).clamp(0.0, m);
            c[i] = v.round() as u32;
        }
        Point::new(c)
    }

    /// Maps a grid point back to real coordinates (cell centers).
    #[inline]
    pub fn dequantize(&self, p: &Point<D>) -> [f64; D] {
        let mut out = [0.0; D];
        for i in 0..D {
            out[i] = self.lo[i] + p.coords[i] as f64 * self.inv_scale[i];
        }
        out
    }

    /// Worst-case absolute error the round trip introduces per axis
    /// (half a grid cell).
    pub fn max_error(&self) -> [f64; D] {
        let mut out = [0.0; D];
        for i in 0..D {
            out[i] = self.inv_scale[i] * 0.5;
        }
        out
    }

    /// Convenience: fit and quantize a whole dataset.
    pub fn quantize_all(data: &[[f64; D]]) -> Option<(Self, Vec<Point<D>>)> {
        let q = Self::fit(data)?;
        let pts = data.iter().map(|p| q.quantize(p)).collect();
        Some((q, pts))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_stays_within_half_cell() {
        let data: Vec<[f64; 3]> = (0..500)
            .map(|i| {
                let t = i as f64;
                [t.sin() * 180.0, t.cos() * 90.0, t * 0.37 - 42.0]
            })
            .collect();
        let (q, pts) = Quantizer::quantize_all(&data).unwrap();
        let err = q.max_error();
        for (orig, p) in data.iter().zip(&pts) {
            let back = q.dequantize(p);
            for i in 0..3 {
                assert!(
                    (orig[i] - back[i]).abs() <= err[i] * 1.001,
                    "axis {i}: {} vs {} (tol {})",
                    orig[i],
                    back[i],
                    err[i]
                );
            }
        }
    }

    #[test]
    fn quantization_is_monotone_per_axis() {
        let q = Quantizer::<2>::from_bounds([0.0, 0.0], [100.0, 100.0]);
        let a = q.quantize(&[10.0, 50.0]);
        let b = q.quantize(&[20.0, 50.0]);
        assert!(a.coords[0] < b.coords[0]);
        assert_eq!(a.coords[1], b.coords[1]);
    }

    #[test]
    fn grid_corners_map_to_extremes() {
        let q = Quantizer::<3>::from_bounds([-1.0; 3], [1.0; 3]);
        assert_eq!(q.quantize(&[-1.0; 3]), Point::origin());
        let m = max_coord_for_dim(3);
        assert_eq!(q.quantize(&[1.0; 3]), Point::new([m; 3]));
    }

    #[test]
    fn out_of_box_points_are_clamped() {
        let q = Quantizer::<2>::from_bounds([0.0, 0.0], [1.0, 1.0]);
        let p = q.quantize(&[-5.0, 99.0]);
        assert_eq!(p.coords[0], 0);
        assert_eq!(p.coords[1], max_coord_for_dim(2));
    }

    #[test]
    fn degenerate_axis_maps_to_zero() {
        let data = vec![[3.0, 7.0], [5.0, 7.0], [4.0, 7.0]];
        let (q, pts) = Quantizer::quantize_all(&data).unwrap();
        for p in &pts {
            assert_eq!(p.coords[1], 0, "flat axis collapses to 0");
        }
        // And dequantizes back to the flat value.
        assert_eq!(q.dequantize(&pts[0])[1], 7.0);
    }

    #[test]
    fn empty_input_yields_none() {
        assert!(Quantizer::<3>::fit(&[]).is_none());
    }

    #[test]
    fn resolution_uses_full_bit_budget() {
        // 21 bits in 3D: relative error ≈ 2^-22 of the box width.
        let q = Quantizer::<3>::from_bounds([0.0; 3], [1.0; 3]);
        let err = q.max_error();
        let expect = 1.0 / (max_coord_for_dim(3) as f64) / 2.0;
        for e in err {
            assert!((e - expect).abs() < 1e-12);
        }
        assert_eq!(crate::coord_bits_for_dim(3), 21);
    }
}
