//! The BSP round executor.
//!
//! A [`PimSystem`] owns `P` module states and executes bulk-synchronous
//! rounds: the host scatters per-module task buffers, every module's handler
//! runs (in parallel, via rayon), and the host gathers per-module reply
//! buffers. All four cost channels are accounted per round:
//!
//! 1. **CPU→PIM bytes** — the wire size of the scattered tasks;
//! 2. **PIM→CPU bytes** — the wire size of the gathered replies;
//! 3. **PIM time** — the *maximum* per-module core time (the PIM Model's
//!    round metric; stragglers determine round completion, §1 Q1);
//! 4. **Overheads** — one mux switch per round plus one transfer-call
//!    overhead per module that sent or received data (the Direct-API knob).
//!
//! Handlers receive `(module_index, &mut M, &mut PimCtx, Vec<T>)` and must
//! charge their work to the ctx; the simulator trusts but verifies nothing —
//! the cost model is part of the algorithm under test, exactly as a DPU
//! kernel's cycle count is part of a real implementation.

use crate::config::MachineConfig;
use crate::ctx::PimCtx;
use crate::stats::{LoadStats, RoundBreakdown, SimStats};
use crate::trace::{summarize_cycles, NullSink, RoundKind, RoundRecord, TraceSink};
use crate::wire::Wire;
use rayon::prelude::*;

/// A simulated PIM machine with module state `M`.
///
/// ```
/// use pim_sim::{MachineConfig, PimSystem};
///
/// let mut sys = PimSystem::new(MachineConfig::with_modules(4), |_| 0u64);
/// let tasks: Vec<Vec<u32>> = (0..4).map(|i| vec![i as u32]).collect();
/// let replies = sys.execute_round(tasks, |_, state, ctx, t| {
///     ctx.op(t.len() as u64);
///     *state += t.len() as u64;
///     t
/// });
/// assert_eq!(replies[3], vec![3]);
/// assert!(sys.stats().channel_bytes() > 0);
/// ```
pub struct PimSystem<M> {
    cfg: MachineConfig,
    modules: Vec<M>,
    stats: SimStats,
    /// When false, rounds execute but are not charged (warmup phases).
    pub accounting: bool,
    /// Trace receiver; [`NullSink`] (disabled) by default.
    sink: Box<dyn TraceSink>,
    /// Monotonic id of the next accounted round (never reset).
    trace_round: u64,
    /// Active phase labels, innermost last; records carry their `/`-join.
    phase_stack: Vec<String>,
}

impl<M: Send> PimSystem<M> {
    /// Builds a machine whose module `i` starts as `init(i)`.
    pub fn new(cfg: MachineConfig, init: impl FnMut(usize) -> M) -> Self {
        let modules: Vec<M> = (0..cfg.n_modules).map(init).collect();
        Self {
            cfg,
            modules,
            stats: SimStats::default(),
            accounting: true,
            sink: Box::new(NullSink),
            trace_round: 0,
            phase_stack: Vec::new(),
        }
    }

    /// Attaches a trace sink; every subsequent accounted round emits a
    /// [`RoundRecord`] to it. Pass `Box::new(NullSink)` to detach.
    pub fn set_trace_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.sink = sink;
    }

    /// Opens a phase label for the dynamic extent of `f`: rounds executed
    /// inside carry the label (nested scopes join with `/`, e.g.
    /// `insert/maintain`). Labels are tracked even with tracing disabled —
    /// the bookkeeping is two `Vec` operations per scope.
    pub fn scoped_phase<R>(
        &mut self,
        label: impl Into<String>,
        f: impl FnOnce(&mut Self) -> R,
    ) -> R {
        self.push_phase(label);
        let out = f(self);
        self.pop_phase();
        out
    }

    /// Opens a phase label (prefer [`Self::scoped_phase`]; this exists for
    /// callers that cannot express the scope as a closure over the system,
    /// e.g. methods of a struct that owns it).
    pub fn push_phase(&mut self, label: impl Into<String>) {
        self.phase_stack.push(label.into());
    }

    /// Closes the innermost phase label.
    pub fn pop_phase(&mut self) {
        self.phase_stack.pop();
    }

    /// The current `/`-joined phase label (`""` outside any scope).
    pub fn current_phase(&self) -> String {
        self.phase_stack.join("/")
    }

    /// Number of modules `P`.
    pub fn n_modules(&self) -> usize {
        self.modules.len()
    }

    /// Machine parameters.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Mutable machine parameters (benches flip the transfer API knob).
    pub fn config_mut(&mut self) -> &mut MachineConfig {
        &mut self.cfg
    }

    /// Read-only access to a module's state **for tests and invariant checks
    /// only** — it bypasses communication accounting.
    pub fn peek(&self, module: usize) -> &M {
        &self.modules[module]
    }

    /// Lifetime statistics.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Resets statistics (e.g. after warmup).
    pub fn reset_stats(&mut self) {
        self.stats = SimStats::default();
    }

    /// Executes one BSP round. `tasks[i]` is scattered to module `i`;
    /// modules with an empty task list do not run (no transfer call, no
    /// cycles). Returns `replies[i]` from each module.
    pub fn execute_round<T, R, F>(&mut self, tasks: Vec<Vec<T>>, handler: F) -> Vec<Vec<R>>
    where
        T: Wire + Send,
        R: Wire + Send,
        F: Fn(usize, &mut M, &mut PimCtx, Vec<T>) -> Vec<R> + Sync,
    {
        self.run_round(tasks, handler, false)
    }

    /// Like [`Self::execute_round`], but invokes the handler on **every**
    /// module, even those with no input (used for broadcast application,
    /// e.g. replicating L0 updates). Modules without input still pay no
    /// CPU→PIM transfer, but their work and replies are charged.
    pub fn execute_round_all<T, R, F>(&mut self, tasks: Vec<Vec<T>>, handler: F) -> Vec<Vec<R>>
    where
        T: Wire + Send,
        R: Wire + Send,
        F: Fn(usize, &mut M, &mut PimCtx, Vec<T>) -> Vec<R> + Sync,
    {
        self.run_round(tasks, handler, true)
    }

    fn run_round<T, R, F>(
        &mut self,
        mut tasks: Vec<Vec<T>>,
        handler: F,
        run_all: bool,
    ) -> Vec<Vec<R>>
    where
        T: Wire + Send,
        R: Wire + Send,
        F: Fn(usize, &mut M, &mut PimCtx, Vec<T>) -> Vec<R> + Sync,
    {
        let p = self.modules.len();
        assert!(tasks.len() <= p, "scattered {} task buffers onto {} modules", tasks.len(), p);
        tasks.resize_with(p, Vec::new);

        // Task counts are only observable before the buffers move into the
        // parallel scatter; gather them now iff a sink will consume them.
        let tracing = self.accounting && self.sink.enabled();
        let (n_tasks, n_active) = if tracing {
            let active = if run_all { p } else { tasks.iter().filter(|t| !t.is_empty()).count() };
            (tasks.iter().map(|t| t.len() as u64).sum::<u64>(), active as u32)
        } else {
            (0, 0)
        };

        let per_module_sent: Vec<u64> = tasks.iter().map(|t| t.wire_bytes()).collect();

        // Run all module handlers in parallel. Determinism audit: `collect`
        // places each `(reply, ctx)` at its module index regardless of which
        // worker finished first, and everything order-sensitive below — the
        // f64 max/sum folds, `per_module_recv`, the traced cycle vector —
        // iterates that index-ordered Vec sequentially. A journal written at
        // 16 threads is byte-identical to one written at 1.
        let results: Vec<(Vec<R>, PimCtx)> = self
            .modules
            .par_iter_mut()
            .zip(tasks.into_par_iter())
            .enumerate()
            .map(|(i, (m, t))| {
                let mut ctx = PimCtx::new();
                let replies =
                    if run_all || !t.is_empty() { handler(i, m, &mut ctx, t) } else { Vec::new() };
                (replies, ctx)
            })
            .collect();

        let per_module_recv: Vec<u64> = results.iter().map(|(r, _)| r.wire_bytes()).collect();

        if self.accounting {
            let sent: u64 = per_module_sent.iter().sum();
            let recv: u64 = per_module_recv.iter().sum();
            let max_module_bytes =
                per_module_sent.iter().zip(&per_module_recv).map(|(a, b)| a + b).max().unwrap_or(0);

            let mut max_time = 0.0f64;
            let mut max_cycles = 0u64;
            let mut sum_cycles = 0u64;
            for (_, ctx) in &results {
                max_time = max_time.max(ctx.time_s(self.cfg.pim_freq_hz, self.cfg.pim_local_bw));
                max_cycles = max_cycles.max(ctx.cycles);
                sum_cycles += ctx.cycles;
            }
            self.stats.total_pim_cycles += sum_cycles;

            let calls = per_module_sent.iter().filter(|&&b| b > 0).count()
                + per_module_recv.iter().filter(|&&b| b > 0).count();
            let overhead = self.cfg.mux_switch_s
                + calls as f64 * self.cfg.call_overhead_s() / self.cfg.host_threads as f64;

            let breakdown = RoundBreakdown {
                pim_s: max_time,
                comm_s: self.cfg.transfer_time_s(sent + recv, max_module_bytes),
                overhead_s: overhead,
            };
            let load = LoadStats { max_cycles, mean_cycles: sum_cycles as f64 / p as f64 };
            self.stats.n_modules = p;
            self.stats.record(breakdown, load, sent, recv);

            let round = self.trace_round;
            self.trace_round += 1;
            if tracing {
                let cycles: Vec<u64> = results.iter().map(|(_, c)| c.cycles).collect();
                let (cycle_hist, stragglers) = summarize_cycles(&cycles);
                self.sink.record(RoundRecord {
                    round,
                    phase: self.current_phase(),
                    kind: if run_all { RoundKind::ExecuteAll } else { RoundKind::Execute },
                    breakdown,
                    cpu_to_pim_bytes: sent,
                    pim_to_cpu_bytes: recv,
                    tasks: n_tasks,
                    replies: results.iter().map(|(r, _)| r.len() as u64).sum(),
                    active_modules: n_active,
                    max_cycles,
                    mean_cycles: sum_cycles as f64 / p as f64,
                    sum_cycles,
                    cycle_hist,
                    stragglers,
                });
            }
        }

        results.into_iter().map(|(r, _)| r).collect()
    }

    /// Broadcasts one value to all modules and applies it: charges `P ×`
    /// the value's wire size of CPU→PIM traffic (how L0 replication and
    /// promoted-node broadcasts are paid for, Alg 2 step 3d).
    pub fn broadcast<T, F>(&mut self, item: T, handler: F)
    where
        T: Wire + Sync,
        F: Fn(usize, &mut M, &mut PimCtx, &T) + Sync,
    {
        let bytes = item.wire_bytes();
        let p = self.modules.len();
        // Same determinism contract as `run_round`: ctxs land in module
        // order, and the accounting folds below run sequentially over them.
        let ctxs: Vec<PimCtx> = self
            .modules
            .par_iter_mut()
            .enumerate()
            .map(|(i, m)| {
                let mut ctx = PimCtx::new();
                handler(i, m, &mut ctx, &item);
                ctx
            })
            .collect();

        if self.accounting {
            let mut max_time = 0.0f64;
            let mut max_cycles = 0u64;
            let mut sum_cycles = 0u64;
            for ctx in &ctxs {
                max_time = max_time.max(ctx.time_s(self.cfg.pim_freq_hz, self.cfg.pim_local_bw));
                max_cycles = max_cycles.max(ctx.cycles);
                sum_cycles += ctx.cycles;
            }
            self.stats.total_pim_cycles += sum_cycles;
            let sent = bytes * p as u64;
            let overhead = self.cfg.mux_switch_s
                + p as f64 * self.cfg.call_overhead_s() / self.cfg.host_threads as f64;
            let breakdown = RoundBreakdown {
                pim_s: max_time,
                comm_s: self.cfg.transfer_time_s(sent, bytes),
                overhead_s: overhead,
            };
            let load = LoadStats { max_cycles, mean_cycles: sum_cycles as f64 / p as f64 };
            self.stats.n_modules = p;
            self.stats.record(breakdown, load, sent, 0);

            let round = self.trace_round;
            self.trace_round += 1;
            if self.sink.enabled() {
                let cycles: Vec<u64> = ctxs.iter().map(|c| c.cycles).collect();
                let (cycle_hist, stragglers) = summarize_cycles(&cycles);
                self.sink.record(RoundRecord {
                    round,
                    phase: self.current_phase(),
                    kind: RoundKind::Broadcast,
                    breakdown,
                    cpu_to_pim_bytes: sent,
                    pim_to_cpu_bytes: 0,
                    tasks: 1,
                    replies: 0,
                    active_modules: p as u32,
                    max_cycles,
                    mean_cycles: sum_cycles as f64 / p as f64,
                    sum_cycles,
                    cycle_hist,
                    stragglers,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine(p: usize) -> PimSystem<u64> {
        PimSystem::new(MachineConfig::with_modules(p), |_| 0u64)
    }

    #[test]
    fn round_scatters_and_gathers_in_order() {
        let mut sys = machine(4);
        let tasks: Vec<Vec<u32>> = vec![vec![1], vec![2, 2], vec![], vec![4]];
        let replies = sys.execute_round(tasks, |i, state, ctx, t| {
            *state += t.len() as u64;
            ctx.op(t.len() as u64);
            t.into_iter().map(|x| x as u64 * 10 + i as u64).collect::<Vec<u64>>()
        });
        assert_eq!(replies[0], vec![10]);
        assert_eq!(replies[1], vec![21, 21]);
        assert!(replies[2].is_empty());
        assert_eq!(replies[3], vec![43]);
        assert_eq!(*sys.peek(1), 2);
        assert_eq!(*sys.peek(2), 0, "idle module must not run");
    }

    #[test]
    fn byte_accounting_counts_both_directions() {
        let mut sys = machine(2);
        let tasks: Vec<Vec<u32>> = vec![vec![1, 2, 3], vec![]];
        let _ = sys.execute_round(tasks, |_, _, _, t| {
            t.into_iter().map(|x| x as u64).collect::<Vec<u64>>()
        });
        let s = sys.stats();
        assert_eq!(s.cpu_to_pim_bytes, 12);
        assert_eq!(s.pim_to_cpu_bytes, 24);
        assert_eq!(s.rounds, 1);
    }

    #[test]
    fn pim_time_is_max_over_modules() {
        let mut sys = machine(4);
        let tasks: Vec<Vec<u32>> = vec![vec![0], vec![0], vec![0], vec![0]];
        let _ = sys.execute_round(tasks, |i, _, ctx, _| {
            ctx.op(if i == 2 { 3500 } else { 35 });
            Vec::<u32>::new()
        });
        // 3500 cycles at 350 MHz = 10 µs.
        assert!((sys.stats().pim_s - 1e-5).abs() < 1e-9);
        assert!(sys.stats().worst_imbalance > 3.0);
    }

    #[test]
    fn warmup_rounds_are_free() {
        let mut sys = machine(2);
        sys.accounting = false;
        let _ = sys.execute_round(vec![vec![1u32], vec![2u32]], |_, s, ctx, t| {
            *s += 1;
            ctx.op(1000);
            t
        });
        assert_eq!(sys.stats().rounds, 0);
        assert_eq!(sys.stats().channel_bytes(), 0);
        assert_eq!(*sys.peek(0), 1, "state still mutated during warmup");
    }

    #[test]
    fn broadcast_charges_p_copies() {
        let mut sys = machine(8);
        sys.broadcast(7u64, |_, s, ctx, v| {
            *s = *v;
            ctx.op(1);
        });
        assert_eq!(sys.stats().cpu_to_pim_bytes, 8 * 8);
        for i in 0..8 {
            assert_eq!(*sys.peek(i), 7);
        }
    }

    #[test]
    fn sdk_api_has_higher_overhead() {
        let run = |api| {
            let mut cfg = MachineConfig::with_modules(64);
            cfg.api = api;
            let mut sys = PimSystem::new(cfg, |_| 0u64);
            let tasks: Vec<Vec<u32>> = (0..64).map(|_| vec![1u32]).collect();
            let _ = sys.execute_round(tasks, |_, _, _, _| vec![1u32]);
            sys.stats().overhead_s
        };
        let sdk = run(crate::config::TransferApi::Sdk);
        let direct = run(crate::config::TransferApi::Direct);
        assert!(sdk > direct);
    }

    #[test]
    #[should_panic(expected = "scattered")]
    fn too_many_task_buffers_panics() {
        let mut sys = machine(1);
        let _ = sys.execute_round(vec![vec![1u32], vec![2u32]], |_, _, _, t| t);
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;

    #[test]
    fn execute_round_all_runs_idle_modules() {
        let mut sys = PimSystem::new(MachineConfig::with_modules(3), |_| 0u64);
        let replies = sys.execute_round_all(vec![vec![5u32]], |i, s, ctx, t| {
            *s += 1 + t.len() as u64;
            ctx.op(1);
            vec![i as u32]
        });
        // All three ran; only module 0 had input.
        assert_eq!(replies.len(), 3);
        assert_eq!(*sys.peek(0), 2);
        assert_eq!(*sys.peek(1), 1);
        assert_eq!(*sys.peek(2), 1);
    }

    #[test]
    fn aggregate_imbalance_dilutes_tiny_rounds() {
        let mut sys = PimSystem::new(MachineConfig::with_modules(4), |_| 0u64);
        // Round 1: heavily imbalanced but tiny (1 module, 40 cycles).
        let _ = sys.execute_round(vec![vec![1u32]], |_, _, ctx, _| {
            ctx.op(40);
            Vec::<u32>::new()
        });
        // Round 2: big and balanced.
        let tasks: Vec<Vec<u32>> = (0..4).map(|_| vec![0u32; 10]).collect();
        let _ = sys.execute_round(tasks, |_, _, ctx, _| {
            ctx.op(100_000);
            Vec::<u32>::new()
        });
        let s = sys.stats();
        assert!(s.worst_imbalance >= 4.0, "per-round metric sees the tiny round");
        assert!(s.agg_imbalance() < 1.2, "aggregate metric must not: {:.3}", s.agg_imbalance());
    }

    #[test]
    fn summed_trace_records_reproduce_sim_stats_exactly() {
        use crate::trace::JournalSink;
        let (sink, journal) = JournalSink::new();
        let mut sys = PimSystem::new(MachineConfig::with_modules(4), |_| 0u64);
        sys.set_trace_sink(Box::new(sink));

        // A mix of round shapes: skewed execute, execute_all, broadcast.
        sys.scoped_phase("search", |s| {
            let _ = s.execute_round(vec![vec![1u32, 2], vec![3u32]], |i, _, ctx, t| {
                ctx.op((i as u64 + 1) * 500);
                ctx.mem(64);
                t
            });
        });
        sys.scoped_phase("insert", |s| {
            s.scoped_phase("maintain", |s| {
                let _ = s.execute_round_all(vec![vec![9u32]], |_, _, ctx, _| {
                    ctx.op(100);
                    vec![7u64]
                });
            });
            s.broadcast(42u64, |_, _, ctx, _| ctx.op(10));
        });

        let recs = journal.snapshot();
        assert_eq!(recs.len(), 3);
        assert_eq!(recs[0].phase, "search");
        assert_eq!(recs[1].phase, "insert/maintain");
        assert_eq!(recs[2].phase, "insert");
        assert_eq!(recs[2].kind, crate::trace::RoundKind::Broadcast);
        // Monotonic ids.
        assert!(recs.windows(2).all(|w| w[1].round == w[0].round + 1));

        // Exact reassembly of the lifetime counters from the journal.
        let s = sys.stats();
        assert_eq!(recs.iter().map(|r| r.cpu_to_pim_bytes).sum::<u64>(), s.cpu_to_pim_bytes);
        assert_eq!(recs.iter().map(|r| r.pim_to_cpu_bytes).sum::<u64>(), s.pim_to_cpu_bytes);
        assert_eq!(recs.iter().map(|r| r.sum_cycles).sum::<u64>(), s.total_pim_cycles);
        assert_eq!(recs.iter().map(|r| r.max_cycles).sum::<u64>(), s.sum_max_cycles);
        assert_eq!(recs.len() as u64, s.rounds);
        let sum = |f: fn(&crate::trace::RoundRecord) -> f64| recs.iter().map(f).sum::<f64>();
        assert!((sum(|r| r.breakdown.pim_s) - s.pim_s).abs() < 1e-15);
        assert!((sum(|r| r.breakdown.comm_s) - s.comm_s).abs() < 1e-15);
        assert!((sum(|r| r.breakdown.overhead_s) - s.overhead_s).abs() < 1e-15);
        let worst = recs.iter().map(|r| r.imbalance()).fold(0.0f64, f64::max);
        assert!((worst - s.worst_imbalance).abs() < 1e-12);
    }

    #[test]
    fn trace_round_ids_survive_stats_reset() {
        use crate::trace::JournalSink;
        let (sink, journal) = JournalSink::new();
        let mut sys = PimSystem::new(MachineConfig::with_modules(2), |_| 0u64);
        sys.set_trace_sink(Box::new(sink));
        let _ = sys.execute_round(vec![vec![1u32]], |_, _, ctx, t| {
            ctx.op(1);
            t
        });
        sys.reset_stats();
        let _ = sys.execute_round(vec![vec![2u32]], |_, _, ctx, t| {
            ctx.op(1);
            t
        });
        let recs = journal.snapshot();
        assert_eq!(recs[0].round, 0);
        assert_eq!(recs[1].round, 1, "round ids are monotonic across resets");
        assert_eq!(sys.stats().rounds, 1, "stats themselves did reset");
    }

    #[test]
    fn unaccounted_rounds_emit_no_records() {
        use crate::trace::JournalSink;
        let (sink, journal) = JournalSink::new();
        let mut sys = PimSystem::new(MachineConfig::with_modules(2), |_| 0u64);
        sys.set_trace_sink(Box::new(sink));
        sys.accounting = false;
        let _ = sys.execute_round(vec![vec![1u32]], |_, _, ctx, t| {
            ctx.op(1);
            t
        });
        assert!(journal.is_empty(), "warmup rounds stay out of the journal");
    }

    #[test]
    fn phase_labels_nest_and_unwind() {
        let mut sys = PimSystem::new(MachineConfig::with_modules(1), |_| 0u64);
        assert_eq!(sys.current_phase(), "");
        let label =
            sys.scoped_phase("insert", |s| s.scoped_phase("redistribute", |s| s.current_phase()));
        assert_eq!(label, "insert/redistribute");
        assert_eq!(sys.current_phase(), "", "labels unwind with their scopes");
    }

    #[test]
    fn stats_reset_clears_everything() {
        let mut sys = PimSystem::new(MachineConfig::with_modules(2), |_| 0u64);
        let _ = sys.execute_round(vec![vec![1u32], vec![2u32]], |_, _, ctx, t| {
            ctx.op(5);
            t
        });
        assert!(sys.stats().rounds > 0);
        sys.reset_stats();
        assert_eq!(sys.stats().rounds, 0);
        assert_eq!(sys.stats().channel_bytes(), 0);
        assert_eq!(sys.stats().total_pim_cycles, 0);
    }
}
