//! The BSP round executor.
//!
//! A [`PimSystem`] owns `P` module states and executes bulk-synchronous
//! rounds: the host scatters per-module task buffers, every module's handler
//! runs (in parallel, via rayon), and the host gathers per-module reply
//! buffers. All four cost channels are accounted per round:
//!
//! 1. **CPU→PIM bytes** — the wire size of the scattered tasks;
//! 2. **PIM→CPU bytes** — the wire size of the gathered replies;
//! 3. **PIM time** — the *maximum* per-module core time (the PIM Model's
//!    round metric; stragglers determine round completion, §1 Q1);
//! 4. **Overheads** — one mux switch per round plus one transfer-call
//!    overhead per module that sent or received data (the Direct-API knob).
//!
//! Handlers receive `(module_index, &mut M, &mut PimCtx, Vec<T>)` and must
//! charge their work to the ctx; the simulator trusts but verifies nothing —
//! the cost model is part of the algorithm under test, exactly as a DPU
//! kernel's cycle count is part of a real implementation.

use crate::config::MachineConfig;
use crate::ctx::PimCtx;
use crate::fault::{AttemptOutcome, FaultEvent, FaultKind, FaultLog, FaultPlan, ModuleFate};
use crate::metrics::Metrics;
use crate::stats::{LoadStats, RoundBreakdown, SimStats};
use crate::trace::{summarize_cycles, NullSink, RoundKind, RoundRecord, TraceSink};
use crate::wire::{checksum64, validate_checksum, Wire};
use rayon::prelude::*;

/// A simulated PIM machine with module state `M`.
///
/// ```
/// use pim_sim::{MachineConfig, PimSystem};
///
/// let mut sys = PimSystem::new(MachineConfig::with_modules(4), |_| 0u64);
/// let tasks: Vec<Vec<u32>> = (0..4).map(|i| vec![i as u32]).collect();
/// let replies = sys.execute_round(tasks, |_, state, ctx, t| {
///     ctx.op(t.len() as u64);
///     *state += t.len() as u64;
///     t
/// });
/// assert_eq!(replies[3], vec![3]);
/// assert!(sys.stats().channel_bytes() > 0);
/// ```
pub struct PimSystem<M> {
    cfg: MachineConfig,
    modules: Vec<M>,
    stats: SimStats,
    /// When false, rounds execute but are not charged (warmup phases).
    pub accounting: bool,
    /// Trace receiver; [`NullSink`] (disabled) by default.
    sink: Box<dyn TraceSink>,
    /// Metrics registry handle; disabled (no registry) by default.
    metrics: Metrics,
    /// Monotonic id of the next accounted round (never reset).
    trace_round: u64,
    /// Active phase labels, innermost last; records carry their `/`-join.
    phase_stack: Vec<String>,
    /// Fault-injection oracle; `None` keeps the fault plane entirely off
    /// the round hot path.
    plan: Option<FaultPlan>,
    /// Per-module fail-stop markers. A dead module's handler never runs
    /// again; its state stays resident for [`Self::salvage`].
    dead: Vec<bool>,
    /// Modules declared dead since the last [`Self::take_newly_dead`].
    newly_dead: Vec<u32>,
    /// Lifetime fault/recovery counters.
    fault_log: FaultLog,
}

/// The simulator counters a checkpoint must carry (see
/// [`PimSystem::export_counters`]). Module *state* travels separately —
/// the host serializes its own `ModuleState` payloads — this is the
/// machine-side bookkeeping around them.
#[derive(Clone, Debug)]
pub struct SimCounters {
    /// Lifetime stats, including the per-round imbalance history that
    /// `SimStats::since` windows over.
    pub stats: SimStats,
    /// Id of the next accounted round.
    pub trace_round: u64,
    /// Lifetime fault/recovery counters.
    pub fault_log: FaultLog,
    /// Per-module fail-stop markers.
    pub dead: Vec<bool>,
}

impl<M: Send> PimSystem<M> {
    /// Builds a machine whose module `i` starts as `init(i)`.
    pub fn new(cfg: MachineConfig, init: impl FnMut(usize) -> M) -> Self {
        let modules: Vec<M> = (0..cfg.n_modules).map(init).collect();
        let p = modules.len();
        Self {
            cfg,
            modules,
            stats: SimStats::default(),
            accounting: true,
            sink: Box::new(NullSink),
            metrics: Metrics::disabled(),
            trace_round: 0,
            phase_stack: Vec::new(),
            plan: None,
            dead: vec![false; p],
            newly_dead: Vec::new(),
            fault_log: FaultLog::default(),
        }
    }

    /// Attaches a trace sink; every subsequent accounted round emits a
    /// [`RoundRecord`] to it. Pass `Box::new(NullSink)` to detach.
    pub fn set_trace_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.sink = sink;
    }

    /// Attaches a metrics registry handle; every subsequent *accounted*
    /// round publishes counters into it (see ARCHITECTURE.md §2 for the
    /// exact hook points). Pass [`Metrics::disabled`] to detach. Like the
    /// trace sink, a detached handle keeps the round hot path free of any
    /// metrics work beyond one branch.
    pub fn set_metrics(&mut self, metrics: Metrics) {
        self.metrics = metrics;
    }

    /// The attached metrics handle (disabled unless [`Self::set_metrics`]
    /// enabled one).
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Opens a phase label for the dynamic extent of `f`: rounds executed
    /// inside carry the label (nested scopes join with `/`, e.g.
    /// `insert/maintain`). Labels are tracked even with tracing disabled —
    /// the bookkeeping is two `Vec` operations per scope.
    pub fn scoped_phase<R>(
        &mut self,
        label: impl Into<String>,
        f: impl FnOnce(&mut Self) -> R,
    ) -> R {
        self.push_phase(label);
        let out = f(self);
        self.pop_phase();
        out
    }

    /// Opens a phase label (prefer [`Self::scoped_phase`]; this exists for
    /// callers that cannot express the scope as a closure over the system,
    /// e.g. methods of a struct that owns it).
    pub fn push_phase(&mut self, label: impl Into<String>) {
        self.phase_stack.push(label.into());
    }

    /// Closes the innermost phase label.
    pub fn pop_phase(&mut self) {
        self.phase_stack.pop();
    }

    /// The current `/`-joined phase label (`""` outside any scope).
    pub fn current_phase(&self) -> String {
        self.phase_stack.join("/")
    }

    /// Number of modules `P`.
    pub fn n_modules(&self) -> usize {
        self.modules.len()
    }

    /// Machine parameters.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Mutable machine parameters (benches flip the transfer API knob).
    pub fn config_mut(&mut self) -> &mut MachineConfig {
        &mut self.cfg
    }

    /// Read-only access to a module's state **for tests and invariant checks
    /// only** — it bypasses communication accounting.
    pub fn peek(&self, module: usize) -> &M {
        &self.modules[module]
    }

    /// Lifetime statistics.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Resets statistics (e.g. after warmup).
    pub fn reset_stats(&mut self) {
        self.stats = SimStats::default();
    }

    /// Attaches (or with `None` detaches) a fault-injection plan. This
    /// starts a fresh failure experiment: dead-module markers and the
    /// fault log are cleared. Injection only applies to *accounted*
    /// rounds — warmup/build phases run fault-free by construction.
    pub fn set_fault_plan(&mut self, plan: Option<FaultPlan>) {
        self.plan = plan;
        self.dead = vec![false; self.modules.len()];
        self.newly_dead.clear();
        self.fault_log = FaultLog::default();
    }

    /// The attached fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.plan.as_ref()
    }

    /// Lifetime fault/recovery counters.
    pub fn fault_log(&self) -> &FaultLog {
        &self.fault_log
    }

    /// Restorable simulator counters: everything a host-process restart
    /// must re-establish so post-restore rounds are byte-identical to the
    /// uninterrupted run (round ids drive fault draws and journal records;
    /// stats drive `since`-window deltas).
    pub fn export_counters(&self) -> SimCounters {
        SimCounters {
            stats: self.stats.clone(),
            trace_round: self.trace_round,
            fault_log: self.fault_log.clone(),
            dead: self.dead.clone(),
        }
    }

    /// Reinstates counters exported by [`Self::export_counters`] — the one
    /// sanctioned rewind of the otherwise-monotonic `trace_round`, sound
    /// only because it runs in a *fresh process* restoring a checkpoint:
    /// the rounds past the snapshot never happened in this lifetime, and
    /// WAL replay is about to re-execute them under their original ids.
    /// Sinks, metrics handles, and the fault plan are process-local
    /// attachments and are left untouched. Panics if the dead-mask width
    /// disagrees with the machine (that is a config mismatch the
    /// checkpoint layer rejects earlier with a typed error).
    pub fn import_counters(&mut self, c: SimCounters) {
        assert_eq!(c.dead.len(), self.modules.len(), "dead mask width must match the machine");
        self.stats = c.stats;
        self.trace_round = c.trace_round;
        self.fault_log = c.fault_log;
        self.dead = c.dead;
        self.newly_dead.clear();
    }

    /// Records one recovered host crash (see [`FaultKind::HostCrash`]):
    /// called by the durability layer when WAL replay finds batches past
    /// the checkpoint epoch. Deliberately *not* journaled or metered — the
    /// crash happened between process lifetimes, and the byte-identity
    /// contract requires the replayed rounds to reproduce the original
    /// journal exactly, with no extra records.
    pub fn record_host_crash(&mut self) {
        self.fault_log.host_crashes += 1;
    }

    /// Whether `module` has fail-stopped.
    pub fn is_dead(&self, module: usize) -> bool {
        self.dead[module]
    }

    /// Per-module fail-stop markers (`true` = dead), indexed by module.
    pub fn dead_mask(&self) -> &[bool] {
        &self.dead
    }

    /// Number of modules still alive.
    pub fn n_live(&self) -> usize {
        self.dead.iter().filter(|&&d| !d).count()
    }

    /// Drains the list of modules declared dead since the last drain
    /// (sorted, deduplicated). The host's robust layer calls this after
    /// every round to trigger recovery.
    pub fn take_newly_dead(&mut self) -> Vec<u32> {
        let mut out = std::mem::take(&mut self.newly_dead);
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Scripted fail-stop of one module (test/bench hook): the module is
    /// marked dead exactly as if the fault plan had drawn its death.
    pub fn kill_module(&mut self, module: usize) {
        if !self.dead[module] {
            self.dead[module] = true;
            self.newly_dead.push(module as u32);
            self.fault_log.deaths += 1;
        }
    }

    /// One host-side DMA read of a (typically dead) module's memory.
    ///
    /// `f` inspects the module state and returns `(result, bytes_read)`;
    /// the bytes are charged as PIM→CPU channel traffic plus one transfer
    /// call and a mux switch, and the round is journaled as
    /// [`RoundKind::Salvage`]. This models the fail-stop axiom that a dead
    /// core's MRAM stays host-readable (see `pim_sim::fault`).
    pub fn salvage<R>(&mut self, module: usize, f: impl FnOnce(&mut M) -> (R, u64)) -> R {
        let (out, bytes) = f(&mut self.modules[module]);
        if self.accounting {
            let breakdown = RoundBreakdown {
                pim_s: 0.0,
                comm_s: self.cfg.transfer_time_s(bytes, bytes),
                overhead_s: self.cfg.mux_switch_s
                    + self.cfg.call_overhead_s() / self.cfg.host_threads as f64,
            };
            let p = self.modules.len();
            self.stats.n_modules = p;
            self.stats.record(breakdown, LoadStats { max_cycles: 0, mean_cycles: 0.0 }, 0, bytes);
            self.fault_log.salvages += 1;
            self.fault_log.salvaged_bytes += bytes;
            let round = self.trace_round;
            self.trace_round += 1;
            if self.metrics.enabled() {
                let ev = FaultEvent { module: module as u32, attempt: 0, kind: FaultKind::Salvage };
                self.meter_round("salvage", &breakdown, 0, bytes, 0, 0, &[], &[], &[ev], 0);
                self.metrics.with(|m| m.add("sim_salvaged_bytes_total", &[], bytes));
            }
            if self.sink.enabled() {
                let (cycle_hist, stragglers) = summarize_cycles(&[]);
                self.sink.record(RoundRecord {
                    round,
                    phase: self.current_phase(),
                    kind: RoundKind::Salvage,
                    breakdown,
                    cpu_to_pim_bytes: 0,
                    pim_to_cpu_bytes: bytes,
                    tasks: 0,
                    replies: 0,
                    active_modules: 0,
                    max_cycles: 0,
                    mean_cycles: 0.0,
                    sum_cycles: 0,
                    cycle_hist,
                    stragglers,
                    faults: vec![FaultEvent {
                        module: module as u32,
                        attempt: 0,
                        kind: FaultKind::Salvage,
                    }],
                });
            }
        }
        out
    }

    /// Publishes one accounted round into the metrics registry. Called
    /// only from the sequential accounting blocks (after `stats.record`),
    /// so feed order — and therefore every snapshot — is independent of
    /// host thread count. No-op when the handle is disabled.
    ///
    /// `module_cycles[i]` is module `i`'s charged cycles this round
    /// (effective cycles on the fault path, i.e. including retry/straggler
    /// multipliers, so the busy-cycle counters sum to
    /// `SimStats::total_pim_cycles` exactly). `per_module_tasks` may be
    /// empty when the round has no per-module task buffers (broadcasts).
    #[allow(clippy::too_many_arguments)]
    fn meter_round(
        &self,
        kind: &'static str,
        breakdown: &RoundBreakdown,
        sent: u64,
        recv: u64,
        n_tasks: u64,
        max_cycles: u64,
        module_cycles: &[u64],
        per_module_tasks: &[u64],
        events: &[FaultEvent],
        retries: u64,
    ) {
        if !self.metrics.enabled() {
            return;
        }
        let phase = self.current_phase();
        self.metrics.with(|m| {
            let ph: &[(&str, &str)] = &[("phase", &phase)];
            m.add("sim_rounds_total", &[("kind", kind)], 1);
            m.add("sim_cpu_to_pim_bytes_total", ph, sent);
            m.add("sim_pim_to_cpu_bytes_total", ph, recv);
            m.add("sim_tasks_total", ph, n_tasks);
            m.add_f("sim_pim_seconds_total", ph, breakdown.pim_s);
            m.add_f("sim_comm_seconds_total", ph, breakdown.comm_s);
            m.add_f("sim_overhead_seconds_total", ph, breakdown.overhead_s);
            m.observe("sim_round_max_cycles", ph, max_cycles);
            for (i, &c) in module_cycles.iter().enumerate() {
                let t = per_module_tasks.get(i).copied().unwrap_or(0);
                // Idle modules are skipped to keep series cardinality at
                // "modules ever used", not "modules × rounds".
                if c == 0 && t == 0 {
                    continue;
                }
                let id = i.to_string();
                let ml: &[(&str, &str)] = &[("module_id", &id)];
                m.add("sim_module_busy_cycles_total", ml, c);
                m.add("sim_module_tasks_total", ml, t);
            }
            if retries > 0 {
                m.add("sim_retries_total", &[], retries);
            }
            for e in events {
                m.add("sim_faults_total", &[("kind", e.kind.name())], 1);
            }
        });
    }

    /// Executes one BSP round. `tasks[i]` is scattered to module `i`;
    /// modules with an empty task list do not run (no transfer call, no
    /// cycles). Returns `replies[i]` from each module.
    pub fn execute_round<T, R, F>(&mut self, mut tasks: Vec<Vec<T>>, handler: F) -> Vec<Vec<R>>
    where
        T: Wire + Send,
        R: Wire + Send,
        F: Fn(usize, &mut M, &mut PimCtx, Vec<T>) -> Vec<R> + Sync,
    {
        self.run_round(&mut tasks, handler, false)
    }

    /// Like [`Self::execute_round`], but borrows the task matrix instead of
    /// consuming it: each row is taken (left empty) by the scatter, and the
    /// outer `Vec` survives for the caller to recycle. This is what the
    /// host's `RoundBuffers` pool builds on — per-op matrix allocations
    /// become clear-and-reuse.
    pub fn execute_round_in<T, R, F>(&mut self, tasks: &mut Vec<Vec<T>>, handler: F) -> Vec<Vec<R>>
    where
        T: Wire + Send,
        R: Wire + Send,
        F: Fn(usize, &mut M, &mut PimCtx, Vec<T>) -> Vec<R> + Sync,
    {
        self.run_round(tasks, handler, false)
    }

    /// Like [`Self::execute_round`], but invokes the handler on **every**
    /// module, even those with no input (used for broadcast application,
    /// e.g. replicating L0 updates). Modules without input still pay no
    /// CPU→PIM transfer, but their work and replies are charged.
    pub fn execute_round_all<T, R, F>(&mut self, mut tasks: Vec<Vec<T>>, handler: F) -> Vec<Vec<R>>
    where
        T: Wire + Send,
        R: Wire + Send,
        F: Fn(usize, &mut M, &mut PimCtx, Vec<T>) -> Vec<R> + Sync,
    {
        self.run_round(&mut tasks, handler, true)
    }

    fn run_round<T, R, F>(
        &mut self,
        tasks: &mut Vec<Vec<T>>,
        handler: F,
        run_all: bool,
    ) -> Vec<Vec<R>>
    where
        T: Wire + Send,
        R: Wire + Send,
        F: Fn(usize, &mut M, &mut PimCtx, Vec<T>) -> Vec<R> + Sync,
    {
        let p = self.modules.len();
        assert!(tasks.len() <= p, "scattered {} task buffers onto {} modules", tasks.len(), p);
        tasks.resize_with(p, Vec::new);

        // The fault plane has a dedicated path so the common case below
        // stays exactly the pre-fault code (same float operations in the
        // same order — accounting is byte-identical when no plan is
        // attached, and when an attached plan has all-zero rates the
        // faulty path provably degenerates to the same arithmetic).
        if self.fault_plane_active() {
            return self.run_round_faulty(tasks, handler, run_all);
        }

        // Task counts are only observable before the buffers move into the
        // parallel scatter; gather them now iff a sink or the metrics
        // registry will consume them.
        let tracing = self.accounting && self.sink.enabled();
        let metered = self.accounting && self.metrics.enabled();
        let per_module_tasks: Vec<u64> =
            if metered { tasks.iter().map(|t| t.len() as u64).collect() } else { Vec::new() };
        let (n_tasks, n_active) = if tracing || metered {
            let active = if run_all { p } else { tasks.iter().filter(|t| !t.is_empty()).count() };
            (tasks.iter().map(|t| t.len() as u64).sum::<u64>(), active as u32)
        } else {
            (0, 0)
        };

        let per_module_sent: Vec<u64> = tasks.iter().map(|t| t.wire_bytes()).collect();

        // Run all module handlers in parallel. Determinism audit: `collect`
        // places each `(reply, ctx)` at its module index regardless of which
        // worker finished first, and everything order-sensitive below — the
        // f64 max/sum folds, `per_module_recv`, the traced cycle vector —
        // iterates that index-ordered Vec sequentially. A journal written at
        // 16 threads is byte-identical to one written at 1.
        let results: Vec<(Vec<R>, PimCtx)> = self
            .modules
            .par_iter_mut()
            .zip(tasks.par_iter_mut())
            .enumerate()
            .map(|(i, (m, tr))| {
                let t = std::mem::take(tr);
                let mut ctx = PimCtx::new();
                let replies =
                    if run_all || !t.is_empty() { handler(i, m, &mut ctx, t) } else { Vec::new() };
                (replies, ctx)
            })
            .collect();

        let per_module_recv: Vec<u64> = results.iter().map(|(r, _)| r.wire_bytes()).collect();

        if self.accounting {
            let sent: u64 = per_module_sent.iter().sum();
            let recv: u64 = per_module_recv.iter().sum();
            let max_module_bytes =
                per_module_sent.iter().zip(&per_module_recv).map(|(a, b)| a + b).max().unwrap_or(0);

            let mut max_time = 0.0f64;
            let mut max_cycles = 0u64;
            let mut sum_cycles = 0u64;
            for (_, ctx) in &results {
                max_time = max_time.max(ctx.time_s(self.cfg.pim_freq_hz, self.cfg.pim_local_bw));
                max_cycles = max_cycles.max(ctx.cycles);
                sum_cycles += ctx.cycles;
            }
            self.stats.total_pim_cycles += sum_cycles;

            let calls = per_module_sent.iter().filter(|&&b| b > 0).count()
                + per_module_recv.iter().filter(|&&b| b > 0).count();
            let overhead = self.cfg.mux_switch_s
                + calls as f64 * self.cfg.call_overhead_s() / self.cfg.host_threads as f64;

            let breakdown = RoundBreakdown {
                pim_s: max_time,
                comm_s: self.cfg.transfer_time_s(sent + recv, max_module_bytes),
                overhead_s: overhead,
            };
            let load = LoadStats { max_cycles, mean_cycles: sum_cycles as f64 / p as f64 };
            self.stats.n_modules = p;
            self.stats.record(breakdown, load, sent, recv);

            let round = self.trace_round;
            self.trace_round += 1;
            let cycles: Vec<u64> = if tracing || metered {
                results.iter().map(|(_, c)| c.cycles).collect()
            } else {
                Vec::new()
            };
            if tracing {
                let (cycle_hist, stragglers) = summarize_cycles(&cycles);
                self.sink.record(RoundRecord {
                    round,
                    phase: self.current_phase(),
                    kind: if run_all { RoundKind::ExecuteAll } else { RoundKind::Execute },
                    breakdown,
                    cpu_to_pim_bytes: sent,
                    pim_to_cpu_bytes: recv,
                    tasks: n_tasks,
                    replies: results.iter().map(|(r, _)| r.len() as u64).sum(),
                    active_modules: n_active,
                    max_cycles,
                    mean_cycles: sum_cycles as f64 / p as f64,
                    sum_cycles,
                    cycle_hist,
                    stragglers,
                    faults: Vec::new(),
                });
            }
            if metered {
                self.meter_round(
                    if run_all { "execute_all" } else { "execute" },
                    &breakdown,
                    sent,
                    recv,
                    n_tasks,
                    max_cycles,
                    &cycles,
                    &per_module_tasks,
                    &[],
                    0,
                );
            }
        }

        results.into_iter().map(|(r, _)| r).collect()
    }

    /// Whether rounds take the fault-aware path: an active plan is
    /// attached, or some module has already fail-stopped (scripted kills
    /// work without a plan). Warmup (`accounting = false`) never injects,
    /// but must still route around dead modules. The host's robust layer
    /// branches on this to decide whether a round needs retry/recovery
    /// scaffolding (task cloning, provenance tracking) at all.
    pub fn fault_plane_active(&self) -> bool {
        self.dead.iter().any(|&d| d)
            || (self.accounting && self.plan.as_ref().is_some_and(|pl| pl.config().is_active()))
    }

    /// The round id the **next** accounted round will draw its fault fates
    /// with. Fates are a pure function of `(plan seed, round, module,
    /// attempt)`, so a caller holding this id can predict the outcome of a
    /// dispatch it is about to make — see [`Self::predict_round_failure`].
    pub fn next_round_id(&self) -> u64 {
        self.trace_round
    }

    /// Whether a live module that participates in round `round` (the value
    /// of [`Self::next_round_id`] at dispatch time) will fail it — i.e.
    /// produce no validated reply — per the attached fault plan.
    ///
    /// Mirrors the `draw_fates` logic exactly: the plan is only consulted
    /// for accounted rounds, and with no plan attached a live participating
    /// module always succeeds (scripted kills only mark modules dead
    /// *between* rounds). The host's robust layer uses this to clone only
    /// the task rows that will actually be lost this wave; a wrong
    /// prediction here would either leak clones (harmless) or lose tasks
    /// (caught by the robust layer's reply-count assertion).
    pub fn predict_round_failure(&self, round: u64, module: u32) -> bool {
        if !self.accounting {
            return false;
        }
        self.plan.as_ref().is_some_and(|pl| !pl.module_fate(round, module, true).success)
    }

    /// Per-module fates for one round, drawn sequentially (thread-count
    /// independent). `participating[i]` is whether the host scattered work
    /// to module `i` (or the round is `run_all`).
    fn draw_fates(&mut self, round: u64, participating: &[bool]) -> Vec<ModuleFate> {
        let plan = if self.accounting { self.plan.as_ref() } else { None };
        let fates: Vec<ModuleFate> = participating
            .iter()
            .enumerate()
            .map(|(i, &part)| {
                if self.dead[i] {
                    ModuleFate::idle()
                } else if let Some(pl) = plan {
                    pl.module_fate(round, i as u32, part)
                } else if part {
                    ModuleFate { attempts: vec![AttemptOutcome::Ok], success: true, died: false }
                } else {
                    ModuleFate::idle()
                }
            })
            .collect();
        for (i, f) in fates.iter().enumerate() {
            if f.died {
                self.dead[i] = true;
                self.newly_dead.push(i as u32);
                self.fault_log.deaths += 1;
            }
        }
        fates
    }

    /// The fault-aware sibling of the hot path in [`Self::run_round`].
    ///
    /// Execution model: the round proceeds in *waves*. In wave `a`, every
    /// module whose fate has an attempt `a` gets its task buffer
    /// (re-)scattered; modules whose attempt fails cost the host a
    /// detection timeout and a retry. A module commits its handler exactly
    /// once — at its successful attempt — or never (atomic attempts), so
    /// replay never double-applies state. Modules that exhaust retries or
    /// draw the death fate are marked dead; the host's robust layer drains
    /// [`Self::take_newly_dead`] and re-routes their lost tasks.
    fn run_round_faulty<T, R, F>(
        &mut self,
        tasks: &mut [Vec<T>],
        handler: F,
        run_all: bool,
    ) -> Vec<Vec<R>>
    where
        T: Wire + Send,
        R: Wire + Send,
        F: Fn(usize, &mut M, &mut PimCtx, Vec<T>) -> Vec<R> + Sync,
    {
        let p = self.modules.len();
        let round = self.trace_round;
        let plan = if self.accounting { self.plan.clone() } else { None };
        let factor = plan.as_ref().map_or(1.0, |pl| pl.config().straggler_factor.max(1.0));
        let key = plan.as_ref().map_or(0, |pl| pl.config().seed);

        let participating: Vec<bool> = tasks.iter().map(|t| run_all || !t.is_empty()).collect();
        if cfg!(debug_assertions) {
            for (i, t) in tasks.iter().enumerate() {
                debug_assert!(
                    t.is_empty() || !self.dead[i],
                    "host scattered {} tasks to dead module {i}",
                    t.len()
                );
            }
        }
        let fates = self.draw_fates(round, &participating);

        let tracing = self.accounting && self.sink.enabled();
        let metered = self.accounting && self.metrics.enabled();
        let per_module_tasks: Vec<u64> =
            if metered { tasks.iter().map(|t| t.len() as u64).collect() } else { Vec::new() };
        let n_tasks =
            if tracing || metered { tasks.iter().map(|t| t.len() as u64).sum::<u64>() } else { 0 };

        let per_module_sent: Vec<u64> = tasks.iter().map(|t| t.wire_bytes()).collect();

        // Same determinism contract as the plain path: results land at
        // their module index; every fold below is sequential over them.
        let results: Vec<(Vec<R>, PimCtx)> = self
            .modules
            .par_iter_mut()
            .zip(tasks.par_iter_mut())
            .enumerate()
            .map(|(i, (m, tr))| {
                let t = std::mem::take(tr);
                let mut ctx = PimCtx::new();
                let replies =
                    if fates[i].success { handler(i, m, &mut ctx, t) } else { Vec::new() };
                (replies, ctx)
            })
            .collect();

        let per_module_recv: Vec<u64> = results.iter().map(|(r, _)| r.wire_bytes()).collect();

        if self.accounting {
            let retries_before = self.fault_log.retries;
            let mut sent = 0u64;
            let mut recv = 0u64;
            let mut max_module_bytes = 0u64;
            let mut send_calls = 0usize;
            let mut recv_calls = 0usize;
            let mut base_time = vec![0.0f64; p];
            let mut eff_cycles = vec![0u64; p];
            let mut events: Vec<FaultEvent> = Vec::new();

            for i in 0..p {
                let fate = &fates[i];
                let ctx = &results[i].1;
                base_time[i] = ctx.time_s(self.cfg.pim_freq_hz, self.cfg.pim_local_bw);
                let n_att = fate.attempts.len() as u64;
                if per_module_sent[i] > 0 {
                    send_calls += n_att as usize;
                    self.fault_log.retransmitted_bytes +=
                        per_module_sent[i] * n_att.saturating_sub(1);
                }
                let fetches = fate.attempts.iter().filter(|o| o.fetched_reply()).count() as u64;
                if per_module_recv[i] > 0 {
                    recv_calls += fetches as usize;
                }
                let m_sent = per_module_sent[i] * n_att;
                let m_recv = per_module_recv[i] * fetches;
                sent += m_sent;
                recv += m_recv;
                max_module_bytes = max_module_bytes.max(m_sent + m_recv);

                // Cycles: one full execution per executed attempt; the
                // terminal straggler attempt runs `factor` times slower.
                let mut mult = 0.0f64;
                for (a, &o) in fate.attempts.iter().enumerate() {
                    match o {
                        AttemptOutcome::Ok
                        | AttemptOutcome::ReplyDrop
                        | AttemptOutcome::ReplyCorrupt => mult += 1.0,
                        AttemptOutcome::Straggler => mult += factor,
                        AttemptOutcome::ExecFault | AttemptOutcome::Death => {}
                    }
                    self.fault_log.count(o);
                    if o.fetched_reply() {
                        // Response validation: recompute the transfer
                        // checksum; a corrupted reply always fails it.
                        let good = checksum64(key, round, i as u32, per_module_recv[i]);
                        let got = match (&plan, o) {
                            (Some(pl), AttemptOutcome::ReplyCorrupt) => {
                                good ^ pl.corruption_mask(round, i as u32, a as u32)
                            }
                            _ => good,
                        };
                        let valid =
                            validate_checksum(key, round, i as u32, per_module_recv[i], got);
                        debug_assert_eq!(valid, o != AttemptOutcome::ReplyCorrupt);
                    }
                    let kind = match o {
                        AttemptOutcome::Ok | AttemptOutcome::Death => continue,
                        AttemptOutcome::Straggler => FaultKind::Straggler,
                        AttemptOutcome::ExecFault => FaultKind::ExecFault,
                        AttemptOutcome::ReplyDrop => FaultKind::ReplyDrop,
                        AttemptOutcome::ReplyCorrupt => FaultKind::ReplyCorrupt,
                    };
                    events.push(FaultEvent { module: i as u32, attempt: a as u32, kind });
                }
                if fate.died {
                    events.push(FaultEvent {
                        module: i as u32,
                        attempt: fate.attempts.len().saturating_sub(1) as u32,
                        kind: FaultKind::Death,
                    });
                }
                self.fault_log.retries += n_att.saturating_sub(1);
                eff_cycles[i] = (ctx.cycles as f64 * mult) as u64;
            }

            let mut max_cycles = 0u64;
            let mut sum_cycles = 0u64;
            for &c in &eff_cycles {
                max_cycles = max_cycles.max(c);
                sum_cycles += c;
            }
            self.stats.total_pim_cycles += sum_cycles;

            // Wave fold: attempt `a` of every still-retrying module
            // overlaps, so the round's PIM time is the sum over waves of
            // the slowest member; each wave containing a failure charges
            // one host detection timeout to overhead.
            let n_waves = fates.iter().map(|f| f.attempts.len()).max().unwrap_or(0);
            let mut pim_s = 0.0f64;
            let mut timeout_waves = 0u64;
            for w in 0..n_waves {
                let mut wave_max = 0.0f64;
                let mut wave_failed = false;
                for i in 0..p {
                    if let Some(&o) = fates[i].attempts.get(w) {
                        let t = match o {
                            AttemptOutcome::Ok
                            | AttemptOutcome::ReplyDrop
                            | AttemptOutcome::ReplyCorrupt => base_time[i],
                            AttemptOutcome::Straggler => base_time[i] * factor,
                            AttemptOutcome::ExecFault | AttemptOutcome::Death => 0.0,
                        };
                        wave_max = wave_max.max(t);
                        if !o.is_success() {
                            wave_failed = true;
                        }
                    }
                }
                pim_s += wave_max;
                if wave_failed {
                    timeout_waves += 1;
                }
            }
            let timeout_s = plan.as_ref().map_or(0.0, |pl| pl.config().timeout_s);
            self.fault_log.timeout_s += timeout_waves as f64 * timeout_s;

            let calls = send_calls + recv_calls;
            let overhead = self.cfg.mux_switch_s
                + calls as f64 * self.cfg.call_overhead_s() / self.cfg.host_threads as f64
                + timeout_waves as f64 * timeout_s;

            let breakdown = RoundBreakdown {
                pim_s,
                comm_s: self.cfg.transfer_time_s(sent + recv, max_module_bytes),
                overhead_s: overhead,
            };
            let load = LoadStats { max_cycles, mean_cycles: sum_cycles as f64 / p as f64 };
            self.stats.n_modules = p;
            self.stats.record(breakdown, load, sent, recv);

            self.trace_round += 1;
            if metered {
                self.meter_round(
                    if run_all { "execute_all" } else { "execute" },
                    &breakdown,
                    sent,
                    recv,
                    n_tasks,
                    max_cycles,
                    &eff_cycles,
                    &per_module_tasks,
                    &events,
                    self.fault_log.retries - retries_before,
                );
            }
            if tracing {
                let (cycle_hist, stragglers) = summarize_cycles(&eff_cycles);
                self.sink.record(RoundRecord {
                    round,
                    phase: self.current_phase(),
                    kind: if run_all { RoundKind::ExecuteAll } else { RoundKind::Execute },
                    breakdown,
                    cpu_to_pim_bytes: sent,
                    pim_to_cpu_bytes: recv,
                    tasks: n_tasks,
                    replies: results.iter().map(|(r, _)| r.len() as u64).sum(),
                    active_modules: fates.iter().filter(|f| f.success).count() as u32,
                    max_cycles,
                    mean_cycles: sum_cycles as f64 / p as f64,
                    sum_cycles,
                    cycle_hist,
                    stragglers,
                    faults: events,
                });
            }
        }

        results.into_iter().map(|(r, _)| r).collect()
    }

    /// Broadcasts one value to all modules and applies it: charges `P ×`
    /// the value's wire size of CPU→PIM traffic (how L0 replication and
    /// promoted-node broadcasts are paid for, Alg 2 step 3d).
    pub fn broadcast<T, F>(&mut self, item: T, handler: F)
    where
        T: Wire + Sync,
        F: Fn(usize, &mut M, &mut PimCtx, &T) + Sync,
    {
        if self.fault_plane_active() {
            return self.broadcast_faulty(item, handler);
        }
        let bytes = item.wire_bytes();
        let p = self.modules.len();
        // Same determinism contract as `run_round`: ctxs land in module
        // order, and the accounting folds below run sequentially over them.
        let ctxs: Vec<PimCtx> = self
            .modules
            .par_iter_mut()
            .enumerate()
            .map(|(i, m)| {
                let mut ctx = PimCtx::new();
                handler(i, m, &mut ctx, &item);
                ctx
            })
            .collect();

        if self.accounting {
            let mut max_time = 0.0f64;
            let mut max_cycles = 0u64;
            let mut sum_cycles = 0u64;
            for ctx in &ctxs {
                max_time = max_time.max(ctx.time_s(self.cfg.pim_freq_hz, self.cfg.pim_local_bw));
                max_cycles = max_cycles.max(ctx.cycles);
                sum_cycles += ctx.cycles;
            }
            self.stats.total_pim_cycles += sum_cycles;
            let sent = bytes * p as u64;
            let overhead = self.cfg.mux_switch_s
                + p as f64 * self.cfg.call_overhead_s() / self.cfg.host_threads as f64;
            let breakdown = RoundBreakdown {
                pim_s: max_time,
                comm_s: self.cfg.transfer_time_s(sent, bytes),
                overhead_s: overhead,
            };
            let load = LoadStats { max_cycles, mean_cycles: sum_cycles as f64 / p as f64 };
            self.stats.n_modules = p;
            self.stats.record(breakdown, load, sent, 0);

            let round = self.trace_round;
            self.trace_round += 1;
            if self.sink.enabled() {
                let cycles: Vec<u64> = ctxs.iter().map(|c| c.cycles).collect();
                let (cycle_hist, stragglers) = summarize_cycles(&cycles);
                self.sink.record(RoundRecord {
                    round,
                    phase: self.current_phase(),
                    kind: RoundKind::Broadcast,
                    breakdown,
                    cpu_to_pim_bytes: sent,
                    pim_to_cpu_bytes: 0,
                    tasks: 1,
                    replies: 0,
                    active_modules: p as u32,
                    max_cycles,
                    mean_cycles: sum_cycles as f64 / p as f64,
                    sum_cycles,
                    cycle_hist,
                    stragglers,
                    faults: Vec::new(),
                });
            }
            if self.metrics.enabled() {
                let cycles: Vec<u64> = ctxs.iter().map(|c| c.cycles).collect();
                self.meter_round(
                    "broadcast",
                    &breakdown,
                    sent,
                    0,
                    1,
                    max_cycles,
                    &cycles,
                    &[],
                    &[],
                    0,
                );
            }
        }
    }

    /// Fault-aware sibling of [`Self::broadcast`]: dead modules are
    /// skipped entirely (the host knows the dead set and does not pay to
    /// reach them); live modules face the same wave/retry machinery as
    /// [`Self::run_round_faulty`], with delivery failures re-sending the
    /// broadcast value. A broadcast has no gathered reply, so drop/corrupt
    /// draws model a lost delivery acknowledgement.
    fn broadcast_faulty<T, F>(&mut self, item: T, handler: F)
    where
        T: Wire + Sync,
        F: Fn(usize, &mut M, &mut PimCtx, &T) + Sync,
    {
        let bytes = item.wire_bytes();
        let p = self.modules.len();
        let round = self.trace_round;
        let plan = if self.accounting { self.plan.clone() } else { None };
        let factor = plan.as_ref().map_or(1.0, |pl| pl.config().straggler_factor.max(1.0));

        let participating: Vec<bool> = (0..p).map(|i| !self.dead[i]).collect();
        let fates = self.draw_fates(round, &participating);

        let ctxs: Vec<PimCtx> = self
            .modules
            .par_iter_mut()
            .enumerate()
            .map(|(i, m)| {
                let mut ctx = PimCtx::new();
                if fates[i].success {
                    handler(i, m, &mut ctx, &item);
                }
                ctx
            })
            .collect();

        if self.accounting {
            let retries_before = self.fault_log.retries;
            let mut sent = 0u64;
            let mut calls = 0u64;
            let mut base_time = vec![0.0f64; p];
            let mut eff_cycles = vec![0u64; p];
            let mut events: Vec<FaultEvent> = Vec::new();
            for i in 0..p {
                let fate = &fates[i];
                base_time[i] = ctxs[i].time_s(self.cfg.pim_freq_hz, self.cfg.pim_local_bw);
                let n_att = fate.attempts.len() as u64;
                sent += bytes * n_att;
                calls += n_att;
                self.fault_log.retransmitted_bytes += bytes * n_att.saturating_sub(1);
                self.fault_log.retries += n_att.saturating_sub(1);
                let mut mult = 0.0f64;
                for (a, &o) in fate.attempts.iter().enumerate() {
                    match o {
                        AttemptOutcome::Ok
                        | AttemptOutcome::ReplyDrop
                        | AttemptOutcome::ReplyCorrupt => mult += 1.0,
                        AttemptOutcome::Straggler => mult += factor,
                        AttemptOutcome::ExecFault | AttemptOutcome::Death => {}
                    }
                    self.fault_log.count(o);
                    let kind = match o {
                        AttemptOutcome::Ok | AttemptOutcome::Death => continue,
                        AttemptOutcome::Straggler => FaultKind::Straggler,
                        AttemptOutcome::ExecFault => FaultKind::ExecFault,
                        AttemptOutcome::ReplyDrop => FaultKind::ReplyDrop,
                        AttemptOutcome::ReplyCorrupt => FaultKind::ReplyCorrupt,
                    };
                    events.push(FaultEvent { module: i as u32, attempt: a as u32, kind });
                }
                if fate.died {
                    events.push(FaultEvent {
                        module: i as u32,
                        attempt: fate.attempts.len().saturating_sub(1) as u32,
                        kind: FaultKind::Death,
                    });
                }
                eff_cycles[i] = (ctxs[i].cycles as f64 * mult) as u64;
            }

            let mut max_cycles = 0u64;
            let mut sum_cycles = 0u64;
            for &c in &eff_cycles {
                max_cycles = max_cycles.max(c);
                sum_cycles += c;
            }
            self.stats.total_pim_cycles += sum_cycles;

            let n_waves = fates.iter().map(|f| f.attempts.len()).max().unwrap_or(0);
            let mut pim_s = 0.0f64;
            let mut timeout_waves = 0u64;
            for w in 0..n_waves {
                let mut wave_max = 0.0f64;
                let mut wave_failed = false;
                for i in 0..p {
                    if let Some(&o) = fates[i].attempts.get(w) {
                        let t = match o {
                            AttemptOutcome::Ok
                            | AttemptOutcome::ReplyDrop
                            | AttemptOutcome::ReplyCorrupt => base_time[i],
                            AttemptOutcome::Straggler => base_time[i] * factor,
                            AttemptOutcome::ExecFault | AttemptOutcome::Death => 0.0,
                        };
                        wave_max = wave_max.max(t);
                        if !o.is_success() {
                            wave_failed = true;
                        }
                    }
                }
                pim_s += wave_max;
                if wave_failed {
                    timeout_waves += 1;
                }
            }
            let timeout_s = plan.as_ref().map_or(0.0, |pl| pl.config().timeout_s);
            self.fault_log.timeout_s += timeout_waves as f64 * timeout_s;

            let overhead = self.cfg.mux_switch_s
                + calls as f64 * self.cfg.call_overhead_s() / self.cfg.host_threads as f64
                + timeout_waves as f64 * timeout_s;
            let breakdown = RoundBreakdown {
                pim_s,
                comm_s: self.cfg.transfer_time_s(sent, bytes),
                overhead_s: overhead,
            };
            let load = LoadStats { max_cycles, mean_cycles: sum_cycles as f64 / p as f64 };
            self.stats.n_modules = p;
            self.stats.record(breakdown, load, sent, 0);

            self.trace_round += 1;
            if self.metrics.enabled() {
                self.meter_round(
                    "broadcast",
                    &breakdown,
                    sent,
                    0,
                    1,
                    max_cycles,
                    &eff_cycles,
                    &[],
                    &events,
                    self.fault_log.retries - retries_before,
                );
            }
            if self.sink.enabled() {
                let (cycle_hist, stragglers) = summarize_cycles(&eff_cycles);
                self.sink.record(RoundRecord {
                    round,
                    phase: self.current_phase(),
                    kind: RoundKind::Broadcast,
                    breakdown,
                    cpu_to_pim_bytes: sent,
                    pim_to_cpu_bytes: 0,
                    tasks: 1,
                    replies: 0,
                    active_modules: fates.iter().filter(|f| f.success).count() as u32,
                    max_cycles,
                    mean_cycles: sum_cycles as f64 / p as f64,
                    sum_cycles,
                    cycle_hist,
                    stragglers,
                    faults: events,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine(p: usize) -> PimSystem<u64> {
        PimSystem::new(MachineConfig::with_modules(p), |_| 0u64)
    }

    #[test]
    fn round_scatters_and_gathers_in_order() {
        let mut sys = machine(4);
        let tasks: Vec<Vec<u32>> = vec![vec![1], vec![2, 2], vec![], vec![4]];
        let replies = sys.execute_round(tasks, |i, state, ctx, t| {
            *state += t.len() as u64;
            ctx.op(t.len() as u64);
            t.into_iter().map(|x| x as u64 * 10 + i as u64).collect::<Vec<u64>>()
        });
        assert_eq!(replies[0], vec![10]);
        assert_eq!(replies[1], vec![21, 21]);
        assert!(replies[2].is_empty());
        assert_eq!(replies[3], vec![43]);
        assert_eq!(*sys.peek(1), 2);
        assert_eq!(*sys.peek(2), 0, "idle module must not run");
    }

    #[test]
    fn byte_accounting_counts_both_directions() {
        let mut sys = machine(2);
        let tasks: Vec<Vec<u32>> = vec![vec![1, 2, 3], vec![]];
        let _ = sys.execute_round(tasks, |_, _, _, t| {
            t.into_iter().map(|x| x as u64).collect::<Vec<u64>>()
        });
        let s = sys.stats();
        assert_eq!(s.cpu_to_pim_bytes, 12);
        assert_eq!(s.pim_to_cpu_bytes, 24);
        assert_eq!(s.rounds, 1);
    }

    #[test]
    fn pim_time_is_max_over_modules() {
        let mut sys = machine(4);
        let tasks: Vec<Vec<u32>> = vec![vec![0], vec![0], vec![0], vec![0]];
        let _ = sys.execute_round(tasks, |i, _, ctx, _| {
            ctx.op(if i == 2 { 3500 } else { 35 });
            Vec::<u32>::new()
        });
        // 3500 cycles at 350 MHz = 10 µs.
        assert!((sys.stats().pim_s - 1e-5).abs() < 1e-9);
        assert!(sys.stats().worst_imbalance > 3.0);
    }

    #[test]
    fn warmup_rounds_are_free() {
        let mut sys = machine(2);
        sys.accounting = false;
        let _ = sys.execute_round(vec![vec![1u32], vec![2u32]], |_, s, ctx, t| {
            *s += 1;
            ctx.op(1000);
            t
        });
        assert_eq!(sys.stats().rounds, 0);
        assert_eq!(sys.stats().channel_bytes(), 0);
        assert_eq!(*sys.peek(0), 1, "state still mutated during warmup");
    }

    #[test]
    fn broadcast_charges_p_copies() {
        let mut sys = machine(8);
        sys.broadcast(7u64, |_, s, ctx, v| {
            *s = *v;
            ctx.op(1);
        });
        assert_eq!(sys.stats().cpu_to_pim_bytes, 8 * 8);
        for i in 0..8 {
            assert_eq!(*sys.peek(i), 7);
        }
    }

    #[test]
    fn sdk_api_has_higher_overhead() {
        let run = |api| {
            let mut cfg = MachineConfig::with_modules(64);
            cfg.api = api;
            let mut sys = PimSystem::new(cfg, |_| 0u64);
            let tasks: Vec<Vec<u32>> = (0..64).map(|_| vec![1u32]).collect();
            let _ = sys.execute_round(tasks, |_, _, _, _| vec![1u32]);
            sys.stats().overhead_s
        };
        let sdk = run(crate::config::TransferApi::Sdk);
        let direct = run(crate::config::TransferApi::Direct);
        assert!(sdk > direct);
    }

    #[test]
    #[should_panic(expected = "scattered")]
    fn too_many_task_buffers_panics() {
        let mut sys = machine(1);
        let _ = sys.execute_round(vec![vec![1u32], vec![2u32]], |_, _, _, t| t);
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;

    #[test]
    fn execute_round_all_runs_idle_modules() {
        let mut sys = PimSystem::new(MachineConfig::with_modules(3), |_| 0u64);
        let replies = sys.execute_round_all(vec![vec![5u32]], |i, s, ctx, t| {
            *s += 1 + t.len() as u64;
            ctx.op(1);
            vec![i as u32]
        });
        // All three ran; only module 0 had input.
        assert_eq!(replies.len(), 3);
        assert_eq!(*sys.peek(0), 2);
        assert_eq!(*sys.peek(1), 1);
        assert_eq!(*sys.peek(2), 1);
    }

    #[test]
    fn aggregate_imbalance_dilutes_tiny_rounds() {
        let mut sys = PimSystem::new(MachineConfig::with_modules(4), |_| 0u64);
        // Round 1: heavily imbalanced but tiny (1 module, 40 cycles).
        let _ = sys.execute_round(vec![vec![1u32]], |_, _, ctx, _| {
            ctx.op(40);
            Vec::<u32>::new()
        });
        // Round 2: big and balanced.
        let tasks: Vec<Vec<u32>> = (0..4).map(|_| vec![0u32; 10]).collect();
        let _ = sys.execute_round(tasks, |_, _, ctx, _| {
            ctx.op(100_000);
            Vec::<u32>::new()
        });
        let s = sys.stats();
        assert!(s.worst_imbalance >= 4.0, "per-round metric sees the tiny round");
        assert!(s.agg_imbalance() < 1.2, "aggregate metric must not: {:.3}", s.agg_imbalance());
    }

    #[test]
    fn summed_trace_records_reproduce_sim_stats_exactly() {
        use crate::trace::JournalSink;
        let (sink, journal) = JournalSink::new();
        let mut sys = PimSystem::new(MachineConfig::with_modules(4), |_| 0u64);
        sys.set_trace_sink(Box::new(sink));

        // A mix of round shapes: skewed execute, execute_all, broadcast.
        sys.scoped_phase("search", |s| {
            let _ = s.execute_round(vec![vec![1u32, 2], vec![3u32]], |i, _, ctx, t| {
                ctx.op((i as u64 + 1) * 500);
                ctx.mem(64);
                t
            });
        });
        sys.scoped_phase("insert", |s| {
            s.scoped_phase("maintain", |s| {
                let _ = s.execute_round_all(vec![vec![9u32]], |_, _, ctx, _| {
                    ctx.op(100);
                    vec![7u64]
                });
            });
            s.broadcast(42u64, |_, _, ctx, _| ctx.op(10));
        });

        let recs = journal.snapshot();
        assert_eq!(recs.len(), 3);
        assert_eq!(recs[0].phase, "search");
        assert_eq!(recs[1].phase, "insert/maintain");
        assert_eq!(recs[2].phase, "insert");
        assert_eq!(recs[2].kind, crate::trace::RoundKind::Broadcast);
        // Monotonic ids.
        assert!(recs.windows(2).all(|w| w[1].round == w[0].round + 1));

        // Exact reassembly of the lifetime counters from the journal.
        let s = sys.stats();
        assert_eq!(recs.iter().map(|r| r.cpu_to_pim_bytes).sum::<u64>(), s.cpu_to_pim_bytes);
        assert_eq!(recs.iter().map(|r| r.pim_to_cpu_bytes).sum::<u64>(), s.pim_to_cpu_bytes);
        assert_eq!(recs.iter().map(|r| r.sum_cycles).sum::<u64>(), s.total_pim_cycles);
        assert_eq!(recs.iter().map(|r| r.max_cycles).sum::<u64>(), s.sum_max_cycles);
        assert_eq!(recs.len() as u64, s.rounds);
        let sum = |f: fn(&crate::trace::RoundRecord) -> f64| recs.iter().map(f).sum::<f64>();
        assert!((sum(|r| r.breakdown.pim_s) - s.pim_s).abs() < 1e-15);
        assert!((sum(|r| r.breakdown.comm_s) - s.comm_s).abs() < 1e-15);
        assert!((sum(|r| r.breakdown.overhead_s) - s.overhead_s).abs() < 1e-15);
        let worst = recs.iter().map(|r| r.imbalance()).fold(0.0f64, f64::max);
        assert!((worst - s.worst_imbalance).abs() < 1e-12);
    }

    #[test]
    fn trace_round_ids_survive_stats_reset() {
        use crate::trace::JournalSink;
        let (sink, journal) = JournalSink::new();
        let mut sys = PimSystem::new(MachineConfig::with_modules(2), |_| 0u64);
        sys.set_trace_sink(Box::new(sink));
        let _ = sys.execute_round(vec![vec![1u32]], |_, _, ctx, t| {
            ctx.op(1);
            t
        });
        sys.reset_stats();
        let _ = sys.execute_round(vec![vec![2u32]], |_, _, ctx, t| {
            ctx.op(1);
            t
        });
        let recs = journal.snapshot();
        assert_eq!(recs[0].round, 0);
        assert_eq!(recs[1].round, 1, "round ids are monotonic across resets");
        assert_eq!(sys.stats().rounds, 1, "stats themselves did reset");
    }

    #[test]
    fn unaccounted_rounds_emit_no_records() {
        use crate::trace::JournalSink;
        let (sink, journal) = JournalSink::new();
        let mut sys = PimSystem::new(MachineConfig::with_modules(2), |_| 0u64);
        sys.set_trace_sink(Box::new(sink));
        sys.accounting = false;
        let _ = sys.execute_round(vec![vec![1u32]], |_, _, ctx, t| {
            ctx.op(1);
            t
        });
        assert!(journal.is_empty(), "warmup rounds stay out of the journal");
    }

    #[test]
    fn phase_labels_nest_and_unwind() {
        let mut sys = PimSystem::new(MachineConfig::with_modules(1), |_| 0u64);
        assert_eq!(sys.current_phase(), "");
        let label =
            sys.scoped_phase("insert", |s| s.scoped_phase("redistribute", |s| s.current_phase()));
        assert_eq!(label, "insert/redistribute");
        assert_eq!(sys.current_phase(), "", "labels unwind with their scopes");
    }

    #[test]
    fn stats_reset_clears_everything() {
        let mut sys = PimSystem::new(MachineConfig::with_modules(2), |_| 0u64);
        let _ = sys.execute_round(vec![vec![1u32], vec![2u32]], |_, _, ctx, t| {
            ctx.op(5);
            t
        });
        assert!(sys.stats().rounds > 0);
        sys.reset_stats();
        assert_eq!(sys.stats().rounds, 0);
        assert_eq!(sys.stats().channel_bytes(), 0);
        assert_eq!(sys.stats().total_pim_cycles, 0);
    }
}

#[cfg(test)]
mod fault_tests {
    use super::*;
    use crate::fault::FaultConfig;

    fn run_workload(sys: &mut PimSystem<u64>, rounds: u64) {
        for r in 0..rounds {
            let p = sys.n_modules();
            let tasks: Vec<Vec<u32>> = (0..p)
                .map(|i| if sys.is_dead(i) { vec![] } else { vec![r as u32, i as u32] })
                .collect();
            let _ = sys.execute_round(tasks, |_, s, ctx, t| {
                ctx.op(100 + t.len() as u64 * 7);
                ctx.mem(32);
                *s += t.len() as u64;
                t
            });
            sys.broadcast(r, |_, s, ctx, v| {
                ctx.op(5);
                *s ^= v;
            });
        }
    }

    #[test]
    fn zero_rate_plan_is_charge_identical_to_no_plan() {
        let mut plain = PimSystem::new(MachineConfig::with_modules(8), |_| 0u64);
        let mut planned = PimSystem::new(MachineConfig::with_modules(8), |_| 0u64);
        planned.set_fault_plan(Some(FaultPlan::new(FaultConfig::uniform(0.0, 99))));
        run_workload(&mut plain, 20);
        run_workload(&mut planned, 20);
        let (a, b) = (plain.stats(), planned.stats());
        assert_eq!(a.cpu_to_pim_bytes, b.cpu_to_pim_bytes);
        assert_eq!(a.pim_to_cpu_bytes, b.pim_to_cpu_bytes);
        assert_eq!(a.total_pim_cycles, b.total_pim_cycles);
        assert_eq!(a.pim_s.to_bits(), b.pim_s.to_bits(), "same float ops in the same order");
        assert_eq!(a.comm_s.to_bits(), b.comm_s.to_bits());
        assert_eq!(a.overhead_s.to_bits(), b.overhead_s.to_bits());
        assert_eq!(planned.fault_log().total_faults(), 0);
    }

    #[test]
    fn active_plan_is_deterministic() {
        let mk = || {
            let mut sys = PimSystem::new(MachineConfig::with_modules(8), |_| 0u64);
            sys.set_fault_plan(Some(FaultPlan::new(FaultConfig::uniform(0.05, 7))));
            run_workload(&mut sys, 30);
            sys
        };
        let (a, b) = (mk(), mk());
        assert_eq!(a.fault_log(), b.fault_log());
        assert_eq!(a.stats().pim_s.to_bits(), b.stats().pim_s.to_bits());
        assert_eq!(a.stats().overhead_s.to_bits(), b.stats().overhead_s.to_bits());
        assert_eq!(a.stats().cpu_to_pim_bytes, b.stats().cpu_to_pim_bytes);
        assert!(a.fault_log().total_faults() > 0, "5% over 240 module-rounds must fire");
    }

    #[test]
    fn faults_cost_more_than_fault_free() {
        let mut plain = PimSystem::new(MachineConfig::with_modules(8), |_| 0u64);
        let mut faulty = PimSystem::new(MachineConfig::with_modules(8), |_| 0u64);
        faulty.set_fault_plan(Some(FaultPlan::new(FaultConfig {
            p_death: 0.0,
            ..FaultConfig::uniform(0.2, 3)
        })));
        run_workload(&mut plain, 20);
        run_workload(&mut faulty, 20);
        assert!(faulty.stats().cpu_to_pim_bytes > plain.stats().cpu_to_pim_bytes, "retransmits");
        assert!(faulty.stats().overhead_s > plain.stats().overhead_s, "timeouts");
        assert!(faulty.fault_log().retries > 0);
    }

    #[test]
    fn killed_module_stops_executing_and_is_reported() {
        let mut sys = PimSystem::new(MachineConfig::with_modules(4), |_| 0u64);
        sys.kill_module(2);
        assert!(sys.is_dead(2));
        assert_eq!(sys.n_live(), 3);
        assert_eq!(sys.take_newly_dead(), vec![2]);
        assert!(sys.take_newly_dead().is_empty(), "drain empties the list");
        // run_all round: dead module's handler must not run.
        let _ = sys.execute_round_all(Vec::<Vec<u32>>::new(), |_, s, ctx, _| {
            ctx.op(1);
            *s += 1;
            Vec::<u32>::new()
        });
        sys.broadcast(9u64, |_, s, ctx, _| {
            ctx.op(1);
            *s += 100;
        });
        assert_eq!(*sys.peek(2), 0, "dead module state is frozen");
        assert_eq!(*sys.peek(1), 101);
    }

    #[test]
    fn transient_faults_commit_exactly_once() {
        // Atomic attempts: no matter how many retries a round takes, the
        // handler's state mutation applies exactly once.
        let mut sys = PimSystem::new(MachineConfig::with_modules(8), |_| 0u64);
        sys.set_fault_plan(Some(FaultPlan::new(FaultConfig {
            p_death: 0.0,
            max_retries: 20, // high enough that nothing ever dies
            ..FaultConfig::uniform(0.3, 5)
        })));
        for _ in 0..50 {
            let tasks: Vec<Vec<u32>> = (0..8).map(|_| vec![1]).collect();
            let _ = sys.execute_round(tasks, |_, s, ctx, t| {
                ctx.op(10);
                *s += 1;
                t
            });
        }
        assert!(sys.fault_log().retries > 0, "30% fault mass must retry sometimes");
        for i in 0..8 {
            assert_eq!(*sys.peek(i), 50, "module {i} must commit each round exactly once");
        }
    }

    #[test]
    fn death_draw_eventually_kills_and_replies_go_missing() {
        let mut sys = PimSystem::new(MachineConfig::with_modules(8), |_| 0u64);
        sys.set_fault_plan(Some(FaultPlan::new(FaultConfig {
            p_death: 0.05,
            ..FaultConfig::disabled(1234)
        })));
        let mut saw_missing_reply = false;
        for r in 0..100u32 {
            let tasks: Vec<Vec<u32>> =
                (0..8).map(|i| if sys.is_dead(i) { vec![] } else { vec![r] }).collect();
            let expected: Vec<bool> = tasks.iter().map(|t| !t.is_empty()).collect();
            let replies = sys.execute_round(tasks, |_, _, ctx, t| {
                ctx.op(1);
                t
            });
            for (i, r) in replies.iter().enumerate() {
                if expected[i] && r.is_empty() {
                    saw_missing_reply = true; // died this round, before committing
                }
            }
        }
        assert!(sys.fault_log().deaths > 0, "5% death rate over 100 rounds");
        assert!(saw_missing_reply, "a death mid-round must surface as a missing reply");
        assert_eq!(
            sys.take_newly_dead().len() as u64,
            sys.fault_log().deaths,
            "every death is reported exactly once"
        );
    }

    #[test]
    fn salvage_charges_channel_traffic_and_journals() {
        use crate::trace::JournalSink;
        let (sink, journal) = JournalSink::new();
        let mut sys = PimSystem::new(MachineConfig::with_modules(4), |i| i as u64);
        sys.set_trace_sink(Box::new(sink));
        sys.kill_module(3);
        let before = sys.stats().pim_to_cpu_bytes;
        let got = sys.salvage(3, |m| (*m, 4096));
        assert_eq!(got, 3, "salvage reads the dead module's resident state");
        assert_eq!(sys.stats().pim_to_cpu_bytes - before, 4096);
        assert_eq!(sys.fault_log().salvages, 1);
        assert_eq!(sys.fault_log().salvaged_bytes, 4096);
        let recs = journal.snapshot();
        let rec = recs.last().unwrap();
        assert_eq!(rec.kind, RoundKind::Salvage);
        assert_eq!(rec.pim_to_cpu_bytes, 4096);
        assert_eq!(rec.faults.len(), 1);
        assert_eq!(rec.faults[0].kind, FaultKind::Salvage);
    }

    #[test]
    fn fault_events_land_in_the_journal() {
        use crate::trace::JournalSink;
        let (sink, journal) = JournalSink::new();
        let mut sys = PimSystem::new(MachineConfig::with_modules(8), |_| 0u64);
        sys.set_trace_sink(Box::new(sink));
        sys.set_fault_plan(Some(FaultPlan::new(FaultConfig {
            p_death: 0.0,
            ..FaultConfig::uniform(0.2, 8)
        })));
        run_workload(&mut sys, 10);
        let recs = journal.snapshot();
        let n_events: usize = recs.iter().map(|r| r.faults.len()).sum();
        assert_eq!(n_events as u64, sys.fault_log().total_faults());
        assert!(n_events > 0);
    }

    #[test]
    fn warmup_rounds_never_inject() {
        let mut sys = PimSystem::new(MachineConfig::with_modules(4), |_| 0u64);
        sys.set_fault_plan(Some(FaultPlan::new(FaultConfig::uniform(0.9, 2))));
        sys.accounting = false;
        for _ in 0..20 {
            let tasks: Vec<Vec<u32>> = (0..4).map(|_| vec![1]).collect();
            let _ = sys.execute_round(tasks, |_, s, _, t| {
                *s += 1;
                t
            });
        }
        assert_eq!(sys.fault_log().total_faults(), 0, "build/warmup is fault-free");
        for i in 0..4 {
            assert_eq!(*sys.peek(i), 20);
        }
    }
}
