//! Simulation counters: time, traffic, rounds, and load balance.

use serde::Serialize;

/// Per-round time decomposition, matching the paper's Fig. 6 categories.
#[derive(Clone, Copy, Debug, Default, Serialize)]
pub struct RoundBreakdown {
    /// Max-over-modules core time for the round (the "PIM time").
    pub pim_s: f64,
    /// Channel transfer time.
    pub comm_s: f64,
    /// Fixed overheads: mux switch + transfer-call overhead.
    pub overhead_s: f64,
}

impl RoundBreakdown {
    /// Total simulated seconds of the round.
    pub fn total_s(&self) -> f64 {
        self.pim_s + self.comm_s + self.overhead_s
    }
}

/// Load-balance summary of one round.
#[derive(Clone, Copy, Debug, Default, Serialize)]
pub struct LoadStats {
    /// Maximum per-module cycles in the round.
    pub max_cycles: u64,
    /// Mean per-module cycles over *all* modules (idle ones count as 0).
    pub mean_cycles: f64,
}

impl LoadStats {
    /// Max/mean imbalance ratio (1.0 = perfectly balanced; undefined rounds
    /// with no PIM work report 1.0).
    pub fn imbalance(&self) -> f64 {
        if self.mean_cycles <= 0.0 {
            1.0
        } else {
            self.max_cycles as f64 / self.mean_cycles
        }
    }
}

/// Lifetime counters of a [`crate::PimSystem`]. Reset between warmup and
/// measurement phases.
#[derive(Clone, Debug, Default, Serialize)]
pub struct SimStats {
    /// Number of BSP rounds executed.
    pub rounds: u64,
    /// Bytes sent CPU → PIM.
    pub cpu_to_pim_bytes: u64,
    /// Bytes sent PIM → CPU.
    pub pim_to_cpu_bytes: u64,
    /// Sum over rounds of the max-over-modules core time.
    pub pim_s: f64,
    /// Sum of channel transfer time.
    pub comm_s: f64,
    /// Sum of fixed overheads (mux + call overhead).
    pub overhead_s: f64,
    /// Worst max/mean cycle imbalance seen in any round with PIM work.
    pub worst_imbalance: f64,
    /// Total PIM core cycles across all modules (for energy-style metrics).
    pub total_pim_cycles: u64,
    /// Sum over rounds of the per-round maximum module cycles (the
    /// straggler path length).
    pub sum_max_cycles: u64,
    /// Number of modules (for aggregate imbalance).
    pub n_modules: usize,
    /// Per-round imbalance, indexed by round number (0.0 for rounds without
    /// PIM work, mirroring how such rounds never move `worst_imbalance`).
    /// Lets [`Self::since`] report the *window's* worst imbalance instead of
    /// the lifetime one.
    #[serde(skip)]
    pub imbalance_history: Vec<f64>,
}

impl SimStats {
    /// Total CPU⇄PIM traffic in bytes (the PIM half of the Fig. 5 traffic
    /// metric).
    pub fn channel_bytes(&self) -> u64 {
        self.cpu_to_pim_bytes + self.pim_to_cpu_bytes
    }

    /// Total simulated seconds spent in PIM rounds (excludes host compute,
    /// which the host algorithm accounts via its `CpuMeter`).
    pub fn round_time_s(&self) -> f64 {
        self.pim_s + self.comm_s + self.overhead_s
    }

    /// Cycle-weighted load imbalance: the straggler path (Σ per-round max
    /// cycles) over the perfectly-balanced path (Σ cycles / P). Unlike
    /// [`Self::worst_imbalance`], tiny management rounds barely move it.
    pub fn agg_imbalance(&self) -> f64 {
        if self.total_pim_cycles == 0 || self.n_modules == 0 {
            return 1.0;
        }
        self.sum_max_cycles as f64 / (self.total_pim_cycles as f64 / self.n_modules as f64)
    }

    /// Records one round.
    pub fn record(&mut self, b: RoundBreakdown, load: LoadStats, sent: u64, recv: u64) {
        self.rounds += 1;
        self.cpu_to_pim_bytes += sent;
        self.pim_to_cpu_bytes += recv;
        self.pim_s += b.pim_s;
        self.comm_s += b.comm_s;
        self.overhead_s += b.overhead_s;
        let im = if load.max_cycles > 0 {
            let im = load.imbalance();
            self.worst_imbalance = self.worst_imbalance.max(im);
            im
        } else {
            0.0
        };
        self.imbalance_history.push(im);
        self.sum_max_cycles += load.max_cycles;
    }

    /// Aggregates the stats of ranks that executed **concurrently** (the
    /// shard router's scatter phase): traffic, cycles, and rounds add —
    /// they are real work done somewhere — but wall-clock-like time fields
    /// (`pim_s`, `comm_s`, `overhead_s`) take the **max** over ranks,
    /// because concurrent ranks overlap and the straggler sets the phase
    /// time. `worst_imbalance` takes the max; `n_modules` adds (the fleet
    /// is the union of every rank's modules); `sum_max_cycles` adds (each
    /// rank's straggler path is still serial within that rank);
    /// `imbalance_history` is dropped — per-round windows are meaningless
    /// across interleaved rank timelines. Returns the default stats for an
    /// empty slice.
    pub fn aggregate_concurrent(ranks: &[SimStats]) -> SimStats {
        let mut agg = SimStats::default();
        for s in ranks {
            agg.rounds += s.rounds;
            agg.cpu_to_pim_bytes += s.cpu_to_pim_bytes;
            agg.pim_to_cpu_bytes += s.pim_to_cpu_bytes;
            agg.pim_s = agg.pim_s.max(s.pim_s);
            agg.comm_s = agg.comm_s.max(s.comm_s);
            agg.overhead_s = agg.overhead_s.max(s.overhead_s);
            agg.worst_imbalance = agg.worst_imbalance.max(s.worst_imbalance);
            agg.total_pim_cycles += s.total_pim_cycles;
            agg.sum_max_cycles += s.sum_max_cycles;
            agg.n_modules += s.n_modules;
        }
        agg
    }

    /// Difference `self - earlier` for phase-relative measurements.
    ///
    /// `earlier` must be a snapshot of this same stats object taken at some
    /// earlier round (the only way the subtraction is meaningful). The
    /// result's `worst_imbalance` covers only the rounds of the window —
    /// previously it leaked the lifetime value, so a balanced phase measured
    /// after one imbalanced round reported the stale maximum forever.
    pub fn since(&self, earlier: &SimStats) -> SimStats {
        let lo = (earlier.rounds as usize).min(self.imbalance_history.len());
        let hi = (self.rounds as usize).min(self.imbalance_history.len());
        let window = self.imbalance_history[lo..hi].to_vec();
        let worst = window.iter().fold(0.0f64, |a, &b| a.max(b));
        SimStats {
            rounds: self.rounds - earlier.rounds,
            cpu_to_pim_bytes: self.cpu_to_pim_bytes - earlier.cpu_to_pim_bytes,
            pim_to_cpu_bytes: self.pim_to_cpu_bytes - earlier.pim_to_cpu_bytes,
            pim_s: self.pim_s - earlier.pim_s,
            comm_s: self.comm_s - earlier.comm_s,
            overhead_s: self.overhead_s - earlier.overhead_s,
            worst_imbalance: worst,
            total_pim_cycles: self.total_pim_cycles - earlier.total_pim_cycles,
            sum_max_cycles: self.sum_max_cycles - earlier.sum_max_cycles,
            n_modules: self.n_modules.max(earlier.n_modules),
            imbalance_history: window,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn imbalance_of_idle_round_is_one() {
        let l = LoadStats { max_cycles: 0, mean_cycles: 0.0 };
        assert_eq!(l.imbalance(), 1.0);
    }

    #[test]
    fn record_accumulates() {
        let mut s = SimStats::default();
        s.record(
            RoundBreakdown { pim_s: 1.0, comm_s: 2.0, overhead_s: 0.5 },
            LoadStats { max_cycles: 10, mean_cycles: 5.0 },
            100,
            200,
        );
        assert_eq!(s.rounds, 1);
        assert_eq!(s.channel_bytes(), 300);
        assert!((s.round_time_s() - 3.5).abs() < 1e-12);
        assert!((s.worst_imbalance - 2.0).abs() < 1e-12);
    }

    #[test]
    fn since_subtracts() {
        let mut a = SimStats::default();
        a.record(
            RoundBreakdown { pim_s: 1.0, comm_s: 0.0, overhead_s: 0.0 },
            LoadStats::default(),
            10,
            20,
        );
        let snapshot = a.clone();
        a.record(
            RoundBreakdown { pim_s: 2.0, comm_s: 0.0, overhead_s: 0.0 },
            LoadStats::default(),
            1,
            2,
        );
        let d = a.since(&snapshot);
        assert_eq!(d.rounds, 1);
        assert_eq!(d.cpu_to_pim_bytes, 1);
        assert!((d.pim_s - 2.0).abs() < 1e-12);
    }

    #[test]
    fn since_reports_window_imbalance_not_lifetime() {
        let mut s = SimStats::default();
        // Round 1: heavily imbalanced (max 40, mean 10 → 4.0).
        s.record(RoundBreakdown::default(), LoadStats { max_cycles: 40, mean_cycles: 10.0 }, 0, 0);
        let snapshot = s.clone();
        // Round 2: perfectly balanced (max 100, mean 100 → 1.0).
        s.record(
            RoundBreakdown::default(),
            LoadStats { max_cycles: 100, mean_cycles: 100.0 },
            0,
            0,
        );
        assert!((s.worst_imbalance - 4.0).abs() < 1e-12, "lifetime keeps the max");
        let w = s.since(&snapshot);
        assert!(
            (w.worst_imbalance - 1.0).abs() < 1e-12,
            "window must see only its own rounds, got {}",
            w.worst_imbalance
        );
        // Window with no PIM work reports the 0.0 default, like a fresh stats.
        let empty = s.since(&s.clone());
        assert_eq!(empty.worst_imbalance, 0.0);
        assert_eq!(empty.rounds, 0);
    }

    #[test]
    fn aggregate_concurrent_sums_work_and_maxes_time() {
        let mut a = SimStats::default();
        a.record(
            RoundBreakdown { pim_s: 1.0, comm_s: 0.5, overhead_s: 0.1 },
            LoadStats { max_cycles: 10, mean_cycles: 5.0 },
            100,
            50,
        );
        a.total_pim_cycles = 40;
        a.n_modules = 8;
        let mut b = SimStats::default();
        b.record(
            RoundBreakdown { pim_s: 3.0, comm_s: 0.2, overhead_s: 0.4 },
            LoadStats { max_cycles: 20, mean_cycles: 20.0 },
            7,
            3,
        );
        b.total_pim_cycles = 160;
        b.n_modules = 8;
        let g = SimStats::aggregate_concurrent(&[a, b]);
        assert_eq!(g.rounds, 2);
        assert_eq!(g.channel_bytes(), 160);
        assert!((g.pim_s - 3.0).abs() < 1e-12, "straggler rank sets phase time");
        assert!((g.comm_s - 0.5).abs() < 1e-12);
        assert_eq!(g.total_pim_cycles, 200);
        assert_eq!(g.sum_max_cycles, 30);
        assert_eq!(g.n_modules, 16);
        assert!((g.worst_imbalance - 2.0).abs() < 1e-12);
        assert_eq!(SimStats::aggregate_concurrent(&[]).rounds, 0);
    }

    #[test]
    fn nested_since_windows_stay_consistent() {
        let mut s = SimStats::default();
        for (max, mean) in [(30u64, 10.0f64), (20, 10.0), (10, 10.0)] {
            s.record(
                RoundBreakdown::default(),
                LoadStats { max_cycles: max, mean_cycles: mean },
                0,
                0,
            );
        }
        let snap1 = SimStats::default();
        let whole = s.since(&snap1);
        assert!((whole.worst_imbalance - 3.0).abs() < 1e-12);
        // A window over the last two rounds sees 2.0, not 3.0.
        let mut snap2 = SimStats::default();
        snap2.record(
            RoundBreakdown::default(),
            LoadStats { max_cycles: 30, mean_cycles: 10.0 },
            0,
            0,
        );
        let tail = s.since(&snap2);
        assert!((tail.worst_imbalance - 2.0).abs() < 1e-12);
    }
}
