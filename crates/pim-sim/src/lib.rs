//! A deterministic UPMEM-class BLIMP machine simulator.
//!
//! This crate is the substitute for the paper's real PIM server (see
//! DESIGN.md §1). It implements the PIM Model of \[47\] — the abstraction the
//! paper's own analysis is written in — plus the two practical effects the
//! paper highlights beyond the model:
//!
//! * **BSP rounds with mux-switch overhead** (§2.2, §7.2): every round pays a
//!   fixed latency for switching MRAM control between the CPU and PIM cores.
//! * **Per-transfer SDK call overhead vs the Direct API** (§6): each
//!   module-targeted transfer in a round costs a per-call CPU-side overhead,
//!   with the Direct Interface reducing it by an order of magnitude.
//!
//! The machine consists of `P` modules, each owning arbitrary Rust state
//! (`M`) standing in for its local memory, and a weak core modeled by a
//! cycle meter ([`ctx::PimCtx`]) with UPMEM's published instruction costs
//! (1-cycle word ops, 32-cycle multiply/divide \[37\]). Rounds execute the
//! per-module handlers in parallel with rayon — the simulation is parallel,
//! but all *accounting* is deterministic: byte counts and cycle counts do
//! not depend on host thread scheduling.
//!
//! Simulated time decomposes exactly the way the paper's Fig. 6 does:
//! CPU time (charged by the host algorithm through `pim_memsim::CpuMeter`),
//! PIM time (max per-module core time per round), and communication time
//! (channel transfer + mux/call overheads).

#![deny(missing_docs)]

pub mod config;
pub mod ctx;
pub mod energy;
pub mod fault;
pub mod metrics;
pub mod placement;
pub mod stats;
pub mod system;
pub mod trace;
pub mod wire;

pub use config::MachineConfig;
pub use ctx::PimCtx;
pub use energy::{EnergyEstimate, EnergyModel};
pub use fault::{FaultConfig, FaultEvent, FaultKind, FaultLog, FaultPlan};
pub use metrics::{log2_bucket, quantile_sorted, Histogram, Metrics, MetricsRegistry, Samples};
pub use placement::{hash_place, rendezvous_owner};
pub use stats::{LoadStats, RoundBreakdown, SimStats};
pub use system::{PimSystem, SimCounters};
pub use trace::{Journal, JournalSink, NullSink, RoundKind, RoundRecord, TraceSink};
pub use wire::{checksum_bytes, Dec, Enc, ShortRead, Wire};
