//! A lock-cheap registry of named counters, gauges, and log₂ histograms.
//!
//! This is the measurement substrate of the observability layer (see
//! README "Metrics & profiling"): the simulator publishes per-round and
//! per-module counters here, the host index publishes batch/splice/recovery
//! counters, and the bench harness publishes the host cache-model counters
//! — all under one [`Metrics`] handle that defaults to **disabled** and
//! costs a single branch per feeding site when off.
//!
//! # Determinism
//!
//! All registry updates happen from *sequential* accounting code (the
//! post-round folds of [`PimSystem`](crate::PimSystem), the host's
//! measurement scaffolding), never from inside parallel module handlers, so
//! a snapshot is byte-identical at any host thread count — the same
//! contract the trace journal meets, and a tested invariant
//! (`tests/metrics_and_perf.rs`). Families and series are stored in
//! `BTreeMap`s, so both snapshot formats are sorted and stable.
//!
//! # Snapshot formats
//!
//! * [`MetricsRegistry::snapshot_text`] — Prometheus-exposition-style text
//!   (`# TYPE` headers, one `name{labels} value` line per series, sorted).
//! * [`MetricsRegistry::snapshot_json`] — one flat JSON object mapping the
//!   same series keys to values (histograms become
//!   `{"buckets":[...],"count":n,"sum":x}`), the form embedded in the
//!   bench `--json` perf reports and consumed by `perf_diff`.
//!
//! The module also hosts the shared percentile/histogram math: the exact
//! sample quantile ([`quantile_sorted`], used by the `latency_p99` bench)
//! and the log₂ bucketing ([`log2_bucket`], shared with the trace layer's
//! cycle histograms) live here so there is exactly one implementation of
//! each.

use serde::Serialize;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// Number of log₂ buckets in a registry [`Histogram`].
pub const HIST_BUCKETS: usize = 32;

/// The log₂ bucket of `v`: bucket 0 holds `v = 0`, bucket `i ≥ 1` holds
/// `2^(i-1) ≤ v < 2^i`, and the last bucket absorbs everything larger.
/// This is the single bucketing function shared by the registry histograms
/// and the trace layer's per-round cycle histograms.
#[inline]
pub fn log2_bucket(v: u64, n_buckets: usize) -> usize {
    if v == 0 {
        0
    } else {
        (64 - v.leading_zeros() as usize).min(n_buckets - 1)
    }
}

/// Exact sample quantile over an ascending-sorted slice, using the
/// nearest-rank-below rule `sorted[⌊(len−1)·q⌋]` (the formula the latency
/// bench has always used; lifted here so there is one implementation).
///
/// Panics on an empty slice — a quantile of nothing is a caller bug.
#[inline]
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    sorted[((sorted.len() - 1) as f64 * q.clamp(0.0, 1.0)) as usize]
}

/// A growable set of f64 samples with exact quantiles (sorts lazily).
///
/// ```
/// use pim_sim::metrics::Samples;
/// let mut s = Samples::new();
/// for v in [5.0, 1.0, 3.0, 2.0, 4.0] {
///     s.push(v);
/// }
/// assert_eq!(s.quantile(0.5), 3.0);
/// assert_eq!(s.quantile(1.0), 5.0);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Samples {
    xs: Vec<f64>,
    sorted: bool,
}

impl Samples {
    /// An empty sample set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one sample.
    pub fn push(&mut self, v: f64) {
        self.xs.push(v);
        self.sorted = false;
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// Exact quantile by [`quantile_sorted`]. Panics when empty.
    pub fn quantile(&mut self, q: f64) -> f64 {
        if !self.sorted {
            self.xs.sort_by(|a, b| a.partial_cmp(b).expect("samples must not be NaN"));
            self.sorted = true;
        }
        quantile_sorted(&self.xs, q)
    }

    /// Largest sample. Panics when empty.
    pub fn max(&mut self) -> f64 {
        self.quantile(1.0)
    }

    /// Arithmetic mean (0 when empty). Reported alongside quantiles by the
    /// serving benches; note that under open-loop load the mean hides the
    /// tail — compare p99/p999, not means (EXPERIMENTS.md §E-S).
    pub fn mean(&self) -> f64 {
        if self.xs.is_empty() {
            0.0
        } else {
            self.xs.iter().sum::<f64>() / self.xs.len() as f64
        }
    }
}

/// Exemplar ids a histogram bucket retains at most (see
/// [`Histogram::observe_with_exemplar`]).
pub const EXEMPLARS_PER_BUCKET: usize = 4;

/// A log₂-bucket histogram of `u64` observations.
#[derive(Clone, Debug)]
pub struct Histogram {
    /// Bucket counts (see [`log2_bucket`] for the bucket boundaries).
    pub buckets: [u64; HIST_BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Optional per-bucket exemplar ids: the [`EXEMPLARS_PER_BUCKET`]
    /// *smallest* ids observed into each bucket, ascending — a bounded,
    /// deterministic set (order of observation never matters). Allocated
    /// on the first [`Histogram::observe_with_exemplar`]; plain
    /// [`Histogram::observe`] never allocates it. Rendered in the JSON
    /// snapshot only — the Prometheus exposition text is byte-identical
    /// with or without exemplars, so text-based baselines never churn.
    pub exemplars: Option<Box<[Vec<u64>; HIST_BUCKETS]>>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram { buckets: [0; HIST_BUCKETS], count: 0, sum: 0, exemplars: None }
    }
}

impl Histogram {
    /// Folds another histogram into this one: buckets, count, and sum add;
    /// exemplar sets merge keeping each bucket's smallest ids. Order of
    /// merging never matters, so shard-router metric merges stay
    /// deterministic regardless of which rank finished first.
    pub fn merge_from(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        if let Some(oex) = &other.exemplars {
            let ex = self.exemplars.get_or_insert_with(Box::default);
            for (mine, theirs) in ex.iter_mut().zip(oex.iter()) {
                for &id in theirs {
                    if let Err(pos) = mine.binary_search(&id) {
                        if pos < EXEMPLARS_PER_BUCKET {
                            mine.insert(pos, id);
                            mine.truncate(EXEMPLARS_PER_BUCKET);
                        }
                    }
                }
            }
        }
    }

    /// Records one observation.
    pub fn observe(&mut self, v: u64) {
        self.buckets[log2_bucket(v, HIST_BUCKETS)] += 1;
        self.count += 1;
        self.sum += v;
    }

    /// Records one observation and offers `id` as the bucket's exemplar.
    /// Each bucket keeps its [`EXEMPLARS_PER_BUCKET`] smallest ids, so the
    /// retained set is a pure function of the observed multiset.
    pub fn observe_with_exemplar(&mut self, v: u64, id: u64) {
        self.observe(v);
        let ex = self.exemplars.get_or_insert_with(Box::default);
        let bucket = &mut ex[log2_bucket(v, HIST_BUCKETS)];
        match bucket.binary_search(&id) {
            Ok(_) => {} // an id observed twice stays a single exemplar
            Err(pos) => {
                if pos < EXEMPLARS_PER_BUCKET {
                    bucket.insert(pos, id);
                    bucket.truncate(EXEMPLARS_PER_BUCKET);
                }
            }
        }
    }

    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

impl Serialize for Histogram {
    fn json_write(&self, out: &mut String) {
        // Trailing zero buckets are trimmed so small histograms stay small;
        // the bucket index is the log₂ boundary, so the prefix is lossless.
        let hi = HIST_BUCKETS - self.buckets.iter().rev().take_while(|&&b| b == 0).count();
        out.push_str("{\"buckets\":");
        self.buckets[..hi].json_write(out);
        out.push_str(",\"count\":");
        self.count.json_write(out);
        out.push_str(",\"sum\":");
        self.sum.json_write(out);
        // Exemplars render as a sparse object keyed by bucket index; the
        // key is absent entirely for exemplar-free histograms, so their
        // JSON stays byte-identical to the pre-exemplar encoding.
        if let Some(ex) = &self.exemplars {
            if ex.iter().any(|ids| !ids.is_empty()) {
                out.push_str(",\"exemplars\":{");
                let mut first = true;
                for (i, ids) in ex.iter().enumerate() {
                    if ids.is_empty() {
                        continue;
                    }
                    if !first {
                        out.push(',');
                    }
                    first = false;
                    i.to_string().json_write(out);
                    out.push(':');
                    ids.json_write(out);
                }
                out.push('}');
            }
        }
        out.push('}');
    }
}

/// What a metric family holds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic integer counter.
    Counter,
    /// Monotonic f64 counter (simulated-seconds totals).
    CounterF,
    /// Last-write-wins f64 value.
    Gauge,
    /// Log₂ histogram of u64 observations.
    Histogram,
}

impl MetricKind {
    fn prom_type(self) -> &'static str {
        match self {
            MetricKind::Counter | MetricKind::CounterF => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// One series' value.
#[derive(Clone, Debug)]
enum MetricValue {
    Counter(u64),
    CounterF(f64),
    Gauge(f64),
    Hist(Box<Histogram>),
}

/// All series of one metric name.
#[derive(Clone, Debug)]
struct Family {
    kind: MetricKind,
    /// Canonical label string (`""` or `{k="v",…}`) → value.
    series: BTreeMap<String, MetricValue>,
}

/// Renders labels canonically: `{k1="v1",k2="v2"}` sorted by key, `""`
/// when unlabeled. Label values are escaped like JSON strings.
fn label_key(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut ls: Vec<(&str, &str)> = labels.to_vec();
    ls.sort_unstable();
    let mut out = String::from("{");
    for (i, (k, v)) in ls.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        for c in v.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                c => out.push(c),
            }
        }
        out.push('"');
    }
    out.push('}');
    out
}

/// The registry proper: named families of labeled series.
///
/// Usually accessed through a shared [`Metrics`] handle; direct use is for
/// tests and single-owner callers.
#[derive(Clone, Debug, Default)]
pub struct MetricsRegistry {
    families: BTreeMap<String, Family>,
    /// Labels stamped onto every series key (update *and* read paths).
    /// Empty by default, so snapshots of label-free registries stay
    /// byte-identical to the pre-base-label encoding.
    base_labels: Vec<(String, String)>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets labels implicitly attached to every series touched from now on
    /// (both updates and point reads). The shard router gives each rank's
    /// registry a `("shard", "<r>")` base label so merged snapshots carry
    /// the rank dimension without threading it through every feeding site.
    /// Series created before the call keep their old keys; set base labels
    /// before feeding. An empty slice restores the unlabeled behaviour —
    /// single-rank snapshots are byte-identical to a registry that never
    /// heard of base labels.
    pub fn set_base_labels(&mut self, labels: &[(&str, &str)]) {
        self.base_labels = labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect();
    }

    /// The canonical series key for `labels` with base labels folded in.
    fn full_key(&self, labels: &[(&str, &str)]) -> String {
        if self.base_labels.is_empty() {
            return label_key(labels);
        }
        let mut all: Vec<(&str, &str)> =
            self.base_labels.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();
        all.extend_from_slice(labels);
        label_key(&all)
    }

    fn series_mut(
        &mut self,
        name: &str,
        kind: MetricKind,
        labels: &[(&str, &str)],
    ) -> &mut MetricValue {
        let key = self.full_key(labels);
        let fam = self
            .families
            .entry(name.to_string())
            .or_insert_with(|| Family { kind, series: BTreeMap::new() });
        debug_assert_eq!(fam.kind, kind, "metric {name} re-registered with a different kind");
        fam.series.entry(key).or_insert_with(|| match kind {
            MetricKind::Counter => MetricValue::Counter(0),
            MetricKind::CounterF => MetricValue::CounterF(0.0),
            MetricKind::Gauge => MetricValue::Gauge(0.0),
            MetricKind::Histogram => MetricValue::Hist(Box::default()),
        })
    }

    /// Adds `v` to the counter `name{labels}`.
    pub fn add(&mut self, name: &str, labels: &[(&str, &str)], v: u64) {
        if let MetricValue::Counter(c) = self.series_mut(name, MetricKind::Counter, labels) {
            *c += v;
        }
    }

    /// Adds `v` to the f64 counter `name{labels}` (simulated-seconds
    /// totals; updates are sequential, so the sum order is deterministic).
    pub fn add_f(&mut self, name: &str, labels: &[(&str, &str)], v: f64) {
        if let MetricValue::CounterF(c) = self.series_mut(name, MetricKind::CounterF, labels) {
            *c += v;
        }
    }

    /// Sets the gauge `name{labels}` to `v`.
    pub fn set_gauge(&mut self, name: &str, labels: &[(&str, &str)], v: f64) {
        if let MetricValue::Gauge(g) = self.series_mut(name, MetricKind::Gauge, labels) {
            *g = v;
        }
    }

    /// Records `v` into the histogram `name{labels}`.
    pub fn observe(&mut self, name: &str, labels: &[(&str, &str)], v: u64) {
        if let MetricValue::Hist(h) = self.series_mut(name, MetricKind::Histogram, labels) {
            h.observe(v);
        }
    }

    /// Records `v` into the histogram `name{labels}` with `id` as the
    /// bucket-exemplar candidate (see [`Histogram::observe_with_exemplar`]).
    pub fn observe_exemplar(&mut self, name: &str, labels: &[(&str, &str)], v: u64, id: u64) {
        if let MetricValue::Hist(h) = self.series_mut(name, MetricKind::Histogram, labels) {
            h.observe_with_exemplar(v, id);
        }
    }

    /// Reads a counter back (`None` when the series does not exist).
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        match self.families.get(name)?.series.get(&self.full_key(labels))? {
            MetricValue::Counter(c) => Some(*c),
            _ => None,
        }
    }

    /// Reads an f64 counter or gauge back.
    pub fn value_f(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        match self.families.get(name)?.series.get(&self.full_key(labels))? {
            MetricValue::CounterF(c) => Some(*c),
            MetricValue::Gauge(g) => Some(*g),
            MetricValue::Counter(c) => Some(*c as f64),
            MetricValue::Hist(_) => None,
        }
    }

    /// Sum of a counter family over all its series (e.g. a per-phase total
    /// back to a lifetime total — the registry ↔ `SimStats` invariant).
    pub fn counter_sum(&self, name: &str) -> u64 {
        self.families.get(name).map_or(0, |f| {
            f.series.values().map(|v| if let MetricValue::Counter(c) = v { *c } else { 0 }).sum()
        })
    }

    /// Sum of an f64-counter family over all its series.
    pub fn counter_sum_f(&self, name: &str) -> f64 {
        self.families.get(name).map_or(0.0, |f| {
            f.series.values().map(|v| if let MetricValue::CounterF(c) = v { *c } else { 0.0 }).sum()
        })
    }

    /// Reads a histogram back.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<&Histogram> {
        match self.families.get(name)?.series.get(&self.full_key(labels))? {
            MetricValue::Hist(h) => Some(h.as_ref()),
            _ => None,
        }
    }

    /// Folds every series of `other` into this registry: counters and
    /// histograms add, gauges take `other`'s value (last-write-wins, and
    /// the merge *is* the later write). Series keys are taken verbatim —
    /// `other`'s base labels are already baked into its keys — so merging
    /// per-rank registries tagged with distinct `shard` labels lands each
    /// rank's series side by side. Merging the same registries in rank
    /// order is deterministic: disjoint keys make the result independent
    /// of which rank finished its batch first, and overlapping counter
    /// keys still commute because addition does.
    pub fn merge_from(&mut self, other: &MetricsRegistry) {
        for (name, ofam) in &other.families {
            let fam = self
                .families
                .entry(name.clone())
                .or_insert_with(|| Family { kind: ofam.kind, series: BTreeMap::new() });
            debug_assert_eq!(fam.kind, ofam.kind, "metric {name} merged with a different kind");
            for (key, oval) in &ofam.series {
                match fam.series.entry(key.clone()).or_insert_with(|| match ofam.kind {
                    MetricKind::Counter => MetricValue::Counter(0),
                    MetricKind::CounterF => MetricValue::CounterF(0.0),
                    MetricKind::Gauge => MetricValue::Gauge(0.0),
                    MetricKind::Histogram => MetricValue::Hist(Box::default()),
                }) {
                    MetricValue::Counter(c) => {
                        if let MetricValue::Counter(o) = oval {
                            *c += o;
                        }
                    }
                    MetricValue::CounterF(c) => {
                        if let MetricValue::CounterF(o) = oval {
                            *c += o;
                        }
                    }
                    MetricValue::Gauge(g) => {
                        if let MetricValue::Gauge(o) = oval {
                            *g = *o;
                        }
                    }
                    MetricValue::Hist(h) => {
                        if let MetricValue::Hist(o) = oval {
                            h.merge_from(o);
                        }
                    }
                }
            }
        }
    }

    /// Number of registered series across all families.
    pub fn n_series(&self) -> usize {
        self.families.values().map(|f| f.series.len()).sum()
    }

    /// Deterministic Prometheus-exposition-style text: families sorted by
    /// name (each prefixed with a `# TYPE` header), series sorted by label
    /// key. Histograms render cumulative `_bucket{le=…}` lines plus
    /// `_count`/`_sum`, like a native Prometheus histogram.
    pub fn snapshot_text(&self) -> String {
        let mut out = String::new();
        for (name, fam) in &self.families {
            out.push_str("# TYPE ");
            out.push_str(name);
            out.push(' ');
            out.push_str(fam.kind.prom_type());
            out.push('\n');
            for (labels, value) in &fam.series {
                match value {
                    MetricValue::Counter(c) => {
                        out.push_str(&format!("{name}{labels} {c}\n"));
                    }
                    MetricValue::CounterF(c) | MetricValue::Gauge(c) => {
                        out.push_str(&format!("{name}{labels} {c:?}\n"));
                    }
                    MetricValue::Hist(h) => {
                        let mut cum = 0u64;
                        let hi =
                            HIST_BUCKETS - h.buckets.iter().rev().take_while(|&&b| b == 0).count();
                        for (i, b) in h.buckets[..hi].iter().enumerate() {
                            cum += b;
                            let le = if i == 0 { 0u64 } else { 1u64 << (i - 1) };
                            let sep = if labels.is_empty() { "{" } else { ",\0" };
                            // `le` is the inclusive upper cycle bound of the
                            // bucket: 0, 1, 2, 4, 8, … (log₂ boundaries).
                            if sep == "{" {
                                out.push_str(&format!("{name}_bucket{{le=\"{le}\"}} {cum}\n"));
                            } else {
                                let inner = &labels[..labels.len() - 1];
                                out.push_str(&format!(
                                    "{name}_bucket{inner},le=\"{le}\"}} {cum}\n"
                                ));
                            }
                        }
                        out.push_str(&format!("{name}_count{labels} {}\n", h.count));
                        out.push_str(&format!("{name}_sum{labels} {}\n", h.sum));
                    }
                }
            }
        }
        out
    }

    /// Deterministic flat JSON object: `"name{labels}"` → value (histograms
    /// become `{"buckets":[…],"count":n,"sum":x}`), sorted by key. This is
    /// the form embedded in bench `--json` perf reports.
    pub fn snapshot_json(&self) -> String {
        let mut out = String::from("{");
        let mut first = true;
        for (name, fam) in &self.families {
            for (labels, value) in &fam.series {
                if !first {
                    out.push(',');
                }
                first = false;
                format!("{name}{labels}").json_write(&mut out);
                out.push(':');
                match value {
                    MetricValue::Counter(c) => c.json_write(&mut out),
                    MetricValue::CounterF(c) | MetricValue::Gauge(c) => c.json_write(&mut out),
                    MetricValue::Hist(h) => h.json_write(&mut out),
                }
            }
        }
        out.push('}');
        out
    }
}

/// A cloneable, shareable handle over a [`MetricsRegistry`].
///
/// Defaults to **disabled** ([`Metrics::disabled`]): every feeding site
/// checks [`Metrics::enabled`] (one branch) and skips all key formatting
/// and locking when off, so the registry is zero-cost until attached —
/// the same bar the trace sink meets.
///
/// The lock is coarse by design: feeders batch all of a round's updates
/// under one [`Metrics::with`] call, and updates only happen from
/// sequential accounting code, so the mutex is effectively uncontended.
#[derive(Clone, Debug, Default)]
pub struct Metrics {
    inner: Option<Arc<Mutex<MetricsRegistry>>>,
}

impl Metrics {
    /// The default no-op handle.
    pub fn disabled() -> Self {
        Metrics { inner: None }
    }

    /// A fresh enabled registry.
    pub fn enabled_new() -> Self {
        Metrics { inner: Some(Arc::new(Mutex::new(MetricsRegistry::new()))) }
    }

    /// Whether updates will be recorded.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Runs `f` against the registry under the lock (no-op when disabled).
    /// Feeders batch a whole round's updates into one call.
    pub fn with<R>(&self, f: impl FnOnce(&mut MetricsRegistry) -> R) -> Option<R> {
        self.inner.as_ref().map(|m| f(&mut m.lock().unwrap()))
    }

    /// Snapshot in Prometheus text format (`None` when disabled).
    pub fn snapshot_text(&self) -> Option<String> {
        self.inner.as_ref().map(|m| m.lock().unwrap().snapshot_text())
    }

    /// Snapshot as flat JSON (`None` when disabled).
    pub fn snapshot_json(&self) -> Option<String> {
        self.inner.as_ref().map(|m| m.lock().unwrap().snapshot_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log2_buckets_match_trace_layer_semantics() {
        assert_eq!(log2_bucket(0, 16), 0);
        assert_eq!(log2_bucket(1, 16), 1);
        assert_eq!(log2_bucket(2, 16), 2);
        assert_eq!(log2_bucket(3, 16), 2);
        assert_eq!(log2_bucket(4, 16), 3);
        assert_eq!(log2_bucket(u64::MAX, 16), 15, "clamped to the last bucket");
    }

    #[test]
    fn quantile_matches_the_latency_bench_formula() {
        let l: Vec<f64> = (1..=40).map(|i| i as f64).collect();
        // The historical formula: l[((len - 1) as f64 * q) as usize].
        for q in [0.0, 0.5, 0.99, 1.0] {
            let want = l[((l.len() - 1) as f64 * q) as usize];
            assert_eq!(quantile_sorted(&l, q), want);
        }
        let mut s = Samples::new();
        for &v in l.iter().rev() {
            s.push(v);
        }
        assert_eq!(s.quantile(0.99), 39.0);
        assert_eq!(s.max(), 40.0);
    }

    #[test]
    fn counters_accumulate_per_series() {
        let mut r = MetricsRegistry::new();
        r.add("rounds", &[("kind", "execute")], 2);
        r.add("rounds", &[("kind", "execute")], 3);
        r.add("rounds", &[("kind", "broadcast")], 1);
        assert_eq!(r.counter("rounds", &[("kind", "execute")]), Some(5));
        assert_eq!(r.counter_sum("rounds"), 6);
        assert_eq!(r.counter("rounds", &[("kind", "salvage")]), None);
    }

    #[test]
    fn label_order_does_not_matter() {
        let mut r = MetricsRegistry::new();
        r.add("x", &[("a", "1"), ("b", "2")], 1);
        r.add("x", &[("b", "2"), ("a", "1")], 1);
        assert_eq!(r.counter("x", &[("a", "1"), ("b", "2")]), Some(2));
        assert_eq!(r.n_series(), 1, "label sets are canonicalized");
    }

    #[test]
    fn snapshot_text_is_sorted_and_typed() {
        let mut r = MetricsRegistry::new();
        r.add("z_total", &[], 1);
        r.add("a_total", &[("m", "1")], 2);
        r.add("a_total", &[("m", "0")], 3);
        r.set_gauge("g", &[], 1.5);
        let text = r.snapshot_text();
        let a = text.find("a_total{m=\"0\"} 3").unwrap();
        let b = text.find("a_total{m=\"1\"} 2").unwrap();
        let z = text.find("z_total 1").unwrap();
        assert!(a < b && b < z, "families and series sort lexically:\n{text}");
        assert!(text.contains("# TYPE a_total counter"));
        assert!(text.contains("# TYPE g gauge"));
        assert!(text.contains("g 1.5"));
    }

    #[test]
    fn histogram_snapshots_render_cumulative_buckets() {
        let mut r = MetricsRegistry::new();
        for v in [0u64, 1, 2, 3, 100] {
            r.observe("cycles", &[("phase", "knn")], v);
        }
        let h = r.histogram("cycles", &[("phase", "knn")]).unwrap();
        assert_eq!(h.count, 5);
        assert_eq!(h.sum, 106);
        let text = r.snapshot_text();
        assert!(text.contains("cycles_bucket{phase=\"knn\",le=\"0\"} 1"), "{text}");
        assert!(text.contains("cycles_count{phase=\"knn\"} 5"));
        assert!(text.contains("cycles_sum{phase=\"knn\"} 106"));
        let json = r.snapshot_json();
        let v = serde_json::from_str(&json).unwrap();
        let hist = v.get("cycles{phase=\"knn\"}").unwrap();
        assert_eq!(hist.get("count").and_then(|x| x.as_u64()), Some(5));
        assert_eq!(hist.get("sum").and_then(|x| x.as_u64()), Some(106));
    }

    #[test]
    fn exemplars_are_bounded_deterministic_and_json_only() {
        let mut r = MetricsRegistry::new();
        for (id, v) in [(9u64, 3u64), (2, 3), (5, 3), (1, 3), (7, 3), (0, 200)] {
            r.observe_exemplar("lat", &[], v, id);
        }
        let h = r.histogram("lat", &[]).unwrap();
        let ex = h.exemplars.as_ref().unwrap();
        assert_eq!(
            ex[log2_bucket(3, HIST_BUCKETS)],
            vec![1, 2, 5, 7],
            "buckets keep the smallest ids, ascending, capped at {EXEMPLARS_PER_BUCKET}"
        );
        assert_eq!(ex[log2_bucket(200, HIST_BUCKETS)], vec![0]);

        // Feeding the same ids in any order retains the same set.
        let mut r2 = MetricsRegistry::new();
        for (id, v) in [(0u64, 200u64), (1, 3), (7, 3), (5, 3), (2, 3), (9, 3)] {
            r2.observe_exemplar("lat", &[], v, id);
        }
        assert_eq!(r.snapshot_json(), r2.snapshot_json());

        // Prometheus text is byte-identical to an exemplar-free registry
        // fed the same values; only the JSON snapshot differs.
        let mut plain = MetricsRegistry::new();
        for v in [3u64, 3, 3, 3, 3, 200] {
            plain.observe("lat", &[], v);
        }
        assert_eq!(r.snapshot_text(), plain.snapshot_text());
        assert!(!plain.snapshot_json().contains("exemplars"));
        let json = r.snapshot_json();
        let v = serde_json::from_str(&json).unwrap();
        let got = v.get("lat").and_then(|h| h.get("exemplars")).expect("exemplars in JSON");
        let b2 = got.get(&log2_bucket(3, HIST_BUCKETS).to_string()).unwrap();
        assert_eq!(b2.as_array().unwrap().len(), 4, "{json}");
    }

    #[test]
    fn disabled_handle_is_inert() {
        let m = Metrics::disabled();
        assert!(!m.enabled());
        assert_eq!(m.with(|r| r.add("x", &[], 1)), None);
        assert_eq!(m.snapshot_text(), None);
    }

    #[test]
    fn shared_handle_sees_all_updates() {
        let m = Metrics::enabled_new();
        let m2 = m.clone();
        m.with(|r| r.add("x", &[], 1));
        m2.with(|r| r.add("x", &[], 2));
        assert_eq!(m.with(|r| r.counter("x", &[])).flatten(), Some(3));
    }

    #[test]
    fn base_labels_stamp_every_series_and_empty_is_identity() {
        let mut plain = MetricsRegistry::new();
        plain.add("x", &[("op", "knn")], 3);
        plain.observe("h", &[], 7);

        // Empty base labels are the identity: byte-identical snapshots.
        let mut empty = MetricsRegistry::new();
        empty.set_base_labels(&[]);
        empty.add("x", &[("op", "knn")], 3);
        empty.observe("h", &[], 7);
        assert_eq!(plain.snapshot_text(), empty.snapshot_text());
        assert_eq!(plain.snapshot_json(), empty.snapshot_json());

        let mut r = MetricsRegistry::new();
        r.set_base_labels(&[("shard", "2")]);
        r.add("x", &[("op", "knn")], 3);
        r.observe("h", &[], 7);
        // Base labels sort with call labels into one canonical key…
        assert!(r.snapshot_text().contains("x{op=\"knn\",shard=\"2\"} 3"));
        assert!(r.snapshot_text().contains("h_count{shard=\"2\"} 1"));
        // …and point reads through the same handle see them.
        assert_eq!(r.counter("x", &[("op", "knn")]), Some(3));
        assert_eq!(r.histogram("h", &[]).map(|h| h.count), Some(1));
    }

    #[test]
    fn merge_from_sums_counters_and_keeps_rank_series_disjoint() {
        let mk = |shard: &str, v: u64| {
            let mut r = MetricsRegistry::new();
            r.set_base_labels(&[("shard", shard)]);
            r.add("ops", &[("op", "box")], v);
            r.observe_exemplar("lat", &[], 3, v);
            r.set_gauge("depth", &[], v as f64);
            r.add_f("secs", &[], v as f64 * 0.5);
            r
        };
        let (a, b) = (mk("0", 2), mk("1", 5));
        let mut m = MetricsRegistry::new();
        m.merge_from(&a);
        m.merge_from(&b);
        assert_eq!(m.counter("ops", &[("op", "box"), ("shard", "0")]), Some(2));
        assert_eq!(m.counter("ops", &[("op", "box"), ("shard", "1")]), Some(5));
        assert_eq!(m.counter_sum("ops"), 7);
        assert_eq!(m.counter_sum_f("secs"), 3.5);

        // Same-key merges: counters add, histograms fold, exemplar sets
        // keep the smallest ids regardless of merge order.
        let mut twice = MetricsRegistry::new();
        twice.merge_from(&a);
        twice.merge_from(&a);
        assert_eq!(twice.counter("ops", &[("op", "box"), ("shard", "0")]), Some(4));
        let h = twice.histogram("lat", &[("shard", "0")]).unwrap();
        assert_eq!((h.count, h.sum), (2, 6));

        // Merge order over disjoint rank keys does not change the snapshot.
        let mut m2 = MetricsRegistry::new();
        m2.merge_from(&b);
        m2.merge_from(&a);
        assert_eq!(m.snapshot_text(), m2.snapshot_text());
        assert_eq!(m.snapshot_json(), m2.snapshot_json());
    }

    #[test]
    fn snapshots_are_reproducible() {
        let build = || {
            let mut r = MetricsRegistry::new();
            r.add("b", &[("p", "x")], 1);
            r.add("a", &[], 2);
            r.observe("h", &[], 7);
            r.add_f("s", &[("p", "y")], 0.25);
            (r.snapshot_text(), r.snapshot_json())
        };
        assert_eq!(build(), build(), "identical feeds produce identical snapshots");
    }
}
