//! Round-level trace journal.
//!
//! Every accounted BSP round (scatter/gather or broadcast) can emit one
//! [`RoundRecord`] to a [`TraceSink`] attached to the
//! [`PimSystem`](crate::PimSystem). The default sink is [`NullSink`], which
//! reports itself disabled so the executor skips record construction
//! entirely — tracing is zero-cost until a sink is attached.
//!
//! [`JournalSink`] buffers records in memory; its paired [`Journal`] handle
//! (kept by the caller while the system owns the sink) renders them to JSON
//! Lines for offline analysis, e.g. by the `trace_summary` bench binary,
//! which reassembles the paper's Fig. 6 CPU/PIM/Comm breakdown per phase.
//!
//! Phase labels come from [`PimSystem::scoped_phase`](crate::PimSystem::scoped_phase)
//! (or the lower-level `push_phase`/`pop_phase`): nested scopes join with
//! `/`, so a maintenance round inside a delete batch is labeled
//! `delete/maintain`.

use crate::fault::FaultEvent;
use crate::stats::RoundBreakdown;
use serde::Serialize;
use std::sync::{Arc, Mutex};

/// Number of log₂ buckets in the per-round cycle histogram.
pub const HIST_BUCKETS: usize = 16;

/// How many straggler module ids a record retains.
pub const TOP_STRAGGLERS: usize = 4;

/// Which executor entry point produced a round.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum RoundKind {
    /// `execute_round`: scatter to non-idle modules, gather replies.
    Execute,
    /// `execute_round_all`: every module runs, even without input.
    ExecuteAll,
    /// `broadcast`: one value replicated to all modules.
    Broadcast,
    /// `salvage`: one DMA read of a dead module's memory during recovery.
    Salvage,
}

/// One BSP round, as seen by the accountant.
///
/// Summing the breakdown/byte/cycle fields of every record of a run
/// reproduces the final [`SimStats`](crate::SimStats) exactly (this is a
/// tested invariant), so a journal is a lossless refinement of the lifetime
/// counters.
#[derive(Clone, Debug)]
pub struct RoundRecord {
    /// Monotonic round id (survives `reset_stats`).
    pub round: u64,
    /// Phase label at emission time (`""` when unlabeled); nested scopes
    /// join with `/`, e.g. `insert/maintain`.
    pub phase: String,
    /// Executor entry point.
    pub kind: RoundKind,
    /// The round's time decomposition (Fig. 6 categories).
    pub breakdown: RoundBreakdown,
    /// Bytes scattered CPU → PIM.
    pub cpu_to_pim_bytes: u64,
    /// Bytes gathered PIM → CPU.
    pub pim_to_cpu_bytes: u64,
    /// Tasks scattered (total over modules; 1 for a broadcast value).
    pub tasks: u64,
    /// Replies gathered (total over modules).
    pub replies: u64,
    /// Modules that executed their handler.
    pub active_modules: u32,
    /// Straggler cycles (max over modules).
    pub max_cycles: u64,
    /// Mean cycles over all modules (idle ones count as 0).
    pub mean_cycles: f64,
    /// Total cycles over all modules.
    pub sum_cycles: u64,
    /// Log₂-bucket histogram of per-module cycles: bucket 0 counts idle
    /// modules, bucket `i ≥ 1` counts modules with `2^(i-1) ≤ c < 2^i`
    /// cycles (the last bucket absorbs everything larger).
    pub cycle_hist: [u32; HIST_BUCKETS],
    /// Module ids with the most cycles this round, busiest first (at most
    /// [`TOP_STRAGGLERS`]; idle modules never appear).
    pub stragglers: Vec<u32>,
    /// Fault and recovery events of the round, in module order (empty in
    /// fault-free rounds, and then omitted from the JSONL encoding so
    /// fault-free journals are byte-identical to pre-fault-plane ones).
    pub faults: Vec<FaultEvent>,
}

// Hand-written (instead of derived) so the `faults` key only appears when
// the round actually had fault events; every other field matches the
// derive's output byte for byte.
impl Serialize for RoundRecord {
    fn json_write(&self, out: &mut String) {
        out.push('{');
        out.push_str("\"round\":");
        self.round.json_write(out);
        out.push_str(",\"phase\":");
        self.phase.json_write(out);
        out.push_str(",\"kind\":");
        self.kind.json_write(out);
        out.push_str(",\"breakdown\":");
        self.breakdown.json_write(out);
        out.push_str(",\"cpu_to_pim_bytes\":");
        self.cpu_to_pim_bytes.json_write(out);
        out.push_str(",\"pim_to_cpu_bytes\":");
        self.pim_to_cpu_bytes.json_write(out);
        out.push_str(",\"tasks\":");
        self.tasks.json_write(out);
        out.push_str(",\"replies\":");
        self.replies.json_write(out);
        out.push_str(",\"active_modules\":");
        self.active_modules.json_write(out);
        out.push_str(",\"max_cycles\":");
        self.max_cycles.json_write(out);
        out.push_str(",\"mean_cycles\":");
        self.mean_cycles.json_write(out);
        out.push_str(",\"sum_cycles\":");
        self.sum_cycles.json_write(out);
        out.push_str(",\"cycle_hist\":");
        self.cycle_hist.json_write(out);
        out.push_str(",\"stragglers\":");
        self.stragglers.json_write(out);
        if !self.faults.is_empty() {
            out.push_str(",\"faults\":");
            self.faults.json_write(out);
        }
        out.push('}');
    }
}

impl RoundRecord {
    /// Max/mean imbalance of the round (1.0 when no module did work).
    pub fn imbalance(&self) -> f64 {
        if self.mean_cycles <= 0.0 {
            1.0
        } else {
            self.max_cycles as f64 / self.mean_cycles
        }
    }
}

/// Builds the log₂ histogram and straggler list from per-module cycles.
pub fn summarize_cycles(cycles: &[u64]) -> ([u32; HIST_BUCKETS], Vec<u32>) {
    let mut hist = [0u32; HIST_BUCKETS];
    for &c in cycles {
        hist[crate::metrics::log2_bucket(c, HIST_BUCKETS)] += 1;
    }
    let mut busy: Vec<(u64, u32)> =
        cycles.iter().enumerate().filter(|(_, &c)| c > 0).map(|(i, &c)| (c, i as u32)).collect();
    // Busiest first; ties broken by module id for determinism.
    busy.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    busy.truncate(TOP_STRAGGLERS);
    (hist, busy.into_iter().map(|(_, i)| i).collect())
}

/// Receiver of round records.
///
/// `enabled` gates record *construction*: the executor consults it before
/// building a [`RoundRecord`], so a disabled sink costs one virtual call per
/// round and nothing else.
pub trait TraceSink: Send {
    /// Whether the executor should build and deliver records.
    fn enabled(&self) -> bool {
        true
    }

    /// Delivers one round record.
    fn record(&mut self, rec: RoundRecord);
}

/// The default sink: disabled, drops everything.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&mut self, _rec: RoundRecord) {}
}

/// A sink buffering records in memory, shared with a [`Journal`] handle.
///
/// The system owns the sink; the caller keeps the handle:
///
/// ```
/// use pim_sim::{MachineConfig, PimSystem};
/// use pim_sim::trace::JournalSink;
///
/// let (sink, journal) = JournalSink::new();
/// let mut sys = PimSystem::new(MachineConfig::with_modules(2), |_| 0u64);
/// sys.set_trace_sink(Box::new(sink));
/// sys.scoped_phase("demo", |s| {
///     s.execute_round(vec![vec![1u32], vec![2u32]], |_, _, ctx, t| {
///         ctx.op(10);
///         t
///     })
/// });
/// let recs = journal.snapshot();
/// assert_eq!(recs.len(), 1);
/// assert_eq!(recs[0].phase, "demo");
/// ```
#[derive(Debug)]
pub struct JournalSink {
    buf: Arc<Mutex<Vec<RoundRecord>>>,
}

impl JournalSink {
    /// Creates the sink and its reader handle.
    pub fn new() -> (JournalSink, Journal) {
        let buf = Arc::new(Mutex::new(Vec::new()));
        (JournalSink { buf: buf.clone() }, Journal { buf })
    }
}

impl TraceSink for JournalSink {
    fn record(&mut self, rec: RoundRecord) {
        self.buf.lock().unwrap().push(rec);
    }
}

/// Reader handle over a [`JournalSink`]'s buffer.
#[derive(Clone, Debug)]
pub struct Journal {
    buf: Arc<Mutex<Vec<RoundRecord>>>,
}

impl Journal {
    /// Number of buffered records.
    pub fn len(&self) -> usize {
        self.buf.lock().unwrap().len()
    }

    /// Whether the journal is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copies out all records buffered so far.
    pub fn snapshot(&self) -> Vec<RoundRecord> {
        self.buf.lock().unwrap().clone()
    }

    /// Renders the journal as JSON Lines (one record per line).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for rec in self.buf.lock().unwrap().iter() {
            out.push_str(&serde_json::to_string(rec).expect("record serializes"));
            out.push('\n');
        }
        out
    }

    /// Writes the journal as JSON Lines to `path`.
    pub fn write_jsonl(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_jsonl())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sink_is_disabled() {
        assert!(!NullSink.enabled());
    }

    #[test]
    fn histogram_buckets_are_log2() {
        let (hist, stragglers) = summarize_cycles(&[0, 1, 2, 3, 4, 1 << 40]);
        assert_eq!(hist[0], 1, "idle module");
        assert_eq!(hist[1], 1, "c = 1");
        assert_eq!(hist[2], 2, "c in [2, 4)");
        assert_eq!(hist[3], 1, "c in [4, 8)");
        assert_eq!(hist[HIST_BUCKETS - 1], 1, "huge counts land in the last bucket");
        assert_eq!(stragglers[0], 5, "busiest module leads");
    }

    #[test]
    fn stragglers_are_sorted_and_capped() {
        let cycles: Vec<u64> = (0..10).map(|i| (i as u64) * 100).collect();
        let (_, s) = summarize_cycles(&cycles);
        assert_eq!(s, vec![9, 8, 7, 6]);
    }

    #[test]
    fn journal_roundtrips_to_jsonl() {
        let (mut sink, journal) = JournalSink::new();
        sink.record(RoundRecord {
            round: 3,
            phase: "insert/maintain".into(),
            kind: RoundKind::Execute,
            breakdown: RoundBreakdown { pim_s: 1e-6, comm_s: 2e-6, overhead_s: 3e-6 },
            cpu_to_pim_bytes: 128,
            pim_to_cpu_bytes: 256,
            tasks: 4,
            replies: 2,
            active_modules: 2,
            max_cycles: 100,
            mean_cycles: 50.0,
            sum_cycles: 100,
            cycle_hist: [0; HIST_BUCKETS],
            stragglers: vec![1],
            faults: vec![],
        });
        assert_eq!(journal.len(), 1);
        let line = journal.to_jsonl();
        assert!(!line.contains("faults"), "fault-free records omit the faults key");
        let v = serde_json::from_str(line.trim()).unwrap();
        assert_eq!(v.get("round").and_then(|x| x.as_u64()), Some(3));
        assert_eq!(v.get("phase").and_then(|x| x.as_str()), Some("insert/maintain"));
        assert_eq!(v.get("kind").and_then(|x| x.as_str()), Some("Execute"));
        let b = v.get("breakdown").unwrap();
        assert_eq!(b.get("comm_s").and_then(|x| x.as_f64()), Some(2e-6));
    }

    #[test]
    fn fault_events_serialize_when_present() {
        use crate::fault::{FaultEvent, FaultKind};
        let (mut sink, journal) = JournalSink::new();
        sink.record(RoundRecord {
            round: 0,
            phase: "search".into(),
            kind: RoundKind::Execute,
            breakdown: RoundBreakdown::default(),
            cpu_to_pim_bytes: 0,
            pim_to_cpu_bytes: 0,
            tasks: 0,
            replies: 0,
            active_modules: 0,
            max_cycles: 0,
            mean_cycles: 0.0,
            sum_cycles: 0,
            cycle_hist: [0; HIST_BUCKETS],
            stragglers: vec![],
            faults: vec![
                FaultEvent { module: 5, attempt: 0, kind: FaultKind::ReplyDrop },
                FaultEvent { module: 7, attempt: 0, kind: FaultKind::Death },
            ],
        });
        let line = journal.to_jsonl();
        let v = serde_json::from_str(line.trim()).unwrap();
        let faults = v.get("faults").and_then(|x| x.as_array()).unwrap();
        assert_eq!(faults.len(), 2);
        assert_eq!(faults[0].get("module").and_then(|x| x.as_u64()), Some(5));
        assert_eq!(faults[1].get("kind").and_then(|x| x.as_str()), Some("Death"));
    }
}
