//! Hash-based randomized placement of objects onto PIM modules.
//!
//! PIM-zd-tree "distributes each tree node across PIM modules using a
//! hash-based randomization strategy, ensuring that even adversarial
//! operations cannot consistently target the same node" (§3). We use a
//! seeded SplitMix64 finalizer: statistically uniform, deterministic for a
//! given seed, and cheap enough to recompute rather than store.

/// SplitMix64 finalizer — a high-quality 64→64 bit mixer.
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministically assigns object `id` to one of `p` modules under `seed`.
#[inline]
pub fn hash_place(seed: u64, id: u64, p: usize) -> usize {
    debug_assert!(p > 0);
    // Multiply-shift range reduction avoids the modulo bias of `% p` and a
    // 32-cycle divide on the PIM side (placement is host-side, but cheapness
    // keeps the habit).
    let h = mix64(seed ^ mix64(id));
    ((h as u128 * p as u128) >> 64) as usize
}

/// Rendezvous (highest-random-weight) hashing: deterministically elects the
/// owner of object `key` among `members` under `seed`.
///
/// Every member scores `mix64(seed ⊕ mix64(key) ⊕ mix64(member))` and the
/// highest score wins (ties break toward the smaller member id, so the
/// choice is a pure function of `(seed, key, members)`). Unlike
/// [`hash_place`], removing one member only re-homes the objects that member
/// owned — the minimal-disruption property the shard router's membership /
/// placement table relies on (see the fraktor-rs cluster module's
/// `RendezvousHasher` for the same construction).
///
/// Panics on an empty member set — ownership of nothing is a caller bug.
#[inline]
pub fn rendezvous_owner(seed: u64, key: u64, members: &[u32]) -> u32 {
    assert!(!members.is_empty(), "rendezvous_owner needs at least one member");
    let k = mix64(key);
    let mut best = members[0];
    let mut best_w = mix64(seed ^ k ^ mix64(members[0] as u64));
    for &m in &members[1..] {
        let w = mix64(seed ^ k ^ mix64(m as u64));
        if w > best_w || (w == best_w && m < best) {
            best = m;
            best_w = w;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placement_is_deterministic() {
        assert_eq!(hash_place(42, 7, 100), hash_place(42, 7, 100));
        // ... and seed-dependent.
        let a: Vec<usize> = (0..64).map(|i| hash_place(1, i, 16)).collect();
        let b: Vec<usize> = (0..64).map(|i| hash_place(2, i, 16)).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn placement_is_in_range() {
        for id in 0..1000u64 {
            let m = hash_place(9, id, 7);
            assert!(m < 7);
        }
    }

    #[test]
    fn placement_is_balanced() {
        // 64k ids over 16 modules: each gets 4096 ± a few hundred.
        let p = 16;
        let mut counts = vec![0u64; p];
        for id in 0..65_536u64 {
            counts[hash_place(123, id, p)] += 1;
        }
        let expect = 65_536 / p as u64;
        for (m, &c) in counts.iter().enumerate() {
            assert!(
                c > expect * 9 / 10 && c < expect * 11 / 10,
                "module {m} got {c}, expected ≈{expect}"
            );
        }
    }

    #[test]
    fn mix64_has_no_fixed_point_at_zero() {
        assert_ne!(mix64(0), 0);
    }

    #[test]
    fn rendezvous_is_deterministic_and_balanced() {
        let members: Vec<u32> = (0..8).collect();
        let mut counts = [0u64; 8];
        for key in 0..32_768u64 {
            let owner = rendezvous_owner(77, key, &members);
            assert_eq!(owner, rendezvous_owner(77, key, &members));
            counts[owner as usize] += 1;
        }
        let expect = 32_768 / 8;
        for (m, &c) in counts.iter().enumerate() {
            assert!(
                c > expect * 8 / 10 && c < expect * 12 / 10,
                "member {m} owns {c}, expected ≈{expect}"
            );
        }
    }

    #[test]
    fn rendezvous_removal_only_rehomes_the_departed_members_keys() {
        let full: Vec<u32> = (0..8).collect();
        let without_3: Vec<u32> = full.iter().copied().filter(|&m| m != 3).collect();
        for key in 0..4096u64 {
            let before = rendezvous_owner(5, key, &full);
            let after = rendezvous_owner(5, key, &without_3);
            if before != 3 {
                assert_eq!(before, after, "key {key} moved although its owner survived");
            }
        }
    }

    #[test]
    fn rendezvous_ignores_member_order() {
        let a: Vec<u32> = vec![0, 1, 2, 3, 4];
        let b: Vec<u32> = vec![4, 2, 0, 3, 1];
        for key in 0..512u64 {
            assert_eq!(rendezvous_owner(9, key, &a), rendezvous_owner(9, key, &b));
        }
    }
}
