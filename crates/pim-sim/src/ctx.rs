//! Per-module cost meter: the "weak PIM core".
//!
//! Handlers running on behalf of a PIM module charge their instruction and
//! local-memory costs here. Costs follow UPMEM's published numbers \[37\]:
//! simple word operations (add, sub, compare, bitwise, branch) retire in one
//! cycle; multiplication and division take up to 32 cycles — the asymmetry
//! behind the paper's coarse/fine distance-metric split (§6). Distance
//! evaluations are charged by the index code via
//! `pim_geom::Metric::pim_cycles` through [`PimCtx::op`].

/// Cycle cost of a multiply or divide on a BLIMP PIM core.
pub const MUL_DIV_CYCLES: u64 = 32;

/// The per-module execution context for one BSP round.
#[derive(Clone, Copy, Debug, Default)]
pub struct PimCtx {
    /// Core cycles consumed this round.
    pub cycles: u64,
    /// Local (MRAM) bytes streamed this round.
    pub local_bytes: u64,
}

impl PimCtx {
    /// Creates a zeroed meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charges `n` single-cycle word operations.
    #[inline]
    pub fn op(&mut self, n: u64) {
        self.cycles += n;
    }

    /// Charges one multiplication/division.
    #[inline]
    pub fn mul(&mut self) {
        self.cycles += MUL_DIV_CYCLES;
    }

    /// Charges `n` multiplications/divisions.
    #[inline]
    pub fn muls(&mut self, n: u64) {
        self.cycles += MUL_DIV_CYCLES * n;
    }

    /// Charges a local-memory access of `bytes` bytes (plus the issuing
    /// instruction).
    #[inline]
    pub fn mem(&mut self, bytes: u64) {
        self.cycles += 1;
        self.local_bytes += bytes;
    }

    /// Charges `n` local-memory accesses of `bytes_each` bytes — exactly
    /// equivalent to `n` [`mem`](Self::mem) calls (one issuing-instruction
    /// cycle *per access*), so batched leaf kernels can aggregate without
    /// shifting the cycle accounting.
    #[inline]
    pub fn mems(&mut self, n: u64, bytes_each: u64) {
        self.cycles += n;
        self.local_bytes += n * bytes_each;
    }

    /// Core time in seconds at the given frequency/bandwidth. UPMEM DPUs
    /// run 11+ hardware tasklets precisely so MRAM DMA overlaps with other
    /// tasklets' compute; with enough parallel slack (batch workloads have
    /// it), the core is bound by whichever resource saturates.
    #[inline]
    pub fn time_s(&self, freq_hz: f64, local_bw: f64) -> f64 {
        (self.cycles as f64 / freq_hz).max(self.local_bytes as f64 / local_bw)
    }

    /// Accumulates another meter into this one.
    #[inline]
    pub fn merge(&mut self, other: &PimCtx) {
        self.cycles += other.cycles;
        self.local_bytes += other.local_bytes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_costs_accumulate() {
        let mut c = PimCtx::new();
        c.op(10);
        c.mul();
        c.mem(64);
        assert_eq!(c.cycles, 10 + 32 + 1);
        assert_eq!(c.local_bytes, 64);
    }

    #[test]
    fn time_is_bound_by_the_saturated_resource() {
        let mut c = PimCtx::new();
        c.op(350); // 1 µs at 350 MHz
        c.local_bytes = 1256; // 2 µs at 628 MB/s — memory-bound
        let t = c.time_s(350e6, 628e6);
        assert!((t - 2e-6).abs() < 1e-12, "tasklets overlap DMA with compute");
    }

    #[test]
    fn muls_charges_32_cycles_each() {
        let mut c = PimCtx::new();
        c.muls(4);
        assert_eq!(c.cycles, 128);
    }

    #[test]
    fn merge_sums_fields() {
        let mut a = PimCtx { cycles: 5, local_bytes: 7 };
        a.merge(&PimCtx { cycles: 3, local_bytes: 2 });
        assert_eq!(a.cycles, 8);
        assert_eq!(a.local_bytes, 9);
    }
}
