//! Seeded, deterministic fault injection for the simulated machine.
//!
//! Real UPMEM parts ship with disabled DPUs, observable per-module
//! stragglers, and a host SDK that can time out or return garbage on a
//! flaky rank. This module gives the simulator the same hazards under a
//! **deterministic** plan so every failure scenario is byte-reproducible
//! at any host thread count.
//!
//! # Failure model (see ARCHITECTURE.md §5 for the full contract)
//!
//! * **Fail-stop cores, surviving MRAM.** A dead module's core never
//!   answers again, but the host can still DMA its local memory once to
//!   salvage resident state ([`crate::PimSystem::salvage`]) — matching
//!   how a disabled DPU's MRAM stays host-readable on real hardware.
//! * **Atomic round attempts.** A failed delivery/execution attempt
//!   leaves module state unchanged; the handler commits exactly once, at
//!   the successful attempt, or never. Replaying a round is therefore
//!   idempotent by construction.
//! * **Checksummed transfers.** Every gathered reply carries a checksum
//!   ([`checksum64`](crate::wire::checksum64)); corruption is always
//!   detected and surfaces as a failed attempt, never as silent data
//!   poisoning. Silent corruption is explicitly out of scope.
//!
//! Every random decision is a pure function of
//! `(seed, round, module, attempt, channel)` through a splitmix64-style
//! mixer — no global RNG state, so concurrent rounds at different thread
//! counts draw identical faults.

use serde::Serialize;

/// Probability knobs of the injection plane. All probabilities are per
/// module per round attempt (except `p_death`, drawn once per module per
/// round).
#[derive(Clone, Copy, Debug)]
pub struct FaultConfig {
    /// Seed from which every fault decision is derived.
    pub seed: u64,
    /// P(transient execution failure): the module faults before finishing
    /// its handler. No cycles are charged; the attempt's scatter bytes are
    /// wasted.
    pub p_exec_fault: f64,
    /// P(reply drop): the module does the work (cycles charged) but its
    /// reply never reaches the host.
    pub p_reply_drop: f64,
    /// P(reply corruption): the reply arrives but fails checksum
    /// validation (cycles and reply bytes charged, then discarded).
    pub p_reply_corrupt: f64,
    /// P(straggler): the attempt succeeds but the module runs slow by
    /// [`straggler_factor`](Self::straggler_factor).
    pub p_straggler: f64,
    /// Slowdown multiplier applied to a straggling module's cycles.
    pub straggler_factor: f64,
    /// P(permanent death) per module per round: the module fail-stops and
    /// never answers again.
    pub p_death: f64,
    /// Retries after the first failed attempt before the host declares
    /// the module dead.
    pub max_retries: u32,
    /// Host-side detection window charged (as overhead) for every wave
    /// that contains at least one failed attempt.
    pub timeout_s: f64,
}

impl FaultConfig {
    /// A plan that never injects anything (useful as a base to tweak).
    pub fn disabled(seed: u64) -> Self {
        Self {
            seed,
            p_exec_fault: 0.0,
            p_reply_drop: 0.0,
            p_reply_corrupt: 0.0,
            p_straggler: 0.0,
            straggler_factor: 4.0,
            p_death: 0.0,
            max_retries: 3,
            timeout_s: 200e-6,
        }
    }

    /// The single-knob mapping used by the bench `--fault-rate` flag:
    /// transient failures at `rate`, drops at `rate/2`, corruptions at
    /// `rate/4`, stragglers at `rate`, deaths at `rate/100` (deaths are
    /// rare but catastrophic, so they get the smallest share).
    pub fn uniform(rate: f64, seed: u64) -> Self {
        Self {
            p_exec_fault: rate,
            p_reply_drop: rate / 2.0,
            p_reply_corrupt: rate / 4.0,
            p_straggler: rate,
            p_death: rate / 100.0,
            ..Self::disabled(seed)
        }
    }

    /// Whether any fault can ever fire under this config.
    pub fn is_active(&self) -> bool {
        self.p_exec_fault > 0.0
            || self.p_reply_drop > 0.0
            || self.p_reply_corrupt > 0.0
            || self.p_straggler > 0.0
            || self.p_death > 0.0
    }
}

/// What one delivery/execution attempt did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AttemptOutcome {
    /// Handler ran, reply validated. Terminal.
    Ok,
    /// Handler ran slow (cycles × factor), reply validated. Terminal.
    Straggler,
    /// Module faulted before finishing: no cycles, no reply.
    ExecFault,
    /// Work done (cycles charged), reply lost on the wire.
    ReplyDrop,
    /// Work done, reply fetched but failed checksum validation.
    ReplyCorrupt,
    /// Module fail-stopped this round; nothing runs.
    Death,
}

impl AttemptOutcome {
    /// Terminal success (the round committed on this module).
    pub fn is_success(self) -> bool {
        matches!(self, AttemptOutcome::Ok | AttemptOutcome::Straggler)
    }

    /// Whether the module executed its handler to completion (cycles are
    /// charged even when the reply is subsequently lost or corrupted).
    pub fn executed(self) -> bool {
        !matches!(self, AttemptOutcome::ExecFault | AttemptOutcome::Death)
    }

    /// Whether the host fetched reply bytes for this attempt (a corrupt
    /// reply is transferred, then discarded).
    pub fn fetched_reply(self) -> bool {
        matches!(
            self,
            AttemptOutcome::Ok | AttemptOutcome::Straggler | AttemptOutcome::ReplyCorrupt
        )
    }
}

/// The per-round fate of one module: its attempt sequence plus the
/// conclusions the host draws from it.
#[derive(Clone, Debug)]
pub struct ModuleFate {
    /// Outcome of each delivery attempt, in order. The last entry is a
    /// success iff [`success`](Self::success); at most
    /// `max_retries + 1` entries.
    pub attempts: Vec<AttemptOutcome>,
    /// The round committed on this module.
    pub success: bool,
    /// The host declared this module dead this round (fail-stop draw or
    /// retry exhaustion — indistinguishable from outside).
    pub died: bool,
}

impl ModuleFate {
    /// Fate of a module that takes no part in a round.
    pub fn idle() -> Self {
        ModuleFate { attempts: Vec::new(), success: false, died: false }
    }
}

/// Deterministic fault oracle: pure functions of
/// `(seed, round, module, attempt)`.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    cfg: FaultConfig,
}

/// splitmix64 finalizer: a well-mixed 64-bit permutation.
#[inline]
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Converts a probability to an integer threshold over 53 random bits, so
/// fault draws compare integers (`bits < threshold`) and never depend on
/// platform float quirks.
#[inline]
fn threshold(p: f64) -> u64 {
    (p.clamp(0.0, 1.0) * (1u64 << 53) as f64) as u64
}

/// Distinct draw channels (salts) so the death draw never correlates with
/// the attempt-outcome draw of the same `(round, module)`.
const SALT_OUTCOME: u64 = 0x0bad_c0de_0000_0001;
const SALT_DEATH: u64 = 0x0bad_c0de_0000_0002;

impl FaultPlan {
    /// Wraps a config into an oracle.
    pub fn new(cfg: FaultConfig) -> Self {
        FaultPlan { cfg }
    }

    /// The config this plan draws from.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// 53 uniform bits for `(round, module, attempt, salt)`.
    #[inline]
    fn bits(&self, round: u64, module: u32, attempt: u32, salt: u64) -> u64 {
        let h = mix64(
            self.cfg.seed.wrapping_mul(0xd1b5_4a32_d192_ed03)
                ^ mix64(round)
                ^ mix64((module as u64) << 32 | attempt as u64)
                ^ salt,
        );
        h >> 11
    }

    /// Whether the module fail-stops in this round (drawn once per round,
    /// independent of attempts).
    pub fn dies(&self, round: u64, module: u32) -> bool {
        self.cfg.p_death > 0.0
            && self.bits(round, module, 0, SALT_DEATH) < threshold(self.cfg.p_death)
    }

    /// Outcome of attempt `attempt` of `(round, module)`.
    pub fn outcome(&self, round: u64, module: u32, attempt: u32) -> AttemptOutcome {
        let u = self.bits(round, module, attempt, SALT_OUTCOME);
        let mut acc = threshold(self.cfg.p_exec_fault);
        if u < acc {
            return AttemptOutcome::ExecFault;
        }
        acc += threshold(self.cfg.p_reply_drop);
        if u < acc {
            return AttemptOutcome::ReplyDrop;
        }
        acc += threshold(self.cfg.p_reply_corrupt);
        if u < acc {
            return AttemptOutcome::ReplyCorrupt;
        }
        acc += threshold(self.cfg.p_straggler);
        if u < acc {
            return AttemptOutcome::Straggler;
        }
        AttemptOutcome::Ok
    }

    /// Nonzero bit-flip mask applied to a corrupted reply's checksum, so
    /// validation provably rejects it (checksums are 64-bit; flipping any
    /// bit of a correct sum makes it wrong).
    pub fn corruption_mask(&self, round: u64, module: u32, attempt: u32) -> u64 {
        self.bits(round, module, attempt, SALT_OUTCOME ^ SALT_DEATH) | 1
    }

    /// Full fate of one module for one round. `participating` is whether
    /// the host scattered work to it; non-participants only face the
    /// death draw (the host notices at its next contact).
    pub fn module_fate(&self, round: u64, module: u32, participating: bool) -> ModuleFate {
        if self.dies(round, module) {
            return ModuleFate {
                attempts: if participating { vec![AttemptOutcome::Death] } else { Vec::new() },
                success: false,
                died: true,
            };
        }
        if !participating {
            return ModuleFate::idle();
        }
        let mut attempts = Vec::new();
        for attempt in 0..=self.cfg.max_retries {
            let o = self.outcome(round, module, attempt);
            attempts.push(o);
            if o.is_success() {
                return ModuleFate { attempts, success: true, died: false };
            }
        }
        // Retry budget exhausted: the host cannot tell a run of transient
        // faults from a death and declares the module dead.
        ModuleFate { attempts, success: false, died: true }
    }
}

/// Category of a [`FaultEvent`], for journals and the recovery table.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum FaultKind {
    /// Transient execution failure (one attempt).
    ExecFault,
    /// Reply lost on the wire (one attempt).
    ReplyDrop,
    /// Reply failed checksum validation (one attempt).
    ReplyCorrupt,
    /// Module ran slow by the straggler factor.
    Straggler,
    /// Module declared permanently dead.
    Death,
    /// Host salvaged a dead module's memory.
    Salvage,
    /// The host process itself died at a batch boundary and came back via
    /// checkpoint restore + WAL replay. Unlike the module-side kinds this
    /// is never drawn by a [`FaultPlan`] — the crash harness in tests kills
    /// the host deliberately, and the recovery path records the event
    /// (`FaultLog::host_crashes`) when replay finds work past the
    /// checkpoint epoch.
    HostCrash,
}

impl FaultKind {
    /// Number of kinds (the width of any per-kind count array).
    pub const COUNT: usize = 7;

    /// Every kind, in declaration order — the single source of truth for
    /// fault-kind ordering. Journal columns, report tables, and metric
    /// labels all index by position in this array.
    pub const ALL: [FaultKind; FaultKind::COUNT] = [
        FaultKind::ExecFault,
        FaultKind::ReplyDrop,
        FaultKind::ReplyCorrupt,
        FaultKind::Straggler,
        FaultKind::Death,
        FaultKind::Salvage,
        FaultKind::HostCrash,
    ];

    /// The kind's stable wire name — exactly the string the journal's
    /// `kind` field carries. The match is exhaustive, so adding a variant
    /// without extending [`Self::ALL`] fails the `all_is_exhaustive` test
    /// and consumers never see an unnamed kind.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::ExecFault => "ExecFault",
            FaultKind::ReplyDrop => "ReplyDrop",
            FaultKind::ReplyCorrupt => "ReplyCorrupt",
            FaultKind::Straggler => "Straggler",
            FaultKind::Death => "Death",
            FaultKind::Salvage => "Salvage",
            FaultKind::HostCrash => "HostCrash",
        }
    }
}

/// One injected fault or recovery action, as recorded in a
/// [`RoundRecord`](crate::trace::RoundRecord)'s `faults` list.
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub struct FaultEvent {
    /// Module the event happened on.
    pub module: u32,
    /// Attempt index the event belongs to (0 for `Death`/`Salvage`).
    pub attempt: u32,
    /// What happened.
    pub kind: FaultKind,
}

/// Lifetime fault/recovery counters of a [`PimSystem`](crate::PimSystem).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultLog {
    /// Transient execution failures injected.
    pub exec_faults: u64,
    /// Replies dropped on the wire.
    pub reply_drops: u64,
    /// Replies rejected by checksum validation.
    pub reply_corruptions: u64,
    /// Straggler slowdowns injected.
    pub stragglers: u64,
    /// Modules declared permanently dead.
    pub deaths: u64,
    /// Delivery attempts beyond the first (host-side retries).
    pub retries: u64,
    /// Scatter bytes re-sent by retries (wasted channel traffic).
    pub retransmitted_bytes: u64,
    /// Detection-timeout seconds charged to overhead.
    pub timeout_s: f64,
    /// Dead-module memory salvages performed.
    pub salvages: u64,
    /// Bytes DMA'd out of dead modules during salvage.
    pub salvaged_bytes: u64,
    /// Host-process crashes recovered from (checkpoint restore + WAL
    /// replay that found batches past the checkpoint epoch).
    pub host_crashes: u64,
}

impl FaultLog {
    /// Total injected *module-side* fault events — exactly the events that
    /// land in round journals, so journal readers can reconcile counts.
    /// Host crashes are excluded: the host isn't alive to journal its own
    /// death, and recovery is counted in [`Self::host_crashes`] instead.
    pub fn total_faults(&self) -> u64 {
        self.exec_faults + self.reply_drops + self.reply_corruptions + self.stragglers + self.deaths
    }

    /// Tallies one attempt outcome.
    pub(crate) fn count(&mut self, o: AttemptOutcome) {
        match o {
            AttemptOutcome::Ok => {}
            AttemptOutcome::Straggler => self.stragglers += 1,
            AttemptOutcome::ExecFault => self.exec_faults += 1,
            AttemptOutcome::ReplyDrop => self.reply_drops += 1,
            AttemptOutcome::ReplyCorrupt => self.reply_corruptions += 1,
            AttemptOutcome::Death => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn active_plan() -> FaultPlan {
        FaultPlan::new(FaultConfig::uniform(0.05, 42))
    }

    #[test]
    fn draws_are_deterministic() {
        let a = active_plan();
        let b = active_plan();
        for round in 0..50 {
            for module in 0..16 {
                assert_eq!(a.dies(round, module), b.dies(round, module));
                for attempt in 0..4 {
                    assert_eq!(
                        a.outcome(round, module, attempt),
                        b.outcome(round, module, attempt)
                    );
                }
            }
        }
    }

    #[test]
    fn zero_rates_never_fault() {
        let plan = FaultPlan::new(FaultConfig::disabled(7));
        assert!(!plan.config().is_active());
        for round in 0..200 {
            for module in 0..8 {
                let fate = plan.module_fate(round, module, true);
                assert_eq!(fate.attempts, vec![AttemptOutcome::Ok]);
                assert!(fate.success);
                assert!(!fate.died);
            }
        }
    }

    #[test]
    fn seeds_decorrelate() {
        let a = FaultPlan::new(FaultConfig::uniform(0.2, 1));
        let b = FaultPlan::new(FaultConfig::uniform(0.2, 2));
        let mut differs = false;
        for round in 0..100 {
            for module in 0..8 {
                if a.outcome(round, module, 0) != b.outcome(round, module, 0) {
                    differs = true;
                }
            }
        }
        assert!(differs, "different seeds must draw different fault sequences");
    }

    #[test]
    fn rates_roughly_match_draws() {
        let plan = FaultPlan::new(FaultPlan::new(FaultConfig::uniform(0.1, 9)).cfg);
        let mut faults = 0u32;
        let n = 20_000;
        for i in 0..n {
            if !plan.outcome(i as u64, 0, 0).is_success() {
                faults += 1;
            }
        }
        // exec 0.1 + drop 0.05 + corrupt 0.025 = 0.175 expected failure mass.
        let rate = faults as f64 / n as f64;
        assert!((rate - 0.175).abs() < 0.02, "observed failure rate {rate}");
    }

    #[test]
    fn fate_terminates_on_success_and_caps_attempts() {
        let plan = FaultPlan::new(FaultConfig { max_retries: 2, ..FaultConfig::uniform(0.3, 3) });
        for round in 0..500 {
            let fate = plan.module_fate(round, 5, true);
            assert!(fate.attempts.len() <= 3);
            if fate.success {
                assert!(fate.attempts.last().unwrap().is_success());
                assert!(!fate.died);
                assert!(fate.attempts[..fate.attempts.len() - 1].iter().all(|o| !o.is_success()));
            } else {
                assert!(fate.died, "non-success without death must be retry exhaustion");
            }
        }
    }

    #[test]
    fn death_hits_non_participants_too() {
        let plan = FaultPlan::new(FaultConfig { p_death: 0.5, ..FaultConfig::disabled(11) });
        let mut deaths = 0;
        for round in 0..200 {
            let fate = plan.module_fate(round, 3, false);
            assert!(fate.attempts.is_empty());
            if fate.died {
                deaths += 1;
            }
        }
        assert!(deaths > 50, "death draw must apply to idle modules (got {deaths})");
    }

    #[test]
    fn log_counts_by_kind() {
        let mut log = FaultLog::default();
        log.count(AttemptOutcome::ExecFault);
        log.count(AttemptOutcome::ReplyDrop);
        log.count(AttemptOutcome::ReplyCorrupt);
        log.count(AttemptOutcome::Straggler);
        log.count(AttemptOutcome::Ok);
        assert_eq!(log.exec_faults, 1);
        assert_eq!(log.reply_drops, 1);
        assert_eq!(log.reply_corruptions, 1);
        assert_eq!(log.stragglers, 1);
        assert_eq!(log.total_faults(), 4);
    }

    #[test]
    fn all_is_exhaustive() {
        // `ALL` and `name()` are what the journal readers index by; both
        // must stay in lock-step with the enum and with the serialized
        // (derive) spelling of each variant.
        assert_eq!(FaultKind::ALL.len(), FaultKind::COUNT);
        for (i, k) in FaultKind::ALL.iter().enumerate() {
            assert_eq!(
                FaultKind::ALL.iter().position(|x| x == k),
                Some(i),
                "duplicate kind in ALL"
            );
            assert_eq!(format!("{k:?}"), k.name(), "wire name must match the derive spelling");
            let mut json = String::new();
            k.json_write(&mut json);
            assert_eq!(json, format!("{:?}", k.name()), "journal string must match name()");
        }
    }
}
