//! Machine parameters for the simulated PIM system.

use serde::{Deserialize, Serialize};

/// Which host⇄PIM transfer interface is in use (§6 "Improved Direct API").
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum TransferApi {
    /// The stock UPMEM SDK path: each per-module transfer call traverses the
    /// SDK layers (≈ 2 µs of host work per call).
    Sdk,
    /// The Direct Interface of \[50\]: raw reads/writes of the mapped MRAM
    /// regions (≈ 0.15 µs per call).
    Direct,
}

/// Parameters of the simulated machine. Defaults follow the evaluation
/// server of §7.1 and UPMEM's published microarchitectural numbers \[37\].
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Number of PIM modules `P` (2048 on the paper's server).
    pub n_modules: usize,
    /// PIM core frequency in Hz (350 MHz).
    pub pim_freq_hz: f64,
    /// Per-module local (MRAM) streaming bandwidth, bytes/s (628 MB/s).
    pub pim_local_bw: f64,
    /// Per-module CPU⇄PIM channel bandwidth, bytes/s.
    pub channel_bw_per_module: f64,
    /// Aggregate CPU⇄PIM channel bandwidth across all modules, bytes/s
    /// (bounded by the populated memory channels).
    pub channel_bw_aggregate: f64,
    /// Fixed mux-switch latency per BSP round, seconds.
    pub mux_switch_s: f64,
    /// Which transfer API is in use.
    pub api: TransferApi,
    /// Host threads available to issue transfer calls (overlaps calls).
    pub host_threads: usize,
    /// Per-module local memory capacity in bytes (Θ(N/P) in the model;
    /// 64 MB MRAM per DPU on UPMEM). Exceeding it is a simulation error.
    pub local_mem_bytes: u64,
}

impl MachineConfig {
    /// The paper's server: 2048 modules, 350 MHz cores.
    pub fn upmem_2048() -> Self {
        Self::with_modules(2048)
    }

    /// Same microarchitecture with a custom module count (tests use small
    /// counts; sweeps vary P).
    pub fn with_modules(p: usize) -> Self {
        Self {
            n_modules: p,
            pim_freq_hz: 350e6,
            pim_local_bw: 628e6,
            channel_bw_per_module: 300e6,
            channel_bw_aggregate: 38.4e9,
            mux_switch_s: 70e-6,
            api: TransferApi::Direct,
            host_threads: 32,
            local_mem_bytes: 64 << 20,
        }
    }

    /// Host-side seconds consumed by one per-module transfer call.
    pub fn call_overhead_s(&self) -> f64 {
        match self.api {
            TransferApi::Sdk => 2.0e-6,
            TransferApi::Direct => 0.15e-6,
        }
    }

    /// Channel time to move the given per-module byte vector in one round:
    /// transfers proceed in parallel across modules but share the aggregate
    /// channel capacity.
    pub fn transfer_time_s(&self, total_bytes: u64, max_module_bytes: u64) -> f64 {
        let agg = total_bytes as f64 / self.channel_bw_aggregate;
        let per = max_module_bytes as f64 / self.channel_bw_per_module;
        agg.max(per)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_parameters() {
        let c = MachineConfig::upmem_2048();
        assert_eq!(c.n_modules, 2048);
        assert_eq!(c.pim_freq_hz, 350e6);
        assert_eq!(c.pim_local_bw, 628e6);
    }

    #[test]
    fn direct_api_is_cheaper() {
        let mut c = MachineConfig::with_modules(8);
        c.api = TransferApi::Sdk;
        let sdk = c.call_overhead_s();
        c.api = TransferApi::Direct;
        assert!(c.call_overhead_s() < sdk / 10.0);
    }

    #[test]
    fn transfer_time_respects_both_limits() {
        let c = MachineConfig::with_modules(4);
        // Tiny total but all on one module → per-module limit dominates.
        let t1 = c.transfer_time_s(1000, 1000);
        assert!((t1 - 1000.0 / c.channel_bw_per_module).abs() < 1e-15);
        // Huge total spread evenly → aggregate limit dominates.
        let t2 = c.transfer_time_s(u64::MAX / 4, 1);
        assert!(t2 > (u64::MAX / 4) as f64 / c.channel_bw_aggregate * 0.99);
    }
}
