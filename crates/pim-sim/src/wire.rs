//! Wire-size accounting for host⇄PIM transfers.
//!
//! Every value crossing the memory channel implements [`Wire`], reporting
//! the number of bytes it occupies in a transfer buffer. The simulator sums
//! these to charge communication — the paper's "communication amount" metric
//! (§2.1) and half of the Fig. 5 memory-traffic series.

/// Size of a value as serialized into a host⇄PIM transfer buffer.
pub trait Wire {
    /// Wire size shared by **every** value of this type, when one exists.
    ///
    /// `Some(n)` promises `wire_bytes()` returns `n` for all values, which
    /// lets containers skip the per-element walk: `Vec<u32>` reports
    /// `len * 4` in O(1) instead of iterating — and wire sizing runs on
    /// every metered round. Types with value-dependent sizes (task structs
    /// carrying `Vec`s, `Option`) keep the `None` default and are summed
    /// element by element as before.
    const FIXED: Option<u64> = None;

    /// Number of bytes this value occupies on the wire.
    fn wire_bytes(&self) -> u64;
}

/// Keyed checksum over a transfer's framing metadata.
///
/// The simulator models transfer *sizes*, not payload bits, so the checksum
/// covers what exists in the model: the round, the module, and the byte
/// count, mixed under a key. The fault plane flips bits in a corrupted
/// reply's checksum; [`validate_checksum`] then rejects it — corruption is
/// always detected, never silently consumed (the failure model's third
/// axiom, see `pim_sim::fault`).
///
/// ```
/// use pim_sim::wire::{checksum64, validate_checksum};
/// let sum = checksum64(0xfeed, 7, 3, 4096);
/// assert!(validate_checksum(0xfeed, 7, 3, 4096, sum));
/// assert!(!validate_checksum(0xfeed, 7, 3, 4096, sum ^ 1));
/// ```
pub fn checksum64(key: u64, round: u64, module: u32, payload_bytes: u64) -> u64 {
    let mut z = key
        .wrapping_mul(0x9e3779b97f4a7c15)
        .wrapping_add(round)
        .wrapping_mul(0xbf58476d1ce4e5b9)
        .wrapping_add(module as u64)
        .wrapping_mul(0x94d049bb133111eb)
        .wrapping_add(payload_bytes);
    z ^= z >> 30;
    z = z.wrapping_mul(0xbf58476d1ce4e5b9);
    z ^= z >> 27;
    z = z.wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Recomputes the checksum and compares it to the one that arrived.
pub fn validate_checksum(key: u64, round: u64, module: u32, payload_bytes: u64, got: u64) -> bool {
    checksum64(key, round, module, payload_bytes) == got
}

/// Keyed content checksum over a byte slice, built by chaining
/// [`checksum64`] over 8-byte words (the word index plays the `round` role,
/// the word's width the `module` role, so a moved, resized, or reordered
/// word changes the digest even when its bytes do not). This is the
/// per-section integrity primitive of the checkpoint/WAL durability layer:
/// the framing checksum covers transfer metadata, this one covers stored
/// payload bits.
///
/// ```
/// use pim_sim::wire::checksum_bytes;
/// let sum = checksum_bytes(0xfeed, b"fragment payload");
/// assert_eq!(sum, checksum_bytes(0xfeed, b"fragment payload"));
/// assert_ne!(sum, checksum_bytes(0xfeed, b"fragment pay1oad"));
/// assert_ne!(sum, checksum_bytes(0xbeef, b"fragment payload"));
/// ```
pub fn checksum_bytes(key: u64, data: &[u8]) -> u64 {
    // Seed with the length so `"ab" + "c"` never collides with `"a" + "bc"`.
    let mut acc = checksum64(key, data.len() as u64, 0, data.len() as u64);
    for (i, chunk) in data.chunks(8).enumerate() {
        let mut word = [0u8; 8];
        word[..chunk.len()].copy_from_slice(chunk);
        acc = checksum64(acc, i as u64, chunk.len() as u32, u64::from_le_bytes(word));
    }
    acc
}

/// Error from [`Dec`]: the buffer ended before the requested value.
///
/// Carries the offset and width of the failed read so durability errors can
/// say *where* a checkpoint or WAL file went short.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShortRead {
    /// Byte offset the read started at.
    pub offset: usize,
    /// Bytes the read needed.
    pub wanted: usize,
    /// Bytes the buffer had left.
    pub available: usize,
}

impl std::fmt::Display for ShortRead {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "short read at offset {}: wanted {} bytes, {} available",
            self.offset, self.wanted, self.available
        )
    }
}

/// Little-endian byte encoder for durable artifacts (checkpoint sections,
/// WAL records). The simulator's [`Wire`] trait accounts transfer *sizes*;
/// `Enc`/[`Dec`] are its byte-level counterpart for state that must survive
/// a process restart, sharing the same fixed-width little-endian layout the
/// wire sizes assume.
#[derive(Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// An empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes encoded so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been encoded yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the encoder, returning the bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// The bytes encoded so far, borrowed.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends `keys.len()` interleaved point records — a little-endian
    /// `u64` key followed by one little-endian `u32` per lane — gathered
    /// straight from structure-of-arrays lanes. This fuses the AoS
    /// re-materialization a caller would otherwise do into the buffer
    /// write itself (one reservation, no intermediate pairs); the byte
    /// stream is identical to encoding each record field by field.
    pub fn keyed_points(&mut self, keys: &[u64], lanes: &[&[u32]]) {
        debug_assert!(lanes.iter().all(|l| l.len() == keys.len()));
        self.buf.reserve(keys.len() * (8 + 4 * lanes.len()));
        for (i, k) in keys.iter().enumerate() {
            self.buf.extend_from_slice(&k.to_le_bytes());
            for lane in lanes {
                self.buf.extend_from_slice(&lane[i].to_le_bytes());
            }
        }
    }

    /// Appends a little-endian `i64`.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its IEEE-754 bit pattern — restores are
    /// bit-exact, never round-tripped through decimal.
    pub fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Appends a `bool` as one byte.
    pub fn bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Appends raw bytes (length is NOT encoded; pair with
    /// [`Self::u64`] when the decoder can't infer it).
    pub fn bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }
}

/// Little-endian byte decoder matching [`Enc`]. Every read is
/// bounds-checked and returns [`ShortRead`] instead of panicking — a
/// truncated checkpoint must surface as a typed error, never an abort.
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// Decodes from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Current read offset.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ShortRead> {
        if self.remaining() < n {
            return Err(ShortRead { offset: self.pos, wanted: n, available: self.remaining() });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, ShortRead> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, ShortRead> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("take(4) returned 4 bytes")))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, ShortRead> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("take(8) returned 8 bytes")))
    }

    /// Reads a little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64, ShortRead> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("take(8) returned 8 bytes")))
    }

    /// Reads an `f64` from its bit pattern.
    pub fn f64(&mut self) -> Result<f64, ShortRead> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a `bool` (any nonzero byte is `true`).
    pub fn bool(&mut self) -> Result<bool, ShortRead> {
        Ok(self.u8()? != 0)
    }

    /// Reads `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], ShortRead> {
        self.take(n)
    }
}

impl Wire for () {
    const FIXED: Option<u64> = Some(0);

    fn wire_bytes(&self) -> u64 {
        0
    }
}

macro_rules! prim_wire {
    ($($t:ty),*) => {
        $(impl Wire for $t {
            const FIXED: Option<u64> = Some(core::mem::size_of::<$t>() as u64);

            #[inline]
            fn wire_bytes(&self) -> u64 {
                core::mem::size_of::<$t>() as u64
            }
        })*
    };
}
prim_wire!(u8, u16, u32, u64, i8, i16, i32, i64, usize, f32, f64);

/// Sum of two element-wise fixed sizes, when both exist (const contexts
/// can't use `Option::zip`/`map` yet).
const fn fixed_sum(a: Option<u64>, b: Option<u64>) -> Option<u64> {
    match (a, b) {
        (Some(a), Some(b)) => Some(a + b),
        _ => None,
    }
}

impl<T: Wire> Wire for Vec<T> {
    #[inline]
    fn wire_bytes(&self) -> u64 {
        match T::FIXED {
            // O(1) for fixed-size elements — rows of primitive replies and
            // key/coordinate pairs dominate metered rounds.
            Some(per) => self.len() as u64 * per,
            None => self.iter().map(Wire::wire_bytes).sum(),
        }
    }
}

impl<T: Wire> Wire for Option<T> {
    #[inline]
    fn wire_bytes(&self) -> u64 {
        // A presence byte plus the payload.
        1 + self.as_ref().map_or(0, Wire::wire_bytes)
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    const FIXED: Option<u64> = fixed_sum(A::FIXED, B::FIXED);

    #[inline]
    fn wire_bytes(&self) -> u64 {
        self.0.wire_bytes() + self.1.wire_bytes()
    }
}

impl<A: Wire, B: Wire, C: Wire> Wire for (A, B, C) {
    const FIXED: Option<u64> = fixed_sum(fixed_sum(A::FIXED, B::FIXED), C::FIXED);

    #[inline]
    fn wire_bytes(&self) -> u64 {
        self.0.wire_bytes() + self.1.wire_bytes() + self.2.wire_bytes()
    }
}

impl<T: Wire> Wire for &T {
    const FIXED: Option<u64> = T::FIXED;

    #[inline]
    fn wire_bytes(&self) -> u64 {
        (*self).wire_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_report_their_size() {
        assert_eq!(5u32.wire_bytes(), 4);
        assert_eq!(5u64.wire_bytes(), 8);
        assert_eq!(().wire_bytes(), 0);
    }

    #[test]
    fn containers_sum_elements() {
        assert_eq!(vec![1u32, 2, 3].wire_bytes(), 12);
        assert_eq!((1u32, 2u64).wire_bytes(), 12);
        assert_eq!(Some(7u32).wire_bytes(), 5);
        assert_eq!(Option::<u32>::None.wire_bytes(), 1);
    }

    #[test]
    fn fixed_size_fast_path_agrees_with_elementwise_sum() {
        // Fixed where every value has one size...
        assert_eq!(<u32 as Wire>::FIXED, Some(4));
        assert_eq!(<(u64, u32) as Wire>::FIXED, Some(12));
        assert_eq!(<(u8, u16, u32) as Wire>::FIXED, Some(7));
        assert_eq!(<&u64 as Wire>::FIXED, Some(8));
        assert_eq!(<() as Wire>::FIXED, Some(0));
        // ...None where sizes are value-dependent.
        assert_eq!(<Vec<u32> as Wire>::FIXED, None);
        assert_eq!(<Option<u32> as Wire>::FIXED, None);

        // The O(1) Vec path must report exactly what iteration would.
        let v: Vec<(u64, u32)> = vec![(1, 2), (3, 4), (5, 6)];
        assert_eq!(v.wire_bytes(), v.iter().map(Wire::wire_bytes).sum::<u64>());
        assert_eq!(v.wire_bytes(), 36);
        // Nested: the outer Vec's elements are variable-size, so it sums.
        let nested: Vec<Vec<u32>> = vec![vec![1], vec![2, 3]];
        assert_eq!(nested.wire_bytes(), 12);
    }

    #[test]
    fn enc_dec_roundtrip_every_width() {
        let mut e = Enc::new();
        e.u8(7);
        e.u32(0xdead_beef);
        e.u64(u64::MAX - 3);
        e.i64(-42);
        e.f64(-0.0); // signed zero must survive bit-exactly
        e.bool(true);
        e.bytes(b"tail");
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        assert_eq!(d.u8().unwrap(), 7);
        assert_eq!(d.u32().unwrap(), 0xdead_beef);
        assert_eq!(d.u64().unwrap(), u64::MAX - 3);
        assert_eq!(d.i64().unwrap(), -42);
        assert_eq!(d.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(d.bool().unwrap());
        assert_eq!(d.bytes(4).unwrap(), b"tail");
        assert_eq!(d.remaining(), 0);
    }

    #[test]
    fn dec_reports_short_reads_with_position() {
        let mut d = Dec::new(&[1, 2, 3]);
        assert_eq!(d.u8().unwrap(), 1);
        let err = d.u64().unwrap_err();
        assert_eq!(err, ShortRead { offset: 1, wanted: 8, available: 2 });
        // A failed read consumes nothing.
        assert_eq!(d.u8().unwrap(), 2);
    }

    #[test]
    fn checksum_bytes_detects_flips_truncation_and_keys() {
        let data: Vec<u8> = (0..37).collect();
        let sum = checksum_bytes(0x5eed, &data);
        assert_eq!(sum, checksum_bytes(0x5eed, &data), "deterministic");
        assert_ne!(sum, checksum_bytes(0x5eee, &data), "key-dependent");
        assert_ne!(sum, checksum_bytes(0x5eed, &data[..36]), "length-dependent");
        for i in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[i] ^= 1 << bit;
                assert_ne!(sum, checksum_bytes(0x5eed, &flipped), "bit {bit} of byte {i}");
            }
        }
        // Word boundaries must not alias: moving a byte across the 8-byte
        // chunk edge changes the digest.
        assert_ne!(checksum_bytes(1, &[0; 8]), checksum_bytes(1, &[0; 9]));
    }

    #[test]
    fn checksum_detects_any_field_change() {
        let sum = checksum64(1, 2, 3, 4);
        assert!(validate_checksum(1, 2, 3, 4, sum));
        assert!(!validate_checksum(9, 2, 3, 4, sum));
        assert!(!validate_checksum(1, 9, 3, 4, sum));
        assert!(!validate_checksum(1, 2, 9, 4, sum));
        assert!(!validate_checksum(1, 2, 3, 9, sum));
        for bit in 0..64 {
            assert!(!validate_checksum(1, 2, 3, 4, sum ^ (1 << bit)));
        }
    }
}
