//! Wire-size accounting for host⇄PIM transfers.
//!
//! Every value crossing the memory channel implements [`Wire`], reporting
//! the number of bytes it occupies in a transfer buffer. The simulator sums
//! these to charge communication — the paper's "communication amount" metric
//! (§2.1) and half of the Fig. 5 memory-traffic series.

/// Size of a value as serialized into a host⇄PIM transfer buffer.
pub trait Wire {
    /// Wire size shared by **every** value of this type, when one exists.
    ///
    /// `Some(n)` promises `wire_bytes()` returns `n` for all values, which
    /// lets containers skip the per-element walk: `Vec<u32>` reports
    /// `len * 4` in O(1) instead of iterating — and wire sizing runs on
    /// every metered round. Types with value-dependent sizes (task structs
    /// carrying `Vec`s, `Option`) keep the `None` default and are summed
    /// element by element as before.
    const FIXED: Option<u64> = None;

    /// Number of bytes this value occupies on the wire.
    fn wire_bytes(&self) -> u64;
}

/// Keyed checksum over a transfer's framing metadata.
///
/// The simulator models transfer *sizes*, not payload bits, so the checksum
/// covers what exists in the model: the round, the module, and the byte
/// count, mixed under a key. The fault plane flips bits in a corrupted
/// reply's checksum; [`validate_checksum`] then rejects it — corruption is
/// always detected, never silently consumed (the failure model's third
/// axiom, see `pim_sim::fault`).
///
/// ```
/// use pim_sim::wire::{checksum64, validate_checksum};
/// let sum = checksum64(0xfeed, 7, 3, 4096);
/// assert!(validate_checksum(0xfeed, 7, 3, 4096, sum));
/// assert!(!validate_checksum(0xfeed, 7, 3, 4096, sum ^ 1));
/// ```
pub fn checksum64(key: u64, round: u64, module: u32, payload_bytes: u64) -> u64 {
    let mut z = key
        .wrapping_mul(0x9e3779b97f4a7c15)
        .wrapping_add(round)
        .wrapping_mul(0xbf58476d1ce4e5b9)
        .wrapping_add(module as u64)
        .wrapping_mul(0x94d049bb133111eb)
        .wrapping_add(payload_bytes);
    z ^= z >> 30;
    z = z.wrapping_mul(0xbf58476d1ce4e5b9);
    z ^= z >> 27;
    z = z.wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Recomputes the checksum and compares it to the one that arrived.
pub fn validate_checksum(key: u64, round: u64, module: u32, payload_bytes: u64, got: u64) -> bool {
    checksum64(key, round, module, payload_bytes) == got
}

impl Wire for () {
    const FIXED: Option<u64> = Some(0);

    fn wire_bytes(&self) -> u64 {
        0
    }
}

macro_rules! prim_wire {
    ($($t:ty),*) => {
        $(impl Wire for $t {
            const FIXED: Option<u64> = Some(core::mem::size_of::<$t>() as u64);

            #[inline]
            fn wire_bytes(&self) -> u64 {
                core::mem::size_of::<$t>() as u64
            }
        })*
    };
}
prim_wire!(u8, u16, u32, u64, i8, i16, i32, i64, usize, f32, f64);

/// Sum of two element-wise fixed sizes, when both exist (const contexts
/// can't use `Option::zip`/`map` yet).
const fn fixed_sum(a: Option<u64>, b: Option<u64>) -> Option<u64> {
    match (a, b) {
        (Some(a), Some(b)) => Some(a + b),
        _ => None,
    }
}

impl<T: Wire> Wire for Vec<T> {
    #[inline]
    fn wire_bytes(&self) -> u64 {
        match T::FIXED {
            // O(1) for fixed-size elements — rows of primitive replies and
            // key/coordinate pairs dominate metered rounds.
            Some(per) => self.len() as u64 * per,
            None => self.iter().map(Wire::wire_bytes).sum(),
        }
    }
}

impl<T: Wire> Wire for Option<T> {
    #[inline]
    fn wire_bytes(&self) -> u64 {
        // A presence byte plus the payload.
        1 + self.as_ref().map_or(0, Wire::wire_bytes)
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    const FIXED: Option<u64> = fixed_sum(A::FIXED, B::FIXED);

    #[inline]
    fn wire_bytes(&self) -> u64 {
        self.0.wire_bytes() + self.1.wire_bytes()
    }
}

impl<A: Wire, B: Wire, C: Wire> Wire for (A, B, C) {
    const FIXED: Option<u64> = fixed_sum(fixed_sum(A::FIXED, B::FIXED), C::FIXED);

    #[inline]
    fn wire_bytes(&self) -> u64 {
        self.0.wire_bytes() + self.1.wire_bytes() + self.2.wire_bytes()
    }
}

impl<T: Wire> Wire for &T {
    const FIXED: Option<u64> = T::FIXED;

    #[inline]
    fn wire_bytes(&self) -> u64 {
        (*self).wire_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_report_their_size() {
        assert_eq!(5u32.wire_bytes(), 4);
        assert_eq!(5u64.wire_bytes(), 8);
        assert_eq!(().wire_bytes(), 0);
    }

    #[test]
    fn containers_sum_elements() {
        assert_eq!(vec![1u32, 2, 3].wire_bytes(), 12);
        assert_eq!((1u32, 2u64).wire_bytes(), 12);
        assert_eq!(Some(7u32).wire_bytes(), 5);
        assert_eq!(Option::<u32>::None.wire_bytes(), 1);
    }

    #[test]
    fn fixed_size_fast_path_agrees_with_elementwise_sum() {
        // Fixed where every value has one size...
        assert_eq!(<u32 as Wire>::FIXED, Some(4));
        assert_eq!(<(u64, u32) as Wire>::FIXED, Some(12));
        assert_eq!(<(u8, u16, u32) as Wire>::FIXED, Some(7));
        assert_eq!(<&u64 as Wire>::FIXED, Some(8));
        assert_eq!(<() as Wire>::FIXED, Some(0));
        // ...None where sizes are value-dependent.
        assert_eq!(<Vec<u32> as Wire>::FIXED, None);
        assert_eq!(<Option<u32> as Wire>::FIXED, None);

        // The O(1) Vec path must report exactly what iteration would.
        let v: Vec<(u64, u32)> = vec![(1, 2), (3, 4), (5, 6)];
        assert_eq!(v.wire_bytes(), v.iter().map(Wire::wire_bytes).sum::<u64>());
        assert_eq!(v.wire_bytes(), 36);
        // Nested: the outer Vec's elements are variable-size, so it sums.
        let nested: Vec<Vec<u32>> = vec![vec![1], vec![2, 3]];
        assert_eq!(nested.wire_bytes(), 12);
    }

    #[test]
    fn checksum_detects_any_field_change() {
        let sum = checksum64(1, 2, 3, 4);
        assert!(validate_checksum(1, 2, 3, 4, sum));
        assert!(!validate_checksum(9, 2, 3, 4, sum));
        assert!(!validate_checksum(1, 9, 3, 4, sum));
        assert!(!validate_checksum(1, 2, 9, 4, sum));
        assert!(!validate_checksum(1, 2, 3, 9, sum));
        for bit in 0..64 {
            assert!(!validate_checksum(1, 2, 3, 4, sum ^ (1 << bit)));
        }
    }
}
