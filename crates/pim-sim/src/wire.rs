//! Wire-size accounting for host⇄PIM transfers.
//!
//! Every value crossing the memory channel implements [`Wire`], reporting
//! the number of bytes it occupies in a transfer buffer. The simulator sums
//! these to charge communication — the paper's "communication amount" metric
//! (§2.1) and half of the Fig. 5 memory-traffic series.

/// Size of a value as serialized into a host⇄PIM transfer buffer.
pub trait Wire {
    /// Number of bytes this value occupies on the wire.
    fn wire_bytes(&self) -> u64;
}

impl Wire for () {
    fn wire_bytes(&self) -> u64 {
        0
    }
}

macro_rules! prim_wire {
    ($($t:ty),*) => {
        $(impl Wire for $t {
            #[inline]
            fn wire_bytes(&self) -> u64 {
                core::mem::size_of::<$t>() as u64
            }
        })*
    };
}
prim_wire!(u8, u16, u32, u64, i8, i16, i32, i64, usize, f32, f64);

impl<T: Wire> Wire for Vec<T> {
    #[inline]
    fn wire_bytes(&self) -> u64 {
        self.iter().map(Wire::wire_bytes).sum()
    }
}

impl<T: Wire> Wire for Option<T> {
    #[inline]
    fn wire_bytes(&self) -> u64 {
        // A presence byte plus the payload.
        1 + self.as_ref().map_or(0, Wire::wire_bytes)
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    #[inline]
    fn wire_bytes(&self) -> u64 {
        self.0.wire_bytes() + self.1.wire_bytes()
    }
}

impl<A: Wire, B: Wire, C: Wire> Wire for (A, B, C) {
    #[inline]
    fn wire_bytes(&self) -> u64 {
        self.0.wire_bytes() + self.1.wire_bytes() + self.2.wire_bytes()
    }
}

impl<T: Wire> Wire for &T {
    #[inline]
    fn wire_bytes(&self) -> u64 {
        (*self).wire_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_report_their_size() {
        assert_eq!(5u32.wire_bytes(), 4);
        assert_eq!(5u64.wire_bytes(), 8);
        assert_eq!(().wire_bytes(), 0);
    }

    #[test]
    fn containers_sum_elements() {
        assert_eq!(vec![1u32, 2, 3].wire_bytes(), 12);
        assert_eq!((1u32, 2u64).wire_bytes(), 12);
        assert_eq!(Some(7u32).wire_bytes(), 5);
        assert_eq!(Option::<u32>::None.wire_bytes(), 1);
    }
}
