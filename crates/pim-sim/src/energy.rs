//! Energy estimation — an extension beyond the paper's tables.
//!
//! §7.1 motivates the memory-traffic metric as "a primary contributor to
//! power consumption in index-based applications", citing the UPMEM
//! characterization studies [37, 48, 66]. This module turns the counters the
//! simulator already collects into a first-order energy estimate using
//! coarse per-event costs from those studies' regime (DRAM access energy
//! dominated by I/O, on-bank access far cheaper, wimpy in-order PIM cores
//! far below a big out-of-order host core per cycle).
//!
//! The absolute joules are indicative only; the *ratios* between indexes —
//! which inherit from measured traffic and cycles — are the meaningful
//! output, exactly as with the traffic metric itself.

use serde::{Deserialize, Serialize};

/// Per-event energy costs in picojoules.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Host CPU core energy per cycle (big OoO core, amortized).
    pub cpu_pj_per_cycle: f64,
    /// PIM core energy per cycle (wimpy in-order core).
    pub pim_pj_per_cycle: f64,
    /// Off-chip DRAM traffic (CPU⇄DRAM), per byte.
    pub dram_pj_per_byte: f64,
    /// CPU⇄PIM channel traffic, per byte.
    pub channel_pj_per_byte: f64,
    /// PIM-local (on-DIMM bank) traffic, per byte.
    pub local_pj_per_byte: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self {
            cpu_pj_per_cycle: 300.0,
            pim_pj_per_cycle: 15.0,
            dram_pj_per_byte: 20.0,
            channel_pj_per_byte: 15.0,
            local_pj_per_byte: 4.0,
        }
    }
}

/// An energy estimate decomposed by component, in joules.
#[derive(Clone, Copy, Debug, Default, Serialize)]
pub struct EnergyEstimate {
    /// Host core energy.
    pub cpu_j: f64,
    /// PIM core energy (sum over all modules).
    pub pim_j: f64,
    /// CPU-DRAM traffic energy.
    pub dram_j: f64,
    /// CPU⇄PIM channel traffic energy.
    pub channel_j: f64,
}

impl EnergyEstimate {
    /// Total joules.
    pub fn total_j(&self) -> f64 {
        self.cpu_j + self.pim_j + self.dram_j + self.channel_j
    }
}

impl EnergyModel {
    /// Estimates the energy of an operation from its counters.
    pub fn estimate(
        &self,
        cpu_cycles: u64,
        cpu_dram_bytes: u64,
        pim_cycles: u64,
        channel_bytes: u64,
    ) -> EnergyEstimate {
        EnergyEstimate {
            cpu_j: cpu_cycles as f64 * self.cpu_pj_per_cycle * 1e-12,
            pim_j: pim_cycles as f64 * self.pim_pj_per_cycle * 1e-12,
            dram_j: cpu_dram_bytes as f64 * self.dram_pj_per_byte * 1e-12,
            channel_j: channel_bytes as f64 * self.channel_pj_per_byte * 1e-12,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimate_decomposes() {
        let m = EnergyModel::default();
        let e = m.estimate(1_000_000, 1_000, 2_000_000, 500);
        assert!(e.cpu_j > 0.0 && e.pim_j > 0.0 && e.dram_j > 0.0 && e.channel_j > 0.0);
        let total = e.cpu_j + e.pim_j + e.dram_j + e.channel_j;
        assert!((e.total_j() - total).abs() < 1e-18);
    }

    #[test]
    fn wimpy_cores_are_cheaper_per_cycle() {
        let m = EnergyModel::default();
        assert!(m.pim_pj_per_cycle < m.cpu_pj_per_cycle / 10.0);
    }

    #[test]
    fn local_traffic_is_cheaper_than_offchip() {
        let m = EnergyModel::default();
        assert!(m.local_pj_per_byte < m.dram_pj_per_byte);
        assert!(m.local_pj_per_byte < m.channel_pj_per_byte);
    }
}
