//! CPU memory-hierarchy model for the shared-memory side of the evaluation.
//!
//! The paper's Fig. 5 reports, for each index, both throughput and
//! *per-element memory traffic* — "the total memory-bus communication (in
//! bytes) incurred per returned element, including both CPU-DRAM and CPU-PIM
//! communication" (§7.1). The PIM side of that accounting lives in
//! `pim-sim`; this crate provides the CPU-DRAM side: a set-associative LRU
//! last-level cache ([`cache::CacheSim`]) and a time/traffic model
//! ([`cpu::CpuModel`]) that converts instrumented work (cycles) and memory
//! accesses (addresses) into simulated seconds and DRAM bytes.
//!
//! The baselines (`pim-zdtree-base`, `pim-pkdtree`) thread a [`cpu::CpuMeter`]
//! through their traversals; every node visit charges cycles and touches the
//! node's arena address, so cache locality differences between the indexes —
//! the very thing the paper's Fig. 5/8 traffic series measure — fall out of
//! the model instead of being assumed.

pub mod cache;
pub mod cpu;

pub use cache::{CacheConfig, CacheSim, CacheSnapshot, CacheWaySnapshot};
pub use cpu::{CpuConfig, CpuMeter, CpuModel, CpuStats, MeterSnapshot};
