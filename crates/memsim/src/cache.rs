//! Set-associative LRU cache simulator.
//!
//! Models a last-level cache over an abstract byte address space. Trees
//! assign each node a stable arena address; traversals call
//! [`CacheSim::access`] with the node's address range and get back the
//! number of missed lines, which the CPU model converts into DRAM traffic.
//!
//! The implementation favours determinism and simplicity over micro-accuracy:
//! true LRU via a monotonic use-counter, no prefetcher, write-allocate with
//! writeback counted as one extra line of traffic on dirty eviction.

/// Geometry of the simulated cache.
#[derive(Clone, Copy, Debug)]
pub struct CacheConfig {
    /// Total capacity in bytes (e.g. 22 MiB for the paper's Xeon LLC).
    pub capacity_bytes: u64,
    /// Cache line size in bytes.
    pub line_bytes: u64,
    /// Associativity (ways per set).
    pub ways: usize,
}

impl CacheConfig {
    /// The evaluation server's LLC: 22 MB, 64 B lines, 16-way (§7.1).
    pub fn xeon_llc() -> Self {
        Self { capacity_bytes: 22 * 1024 * 1024, line_bytes: 64, ways: 16 }
    }

    /// A small cache for tests that want to force misses.
    pub fn tiny(capacity_bytes: u64) -> Self {
        Self { capacity_bytes, line_bytes: 64, ways: 4 }
    }

    /// Number of sets implied by the geometry (at least 1).
    pub fn num_sets(&self) -> u64 {
        (self.capacity_bytes / (self.line_bytes * self.ways as u64)).max(1)
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct Way {
    tag: u64,
    last_use: u64,
    valid: bool,
    dirty: bool,
}

/// Outcome of one (possibly multi-line) access.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Lines found in cache.
    pub hit_lines: u64,
    /// Lines fetched from DRAM.
    pub miss_lines: u64,
    /// Dirty lines written back to DRAM by evictions this access caused.
    pub writeback_lines: u64,
}

/// The cache simulator. All state is owned; cloning gives an independent
/// cache with identical contents (used by what-if accounting in benches).
#[derive(Clone)]
pub struct CacheSim {
    cfg: CacheConfig,
    sets: Vec<Vec<Way>>,
    clock: u64,
    hits: u64,
    misses: u64,
    writebacks: u64,
}

impl CacheSim {
    /// Creates an empty (cold) cache.
    pub fn new(cfg: CacheConfig) -> Self {
        let sets = vec![vec![Way::default(); cfg.ways]; cfg.num_sets() as usize];
        Self { cfg, sets, clock: 0, hits: 0, misses: 0, writebacks: 0 }
    }

    /// The configured geometry.
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    /// Accesses `bytes` bytes starting at `addr`; `write` marks lines dirty.
    /// Each cache line in the range is looked up (and installed on miss).
    pub fn access(&mut self, addr: u64, bytes: u64, write: bool) -> AccessOutcome {
        let mut out = AccessOutcome::default();
        if bytes == 0 {
            return out;
        }
        let first = addr / self.cfg.line_bytes;
        let last = (addr + bytes - 1) / self.cfg.line_bytes;
        for line in first..=last {
            self.clock += 1;
            let set_idx = (line % self.cfg.num_sets()) as usize;
            let set = &mut self.sets[set_idx];
            if let Some(w) = set.iter_mut().find(|w| w.valid && w.tag == line) {
                w.last_use = self.clock;
                w.dirty |= write;
                out.hit_lines += 1;
                self.hits += 1;
                continue;
            }
            // Miss: install in the LRU way (invalid ways first).
            out.miss_lines += 1;
            self.misses += 1;
            let victim = set
                .iter_mut()
                .min_by_key(|w| if w.valid { w.last_use + 1 } else { 0 })
                .expect("set has at least one way");
            if victim.valid && victim.dirty {
                out.writeback_lines += 1;
                self.writebacks += 1;
            }
            *victim = Way { tag: line, last_use: self.clock, valid: true, dirty: write };
        }
        out
    }

    /// Total lifetime hit count.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Total lifetime miss count.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Total lifetime writeback count.
    pub fn writebacks(&self) -> u64 {
        self.writebacks
    }

    /// DRAM traffic in bytes implied by the lifetime misses + writebacks.
    pub fn dram_bytes(&self) -> u64 {
        (self.misses + self.writebacks) * self.cfg.line_bytes
    }

    /// Clears contents and counters (cold cache again).
    pub fn reset(&mut self) {
        for set in &mut self.sets {
            for w in set.iter_mut() {
                *w = Way::default();
            }
        }
        self.clock = 0;
        self.hits = 0;
        self.misses = 0;
        self.writebacks = 0;
    }

    /// Clears only the counters, keeping cache contents warm — used between
    /// a warmup phase and a measured phase, mirroring the paper's protocol.
    pub fn reset_counters(&mut self) {
        self.hits = 0;
        self.misses = 0;
        self.writebacks = 0;
    }

    /// Exports the full cache state — per-way lines in set-major order plus
    /// the LRU clock and lifetime counters — for host checkpoints. The LLC
    /// contents are host state like any other: restoring them cold instead
    /// of warm would shift every post-restore hit/miss count and break the
    /// byte-identity of replayed host metrics.
    pub fn snapshot(&self) -> CacheSnapshot {
        CacheSnapshot {
            ways: self
                .sets
                .iter()
                .flat_map(|set| set.iter())
                .map(|w| CacheWaySnapshot {
                    tag: w.tag,
                    last_use: w.last_use,
                    valid: w.valid,
                    dirty: w.dirty,
                })
                .collect(),
            clock: self.clock,
            hits: self.hits,
            misses: self.misses,
            writebacks: self.writebacks,
        }
    }

    /// Rebuilds a cache from a snapshot under the given geometry. Returns
    /// `None` when the snapshot's way count disagrees with the geometry —
    /// the caller (the checkpoint layer) turns that into a typed error.
    pub fn from_snapshot(cfg: CacheConfig, snap: &CacheSnapshot) -> Option<Self> {
        let expect = cfg.num_sets() as usize * cfg.ways;
        if snap.ways.len() != expect {
            return None;
        }
        let mut sim = Self::new(cfg);
        for (i, w) in snap.ways.iter().enumerate() {
            sim.sets[i / cfg.ways][i % cfg.ways] =
                Way { tag: w.tag, last_use: w.last_use, valid: w.valid, dirty: w.dirty };
        }
        sim.clock = snap.clock;
        sim.hits = snap.hits;
        sim.misses = snap.misses;
        sim.writebacks = snap.writebacks;
        Some(sim)
    }
}

/// One way's state in a [`CacheSnapshot`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheWaySnapshot {
    /// Line tag.
    pub tag: u64,
    /// LRU use stamp.
    pub last_use: u64,
    /// Whether the way holds a line.
    pub valid: bool,
    /// Whether the line is dirty (writeback on eviction).
    pub dirty: bool,
}

/// Full restorable state of a [`CacheSim`] (see [`CacheSim::snapshot`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CacheSnapshot {
    /// Every way, set-major (`set * ways + way`).
    pub ways: Vec<CacheWaySnapshot>,
    /// Monotonic LRU clock.
    pub clock: u64,
    /// Lifetime hit count.
    pub hits: u64,
    /// Lifetime miss count.
    pub misses: u64,
    /// Lifetime writeback count.
    pub writebacks: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CacheSim {
        // 4 sets × 4 ways × 64 B = 1 KiB.
        CacheSim::new(CacheConfig { capacity_bytes: 1024, line_bytes: 64, ways: 4 })
    }

    #[test]
    fn first_access_misses_second_hits() {
        let mut c = tiny();
        let o1 = c.access(0, 8, false);
        assert_eq!(o1.miss_lines, 1);
        let o2 = c.access(0, 8, false);
        assert_eq!(o2.hit_lines, 1);
        assert_eq!(o2.miss_lines, 0);
    }

    #[test]
    fn straddling_access_touches_two_lines() {
        let mut c = tiny();
        let o = c.access(60, 8, false); // crosses the 64-byte boundary
        assert_eq!(o.miss_lines, 2);
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = tiny();
        // 4 ways in set 0: lines 0, 4, 8, 12 (stride = num_sets = 4 lines).
        for i in 0..4u64 {
            c.access(i * 4 * 64, 1, false);
        }
        // Touch line 0 to refresh it, then install a 5th line in set 0.
        c.access(0, 1, false);
        c.access(4 * 4 * 64, 1, false);
        // Line 0 must still be cached (refreshed); line 4*64 (oldest) evicted.
        assert_eq!(c.access(0, 1, false).hit_lines, 1);
        assert_eq!(c.access(4 * 64, 1, false).miss_lines, 1);
    }

    #[test]
    fn writeback_counted_on_dirty_eviction() {
        let mut c = tiny();
        c.access(0, 1, true); // dirty line in set 0
        for i in 1..=4u64 {
            c.access(i * 4 * 64, 1, false); // evict everything in set 0
        }
        assert_eq!(c.writebacks(), 1);
        assert_eq!(c.dram_bytes(), (c.misses() + 1) * 64);
    }

    #[test]
    fn working_set_smaller_than_cache_has_no_steady_state_misses() {
        let mut c = tiny();
        // 8 lines = 512 B < 1 KiB capacity, mapped across 4 sets (2 ways each).
        for round in 0..10 {
            for line in 0..8u64 {
                let o = c.access(line * 64, 4, false);
                if round > 0 {
                    assert_eq!(o.miss_lines, 0, "round {round} line {line}");
                }
            }
        }
        assert_eq!(c.misses(), 8);
    }

    #[test]
    fn reset_counters_keeps_contents_warm() {
        let mut c = tiny();
        c.access(0, 64, false);
        c.reset_counters();
        assert_eq!(c.misses(), 0);
        assert_eq!(c.access(0, 64, false).hit_lines, 1);
    }

    #[test]
    fn zero_byte_access_is_free() {
        let mut c = tiny();
        assert_eq!(c.access(123, 0, true), AccessOutcome::default());
        assert_eq!(c.misses(), 0);
    }
}

#[cfg(test)]
mod conflict_tests {
    use super::*;

    #[test]
    fn conflict_misses_under_set_pressure() {
        // 4-way sets: 5 lines mapping to one set thrash in round-robin LRU.
        let mut c = CacheSim::new(CacheConfig { capacity_bytes: 1024, line_bytes: 64, ways: 4 });
        let stride = c.config().num_sets() * 64;
        for round in 0..3 {
            for i in 0..5u64 {
                let o = c.access(i * stride, 1, false);
                if round > 0 {
                    assert_eq!(o.miss_lines, 1, "LRU thrash must miss every time");
                }
            }
        }
    }

    #[test]
    fn reads_do_not_dirty_lines() {
        let mut c = CacheSim::new(CacheConfig::tiny(256));
        c.access(0, 1, false);
        // Evict via conflicting fills.
        for i in 1..64u64 {
            c.access(i * 64, 1, false);
        }
        assert_eq!(c.writebacks(), 0, "clean evictions write nothing back");
    }
}
