//! CPU time/traffic model.
//!
//! Converts instrumented work into simulated time. The model is the standard
//! throughput decomposition: a batch's time is the maximum of its compute
//! time (work cycles spread over the machine's threads at a parallel
//! efficiency) and its memory time (DRAM bytes over effective bandwidth) —
//! batches overlap compute with memory, and whichever resource saturates
//! bounds throughput. This is exactly the regime the paper targets ("their
//! throughput is often memory-bottlenecked", §1).

use crate::cache::{CacheConfig, CacheSim};

/// Parameters of the simulated host CPU.
#[derive(Clone, Copy, Debug)]
pub struct CpuConfig {
    /// Core frequency in Hz.
    pub freq_hz: f64,
    /// Hardware threads participating in batch processing.
    pub threads: usize,
    /// Fraction of linear speedup actually achieved on tree workloads.
    pub parallel_efficiency: f64,
    /// LLC geometry.
    pub llc: CacheConfig,
    /// Effective DRAM bandwidth for the (mostly random) access patterns of
    /// index traversal, bytes/second, aggregated over channels.
    pub dram_bw_bytes_per_s: f64,
}

impl CpuConfig {
    /// The baseline machine of §7.1: 2× Xeon E5-2630 v4 (20 cores/40 threads,
    /// paper uses it against a 32-thread PIM host; we model 32 threads),
    /// 2.2 GHz, 25 MB LLC per socket (we model one 22 MB LLC to match the
    /// UPMEM host's cache, keeping the two machines comparable as the paper
    /// argues they are), 8 DDR4 channels ≈ 68 GB/s peak ⇒ ~16 GB/s effective
    /// for pointer-chasing reads.
    pub fn xeon() -> Self {
        Self {
            freq_hz: 2.2e9,
            threads: 32,
            parallel_efficiency: 0.7,
            llc: CacheConfig::xeon_llc(),
            dram_bw_bytes_per_s: 16e9,
        }
    }
}

/// Accumulated work/traffic counters for a measured phase.
#[derive(Clone, Copy, Debug, Default)]
pub struct CpuStats {
    /// Instruction work in cycles (sequential total; parallelized by model).
    pub work_cycles: u64,
    /// Critical-path length in cycles (charged unparallelized).
    pub span_cycles: u64,
    /// DRAM bytes moved (misses + writebacks).
    pub dram_bytes: u64,
    /// LLC misses.
    pub llc_misses: u64,
    /// LLC hits.
    pub llc_hits: u64,
}

impl CpuStats {
    /// Fraction of LLC accesses that hit (0 when nothing was touched) —
    /// the derived view the metrics/perf reports use alongside the raw
    /// hit/miss counters.
    pub fn llc_hit_rate(&self) -> f64 {
        let total = self.llc_hits + self.llc_misses;
        if total == 0 {
            0.0
        } else {
            self.llc_hits as f64 / total as f64
        }
    }

    /// Component-wise sum.
    pub fn merge(&self, other: &CpuStats) -> CpuStats {
        CpuStats {
            work_cycles: self.work_cycles + other.work_cycles,
            span_cycles: self.span_cycles.max(other.span_cycles),
            dram_bytes: self.dram_bytes + other.dram_bytes,
            llc_misses: self.llc_misses + other.llc_misses,
            llc_hits: self.llc_hits + other.llc_hits,
        }
    }
}

/// The time model: maps [`CpuStats`] to simulated seconds.
#[derive(Clone, Copy, Debug)]
pub struct CpuModel {
    /// CPU parameters.
    pub cfg: CpuConfig,
}

impl CpuModel {
    /// Creates a model over the given CPU parameters.
    pub fn new(cfg: CpuConfig) -> Self {
        Self { cfg }
    }

    /// Simulated seconds for a batch with the given counters. Compute and
    /// memory add: index batches proceed in phases (key preparation is
    /// compute-bound, traversal is bandwidth-bound), so their costs do not
    /// overlap across the batch.
    pub fn time_seconds(&self, s: &CpuStats) -> f64 {
        let eff_threads = self.cfg.threads as f64 * self.cfg.parallel_efficiency;
        let compute = s.work_cycles as f64 / (self.cfg.freq_hz * eff_threads)
            + s.span_cycles as f64 / self.cfg.freq_hz;
        let memory = s.dram_bytes as f64 / self.cfg.dram_bw_bytes_per_s;
        compute + memory
    }
}

/// An instrumented execution context threaded through baseline traversals:
/// owns the LLC simulator and the counters.
pub struct CpuMeter {
    cache: CacheSim,
    stats: CpuStats,
    line_bytes: u64,
    /// When false, `touch`/`work` are no-ops — used during untimed warmup
    /// construction so only the measured phase is charged.
    pub enabled: bool,
}

impl CpuMeter {
    /// Creates a disabled meter with a minimal cache — for code paths that
    /// need a meter argument but should not be charged (parallel unmetered
    /// query variants, test scaffolding).
    pub fn disabled() -> Self {
        let mut m = Self::new(CpuConfig {
            llc: crate::cache::CacheConfig::tiny(1024),
            ..CpuConfig::xeon()
        });
        m.enabled = false;
        m
    }

    /// Creates a meter with a cold cache.
    pub fn new(cfg: CpuConfig) -> Self {
        let line = cfg.llc.line_bytes;
        Self {
            cache: CacheSim::new(cfg.llc),
            stats: CpuStats::default(),
            line_bytes: line,
            enabled: true,
        }
    }

    /// Charges `cycles` of parallelizable instruction work.
    #[inline]
    pub fn work(&mut self, cycles: u64) {
        if self.enabled {
            self.stats.work_cycles += cycles;
        }
    }

    /// Charges `cycles` on the critical path (e.g. per-BSP-round latency).
    #[inline]
    pub fn span(&mut self, cycles: u64) {
        if self.enabled {
            self.stats.span_cycles += cycles;
        }
    }

    /// Touches memory at `addr` for `bytes` bytes. The cache decides whether
    /// DRAM traffic results. Warmup phases (enabled = false) still update the
    /// cache contents — warm data stays warm — but don't count traffic.
    #[inline]
    pub fn touch(&mut self, addr: u64, bytes: u64, write: bool) {
        let o = self.cache.access(addr, bytes, write);
        if self.enabled {
            self.stats.llc_hits += o.hit_lines;
            self.stats.llc_misses += o.miss_lines;
            self.stats.dram_bytes += (o.miss_lines + o.writeback_lines) * self.line_bytes;
        }
    }

    /// Charges a DRAM-bypass transfer (e.g. streaming output) of `bytes`.
    #[inline]
    pub fn stream_bytes(&mut self, bytes: u64) {
        if self.enabled {
            self.stats.dram_bytes += bytes;
        }
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> CpuStats {
        self.stats
    }

    /// Resets counters, keeping the cache warm (start of a measured phase).
    pub fn start_measurement(&mut self) {
        self.stats = CpuStats::default();
        self.cache.reset_counters();
        self.enabled = true;
    }

    /// Underlying cache (for tests/diagnostics).
    pub fn cache(&self) -> &CacheSim {
        &self.cache
    }

    /// Exports the meter's full restorable state (counters + warm cache)
    /// for host checkpoints.
    pub fn snapshot(&self) -> MeterSnapshot {
        MeterSnapshot { stats: self.stats, cache: self.cache.snapshot(), enabled: self.enabled }
    }

    /// Rebuilds a meter from a snapshot under the given CPU parameters.
    /// Returns `None` on a geometry mismatch (see
    /// [`CacheSim::from_snapshot`]).
    pub fn from_snapshot(cfg: CpuConfig, snap: &MeterSnapshot) -> Option<Self> {
        Some(Self {
            cache: CacheSim::from_snapshot(cfg.llc, &snap.cache)?,
            stats: snap.stats,
            line_bytes: cfg.llc.line_bytes,
            enabled: snap.enabled,
        })
    }
}

/// Full restorable state of a [`CpuMeter`] (see [`CpuMeter::snapshot`]).
#[derive(Clone, Debug)]
pub struct MeterSnapshot {
    /// Accumulated counters of the current measured phase.
    pub stats: CpuStats,
    /// The warm LLC contents.
    pub cache: crate::cache::CacheSnapshot,
    /// Whether charging was on.
    pub enabled: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> CpuConfig {
        CpuConfig {
            freq_hz: 1e9,
            threads: 4,
            parallel_efficiency: 1.0,
            llc: CacheConfig::tiny(1024),
            dram_bw_bytes_per_s: 1e9,
        }
    }

    #[test]
    fn compute_bound_batch() {
        let m = CpuModel::new(small_cfg());
        let s = CpuStats { work_cycles: 4_000_000, ..Default::default() };
        // 4M cycles over 4 threads at 1 GHz = 1 ms.
        assert!((m.time_seconds(&s) - 1e-3).abs() < 1e-9);
    }

    #[test]
    fn memory_bound_batch() {
        let m = CpuModel::new(small_cfg());
        let s = CpuStats { work_cycles: 100, dram_bytes: 2_000_000, ..Default::default() };
        // 2 MB at 1 GB/s = 2 ms, dominating the 25 ns of compute.
        assert!((m.time_seconds(&s) - 2e-3).abs() < 1e-6);
    }

    #[test]
    fn span_is_not_parallelized() {
        let m = CpuModel::new(small_cfg());
        let a = CpuStats { span_cycles: 1_000_000, ..Default::default() };
        assert!((m.time_seconds(&a) - 1e-3).abs() < 1e-9);
    }

    #[test]
    fn meter_charges_misses_once() {
        let mut meter = CpuMeter::new(small_cfg());
        meter.touch(0, 64, false);
        meter.touch(0, 64, false);
        let s = meter.stats();
        assert_eq!(s.llc_misses, 1);
        assert_eq!(s.llc_hits, 1);
        assert_eq!(s.dram_bytes, 64);
    }

    #[test]
    fn warmup_keeps_cache_warm_but_uncounted() {
        let mut meter = CpuMeter::new(small_cfg());
        meter.enabled = false;
        meter.touch(0, 64, false); // warmup: populates cache silently
        meter.start_measurement();
        meter.touch(0, 64, false);
        let s = meter.stats();
        assert_eq!(s.llc_misses, 0, "warm line must hit");
        assert_eq!(s.llc_hits, 1);
    }

    #[test]
    fn stream_bytes_counts_directly() {
        let mut meter = CpuMeter::new(small_cfg());
        meter.stream_bytes(1234);
        assert_eq!(meter.stats().dram_bytes, 1234);
    }

    #[test]
    fn hit_rate_is_hits_over_accesses() {
        assert_eq!(CpuStats::default().llc_hit_rate(), 0.0, "no accesses, no rate");
        let s = CpuStats { llc_hits: 3, llc_misses: 1, ..Default::default() };
        assert_eq!(s.llc_hit_rate(), 0.75);
    }
}
