//! Oracle suite for the kNN fine filter.
//!
//! The SoA fine filter (`soa::fine_select` — lane-major distance kernel
//! feeding a branchless bounded max-heap) must be **bit-for-bit** equal to
//! the reference selection it replaced: evaluate the metric on every
//! candidate, sort by `(distance, coords)`, drop exact duplicates, keep the
//! first `k`. The brute oracle here is written independently over
//! `std::collections::BinaryHeap` (a max-heap holding the best k seen, ties
//! broken by coordinates) so the two implementations share no code. "Left
//! run wins ties" is covered by the total `(distance, coords)` order: equal
//! distances resolve by coordinates, equal coordinates are duplicates and
//! collapse, so the selected set — and its order — is unique.

use pim_geom::{Metric, Point};
use pim_zd_tree::soa::{fine_select, CoordBlock};
use proptest::prelude::*;
use std::collections::BinaryHeap;

const METRICS: [Metric; 3] = [Metric::L1, Metric::L2, Metric::Linf];

/// Independent reference: a `BinaryHeap` of the best k `(dist, coords)`
/// pairs (max at the top, so the worst survivor pops first), duplicates
/// dropped by a final dedup after draining in ascending order.
fn brute<const D: usize>(
    cands: &[Point<D>],
    q: &Point<D>,
    metric: Metric,
    k: usize,
) -> Vec<(u64, Point<D>)> {
    let mut heap: BinaryHeap<(u64, [u32; D])> = BinaryHeap::new();
    for p in cands {
        let key = (metric.cmp_dist(q, p), p.coords);
        if heap.iter().any(|&h| h == key) {
            continue;
        }
        if heap.len() < k {
            heap.push(key);
        } else if let Some(&top) = heap.peek() {
            if key < top {
                heap.pop();
                heap.push(key);
            }
        }
    }
    let mut out: Vec<(u64, Point<D>)> =
        heap.into_sorted_vec().into_iter().map(|(d, c)| (d, Point::new(c))).collect();
    out.dedup();
    out
}

fn block_of<const D: usize>(cands: &[Point<D>]) -> CoordBlock<D> {
    let mut b = CoordBlock::new();
    for p in cands {
        b.push(p);
    }
    b
}

fn check<const D: usize>(cands: &[Point<D>], q: &Point<D>, k: usize) {
    let block = block_of(cands);
    for metric in METRICS {
        let got = fine_select(&block, q, metric, k);
        let want = brute(cands, q, metric, k);
        assert_eq!(got, want, "metric={metric:?} k={k} |cands|={}", cands.len());
    }
}

fn cube_point3() -> impl Strategy<Value = Point<3>> {
    // A tie-heavy 8³ cube: many candidates collapse onto the same distance
    // shell (and often the same point), stressing duplicate elimination and
    // tie ordering rather than the easy distinct-distance path.
    (0..8u32, 0..8u32, 0..8u32).prop_map(|(x, y, z)| Point::new([x, y, z]))
}

fn wide_point3() -> impl Strategy<Value = Point<3>> {
    (0..1u32 << 21, 0..1u32 << 21, 0..1u32 << 21).prop_map(|(x, y, z)| Point::new([x, y, z]))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Tie-heavy candidates under all three metrics, k spanning under-full,
    /// exact, and overshooting selections.
    #[test]
    fn matches_binary_heap_oracle_tie_heavy(
        cands in proptest::collection::vec(cube_point3(), 1..120),
        q in cube_point3(),
        k in 0usize..40,
    ) {
        check(&cands, &q, k);
    }

    /// Full-range coordinates: distances hit the saturating-add edge of
    /// ℓ2² exactly as the scalar metric does.
    #[test]
    fn matches_binary_heap_oracle_full_range(
        cands in proptest::collection::vec(wide_point3(), 1..80),
        q in wide_point3(),
        k in 0usize..20,
    ) {
        check(&cands, &q, k);
    }

    /// k larger than the candidate set returns every distinct candidate.
    #[test]
    fn k_exceeding_candidates_returns_all_distinct(
        cands in proptest::collection::vec(cube_point3(), 1..40),
        q in cube_point3(),
    ) {
        let k = cands.len() + 7;
        check(&cands, &q, k);
        let got = fine_select(&block_of(&cands), &q, Metric::L2, k);
        let mut distinct: Vec<[u32; 3]> = cands.iter().map(|p| p.coords).collect();
        distinct.sort_unstable();
        distinct.dedup();
        prop_assert_eq!(got.len(), distinct.len());
    }
}

#[test]
fn k_zero_selects_nothing() {
    let cands = [Point::new([1u32, 2, 3]), Point::new([4, 5, 6])];
    for metric in METRICS {
        assert!(fine_select(&block_of(&cands), &Point::new([0; 3]), metric, 0).is_empty());
    }
    check(&cands, &Point::new([7, 7, 7]), 0);
}

#[test]
fn single_candidate_is_selected() {
    let p = Point::new([9u32, 8, 7]);
    let q = Point::new([1u32, 1, 1]);
    for metric in METRICS {
        let got = fine_select(&block_of(&[p]), &q, metric, 3);
        assert_eq!(got, vec![(metric.cmp_dist(&q, &p), p)]);
    }
    check(&[p], &q, 1);
}

/// Exact duplicate points collapse to one selected entry, and the survivor
/// count matches the number of distinct points — the KBest duplicate-skip
/// is what keeps "k smallest distinct" well-defined.
#[test]
fn exact_duplicates_collapse() {
    let p = Point::new([3u32, 3, 3]);
    let r = Point::new([5u32, 0, 0]);
    let cands = [p, p, p, r, p, r];
    let q = Point::new([0u32; 3]);
    check(&cands, &q, 4);
    let got = fine_select(&block_of(&cands), &q, Metric::L1, 4);
    assert_eq!(got.len(), 2, "two distinct points survive");
}
