//! Property tests on the fragment layer (the core crate's own proptest
//! suite; the workspace-level `tests/properties.rs` covers the whole-index
//! surface).

use pim_geom::{Metric, Point};
use pim_zd_tree::frag::{
    knn_bound, push_candidate, BKind, BNode, Fragment, Keyed, NullSink, SearchEnd,
};
use pim_zorder::prefix::Prefix;
use pim_zorder::ZKey;
use proptest::prelude::*;

fn keyed(pts: &[Point<3>]) -> Vec<Keyed<3>> {
    let mut v: Vec<Keyed<3>> = pts.iter().map(|p| (ZKey::<3>::encode(p), *p)).collect();
    v.sort_unstable_by_key(|(k, p)| (*k, p.coords));
    v
}

fn fragment_over(pts: &[Point<3>], cap: usize, dir_bits: u32) -> Fragment<3> {
    let items = keyed(pts);
    let mut f = Fragment::singleton(
        1,
        0,
        BNode {
            prefix: Prefix::new(items[0].0, items[0].0.common_prefix_len(items[0].0)),
            count: 1,
            kind: BKind::Leaf { points: items[..1].to_vec().into() },
        },
        cap,
    );
    f.dir_bits = dir_bits;
    f.dense_min = 4;
    f.merge(&items[1..], &mut NullSink);
    f
}

fn point3() -> impl Strategy<Value = Point<3>> {
    (0..1u32 << 21, 0..1u32 << 21, 0..1u32 << 21).prop_map(|(x, y, z)| Point::new([x, y, z]))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every merged point is findable; absent keys end in a leaf or diverge
    /// (never panic), with or without the dense chunk directory.
    #[test]
    fn merge_then_search_finds_everything(
        pts in proptest::collection::vec(point3(), 2..150),
        probes in proptest::collection::vec(point3(), 0..40),
        dir_bits in 0u32..6,
    ) {
        let f = fragment_over(&pts, 4, dir_bits);
        for p in &pts {
            let k = ZKey::<3>::encode(p);
            match f.search(k, &mut NullSink) {
                SearchEnd::Leaf(idx) => {
                    let BKind::Leaf { points } = &f.node(idx).kind else { panic!() };
                    prop_assert!(points.contains_key(k));
                }
                other => prop_assert!(false, "stored point not at a leaf: {other:?}"),
            }
        }
        let root_pre = f.root_node().prefix;
        for p in &probes {
            let k = ZKey::<3>::encode(p);
            if root_pre.covers(k) {
                // Must terminate in Leaf or Diverge; Remote/Stub impossible
                // in a fully-local fragment.
                match f.search(k, &mut NullSink) {
                    SearchEnd::Leaf(_) | SearchEnd::Diverge { .. } => {}
                    other => prop_assert!(false, "unexpected end {other:?}"),
                }
            }
        }
    }

    /// local_knn on a fully-local fragment equals brute force.
    #[test]
    fn fragment_knn_is_exact(
        pts in proptest::collection::vec(point3(), 2..120),
        q in point3(),
        k in 1usize..12,
    ) {
        let f = fragment_over(&pts, 4, 4);
        let mut cands = Vec::new();
        let mut frontier = Vec::new();
        f.local_knn(f.root, &q, k, Metric::L2, &mut cands, &mut frontier, &mut NullSink);
        prop_assert!(frontier.is_empty());
        let mut want: Vec<(u64, Point<3>)> =
            pts.iter().map(|p| (Metric::L2.cmp_dist(&q, p), *p)).collect();
        want.sort_unstable_by_key(|(d, p)| (*d, p.coords));
        want.dedup();
        want.truncate(k);
        let mut got = cands;
        got.dedup();
        prop_assert_eq!(got, want);
    }

    /// remove() deletes exactly the requested instances.
    #[test]
    fn fragment_remove_is_exact(
        pts in proptest::collection::vec(point3(), 3..120),
        stride in 1usize..5,
    ) {
        let mut f = fragment_over(&pts, 4, 4);
        let to_del: Vec<Point<3>> = pts.iter().step_by(stride).copied().collect();
        let mut removed = 0;
        let _ = f.remove(&keyed(&to_del), &mut removed, &mut NullSink);
        prop_assert_eq!(removed, to_del.len());
    }

    /// The candidate-list helpers maintain a sorted k-bounded prefix.
    #[test]
    fn push_candidate_invariants(
        items in proptest::collection::vec((0u64..1000, point3()), 0..40),
        k in 1usize..8,
    ) {
        let mut cands: Vec<(u64, Point<3>)> = Vec::new();
        for it in &items {
            push_candidate(&mut cands, k, *it, &mut NullSink);
            prop_assert!(cands.len() <= k);
            prop_assert!(cands.windows(2).all(|w| (w[0].0, w[0].1.coords) <= (w[1].0, w[1].1.coords)));
        }
        if cands.len() == k {
            prop_assert_eq!(knn_bound(&cands, k), cands[k - 1].0);
        } else {
            prop_assert_eq!(knn_bound(&cands, k), u64::MAX);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// structure_clone preserves routing: the cached copy ends at a stub
    /// exactly where the master ends at a leaf, and diverges exactly where
    /// the master diverges.
    #[test]
    fn cache_clone_routes_identically(
        pts in proptest::collection::vec(point3(), 2..100),
        probes in proptest::collection::vec(point3(), 1..30),
    ) {
        let f = fragment_over(&pts, 4, 4);
        let c = f.structure_clone();
        let root_pre = f.root_node().prefix;
        for p in pts.iter().chain(probes.iter()) {
            let k = ZKey::<3>::encode(p);
            if !root_pre.covers(k) {
                continue;
            }
            match (f.search(k, &mut NullSink), c.search(k, &mut NullSink)) {
                (SearchEnd::Leaf(a), SearchEnd::Stub(b)) => prop_assert_eq!(a, b),
                (SearchEnd::Diverge { parent: a, side: sa },
                 SearchEnd::Diverge { parent: b, side: sb }) => {
                    prop_assert_eq!((a, sa), (b, sb));
                }
                (m, cc) => prop_assert!(false, "master {m:?} vs cache {cc:?}"),
            }
        }
    }

    /// split_root partitions the fragment: counts and point multisets are
    /// preserved across the detached root and extracted children.
    #[test]
    fn split_root_preserves_points(
        pts in proptest::collection::vec(point3(), 20..150),
    ) {
        let mut f = fragment_over(&pts, 4, 0);
        let total_pts = f.local_points().len();
        let ids = vec![(100u64, 1u32), (101, 2)];
        let (root, frags) = f.split_root(ids.into_iter());
        let sum: usize = frags.iter().map(|fr| fr.local_points().len()).sum();
        prop_assert_eq!(sum, total_pts, "points preserved");
        match &root.kind {
            BKind::Internal { .. } => prop_assert!(frags.len() <= 2),
            BKind::Leaf { .. } => prop_assert_eq!(frags.len(), 1),
            BKind::LeafStub => prop_assert!(false, "master split can't stub"),
        }
    }

    /// local_box_count equals a scan for random boxes, with dense chunking
    /// on and off.
    #[test]
    fn fragment_box_count_is_exact(
        pts in proptest::collection::vec(point3(), 2..120),
        a in point3(),
        b in point3(),
        dir_bits in 0u32..6,
    ) {
        use pim_geom::Aabb;
        let f = fragment_over(&pts, 4, dir_bits);
        let bx = Aabb::new(a, b);
        let mut frontier = Vec::new();
        let got = f.local_box_count(f.root, &bx, &mut frontier, &mut NullSink);
        prop_assert!(frontier.is_empty());
        let want = pts.iter().filter(|p| bx.contains(p)).count() as u64;
        prop_assert_eq!(got, want);
    }
}
