//! Durable checkpoints of the full host state.
//!
//! A checkpoint is a consistent frozen view of the index at one **epoch**
//! (= number of applied mutation batches; see the `epoch` field on
//! [`PimZdTree`]). It captures everything a fresh process needs to continue
//! a run byte-identically: the configuration triple (index, machine, host
//! CPU), the host fragment and directory, every module's master and cached
//! fragments, the simulator's counters (round ids drive fault draws and
//! journal records), and the host meter including the *warm LLC contents*
//! (restoring the cache cold would shift every post-restore hit/miss count
//! and break metric byte-identity).
//!
//! Paired with the write-ahead log ([`crate::wal`]), this gives
//! crash-restart recovery: restore the newest checkpoint, then replay every
//! logged batch with a later epoch ([`PimZdTree::recover`]).
//!
//! ## File layout
//!
//! ```text
//! header:   magic "PZDCKPT1" (8) | version u32 | dims u32 | n_sections u32
//! section:  id u8 | len u64 | payload (len bytes) | crc u64
//! ```
//!
//! All integers little-endian (the [`Enc`]/[`Dec`] codec). Each section's
//! `crc` is [`checksum_bytes`] over its payload under `CKPT_KEY ^ id`, so
//! a payload transplanted between sections fails validation even if intact.
//! Sections appear once each, in id order; hash maps are serialized sorted
//! by meta id, so checkpoint bytes are a deterministic function of the
//! logical state (checkpointing a restored tree reproduces the file
//! byte-for-byte — a property the tests pin).
//!
//! Every decode path is bounds-checked: damaged input surfaces as a typed
//! [`DurabilityError`], never a panic or a silently partial restore.

use crate::config::{Layer, PimZdConfig, Toggles};
use crate::frag::{BKind, BNode, ChildRef, ChunkDir, Fragment, MetaId, RemoteRef};
use crate::host::{PimZdTree, RoundBuffers};
use crate::meta::{Directory, MetaInfo};
use crate::module::ModuleState;
use crate::stats::OpStats;
use crate::wal::{self, Wal, WalOp, WalReadMode, WalRecord};
use pim_geom::Point;
use pim_memsim::{
    CacheConfig, CacheSnapshot, CacheWaySnapshot, CpuConfig, CpuMeter, CpuModel, MeterSnapshot,
};
use pim_sim::config::TransferApi;
use pim_sim::{
    checksum_bytes, Dec, Enc, FaultLog, MachineConfig, PimSystem, ShortRead, SimCounters, SimStats,
};
use pim_zorder::prefix::Prefix;
use pim_zorder::ZKey;
use rustc_hash::FxHashMap;
use std::io::Write as _;
use std::path::Path;

/// Checkpoint file magic.
pub const CKPT_MAGIC: [u8; 8] = *b"PZDCKPT1";
/// Current (only) checkpoint format version.
pub const CKPT_VERSION: u32 = 1;
/// Keyed-checksum domain for section crcs (xor'd with the section id).
const CKPT_KEY: u64 = 0x5a44_434b_5054_3159; // "ZDCKPT1Y"
/// Artifact tag used in [`DurabilityError`]s from this module.
const ARTIFACT: &str = "checkpoint";

// Section ids, in file order.
const SEC_CONFIG: u8 = 1;
const SEC_HOST: u8 = 2;
const SEC_L0: u8 = 3;
const SEC_DIR: u8 = 4;
const SEC_MODULES: u8 = 5;
const SEC_SIM: u8 = 6;
const SEC_CPU: u8 = 7;
const N_SECTIONS: usize = 7;

/// Typed failure of the durability layer. Every way a checkpoint or WAL
/// file can be unusable maps here — decoding never panics and never
/// half-applies.
#[derive(Clone, Debug, PartialEq)]
pub enum DurabilityError {
    /// Filesystem failure (message from the underlying `std::io::Error`).
    Io(String),
    /// The file does not start with the expected magic.
    BadMagic {
        /// Which artifact ("checkpoint" or "wal").
        artifact: &'static str,
    },
    /// The format version is not one this build reads.
    BadVersion {
        /// Which artifact.
        artifact: &'static str,
        /// Version found in the file.
        found: u32,
        /// Version this build supports.
        supported: u32,
    },
    /// The file was written for a different point dimensionality.
    DimMismatch {
        /// Which artifact.
        artifact: &'static str,
        /// Dimensionality found in the file.
        found: u32,
        /// Dimensionality expected by the caller's type.
        expected: u32,
    },
    /// The file ends before the structure it promises.
    Truncated {
        /// Which artifact.
        artifact: &'static str,
        /// Byte offset where data ran out.
        offset: usize,
    },
    /// The file is complete but its contents are damaged or inconsistent
    /// (checksum failure, epoch gap, geometry mismatch, ...).
    Corrupt {
        /// Which artifact.
        artifact: &'static str,
        /// Human-readable diagnosis.
        detail: String,
    },
}

impl std::fmt::Display for DurabilityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DurabilityError::Io(m) => write!(f, "durability I/O error: {m}"),
            DurabilityError::BadMagic { artifact } => write!(f, "{artifact}: bad magic"),
            DurabilityError::BadVersion { artifact, found, supported } => {
                write!(f, "{artifact}: version {found} unsupported (this build reads {supported})")
            }
            DurabilityError::DimMismatch { artifact, found, expected } => {
                write!(f, "{artifact}: written for {found}-dim points, expected {expected}-dim")
            }
            DurabilityError::Truncated { artifact, offset } => {
                write!(f, "{artifact}: truncated at byte offset {offset}")
            }
            DurabilityError::Corrupt { artifact, detail } => {
                write!(f, "{artifact}: corrupt — {detail}")
            }
        }
    }
}

impl std::error::Error for DurabilityError {}

impl From<std::io::Error> for DurabilityError {
    fn from(e: std::io::Error) -> Self {
        DurabilityError::Io(e.to_string())
    }
}

fn corrupt(detail: impl Into<String>) -> DurabilityError {
    DurabilityError::Corrupt { artifact: ARTIFACT, detail: detail.into() }
}

/// A concrete (and therefore `Copy`) short-read-to-corrupt adapter for
/// one named section.
fn short(section: &'static str, e: ShortRead) -> DurabilityError {
    corrupt(format!("{section} section: {e}"))
}

// ---------------------------------------------------------------------
// Value codecs (shared across sections)
// ---------------------------------------------------------------------

fn enc_prefix<const D: usize>(e: &mut Enc, p: &Prefix<D>) {
    e.u64(p.key.0);
    e.u32(p.len);
}

fn dec_prefix<const D: usize>(d: &mut Dec) -> Result<Prefix<D>, ShortRead> {
    let key = ZKey(d.u64()?);
    let len = d.u32()?;
    Ok(Prefix { key, len })
}

fn dec_point<const D: usize>(d: &mut Dec) -> Result<Point<D>, ShortRead> {
    let mut coords = [0u32; D];
    for c in coords.iter_mut() {
        *c = d.u32()?;
    }
    Ok(Point::new(coords))
}

fn enc_child<const D: usize>(e: &mut Enc, c: &ChildRef<D>) {
    match c {
        ChildRef::Local(i) => {
            e.u8(0);
            e.u32(*i);
        }
        ChildRef::Remote(r) => {
            e.u8(1);
            e.u64(r.meta);
            e.u32(r.module);
            enc_prefix(e, &r.prefix);
            e.u64(r.sc);
        }
    }
}

fn dec_child<const D: usize>(d: &mut Dec) -> Result<ChildRef<D>, ShortRead> {
    Ok(match d.u8()? {
        0 => ChildRef::Local(d.u32()?),
        _ => ChildRef::Remote(RemoteRef {
            meta: d.u64()?,
            module: d.u32()?,
            prefix: dec_prefix(d)?,
            sc: d.u64()?,
        }),
    })
}

fn enc_node<const D: usize>(e: &mut Enc, n: &BNode<D>) {
    enc_prefix(e, &n.prefix);
    e.u64(n.count);
    match &n.kind {
        BKind::Internal { left, right } => {
            e.u8(0);
            enc_child(e, left);
            enc_child(e, right);
        }
        BKind::Leaf { points } => {
            e.u8(1);
            e.u32(points.len() as u32);
            // Fused SoA write: hand the key column and coordinate lanes to
            // the wire layer, which interleaves them per point. Byte layout
            // (u64 key LE, then D little-endian u32 coords) is unchanged
            // from the AoS loop this replaces — PZDCKPT1 stays pinned.
            let lanes: Vec<&[u32]> = (0..D).map(|j| points.lane(j)).collect();
            e.keyed_points(points.keys(), &lanes);
        }
        BKind::LeafStub => e.u8(2),
    }
}

fn dec_node<const D: usize>(d: &mut Dec) -> Result<BNode<D>, ShortRead> {
    let prefix = dec_prefix(d)?;
    let count = d.u64()?;
    let kind = match d.u8()? {
        0 => BKind::Internal { left: dec_child(d)?, right: dec_child(d)? },
        1 => {
            let n = d.u32()? as usize;
            let mut points = crate::soa::PointSet::with_capacity(n);
            for _ in 0..n {
                let k = ZKey(d.u64()?);
                let p = dec_point(d)?;
                points.push(k, &p);
            }
            BKind::Leaf { points }
        }
        _ => BKind::LeafStub,
    };
    Ok(BNode { prefix, count, kind })
}

fn enc_fragment<const D: usize>(e: &mut Enc, f: &Fragment<D>) {
    e.u64(f.meta);
    e.u32(f.master_module);
    e.u32(f.root);
    e.u64(f.leaf_cap as u64);
    e.u32(f.dir_bits);
    e.u32(f.dense_min);
    e.u32(f.chunk_dir.bits);
    e.u32(f.chunk_dir.slots.len() as u32);
    for &s in &f.chunk_dir.slots {
        e.u32(s);
    }
    e.u32(f.free.len() as u32);
    for &s in &f.free {
        e.u32(s);
    }
    e.u32(f.nodes.len() as u32);
    for n in &f.nodes {
        enc_node(e, n);
    }
}

fn dec_fragment<const D: usize>(d: &mut Dec) -> Result<Fragment<D>, ShortRead> {
    let meta = d.u64()?;
    let master_module = d.u32()?;
    let root = d.u32()?;
    let leaf_cap = d.u64()? as usize;
    let dir_bits = d.u32()?;
    let dense_min = d.u32()?;
    let bits = d.u32()?;
    let n_slots = d.u32()? as usize;
    let mut slots = Vec::with_capacity(n_slots);
    for _ in 0..n_slots {
        slots.push(d.u32()?);
    }
    let n_free = d.u32()? as usize;
    let mut free = Vec::with_capacity(n_free);
    for _ in 0..n_free {
        free.push(d.u32()?);
    }
    let n_nodes = d.u32()? as usize;
    let mut nodes = Vec::with_capacity(n_nodes);
    for _ in 0..n_nodes {
        nodes.push(dec_node(d)?);
    }
    Ok(Fragment {
        meta,
        master_module,
        nodes,
        free,
        root,
        leaf_cap,
        chunk_dir: ChunkDir { bits, slots },
        dir_bits,
        dense_min,
    })
}

fn enc_frag_map<const D: usize>(e: &mut Enc, map: &FxHashMap<MetaId, Fragment<D>>) {
    // Sorted by meta id: checkpoint bytes must not depend on hash order.
    let mut ids: Vec<MetaId> = map.keys().copied().collect();
    ids.sort_unstable();
    e.u32(ids.len() as u32);
    for id in ids {
        enc_fragment(e, &map[&id]);
    }
}

fn dec_frag_map<const D: usize>(d: &mut Dec) -> Result<FxHashMap<MetaId, Fragment<D>>, ShortRead> {
    let n = d.u32()? as usize;
    let mut map = FxHashMap::default();
    for _ in 0..n {
        let f: Fragment<D> = dec_fragment(d)?;
        map.insert(f.meta, f);
    }
    Ok(map)
}

fn enc_meta_info<const D: usize>(e: &mut Enc, m: &MetaInfo<D>) {
    e.u64(m.id);
    e.u32(m.module);
    e.u8(match m.layer {
        Layer::L0 => 0,
        Layer::L1 => 1,
        Layer::L2 => 2,
    });
    match m.parent {
        None => e.u8(0),
        Some(p) => {
            e.u8(1);
            e.u64(p);
        }
    }
    e.u32(m.children.len() as u32);
    for &c in &m.children {
        e.u64(c);
    }
    enc_prefix(e, &m.prefix);
    e.u64(m.synced_sc);
    e.i64(m.pending_delta);
    e.u32(m.cached_on.len() as u32);
    for &c in &m.cached_on {
        e.u32(c);
    }
    e.u64(m.live_nodes);
    e.bool(m.dirty);
}

fn dec_meta_info<const D: usize>(d: &mut Dec) -> Result<MetaInfo<D>, ShortRead> {
    let id = d.u64()?;
    let module = d.u32()?;
    let layer = match d.u8()? {
        0 => Layer::L0,
        1 => Layer::L1,
        _ => Layer::L2,
    };
    let parent = match d.u8()? {
        0 => None,
        _ => Some(d.u64()?),
    };
    let n_children = d.u32()? as usize;
    let mut children = Vec::with_capacity(n_children);
    for _ in 0..n_children {
        children.push(d.u64()?);
    }
    let prefix = dec_prefix(d)?;
    let synced_sc = d.u64()?;
    let pending_delta = d.i64()?;
    let n_cached = d.u32()? as usize;
    let mut cached_on = Vec::with_capacity(n_cached);
    for _ in 0..n_cached {
        cached_on.push(d.u32()?);
    }
    let live_nodes = d.u64()?;
    let dirty = d.bool()?;
    Ok(MetaInfo {
        id,
        module,
        layer,
        parent,
        children,
        prefix,
        synced_sc,
        pending_delta,
        cached_on,
        live_nodes,
        dirty,
    })
}

// ---------------------------------------------------------------------
// Section payloads
// ---------------------------------------------------------------------

fn enc_config_section<const D: usize>(t: &PimZdTree<D>) -> Vec<u8> {
    let mut e = Enc::new();
    let c = &t.cfg;
    e.u64(c.theta_l0);
    e.u64(c.theta_l1);
    e.u64(c.chunk_b);
    e.u64(c.leaf_cap as u64);
    e.u64(c.k_pull_l1);
    e.u64(c.k_pull_l2);
    e.f64(c.imbalance_factor);
    e.u64(c.delta_l1);
    e.u64(c.placement_seed);
    e.bool(c.toggles.fast_zorder);
    e.bool(c.toggles.lazy_counters);
    e.bool(c.toggles.coarse_fine_knn);
    e.bool(c.toggles.practical_chunking);
    e.u64(c.max_fragment_nodes as u64);
    let m = t.sys.config();
    e.u64(m.n_modules as u64);
    e.f64(m.pim_freq_hz);
    e.f64(m.pim_local_bw);
    e.f64(m.channel_bw_per_module);
    e.f64(m.channel_bw_aggregate);
    e.f64(m.mux_switch_s);
    e.u8(match m.api {
        TransferApi::Sdk => 0,
        TransferApi::Direct => 1,
    });
    e.u64(m.host_threads as u64);
    e.u64(m.local_mem_bytes);
    let cc = &t.cpu_cfg;
    e.f64(cc.freq_hz);
    e.u64(cc.threads as u64);
    e.f64(cc.parallel_efficiency);
    e.u64(cc.llc.capacity_bytes);
    e.u64(cc.llc.line_bytes);
    e.u64(cc.llc.ways as u64);
    e.f64(cc.dram_bw_bytes_per_s);
    e.into_bytes()
}

fn dec_config_section(
    payload: &[u8],
) -> Result<(PimZdConfig, MachineConfig, CpuConfig), DurabilityError> {
    let s = |e: ShortRead| short("config", e);
    let mut d = Dec::new(payload);
    let cfg = PimZdConfig {
        theta_l0: d.u64().map_err(s)?,
        theta_l1: d.u64().map_err(s)?,
        chunk_b: d.u64().map_err(s)?,
        leaf_cap: d.u64().map_err(s)? as usize,
        k_pull_l1: d.u64().map_err(s)?,
        k_pull_l2: d.u64().map_err(s)?,
        imbalance_factor: d.f64().map_err(s)?,
        delta_l1: d.u64().map_err(s)?,
        placement_seed: d.u64().map_err(s)?,
        toggles: Toggles {
            fast_zorder: d.bool().map_err(s)?,
            lazy_counters: d.bool().map_err(s)?,
            coarse_fine_knn: d.bool().map_err(s)?,
            practical_chunking: d.bool().map_err(s)?,
        },
        max_fragment_nodes: d.u64().map_err(s)? as usize,
    };
    let machine = MachineConfig {
        n_modules: d.u64().map_err(s)? as usize,
        pim_freq_hz: d.f64().map_err(s)?,
        pim_local_bw: d.f64().map_err(s)?,
        channel_bw_per_module: d.f64().map_err(s)?,
        channel_bw_aggregate: d.f64().map_err(s)?,
        mux_switch_s: d.f64().map_err(s)?,
        api: match d.u8().map_err(s)? {
            0 => TransferApi::Sdk,
            _ => TransferApi::Direct,
        },
        host_threads: d.u64().map_err(s)? as usize,
        local_mem_bytes: d.u64().map_err(s)?,
    };
    let cpu = CpuConfig {
        freq_hz: d.f64().map_err(s)?,
        threads: d.u64().map_err(s)? as usize,
        parallel_efficiency: d.f64().map_err(s)?,
        llc: CacheConfig {
            capacity_bytes: d.u64().map_err(s)?,
            line_bytes: d.u64().map_err(s)?,
            ways: d.u64().map_err(s)? as usize,
        },
        dram_bw_bytes_per_s: d.f64().map_err(s)?,
    };
    Ok((cfg, machine, cpu))
}

fn enc_host_section<const D: usize>(t: &PimZdTree<D>) -> Vec<u8> {
    let mut e = Enc::new();
    e.u64(t.epoch);
    e.u64(t.n_points as u64);
    e.u64(t.staging_next);
    e.bool(t.l0_replicated);
    e.bool(t.sys.accounting);
    e.into_bytes()
}

struct HostSection {
    epoch: u64,
    n_points: usize,
    staging_next: u64,
    l0_replicated: bool,
    accounting: bool,
}

fn dec_host_section(payload: &[u8]) -> Result<HostSection, DurabilityError> {
    let s = |e: ShortRead| short("host", e);
    let mut d = Dec::new(payload);
    Ok(HostSection {
        epoch: d.u64().map_err(s)?,
        n_points: d.u64().map_err(s)? as usize,
        staging_next: d.u64().map_err(s)?,
        l0_replicated: d.bool().map_err(s)?,
        accounting: d.bool().map_err(s)?,
    })
}

fn enc_l0_section<const D: usize>(t: &PimZdTree<D>) -> Vec<u8> {
    let mut e = Enc::new();
    match &t.l0 {
        None => e.u8(0),
        Some(f) => {
            e.u8(1);
            enc_fragment(&mut e, f);
        }
    }
    e.into_bytes()
}

fn dec_l0_section<const D: usize>(payload: &[u8]) -> Result<Option<Fragment<D>>, DurabilityError> {
    let s = |e: ShortRead| short("l0", e);
    let mut d = Dec::new(payload);
    match d.u8().map_err(s)? {
        0 => Ok(None),
        _ => Ok(Some(dec_fragment(&mut d).map_err(s)?)),
    }
}

fn enc_dir_section<const D: usize>(t: &PimZdTree<D>) -> Vec<u8> {
    let mut e = Enc::new();
    e.u64(t.dir.id_bound());
    let mut ids: Vec<MetaId> = t.dir.metas.keys().copied().collect();
    ids.sort_unstable();
    e.u32(ids.len() as u32);
    for id in ids {
        enc_meta_info(&mut e, &t.dir.metas[&id]);
    }
    e.into_bytes()
}

fn dec_dir_section<const D: usize>(payload: &[u8]) -> Result<Directory<D>, DurabilityError> {
    let s = |e: ShortRead| short("directory", e);
    let mut d = Dec::new(payload);
    let next_id = d.u64().map_err(s)?;
    let n = d.u32().map_err(s)? as usize;
    let mut metas = FxHashMap::default();
    for _ in 0..n {
        let m: MetaInfo<D> = dec_meta_info(&mut d).map_err(s)?;
        metas.insert(m.id, m);
    }
    Ok(Directory::from_parts(metas, next_id))
}

fn enc_modules_section<const D: usize>(t: &PimZdTree<D>) -> Vec<u8> {
    let mut e = Enc::new();
    e.u32(t.sys.n_modules() as u32);
    for i in 0..t.sys.n_modules() {
        let m = t.sys.peek(i);
        enc_frag_map(&mut e, &m.masters);
        enc_frag_map(&mut e, &m.caches);
    }
    e.into_bytes()
}

fn dec_modules_section<const D: usize>(
    payload: &[u8],
) -> Result<Vec<ModuleState<D>>, DurabilityError> {
    let s = |e: ShortRead| short("modules", e);
    let mut d = Dec::new(payload);
    let n = d.u32().map_err(s)? as usize;
    let mut states = Vec::with_capacity(n);
    for _ in 0..n {
        let masters = dec_frag_map(&mut d).map_err(s)?;
        let caches = dec_frag_map(&mut d).map_err(s)?;
        states.push(ModuleState { masters, caches });
    }
    Ok(states)
}

fn enc_sim_section<const D: usize>(t: &PimZdTree<D>) -> Vec<u8> {
    let c = t.sys.export_counters();
    let mut e = Enc::new();
    e.u64(c.stats.rounds);
    e.u64(c.stats.cpu_to_pim_bytes);
    e.u64(c.stats.pim_to_cpu_bytes);
    e.f64(c.stats.pim_s);
    e.f64(c.stats.comm_s);
    e.f64(c.stats.overhead_s);
    e.f64(c.stats.worst_imbalance);
    e.u64(c.stats.total_pim_cycles);
    e.u64(c.stats.sum_max_cycles);
    e.u64(c.stats.n_modules as u64);
    e.u32(c.stats.imbalance_history.len() as u32);
    for &v in &c.stats.imbalance_history {
        e.f64(v);
    }
    e.u64(c.trace_round);
    e.u64(c.fault_log.exec_faults);
    e.u64(c.fault_log.reply_drops);
    e.u64(c.fault_log.reply_corruptions);
    e.u64(c.fault_log.stragglers);
    e.u64(c.fault_log.deaths);
    e.u64(c.fault_log.retries);
    e.u64(c.fault_log.retransmitted_bytes);
    e.f64(c.fault_log.timeout_s);
    e.u64(c.fault_log.salvages);
    e.u64(c.fault_log.salvaged_bytes);
    e.u64(c.fault_log.host_crashes);
    e.u32(c.dead.len() as u32);
    for &b in &c.dead {
        e.bool(b);
    }
    e.into_bytes()
}

fn dec_sim_section(payload: &[u8]) -> Result<SimCounters, DurabilityError> {
    let s = |e: ShortRead| short("sim", e);
    let mut d = Dec::new(payload);
    let mut stats = SimStats {
        rounds: d.u64().map_err(s)?,
        cpu_to_pim_bytes: d.u64().map_err(s)?,
        pim_to_cpu_bytes: d.u64().map_err(s)?,
        pim_s: d.f64().map_err(s)?,
        comm_s: d.f64().map_err(s)?,
        overhead_s: d.f64().map_err(s)?,
        worst_imbalance: d.f64().map_err(s)?,
        total_pim_cycles: d.u64().map_err(s)?,
        sum_max_cycles: d.u64().map_err(s)?,
        n_modules: d.u64().map_err(s)? as usize,
        imbalance_history: Vec::new(),
    };
    let n_hist = d.u32().map_err(s)? as usize;
    let mut hist = Vec::with_capacity(n_hist);
    for _ in 0..n_hist {
        hist.push(d.f64().map_err(s)?);
    }
    stats.imbalance_history = hist;
    let trace_round = d.u64().map_err(s)?;
    let fault_log = FaultLog {
        exec_faults: d.u64().map_err(s)?,
        reply_drops: d.u64().map_err(s)?,
        reply_corruptions: d.u64().map_err(s)?,
        stragglers: d.u64().map_err(s)?,
        deaths: d.u64().map_err(s)?,
        retries: d.u64().map_err(s)?,
        retransmitted_bytes: d.u64().map_err(s)?,
        timeout_s: d.f64().map_err(s)?,
        salvages: d.u64().map_err(s)?,
        salvaged_bytes: d.u64().map_err(s)?,
        host_crashes: d.u64().map_err(s)?,
    };
    let n_dead = d.u32().map_err(s)? as usize;
    let mut dead = Vec::with_capacity(n_dead);
    for _ in 0..n_dead {
        dead.push(d.bool().map_err(s)?);
    }
    Ok(SimCounters { stats, trace_round, fault_log, dead })
}

fn enc_cpu_section<const D: usize>(t: &PimZdTree<D>) -> Vec<u8> {
    let snap = t.meter.snapshot();
    let mut e = Enc::new();
    e.u64(snap.stats.work_cycles);
    e.u64(snap.stats.span_cycles);
    e.u64(snap.stats.dram_bytes);
    e.u64(snap.stats.llc_misses);
    e.u64(snap.stats.llc_hits);
    e.bool(snap.enabled);
    e.u64(snap.cache.clock);
    e.u64(snap.cache.hits);
    e.u64(snap.cache.misses);
    e.u64(snap.cache.writebacks);
    e.u32(snap.cache.ways.len() as u32);
    for w in &snap.cache.ways {
        e.u64(w.tag);
        e.u64(w.last_use);
        e.bool(w.valid);
        e.bool(w.dirty);
    }
    e.into_bytes()
}

fn dec_cpu_section(payload: &[u8]) -> Result<MeterSnapshot, DurabilityError> {
    let s = |e: ShortRead| short("cpu", e);
    let mut d = Dec::new(payload);
    let stats = pim_memsim::CpuStats {
        work_cycles: d.u64().map_err(s)?,
        span_cycles: d.u64().map_err(s)?,
        dram_bytes: d.u64().map_err(s)?,
        llc_misses: d.u64().map_err(s)?,
        llc_hits: d.u64().map_err(s)?,
    };
    let enabled = d.bool().map_err(s)?;
    let clock = d.u64().map_err(s)?;
    let hits = d.u64().map_err(s)?;
    let misses = d.u64().map_err(s)?;
    let writebacks = d.u64().map_err(s)?;
    let n_ways = d.u32().map_err(s)? as usize;
    let mut ways = Vec::with_capacity(n_ways);
    for _ in 0..n_ways {
        ways.push(CacheWaySnapshot {
            tag: d.u64().map_err(s)?,
            last_use: d.u64().map_err(s)?,
            valid: d.bool().map_err(s)?,
            dirty: d.bool().map_err(s)?,
        });
    }
    Ok(MeterSnapshot {
        stats,
        cache: CacheSnapshot { ways, clock, hits, misses, writebacks },
        enabled,
    })
}

// ---------------------------------------------------------------------
// Container framing
// ---------------------------------------------------------------------

fn write_section(out: &mut Vec<u8>, id: u8, payload: Vec<u8>) {
    let mut e = Enc::new();
    e.u8(id);
    e.u64(payload.len() as u64);
    out.extend_from_slice(e.as_slice());
    let crc = checksum_bytes(CKPT_KEY ^ id as u64, &payload);
    out.extend_from_slice(&payload);
    out.extend_from_slice(&crc.to_le_bytes());
}

/// Splits a checkpoint image into validated section payloads, indexed by
/// section id.
fn split_sections<const D: usize>(
    bytes: &[u8],
) -> Result<[Option<&[u8]>; N_SECTIONS + 1], DurabilityError> {
    if bytes.len() < 20 {
        return Err(DurabilityError::Truncated { artifact: ARTIFACT, offset: bytes.len() });
    }
    let mut d = Dec::new(bytes);
    let magic = d.bytes(8).expect("length checked");
    if magic != CKPT_MAGIC.as_slice() {
        return Err(DurabilityError::BadMagic { artifact: ARTIFACT });
    }
    let version = d.u32().expect("length checked");
    if version != CKPT_VERSION {
        return Err(DurabilityError::BadVersion {
            artifact: ARTIFACT,
            found: version,
            supported: CKPT_VERSION,
        });
    }
    let dims = d.u32().expect("length checked");
    if dims != D as u32 {
        return Err(DurabilityError::DimMismatch {
            artifact: ARTIFACT,
            found: dims,
            expected: D as u32,
        });
    }
    let n_sections = d.u32().expect("length checked") as usize;
    if n_sections != N_SECTIONS {
        return Err(corrupt(format!("expected {N_SECTIONS} sections, file declares {n_sections}")));
    }
    let mut sections: [Option<&[u8]>; N_SECTIONS + 1] = [None; N_SECTIONS + 1];
    for _ in 0..n_sections {
        let at = d.pos();
        let id =
            d.u8().map_err(|_| DurabilityError::Truncated { artifact: ARTIFACT, offset: at })?;
        let len =
            d.u64().map_err(|_| DurabilityError::Truncated { artifact: ARTIFACT, offset: at })?
                as usize;
        let payload = d
            .bytes(len)
            .map_err(|_| DurabilityError::Truncated { artifact: ARTIFACT, offset: d.pos() })?;
        let crc = d
            .u64()
            .map_err(|_| DurabilityError::Truncated { artifact: ARTIFACT, offset: d.pos() })?;
        if checksum_bytes(CKPT_KEY ^ id as u64, payload) != crc {
            return Err(corrupt(format!("section {id} fails its checksum")));
        }
        if !(1..=N_SECTIONS as u8).contains(&id) {
            return Err(corrupt(format!("unknown section id {id}")));
        }
        if sections[id as usize].replace(payload).is_some() {
            return Err(corrupt(format!("duplicate section id {id}")));
        }
    }
    if d.remaining() != 0 {
        return Err(corrupt(format!("{} trailing bytes after final section", d.remaining())));
    }
    Ok(sections)
}

// ---------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------

impl<const D: usize> PimZdTree<D> {
    /// Serializes the full host state as a checkpoint image (see the module
    /// docs for the format). Pure in-memory counterpart of
    /// [`Self::checkpoint_to`].
    pub fn checkpoint_bytes(&self) -> Vec<u8> {
        let mut header = Enc::new();
        header.bytes(&CKPT_MAGIC);
        header.u32(CKPT_VERSION);
        header.u32(D as u32);
        header.u32(N_SECTIONS as u32);
        let mut out = header.into_bytes();
        write_section(&mut out, SEC_CONFIG, enc_config_section(self));
        write_section(&mut out, SEC_HOST, enc_host_section(self));
        write_section(&mut out, SEC_L0, enc_l0_section(self));
        write_section(&mut out, SEC_DIR, enc_dir_section(self));
        write_section(&mut out, SEC_MODULES, enc_modules_section(self));
        write_section(&mut out, SEC_SIM, enc_sim_section(self));
        write_section(&mut out, SEC_CPU, enc_cpu_section(self));
        out
    }

    /// Writes a checkpoint to `path` atomically (temp file + rename, both
    /// synced), returning the image size in bytes. A crash during the write
    /// leaves any previous checkpoint at `path` intact.
    pub fn checkpoint_to(&self, path: impl AsRef<Path>) -> Result<u64, DurabilityError> {
        let path = path.as_ref();
        let bytes = self.checkpoint_bytes();
        let tmp = path.with_extension("ckpt-tmp");
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(&bytes)?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, path)?;
        Ok(bytes.len() as u64)
    }

    /// Rebuilds a tree from a checkpoint image. The result is
    /// operation-for-operation byte-identical to the tree that was
    /// checkpointed: same structure, same simulator counters, same warm
    /// LLC. Trace sinks, metrics handles, fault plans, and the WAL are
    /// process-local attachments and come back *detached* — re-attach them
    /// before continuing a measured run.
    pub fn restore_bytes(bytes: &[u8]) -> Result<Self, DurabilityError> {
        let sections = split_sections::<D>(bytes)?;
        let sec = |id: u8| sections[id as usize].expect("split_sections verified presence");
        // split_sections guarantees all 7 ids are present exactly once.
        for id in 1..=N_SECTIONS as u8 {
            if sections[id as usize].is_none() {
                return Err(corrupt(format!("missing section id {id}")));
            }
        }
        let (cfg, machine, cpu_cfg) = dec_config_section(sec(SEC_CONFIG))?;
        let host = dec_host_section(sec(SEC_HOST))?;
        let l0 = dec_l0_section::<D>(sec(SEC_L0))?;
        let dir = dec_dir_section::<D>(sec(SEC_DIR))?;
        let states = dec_modules_section::<D>(sec(SEC_MODULES))?;
        let counters = dec_sim_section(sec(SEC_SIM))?;
        let meter_snap = dec_cpu_section(sec(SEC_CPU))?;

        if states.len() != machine.n_modules {
            return Err(corrupt(format!(
                "modules section has {} states for a {}-module machine",
                states.len(),
                machine.n_modules
            )));
        }
        if counters.dead.len() != machine.n_modules {
            return Err(corrupt(format!(
                "sim section has a {}-wide dead mask for a {}-module machine",
                counters.dead.len(),
                machine.n_modules
            )));
        }
        let meter = CpuMeter::from_snapshot(cpu_cfg, &meter_snap)
            .ok_or_else(|| corrupt("cpu section LLC geometry disagrees with config section"))?;

        let mut states: Vec<Option<ModuleState<D>>> = states.into_iter().map(Some).collect();
        let mut sys =
            PimSystem::new(machine, |i| states[i].take().expect("one serialized state per module"));
        sys.import_counters(counters);
        sys.accounting = host.accounting;

        Ok(Self {
            cfg,
            sys,
            l0,
            dir,
            meter,
            cpu_model: CpuModel::new(cpu_cfg),
            n_points: host.n_points,
            // Per-op scratch; the next measured batch overwrites it.
            last_stats: OpStats::default(),
            staging_next: host.staging_next,
            l0_replicated: host.l0_replicated,
            bufs: RoundBuffers::default(),
            epoch: host.epoch,
            wal: None,
            cpu_cfg,
        })
    }

    /// Reads and restores a checkpoint file (see [`Self::restore_bytes`]).
    pub fn restore_from(path: impl AsRef<Path>) -> Result<Self, DurabilityError> {
        let bytes = std::fs::read(path)?;
        Self::restore_bytes(&bytes)
    }

    /// Replays a write-ahead log against this (freshly restored) tree:
    /// applies, in order, every record whose epoch is past the tree's.
    /// Returns the number of batches applied. Records at or below the
    /// current epoch are already inside the checkpoint and are skipped; a
    /// gap in the remaining epochs means checkpoint and log disagree and is
    /// rejected as [`DurabilityError::Corrupt`] *before* anything from the
    /// bad region is applied.
    pub fn replay_wal(
        &mut self,
        path: impl AsRef<Path>,
        mode: WalReadMode,
    ) -> Result<u64, DurabilityError> {
        let (records, _) = wal::read_wal::<D>(path, mode)?;
        self.apply_wal_records(records)
    }

    /// Full crash recovery: restore the checkpoint at `ckpt`, replay the
    /// WAL at `wal_path` (tolerating a torn tail), truncate the tear, and
    /// re-attach the log for appending so the recovered tree keeps logging
    /// where the crashed process stopped. Returns the tree and the number
    /// of replayed batches.
    pub fn recover(
        ckpt: impl AsRef<Path>,
        wal_path: impl AsRef<Path>,
    ) -> Result<(Self, u64), DurabilityError> {
        let wal_path = wal_path.as_ref();
        let mut tree = Self::restore_from(ckpt)?;
        let (records, consistent) = wal::read_wal::<D>(wal_path, WalReadMode::Recovery)?;
        let applied = tree.apply_wal_records(records)?;
        let file = std::fs::OpenOptions::new().write(true).open(wal_path)?;
        file.set_len(consistent)?;
        file.sync_all()?;
        drop(file);
        tree.set_wal(Wal::open_for_append::<D>(wal_path)?);
        Ok((tree, applied))
    }

    fn apply_wal_records(&mut self, records: Vec<WalRecord<D>>) -> Result<u64, DurabilityError> {
        // Detach the WAL while replaying: replayed batches are already in
        // the log and must not be re-appended.
        let detached = self.wal.take();
        let mut applied = 0u64;
        let mut outcome = Ok(());
        for rec in records {
            if rec.epoch <= self.epoch {
                continue;
            }
            if rec.epoch != self.epoch + 1 {
                outcome = Err(DurabilityError::Corrupt {
                    artifact: "wal",
                    detail: format!(
                        "epoch gap: log continues at {} while the tree is at {}",
                        rec.epoch, self.epoch
                    ),
                });
                break;
            }
            match rec.op {
                WalOp::Insert => self.batch_insert(&rec.points),
                WalOp::Delete => {
                    self.batch_delete(&rec.points);
                }
            }
            applied += 1;
        }
        self.wal = detached;
        outcome?;
        if applied > 0 {
            // Batches past the checkpoint epoch mean the previous process
            // died after acknowledging work it had not checkpointed: a
            // recovered host crash.
            self.sys.record_host_crash();
        }
        Ok(applied)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_sim::MachineConfig;

    fn pts(n: u32, salt: u32) -> Vec<Point<3>> {
        (0..n)
            .map(|i| {
                let j = i.wrapping_mul(2654435761).wrapping_add(salt);
                Point::new([j % 2048, (j / 7) % 2048, (j / 31) % 2048])
            })
            .collect()
    }

    fn small_tree() -> PimZdTree<3> {
        let machine = MachineConfig::with_modules(8);
        let cfg = PimZdConfig::skew_resistant(8);
        let mut t = PimZdTree::build(&pts(600, 1), cfg, machine);
        t.batch_insert(&pts(100, 2));
        t.batch_delete(&pts(50, 1));
        t
    }

    #[test]
    fn checkpoint_restore_roundtrip_is_byte_stable() {
        let t = small_tree();
        let img = t.checkpoint_bytes();
        let r = PimZdTree::<3>::restore_bytes(&img).expect("restore");
        assert_eq!(r.len(), t.len());
        assert_eq!(r.epoch(), t.epoch());
        assert_eq!(r.meta_count(), t.meta_count());
        assert_eq!(r.space_bytes(), t.space_bytes());
        // The restored tree's own checkpoint must be the same bytes: the
        // format is a deterministic function of the logical state.
        assert_eq!(r.checkpoint_bytes(), img, "re-checkpoint must be byte-identical");
    }

    #[test]
    fn restored_tree_answers_queries_identically() {
        let mut t = small_tree();
        let img = t.checkpoint_bytes();
        let mut r = PimZdTree::<3>::restore_bytes(&img).expect("restore");
        let queries = pts(40, 3);
        assert_eq!(
            t.batch_knn(&queries, 3, pim_geom::Metric::L2),
            r.batch_knn(&queries, 3, pim_geom::Metric::L2)
        );
        assert_eq!(t.sim_stats().rounds, r.sim_stats().rounds, "sim counters replayed in step");
        assert_eq!(
            t.last_op_stats().cpu_dram_bytes,
            r.last_op_stats().cpu_dram_bytes,
            "warm LLC must be restored for identical host metrics"
        );
        assert_eq!(t.last_op_stats().cpu_cycles, r.last_op_stats().cpu_cycles);
    }

    #[test]
    fn dim_mismatch_is_typed() {
        let t = small_tree();
        let img = t.checkpoint_bytes();
        assert!(matches!(
            PimZdTree::<2>::restore_bytes(&img),
            Err(DurabilityError::DimMismatch { artifact: "checkpoint", found: 3, expected: 2 })
        ));
    }

    #[test]
    fn damaged_images_are_rejected_with_typed_errors() {
        let t = small_tree();
        let img = t.checkpoint_bytes();

        let mut flipped = img.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x40;
        assert!(matches!(
            PimZdTree::<3>::restore_bytes(&flipped),
            Err(DurabilityError::Corrupt { artifact: "checkpoint", .. })
        ));

        assert!(matches!(
            PimZdTree::<3>::restore_bytes(&img[..img.len() - 9]),
            Err(DurabilityError::Truncated { artifact: "checkpoint", .. })
        ));

        let mut bumped = img.clone();
        bumped[8] = 77; // version low byte
        assert!(matches!(
            PimZdTree::<3>::restore_bytes(&bumped),
            Err(DurabilityError::BadVersion {
                artifact: "checkpoint",
                found: 77,
                supported: CKPT_VERSION
            })
        ));
    }
}
