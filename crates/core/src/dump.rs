//! Human-readable dumps of the distributed index — debugging and teaching
//! aid. Renders the *logical* tree reassembled from L0 and every module's
//! master fragments, annotating each node with its physical placement
//! (layer, meta-node, module) and counter state.

use crate::config::Layer;
use crate::frag::{BKind, ChildRef, Fragment, MetaId};
use crate::host::PimZdTree;
use rustc_hash::FxHashMap;
use std::fmt::Write as _;

/// Limits for a dump so huge indexes stay printable.
#[derive(Clone, Copy, Debug)]
pub struct DumpOptions {
    /// Maximum tree depth rendered (deeper subtrees are summarized).
    pub max_depth: usize,
    /// Maximum tree-body lines emitted (the one-line header and, when
    /// lines were actually suppressed, the trailing truncation notice are
    /// not counted). Every body line — node, depth-elision summary, and
    /// dangling-meta marker alike — is charged against this budget.
    pub max_lines: usize,
}

impl Default for DumpOptions {
    fn default() -> Self {
        Self { max_depth: 6, max_lines: 200 }
    }
}

/// Line accounting for one dump: the budget consumed so far and whether
/// any line was suppressed by it. The truncation notice is emitted only
/// when something was *actually* dropped — an output that exactly fills
/// the budget is complete, not truncated.
struct DumpState {
    lines: usize,
    truncated: bool,
}

impl DumpState {
    /// Emits one body line if the budget allows, recording suppression
    /// otherwise. Returns whether the line was written.
    fn emit(
        &mut self,
        opts: &DumpOptions,
        out: &mut String,
        line: std::fmt::Arguments<'_>,
    ) -> bool {
        if self.lines >= opts.max_lines {
            self.truncated = true;
            return false;
        }
        let _ = writeln!(out, "{line}");
        self.lines += 1;
        true
    }
}

impl<const D: usize> PimZdTree<D> {
    /// Renders the logical tree with physical placement annotations.
    pub fn dump(&self, opts: DumpOptions) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "PimZdTree: {} points, {} meta-nodes, {} modules, {:.1} KB",
            self.n_points,
            self.dir.len(),
            self.sys.n_modules(),
            self.space_bytes() as f64 / 1024.0
        );
        let Some(l0) = self.l0.as_ref() else {
            let _ = writeln!(out, "(empty)");
            return out;
        };
        let mut masters: FxHashMap<MetaId, &Fragment<D>> = FxHashMap::default();
        for i in 0..self.sys.n_modules() {
            for (id, f) in &self.sys.peek(i).masters {
                masters.insert(*id, f);
            }
        }
        let mut st = DumpState { lines: 0, truncated: false };
        self.dump_node(l0, l0.root, 0, &masters, &opts, &mut st, &mut out);
        if st.truncated {
            let _ = writeln!(out, "… (truncated at {} lines)", opts.max_lines);
        }
        out
    }

    #[allow(clippy::too_many_arguments)]
    fn dump_node(
        &self,
        frag: &Fragment<D>,
        idx: u32,
        depth: usize,
        masters: &FxHashMap<MetaId, &Fragment<D>>,
        opts: &DumpOptions,
        st: &mut DumpState,
        out: &mut String,
    ) {
        if st.lines >= opts.max_lines {
            // Called with a node to render and no budget left: content is
            // being dropped, which is what the trailing notice reports.
            st.truncated = true;
            return;
        }
        let node = frag.node(idx);
        let indent = "  ".repeat(depth);
        let place = if frag.meta == 0 {
            "L0/host".to_string()
        } else {
            let layer = self
                .dir
                .metas
                .get(&frag.meta)
                .map(|m| match m.layer {
                    Layer::L0 => "L0",
                    Layer::L1 => "L1",
                    Layer::L2 => "L2",
                })
                .unwrap_or("?");
            format!("{layer}/m{} meta{}", frag.master_module, frag.meta)
        };
        match &node.kind {
            BKind::Leaf { points } => {
                st.emit(
                    opts,
                    out,
                    format_args!(
                        "{indent}leaf[{}b] {} pts  ({place})",
                        node.prefix.len,
                        points.len()
                    ),
                );
            }
            BKind::LeafStub => {
                st.emit(opts, out, format_args!("{indent}stub[{}b]  ({place})", node.prefix.len));
            }
            BKind::Internal { left, right } => {
                st.emit(
                    opts,
                    out,
                    format_args!("{indent}node[{}b] sc={}  ({place})", node.prefix.len, node.count),
                );
                if depth + 1 > opts.max_depth {
                    st.emit(opts, out, format_args!("{indent}  … subtree elided (depth limit)"));
                    return;
                }
                for child in [left, right] {
                    match child {
                        ChildRef::Local(c) => {
                            self.dump_node(frag, *c, depth + 1, masters, opts, st, out)
                        }
                        ChildRef::Remote(r) => {
                            if let Some(cf) = masters.get(&r.meta) {
                                self.dump_node(cf, cf.root, depth + 1, masters, opts, st, out);
                            } else {
                                st.emit(
                                    opts,
                                    out,
                                    format_args!(
                                        "{}<dangling meta{} on m{}>",
                                        "  ".repeat(depth + 1),
                                        r.meta,
                                        r.module
                                    ),
                                );
                            }
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PimZdConfig;
    use pim_sim::MachineConfig;
    use pim_workloads::uniform;

    fn sample_tree() -> PimZdTree<3> {
        let pts = uniform::<3>(5_000, 1);
        let cfg = PimZdConfig::skew_resistant(16);
        PimZdTree::build(&pts, cfg, MachineConfig::with_modules(16))
    }

    #[test]
    fn dump_renders_placements_and_respects_limits() {
        let t = sample_tree();
        let s = t.dump(DumpOptions { max_depth: 4, max_lines: 30 });
        assert!(s.contains("PimZdTree: 5000 points"));
        assert!(s.contains("L0/host"), "root region must be host-resident:\n{s}");
        assert!(s.contains("meta"), "fragments must be annotated");
        // Exact accounting: 1 header + exactly max_lines body lines + the
        // truncation notice (this dump is larger than 30 body lines).
        assert!(s.contains("truncated at 30 lines"));
        assert_eq!(s.lines().count(), 32, "header + 30 body lines + notice:\n{s}");
    }

    #[test]
    fn exactly_fitting_dump_has_no_truncation_notice() {
        let t = sample_tree();
        // Measure the full dump, then re-render with the budget set to its
        // exact body size: nothing is suppressed, so no notice may appear.
        let full = t.dump(DumpOptions { max_depth: 4, max_lines: usize::MAX });
        assert!(!full.contains("truncated"), "unlimited budget never truncates");
        let body_lines = full.lines().count() - 1; // minus header
        let exact = t.dump(DumpOptions { max_depth: 4, max_lines: body_lines });
        assert_eq!(exact, full, "exact-fit render must be identical, with no notice");
        // One line less: now the notice must appear, and the budget holds.
        let clipped = t.dump(DumpOptions { max_depth: 4, max_lines: body_lines - 1 });
        assert!(clipped.contains(&format!("truncated at {} lines", body_lines - 1)));
        assert_eq!(clipped.lines().count(), 1 + (body_lines - 1) + 1);
    }

    #[test]
    fn depth_elision_lines_respect_the_budget() {
        let t = sample_tree();
        // A depth limit of 0 makes the root an elision point; every render
        // must still respect max_lines exactly.
        for max_lines in [1, 2, 3] {
            let s = t.dump(DumpOptions { max_depth: 0, max_lines });
            let body = s.lines().count() - 1 - usize::from(s.contains("truncated"));
            assert!(body <= max_lines, "body {body} > budget {max_lines}:\n{s}");
        }
    }

    #[test]
    fn empty_dump() {
        let cfg = PimZdConfig::throughput_optimized(16, 4);
        let t = PimZdTree::<3>::new(cfg, MachineConfig::with_modules(4));
        let s = t.dump(DumpOptions::default());
        assert!(s.contains("(empty)"));
    }
}
