//! Human-readable dumps of the distributed index — debugging and teaching
//! aid. Renders the *logical* tree reassembled from L0 and every module's
//! master fragments, annotating each node with its physical placement
//! (layer, meta-node, module) and counter state.

use crate::config::Layer;
use crate::frag::{BKind, ChildRef, Fragment, MetaId};
use crate::host::PimZdTree;
use rustc_hash::FxHashMap;
use std::fmt::Write as _;

/// Limits for a dump so huge indexes stay printable.
#[derive(Clone, Copy, Debug)]
pub struct DumpOptions {
    /// Maximum tree depth rendered (deeper subtrees are summarized).
    pub max_depth: usize,
    /// Maximum total lines emitted.
    pub max_lines: usize,
}

impl Default for DumpOptions {
    fn default() -> Self {
        Self { max_depth: 6, max_lines: 200 }
    }
}

impl<const D: usize> PimZdTree<D> {
    /// Renders the logical tree with physical placement annotations.
    pub fn dump(&self, opts: DumpOptions) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "PimZdTree: {} points, {} meta-nodes, {} modules, {:.1} KB",
            self.n_points,
            self.dir.len(),
            self.sys.n_modules(),
            self.space_bytes() as f64 / 1024.0
        );
        let Some(l0) = self.l0.as_ref() else {
            let _ = writeln!(out, "(empty)");
            return out;
        };
        let mut masters: FxHashMap<MetaId, &Fragment<D>> = FxHashMap::default();
        for i in 0..self.sys.n_modules() {
            for (id, f) in &self.sys.peek(i).masters {
                masters.insert(*id, f);
            }
        }
        let mut lines = 0usize;
        self.dump_node(l0, l0.root, 0, &masters, &opts, &mut lines, &mut out);
        if lines >= opts.max_lines {
            let _ = writeln!(out, "… (truncated at {} lines)", opts.max_lines);
        }
        out
    }

    #[allow(clippy::too_many_arguments)]
    fn dump_node(
        &self,
        frag: &Fragment<D>,
        idx: u32,
        depth: usize,
        masters: &FxHashMap<MetaId, &Fragment<D>>,
        opts: &DumpOptions,
        lines: &mut usize,
        out: &mut String,
    ) {
        if *lines >= opts.max_lines {
            return;
        }
        let node = frag.node(idx);
        let indent = "  ".repeat(depth);
        let place = if frag.meta == 0 {
            "L0/host".to_string()
        } else {
            let layer = self
                .dir
                .metas
                .get(&frag.meta)
                .map(|m| match m.layer {
                    Layer::L0 => "L0",
                    Layer::L1 => "L1",
                    Layer::L2 => "L2",
                })
                .unwrap_or("?");
            format!("{layer}/m{} meta{}", frag.master_module, frag.meta)
        };
        match &node.kind {
            BKind::Leaf { points } => {
                let _ = writeln!(
                    out,
                    "{indent}leaf[{}b] {} pts  ({place})",
                    node.prefix.len,
                    points.len()
                );
                *lines += 1;
            }
            BKind::LeafStub => {
                let _ = writeln!(out, "{indent}stub[{}b]  ({place})", node.prefix.len);
                *lines += 1;
            }
            BKind::Internal { left, right } => {
                let _ = writeln!(
                    out,
                    "{indent}node[{}b] sc={}  ({place})",
                    node.prefix.len, node.count
                );
                *lines += 1;
                if depth + 1 > opts.max_depth {
                    let _ = writeln!(out, "{indent}  … subtree elided (depth limit)");
                    *lines += 1;
                    return;
                }
                for child in [left, right] {
                    match child {
                        ChildRef::Local(c) => {
                            self.dump_node(frag, *c, depth + 1, masters, opts, lines, out)
                        }
                        ChildRef::Remote(r) => {
                            if let Some(cf) = masters.get(&r.meta) {
                                self.dump_node(cf, cf.root, depth + 1, masters, opts, lines, out);
                            } else {
                                let _ = writeln!(
                                    out,
                                    "{}<dangling meta{} on m{}>",
                                    "  ".repeat(depth + 1),
                                    r.meta,
                                    r.module
                                );
                                *lines += 1;
                            }
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PimZdConfig;
    use pim_sim::MachineConfig;
    use pim_workloads::uniform;

    #[test]
    fn dump_renders_placements_and_respects_limits() {
        let pts = uniform::<3>(5_000, 1);
        let cfg = PimZdConfig::skew_resistant(16);
        let t = PimZdTree::build(&pts, cfg, MachineConfig::with_modules(16));
        let s = t.dump(DumpOptions { max_depth: 4, max_lines: 60 });
        assert!(s.contains("PimZdTree: 5000 points"));
        assert!(s.contains("L0/host"), "root region must be host-resident:\n{s}");
        assert!(s.contains("meta"), "fragments must be annotated");
        assert!(s.lines().count() <= 63, "line budget respected");
    }

    #[test]
    fn empty_dump() {
        let cfg = PimZdConfig::throughput_optimized(16, 4);
        let t = PimZdTree::<3>::new(cfg, MachineConfig::with_modules(4));
        let s = t.dump(DumpOptions::default());
        assert!(s.contains("(empty)"));
    }
}
