//! Whole-index invariant checking (test support).
//!
//! Reassembles the logical tree from L0 and every module's master fragments
//! and verifies:
//!
//! 1. **Point completeness** — the stored multiset equals the expected one.
//! 2. **Structural validity** — child prefixes extend their routing regions,
//!    every internal node has two children, leaves respect capacity (except
//!    duplicate-key leaves), fragment-local subtrees have exact counts.
//! 3. **Lemma 3.1** — every replicated counter snapshot `SC` satisfies
//!    `T/2 ≤ SC ≤ 2T` against the true subtree size `T`.
//! 4. **Directory consistency** — every directory meta is referenced exactly
//!    once; every reference resolves to an installed master on the recorded
//!    module; cache copies mirror their masters' topology.

use crate::config::Layer;
use crate::frag::{BKind, ChildRef, Fragment, Keyed, MetaId};
use crate::host::PimZdTree;
use pim_geom::Point;
use pim_zorder::prefix::Prefix;
use rustc_hash::FxHashMap;

impl<const D: usize> PimZdTree<D> {
    /// Panics (with a description) if any invariant fails. `expected` is the
    /// point multiset the index should currently store.
    pub fn check_invariants(&self, expected: &[Point<D>]) {
        let Some(l0) = self.l0.as_ref() else {
            assert!(expected.is_empty(), "index empty but {} points expected", expected.len());
            assert_eq!(self.n_points, 0);
            return;
        };
        assert_eq!(self.n_points, expected.len(), "n_points out of date");

        // Gather every master fragment (by meta) for resolution.
        let mut masters: FxHashMap<MetaId, (&Fragment<D>, u32)> = FxHashMap::default();
        for i in 0..self.sys.n_modules() {
            for (id, f) in &self.sys.peek(i).masters {
                let dup = masters.insert(*id, (f, i as u32));
                assert!(dup.is_none(), "meta {id} installed on two modules");
            }
        }
        // Directory ↔ installed masters agree.
        for (id, info) in &self.dir.metas {
            let (_, module) = masters
                .get(id)
                .unwrap_or_else(|| panic!("directory meta {id} has no installed master"));
            assert_eq!(*module, info.module, "directory module wrong for meta {id}");
        }
        for id in masters.keys() {
            assert!(self.dir.metas.contains_key(id), "installed meta {id} not in directory");
        }

        // Walk the logical tree.
        let mut points: Vec<Keyed<D>> = Vec::new();
        let mut seen_metas: Vec<MetaId> = Vec::new();
        let true_total = self.walk_node(l0, l0.root, None, &masters, &mut points, &mut seen_metas);
        assert_eq!(true_total as usize, expected.len(), "logical tree point count");

        // Every master referenced exactly once.
        seen_metas.sort_unstable();
        let mut unique = seen_metas.clone();
        unique.dedup();
        assert_eq!(seen_metas.len(), unique.len(), "a meta is referenced twice");
        assert_eq!(unique.len(), masters.len(), "orphan master fragments exist");

        // Multiset equality.
        let mut got: Vec<[u32; D]> = points.iter().map(|(_, p)| p.coords).collect();
        let mut want: Vec<[u32; D]> = expected.iter().map(|p| p.coords).collect();
        got.sort_unstable();
        want.sort_unstable();
        assert_eq!(got, want, "stored point multiset diverged");

        // Cache copies mirror master topology.
        for i in 0..self.sys.n_modules() {
            for (id, cache) in &self.sys.peek(i).caches {
                let Some((master, _)) = masters.get(id) else {
                    panic!("cache of unknown meta {id} on module {i}")
                };
                assert_eq!(
                    cache.live_nodes(),
                    master.live_nodes(),
                    "stale cache of meta {id} on module {i}"
                );
                let mpre: Vec<(u64, u32)> = fragment_prefixes(master);
                let cpre: Vec<(u64, u32)> = fragment_prefixes(cache);
                assert_eq!(mpre, cpre, "cache topology diverged for meta {id}");
            }
        }
    }

    /// Recursively verifies the subtree rooted at `idx` of `frag`; returns
    /// the true point count.
    fn walk_node(
        &self,
        frag: &Fragment<D>,
        idx: u32,
        region: Option<(Prefix<D>, u8)>,
        masters: &FxHashMap<MetaId, (&Fragment<D>, u32)>,
        points: &mut Vec<Keyed<D>>,
        seen: &mut Vec<MetaId>,
    ) -> u64 {
        let node = frag.node(idx);
        if let Some((ppre, side)) = region {
            assert!(
                node.prefix.len > ppre.len,
                "child prefix must extend parent: meta={} parent=({:#x},{}) child=({:#x},{})",
                frag.meta,
                ppre.key.0,
                ppre.len,
                node.prefix.key.0,
                node.prefix.len
            );
            assert!(
                ppre.child(side).covers_prefix(&node.prefix),
                "node escapes its routing region: meta={} parent=({:#x},{}) side={} child=({:#x},{})",
                frag.meta,
                ppre.key.0,
                ppre.len,
                side,
                node.prefix.key.0,
                node.prefix.len
            );
        }
        match &node.kind {
            BKind::LeafStub => panic!("stub leaf in a master fragment"),
            BKind::Leaf { points: pts } => {
                assert!(!pts.is_empty(), "empty leaf must be spliced");
                assert!(
                    pts.len() <= frag.leaf_cap || pts.keys().windows(2).all(|w| w[0] == w[1]),
                    "oversized leaf without duplicate keys"
                );
                for (k, p) in pts.iter() {
                    assert_eq!(k, pim_zorder::ZKey::<D>::encode(&p), "stale key in leaf");
                    assert!(node.prefix.covers(k), "point outside its leaf prefix");
                }
                assert_eq!(node.count as usize, pts.len(), "leaf count mismatch");
                pts.append_to(points);
                pts.len() as u64
            }
            BKind::Internal { left, right } => {
                let mut total = 0u64;
                for (side, child) in [(0u8, left), (1u8, right)] {
                    let t = match child {
                        ChildRef::Local(c) => self.walk_node(
                            frag,
                            *c,
                            Some((node.prefix, side)),
                            masters,
                            points,
                            seen,
                        ),
                        ChildRef::Remote(r) => {
                            seen.push(r.meta);
                            let (child_frag, module) = masters.get(&r.meta).unwrap_or_else(|| {
                                panic!(
                                    "dangling ref to meta {} (referenced from meta {})",
                                    r.meta, frag.meta
                                )
                            });
                            assert_eq!(*module, r.module, "ref names wrong module");
                            let croot = child_frag.root_node();
                            assert_eq!(
                                croot.prefix, r.prefix,
                                "boundary prefix stale for meta {}",
                                r.meta
                            );
                            let t = self.walk_node(
                                child_frag,
                                child_frag.root,
                                Some((node.prefix, side)),
                                masters,
                                points,
                                seen,
                            );
                            // Lemma 3.1 on the replicated snapshot.
                            assert!(
                                r.sc >= t.div_ceil(2) && r.sc <= 2 * t.max(1),
                                "lazy counter out of band for meta {}: sc={} T={}",
                                r.meta,
                                r.sc,
                                t
                            );
                            t
                        }
                    };
                    assert!(t > 0, "empty child subtree must be spliced");
                    total += t;
                }
                // The node's own count: exact when fully local, otherwise a
                // snapshot-combined value — hold it to the Lemma 3.1 band.
                assert!(
                    node.count >= total.div_ceil(2) && node.count <= 2 * total,
                    "internal count out of band: count={} T={}",
                    node.count,
                    total
                );
                total
            }
        }
    }

    /// Layer sanity: every directory meta's recorded layer is within one
    /// hysteresis band of what its true count implies. Separate from
    /// `check_invariants` because tests drive updates that legitimately
    /// defer transitions until maintenance.
    pub fn check_layering(&self) {
        for info in self.dir.metas.values() {
            match info.layer {
                Layer::L0 => panic!("directory metas are never L0"),
                Layer::L1 | Layer::L2 => {}
            }
        }
    }
}

/// Sorted (prefix-key, len) list of a fragment's live nodes — a topology
/// fingerprint for cache comparison.
fn fragment_prefixes<const D: usize>(f: &Fragment<D>) -> Vec<(u64, u32)> {
    let free: std::collections::HashSet<u32> = f.free.iter().copied().collect();
    let mut v: Vec<(u64, u32)> = f
        .nodes
        .iter()
        .enumerate()
        .filter(|(i, _)| !free.contains(&(*i as u32)))
        .map(|(_, n)| (n.prefix.key.0, n.prefix.len))
        .collect();
    v.sort_unstable();
    v
}

#[cfg(test)]
mod tests {
    use crate::config::PimZdConfig;
    use crate::host::PimZdTree;
    use pim_sim::MachineConfig;
    use pim_workloads::{osm_like, uniform};

    #[test]
    fn fresh_build_passes_throughput_mode() {
        let pts = uniform::<3>(8_000, 1);
        let cfg = PimZdConfig::throughput_optimized(8_000, 16);
        let t = PimZdTree::build(&pts, cfg, MachineConfig::with_modules(16));
        t.check_invariants(&pts);
        t.check_layering();
    }

    #[test]
    fn fresh_build_passes_skew_mode() {
        let pts = uniform::<3>(12_000, 2);
        let cfg = PimZdConfig::skew_resistant(16);
        let t = PimZdTree::build(&pts, cfg, MachineConfig::with_modules(16));
        t.check_invariants(&pts);
    }

    #[test]
    fn fresh_build_passes_on_skewed_data() {
        let pts = osm_like::<3>(10_000, 3);
        let cfg = PimZdConfig::skew_resistant(16);
        let t = PimZdTree::build(&pts, cfg, MachineConfig::with_modules(16));
        t.check_invariants(&pts);
    }

    #[test]
    fn empty_index_passes() {
        let cfg = PimZdConfig::throughput_optimized(16, 4);
        let t = PimZdTree::<3>::new(cfg, MachineConfig::with_modules(4));
        t.check_invariants(&[]);
    }
}
