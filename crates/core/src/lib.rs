//! # PIM-zd-tree
//!
//! A tunable three-layer space-partitioning index for processing-in-memory
//! systems — the reproduction of the PPoPP'26 paper's primary contribution.
//!
//! The index maintains a batch-dynamic zd-tree (a compressed radix tree over
//! Morton keys) laid out across the modules of a BLIMP PIM machine:
//!
//! * **L0 (globally shared, §3.1)** — the top of the tree (subtree size
//!   ≥ θ_L0) lives host-side; when it outgrows the CPU cache its replication
//!   cost across all modules is accounted.
//! * **L1 (partially shared)** — subtree-size-chunked *meta-nodes* (§3.2)
//!   placed on hash-randomized master modules, with structure-only copies of
//!   ancestor/descendant meta-nodes cached alongside each master so searches
//!   cross all of L1 in one round.
//! * **L2 (exclusive)** — master-only meta-nodes near the leaves.
//!
//! Batched operations (`SEARCH`, `INSERT`, `DELETE`, `kNN`, `BoxCount`,
//! `BoxFetch`) run in BSP rounds over [`pim_sim::PimSystem`], using
//! **push-pull search** (§3.3) for load balance and **lazy counters** (§3.4)
//! for cheap approximate subtree sizes. Two presets reproduce the paper's
//! implementations: [`PimZdConfig::throughput_optimized`] and
//! [`PimZdConfig::skew_resistant`] (Table 2).
//!
//! ```
//! use pim_zd_tree::{PimZdConfig, PimZdTree};
//! use pim_sim::MachineConfig;
//! use pim_geom::{Metric, Point};
//!
//! let machine = MachineConfig::with_modules(16);
//! let cfg = PimZdConfig::throughput_optimized(1_000, 16);
//! let pts: Vec<Point<3>> = (0..1_000u32)
//!     .map(|i| Point::new([i * 97 % 2048, i * 31 % 2048, i * 7 % 2048]))
//!     .collect();
//! let mut index = PimZdTree::build(&pts, cfg, machine);
//! let knn = index.batch_knn(&[pts[0]], 3, Metric::L2);
//! assert_eq!(knn[0].len(), 3);
//! assert_eq!(knn[0][0].1, pts[0]);
//! ```

pub mod boxq;
pub mod build;
pub mod checkpoint;
pub mod config;
pub mod dump;
pub mod frag;
pub mod host;
pub mod insert;
pub mod invariants;
pub mod knn;
pub mod meta;
pub mod module;
pub mod search;
pub mod shard;
pub mod snapshot;
pub mod soa;
pub mod stats;
pub mod wal;

pub use checkpoint::DurabilityError;
pub use config::{Layer, PimZdConfig, Toggles};
pub use frag::{BKind, BNode, ChildRef, Fragment, MetaId, RemoteRef};
pub use host::PimZdTree;
pub use shard::{CellId, PlacementTable, ShardConfig, ShardOpStats, ShardedZdTree};
pub use snapshot::TreeSnapshot;
pub use soa::{CoordBlock, KBest, PointSet};
pub use stats::{OpBreakdown, OpStats};
pub use wal::{Wal, WalOp, WalReadMode, WalRecord};
