//! Per-operation measurement: simulated time, its Fig. 6 breakdown, and the
//! Fig. 5 memory-traffic metric.

use pim_memsim::{CpuModel, CpuStats};
use pim_sim::SimStats;
use serde::Serialize;

/// Time decomposition of one batched operation (the Fig. 6 categories).
#[derive(Clone, Copy, Debug, Default, Serialize)]
pub struct OpBreakdown {
    /// Host CPU time (batch preprocessing, pulls, L0 traversal, filtering).
    pub cpu_s: f64,
    /// PIM execution time (sum over rounds of the slowest module).
    pub pim_s: f64,
    /// CPU⇄PIM communication time including mux/call overheads.
    pub comm_s: f64,
}

impl OpBreakdown {
    /// Total simulated seconds.
    pub fn total_s(&self) -> f64 {
        self.cpu_s + self.pim_s + self.comm_s
    }
}

/// Full measurement of one batched operation.
#[derive(Clone, Debug, Default, Serialize)]
pub struct OpStats {
    /// Time breakdown.
    pub breakdown: OpBreakdown,
    /// BSP rounds executed.
    pub rounds: u64,
    /// CPU⇄PIM channel bytes (both directions).
    pub channel_bytes: u64,
    /// Host CPU-DRAM bytes (LLC misses + writebacks).
    pub cpu_dram_bytes: u64,
    /// Number of operations in the batch.
    pub batch_ops: u64,
    /// Number of elements returned (equals `batch_ops` for point ops; the
    /// output size for range ops — the paper's throughput denominator).
    pub elements: u64,
    /// Cycle-weighted PIM load imbalance over the whole operation: the
    /// straggler path over the perfectly-balanced path (1.0 = balanced).
    pub worst_imbalance: f64,
    /// Host CPU cycles (for energy estimation).
    pub cpu_cycles: u64,
    /// Total PIM core cycles across all modules (for energy estimation).
    pub pim_cycles: u64,
}

impl OpStats {
    /// Builds an `OpStats` from phase-relative counter deltas.
    pub fn from_deltas(
        cpu_model: &CpuModel,
        host: CpuStats,
        sim: SimStats,
        batch_ops: u64,
        elements: u64,
    ) -> Self {
        OpStats {
            breakdown: OpBreakdown {
                cpu_s: cpu_model.time_seconds(&host),
                pim_s: sim.pim_s,
                comm_s: sim.comm_s + sim.overhead_s,
            },
            rounds: sim.rounds,
            channel_bytes: sim.channel_bytes(),
            cpu_dram_bytes: host.dram_bytes,
            batch_ops,
            elements,
            worst_imbalance: sim.agg_imbalance(),
            cpu_cycles: host.work_cycles + host.span_cycles,
            pim_cycles: sim.total_pim_cycles,
        }
    }

    /// First-order energy estimate of this operation (see
    /// [`pim_sim::EnergyModel`] — an extension beyond the paper's tables).
    pub fn energy(&self, model: &pim_sim::EnergyModel) -> pim_sim::EnergyEstimate {
        model.estimate(self.cpu_cycles, self.cpu_dram_bytes, self.pim_cycles, self.channel_bytes)
    }

    /// Throughput in returned elements per simulated second (§7.1's metric).
    pub fn throughput(&self) -> f64 {
        let t = self.breakdown.total_s();
        if t <= 0.0 {
            0.0
        } else {
            self.elements as f64 / t
        }
    }

    /// Memory-bus bytes per returned element (§7.1's traffic metric:
    /// CPU-DRAM plus CPU-PIM traffic over output size).
    pub fn traffic_per_element(&self) -> f64 {
        if self.elements == 0 {
            0.0
        } else {
            (self.channel_bytes + self.cpu_dram_bytes) as f64 / self.elements as f64
        }
    }

    /// Latency of the batch (total simulated seconds).
    pub fn latency_s(&self) -> f64 {
        self.breakdown.total_s()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_memsim::CpuConfig;

    #[test]
    fn throughput_and_traffic() {
        let s = OpStats {
            breakdown: OpBreakdown { cpu_s: 0.5, pim_s: 0.25, comm_s: 0.25 },
            rounds: 3,
            channel_bytes: 600,
            cpu_dram_bytes: 400,
            batch_ops: 100,
            elements: 100,
            worst_imbalance: 1.0,
            cpu_cycles: 0,
            pim_cycles: 0,
        };
        assert!((s.throughput() - 100.0).abs() < 1e-9);
        assert!((s.traffic_per_element() - 10.0).abs() < 1e-9);
        assert!((s.latency_s() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn from_deltas_wires_fields() {
        let model = CpuModel::new(CpuConfig::xeon());
        let host = CpuStats { work_cycles: 1_000, dram_bytes: 64, ..Default::default() };
        let sim = SimStats {
            rounds: 2,
            pim_s: 0.001,
            cpu_to_pim_bytes: 10,
            pim_to_cpu_bytes: 20,
            ..Default::default()
        };
        let s = OpStats::from_deltas(&model, host, sim, 5, 7);
        assert_eq!(s.rounds, 2);
        assert_eq!(s.channel_bytes, 30);
        assert_eq!(s.elements, 7);
        assert!(s.breakdown.cpu_s > 0.0);
    }

    #[test]
    fn empty_op_has_zero_throughput() {
        let s = OpStats::default();
        assert_eq!(s.throughput(), 0.0);
        assert_eq!(s.traffic_per_element(), 0.0);
    }
}
