//! Orthogonal range queries: BoxCount and BoxFetch (§4.4).
//!
//! Execution "closely follows that of SEARCH, where push-pull search is
//! applied level by level", except that every node *intersecting* the box is
//! tracked. Counts are exact: fully-covered subtrees answer from their
//! (locally exact) counts when they are fragment-local, and are descended
//! otherwise so each master reports exactly.

use crate::frag::{HostSink, MetaId, RemoteRef};
use crate::host::PimZdTree;
use crate::module::{handle_box, BoxReply, BoxTask};
use pim_geom::{Aabb, Point};
use rustc_hash::FxHashMap;

/// Per-query traversal state.
struct BState<const D: usize> {
    query: Aabb<D>,
    count: u64,
    points: Vec<Point<D>>,
    frontier: Vec<(MetaId, u32, u32)>, // (meta, module, node)
    visited: Vec<MetaId>,
}

const MAX_ROUNDS: usize = 1000;

impl<const D: usize> PimZdTree<D> {
    /// Batched BoxCount: exact number of stored points in each box.
    pub fn batch_box_count(&mut self, queries: &[Aabb<D>]) -> Vec<u64> {
        self.phased("box_count", |t| {
            t.measured(queries.len() as u64, |t| {
                let out = t.box_inner(queries, false).0;
                let n = out.len() as u64;
                (out, n)
            })
        })
    }

    /// Batched BoxFetch: the stored points in each box (unspecified order).
    pub fn batch_box_fetch(&mut self, queries: &[Aabb<D>]) -> Vec<Vec<Point<D>>> {
        self.phased("box_fetch", |t| {
            t.measured(queries.len() as u64, |t| {
                let out = t.box_inner(queries, true).1;
                let elements = out.iter().map(|v| v.len() as u64).sum();
                (out, elements)
            })
        })
    }

    fn box_inner(&mut self, queries: &[Aabb<D>], fetch: bool) -> (Vec<u64>, Vec<Vec<Point<D>>>) {
        let n = queries.len();
        let mut states: Vec<BState<D>> = queries
            .iter()
            .map(|b| BState {
                query: *b,
                count: 0,
                points: Vec::new(),
                frontier: Vec::new(),
                visited: Vec::new(),
            })
            .collect();

        // L0 phase on the host.
        if let Some(l0) = self.l0.as_ref() {
            let mut sink = Self::l0_sink(&mut self.meter);
            for st in states.iter_mut() {
                let mut remote: Vec<RemoteRef<D>> = Vec::new();
                if fetch {
                    let mut pts = Vec::new();
                    l0.local_box_fetch(l0.root, &st.query, &mut pts, &mut remote, &mut sink);
                    st.points = pts;
                } else {
                    st.count = l0.local_box_count(l0.root, &st.query, &mut remote, &mut sink);
                }
                st.frontier = remote.into_iter().map(|r| (r.meta, r.module, u32::MAX)).collect();
            }
        } else {
            return (vec![0; n], vec![Vec::new(); n]);
        }

        let mut rounds = 0;
        loop {
            rounds += 1;
            assert!(rounds < MAX_ROUNDS, "box query failed to converge");

            // Dedup + visited filter.
            for st in states.iter_mut() {
                st.frontier.sort_unstable();
                st.frontier.dedup_by_key(|(m, _, n2)| (*m, *n2));
                let visited = std::mem::take(&mut st.visited);
                st.frontier.retain(|(m, _, _)| !visited.contains(m));
                st.visited = visited;
            }

            let mut demand: FxHashMap<MetaId, u64> = FxHashMap::default();
            for st in &states {
                for (m, _, _) in &st.frontier {
                    *demand.entry(*m).or_insert(0) += 1;
                }
            }
            if demand.is_empty() {
                break;
            }

            // Pull phase.
            let to_pull = self.pull_candidates(&demand);
            if !to_pull.is_empty() {
                let pulled = self.pull_fragments(&to_pull);
                for st in states.iter_mut() {
                    let frontier = std::mem::take(&mut st.frontier);
                    let mut rest = Vec::new();
                    for (meta, module, node) in frontier {
                        let Some((frag, addr)) = pulled.get(&meta) else {
                            rest.push((meta, module, node));
                            continue;
                        };
                        if st.visited.contains(&meta) {
                            continue;
                        }
                        st.visited.push(meta);
                        let start = if node == u32::MAX { frag.root } else { node };
                        let mut sink = HostSink { meter: &mut self.meter, base_addr: *addr };
                        let mut remote = Vec::new();
                        if fetch {
                            frag.local_box_fetch(
                                start,
                                &st.query,
                                &mut st.points,
                                &mut remote,
                                &mut sink,
                            );
                        } else {
                            st.count +=
                                frag.local_box_count(start, &st.query, &mut remote, &mut sink);
                        }
                        rest.extend(remote.into_iter().map(|r| (r.meta, r.module, u32::MAX)));
                    }
                    st.frontier = rest;
                }
                continue;
            }

            // Push phase.
            let mut tasks: Vec<Vec<BoxTask<D>>> = self.task_matrix();
            for (qid, st) in states.iter_mut().enumerate() {
                let frontier = std::mem::take(&mut st.frontier);
                for (meta, module, node) in frontier {
                    if st.visited.contains(&meta) {
                        continue;
                    }
                    // Directory-authoritative routing (the frontier ref's
                    // module hint goes stale across a recovery migration).
                    let module = self.dir.metas.get(&meta).map_or(module, |e| e.module);
                    tasks[module as usize].push(BoxTask {
                        qid: qid as u32,
                        meta,
                        node,
                        query: st.query,
                        fetch,
                    });
                }
            }
            if tasks.iter().all(Vec::is_empty) {
                break;
            }
            let replies: Vec<Vec<BoxReply<D>>> =
                self.robust_round(tasks, |_, m, ctx, t| handle_box(m, ctx, t));
            for reply in replies.into_iter().flatten() {
                let st = &mut states[reply.qid as usize];
                for m in reply.covered {
                    if !st.visited.contains(&m) {
                        st.visited.push(m);
                    }
                }
                st.count += reply.count;
                self.meter.work(reply.points.len() as u64 * 4);
                st.points.extend(reply.points);
                st.frontier
                    .extend(reply.frontier.into_iter().map(|r| (r.meta, r.module, u32::MAX)));
            }
        }

        let counts =
            states.iter().map(|st| if fetch { st.points.len() as u64 } else { st.count }).collect();
        let points = states.into_iter().map(|st| st.points).collect();
        (counts, points)
    }
}

#[cfg(test)]
mod tests {
    use crate::config::PimZdConfig;
    use crate::host::PimZdTree;
    use pim_geom::{Aabb, Point};
    use pim_sim::MachineConfig;
    use pim_workloads::{box_queries, box_side_for_expected, uniform};

    fn sorted(mut v: Vec<Point<3>>) -> Vec<Point<3>> {
        v.sort_unstable_by_key(|p| p.coords);
        v
    }

    #[test]
    fn box_count_matches_scan_throughput_mode() {
        let pts = uniform::<3>(5_000, 1);
        let cfg = PimZdConfig::throughput_optimized(5_000, 16);
        let mut t = PimZdTree::build(&pts, cfg, MachineConfig::with_modules(16));
        let side = box_side_for_expected::<3>(5_000, 50.0);
        let boxes = box_queries(&pts, 30, side, 2);
        let got = t.batch_box_count(&boxes);
        for (i, b) in boxes.iter().enumerate() {
            let want = pts.iter().filter(|p| b.contains(p)).count() as u64;
            assert_eq!(got[i], want, "box #{i}");
        }
    }

    #[test]
    fn box_fetch_matches_scan_skew_mode() {
        let pts = uniform::<3>(6_000, 2);
        let cfg = PimZdConfig::skew_resistant(16);
        let mut t = PimZdTree::build(&pts, cfg, MachineConfig::with_modules(16));
        let side = box_side_for_expected::<3>(6_000, 20.0);
        let boxes = box_queries(&pts, 20, side, 3);
        let got = t.batch_box_fetch(&boxes);
        for (i, b) in boxes.iter().enumerate() {
            let want: Vec<Point<3>> = pts.iter().filter(|p| b.contains(p)).copied().collect();
            assert_eq!(sorted(got[i].clone()), sorted(want), "box #{i}");
        }
    }

    #[test]
    fn universe_box_returns_all() {
        let pts = uniform::<3>(2_000, 3);
        let cfg = PimZdConfig::throughput_optimized(2_000, 8);
        let mut t = PimZdTree::build(&pts, cfg, MachineConfig::with_modules(8));
        let got = t.batch_box_count(&[Aabb::universe()]);
        assert_eq!(got[0], 2_000);
        let fetched = t.batch_box_fetch(&[Aabb::universe()]);
        assert_eq!(fetched[0].len(), 2_000);
    }

    #[test]
    fn empty_tree_box_queries() {
        let cfg = PimZdConfig::throughput_optimized(16, 4);
        let mut t = PimZdTree::<3>::new(cfg, MachineConfig::with_modules(4));
        assert_eq!(t.batch_box_count(&[Aabb::universe()]), vec![0]);
        assert!(t.batch_box_fetch(&[Aabb::universe()])[0].is_empty());
    }
}
