//! Scale-out shard router: N independent simulated PIM machines behind one
//! batch API (ARCHITECTURE.md §10).
//!
//! One [`PimZdTree`] models one UPMEM-class machine; [`ShardedZdTree`] is
//! the multi-rank deployment. The Morton key space is partitioned by a
//! [`PlacementTable`] (a prefix trie with rendezvous-hashed leaf owners),
//! each leaf cell owned by exactly one **rank** — an independent
//! [`PimZdTree`] with its own modules, channel, metrics registry, trace
//! journal, and fault plane. Batched operations scatter to the owning
//! ranks, execute **concurrently** on the work-stealing executor, and
//! gather with an index-ordered collect, so every rank's journal and
//! metrics snapshot stays byte-identical at any host thread count: rank
//! interleaving is quarantined to wall-clock, exactly like module
//! interleaving inside one machine.
//!
//! kNN is **bound-and-prune**: each query runs on its home rank first; the
//! k-th candidate distance bounds a ball box, and the query is re-scattered
//! only to ranks whose cells that box crosses. Box queries scatter to
//! exactly the ranks whose leaves intersect. Skew-driven **rebalancing**
//! generalizes the fault plane's dead-module re-homing to "hot rank → cold
//! rank": when the per-rank busy-cycle imbalance of the window since the
//! last check exceeds a threshold, the router splits or migrates the
//! hottest leaf cells, recording every placement change in the table
//! *before* moving data, so routing stays authoritative mid-migration.

pub mod placement;

pub use placement::{CellId, PlacementTable};

use crate::config::PimZdConfig;
use crate::host::PimZdTree;
use crate::stats::OpStats;
use pim_geom::{coord_bits_for_dim, max_coord_for_dim, Aabb, Metric, Point};
use pim_memsim::{CpuConfig, CpuMeter, CpuModel};
use pim_sim::{FaultPlan, MachineConfig, Metrics};
use pim_zorder::ZKey;
use rayon::prelude::*;
use rustc_hash::FxHashMap;
use std::collections::{BTreeMap, BTreeSet};

/// Host cycles charged per routed item (key encode + trie walk).
const ROUTE_CYCLES: u64 = 24;
/// Host cycles charged per element merged/sorted at the gather stage.
const MERGE_CYCLES: u64 = 8;

/// Configuration of the shard router.
#[derive(Clone, Copy, Debug)]
pub struct ShardConfig {
    /// Number of ranks (independent simulated machines). Must be ≥ 1.
    pub n_ranks: usize,
    /// Initial uniform refinement depth of the placement trie
    /// (`2^(D·initial_levels)` leaves).
    pub initial_levels: u32,
    /// Seed of the rendezvous placement hash.
    pub placement_seed: u64,
    /// Rebalance after an operation when the busy-cycle imbalance of the
    /// window since the last check exceeds this ratio (max/mean over ranks;
    /// 1.0 = perfectly balanced).
    pub rebalance_threshold: f64,
    /// Whether the router rebalances automatically at batch boundaries.
    pub auto_rebalance: bool,
    /// Depth of the heat probes: routed keys are counted per level-
    /// `heat_levels` prefix, bounding rebalancer resolution (clamped to the
    /// grid depth).
    pub heat_levels: u32,
    /// Upper bound on split/migrate actions per rebalance trigger.
    pub max_actions: usize,
}

impl ShardConfig {
    /// Defaults for `n_ranks` ranks: 3 initial levels (512 leaves in 3D —
    /// enough cells per rank that rendezvous placement balances uniform
    /// data), rendezvous seed 2026, auto-rebalance at 1.6× imbalance,
    /// level-10 heat probes, ≤ 12 actions per trigger.
    pub fn new(n_ranks: usize) -> Self {
        ShardConfig {
            n_ranks,
            initial_levels: 3,
            placement_seed: 2026,
            rebalance_threshold: 1.6,
            auto_rebalance: true,
            heat_levels: 10,
            max_actions: 12,
        }
    }

    fn heat_level_for_dim(&self, d: usize) -> u32 {
        self.heat_levels.clamp(1, coord_bits_for_dim(d) - 1)
    }
}

/// Per-operation measurement of a sharded batch: the per-rank [`OpStats`]
/// plus the cross-rank aggregate.
#[derive(Clone, Debug, Default)]
pub struct ShardOpStats {
    /// This operation's stats per rank (default for ranks it never touched).
    pub per_rank: Vec<OpStats>,
    /// Cross-rank aggregate: work fields (bytes, cycles, rounds) are sums;
    /// time fields are straggler times — per scatter phase, the slowest
    /// participating rank sets the phase time (concurrent ranks overlap),
    /// and sequential work (routing, merging, migrations) adds directly.
    /// `worst_imbalance` here is the **busy-cycle imbalance across ranks**
    /// (max/mean of per-rank PIM cycles), not the intra-rank module figure.
    pub agg: OpStats,
    /// Σ over queries of the number of ranks the query was sent to.
    pub rank_touches: u64,
    /// Rebalance actions (cell splits + leaf moves) this operation
    /// triggered.
    pub rebalance_actions: u64,
}

impl ShardOpStats {
    fn fresh(n_ranks: usize) -> Self {
        ShardOpStats { per_rank: vec![OpStats::default(); n_ranks], ..Default::default() }
    }

    /// Busy-cycle imbalance across ranks for this operation: max/mean of
    /// per-rank PIM cycles, idle ranks counted as zero (1.0 when no rank
    /// did PIM work).
    pub fn busy_cycle_imbalance(&self) -> f64 {
        let total: u64 = self.per_rank.iter().map(|s| s.pim_cycles).sum();
        if total == 0 || self.per_rank.is_empty() {
            return 1.0;
        }
        let max = self.per_rank.iter().map(|s| s.pim_cycles).max().unwrap_or(0);
        max as f64 / (total as f64 / self.per_rank.len() as f64)
    }

    /// Mean number of ranks each query touched (the cross-shard fan-out
    /// ratio; 1.0 = every query stayed on its home rank).
    pub fn fanout(&self) -> f64 {
        if self.agg.batch_ops == 0 {
            1.0
        } else {
            self.rank_touches as f64 / self.agg.batch_ops as f64
        }
    }
}

/// Sums `src` into `dst` field-wise (breakdown components add;
/// `worst_imbalance` keeps the max).
fn accumulate(dst: &mut OpStats, src: &OpStats) {
    dst.breakdown.cpu_s += src.breakdown.cpu_s;
    dst.breakdown.pim_s += src.breakdown.pim_s;
    dst.breakdown.comm_s += src.breakdown.comm_s;
    dst.rounds += src.rounds;
    dst.channel_bytes += src.channel_bytes;
    dst.cpu_dram_bytes += src.cpu_dram_bytes;
    dst.batch_ops += src.batch_ops;
    dst.elements += src.elements;
    dst.worst_imbalance = dst.worst_imbalance.max(src.worst_imbalance);
    dst.cpu_cycles += src.cpu_cycles;
    dst.pim_cycles += src.pim_cycles;
}

/// Runs `f` on every rank with a non-empty part, concurrently on the
/// work-stealing executor, gathering results (and each touched rank's
/// [`OpStats`]) with an index-ordered collect. Empty parts are skipped
/// entirely — the rank is not touched and reports `None` — because the
/// underlying batch ops early-return on empty input without refreshing
/// their stats.
fn scatter<const D: usize, T, R>(
    ranks: &mut [PimZdTree<D>],
    parts: Vec<Vec<T>>,
    f: impl Fn(&mut PimZdTree<D>, &[T]) -> R + Sync,
) -> Vec<Option<(R, OpStats)>>
where
    T: Send,
    R: Send,
{
    ranks
        .par_iter_mut()
        .zip(parts.into_par_iter())
        .map(|(rank, part)| {
            if part.is_empty() {
                None
            } else {
                let out = f(rank, &part);
                Some((out, rank.last_op_stats().clone()))
            }
        })
        .collect()
}

/// The sharded index: N [`PimZdTree`] ranks behind one batch API (see the
/// module docs).
pub struct ShardedZdTree<const D: usize> {
    cfg: ShardConfig,
    placement: PlacementTable<D>,
    ranks: Vec<PimZdTree<D>>,
    /// Routed-key heat per level-`heat_levels` Morton prefix, cleared at
    /// every rebalance so each window measures fresh skew.
    heat: FxHashMap<u64, u64>,
    /// Per-rank `total_pim_cycles` at the start of the current rebalance
    /// window.
    cycles_base: Vec<u64>,
    meter: CpuMeter,
    cpu_model: CpuModel,
    metrics: Metrics,
    rank_metrics: Vec<Metrics>,
    last_stats: ShardOpStats,
    leaf_moves: u64,
    cell_splits: u64,
    migrated_points: u64,
}

impl<const D: usize> ShardedZdTree<D> {
    /// Builds the sharded index over `points`: each rank is an independent
    /// machine of `machine`'s geometry, built (untimed, like the
    /// single-rank warmup) over the points its cells own.
    pub fn build(
        points: &[Point<D>],
        cfg: ShardConfig,
        zcfg: PimZdConfig,
        machine: MachineConfig,
    ) -> Self {
        Self::build_with_cpu(points, cfg, zcfg, machine, CpuConfig::xeon())
    }

    /// [`Self::build`] with an explicit host CPU model (shared by the
    /// router's own meter and every rank).
    pub fn build_with_cpu(
        points: &[Point<D>],
        cfg: ShardConfig,
        zcfg: PimZdConfig,
        machine: MachineConfig,
        cpu: CpuConfig,
    ) -> Self {
        assert!(cfg.n_ranks > 0, "a sharded tree needs at least one rank");
        let placement = PlacementTable::new(cfg.placement_seed, cfg.n_ranks, cfg.initial_levels);
        let mut parts: Vec<Vec<Point<D>>> = vec![Vec::new(); cfg.n_ranks];
        for p in points {
            parts[placement.owner_of_point(p) as usize].push(*p);
        }
        let ranks: Vec<PimZdTree<D>> =
            parts.iter().map(|part| PimZdTree::build_with_cpu(part, zcfg, machine, cpu)).collect();
        let cycles_base = ranks.iter().map(|r| r.sim_stats().total_pim_cycles).collect();
        ShardedZdTree {
            cfg,
            placement,
            ranks,
            heat: FxHashMap::default(),
            cycles_base,
            meter: CpuMeter::new(cpu),
            cpu_model: CpuModel::new(cpu),
            metrics: Metrics::disabled(),
            rank_metrics: vec![Metrics::disabled(); cfg.n_ranks],
            last_stats: ShardOpStats::default(),
            leaf_moves: 0,
            cell_splits: 0,
            migrated_points: 0,
        }
    }

    /// Number of ranks.
    pub fn n_ranks(&self) -> usize {
        self.ranks.len()
    }

    /// Total stored points across all ranks.
    pub fn len(&self) -> usize {
        self.ranks.iter().map(PimZdTree::len).sum()
    }

    /// Whether every rank is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The placement table (routing directory).
    pub fn placement(&self) -> &PlacementTable<D> {
        &self.placement
    }

    /// Read access to one rank (tests and benches inspect per-rank state).
    pub fn rank(&self, r: usize) -> &PimZdTree<D> {
        &self.ranks[r]
    }

    /// Statistics of the most recent sharded batch operation.
    pub fn last_shard_stats(&self) -> &ShardOpStats {
        &self.last_stats
    }

    /// The aggregate [`OpStats`] of the most recent operation (same shape
    /// the single-rank API reports, so bench plumbing is shared).
    pub fn last_op_stats(&self) -> &OpStats {
        &self.last_stats.agg
    }

    /// Lifetime rebalance counters: `(leaf moves, cell splits, migrated
    /// points)`.
    pub fn rebalance_counters(&self) -> (u64, u64, u64) {
        (self.leaf_moves, self.cell_splits, self.migrated_points)
    }

    /// Attaches a fault plan to one rank (each rank has an independent
    /// fault plane; see [`PimZdTree::set_fault_plan`]).
    pub fn set_fault_plan_on(&mut self, rank: usize, plan: Option<FaultPlan>) {
        self.ranks[rank].set_fault_plan(plan);
    }

    /// Attaches per-rank trace journals, returning the journal handles in
    /// rank order. Each rank journals its own rounds into its own buffer,
    /// so multi-rank traces are byte-identical at any thread count; merge
    /// them for reporting with `trace_summary <file> <file>…`.
    pub fn attach_journals(&mut self) -> Vec<pim_sim::Journal> {
        self.ranks
            .iter_mut()
            .map(|r| {
                let (sink, journal) = pim_sim::JournalSink::new();
                r.set_trace_sink(Box::new(sink));
                journal
            })
            .collect()
    }

    /// Attaches a metrics handle. The router publishes shard-level series
    /// (`shard_*`) into it directly; each rank gets its **own** registry
    /// stamped with a `("shard", "<r>")` base label, kept separate so
    /// concurrent ranks never contend and snapshots stay deterministic.
    /// Call [`Self::merge_rank_metrics`] once before snapshotting to fold
    /// the rank registries into the attached handle. Pass
    /// [`Metrics::disabled`] to detach everything.
    pub fn set_metrics(&mut self, metrics: Metrics) {
        if metrics.enabled() {
            for (r, rank) in self.ranks.iter_mut().enumerate() {
                let handle = Metrics::enabled_new();
                handle.with(|reg| reg.set_base_labels(&[("shard", &r.to_string())]));
                rank.set_metrics(handle.clone());
                self.rank_metrics[r] = handle;
            }
        } else {
            for (r, rank) in self.ranks.iter_mut().enumerate() {
                rank.set_metrics(Metrics::disabled());
                self.rank_metrics[r] = Metrics::disabled();
            }
        }
        self.metrics = metrics;
    }

    /// Folds every rank's registry into the handle given to
    /// [`Self::set_metrics`], in rank order. Counters add, so call this
    /// exactly once, after the measured work (merging twice would double
    /// the rank counters).
    pub fn merge_rank_metrics(&self) {
        self.metrics.with(|target| {
            for rm in &self.rank_metrics {
                rm.with(|src| target.merge_from(src));
            }
        });
    }

    // -----------------------------------------------------------------
    // Measurement scaffolding
    // -----------------------------------------------------------------

    fn begin_op(&mut self) -> ShardOpStats {
        self.meter.start_measurement();
        ShardOpStats::fresh(self.ranks.len())
    }

    /// Folds one concurrent scatter phase into `acc`: per-rank stats add;
    /// the aggregate's time components take the **max** over participating
    /// ranks (the straggler sets the phase time), work counters sum.
    fn fold_concurrent<R>(acc: &mut ShardOpStats, phase: &[Option<(R, OpStats)>]) {
        let (mut cpu, mut pim, mut comm) = (0.0f64, 0.0f64, 0.0f64);
        for (r, slot) in phase.iter().enumerate() {
            if let Some((_, s)) = slot {
                accumulate(&mut acc.per_rank[r], s);
                cpu = cpu.max(s.breakdown.cpu_s);
                pim = pim.max(s.breakdown.pim_s);
                comm = comm.max(s.breakdown.comm_s);
                acc.agg.rounds += s.rounds;
                acc.agg.channel_bytes += s.channel_bytes;
                acc.agg.cpu_dram_bytes += s.cpu_dram_bytes;
                acc.agg.cpu_cycles += s.cpu_cycles;
                acc.agg.pim_cycles += s.pim_cycles;
            }
        }
        acc.agg.breakdown.cpu_s += cpu;
        acc.agg.breakdown.pim_s += pim;
        acc.agg.breakdown.comm_s += comm;
    }

    /// Folds one **sequential** rank operation (migrations run one rank at
    /// a time) into `acc`: everything adds, including time.
    fn fold_sequential(acc: &mut ShardOpStats, rank: usize, s: &OpStats) {
        accumulate(&mut acc.per_rank[rank], s);
        acc.agg.breakdown.cpu_s += s.breakdown.cpu_s;
        acc.agg.breakdown.pim_s += s.breakdown.pim_s;
        acc.agg.breakdown.comm_s += s.breakdown.comm_s;
        acc.agg.rounds += s.rounds;
        acc.agg.channel_bytes += s.channel_bytes;
        acc.agg.cpu_dram_bytes += s.cpu_dram_bytes;
        acc.agg.cpu_cycles += s.cpu_cycles;
        acc.agg.pim_cycles += s.pim_cycles;
    }

    fn finish_op(
        &mut self,
        mut acc: ShardOpStats,
        op: &'static str,
        batch_ops: u64,
        elements: u64,
    ) {
        if self.cfg.auto_rebalance {
            self.check_rebalance(&mut acc);
        }
        let host = self.meter.stats();
        acc.agg.breakdown.cpu_s += self.cpu_model.time_seconds(&host);
        acc.agg.cpu_cycles += host.work_cycles + host.span_cycles;
        acc.agg.cpu_dram_bytes += host.dram_bytes;
        acc.agg.batch_ops = batch_ops;
        acc.agg.elements = elements;
        acc.agg.worst_imbalance = acc.busy_cycle_imbalance();
        if self.metrics.enabled() {
            let (moves, splits, migrated) =
                (self.leaf_moves, self.cell_splits, self.migrated_points);
            let leaves = self.placement.n_leaves() as f64;
            self.metrics.with(|m| {
                let ol: &[(&str, &str)] = &[("op", op)];
                m.add("shard_batches_total", ol, 1);
                m.add("shard_batch_ops_total", ol, batch_ops);
                m.add("shard_elements_returned_total", ol, elements);
                m.add("shard_rank_touches_total", ol, acc.rank_touches);
                m.set_gauge("shard_leaves", &[], leaves);
                m.set_gauge("shard_leaf_moves", &[], moves as f64);
                m.set_gauge("shard_cell_splits", &[], splits as f64);
                m.set_gauge("shard_migrated_points", &[], migrated as f64);
            });
        }
        self.last_stats = acc;
    }

    /// Routes points to their home ranks, recording heat probes. Returns
    /// the per-rank parts and each part's original batch positions.
    #[allow(clippy::type_complexity)]
    fn route_points(&mut self, pts: &[Point<D>]) -> (Vec<Vec<Point<D>>>, Vec<Vec<usize>>) {
        let n = self.ranks.len();
        let mut parts: Vec<Vec<Point<D>>> = vec![Vec::new(); n];
        let mut pos: Vec<Vec<usize>> = vec![Vec::new(); n];
        let hl = self.cfg.heat_level_for_dim(D);
        let shift = ZKey::<D>::BITS - hl * D as u32;
        for (i, p) in pts.iter().enumerate() {
            let key = ZKey::<D>::encode(p).0;
            let r = self.placement.owner_of_key(key) as usize;
            parts[r].push(*p);
            pos[r].push(i);
            *self.heat.entry(key >> shift).or_insert(0) += 1;
        }
        self.meter.work(pts.len() as u64 * ROUTE_CYCLES);
        (parts, pos)
    }

    // -----------------------------------------------------------------
    // Batched operations
    // -----------------------------------------------------------------

    /// Inserts a batch of points (multiset semantics), each on its home
    /// rank.
    pub fn batch_insert(&mut self, points: &[Point<D>]) {
        if points.is_empty() {
            return;
        }
        let mut acc = self.begin_op();
        let (parts, _) = self.route_points(points);
        let phase = scatter(&mut self.ranks, parts, |rank, part| rank.batch_insert(part));
        Self::fold_concurrent(&mut acc, &phase);
        acc.rank_touches += points.len() as u64;
        self.finish_op(acc, "insert", points.len() as u64, points.len() as u64);
    }

    /// Deletes one stored instance per request point (multiset semantics),
    /// returning the number removed.
    pub fn batch_delete(&mut self, points: &[Point<D>]) -> usize {
        if points.is_empty() {
            return 0;
        }
        let mut acc = self.begin_op();
        let (parts, _) = self.route_points(points);
        let phase = scatter(&mut self.ranks, parts, |rank, part| rank.batch_delete(part));
        Self::fold_concurrent(&mut acc, &phase);
        let removed: usize = phase.iter().filter_map(|s| s.as_ref().map(|(r, _)| *r)).sum();
        acc.rank_touches += points.len() as u64;
        self.finish_op(acc, "delete", points.len() as u64, points.len() as u64);
        removed
    }

    /// Batched point membership, each query answered by its home rank.
    pub fn batch_contains(&mut self, pts: &[Point<D>]) -> Vec<bool> {
        if pts.is_empty() {
            return Vec::new();
        }
        let mut acc = self.begin_op();
        let (parts, pos) = self.route_points(pts);
        let phase = scatter(&mut self.ranks, parts, |rank, part| rank.batch_contains(part));
        Self::fold_concurrent(&mut acc, &phase);
        let mut out = vec![false; pts.len()];
        for (r, slot) in phase.iter().enumerate() {
            if let Some((found, _)) = slot {
                for (j, &qi) in pos[r].iter().enumerate() {
                    out[qi] = found[j];
                }
            }
        }
        acc.rank_touches += pts.len() as u64;
        self.finish_op(acc, "contains", pts.len() as u64, pts.len() as u64);
        out
    }

    /// Routes box queries to every rank whose leaves intersect them.
    /// Returns per-rank boxes, per-rank query positions, and Σ touches.
    #[allow(clippy::type_complexity)]
    fn route_boxes(&mut self, queries: &[Aabb<D>]) -> (Vec<Vec<Aabb<D>>>, Vec<Vec<usize>>, u64) {
        let n = self.ranks.len();
        let mut parts: Vec<Vec<Aabb<D>>> = vec![Vec::new(); n];
        let mut pos: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut touches = 0u64;
        for (qi, q) in queries.iter().enumerate() {
            for r in self.placement.ranks_intersecting(q) {
                parts[r as usize].push(*q);
                pos[r as usize].push(qi);
                touches += 1;
            }
        }
        self.meter.work(queries.len() as u64 * ROUTE_CYCLES * 2);
        (parts, pos, touches)
    }

    /// Batched BoxCount: exact count per box, summed over the intersecting
    /// ranks (each stored point lives on exactly one rank, so the sum is
    /// exact).
    pub fn batch_box_count(&mut self, queries: &[Aabb<D>]) -> Vec<u64> {
        if queries.is_empty() {
            return Vec::new();
        }
        let mut acc = self.begin_op();
        let (parts, pos, touches) = self.route_boxes(queries);
        let phase = scatter(&mut self.ranks, parts, |rank, part| rank.batch_box_count(part));
        Self::fold_concurrent(&mut acc, &phase);
        let mut out = vec![0u64; queries.len()];
        for (r, slot) in phase.iter().enumerate() {
            if let Some((counts, _)) = slot {
                for (j, &qi) in pos[r].iter().enumerate() {
                    out[qi] += counts[j];
                }
            }
        }
        acc.rank_touches += touches;
        self.finish_op(acc, "box_count", queries.len() as u64, queries.len() as u64);
        out
    }

    /// Batched BoxFetch: the stored points in each box, gathered across
    /// ranks and canonically sorted by coordinates (the single-rank API
    /// leaves the order unspecified; the shard gather makes it canonical so
    /// results are comparable across any placement state).
    pub fn batch_box_fetch(&mut self, queries: &[Aabb<D>]) -> Vec<Vec<Point<D>>> {
        if queries.is_empty() {
            return Vec::new();
        }
        let mut acc = self.begin_op();
        let (parts, pos, touches) = self.route_boxes(queries);
        let phase = scatter(&mut self.ranks, parts, |rank, part| rank.batch_box_fetch(part));
        Self::fold_concurrent(&mut acc, &phase);
        let mut out: Vec<Vec<Point<D>>> = vec![Vec::new(); queries.len()];
        for (r, slot) in phase.iter().enumerate() {
            if let Some((fetched, _)) = slot {
                for (j, &qi) in pos[r].iter().enumerate() {
                    out[qi].extend_from_slice(&fetched[j]);
                }
            }
        }
        let elements: u64 = out.iter().map(|v| v.len() as u64).sum();
        self.meter.work(elements * MERGE_CYCLES);
        for v in &mut out {
            v.sort_unstable_by_key(|a| a.coords);
        }
        acc.rank_touches += touches;
        self.finish_op(acc, "box_fetch", queries.len() as u64, elements);
        out
    }

    /// Batched k-nearest-neighbor by bound-and-prune scatter-gather:
    ///
    /// 1. every query runs as a full kNN on its **home** rank (the rank
    ///    owning its key);
    /// 2. the k-th home candidate bounds a ball box (the universe when the
    ///    home rank returned fewer than k);
    /// 3. queries whose ball crosses a cell boundary are re-scattered to
    ///    exactly the other ranks whose leaves the ball intersects — as
    ///    **bounded box fetches**, not kNN searches: a foreign rank can
    ///    only contribute points within the home bound, and a widened query
    ///    point lies outside the foreign rank's cells, where its kNN anchor
    ///    would degrade toward the root and cost far more than the fetch.
    ///    The host evaluates the exact metric over the fetched candidates
    ///    (the same fine-filter role it plays inside single-rank kNN) and
    ///    merges by `(distance, coords)` — byte-identical to the
    ///    single-rank result, since each stored point lives on exactly one
    ///    rank and every global top-k point is within the home bound.
    ///
    /// Results follow the single-rank contract: ≤ k `(comparable distance,
    /// point)` pairs, distinct points, sorted by `(distance, coords)`.
    pub fn batch_knn(
        &mut self,
        queries: &[Point<D>],
        k: usize,
        metric: Metric,
    ) -> Vec<Vec<(u64, Point<D>)>> {
        if queries.is_empty() || k == 0 {
            return vec![Vec::new(); queries.len()];
        }
        let mut acc = self.begin_op();
        let (parts, pos) = self.route_points(queries);
        let home = scatter(&mut self.ranks, parts, |rank, part| rank.batch_knn(part, k, metric));
        Self::fold_concurrent(&mut acc, &home);
        let mut out: Vec<Vec<(u64, Point<D>)>> = vec![Vec::new(); queries.len()];
        for (r, slot) in home.iter().enumerate() {
            if let Some((res, _)) = slot {
                for (j, &qi) in pos[r].iter().enumerate() {
                    out[qi] = res[j].clone();
                }
            }
        }
        acc.rank_touches += queries.len() as u64;

        // Bound-and-prune widening: bounded ball-box fetches on the foreign
        // ranks, exact-metric fine filter on the host.
        let n = self.ranks.len();
        let mut wparts: Vec<Vec<Aabb<D>>> = vec![Vec::new(); n];
        let mut wpos: Vec<Vec<usize>> = vec![Vec::new(); n];
        if n > 1 {
            self.meter.work(queries.len() as u64 * ROUTE_CYCLES);
            for (qi, q) in queries.iter().enumerate() {
                let home_rank = self.placement.owner_of_point(q);
                let bound = if out[qi].len() == k { out[qi][k - 1].0 } else { u64::MAX };
                let ball = ball_box::<D>(q, bound, metric);
                for r in self.placement.ranks_intersecting(&ball) {
                    if r != home_rank {
                        wparts[r as usize].push(ball);
                        wpos[r as usize].push(qi);
                        acc.rank_touches += 1;
                    }
                }
            }
        }
        if wparts.iter().any(|p| !p.is_empty()) {
            let widen = scatter(&mut self.ranks, wparts, |rank, part| rank.batch_box_fetch(part));
            Self::fold_concurrent(&mut acc, &widen);
            let mut fetched_total = 0u64;
            for (r, slot) in widen.iter().enumerate() {
                if let Some((fetched, _)) = slot {
                    for (j, &qi) in wpos[r].iter().enumerate() {
                        let q = &queries[qi];
                        fetched_total += fetched[j].len() as u64;
                        out[qi].extend(fetched[j].iter().map(|p| (metric.cmp_dist(q, p), *p)));
                    }
                }
            }
            // Fine filter + merge are host work, like single-rank step 5 —
            // and like step 5 it is sort/dedup/truncate: `batch_knn`
            // returns *distinct* points (duplicate stored copies collapse),
            // so the merged cross-rank list must dedup to match the
            // single-rank reference bit for bit.
            self.meter.work(fetched_total * (Metric::L2.pim_cycles(D) / 8 + MERGE_CYCLES));
            let widened: BTreeSet<usize> = wpos.iter().flatten().copied().collect();
            for qi in widened {
                let v = &mut out[qi];
                v.sort_unstable_by_key(|a| (a.0, a.1.coords));
                v.dedup();
                v.truncate(k);
            }
        }
        self.finish_op(acc, "knn", queries.len() as u64, queries.len() as u64 * k as u64);
        out
    }

    // -----------------------------------------------------------------
    // Skew-driven rebalancing
    // -----------------------------------------------------------------

    /// Checks the busy-cycle imbalance of the window since the last check
    /// and, when it exceeds the threshold, splits or migrates the hottest
    /// leaves of the hottest rank (≤ `max_actions` actions). Runs
    /// automatically at batch boundaries when `auto_rebalance` is set; this
    /// entry point lets callers with `auto_rebalance` off trigger it
    /// manually between batches. Returns the number of actions taken.
    pub fn rebalance_now(&mut self) -> u64 {
        let mut acc = ShardOpStats::fresh(self.ranks.len());
        self.meter.start_measurement();
        let actions = self.check_rebalance(&mut acc);
        acc.agg.worst_imbalance = acc.busy_cycle_imbalance();
        self.last_stats = acc;
        actions
    }

    fn check_rebalance(&mut self, acc: &mut ShardOpStats) -> u64 {
        let n = self.ranks.len();
        if n < 2 {
            return 0;
        }
        let deltas: Vec<u64> = self
            .ranks
            .iter()
            .zip(&self.cycles_base)
            .map(|(r, base)| r.sim_stats().total_pim_cycles - base)
            .collect();
        let total: u64 = deltas.iter().sum();
        if total == 0 {
            return 0;
        }
        let mean = total as f64 / n as f64;
        let max = *deltas.iter().max().unwrap();
        if (max as f64) / mean <= self.cfg.rebalance_threshold {
            return 0;
        }
        let total_heat: u64 = self.heat.values().sum();
        if total_heat == 0 {
            self.reset_window();
            return 0;
        }
        if self.metrics.enabled() {
            self.metrics.with(|m| m.add("shard_rebalance_triggers_total", &[], 1));
        }
        let hl = self.cfg.heat_level_for_dim(D);
        let fair = total_heat / n as u64;
        let mut actions = 0u64;
        while actions < self.cfg.max_actions as u64 {
            // Re-derive per-leaf heat from the probe map under the current
            // placement (splits refine it between iterations). BTreeMaps
            // keep every argmax independent of hash iteration order.
            self.meter.work(self.heat.len() as u64 * ROUTE_CYCLES);
            let mut per_rank_leaves: Vec<BTreeMap<CellId, u64>> = vec![BTreeMap::new(); n];
            let mut rank_heat = vec![0u64; n];
            let shift = ZKey::<D>::BITS - hl * D as u32;
            for (&prefix, &h) in &self.heat {
                let key = prefix << shift;
                let cell = self.placement.cell_of_key(key);
                let owner = self.placement.owner_of_key(key) as usize;
                rank_heat[owner] += h;
                *per_rank_leaves[owner].entry(cell).or_insert(0) += h;
            }
            // Migrate from the *heat*-hottest rank. Cycle imbalance is the
            // trigger, but cycles include widen-phase fetches served for
            // other ranks' queries; routing heat is what placement can
            // actually move.
            let (hot, _) = rank_heat
                .iter()
                .enumerate()
                .max_by_key(|&(i, &h)| (h, std::cmp::Reverse(i)))
                .unwrap();
            let leaf_heat = &per_rank_leaves[hot];
            // Hot rank already at (or below) its fair share: done.
            if rank_heat[hot] <= fair || leaf_heat.is_empty() {
                break;
            }
            let (&leaf, &lh) =
                leaf_heat.iter().max_by_key(|&(c, &h)| (h, std::cmp::Reverse(*c))).unwrap();
            if lh > fair && leaf.level < hl {
                // The single leaf is hotter than a whole fair share: refine
                // it so heat becomes divisible (the Varden filament case —
                // a point mass no move can balance). Only while the leaf is
                // coarser than the heat probes: a leaf at (or below) probe
                // granularity maps every one of its probes to one child, so
                // splitting it just renames the hot cell and bounces the
                // same points between ranks once per action.
                let kids = self.placement.split(leaf);
                self.cell_splits += 1;
                for (kc, owner) in kids {
                    if owner != hot as u32 {
                        self.move_cell_points(kc, hot, owner as usize, acc);
                    }
                }
            } else {
                // Move the leaf to the heat-coldest rank.
                let (cold, _) = rank_heat.iter().enumerate().min_by_key(|&(i, &h)| (h, i)).unwrap();
                if cold == hot {
                    break;
                }
                self.placement.set_owner(leaf, cold as u32);
                self.leaf_moves += 1;
                self.move_cell_points(leaf, hot, cold, acc);
            }
            actions += 1;
        }
        acc.rebalance_actions += actions;
        if self.metrics.enabled() && actions > 0 {
            self.metrics.with(|m| m.add("shard_rebalance_actions_total", &[], actions));
        }
        self.reset_window();
        actions
    }

    /// Migrates the points of `cell` from rank `from` to rank `to` through
    /// the public timed ops (fetch → delete → insert), so migration cost is
    /// fully accounted and journaled on both ranks. The placement table was
    /// already updated by the caller, so queries racing the migration in
    /// program order route consistently.
    fn move_cell_points(&mut self, cell: CellId, from: usize, to: usize, acc: &mut ShardOpStats) {
        let bx = cell.aabb::<D>();
        let fetched = self.ranks[from].batch_box_fetch(&[bx]);
        Self::fold_sequential(acc, from, &self.ranks[from].last_op_stats().clone());
        let pts = &fetched[0];
        if pts.is_empty() {
            return;
        }
        if std::env::var_os("SHARD_DEBUG_MIGRATE").is_some() {
            eprintln!("migrate cell l{} {:x} {from}->{to}: {pts:?}", cell.level, cell.bits);
        }
        let removed = self.ranks[from].batch_delete(pts);
        Self::fold_sequential(acc, from, &self.ranks[from].last_op_stats().clone());
        debug_assert_eq!(removed, pts.len(), "cell fetch and delete must agree");
        self.ranks[to].batch_insert(pts);
        Self::fold_sequential(acc, to, &self.ranks[to].last_op_stats().clone());
        self.migrated_points += pts.len() as u64;
    }

    fn reset_window(&mut self) {
        self.heat.clear();
        for (base, rank) in self.cycles_base.iter_mut().zip(&self.ranks) {
            *base = rank.sim_stats().total_pim_cycles;
        }
    }
}

/// The axis-aligned box guaranteed to contain every point within comparable
/// distance `bound` of `q` (`bound` is squared for ℓ2), clamped to the
/// grid. `u64::MAX` means "unbounded" and yields the universe.
fn ball_box<const D: usize>(q: &Point<D>, bound: u64, metric: Metric) -> Aabb<D> {
    if bound == u64::MAX {
        return Aabb::universe();
    }
    let half = match metric {
        Metric::L2 => isqrt_ceil(bound),
        Metric::L1 | Metric::Linf => bound,
    };
    let m = max_coord_for_dim(D) as u64;
    let half = half.min(m);
    let mut lo = [0u32; D];
    let mut hi = [0u32; D];
    for i in 0..D {
        let c = q.coords[i] as u64;
        lo[i] = c.saturating_sub(half) as u32;
        hi[i] = (c + half).min(m) as u32;
    }
    Aabb::new(Point::new(lo), Point::new(hi))
}

/// ⌈√v⌉ exactly (widened through `u128` so the check never overflows).
fn isqrt_ceil(v: u64) -> u64 {
    if v == 0 {
        return 0;
    }
    let mut r = (v as f64).sqrt() as u64;
    while (r as u128) * (r as u128) < v as u128 {
        r += 1;
    }
    while r > 0 && ((r - 1) as u128) * ((r - 1) as u128) >= v as u128 {
        r -= 1;
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PimZdConfig;

    fn pts(n: u32, seed: u32) -> Vec<Point<3>> {
        (0..n)
            .map(|i| {
                let x = i.wrapping_mul(2654435761).wrapping_add(seed) % (1 << 21);
                let y = i.wrapping_mul(40503).wrapping_add(seed * 7) % (1 << 21);
                let z = i.wrapping_mul(2246822519).wrapping_add(seed * 13) % (1 << 21);
                Point::new([x, y, z])
            })
            .collect()
    }

    fn build_pair(n_ranks: usize, data: &[Point<3>]) -> (ShardedZdTree<3>, PimZdTree<3>) {
        let zcfg = PimZdConfig::throughput_optimized(data.len().max(1) as u64, 16);
        let machine = MachineConfig::with_modules(16);
        let mut scfg = ShardConfig::new(n_ranks);
        scfg.auto_rebalance = false;
        let sharded = ShardedZdTree::build(data, scfg, zcfg, machine);
        let single = PimZdTree::build(data, zcfg, machine);
        (sharded, single)
    }

    #[test]
    fn sharded_queries_match_single_rank() {
        let data = pts(4000, 1);
        let (mut sh, mut single) = build_pair(4, &data);
        assert_eq!(sh.len(), single.len());

        let queries = pts(64, 99);
        assert_eq!(sh.batch_contains(&queries), single.batch_contains(&queries));
        assert_eq!(
            sh.batch_knn(&queries, 5, Metric::L2),
            single.batch_knn(&queries, 5, Metric::L2)
        );

        let boxes: Vec<Aabb<3>> = queries
            .iter()
            .map(|q| {
                let half = 1u32 << 18;
                let lo = Point::new(q.coords.map(|c| c.saturating_sub(half)));
                let hi = Point::new(q.coords.map(|c| (c + half).min((1 << 21) - 1)));
                Aabb::new(lo, hi)
            })
            .collect();
        assert_eq!(sh.batch_box_count(&boxes), single.batch_box_count(&boxes));
        let mut want = single.batch_box_fetch(&boxes);
        for v in &mut want {
            v.sort_unstable_by_key(|a| a.coords);
        }
        assert_eq!(sh.batch_box_fetch(&boxes), want);
    }

    #[test]
    fn sharded_updates_match_single_rank() {
        let data = pts(2000, 3);
        let (mut sh, mut single) = build_pair(3, &data);
        let extra = pts(500, 77);
        sh.batch_insert(&extra);
        single.batch_insert(&extra);
        assert_eq!(sh.len(), single.len());
        let removed_s = sh.batch_delete(&extra[..200]);
        let removed_1 = single.batch_delete(&extra[..200]);
        assert_eq!(removed_s, removed_1);
        let queries = pts(32, 5);
        assert_eq!(
            sh.batch_knn(&queries, 3, Metric::L1),
            single.batch_knn(&queries, 3, Metric::L1)
        );
    }

    #[test]
    fn knn_crosses_shard_boundaries() {
        // Two adjacent points in different cells: a 2-NN from either side
        // must find both, proving the widen phase reaches foreign ranks.
        let data = pts(3000, 9);
        let (mut sh, mut single) = build_pair(8, &data);
        let stats_fanout_before = sh.last_shard_stats().fanout();
        let queries = pts(128, 31);
        let got = sh.batch_knn(&queries, 10, Metric::L2);
        let want = single.batch_knn(&queries, 10, Metric::L2);
        assert_eq!(got, want);
        let st = sh.last_shard_stats();
        assert!(st.fanout() > 1.0, "10-NN over 8 ranks must widen sometimes: {}", st.fanout());
        assert!(st.fanout() >= stats_fanout_before || stats_fanout_before == 1.0);
    }

    #[test]
    fn rebalance_preserves_results() {
        let data = pts(2000, 11);
        let zcfg = PimZdConfig::throughput_optimized(data.len() as u64, 16);
        let machine = MachineConfig::with_modules(16);
        let mut scfg = ShardConfig::new(4);
        scfg.auto_rebalance = true;
        scfg.rebalance_threshold = 1.01; // trigger aggressively
        let mut sh = ShardedZdTree::build(&data, scfg, zcfg, machine);
        let mut single = PimZdTree::build(&data, zcfg, machine);
        // Skewed queries: all in one corner, heating one rank.
        let hot: Vec<Point<3>> = (0..256u32).map(|i| Point::new([i % 64, i / 64, 3])).collect();
        for _ in 0..4 {
            sh.batch_knn(&hot, 3, Metric::L2);
        }
        let (moves, splits, migrated) = sh.rebalance_counters();
        assert!(
            moves + splits > 0,
            "skewed load must trigger rebalancing (moves={moves} splits={splits} migrated={migrated})"
        );
        assert_eq!(sh.len(), data.len(), "migration preserves the multiset size");
        let queries = pts(64, 13);
        assert_eq!(
            sh.batch_knn(&queries, 5, Metric::L2),
            single.batch_knn(&queries, 5, Metric::L2)
        );
        assert_eq!(sh.batch_contains(&data[..100]), single.batch_contains(&data[..100]));
    }

    #[test]
    fn ball_box_l2_contains_the_ball() {
        let q = Point::new([100u32, 100, 100]);
        let b = ball_box::<3>(&q, 25, Metric::L2); // radius 5
        assert!(b.contains(&Point::new([95, 100, 100])));
        assert!(b.contains(&Point::new([105, 104, 97])));
        assert_eq!(ball_box::<3>(&q, u64::MAX, Metric::L2), Aabb::universe());
    }

    #[test]
    fn isqrt_ceil_is_exact() {
        for v in [0u64, 1, 2, 3, 4, 5, 24, 25, 26, 1 << 40, (1 << 40) + 1] {
            let r = isqrt_ceil(v);
            assert!((r as u128) * (r as u128) >= v as u128);
            if r > 0 {
                assert!(((r - 1) as u128) * ((r - 1) as u128) < v as u128);
            }
        }
    }
}
