//! The shard placement table: a Morton-prefix trie with rendezvous-hashed
//! leaf ownership.
//!
//! The key space is partitioned into **cells** — aligned Morton prefixes,
//! i.e. aligned hypercubes of the grid — and every leaf cell is owned by
//! exactly one rank. Initial ownership is rendezvous hashing
//! ([`pim_sim::rendezvous_owner`]) of the cell id over the member set, the
//! construction the fraktor-style placement coordinators use: balanced,
//! deterministic, and minimally disruptive under membership change. The
//! table is the routing **directory**: every override ([`set_owner`]) and
//! refinement ([`split`]) is recorded here *before* data moves, so routing
//! stays authoritative during a migration — queries issued mid-rebalance
//! consult the same table the migrator just wrote.
//!
//! [`set_owner`]: PlacementTable::set_owner
//! [`split`]: PlacementTable::split

use pim_geom::{coord_bits_for_dim, Aabb, Point};
use pim_zorder::ZKey;

/// An aligned Morton-prefix cell: `level` refinement steps (one step splits
/// every axis once, i.e. consumes `D` key bits), with the prefix stored
/// right-aligned in `bits` (`level * D` significant bits).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CellId {
    /// Refinement depth: the cell's side is `2^(COORD_BITS - level)`.
    pub level: u32,
    /// The `level * D` prefix bits, right-aligned.
    pub bits: u64,
}

impl CellId {
    /// The root cell (the whole grid).
    pub const ROOT: CellId = CellId { level: 0, bits: 0 };

    /// A collision-free `u64` id for rendezvous hashing: the prefix bits
    /// with a leading 1 marker, so cells of different levels never alias.
    fn uid<const D: usize>(self) -> u64 {
        let w = self.level as u64 * D as u64;
        debug_assert!(w < 64);
        (1u64 << w) | self.bits
    }

    /// The child cell holding `key` (a full Morton key).
    fn child_for_key<const D: usize>(self, key: u64) -> u64 {
        (key >> (ZKey::<D>::BITS - (self.level + 1) * D as u32)) & ((1 << D) - 1)
    }

    /// The `i`-th child cell (Morton order).
    fn child<const D: usize>(self, i: u64) -> CellId {
        CellId { level: self.level + 1, bits: (self.bits << D) | i }
    }

    /// The axis-aligned box the cell covers.
    pub fn aabb<const D: usize>(self) -> Aabb<D> {
        let side_shift = ZKey::<D>::COORD_BITS - self.level;
        let lo = ZKey::<D>(self.bits << (ZKey::<D>::BITS - self.level * D as u32)).decode();
        let mut hi = lo;
        for c in hi.coords.iter_mut() {
            *c += (1u32 << side_shift) - 1;
        }
        Aabb::new(lo, hi)
    }
}

/// One trie node: a leaf owned by a rank, or a split into `2^D` contiguous
/// children.
#[derive(Clone, Copy, Debug)]
enum Node {
    Leaf { owner: u32 },
    Split { children: u32 },
}

/// The membership/placement table (see the module docs).
#[derive(Clone, Debug)]
pub struct PlacementTable<const D: usize> {
    seed: u64,
    members: Vec<u32>,
    nodes: Vec<Node>,
    overrides: u64,
}

impl<const D: usize> PlacementTable<D> {
    /// A table over ranks `0..n_ranks`, uniformly refined to
    /// `initial_levels` (so `2^(D·initial_levels)` leaves) with rendezvous
    /// owners. `initial_levels` may be 0 (one leaf, rank chosen by hash).
    pub fn new(seed: u64, n_ranks: usize, initial_levels: u32) -> Self {
        assert!(n_ranks > 0, "a placement table needs at least one rank");
        assert!(
            (initial_levels as u64) * (D as u64) < 64 && initial_levels < coord_bits_for_dim(D),
            "initial_levels too deep for the grid"
        );
        let members: Vec<u32> = (0..n_ranks as u32).collect();
        let mut t =
            PlacementTable { seed, members, nodes: vec![Node::Leaf { owner: 0 }], overrides: 0 };
        t.nodes[0] = Node::Leaf { owner: t.rendezvous(CellId::ROOT) };
        let mut frontier = vec![CellId::ROOT];
        for _ in 0..initial_levels {
            let mut next = Vec::with_capacity(frontier.len() << D);
            for cell in frontier {
                next.extend(t.split(cell).into_iter().map(|(c, _)| c));
            }
            frontier = next;
        }
        t.overrides = 0; // construction-time splits are not migrations
        t
    }

    /// The placement seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Member ranks (always `0..n_ranks` today; kept explicit so the table
    /// carries the membership it hashes over).
    pub fn members(&self) -> &[u32] {
        &self.members
    }

    /// Number of recorded overrides (ownership moves + refinement splits)
    /// since construction.
    pub fn overrides(&self) -> u64 {
        self.overrides
    }

    /// Number of leaf cells.
    pub fn n_leaves(&self) -> usize {
        self.nodes.iter().filter(|n| matches!(n, Node::Leaf { .. })).count()
    }

    fn rendezvous(&self, cell: CellId) -> u32 {
        pim_sim::rendezvous_owner(self.seed, cell.uid::<D>(), &self.members)
    }

    /// Walks to the leaf holding `key`, returning `(node index, cell)`.
    fn walk(&self, key: u64) -> (usize, CellId) {
        let mut idx = 0usize;
        let mut cell = CellId::ROOT;
        loop {
            match self.nodes[idx] {
                Node::Leaf { .. } => return (idx, cell),
                Node::Split { children } => {
                    let c = cell.child_for_key::<D>(key);
                    idx = children as usize + c as usize;
                    cell = cell.child::<D>(c);
                }
            }
        }
    }

    /// The leaf cell containing `key` (a full Morton key).
    pub fn cell_of_key(&self, key: u64) -> CellId {
        self.walk(key).1
    }

    /// The rank owning `key`.
    pub fn owner_of_key(&self, key: u64) -> u32 {
        match self.nodes[self.walk(key).0] {
            Node::Leaf { owner } => owner,
            Node::Split { .. } => unreachable!("walk ends at a leaf"),
        }
    }

    /// The rank owning point `p` (its Morton key's leaf).
    pub fn owner_of_point(&self, p: &Point<D>) -> u32 {
        self.owner_of_key(ZKey::<D>::encode(p).0)
    }

    /// Every leaf cell intersecting `query`, with its owner, in Morton
    /// order. Non-intersecting subtrees are pruned during descent.
    pub fn leaves_intersecting(&self, query: &Aabb<D>) -> Vec<(CellId, u32)> {
        let mut out = Vec::new();
        self.collect_leaves(0, CellId::ROOT, Some(query), &mut out);
        out
    }

    /// The distinct ranks whose leaves intersect `query`, ascending.
    pub fn ranks_intersecting(&self, query: &Aabb<D>) -> Vec<u32> {
        let mut ranks: Vec<u32> =
            self.leaves_intersecting(query).into_iter().map(|(_, o)| o).collect();
        ranks.sort_unstable();
        ranks.dedup();
        ranks
    }

    /// Every leaf cell owned by `rank`, in Morton order.
    pub fn leaves_of_rank(&self, rank: u32) -> Vec<CellId> {
        let mut out = Vec::new();
        self.collect_leaves(0, CellId::ROOT, None, &mut out);
        out.into_iter().filter(|&(_, o)| o == rank).map(|(c, _)| c).collect()
    }

    fn collect_leaves(
        &self,
        idx: usize,
        cell: CellId,
        query: Option<&Aabb<D>>,
        out: &mut Vec<(CellId, u32)>,
    ) {
        if let Some(q) = query {
            if !cell.aabb::<D>().intersects(q) {
                return;
            }
        }
        match self.nodes[idx] {
            Node::Leaf { owner } => out.push((cell, owner)),
            Node::Split { children } => {
                for i in 0..(1u64 << D) {
                    self.collect_leaves(
                        children as usize + i as usize,
                        cell.child::<D>(i),
                        query,
                        out,
                    );
                }
            }
        }
    }

    /// Records an ownership override: leaf `cell` now belongs to `rank`.
    /// Must be called *before* the data migrates so in-flight routing stays
    /// authoritative. Panics if `cell` is not a current leaf.
    pub fn set_owner(&mut self, cell: CellId, rank: u32) {
        assert!(self.members.contains(&rank), "rank {rank} is not a member");
        let (idx, found) = self.walk_to_cell(cell);
        assert_eq!(found, cell, "set_owner target {cell:?} is not a leaf");
        self.nodes[idx] = Node::Leaf { owner: rank };
        self.overrides += 1;
    }

    /// Refines leaf `cell` into its `2^D` children, each owned by its own
    /// rendezvous hash. Returns the children with their owners in Morton
    /// order (data still lives on the old owner until the caller migrates
    /// it). Panics if `cell` is not a current leaf or is at maximum depth.
    pub fn split(&mut self, cell: CellId) -> Vec<(CellId, u32)> {
        assert!(cell.level + 1 < coord_bits_for_dim(D), "cell {cell:?} is at maximum depth");
        let (idx, found) = self.walk_to_cell(cell);
        assert_eq!(found, cell, "split target {cell:?} is not a leaf");
        let base = self.nodes.len() as u32;
        let children: Vec<(CellId, u32)> = (0..(1u64 << D))
            .map(|i| {
                let c = cell.child::<D>(i);
                (c, self.rendezvous(c))
            })
            .collect();
        self.nodes.extend(children.iter().map(|&(_, owner)| Node::Leaf { owner }));
        self.nodes[idx] = Node::Split { children: base };
        self.overrides += 1;
        children
    }

    /// Walks toward `cell`, stopping at the first leaf on its path.
    fn walk_to_cell(&self, cell: CellId) -> (usize, CellId) {
        // Any key inside the cell reaches it; use its low corner's key.
        let key = if cell.level == 0 {
            0
        } else {
            cell.bits << (ZKey::<D>::BITS - cell.level * D as u32)
        };
        let mut idx = 0usize;
        let mut cur = CellId::ROOT;
        while cur.level < cell.level {
            match self.nodes[idx] {
                Node::Leaf { .. } => break,
                Node::Split { children } => {
                    let c = cur.child_for_key::<D>(key);
                    idx = children as usize + c as usize;
                    cur = cur.child::<D>(c);
                }
            }
        }
        (idx, cur)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_boxes_tile_the_grid() {
        let t = PlacementTable::<3>::new(7, 4, 2);
        let leaves = t.leaves_intersecting(&Aabb::universe());
        assert_eq!(leaves.len(), 64);
        let total: u128 = leaves.iter().map(|(c, _)| c.aabb::<3>().volume()).sum();
        assert_eq!(total, Aabb::<3>::universe().volume(), "leaves tile the grid exactly");
        // Every owner is a member, and the Morton-order cells are disjoint.
        for w in leaves.windows(2) {
            assert!(!w[0].0.aabb::<3>().intersects(&w[1].0.aabb::<3>()));
        }
    }

    #[test]
    fn owner_of_point_matches_the_intersecting_leaf() {
        let t = PlacementTable::<3>::new(3, 8, 2);
        for i in 0..512u32 {
            let p = Point::new([i * 4099 % (1 << 21), i * 131 % (1 << 21), i * 29 % (1 << 21)]);
            let owner = t.owner_of_point(&p);
            let leaves = t.leaves_intersecting(&Aabb::point(p));
            assert_eq!(leaves.len(), 1, "a point lives in exactly one leaf");
            assert_eq!(leaves[0].1, owner);
            assert!(leaves[0].0.aabb::<3>().contains(&p));
        }
    }

    #[test]
    fn split_refines_ownership_and_routing_follows() {
        let mut t = PlacementTable::<3>::new(11, 4, 1);
        let p = Point::new([5u32, 9, 2]);
        let cell = t.cell_of_key(ZKey::<3>::encode(&p).0);
        let kids = t.split(cell);
        assert_eq!(kids.len(), 8);
        let new_cell = t.cell_of_key(ZKey::<3>::encode(&p).0);
        assert_eq!(new_cell.level, cell.level + 1);
        let (_, owner) = kids.iter().find(|(c, _)| *c == new_cell).unwrap();
        assert_eq!(t.owner_of_point(&p), *owner);
        assert_eq!(t.overrides(), 1);
    }

    #[test]
    fn set_owner_overrides_and_is_recorded() {
        let mut t = PlacementTable::<3>::new(5, 4, 1);
        let p = Point::new([1u32 << 20, 3, 7]);
        let cell = t.cell_of_key(ZKey::<3>::encode(&p).0);
        let before = t.owner_of_point(&p);
        let target = (before + 1) % 4;
        t.set_owner(cell, target);
        assert_eq!(t.owner_of_point(&p), target);
        assert_eq!(t.overrides(), 1);
    }

    #[test]
    fn rank_leaf_listing_partitions_the_leaves() {
        let t = PlacementTable::<3>::new(19, 4, 2);
        let mut n = 0;
        for r in 0..4 {
            for c in t.leaves_of_rank(r) {
                assert_eq!(t.owner_of_key(c.bits << (ZKey::<3>::BITS - c.level * 3)), r);
                n += 1;
            }
        }
        assert_eq!(n, t.n_leaves());
    }

    #[test]
    fn single_rank_owns_everything() {
        let t = PlacementTable::<3>::new(1, 1, 2);
        assert_eq!(t.ranks_intersecting(&Aabb::universe()), vec![0]);
    }
}
