//! The host-side index object and its shared round machinery.
//!
//! [`PimZdTree`] owns the L0 fragment (host-resident, §3.1), the meta-node
//! directory, the simulated PIM machine, and the host cost meter. The
//! operation orchestrators (`search`, `insert`, `knn`, `boxq`) live in their
//! own modules; this file provides what they share: measurement scaffolding,
//! management rounds, and the pull half of push-pull search.

use crate::config::{Layer, PimZdConfig};
use crate::frag::{Fragment, HostSink, MetaId};
use crate::meta::Directory;
use crate::module::{handle_mgmt, MgmtReply, MgmtTask, ModuleState};
use crate::stats::OpStats;
use pim_memsim::{CpuConfig, CpuMeter, CpuModel, CpuStats};
use pim_sim::{MachineConfig, PimSystem};
use rustc_hash::FxHashMap;

/// Host virtual-address region of the L0 fragment.
pub(crate) const L0_REGION: u64 = 1 << 44;
/// Base of the staging region where pulled fragments land.
pub(crate) const STAGING_REGION: u64 = 1 << 45;
/// Base of the per-query batch-state region (search traces, grouping
/// buffers). Batches larger than the LLC start missing here — the Fig. 7
/// effect ("excessively large batches, combined with auxiliary structures,
/// may exceed the capacity of the L3 cache").
pub(crate) const QUERY_STATE_REGION: u64 = 1 << 46;
/// Bytes of host-side state per query (trace hop + grouping slot).
pub(crate) const QUERY_STATE_BYTES: u64 = 24;

/// The PIM-zd-tree index.
pub struct PimZdTree<const D: usize> {
    /// Structure configuration.
    pub cfg: PimZdConfig,
    pub(crate) sys: PimSystem<ModuleState<D>>,
    /// L0: the globally-shared top of the tree (`None` when empty).
    pub(crate) l0: Option<Fragment<D>>,
    pub(crate) dir: Directory<D>,
    pub(crate) meter: CpuMeter,
    pub(crate) cpu_model: CpuModel,
    pub(crate) n_points: usize,
    pub(crate) last_stats: OpStats,
    pub(crate) staging_next: u64,
    /// Set once L0 outgrows the LLC: its structure counts as replicated on
    /// every module (space + broadcast-on-update accounting, §3.1).
    pub(crate) l0_replicated: bool,
}

impl<const D: usize> PimZdTree<D> {
    /// Creates an empty index over a fresh simulated machine with the
    /// default host CPU model.
    pub fn new(cfg: PimZdConfig, machine: MachineConfig) -> Self {
        Self::new_with_cpu(cfg, machine, CpuConfig::xeon())
    }

    /// Creates an empty index with an explicit host CPU model (benches use
    /// this to scale the LLC with the dataset, keeping the paper's
    /// cache-to-data ratio at reduced scales).
    pub fn new_with_cpu(cfg: PimZdConfig, machine: MachineConfig, cpu_cfg: CpuConfig) -> Self {
        Self {
            cfg,
            sys: PimSystem::new(machine, |_| ModuleState::default()),
            l0: None,
            dir: Directory::new(),
            meter: CpuMeter::new(cpu_cfg),
            cpu_model: CpuModel::new(cpu_cfg),
            n_points: 0,
            last_stats: OpStats::default(),
            staging_next: STAGING_REGION,
            l0_replicated: false,
        }
    }

    /// Number of stored points.
    pub fn len(&self) -> usize {
        self.n_points
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.n_points == 0
    }

    /// Number of PIM modules.
    pub fn n_modules(&self) -> usize {
        self.sys.n_modules()
    }

    /// Statistics of the most recent batched operation.
    pub fn last_op_stats(&self) -> &OpStats {
        &self.last_stats
    }

    /// Mutable access to the simulated machine's configuration (benches flip
    /// the transfer-API knob for the Table 3 ablation).
    pub fn machine_mut(&mut self) -> &mut pim_sim::MachineConfig {
        self.sys.config_mut()
    }

    /// Total space consumption in bytes: host L0 (+ its replication on all
    /// modules when it outgrew the cache) plus every module's masters and
    /// caches (Theorem 5.1 / Table 2).
    pub fn space_bytes(&self) -> u64 {
        let l0 = self.l0.as_ref().map_or(0, Fragment::bytes);
        let replicated = if self.l0_replicated { l0 * self.sys.n_modules() as u64 } else { 0 };
        let modules: u64 =
            (0..self.sys.n_modules()).map(|i| self.sys.peek(i).resident_bytes()).sum();
        l0 + replicated + modules
    }

    /// Number of live meta-nodes (directory size).
    pub fn meta_count(&self) -> usize {
        self.dir.len()
    }

    // -----------------------------------------------------------------
    // Measurement scaffolding
    // -----------------------------------------------------------------

    /// Runs `f` as one measured batched operation: snapshots counters,
    /// executes, and stores the per-op [`OpStats`] (retrievable via
    /// [`Self::last_op_stats`]). `f` returns `(result, elements_returned)`.
    pub(crate) fn measured<R>(
        &mut self,
        batch_ops: u64,
        f: impl FnOnce(&mut Self) -> (R, u64),
    ) -> R {
        self.meter.start_measurement();
        let sim_before = self.sys.stats().clone();
        let (result, elements) = f(self);
        let host: CpuStats = self.meter.stats();
        let sim = self.sys.stats().since(&sim_before);
        self.last_stats = OpStats::from_deltas(&self.cpu_model, host, sim, batch_ops, elements);
        result
    }

    /// Runs `f` under a trace phase label: every PIM round executed inside
    /// is journaled with the label (nested calls join with `/`, so a
    /// maintenance round inside a delete batch reads `delete/maintain`).
    /// This is the index-side counterpart of
    /// [`PimSystem::scoped_phase`](pim_sim::PimSystem::scoped_phase), needed
    /// because operations borrow the whole tree, not just the system.
    pub(crate) fn phased<R>(&mut self, label: &str, f: impl FnOnce(&mut Self) -> R) -> R {
        self.sys.push_phase(label);
        let out = f(self);
        self.sys.pop_phase();
        out
    }

    /// Attaches a trace sink to the simulated machine (see
    /// [`pim_sim::trace`]); pass `Box::new(pim_sim::NullSink)` to detach.
    pub fn set_trace_sink(&mut self, sink: Box<dyn pim_sim::TraceSink>) {
        self.sys.set_trace_sink(sink);
    }

    /// A cost sink charging the host meter at the L0 region.
    pub(crate) fn l0_sink(meter: &mut CpuMeter) -> HostSink<'_> {
        HostSink { meter, base_addr: L0_REGION }
    }

    /// Charges one access to query `qid`'s host-side batch state (trace
    /// recording / grouping).
    #[inline]
    pub(crate) fn touch_query_state(&mut self, qid: usize, write: bool) {
        self.meter.touch(
            QUERY_STATE_REGION + qid as u64 * QUERY_STATE_BYTES,
            QUERY_STATE_BYTES,
            write,
        );
    }

    /// Allocates a staging address range for a pulled fragment.
    pub(crate) fn stage_addr(&mut self, bytes: u64) -> u64 {
        let a = self.staging_next;
        self.staging_next += bytes.max(64);
        a
    }

    // -----------------------------------------------------------------
    // Management rounds
    // -----------------------------------------------------------------

    /// Executes one management round with per-module task lists.
    pub(crate) fn mgmt_round(&mut self, tasks: Vec<Vec<MgmtTask<D>>>) -> Vec<Vec<MgmtReply<D>>> {
        self.sys.execute_round(tasks, handle_mgmt)
    }

    /// Builds an empty per-module task matrix.
    pub(crate) fn task_matrix<T>(&self) -> Vec<Vec<T>> {
        (0..self.sys.n_modules()).map(|_| Vec::new()).collect()
    }

    /// Pulls the master fragments of `metas` to the host in one round,
    /// returning them keyed by id. This is the "pull" of push-pull search:
    /// only master storage is fetched (caches excluded, §3.3) and the bytes
    /// are charged as PIM→CPU traffic.
    pub(crate) fn pull_fragments(
        &mut self,
        metas: &[MetaId],
    ) -> FxHashMap<MetaId, (Fragment<D>, u64)> {
        if metas.is_empty() {
            return FxHashMap::default();
        }
        let mut tasks = self.task_matrix::<MgmtTask<D>>();
        for &m in metas {
            let module = self.dir.get(m).module as usize;
            tasks[module].push(MgmtTask::Pull(m));
        }
        let replies = self.mgmt_round(tasks);
        let mut out = FxHashMap::default();
        for per_module in replies {
            for r in per_module {
                if let MgmtReply::Pulled(f) = r {
                    let addr = self.stage_addr(f.bytes());
                    out.insert(f.meta, (f, addr));
                }
            }
        }
        out
    }

    /// Decides which meta-nodes to pull given per-meta demand (Alg. 1 step
    /// 2): while the busiest module carries more than `imbalance_factor` ×
    /// the average load, every meta whose demand exceeds its layer's K
    /// threshold is pulled. Returns the chosen metas.
    pub(crate) fn pull_candidates(&self, demand: &FxHashMap<MetaId, u64>) -> Vec<MetaId> {
        if demand.is_empty() {
            return Vec::new();
        }
        let mut per_module: FxHashMap<u32, u64> = FxHashMap::default();
        let mut total = 0u64;
        for (&meta, &n) in demand {
            *per_module.entry(self.dir.get(meta).module).or_insert(0) += n;
            total += n;
        }
        let busiest = per_module.values().copied().max().unwrap_or(0);
        let avg = total as f64 / self.sys.n_modules() as f64;
        if (busiest as f64) <= self.cfg.imbalance_factor * avg.max(1.0) {
            return Vec::new();
        }
        let mut out: Vec<MetaId> = demand
            .iter()
            .filter(|(&meta, &n)| {
                let k = match self.dir.get(meta).layer {
                    Layer::L1 => self.cfg.k_pull_l1,
                    _ => self.cfg.k_pull_l2,
                };
                n > k
            })
            .map(|(&m, _)| m)
            .collect();
        out.sort_unstable();
        out
    }

    /// Re-checks whether L0 still fits in the LLC; flips the replication
    /// flag (and charges the replication broadcast) when it first overflows.
    pub(crate) fn update_l0_replication(&mut self) {
        let l0_bytes = self.l0.as_ref().map_or(0, Fragment::bytes);
        let cache = self.meter.cache().config().capacity_bytes;
        if !self.l0_replicated && l0_bytes > cache {
            self.l0_replicated = true;
            // Replicating L0 to every module is a broadcast of its bytes.
            self.sys.broadcast(ReplBytes(l0_bytes), |_, _, ctx, b| {
                ctx.mem(b.0);
            });
        }
    }
}

/// Opaque broadcast payload carrying only a byte count (used to charge L0
/// replication without materializing per-module copies the simulation never
/// reads — the host copy is authoritative for correctness).
pub(crate) struct ReplBytes(pub u64);

impl pim_sim::Wire for ReplBytes {
    fn wire_bytes(&self) -> u64 {
        self.0
    }
}
