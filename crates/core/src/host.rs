//! The host-side index object and its shared round machinery.
//!
//! [`PimZdTree`] owns the L0 fragment (host-resident, §3.1), the meta-node
//! directory, the simulated PIM machine, and the host cost meter. The
//! operation orchestrators (`search`, `insert`, `knn`, `boxq`) live in their
//! own modules; this file provides what they share: measurement scaffolding,
//! management rounds, the pull half of push-pull search, and the robust
//! round layer (fault detection → bounded replay → recovery; see
//! ARCHITECTURE.md §"Fault & recovery").

use crate::config::{Layer, PimZdConfig};
use crate::frag::{Fragment, HostSink, MetaId};
use crate::meta::Directory;
use crate::module::{handle_mgmt, MgmtReply, MgmtTask, ModuleState};
use crate::stats::OpStats;
use pim_memsim::{CpuConfig, CpuMeter, CpuModel, CpuStats};
use pim_sim::{hash_place, FaultLog, FaultPlan, MachineConfig, PimCtx, PimSystem, Wire};
use rustc_hash::FxHashMap;

/// Recycled per-operation host buffers (clear-not-drop).
///
/// One entry per element type, each holding a stack of spare structures:
/// `pools` stores task/reply matrices (`Vec<Vec<T>>`), `flats` stores flat
/// scratch vectors (`Vec<T>`). Taking pops a spare (or allocates the first
/// time); putting clears contents but keeps every row's capacity, so a
/// 2048-module machine allocates its per-module row `Vec`s once per task
/// type instead of once per operation. Purely a host-side wall-clock
/// optimization: simulated metrics never observe where a buffer came from.
#[derive(Default)]
pub(crate) struct RoundBuffers {
    pools: FxHashMap<std::any::TypeId, Box<dyn std::any::Any + Send>>,
    flats: FxHashMap<std::any::TypeId, Box<dyn std::any::Any + Send>>,
}

impl RoundBuffers {
    fn stack<T: Send + 'static>(&mut self) -> &mut Vec<Vec<Vec<T>>> {
        self.pools
            .entry(std::any::TypeId::of::<T>())
            .or_insert_with(|| Box::new(Vec::<Vec<Vec<T>>>::new()))
            .downcast_mut()
            .expect("matrix pool entries are keyed by their element TypeId")
    }

    fn flat_stack<T: Send + 'static>(&mut self) -> &mut Vec<Vec<T>> {
        self.flats
            .entry(std::any::TypeId::of::<T>())
            .or_insert_with(|| Box::new(Vec::<Vec<T>>::new()))
            .downcast_mut()
            .expect("flat pool entries are keyed by their element TypeId")
    }

    /// A matrix of `p` empty rows, recycled when a spare is pooled.
    pub(crate) fn take_matrix<T: Send + 'static>(&mut self, p: usize) -> Vec<Vec<T>> {
        let mut m = self.stack::<T>().pop().unwrap_or_default();
        debug_assert!(m.iter().all(Vec::is_empty), "pooled matrices are stored cleared");
        m.resize_with(p, Vec::new);
        m
    }

    /// Returns a matrix to the pool, clearing rows but keeping capacity.
    pub(crate) fn put_matrix<T: Send + 'static>(&mut self, mut m: Vec<Vec<T>>) {
        for row in &mut m {
            row.clear();
        }
        self.stack::<T>().push(m);
    }

    /// An empty flat scratch vector, recycled when a spare is pooled.
    pub(crate) fn take_vec<T: Send + 'static>(&mut self) -> Vec<T> {
        self.flat_stack::<T>().pop().unwrap_or_default()
    }

    /// Returns a flat scratch vector to the pool, cleared.
    pub(crate) fn put_vec<T: Send + 'static>(&mut self, mut v: Vec<T>) {
        v.clear();
        self.flat_stack::<T>().push(v);
    }
}

/// Host virtual-address region of the L0 fragment.
pub(crate) const L0_REGION: u64 = 1 << 44;
/// Base of the staging region where pulled fragments land.
pub(crate) const STAGING_REGION: u64 = 1 << 45;
/// Base of the per-query batch-state region (search traces, grouping
/// buffers). Batches larger than the LLC start missing here — the Fig. 7
/// effect ("excessively large batches, combined with auxiliary structures,
/// may exceed the capacity of the L3 cache").
pub(crate) const QUERY_STATE_REGION: u64 = 1 << 46;
/// Bytes of host-side state per query (trace hop + grouping slot).
pub(crate) const QUERY_STATE_BYTES: u64 = 24;

/// The PIM-zd-tree index.
pub struct PimZdTree<const D: usize> {
    /// Structure configuration.
    pub cfg: PimZdConfig,
    pub(crate) sys: PimSystem<ModuleState<D>>,
    /// L0: the globally-shared top of the tree (`None` when empty).
    pub(crate) l0: Option<Fragment<D>>,
    pub(crate) dir: Directory<D>,
    pub(crate) meter: CpuMeter,
    pub(crate) cpu_model: CpuModel,
    pub(crate) n_points: usize,
    pub(crate) last_stats: OpStats,
    pub(crate) staging_next: u64,
    /// Set once L0 outgrows the LLC: its structure counts as replicated on
    /// every module (space + broadcast-on-update accounting, §3.1).
    pub(crate) l0_replicated: bool,
    /// Recycled per-op buffers (task matrices, robust-round scratch,
    /// grouping scratch): the host hot path is allocation-free in steady
    /// state. Simulated costs never observe the pool — it only changes
    /// where host-side `Vec`s come from.
    pub(crate) bufs: RoundBuffers,
    /// Number of applied mutation batches (insert/delete). Checkpoints
    /// record the epoch of the frozen view they capture; WAL records carry
    /// the epoch their batch produces, so replay-to-consistent-point is
    /// "apply every record with `epoch > checkpoint.epoch`, in order".
    /// Bumped only at batch boundaries — mid-batch state is never epoch-
    /// visible, which is what makes a checkpoint a consistent frozen view
    /// even if one is requested while a batch is logically in flight.
    pub(crate) epoch: u64,
    /// Write-ahead log of applied batches; `None` = durability off (the
    /// default — query-only workloads and most tests never pay for it).
    pub(crate) wal: Option<crate::wal::Wal>,
    /// The host CPU parameters the meter/model were built from, retained
    /// so checkpoints can serialize them and restores can rebuild the
    /// meter with identical geometry.
    pub(crate) cpu_cfg: CpuConfig,
}

impl<const D: usize> PimZdTree<D> {
    /// Creates an empty index over a fresh simulated machine with the
    /// default host CPU model.
    pub fn new(cfg: PimZdConfig, machine: MachineConfig) -> Self {
        Self::new_with_cpu(cfg, machine, CpuConfig::xeon())
    }

    /// Creates an empty index with an explicit host CPU model (benches use
    /// this to scale the LLC with the dataset, keeping the paper's
    /// cache-to-data ratio at reduced scales).
    pub fn new_with_cpu(cfg: PimZdConfig, machine: MachineConfig, cpu_cfg: CpuConfig) -> Self {
        Self {
            cfg,
            sys: PimSystem::new(machine, |_| ModuleState::default()),
            l0: None,
            dir: Directory::new(),
            meter: CpuMeter::new(cpu_cfg),
            cpu_model: CpuModel::new(cpu_cfg),
            n_points: 0,
            last_stats: OpStats::default(),
            staging_next: STAGING_REGION,
            l0_replicated: false,
            bufs: RoundBuffers::default(),
            epoch: 0,
            wal: None,
            cpu_cfg,
        }
    }

    /// Number of mutation batches applied so far (see the `epoch` field's
    /// docs; checkpoints and WAL records are ordered by it).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Attaches a write-ahead log: every subsequent `batch_insert` /
    /// `batch_delete` appends its points *before* applying them, so a host
    /// crash at any batch boundary loses nothing that was acknowledged.
    /// Returns the previous log, if any (detach by passing a fresh one and
    /// dropping the result, or via [`Self::take_wal`]).
    pub fn set_wal(&mut self, wal: crate::wal::Wal) -> Option<crate::wal::Wal> {
        self.wal.replace(wal)
    }

    /// Detaches and returns the write-ahead log.
    pub fn take_wal(&mut self) -> Option<crate::wal::Wal> {
        self.wal.take()
    }

    /// Logs a mutation batch before it is applied (no-op with no WAL
    /// attached). An append failure aborts: applying a batch the log did
    /// not durably record would silently void the recovery guarantee.
    pub(crate) fn wal_append(&mut self, op: crate::wal::WalOp, points: &[pim_geom::Point<D>]) {
        if let Some(w) = self.wal.as_mut() {
            w.append::<D>(self.epoch + 1, op, points)
                .expect("WAL append failed; refusing to apply an unlogged batch");
        }
    }

    /// Number of stored points.
    pub fn len(&self) -> usize {
        self.n_points
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.n_points == 0
    }

    /// Number of PIM modules.
    pub fn n_modules(&self) -> usize {
        self.sys.n_modules()
    }

    /// Statistics of the most recent batched operation.
    pub fn last_op_stats(&self) -> &OpStats {
        &self.last_stats
    }

    /// Mutable access to the simulated machine's configuration (benches flip
    /// the transfer-API knob for the Table 3 ablation).
    pub fn machine_mut(&mut self) -> &mut pim_sim::MachineConfig {
        self.sys.config_mut()
    }

    /// Total space consumption in bytes: host L0 (+ its replication on all
    /// modules when it outgrew the cache) plus every module's masters and
    /// caches (Theorem 5.1 / Table 2).
    pub fn space_bytes(&self) -> u64 {
        let l0 = self.l0.as_ref().map_or(0, Fragment::bytes);
        let replicated = if self.l0_replicated { l0 * self.sys.n_modules() as u64 } else { 0 };
        let modules: u64 =
            (0..self.sys.n_modules()).map(|i| self.sys.peek(i).resident_bytes()).sum();
        l0 + replicated + modules
    }

    /// Number of live meta-nodes (directory size).
    pub fn meta_count(&self) -> usize {
        self.dir.len()
    }

    // -----------------------------------------------------------------
    // Measurement scaffolding
    // -----------------------------------------------------------------

    /// Runs `f` as one measured batched operation: snapshots counters,
    /// executes, and stores the per-op [`OpStats`] (retrievable via
    /// [`Self::last_op_stats`]). `f` returns `(result, elements_returned)`.
    pub(crate) fn measured<R>(
        &mut self,
        batch_ops: u64,
        f: impl FnOnce(&mut Self) -> (R, u64),
    ) -> R {
        self.meter.start_measurement();
        let sim_before = self.sys.stats().clone();
        let (result, elements) = f(self);
        let host: CpuStats = self.meter.stats();
        let sim = self.sys.stats().since(&sim_before);
        self.last_stats = OpStats::from_deltas(&self.cpu_model, host, sim, batch_ops, elements);
        if self.sys.metrics().enabled() {
            // One publish per measured batch, labeled with the op's phase
            // (`measured` always runs inside the op's `phased` scope). This
            // is where the memsim cache-model counters enter the registry.
            let op = self.sys.current_phase();
            self.sys.metrics().with(|m| {
                let ol: &[(&str, &str)] = &[("op", &op)];
                m.add("host_batches_total", ol, 1);
                m.observe("host_batch_ops", ol, batch_ops);
                m.add("host_elements_returned_total", ol, elements);
                m.add("host_work_cycles_total", ol, host.work_cycles);
                m.add("host_span_cycles_total", ol, host.span_cycles);
                m.add("host_llc_hits_total", ol, host.llc_hits);
                m.add("host_llc_misses_total", ol, host.llc_misses);
                m.add("host_dram_bytes_total", ol, host.dram_bytes);
            });
        }
        result
    }

    /// Runs `f` under a trace phase label: every PIM round executed inside
    /// is journaled with the label (nested calls join with `/`, so a
    /// maintenance round inside a delete batch reads `delete/maintain`).
    /// This is the index-side counterpart of
    /// [`PimSystem::scoped_phase`](pim_sim::PimSystem::scoped_phase), needed
    /// because operations borrow the whole tree, not just the system. The
    /// label doubles as a wall-clock profiler span, so host profiles nest
    /// the same way journal phases do.
    pub(crate) fn phased<R>(&mut self, label: &'static str, f: impl FnOnce(&mut Self) -> R) -> R {
        let _span = pim_obs::span(label);
        self.sys.push_phase(label);
        let out = f(self);
        self.sys.pop_phase();
        out
    }

    /// Attaches a trace sink to the simulated machine (see
    /// [`pim_sim::trace`]); pass `Box::new(pim_sim::NullSink)` to detach.
    pub fn set_trace_sink(&mut self, sink: Box<dyn pim_sim::TraceSink>) {
        self.sys.set_trace_sink(sink);
    }

    /// The id the machine's next accounted BSP round will carry (the
    /// monotonic counter behind `RoundRecord::round`). Reading it before
    /// and after a batched operation yields the half-open round-id range
    /// the operation produced — the cross-layer link the serving tracer
    /// records per batch. A pure read; never perturbs accounting.
    pub fn next_round_id(&self) -> u64 {
        self.sys.next_round_id()
    }

    /// Attaches a metrics registry handle (see [`pim_sim::metrics`]): the
    /// simulated machine publishes per-round counters and the index adds
    /// host-side ones (cache-model counters per op, batch sizes, splice
    /// and recovery events). Pass [`pim_sim::Metrics::disabled`] to detach.
    pub fn set_metrics(&mut self, metrics: pim_sim::Metrics) {
        self.sys.set_metrics(metrics);
    }

    /// The attached metrics handle (disabled by default).
    pub fn metrics(&self) -> &pim_sim::Metrics {
        self.sys.metrics()
    }

    /// Cumulative simulator statistics over every *accounted* round (builds
    /// run unaccounted) — the ground truth the metrics registry must agree
    /// with.
    pub fn sim_stats(&self) -> &pim_sim::SimStats {
        self.sys.stats()
    }

    /// A cost sink charging the host meter at the L0 region.
    pub(crate) fn l0_sink(meter: &mut CpuMeter) -> HostSink<'_> {
        HostSink { meter, base_addr: L0_REGION }
    }

    /// Charges one access to query `qid`'s host-side batch state (trace
    /// recording / grouping).
    #[inline]
    pub(crate) fn touch_query_state(&mut self, qid: usize, write: bool) {
        self.meter.touch(
            QUERY_STATE_REGION + qid as u64 * QUERY_STATE_BYTES,
            QUERY_STATE_BYTES,
            write,
        );
    }

    /// Allocates a staging address range for a pulled fragment.
    pub(crate) fn stage_addr(&mut self, bytes: u64) -> u64 {
        let a = self.staging_next;
        self.staging_next += bytes.max(64);
        a
    }

    // -----------------------------------------------------------------
    // Management rounds
    // -----------------------------------------------------------------

    /// Executes one management round with per-module task lists.
    pub(crate) fn mgmt_round(&mut self, tasks: Vec<Vec<MgmtTask<D>>>) -> Vec<Vec<MgmtReply<D>>> {
        self.robust_round(tasks, handle_mgmt)
    }

    // -----------------------------------------------------------------
    // Robust rounds: detection → bounded replay → graceful degradation
    // -----------------------------------------------------------------

    /// Executes one round with fault detection and recovery.
    ///
    /// With the fault plane inactive this is exactly
    /// [`PimSystem::execute_round`] — dispatched before any retry
    /// scaffolding (slot matrices, clones) is even touched, so the
    /// fault-free path does zero extra work and its accounting stays
    /// byte-identical. Otherwise rounds proceed in waves over pooled
    /// scratch, with **copy-on-fault** dispatch: fault fates are a pure
    /// function of `(seed, round, module, attempt)`, so the plan is
    /// consulted *before* each wave and only the task rows of modules that
    /// will actually fail it are cloned — every other row moves into the
    /// round, as on the fast path. A module whose validated replies never
    /// arrive has fail-stopped (the simulator retried transients internally
    /// and declared the survivor dead), so its kept originals are replayed
    /// on other modules after [`Self::recover_modules`] repairs the
    /// directory. Replay is safe because round attempts are all-or-nothing:
    /// a task whose reply was lost was never applied.
    ///
    /// Replies are reassembled at each task's *original* `(module,
    /// position)` slot, so callers that match replies positionally (e.g.
    /// the split flows) are oblivious to replays and reroutes.
    pub(crate) fn robust_round<T, R>(
        &mut self,
        mut tasks: Vec<Vec<T>>,
        handler: impl Fn(usize, &mut ModuleState<D>, &mut PimCtx, Vec<T>) -> Vec<R> + Sync + Copy,
    ) -> Vec<Vec<R>>
    where
        T: Reroutable<D, Reply = R> + Wire + Send + Clone + 'static,
        R: Wire + Send + 'static,
    {
        if !self.sys.fault_plane_active() {
            let out = self.sys.execute_round_in(&mut tasks, handler);
            self.bufs.put_matrix(tasks);
            return out;
        }
        let p = self.sys.n_modules();
        tasks.resize_with(p, Vec::new);
        // Pooled scratch: reply slots, per-row task provenance, and the
        // wave's send matrix (all cleared-not-dropped on return).
        let mut out: Vec<Vec<Option<R>>> = self.bufs.take_matrix(p);
        let mut slots: Vec<Vec<(usize, usize)>> = self.bufs.take_matrix(p);
        let mut send: Vec<Vec<T>> = self.bufs.take_matrix(p);
        for (m, row) in tasks.iter().enumerate() {
            out[m].resize_with(row.len(), || None);
            slots[m].extend((0..row.len()).map(|j| (m, j)));
        }
        // The originals; `work[m]` and `slots[m]` stay index-aligned until
        // module `m`'s replies land (or its entries are re-homed).
        let mut work = tasks;
        loop {
            // Detection → recovery: repair deaths from previous waves (or
            // from broadcasts / earlier ops) before dispatching.
            let newly = self.sys.take_newly_dead();
            if !newly.is_empty() {
                self.recover_modules(&newly);
            }
            // Re-route entries parked on dead modules (stale caller routing
            // or the previous wave's losses).
            for m in 0..p {
                if self.sys.is_dead(m) && !work[m].is_empty() {
                    let row = std::mem::take(&mut work[m]);
                    let row_slots = std::mem::take(&mut slots[m]);
                    for (mut t, slot) in row.into_iter().zip(row_slots) {
                        match t.reroute(self) {
                            Route::To(nm) => {
                                debug_assert!(!self.sys.is_dead(nm as usize));
                                work[nm as usize].push(t);
                                slots[nm as usize].push(slot);
                            }
                            Route::Void(r) => out[slot.0][slot.1] = Some(r),
                        }
                    }
                }
            }
            if work.iter().all(Vec::is_empty) {
                break;
            }
            // Copy-on-fault: a fail-stop loses the module's task buffer
            // mid-round, so rows whose module the plan fails this wave are
            // dispatched from clones with the originals kept for replay.
            // Every other row — all of them, at fault rate 0 with a dead
            // module elsewhere — moves into the round, zero-copy.
            let round = self.sys.next_round_id();
            for m in 0..p {
                if work[m].is_empty() {
                    continue;
                }
                if self.sys.predict_round_failure(round, m as u32) {
                    send[m].extend(work[m].iter().cloned());
                } else {
                    send[m] = std::mem::take(&mut work[m]);
                }
            }
            let replies = self.sys.execute_round_in(&mut send, handler);
            let mut any_lost = false;
            for (m, reps) in replies.into_iter().enumerate() {
                if slots[m].is_empty() {
                    continue;
                }
                if reps.is_empty() {
                    // No validated reply arrived: the module fail-stopped.
                    // Its originals were kept (the plan predicted this
                    // failure); the next iteration re-homes them.
                    assert!(
                        !work[m].is_empty(),
                        "module {m} failed a wave the fault plan predicted it would survive"
                    );
                    any_lost = true;
                    continue;
                }
                assert_eq!(reps.len(), slots[m].len(), "module handlers reply 1:1");
                work[m].clear();
                for (slot, r) in slots[m].drain(..).zip(reps) {
                    out[slot.0][slot.1] = Some(r);
                }
            }
            if !any_lost {
                break;
            }
        }
        // Deaths in the final wave (typically of modules idle this round)
        // are repaired eagerly so the next round starts consistent.
        let pending = self.sys.take_newly_dead();
        if !pending.is_empty() {
            self.recover_modules(&pending);
        }
        let result: Vec<Vec<R>> = out
            .iter_mut()
            .map(|row| row.drain(..).map(|o| o.expect("every task resolved")).collect())
            .collect();
        self.bufs.put_matrix(out);
        self.bufs.put_matrix(slots);
        self.bufs.put_matrix(send);
        self.bufs.put_matrix(work);
        result
    }

    /// Graceful degradation after fail-stop: salvages each dead module's
    /// resident master fragments over host DMA (the fail-stop axiom keeps
    /// MRAM readable, see `pim_sim::fault`), re-homes them on surviving
    /// modules via [`Self::place_module`], repairs the directory, purges
    /// cache registrations lost with the module, and re-installs the moved
    /// fragments — itself a robust round, since recovery can be hit by
    /// further faults.
    fn recover_modules(&mut self, dead: &[u32]) {
        let mut rescued: Vec<Fragment<D>> = Vec::new();
        for &d in dead {
            let frags = self.sys.salvage(d as usize, |m| {
                let mut frags: Vec<Fragment<D>> =
                    std::mem::take(&mut m.masters).into_values().collect();
                // The DMA read covers the whole resident image; caches are
                // not worth re-homing — they can be rebuilt from masters.
                let bytes: u64 = frags.iter().map(Fragment::bytes).sum::<u64>()
                    + m.caches.values().map(Fragment::structure_bytes).sum::<u64>();
                m.caches.clear();
                frags.sort_unstable_by_key(|f| f.meta);
                (frags, bytes)
            });
            rescued.extend(frags);
        }
        // Cache copies hosted on the dead modules died with them.
        for e in self.dir.metas.values_mut() {
            e.cached_on.retain(|m| !dead.contains(m));
        }
        let mut installs = self.task_matrix::<MgmtTask<D>>();
        for mut f in rescued {
            // Only re-home fragments the directory still routes to a dead
            // module; anything else is a stale copy pending a drop.
            let authoritative =
                self.dir.metas.get(&f.meta).is_some_and(|e| dead.contains(&e.module));
            if !authoritative {
                continue;
            }
            let target = self.place_module(f.meta);
            f.master_module = target;
            self.dir.get_mut(f.meta).module = target;
            installs[target as usize].push(MgmtTask::InstallMaster(f));
        }
        if self.sys.metrics().enabled() {
            let rehomed: u64 = installs.iter().map(|v| v.len() as u64).sum();
            self.sys.metrics().with(|m| {
                m.add("host_recoveries_total", &[], dead.len() as u64);
                m.add("host_rehomed_fragments_total", &[], rehomed);
            });
        }
        if !installs.iter().all(Vec::is_empty) {
            self.robust_round(installs, handle_mgmt);
        }
    }

    /// Hash placement that skips fail-stopped modules. Identical to
    /// [`hash_place`] while every module is alive, so fault-free placement
    /// stays byte-compatible with earlier revisions.
    pub(crate) fn place_module(&self, id: MetaId) -> u32 {
        place_live(self.cfg.placement_seed, id, self.sys.dead_mask())
    }

    /// The module currently hosting `meta`'s master (directory-
    /// authoritative; [`RemoteRef`](crate::frag::RemoteRef) module fields
    /// are advisory and may go stale after a recovery migration).
    pub(crate) fn master_module(&self, meta: MetaId) -> u32 {
        self.dir.get(meta).module
    }

    /// An empty per-module task matrix, recycled from the buffer pool.
    ///
    /// The matrix flows into a round (usually via [`Self::robust_round`],
    /// which returns it to the pool); its row capacities survive the trip,
    /// so steady-state operations stop allocating one `Vec` per module per
    /// op.
    pub(crate) fn task_matrix<T: Send + 'static>(&mut self) -> Vec<Vec<T>> {
        let p = self.sys.n_modules();
        self.bufs.take_matrix(p)
    }

    /// Pulls the master fragments of `metas` to the host in one round,
    /// returning them keyed by id. This is the "pull" of push-pull search:
    /// only master storage is fetched (caches excluded, §3.3) and the bytes
    /// are charged as PIM→CPU traffic.
    pub(crate) fn pull_fragments(
        &mut self,
        metas: &[MetaId],
    ) -> FxHashMap<MetaId, (Fragment<D>, u64)> {
        if metas.is_empty() {
            return FxHashMap::default();
        }
        let mut tasks = self.task_matrix::<MgmtTask<D>>();
        for &m in metas {
            let module = self.dir.get(m).module as usize;
            tasks[module].push(MgmtTask::Pull(m));
        }
        let replies = self.mgmt_round(tasks);
        let mut out = FxHashMap::default();
        for per_module in replies {
            for r in per_module {
                if let MgmtReply::Pulled(f) = r {
                    let addr = self.stage_addr(f.bytes());
                    out.insert(f.meta, (f, addr));
                }
            }
        }
        out
    }

    /// Decides which meta-nodes to pull given per-meta demand (Alg. 1 step
    /// 2): while the busiest module carries more than `imbalance_factor` ×
    /// the average load, every meta whose demand exceeds its layer's K
    /// threshold is pulled. Returns the chosen metas.
    pub(crate) fn pull_candidates(&self, demand: &FxHashMap<MetaId, u64>) -> Vec<MetaId> {
        if demand.is_empty() {
            return Vec::new();
        }
        let mut per_module: FxHashMap<u32, u64> = FxHashMap::default();
        let mut total = 0u64;
        for (&meta, &n) in demand {
            *per_module.entry(self.dir.get(meta).module).or_insert(0) += n;
            total += n;
        }
        let busiest = per_module.values().copied().max().unwrap_or(0);
        let avg = total as f64 / self.sys.n_modules() as f64;
        if (busiest as f64) <= self.cfg.imbalance_factor * avg.max(1.0) {
            return Vec::new();
        }
        let mut out: Vec<MetaId> = demand
            .iter()
            .filter(|(&meta, &n)| {
                let k = match self.dir.get(meta).layer {
                    Layer::L1 => self.cfg.k_pull_l1,
                    _ => self.cfg.k_pull_l2,
                };
                n > k
            })
            .map(|(&m, _)| m)
            .collect();
        out.sort_unstable();
        out
    }

    // -----------------------------------------------------------------
    // Fault-plane control (public API)
    // -----------------------------------------------------------------

    /// Attaches (or with `None` detaches) a fault-injection plan to the
    /// simulated machine (see `pim_sim::fault`). Starts a fresh failure
    /// experiment: dead-module markers and the fault log are cleared.
    /// Injection only applies to accounted rounds, so warmup/build phases
    /// run fault-free.
    pub fn set_fault_plan(&mut self, plan: Option<FaultPlan>) {
        self.sys.set_fault_plan(plan);
    }

    /// Lifetime fault/recovery counters of the simulated machine.
    pub fn fault_log(&self) -> &FaultLog {
        self.sys.fault_log()
    }

    /// Scripted fail-stop of one module (test/bench hook). Detection and
    /// recovery happen at the next round the index executes.
    pub fn kill_module(&mut self, module: usize) {
        self.sys.kill_module(module);
    }

    /// Number of modules still alive.
    pub fn n_live_modules(&self) -> usize {
        self.sys.n_live()
    }

    /// Re-checks whether L0 still fits in the LLC; flips the replication
    /// flag (and charges the replication broadcast) when it first overflows.
    pub(crate) fn update_l0_replication(&mut self) {
        let l0_bytes = self.l0.as_ref().map_or(0, Fragment::bytes);
        let cache = self.meter.cache().config().capacity_bytes;
        if !self.l0_replicated && l0_bytes > cache {
            self.l0_replicated = true;
            // Replicating L0 to every module is a broadcast of its bytes.
            self.sys.broadcast(ReplBytes(l0_bytes), |_, _, ctx, b| {
                ctx.mem(b.0);
            });
        }
    }
}

/// Hash placement probing past fail-stopped modules (a free function so
/// call sites holding partial borrows of the tree can still place). With
/// no dead modules this is exactly [`hash_place`].
pub(crate) fn place_live(seed: u64, id: MetaId, dead: &[bool]) -> u32 {
    let p = dead.len();
    let mut m = hash_place(seed, id, p);
    let mut probes = 0;
    while dead[m] {
        m = (m + 1) % p;
        probes += 1;
        assert!(probes <= p, "all PIM modules have fail-stopped; index unrecoverable");
    }
    m as u32
}

/// Where a task goes when its target module fail-stopped before the task
/// committed.
pub(crate) enum Route<R> {
    /// Replay on this (live) module.
    To(u32),
    /// The task is moot after the failure; this reply stands in at its
    /// original position so positional reply matching stays aligned.
    Void(R),
}

/// A round task the robust layer can re-home after a module death. The
/// directory is authoritative for routing; embedded `RemoteRef` module
/// fields are advisory hints that may go stale across a recovery.
pub(crate) trait Reroutable<const D: usize>: Sized {
    /// Reply type the round's handler produces for this task.
    type Reply;
    /// Picks a new destination after recovery repaired the directory.
    fn reroute(&mut self, tree: &mut PimZdTree<D>) -> Route<Self::Reply>;
}

impl<const D: usize> Reroutable<D> for crate::module::SearchTask<D> {
    type Reply = crate::module::SearchReply<D>;
    fn reroute(&mut self, tree: &mut PimZdTree<D>) -> Route<Self::Reply> {
        Route::To(tree.master_module(self.meta))
    }
}

impl<const D: usize> Reroutable<D> for crate::module::InsertTask<D> {
    type Reply = crate::module::InsertReply;
    fn reroute(&mut self, tree: &mut PimZdTree<D>) -> Route<Self::Reply> {
        Route::To(tree.master_module(self.meta))
    }
}

impl<const D: usize> Reroutable<D> for crate::module::DeleteTask<D> {
    type Reply = crate::module::DeleteReply<D>;
    fn reroute(&mut self, tree: &mut PimZdTree<D>) -> Route<Self::Reply> {
        Route::To(tree.master_module(self.meta))
    }
}

impl<const D: usize> Reroutable<D> for crate::module::KnnTask<D> {
    type Reply = crate::module::KnnReply<D>;
    fn reroute(&mut self, tree: &mut PimZdTree<D>) -> Route<Self::Reply> {
        Route::To(tree.master_module(self.meta))
    }
}

impl<const D: usize> Reroutable<D> for crate::module::BoxTask<D> {
    type Reply = crate::module::BoxReply<D>;
    fn reroute(&mut self, tree: &mut PimZdTree<D>) -> Route<Self::Reply> {
        Route::To(tree.master_module(self.meta))
    }
}

impl<const D: usize> Reroutable<D> for MgmtTask<D> {
    type Reply = MgmtReply<D>;
    fn reroute(&mut self, tree: &mut PimZdTree<D>) -> Route<Self::Reply> {
        match self {
            MgmtTask::InstallMaster(f) => {
                // The destination died before the install committed:
                // re-place on a survivor and repoint the directory (the
                // split flows register entries before installing).
                let target = tree.place_module(f.meta);
                f.master_module = target;
                if tree.dir.metas.contains_key(&f.meta) {
                    tree.dir.get_mut(f.meta).module = target;
                }
                Route::To(target)
            }
            // The cached copy — or a stale master already pending a drop —
            // died with its host; the task is moot. (Recovery only re-homes
            // fragments the directory still routes to the dead module, so a
            // dropped-in-flight master is never resurrected.)
            MgmtTask::InstallCache(_) | MgmtTask::DropCache(_) | MgmtTask::DropMaster(_) => {
                Route::Void(MgmtReply::Ack)
            }
            MgmtTask::Pull(m) | MgmtTask::PullStructure(m) => Route::To(tree.master_module(*m)),
            // Counter syncs write absolute values, so reaching the re-homed
            // master — possibly in addition to a copy of this task that
            // already ran there — is idempotent. A void reply covers a
            // parent that dissolved concurrently.
            MgmtTask::SyncChild { parent, .. } => match tree.dir.metas.get(parent) {
                Some(e) => Route::To(e.module),
                None => Route::Void(MgmtReply::Ack),
            },
            // Splices no-op when the child ref is already gone
            // (`ReplaceOutcome::NotFound`), so replaying a cache-host copy
            // against the master is safe.
            MgmtTask::ReplaceChild { parent, .. } => match tree.dir.metas.get(parent) {
                Some(e) => Route::To(e.module),
                None => Route::Void(MgmtReply::ReplaceStatus { parent: *parent, collapsed: None }),
            },
            MgmtTask::SplitRoot { meta, new_ids, .. } => {
                // Re-place split children headed for modules that died
                // after placement.
                for (id, module) in new_ids.iter_mut() {
                    if tree.sys.is_dead(*module as usize) {
                        *module = tree.place_module(*id);
                    }
                }
                Route::To(tree.master_module(*meta))
            }
        }
    }
}

/// Opaque broadcast payload carrying only a byte count (used to charge L0
/// replication without materializing per-module copies the simulation never
/// reads — the host copy is authoritative for correctness).
pub(crate) struct ReplBytes(pub u64);

impl pim_sim::Wire for ReplBytes {
    fn wire_bytes(&self) -> u64 {
        self.0
    }
}
