//! Meta-node fragments: the unit of data placement (§3.2).
//!
//! A *fragment* is the physical form of a meta-node — a connected piece of
//! the binary zd-tree stored contiguously on one PIM module (or, for L0, on
//! the host). Edges leaving a fragment are [`RemoteRef`]s carrying the
//! remote root's prefix and a lazy counter snapshot, so a module can route,
//! detect compressed-edge splits, and prune kNN/box traversals *without*
//! touching the remote fragment — only an actual crossing costs a round.
//!
//! All structural algorithms on fragments (canonical merge, delete with
//! splice, branch-and-bound kNN, box traversal) live here, parameterized by
//! a [`CostSink`] so the same code is charged as PIM-core cycles when run on
//! a module and as host cycles + cache touches when a pulled fragment is
//! searched on the CPU (push-pull, §3.3).

use crate::soa::{CandSink, PointSet};
use pim_geom::{Aabb, Metric, Point};
use pim_sim::{PimCtx, Wire};
use pim_zorder::prefix::Prefix;
use pim_zorder::ZKey;

/// Global identifier of a meta-node.
pub type MetaId = u64;

/// A point paired with its Morton key.
pub type Keyed<const D: usize> = (ZKey<D>, Point<D>);

/// Sorts keyed points into canonical `(key, coords)` order.
///
/// Delegates to the thread-count-invariant radix primitive
/// ([`pim_zorder::sort::par_radix_sort_keyed`]); the `(key, coords)` key is
/// total (Morton encoding is injective), so the output value sequence is
/// identical to `sort_unstable_by_key(|(k, p)| (*k, p.coords))` — the
/// comparison sort this replaces on every hot path.
pub fn sort_keyed<const D: usize>(items: &mut [Keyed<D>]) {
    pim_zorder::sort::par_radix_sort_keyed(items, |e| e.0 .0, |a, b| a.1.coords.cmp(&b.1.coords));
}

/// Bytes of one binary-node record in PIM local memory / on the wire.
pub const BNODE_BYTES: u64 = 40;
/// Bytes of a remote reference.
pub const REMOTE_REF_BYTES: u64 = 24;

/// Where costs are charged: PIM core, host CPU, or nowhere (bulk build).
pub trait CostSink {
    /// `n` single-cycle word operations.
    fn op(&mut self, n: u64);
    /// A memory access of `bytes` at fragment-relative offset `off`.
    fn mem(&mut self, off: u64, bytes: u64);
    /// One distance evaluation in `d` dimensions under `metric`.
    fn dist(&mut self, metric: Metric, d: usize);
    /// `n` distance evaluations at once. All sinks charge pure counters, so
    /// batched leaf kernels aggregate the per-point charges into one exact
    /// integer total — byte-identical to `n` individual [`dist`](Self::dist)
    /// calls, without `n` virtual-ish calls in the hot loop.
    fn dist_n(&mut self, metric: Metric, d: usize, n: u64) {
        for _ in 0..n {
            self.dist(metric, d);
        }
    }
}

impl CostSink for PimCtx {
    fn op(&mut self, n: u64) {
        PimCtx::op(self, n);
    }
    fn mem(&mut self, _off: u64, bytes: u64) {
        PimCtx::mem(self, bytes);
    }
    fn dist(&mut self, metric: Metric, d: usize) {
        // UPMEM cores: 32-cycle multiplies make ℓ2 expensive (§6).
        PimCtx::op(self, metric.pim_cycles(d));
        PimCtx::mem(self, (d * 4) as u64);
    }
    fn dist_n(&mut self, metric: Metric, d: usize, n: u64) {
        PimCtx::op(self, metric.pim_cycles(d) * n);
        PimCtx::mems(self, n, (d * 4) as u64);
    }
}

/// Charges a host CPU meter; memory goes through the LLC model at
/// `base_addr + off` (pulled fragments land at fresh host addresses).
pub struct HostSink<'a> {
    /// The host meter.
    pub meter: &'a mut pim_memsim::CpuMeter,
    /// Base address of this fragment's host-side staging area.
    pub base_addr: u64,
}

impl CostSink for HostSink<'_> {
    fn op(&mut self, n: u64) {
        self.meter.work(n);
    }
    fn mem(&mut self, off: u64, bytes: u64) {
        self.meter.touch(self.base_addr + off, bytes, false);
    }
    fn dist(&mut self, _metric: Metric, d: usize) {
        // Multiplication is cheap on the host.
        self.meter.work(6 * d as u64);
    }
    fn dist_n(&mut self, _metric: Metric, d: usize, n: u64) {
        self.meter.work(6 * d as u64 * n);
    }
}

/// Discards costs (bulk build, tests).
pub struct NullSink;

impl CostSink for NullSink {
    fn op(&mut self, _n: u64) {}
    fn mem(&mut self, _off: u64, _bytes: u64) {}
    fn dist(&mut self, _metric: Metric, _d: usize) {}
}

/// A cross-fragment edge: everything a fragment knows about a child
/// meta-node without touching it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RemoteRef<const D: usize> {
    /// Target meta-node.
    pub meta: MetaId,
    /// Module holding the target's master.
    pub module: u32,
    /// Prefix covered by the target's root.
    pub prefix: Prefix<D>,
    /// Lazy counter snapshot of the target subtree (Lemma 3.1 band).
    pub sc: u64,
}

impl<const D: usize> Wire for RemoteRef<D> {
    fn wire_bytes(&self) -> u64 {
        REMOTE_REF_BYTES
    }
}

/// A child slot of an internal node.
#[derive(Clone, Copy, Debug)]
pub enum ChildRef<const D: usize> {
    /// Child inside the same fragment.
    Local(u32),
    /// Child rooted in another fragment.
    Remote(RemoteRef<D>),
}

/// Node payload.
#[derive(Clone, Debug)]
pub enum BKind<const D: usize> {
    /// Binary internal node.
    Internal {
        /// 0-side child.
        left: ChildRef<D>,
        /// 1-side child.
        right: ChildRef<D>,
    },
    /// Leaf with point payload (master copies only).
    Leaf {
        /// Points sorted by (key, coords), stored as lanes (one `u64` key
        /// lane + `D` contiguous `u32` coordinate lanes) so the distance
        /// and containment kernels over the leaf auto-vectorize.
        points: PointSet<D>,
    },
    /// Structure-only stand-in for a leaf in a *cached* copy: the payload
    /// lives at the master (§3.1 shares tree structure, not data).
    LeafStub,
}

/// One binary node of a fragment.
#[derive(Clone, Debug)]
pub struct BNode<const D: usize> {
    /// Prefix this node covers (canonical: the LCP of its subtree's keys).
    pub prefix: Prefix<D>,
    /// Subtree size: exact for fully-local subtrees, lazy (snapshot-based)
    /// where the subtree crosses into other fragments.
    pub count: u64,
    /// Payload.
    pub kind: BKind<D>,
}

impl<const D: usize> BNode<D> {
    /// Record + payload bytes of this node.
    pub fn bytes(&self) -> u64 {
        match &self.kind {
            BKind::Leaf { points } => {
                BNODE_BYTES + points.len() as u64 * (8 + Point::<D>::wire_bytes())
            }
            _ => BNODE_BYTES,
        }
    }
}

/// Result of routing one key through a fragment.
#[derive(Clone, Copy, Debug)]
pub enum SearchEnd<const D: usize> {
    /// The key's leaf (which may or may not contain the key), local.
    Leaf(u32),
    /// The key's position is a stub leaf of a cached copy — continue at the
    /// master.
    Stub(u32),
    /// The key diverges from the `side` child of local node `parent`: its
    /// insertion point is a compressed-edge split inside this fragment.
    Diverge {
        /// Local parent node.
        parent: u32,
        /// Side whose child edge splits.
        side: u8,
    },
    /// The key continues in a remote fragment.
    Remote(RemoteRef<D>),
}

/// A meta-node's storage.
#[derive(Clone, Debug)]
pub struct Fragment<const D: usize> {
    /// This fragment's meta id.
    pub meta: MetaId,
    /// Module holding the master copy (also stored in cached copies so a
    /// search ending at a stub knows where to continue).
    pub master_module: u32,
    /// Node arena (free slots listed in `free`).
    pub nodes: Vec<BNode<D>>,
    /// Free arena slots.
    pub free: Vec<u32>,
    /// Root node index.
    pub root: u32,
    /// Leaf capacity.
    pub leaf_cap: usize,
    /// Dense-mode radix jump table over the first `bits` key bits below the
    /// root ("practical chunking", §6): pattern → deepest safely-jumpable
    /// node. Empty when the fragment is in sparse mode.
    pub chunk_dir: ChunkDir,
    /// Configured table width in bits (0 disables the feature).
    pub dir_bits: u32,
    /// Minimum live nodes before dense mode engages (the paper's B/4 rule).
    pub dense_min: u32,
}

/// The dense-mode chunk directory of §6: an array of `2^bits` node slots
/// indexed by the key bits following the fragment root's prefix. A slot
/// holds the deepest node on that bit path whose own prefix ends within the
/// indexed region — jumping there is always coverage-safe, and skips up to
/// `bits` sequential node reads.
#[derive(Clone, Debug, Default)]
pub struct ChunkDir {
    /// Number of key bits indexed (0 = sparse mode, no table).
    pub bits: u32,
    /// `2^bits` jump targets.
    pub slots: Vec<u32>,
}

impl ChunkDir {
    /// Bytes the table occupies in local memory (4 bytes per slot).
    pub fn bytes(&self) -> u64 {
        self.slots.len() as u64 * 4
    }
}

impl<const D: usize> Fragment<D> {
    /// Creates a fragment holding exactly one node.
    pub fn singleton(meta: MetaId, master_module: u32, node: BNode<D>, leaf_cap: usize) -> Self {
        Self {
            meta,
            master_module,
            nodes: vec![node],
            free: Vec::new(),
            root: 0,
            leaf_cap,
            chunk_dir: ChunkDir::default(),
            dir_bits: 0,
            dense_min: 0,
        }
    }

    /// Node accessor.
    #[inline]
    pub fn node(&self, idx: u32) -> &BNode<D> {
        &self.nodes[idx as usize]
    }

    /// Root node accessor.
    #[inline]
    pub fn root_node(&self) -> &BNode<D> {
        self.node(self.root)
    }

    /// Live node count.
    pub fn live_nodes(&self) -> usize {
        self.nodes.len() - self.free.len()
    }

    /// Total resident/wire bytes (what a pull transfers).
    pub fn bytes(&self) -> u64 {
        // Free slots are not serialized.
        let free: std::collections::HashSet<u32> = self.free.iter().copied().collect();
        self.nodes
            .iter()
            .enumerate()
            .filter(|(i, _)| !free.contains(&(*i as u32)))
            .map(|(_, n)| n.bytes())
            .sum()
    }

    /// Structure-only bytes (what installing a cache copy transfers).
    pub fn structure_bytes(&self) -> u64 {
        self.live_nodes() as u64 * BNODE_BYTES
    }

    fn alloc(&mut self, node: BNode<D>) -> u32 {
        if let Some(i) = self.free.pop() {
            self.nodes[i as usize] = node;
            i
        } else {
            self.nodes.push(node);
            (self.nodes.len() - 1) as u32
        }
    }

    fn release(&mut self, idx: u32) {
        self.free.push(idx);
    }

    /// The fragment-relative "address" of a node for cache modeling.
    #[inline]
    fn off(idx: u32) -> u64 {
        idx as u64 * 64
    }

    /// Rebuilds the dense-mode chunk directory after a structural change.
    /// Dense mode engages when the feature is configured (`dir_bits > 0`)
    /// and the fragment holds at least `dense_min` nodes (the §6 B/4 rule);
    /// otherwise the fragment stays sparse (plain pointer walk).
    pub fn rebuild_chunk_dir(&mut self) {
        let bits = self.dir_bits;
        if bits == 0
            || (self.live_nodes() as u32) < self.dense_min
            || self.root_node().prefix.len + bits > ZKey::<D>::BITS
        {
            self.chunk_dir = ChunkDir::default();
            return;
        }
        let limit = self.root_node().prefix.len + bits;
        let mut slots = vec![self.root; 1usize << bits];
        self.fill_dir(self.root, limit, bits, &mut slots);
        self.chunk_dir = ChunkDir { bits, slots };
    }

    /// Fills directory slots: every node whose prefix ends within the
    /// indexed region claims the pattern range its prefix pins down;
    /// deeper nodes overwrite shallower ones on their subranges.
    fn fill_dir(&self, idx: u32, limit: u32, bits: u32, slots: &mut [u32]) {
        let n = self.node(idx);
        debug_assert!(n.prefix.len <= limit);
        let root_len = limit - bits;
        let fixed_bits = n.prefix.len - root_len;
        let fixed = if fixed_bits == 0 {
            0
        } else {
            (n.prefix.key.0 >> (ZKey::<D>::BITS - n.prefix.len)) & ((1u64 << fixed_bits) - 1)
        };
        let span = 1usize << (bits - fixed_bits);
        let lo = (fixed as usize) << (bits - fixed_bits);
        for s in &mut slots[lo..lo + span] {
            *s = idx;
        }
        if let BKind::Internal { left, right } = &n.kind {
            for c in [left, right] {
                if let ChildRef::Local(ci) = c {
                    if self.node(*ci).prefix.len <= limit {
                        self.fill_dir(*ci, limit, bits, slots);
                    }
                }
            }
        }
    }

    /// Makes a structure-only copy for caching on other modules: leaves
    /// become stubs, everything else is cloned.
    pub fn structure_clone(&self) -> Fragment<D> {
        let nodes = self
            .nodes
            .iter()
            .map(|n| BNode {
                prefix: n.prefix,
                count: n.count,
                kind: match &n.kind {
                    BKind::Leaf { .. } => BKind::LeafStub,
                    other => other.clone(),
                },
            })
            .collect();
        Fragment {
            meta: self.meta,
            master_module: self.master_module,
            nodes,
            free: self.free.clone(),
            root: self.root,
            leaf_cap: self.leaf_cap,
            chunk_dir: self.chunk_dir.clone(),
            dir_bits: self.dir_bits,
            dense_min: self.dense_min,
        }
    }

    /// Routes `key` from the root to its local end. The caller guarantees
    /// the root's prefix covers `key` (cross-fragment routing checks the
    /// boundary prefix before forwarding).
    pub fn search(&self, key: ZKey<D>, sink: &mut impl CostSink) -> SearchEnd<D> {
        debug_assert!(self.root_node().prefix.covers(key), "mis-routed key");
        let mut cur = self.root;
        // Dense-mode fast path (§6): one table lookup replaces up to `bits`
        // sequential node reads. The slot target's prefix consists only of
        // bits the key shares, so jumping is coverage-safe.
        if self.chunk_dir.bits > 0 {
            let bits = self.chunk_dir.bits;
            let root_len = self.root_node().prefix.len;
            debug_assert!(root_len + bits <= ZKey::<D>::BITS);
            let shift = ZKey::<D>::BITS - root_len - bits;
            let pattern = ((key.0 >> shift) & ((1u64 << bits) - 1)) as usize;
            sink.op(4);
            sink.mem(Self::off(self.root) + 40, 4); // table slot read
            cur = self.chunk_dir.slots[pattern];
            debug_assert!(self.node(cur).prefix.covers(key));
        }
        loop {
            sink.op(10);
            sink.mem(Self::off(cur), BNODE_BYTES);
            let node = self.node(cur);
            match &node.kind {
                BKind::Leaf { .. } => return SearchEnd::Leaf(cur),
                BKind::LeafStub => return SearchEnd::Stub(cur),
                BKind::Internal { left, right } => {
                    let side = node.prefix.side_of(key);
                    let child = if side == 0 { left } else { right };
                    match child {
                        ChildRef::Local(c) => {
                            if self.node(*c).prefix.covers(key) {
                                cur = *c;
                            } else {
                                return SearchEnd::Diverge { parent: cur, side };
                            }
                        }
                        ChildRef::Remote(r) => {
                            sink.op(4);
                            if r.prefix.covers(key) {
                                return SearchEnd::Remote(*r);
                            } else {
                                return SearchEnd::Diverge { parent: cur, side };
                            }
                        }
                    }
                }
            }
        }
    }

    /// Finds, along the root→`key` path, the lowest node (local or remote
    /// ref) whose counter is at least `min_count` — the kNN anchor search of
    /// Alg. 3 step 2. Returns the node's prefix and where its subtree lives.
    pub fn lowest_on_path_with_count(
        &self,
        key: ZKey<D>,
        min_count: u64,
        sink: &mut impl CostSink,
    ) -> Option<(Prefix<D>, AnchorLoc<D>)> {
        let mut best: Option<(Prefix<D>, AnchorLoc<D>)> = None;
        let mut cur = self.root;
        loop {
            sink.op(6);
            let node = self.node(cur);
            if !node.prefix.covers(key) {
                break;
            }
            if node.count >= min_count {
                best = Some((node.prefix, AnchorLoc::Local(cur)));
            }
            match &node.kind {
                BKind::Internal { left, right } => {
                    let side = node.prefix.side_of(key);
                    let child = if side == 0 { left } else { right };
                    match child {
                        ChildRef::Local(c) => cur = *c,
                        ChildRef::Remote(r) => {
                            if r.prefix.covers(key) && r.sc >= min_count {
                                best = Some((r.prefix, AnchorLoc::Remote(*r)));
                            }
                            break;
                        }
                    }
                }
                _ => break,
            }
        }
        best
    }

    // ------------------------------------------------------------------
    // Canonical merge (insert)
    // ------------------------------------------------------------------

    /// Merges sorted `items` into the fragment. Items must be covered by the
    /// root's prefix or diverge *below* it (cross-fragment routing sends
    /// escaping keys to the parent). Returns the number of new nodes created
    /// (the structural-change signal for cache refresh).
    pub fn merge(&mut self, items: &[Keyed<D>], sink: &mut impl CostSink) -> usize {
        if items.is_empty() {
            return 0;
        }
        let before = self.live_nodes();
        let root = self.root;
        let new_root = match self.merge_child(ChildRef::Local(root), items, sink) {
            ChildRef::Local(r) => r,
            ChildRef::Remote(_) => unreachable!("merge never produces a remote root"),
        };
        self.root = new_root;
        self.rebuild_chunk_dir();
        self.live_nodes().saturating_sub(before)
    }

    fn child_prefix(&self, c: &ChildRef<D>) -> Prefix<D> {
        match c {
            ChildRef::Local(i) => self.node(*i).prefix,
            ChildRef::Remote(r) => r.prefix,
        }
    }

    fn child_count(&self, c: &ChildRef<D>) -> u64 {
        match c {
            ChildRef::Local(i) => self.node(*i).count,
            ChildRef::Remote(r) => r.sc,
        }
    }

    fn merge_child(
        &mut self,
        child: ChildRef<D>,
        items: &[Keyed<D>],
        sink: &mut impl CostSink,
    ) -> ChildRef<D> {
        if items.is_empty() {
            return child;
        }
        sink.op(12);
        let cpre = self.child_prefix(&child);
        let ccount = self.child_count(&child);
        let total = ccount + items.len() as u64;

        let first = items.first().unwrap().0;
        let last = items.last().unwrap().0;
        let b = first.common_prefix_len(cpre.key).min(last.common_prefix_len(cpre.key));

        if b < cpre.len {
            // Compressed-edge split above `child` (Alg. 2 step 2c).
            let new_pre = Prefix::new(cpre.key, b);
            let side = cpre.key.bit(b);
            let split = items.partition_point(|(k, _)| k.bit(b) == 0);
            let (zero, one) = items.split_at(split);
            let (same, other) = if side == 0 { (zero, one) } else { (one, zero) };
            debug_assert!(!other.is_empty());
            let merged_same = self.merge_child(child, same, sink);
            let built_other = ChildRef::Local(self.build_local(other, sink));
            let (l, r) =
                if side == 0 { (merged_same, built_other) } else { (built_other, merged_same) };
            let idx = self.alloc(BNode {
                prefix: new_pre,
                count: total,
                kind: BKind::Internal { left: l, right: r },
            });
            sink.op(10);
            sink.mem(Self::off(idx), BNODE_BYTES);
            return ChildRef::Local(idx);
        }

        // Covered by the child's prefix.
        match child {
            ChildRef::Remote(_) => {
                unreachable!("items covered by a remote child must be routed to its fragment")
            }
            ChildRef::Local(idx) => {
                sink.mem(Self::off(idx), BNODE_BYTES);
                match &self.node(idx).kind {
                    BKind::LeafStub => {
                        unreachable!("merge applies to master fragments only")
                    }
                    BKind::Leaf { points } => {
                        let old = points.to_vec();
                        sink.op(4 * total);
                        sink.mem(Self::off(idx), old.len() as u64 * (8 + Point::<D>::wire_bytes()));
                        let mut merged = Vec::with_capacity(total as usize);
                        let (mut i, mut j) = (0, 0);
                        while i < old.len() && j < items.len() {
                            if (old[i].0, old[i].1.coords) <= (items[j].0, items[j].1.coords) {
                                merged.push(old[i]);
                                i += 1;
                            } else {
                                merged.push(items[j]);
                                j += 1;
                            }
                        }
                        merged.extend_from_slice(&old[i..]);
                        merged.extend_from_slice(&items[j..]);
                        if is_leaf_set(&merged, self.leaf_cap) {
                            let pre = set_prefix(&merged);
                            let n = &mut self.nodes[idx as usize];
                            n.prefix = pre;
                            n.count = merged.len() as u64;
                            n.kind = BKind::Leaf { points: merged.into() };
                            ChildRef::Local(idx)
                        } else {
                            self.release(idx);
                            ChildRef::Local(self.build_local(&merged, sink))
                        }
                    }
                    BKind::Internal { left, right } => {
                        let (left, right) = (*left, *right);
                        let len = self.node(idx).prefix.len;
                        let split = items.partition_point(|(k, _)| k.bit(len) == 0);
                        let (li, ri) = items.split_at(split);
                        let nl = self.merge_child(left, li, sink);
                        let nr = self.merge_child(right, ri, sink);
                        let n = &mut self.nodes[idx as usize];
                        n.count = total;
                        n.kind = BKind::Internal { left: nl, right: nr };
                        ChildRef::Local(idx)
                    }
                }
            }
        }
    }

    /// Builds a canonical local subtree over sorted items.
    fn build_local(&mut self, items: &[Keyed<D>], sink: &mut impl CostSink) -> u32 {
        debug_assert!(!items.is_empty());
        sink.op(8 + items.len() as u64);
        if is_leaf_set(items, self.leaf_cap) {
            let idx = self.alloc(BNode {
                prefix: set_prefix(items),
                count: items.len() as u64,
                kind: BKind::Leaf { points: PointSet::from_slice(items) },
            });
            sink.mem(Self::off(idx), BNODE_BYTES + items.len() as u64 * 12);
            return idx;
        }
        let pre = set_prefix(items);
        let split = items.partition_point(|(k, _)| k.bit(pre.len) == 0);
        let l = self.build_local(&items[..split], sink);
        let r = self.build_local(&items[split..], sink);
        let idx = self.alloc(BNode {
            prefix: pre,
            count: items.len() as u64,
            kind: BKind::Internal { left: ChildRef::Local(l), right: ChildRef::Local(r) },
        });
        sink.mem(Self::off(idx), BNODE_BYTES);
        idx
    }

    // ------------------------------------------------------------------
    // Delete
    // ------------------------------------------------------------------

    /// Removes sorted `items`; increments `removed` per removed instance.
    /// Returns what the fragment root became.
    pub fn remove(
        &mut self,
        items: &[Keyed<D>],
        removed: &mut usize,
        sink: &mut impl CostSink,
    ) -> RootAfterRemove<D> {
        if items.is_empty() {
            return RootAfterRemove::Kept;
        }
        let root = self.root;
        match self.remove_child(ChildRef::Local(root), items, removed, sink) {
            None => RootAfterRemove::Empty,
            Some(ChildRef::Local(r)) => {
                self.root = r;
                self.rebuild_chunk_dir();
                RootAfterRemove::Kept
            }
            Some(ChildRef::Remote(r)) => RootAfterRemove::CollapsedToRemote(r),
        }
    }

    fn remove_child(
        &mut self,
        child: ChildRef<D>,
        items: &[Keyed<D>],
        removed: &mut usize,
        sink: &mut impl CostSink,
    ) -> Option<ChildRef<D>> {
        let idx = match child {
            ChildRef::Remote(_) => return Some(child), // handled by its own fragment
            ChildRef::Local(i) => i,
        };
        // Restrict to keys this subtree can contain.
        let (lo, hi) = self.node(idx).prefix.key_range();
        let start = items.partition_point(|(k, _)| k.0 < lo);
        let end = items.partition_point(|(k, _)| k.0 <= hi);
        let items = &items[start..end];
        if items.is_empty() {
            return Some(child);
        }
        sink.op(12);
        sink.mem(Self::off(idx), BNODE_BYTES);
        match &self.node(idx).kind {
            BKind::LeafStub => unreachable!("delete applies to master fragments only"),
            BKind::Leaf { points } => {
                let old = points.to_vec();
                sink.op(4 * (old.len() + items.len()) as u64);
                let mut kept: Vec<Keyed<D>> = Vec::with_capacity(old.len());
                let mut consumed = vec![false; items.len()];
                for entry in &old {
                    let mut matched = false;
                    for (j, it) in items.iter().enumerate() {
                        if !consumed[j] && it.0 == entry.0 && it.1 == entry.1 {
                            consumed[j] = true;
                            matched = true;
                            break;
                        }
                    }
                    if matched {
                        *removed += 1;
                    } else {
                        kept.push(*entry);
                    }
                }
                if kept.is_empty() {
                    self.release(idx);
                    None
                } else {
                    let pre = set_prefix(&kept);
                    let n = &mut self.nodes[idx as usize];
                    n.prefix = pre;
                    n.count = kept.len() as u64;
                    n.kind = BKind::Leaf { points: kept.into() };
                    Some(ChildRef::Local(idx))
                }
            }
            BKind::Internal { left, right } => {
                let (left, right) = (*left, *right);
                let len = self.node(idx).prefix.len;
                let split = items.partition_point(|(k, _)| k.bit(len) == 0);
                let (li, ri) = items.split_at(split);
                let nl = self.remove_child(left, li, removed, sink);
                let nr = self.remove_child(right, ri, removed, sink);
                match (nl, nr) {
                    (None, None) => {
                        self.release(idx);
                        None
                    }
                    (Some(c), None) | (None, Some(c)) => {
                        self.release(idx);
                        Some(c)
                    }
                    (Some(l), Some(r)) => {
                        let count = self.child_count(&l) + self.child_count(&r);
                        // Collapse small fully-local subtrees back into a leaf.
                        if count <= self.leaf_cap as u64 {
                            if let (Some(mut a), Some(b)) =
                                (self.try_collect_local(&l), self.try_collect_local(&r))
                            {
                                a.extend(b);
                                sort_keyed(&mut a);
                                self.release_child(&l);
                                self.release_child(&r);
                                let pre = set_prefix(&a);
                                let n = &mut self.nodes[idx as usize];
                                n.prefix = pre;
                                n.count = a.len() as u64;
                                n.kind = BKind::Leaf { points: a.into() };
                                return Some(ChildRef::Local(idx));
                            }
                        }
                        let n = &mut self.nodes[idx as usize];
                        n.count = count;
                        n.kind = BKind::Internal { left: l, right: r };
                        Some(ChildRef::Local(idx))
                    }
                }
            }
        }
    }

    /// Collects a child's points if the subtree is entirely local (no
    /// remote refs, no stubs); otherwise `None`.
    fn try_collect_local(&self, c: &ChildRef<D>) -> Option<Vec<Keyed<D>>> {
        match c {
            ChildRef::Remote(_) => None,
            ChildRef::Local(i) => match &self.node(*i).kind {
                BKind::LeafStub => None,
                BKind::Leaf { points } => Some(points.to_vec()),
                BKind::Internal { left, right } => {
                    let (left, right) = (*left, *right);
                    let mut a = self.try_collect_local(&left)?;
                    let b = self.try_collect_local(&right)?;
                    a.extend(b);
                    Some(a)
                }
            },
        }
    }

    fn release_child(&mut self, c: &ChildRef<D>) {
        if let ChildRef::Local(i) = c {
            if let BKind::Internal { left, right } = self.node(*i).kind {
                self.release_child(&left);
                self.release_child(&right);
            }
            self.release(*i);
        }
    }

    // ------------------------------------------------------------------
    // kNN and box traversal
    // ------------------------------------------------------------------

    /// Branch-and-bound within the fragment from `start`. Improves the
    /// candidate list `cands` (kept as the k best `(dist, point)` pairs,
    /// sorted) and appends remote children that might still matter to
    /// `frontier` with their box lower bounds.
    #[allow(clippy::too_many_arguments)]
    pub fn local_knn(
        &self,
        start: u32,
        q: &Point<D>,
        k: usize,
        metric: Metric,
        cands: &mut Vec<(u64, Point<D>)>,
        frontier: &mut Vec<(RemoteRef<D>, u64)>,
        sink: &mut impl CostSink,
    ) {
        sink.op(10);
        sink.mem(Self::off(start), BNODE_BYTES);
        let node = self.node(start);
        match &node.kind {
            BKind::LeafStub => {
                // Candidate data lives at the master: surface it as frontier.
                let d = node.prefix.to_box().min_dist(q, metric);
                frontier.push((
                    RemoteRef {
                        meta: self.meta,
                        module: self.master_module,
                        prefix: node.prefix,
                        sc: node.count,
                    },
                    d,
                ));
            }
            BKind::Leaf { points } => {
                sink.mem(Self::off(start), points.len() as u64 * 12);
                // Lane kernel: distances for the whole leaf run, charged as
                // one aggregated total (identical counter sum).
                sink.dist_n(metric, D, points.len() as u64);
                points.for_dist_chunks(q, metric, |base, dists| {
                    for (i, &dist) in dists.iter().enumerate() {
                        push_candidate(cands, k, (dist, points.point(base + i)), sink);
                    }
                });
            }
            BKind::Internal { left, right } => {
                sink.op(8 * D as u64);
                let lp = self.child_prefix(left);
                let rp = self.child_prefix(right);
                let ld = lp.to_box().min_dist(q, metric);
                let rd = rp.to_box().min_dist(q, metric);
                let order =
                    if ld <= rd { [(ld, left), (rd, right)] } else { [(rd, right), (ld, left)] };
                for (d, child) in order {
                    let bound = knn_bound(cands, k);
                    if d > bound {
                        continue;
                    }
                    match child {
                        ChildRef::Local(c) => {
                            self.local_knn(*c, q, k, metric, cands, frontier, sink)
                        }
                        ChildRef::Remote(r) => frontier.push((*r, d)),
                    }
                }
            }
        }
    }

    /// Collects *all* points within comparable distance `radius` of `q`
    /// below `start` (Alg. 3 step 4's sphere collection); remote children
    /// whose boxes intersect the ball go to `frontier`. Accepted candidates
    /// go to any [`CandSink`]: module handlers keep AoS reply vectors (wire
    /// format unchanged), the host fine filter accumulates lane blocks.
    #[allow(clippy::too_many_arguments)]
    pub fn local_ball(
        &self,
        start: u32,
        q: &Point<D>,
        radius: u64,
        metric: Metric,
        out: &mut impl CandSink<D>,
        frontier: &mut Vec<(RemoteRef<D>, u64)>,
        sink: &mut impl CostSink,
    ) {
        sink.op(10);
        sink.mem(Self::off(start), BNODE_BYTES);
        let node = self.node(start);
        match &node.kind {
            BKind::LeafStub => {
                let d = node.prefix.to_box().min_dist(q, metric);
                if d <= radius {
                    frontier.push((
                        RemoteRef {
                            meta: self.meta,
                            module: self.master_module,
                            prefix: node.prefix,
                            sc: node.count,
                        },
                        d,
                    ));
                }
            }
            BKind::Leaf { points } => {
                sink.mem(Self::off(start), points.len() as u64 * 12);
                sink.dist_n(metric, D, points.len() as u64);
                let mut accepted = 0u64;
                points.for_dist_chunks(q, metric, |base, dists| {
                    for (i, &dist) in dists.iter().enumerate() {
                        if dist <= radius {
                            accepted += 1;
                            out.accept(dist, points.point(base + i));
                        }
                    }
                });
                sink.op(4 * accepted);
            }
            BKind::Internal { left, right } => {
                sink.op(8 * D as u64);
                for child in [left, right] {
                    let pre = self.child_prefix(child);
                    let d = pre.to_box().min_dist(q, metric);
                    if d > radius {
                        continue;
                    }
                    match child {
                        ChildRef::Local(c) => {
                            self.local_ball(*c, q, radius, metric, out, frontier, sink)
                        }
                        ChildRef::Remote(r) => frontier.push((*r, d)),
                    }
                }
            }
        }
    }

    /// Counts points inside `query` below `start`. Fully-local subtrees
    /// that are fully covered contribute their exact counts without
    /// descent; remote children that intersect go to `frontier`.
    pub fn local_box_count(
        &self,
        start: u32,
        query: &Aabb<D>,
        frontier: &mut Vec<RemoteRef<D>>,
        sink: &mut impl CostSink,
    ) -> u64 {
        sink.op(8 * D as u64 + 6);
        sink.mem(Self::off(start), BNODE_BYTES);
        let node = self.node(start);
        let nb = node.prefix.to_box();
        if !query.intersects(&nb) {
            return 0;
        }
        let fully = query.contains_box(&nb);
        match &node.kind {
            BKind::LeafStub => {
                frontier.push(RemoteRef {
                    meta: self.meta,
                    module: self.master_module,
                    prefix: node.prefix,
                    sc: node.count,
                });
                0
            }
            BKind::Leaf { points } => {
                if fully {
                    return points.len() as u64;
                }
                sink.mem(Self::off(start), points.len() as u64 * 12);
                sink.op(points.len() as u64 * 8 * D as u64);
                points.count_in(query)
            }
            BKind::Internal { left, right } => {
                if fully {
                    // Exact only if the subtree is entirely local; otherwise
                    // descend so remote parts report exactly.
                    if let Some(c) = self.exact_local_count(start) {
                        return c;
                    }
                }
                let mut total = 0;
                for child in [left, right] {
                    match child {
                        ChildRef::Local(c) => {
                            total += self.local_box_count(*c, query, frontier, sink)
                        }
                        ChildRef::Remote(r) => {
                            sink.op(8 * D as u64);
                            if query.intersects(&r.prefix.to_box()) {
                                frontier.push(*r);
                            }
                        }
                    }
                }
                total
            }
        }
    }

    /// Exact point count below `start` if the subtree is fully local.
    fn exact_local_count(&self, start: u32) -> Option<u64> {
        match &self.node(start).kind {
            BKind::Leaf { points } => Some(points.len() as u64),
            BKind::LeafStub => None,
            BKind::Internal { left, right } => {
                let l = match left {
                    ChildRef::Local(c) => self.exact_local_count(*c)?,
                    ChildRef::Remote(_) => return None,
                };
                let r = match right {
                    ChildRef::Local(c) => self.exact_local_count(*c)?,
                    ChildRef::Remote(_) => return None,
                };
                Some(l + r)
            }
        }
    }

    /// Fetches points inside `query` below `start`; remote children that
    /// intersect go to `frontier`.
    pub fn local_box_fetch(
        &self,
        start: u32,
        query: &Aabb<D>,
        out: &mut Vec<Point<D>>,
        frontier: &mut Vec<RemoteRef<D>>,
        sink: &mut impl CostSink,
    ) {
        sink.op(8 * D as u64 + 6);
        sink.mem(Self::off(start), BNODE_BYTES);
        let node = self.node(start);
        let nb = node.prefix.to_box();
        if !query.intersects(&nb) {
            return;
        }
        match &node.kind {
            BKind::LeafStub => frontier.push(RemoteRef {
                meta: self.meta,
                module: self.master_module,
                prefix: node.prefix,
                sc: node.count,
            }),
            BKind::Leaf { points } => {
                sink.mem(Self::off(start), points.len() as u64 * 12);
                let fully = query.contains_box(&nb);
                if fully {
                    sink.op(4 * points.len() as u64);
                    for i in 0..points.len() {
                        out.push(points.point(i));
                    }
                } else {
                    sink.op(points.len() as u64 * 8 * D as u64);
                    let mut accepted = 0u64;
                    points.for_box_chunks(query, |base, mask| {
                        for (i, &m) in mask.iter().enumerate() {
                            if m {
                                accepted += 1;
                                out.push(points.point(base + i));
                            }
                        }
                    });
                    sink.op(4 * accepted);
                }
            }
            BKind::Internal { left, right } => {
                for child in [left, right] {
                    match child {
                        ChildRef::Local(c) => self.local_box_fetch(*c, query, out, frontier, sink),
                        ChildRef::Remote(r) => {
                            sink.op(8 * D as u64);
                            if query.intersects(&r.prefix.to_box()) {
                                frontier.push(*r);
                            }
                        }
                    }
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Splitting (promotion / re-chunking)
    // ------------------------------------------------------------------

    /// Detaches the root node, turning each of its local children into an
    /// independent fragment. `new_ids` supplies (meta id, module) for local
    /// children in child order (left first); remote children keep their
    /// existing refs. Returns the detached root (its children rewritten as
    /// remote refs) and the extracted child fragments.
    pub fn split_root(
        &mut self,
        mut new_ids: impl Iterator<Item = (MetaId, u32)>,
    ) -> (BNode<D>, Vec<Fragment<D>>) {
        let root_idx = self.root;
        let root = self.nodes[root_idx as usize].clone();
        let (left, right) = match &root.kind {
            BKind::Internal { left, right } => (*left, *right),
            _ => {
                // A one-leaf fragment: the root is the whole content.
                let (id, module) = new_ids.next().expect("id for leaf fragment");
                let frag = Fragment::singleton(id, module, root.clone(), self.leaf_cap);
                return (root, vec![frag]);
            }
        };
        let mut frags = Vec::new();
        let mut refs = Vec::new();
        for child in [left, right] {
            match child {
                ChildRef::Remote(r) => refs.push(ChildRef::Remote(r)),
                ChildRef::Local(c) => {
                    let (id, module) = new_ids.next().expect("id for child fragment");
                    let frag = self.extract_subtree(c, id, module);
                    refs.push(ChildRef::Remote(RemoteRef {
                        meta: id,
                        module,
                        prefix: frag.root_node().prefix,
                        sc: frag.root_node().count,
                    }));
                    frags.push(frag);
                }
            }
        }
        let detached = BNode {
            prefix: root.prefix,
            count: root.count,
            kind: BKind::Internal { left: refs[0], right: refs[1] },
        };
        (detached, frags)
    }

    /// Extracts the subtree at `idx` into a fresh fragment, releasing the
    /// source slots.
    pub(crate) fn extract_subtree(&mut self, idx: u32, meta: MetaId, module: u32) -> Fragment<D> {
        let mut out = Fragment {
            meta,
            master_module: module,
            nodes: Vec::new(),
            free: Vec::new(),
            root: 0,
            leaf_cap: self.leaf_cap,
            chunk_dir: ChunkDir::default(),
            dir_bits: self.dir_bits,
            dense_min: self.dense_min,
        };
        let root = self.copy_into(idx, &mut out);
        out.root = root;
        out.rebuild_chunk_dir();
        out
    }

    fn copy_into(&mut self, idx: u32, out: &mut Fragment<D>) -> u32 {
        let node = self.nodes[idx as usize].clone();
        self.release(idx);
        let kind = match node.kind {
            BKind::Internal { left, right } => {
                let l = match left {
                    ChildRef::Local(c) => ChildRef::Local(self.copy_into(c, out)),
                    r => r,
                };
                let r = match right {
                    ChildRef::Local(c) => ChildRef::Local(self.copy_into(c, out)),
                    r => r,
                };
                BKind::Internal { left: l, right: r }
            }
            other => other,
        };
        out.alloc(BNode { prefix: node.prefix, count: node.count, kind })
    }

    /// All (key, point) pairs stored in *this* fragment (not descendants).
    pub fn local_points(&self) -> Vec<Keyed<D>> {
        let mut out = Vec::new();
        self.collect_local(self.root, &mut out);
        out
    }

    fn collect_local(&self, idx: u32, out: &mut Vec<Keyed<D>>) {
        match &self.node(idx).kind {
            BKind::Leaf { points } => points.append_to(out),
            BKind::LeafStub => {}
            BKind::Internal { left, right } => {
                if let ChildRef::Local(c) = left {
                    self.collect_local(*c, out);
                }
                if let ChildRef::Local(c) = right {
                    self.collect_local(*c, out);
                }
            }
        }
    }

    /// All remote references leaving this fragment.
    pub fn remote_children(&self) -> Vec<RemoteRef<D>> {
        let mut out = Vec::new();
        self.walk_refs(self.root, &mut out);
        out
    }

    fn walk_refs(&self, idx: u32, out: &mut Vec<RemoteRef<D>>) {
        if let BKind::Internal { left, right } = &self.node(idx).kind {
            for c in [left, right] {
                match c {
                    ChildRef::Local(i) => self.walk_refs(*i, out),
                    ChildRef::Remote(r) => out.push(*r),
                }
            }
        }
    }

    /// Updates the stored snapshot of a remote child (lazy counter sync) and
    /// refreshes ancestor counts along the path from the root.
    pub fn sync_remote_child(&mut self, meta: MetaId, new_sc: u64, new_prefix: Option<Prefix<D>>) {
        self.sync_rec(self.root, meta, new_sc, new_prefix);
    }

    fn sync_rec(
        &mut self,
        idx: u32,
        meta: MetaId,
        new_sc: u64,
        new_prefix: Option<Prefix<D>>,
    ) -> Option<i64> {
        let kind = match &self.nodes[idx as usize].kind {
            BKind::Internal { left, right } => (*left, *right),
            _ => return None,
        };
        let (left, right) = kind;
        let mut delta: Option<i64> = None;
        let mut new_left = left;
        let mut new_right = right;
        for (slot, new_slot) in [(left, &mut new_left), (right, &mut new_right)] {
            match slot {
                ChildRef::Remote(mut r) if r.meta == meta => {
                    delta = Some(new_sc as i64 - r.sc as i64);
                    r.sc = new_sc;
                    if let Some(p) = new_prefix {
                        r.prefix = p;
                    }
                    *new_slot = ChildRef::Remote(r);
                }
                ChildRef::Local(c) if delta.is_none() => {
                    if let Some(d) = self.sync_rec(c, meta, new_sc, new_prefix) {
                        delta = Some(d);
                    }
                }
                _ => {}
            }
        }
        if let Some(d) = delta {
            let n = &mut self.nodes[idx as usize];
            n.kind = BKind::Internal { left: new_left, right: new_right };
            n.count = (n.count as i64 + d).max(0) as u64;
        }
        delta
    }

    /// Replaces the remote child pointing at `meta` with `replacement`
    /// (splice after a child fragment emptied or collapsed). When
    /// `replacement` is `None` the child's parent node is spliced out of
    /// this fragment; if the spliced parent was the root and its sibling is
    /// itself remote, the whole fragment collapses to that remote ref — the
    /// caller (host) must dissolve the fragment and repoint *its* parent.
    pub fn replace_remote_child(
        &mut self,
        meta: MetaId,
        replacement: Option<RemoteRef<D>>,
    ) -> ReplaceOutcome<D> {
        let root = self.root;
        let out = match self.replace_rec(root, meta, replacement) {
            ReplaceResult::NotFound => ReplaceOutcome::NotFound,
            ReplaceResult::Done => ReplaceOutcome::Done,
            ReplaceResult::ReplaceMe(c) => match c {
                Some(ChildRef::Local(i)) => {
                    self.root = i;
                    ReplaceOutcome::Done
                }
                Some(ChildRef::Remote(r)) => ReplaceOutcome::RootCollapsed(r),
                None => unreachable!("splice always keeps the sibling"),
            },
        };
        if matches!(out, ReplaceOutcome::Done) {
            self.rebuild_chunk_dir();
        }
        out
    }

    fn replace_rec(
        &mut self,
        idx: u32,
        meta: MetaId,
        replacement: Option<RemoteRef<D>>,
    ) -> ReplaceResult<D> {
        let (left, right) = match &self.nodes[idx as usize].kind {
            BKind::Internal { left, right } => (*left, *right),
            _ => return ReplaceResult::NotFound,
        };
        for (side, slot) in [(0u8, left), (1u8, right)] {
            match slot {
                ChildRef::Remote(r) if r.meta == meta => {
                    match replacement {
                        Some(new_r) => {
                            let n = &mut self.nodes[idx as usize];
                            let (l, r2) = if side == 0 {
                                (ChildRef::Remote(new_r), right)
                            } else {
                                (left, ChildRef::Remote(new_r))
                            };
                            n.kind = BKind::Internal { left: l, right: r2 };
                            return ReplaceResult::Done;
                        }
                        None => {
                            // Child vanished: splice this node, keeping the
                            // sibling.
                            let sibling = if side == 0 { right } else { left };
                            self.release(idx);
                            return ReplaceResult::ReplaceMe(Some(sibling));
                        }
                    }
                }
                ChildRef::Local(c) => match self.replace_rec(c, meta, replacement) {
                    ReplaceResult::NotFound => {}
                    ReplaceResult::Done => return ReplaceResult::Done,
                    ReplaceResult::ReplaceMe(Some(sib)) => {
                        let n = &mut self.nodes[idx as usize];
                        let (l, r2) = if side == 0 { (sib, right) } else { (left, sib) };
                        n.kind = BKind::Internal { left: l, right: r2 };
                        return ReplaceResult::Done;
                    }
                    ReplaceResult::ReplaceMe(None) => unreachable!(),
                },
                _ => {}
            }
        }
        ReplaceResult::NotFound
    }
}

impl<const D: usize> Fragment<D> {
    /// Replaces the remote reference to `meta` with a freshly-allocated
    /// local node (promotion into this fragment). Returns whether found.
    pub fn replace_remote_with_node(&mut self, meta: MetaId, node: BNode<D>) -> bool {
        let new_idx = self.alloc(node);
        let mut stack = vec![self.root];
        while let Some(idx) = stack.pop() {
            let (left, right) = match &self.nodes[idx as usize].kind {
                BKind::Internal { left, right } => (*left, *right),
                _ => continue,
            };
            for (side, slot) in [(0u8, left), (1u8, right)] {
                match slot {
                    ChildRef::Remote(r) if r.meta == meta => {
                        let n = &mut self.nodes[idx as usize];
                        let (l, r2) = if side == 0 {
                            (ChildRef::Local(new_idx), right)
                        } else {
                            (left, ChildRef::Local(new_idx))
                        };
                        n.kind = BKind::Internal { left: l, right: r2 };
                        self.rebuild_chunk_dir();
                        return true;
                    }
                    ChildRef::Local(c) => stack.push(c),
                    _ => {}
                }
            }
        }
        // Not found: undo the allocation.
        self.release(new_idx);
        false
    }

    /// Builds a fresh fragment holding the canonical tree over sorted
    /// `items`.
    pub fn build_from(
        meta: MetaId,
        master_module: u32,
        items: &[Keyed<D>],
        leaf_cap: usize,
        sink: &mut impl CostSink,
    ) -> Fragment<D> {
        debug_assert!(!items.is_empty());
        let mut f = Fragment {
            meta,
            master_module,
            nodes: Vec::new(),
            free: Vec::new(),
            root: 0,
            leaf_cap,
            chunk_dir: ChunkDir::default(),
            dir_bits: 0,
            dense_min: 0,
        };
        let root = f.build_local(items, sink);
        f.root = root;
        f
    }
}

enum ReplaceResult<const D: usize> {
    NotFound,
    Done,
    ReplaceMe(Option<ChildRef<D>>),
}

/// Outcome of [`Fragment::replace_remote_child`].
#[derive(Clone, Copy, Debug)]
pub enum ReplaceOutcome<const D: usize> {
    /// No reference to the named meta exists here.
    NotFound,
    /// Replaced/spliced internally; fragment root unchanged or relinked.
    Done,
    /// The fragment collapsed to this remote ref (host must dissolve it).
    RootCollapsed(RemoteRef<D>),
}

/// Outcome of a fragment-level delete.
#[derive(Clone, Copy, Debug)]
pub enum RootAfterRemove<const D: usize> {
    /// Fragment still rooted locally.
    Kept,
    /// Fragment is now empty; the parent must splice its reference.
    Empty,
    /// Fragment collapsed to a single remote reference; the parent should
    /// point directly at it.
    CollapsedToRemote(RemoteRef<D>),
}

/// Anchor location for kNN (Alg. 3 step 2).
#[derive(Clone, Copy, Debug)]
pub enum AnchorLoc<const D: usize> {
    /// A node in the current fragment.
    Local(u32),
    /// A remote subtree.
    Remote(RemoteRef<D>),
}

/// Whether a sorted item set forms a single leaf.
#[inline]
pub fn is_leaf_set<const D: usize>(items: &[Keyed<D>], leaf_cap: usize) -> bool {
    items.len() <= leaf_cap || items.first().unwrap().0 == items.last().unwrap().0
}

/// Canonical prefix of a sorted non-empty item set.
#[inline]
pub fn set_prefix<const D: usize>(items: &[Keyed<D>]) -> Prefix<D> {
    let first = items.first().unwrap().0;
    let last = items.last().unwrap().0;
    Prefix::new(first, first.common_prefix_len(last))
}

/// Inserts a candidate into the k-best list (sorted ascending by
/// (dist, coords)), keeping at most k *distinct* points. Duplicate stored
/// copies are skipped on arrival: `batch_knn` answers with distinct points,
/// so letting copies occupy slots would make the k-th candidate distance —
/// the coarse sphere radius of step 3 — too small to cover k distinct
/// neighbors on duplicate-heavy inputs.
pub fn push_candidate<const D: usize>(
    cands: &mut Vec<(u64, Point<D>)>,
    k: usize,
    cand: (u64, Point<D>),
    sink: &mut impl CostSink,
) {
    sink.op(12);
    let key = (cand.0, cand.1.coords);
    let pos = cands.partition_point(|(d, p)| (*d, p.coords) < key);
    if pos >= k || cands.get(pos).is_some_and(|c| *c == cand) {
        return;
    }
    cands.insert(pos, cand);
    cands.truncate(k);
}

/// Current kNN pruning bound (∞ until k candidates exist).
#[inline]
pub fn knn_bound<const D: usize>(cands: &[(u64, Point<D>)], k: usize) -> u64 {
    if cands.len() < k {
        u64::MAX
    } else {
        cands[k - 1].0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keyed(pts: &[[u32; 3]]) -> Vec<Keyed<3>> {
        let mut v: Vec<Keyed<3>> = pts
            .iter()
            .map(|c| {
                let p = Point::new(*c);
                (ZKey::<3>::encode(&p), p)
            })
            .collect();
        v.sort_unstable_by_key(|(k, p)| (*k, p.coords));
        v
    }

    fn leaf_fragment(pts: &[[u32; 3]], cap: usize) -> Fragment<3> {
        let items = keyed(pts);
        Fragment::singleton(
            1,
            0,
            BNode {
                prefix: set_prefix(&items),
                count: items.len() as u64,
                kind: BKind::Leaf { points: items.into() },
            },
            cap,
        )
    }

    #[test]
    fn search_descends_to_leaf() {
        let mut f = leaf_fragment(&[[1, 1, 1]], 2);
        f.merge(&keyed(&[[100, 100, 100], [200, 200, 200]]), &mut NullSink);
        let k = ZKey::<3>::encode(&Point::new([1, 1, 1]));
        match f.search(k, &mut NullSink) {
            SearchEnd::Leaf(idx) => {
                assert!(f.node(idx).prefix.covers(k));
            }
            other => panic!("expected leaf, got {other:?}"),
        }
    }

    #[test]
    fn merge_splits_overflowing_leaf() {
        let mut f = leaf_fragment(&[[0, 0, 0], [1, 1, 1]], 2);
        let created = f.merge(&keyed(&[[5, 5, 5], [9, 9, 9], [100, 3, 7]]), &mut NullSink);
        assert!(created > 0);
        assert_eq!(f.root_node().count, 5);
        // All five points findable.
        for c in [[0u32, 0, 0], [1, 1, 1], [5, 5, 5], [9, 9, 9], [100, 3, 7]] {
            let key = ZKey::<3>::encode(&Point::new(c));
            match f.search(key, &mut NullSink) {
                SearchEnd::Leaf(idx) => {
                    let BKind::Leaf { points } = &f.node(idx).kind else { panic!() };
                    assert!(points.contains_key(key), "{c:?} lost");
                }
                other => panic!("{c:?} → {other:?}"),
            }
        }
    }

    #[test]
    fn merge_handles_edge_split_above_remote_child() {
        // Internal root with one remote child; an item diverging from the
        // remote child's prefix must split locally.
        let items = keyed(&[[0, 0, 0], [0, 0, 1]]);
        let leaf_pre = set_prefix(&items);
        let remote_pre = {
            // A deep prefix on the 1-side of the root split.
            let k = ZKey::<3>::encode(&Point::new([2_000_000, 2_000_000, 2_000_000]));
            Prefix::new(k, 30)
        };
        let root_pre = Prefix::new(leaf_pre.key, leaf_pre.key.common_prefix_len(remote_pre.key));
        let mut f = Fragment {
            meta: 7,
            master_module: 0,
            nodes: vec![
                BNode {
                    prefix: root_pre,
                    count: 12,
                    kind: BKind::Internal {
                        left: ChildRef::Local(1),
                        right: ChildRef::Remote(RemoteRef {
                            meta: 99,
                            module: 3,
                            prefix: remote_pre,
                            sc: 10,
                        }),
                    },
                },
                BNode { prefix: leaf_pre, count: 2, kind: BKind::Leaf { points: items.into() } },
            ],
            free: vec![],
            root: 0,
            leaf_cap: 4,
            chunk_dir: Default::default(),
            dir_bits: 0,
            dense_min: 0,
        };
        // This point goes to the 1-side of the root but diverges from the
        // remote prefix (its bit pattern differs within the first 30 bits).
        let stray = Point::new([2_000_000, 1, 1]);
        let stray_key = ZKey::<3>::encode(&stray);
        assert!(root_pre.covers(stray_key));
        assert!(!remote_pre.covers(stray_key));
        match f.search(stray_key, &mut NullSink) {
            SearchEnd::Diverge { .. } => {}
            other => panic!("expected divergence, got {other:?}"),
        }
        f.merge(&keyed(&[[2_000_000, 1, 1]]), &mut NullSink);
        // Now the stray must be findable, and the remote ref preserved.
        match f.search(stray_key, &mut NullSink) {
            SearchEnd::Leaf(_) => {}
            other => panic!("after merge: {other:?}"),
        }
        assert_eq!(f.remote_children().len(), 1);
        assert_eq!(f.remote_children()[0].meta, 99);
    }

    #[test]
    fn remove_collapses_and_empties() {
        let pts = [[0u32, 0, 0], [1, 1, 1], [5, 5, 5], [9, 9, 9], [100, 3, 7]];
        let mut f = leaf_fragment(&pts[..2], 2);
        f.merge(&keyed(&pts[2..]), &mut NullSink);
        let mut removed = 0;
        match f.remove(&keyed(&pts[..4]), &mut removed, &mut NullSink) {
            RootAfterRemove::Kept => {}
            other => panic!("{other:?}"),
        }
        assert_eq!(removed, 4);
        assert_eq!(f.root_node().count, 1);
        let mut removed2 = 0;
        match f.remove(&keyed(&pts[4..]), &mut removed2, &mut NullSink) {
            RootAfterRemove::Empty => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn remove_around_remote_child_collapses_to_remote() {
        // Root = internal(leaf, remote); deleting the leaf must collapse the
        // fragment to the remote ref.
        let items = keyed(&[[0, 0, 0]]);
        let leaf_pre = set_prefix(&items);
        let rk = ZKey::<3>::encode(&Point::new([2_000_000, 0, 0]));
        let remote_pre = Prefix::new(rk, 20);
        let root_pre = Prefix::new(leaf_pre.key, leaf_pre.key.common_prefix_len(rk));
        let mut f = Fragment {
            meta: 5,
            master_module: 0,
            nodes: vec![
                BNode {
                    prefix: root_pre,
                    count: 11,
                    kind: BKind::Internal {
                        left: ChildRef::Local(1),
                        right: ChildRef::Remote(RemoteRef {
                            meta: 42,
                            module: 1,
                            prefix: remote_pre,
                            sc: 10,
                        }),
                    },
                },
                BNode { prefix: leaf_pre, count: 1, kind: BKind::Leaf { points: items.into() } },
            ],
            free: vec![],
            root: 0,
            leaf_cap: 4,
            chunk_dir: Default::default(),
            dir_bits: 0,
            dense_min: 0,
        };
        let mut removed = 0;
        match f.remove(&keyed(&[[0, 0, 0]]), &mut removed, &mut NullSink) {
            RootAfterRemove::CollapsedToRemote(r) => assert_eq!(r.meta, 42),
            other => panic!("{other:?}"),
        }
        assert_eq!(removed, 1);
    }

    #[test]
    fn local_knn_finds_nearest_and_reports_frontier() {
        let pts = [[0u32, 0, 0], [10, 10, 10], [1000, 1000, 1000], [1001, 1001, 1001]];
        let mut f = leaf_fragment(&pts[..1], 2);
        f.merge(&keyed(&pts[1..]), &mut NullSink);
        let q = Point::new([9, 9, 9]);
        let mut cands = Vec::new();
        let mut frontier = Vec::new();
        f.local_knn(f.root, &q, 2, Metric::L2, &mut cands, &mut frontier, &mut NullSink);
        assert_eq!(cands.len(), 2);
        assert_eq!(cands[0].1, Point::new([10, 10, 10]));
        assert_eq!(cands[1].1, Point::new([0, 0, 0]));
        assert!(frontier.is_empty());
    }

    #[test]
    fn local_box_count_and_fetch_agree() {
        let pts: Vec<[u32; 3]> = (0..40u32).map(|i| [i * 3, i * 5, i * 7]).collect();
        let mut f = leaf_fragment(&pts[..1], 4);
        f.merge(&keyed(&pts[1..]), &mut NullSink);
        let query = Aabb::new(Point::new([0, 0, 0]), Point::new([60, 100, 140]));
        let mut fr1 = Vec::new();
        let mut fr2 = Vec::new();
        let count = f.local_box_count(f.root, &query, &mut fr1, &mut NullSink);
        let mut out = Vec::new();
        f.local_box_fetch(f.root, &query, &mut out, &mut fr2, &mut NullSink);
        assert_eq!(count, out.len() as u64);
        let brute = pts.iter().filter(|c| query.contains(&Point::new(**c))).count() as u64;
        assert_eq!(count, brute);
    }

    #[test]
    fn split_root_partitions_fragment() {
        let pts: Vec<[u32; 3]> = (0..32u32).map(|i| [i * 1000, i, i]).collect();
        let mut f = leaf_fragment(&pts[..1], 4);
        f.merge(&keyed(&pts[1..]), &mut NullSink);
        let total = f.root_node().count;
        let ids = vec![(100u64, 5u32), (101, 6)];
        let (root, frags) = f.split_root(ids.into_iter());
        assert_eq!(frags.len(), 2);
        let BKind::Internal { left, right } = &root.kind else { panic!() };
        for c in [left, right] {
            match c {
                ChildRef::Remote(r) => assert!(r.meta == 100 || r.meta == 101),
                _ => panic!("children must be remote after split"),
            }
        }
        let sum: u64 = frags.iter().map(|fr| fr.root_node().count).sum();
        assert_eq!(sum, total);
        // Points preserved across the split.
        let n: usize = frags.iter().map(|fr| fr.local_points().len()).sum();
        assert_eq!(n, 32);
    }

    #[test]
    fn structure_clone_stubs_leaves() {
        let mut f = leaf_fragment(&[[0, 0, 0], [5, 5, 5]], 2);
        f.merge(&keyed(&[[9, 9, 9], [100, 50, 25]]), &mut NullSink);
        let c = f.structure_clone();
        assert_eq!(c.live_nodes(), f.live_nodes());
        assert!(c.structure_bytes() < f.bytes() + 1);
        let any_leaf = c.nodes.iter().any(|n| matches!(n.kind, BKind::Leaf { .. }));
        assert!(!any_leaf, "cached copies must not carry point payloads");
        // Searching the clone ends at stubs.
        let k = ZKey::<3>::encode(&Point::new([0, 0, 0]));
        match c.search(k, &mut NullSink) {
            SearchEnd::Stub(_) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn sync_remote_child_updates_sc_and_ancestors() {
        let items = keyed(&[[0, 0, 0]]);
        let leaf_pre = set_prefix(&items);
        let rk = ZKey::<3>::encode(&Point::new([2_000_000, 0, 0]));
        let remote_pre = Prefix::new(rk, 20);
        let root_pre = Prefix::new(leaf_pre.key, leaf_pre.key.common_prefix_len(rk));
        let mut f = Fragment {
            meta: 5,
            master_module: 0,
            nodes: vec![
                BNode {
                    prefix: root_pre,
                    count: 11,
                    kind: BKind::Internal {
                        left: ChildRef::Local(1),
                        right: ChildRef::Remote(RemoteRef {
                            meta: 42,
                            module: 1,
                            prefix: remote_pre,
                            sc: 10,
                        }),
                    },
                },
                BNode { prefix: leaf_pre, count: 1, kind: BKind::Leaf { points: items.into() } },
            ],
            free: vec![],
            root: 0,
            leaf_cap: 4,
            chunk_dir: Default::default(),
            dir_bits: 0,
            dense_min: 0,
        };
        f.sync_remote_child(42, 25, None);
        assert_eq!(f.root_node().count, 26);
        assert_eq!(f.remote_children()[0].sc, 25);
    }

    #[test]
    fn candidate_list_keeps_k_best_sorted() {
        let mut cands: Vec<(u64, Point<2>)> = Vec::new();
        for (d, c) in [(9u64, [9u32, 9]), (1, [1, 1]), (5, [5, 5]), (3, [3, 3])] {
            push_candidate(&mut cands, 3, (d, Point::new(c)), &mut NullSink);
        }
        assert_eq!(cands.iter().map(|(d, _)| *d).collect::<Vec<_>>(), vec![1, 3, 5]);
        assert_eq!(knn_bound(&cands, 3), 5);
        assert_eq!(knn_bound(&cands, 4), u64::MAX);
    }
}

#[cfg(test)]
mod chunk_dir_tests {
    use super::*;

    fn keyed(pts: &[[u32; 3]]) -> Vec<Keyed<3>> {
        let mut v: Vec<Keyed<3>> = pts
            .iter()
            .map(|c| {
                let p = Point::new(*c);
                (ZKey::<3>::encode(&p), p)
            })
            .collect();
        v.sort_unstable_by_key(|(k, p)| (*k, p.coords));
        v
    }

    fn dense_fragment() -> (Fragment<3>, Vec<[u32; 3]>) {
        let pts: Vec<[u32; 3]> = (0..200u32).map(|i| [i * 9731, i * 331 + 5, i * 77]).collect();
        let items = keyed(&pts);
        let mut f = Fragment::singleton(
            1,
            0,
            BNode {
                prefix: set_prefix(&items[..1]),
                count: 1,
                kind: BKind::Leaf { points: items[..1].to_vec().into() },
            },
            4,
        );
        f.dir_bits = 4;
        f.dense_min = 4;
        f.merge(&items[1..], &mut NullSink);
        (f, pts)
    }

    #[test]
    fn dense_mode_engages_and_sparse_mode_does_not() {
        let (f, _) = dense_fragment();
        assert_eq!(f.chunk_dir.bits, 4, "200 points ≥ B/4 ⇒ dense mode");
        assert_eq!(f.chunk_dir.slots.len(), 16);

        let items = keyed(&[[1, 2, 3]]);
        let mut small = Fragment::singleton(
            2,
            0,
            BNode {
                prefix: set_prefix(&items),
                count: 1,
                kind: BKind::Leaf { points: items.into() },
            },
            4,
        );
        small.dir_bits = 4;
        small.dense_min = 4;
        small.rebuild_chunk_dir();
        assert_eq!(small.chunk_dir.bits, 0, "tiny fragment stays sparse");
    }

    #[test]
    fn dense_search_agrees_with_sparse_search() {
        let (mut f, pts) = dense_fragment();
        // Probe with every stored point plus strays.
        let mut probes: Vec<[u32; 3]> = pts.clone();
        probes.extend((0..100u32).map(|i| [i * 13331 + 7, i * 17, i * 991]));
        let dense_ends: Vec<String> = probes
            .iter()
            .map(|c| format!("{:?}", f.search(ZKey::<3>::encode(&Point::new(*c)), &mut NullSink)))
            .collect();
        f.chunk_dir = ChunkDir::default(); // force sparse walk
        let sparse_ends: Vec<String> = probes
            .iter()
            .map(|c| format!("{:?}", f.search(ZKey::<3>::encode(&Point::new(*c)), &mut NullSink)))
            .collect();
        assert_eq!(dense_ends, sparse_ends);
    }

    #[test]
    fn dense_search_is_cheaper() {
        let (mut f, pts) = dense_fragment();
        let count_cycles = |f: &Fragment<3>, pts: &[[u32; 3]]| {
            let mut ctx = pim_sim::PimCtx::new();
            for c in pts {
                let _ = f.search(ZKey::<3>::encode(&Point::new(*c)), &mut ctx);
            }
            ctx.cycles
        };
        let dense = count_cycles(&f, &pts);
        f.chunk_dir = ChunkDir::default();
        let sparse = count_cycles(&f, &pts);
        assert!(dense < sparse, "jump table must save work: {dense} !< {sparse}");
    }

    #[test]
    fn dir_rebuilds_after_mutations() {
        let (mut f, _) = dense_fragment();
        let before = f.chunk_dir.slots.clone();
        f.merge(&keyed(&[[1_999_999, 3, 4], [1_888_888, 5, 6]]), &mut NullSink);
        assert_eq!(f.chunk_dir.bits, 4, "still dense after merge");
        // The new points must be findable through the (rebuilt) table.
        for c in [[1_999_999u32, 3, 4], [1_888_888, 5, 6]] {
            match f.search(ZKey::<3>::encode(&Point::new(c)), &mut NullSink) {
                SearchEnd::Leaf(idx) => {
                    let BKind::Leaf { points } = &f.node(idx).kind else { panic!() };
                    assert!(points.iter().any(|(_, p)| p.coords == c));
                }
                other => panic!("{c:?} → {other:?}"),
            }
        }
        let _ = before;
    }
}
