//! PIM-module state and round handlers.
//!
//! Each PIM module owns two keyed stores: `masters` (the meta-node fragments
//! it is responsible for) and `caches` (structure-only copies of other
//! modules' L1 fragments, §3.1 "partially-shared"). The handlers here are
//! the module-side halves of every batched operation; the host halves live
//! in `search`/`insert`/`knn`/`boxq`.
//!
//! A handler may chase a traversal through any fragment *present on this
//! module* — its own masters and its caches — without communication; only
//! an edge whose target is absent locally surfaces as a `Forward`, costing
//! the next BSP round. That locality rule is exactly what the paper's L1
//! caching buys.

use crate::frag::{
    AnchorLoc, BNode, Fragment, Keyed, MetaId, RemoteRef, RootAfterRemove, SearchEnd, BNODE_BYTES,
    REMOTE_REF_BYTES,
};
use pim_geom::{Aabb, Metric, Point};
use pim_sim::{PimCtx, Wire};
use pim_zorder::prefix::Prefix;
use pim_zorder::ZKey;
use rustc_hash::FxHashMap;

/// Per-module storage.
#[derive(Default)]
pub struct ModuleState<const D: usize> {
    /// Master fragments owned by this module.
    pub masters: FxHashMap<MetaId, Fragment<D>>,
    /// Structure-only cached copies of L1 fragments (ancestors/descendants
    /// of this module's masters).
    pub caches: FxHashMap<MetaId, Fragment<D>>,
}

impl<const D: usize> ModuleState<D> {
    /// Local-memory bytes resident on this module (for Theorem 5.1 / Table 2
    /// space accounting).
    pub fn resident_bytes(&self) -> u64 {
        let m: u64 = self.masters.values().map(Fragment::bytes).sum();
        let c: u64 = self.caches.values().map(Fragment::structure_bytes).sum();
        m + c
    }

    /// Locates a fragment present on this module (master first, then cache).
    fn lookup(&self, meta: MetaId) -> Option<(&Fragment<D>, bool)> {
        if let Some(f) = self.masters.get(&meta) {
            Some((f, true))
        } else {
            self.caches.get(&meta).map(|f| (f, false))
        }
    }
}

// ---------------------------------------------------------------------
// Message types (all Wire so rounds charge channel bytes)
// ---------------------------------------------------------------------

/// One search query routed to a module.
#[derive(Clone, Copy, Debug)]
pub struct SearchTask<const D: usize> {
    /// Query index within the batch.
    pub qid: u32,
    /// Morton key being searched.
    pub key: ZKey<D>,
    /// Fragment to start in.
    pub meta: MetaId,
    /// When nonzero, also report the lowest path node with counter ≥ this
    /// (the kNN anchor of Alg. 3).
    pub want_anchor: u64,
}

impl<const D: usize> Wire for SearchTask<D> {
    fn wire_bytes(&self) -> u64 {
        20 + if self.want_anchor > 0 { 8 } else { 0 }
    }
}

/// Where a search's kNN anchor sits.
#[derive(Clone, Copy, Debug)]
pub struct AnchorInfo<const D: usize> {
    /// Fragment holding the anchor subtree's root.
    pub meta: MetaId,
    /// That fragment's master module.
    pub module: u32,
    /// Node within the fragment (`u32::MAX` = the fragment root).
    pub node: u32,
    /// Anchor prefix (its subtree box).
    pub prefix: Prefix<D>,
    /// Counter snapshot.
    pub sc: u64,
}

/// Module-side search outcome for one query.
#[derive(Clone, Copy, Debug)]
pub enum SearchVerdict<const D: usize> {
    /// Reached the key's leaf in master fragment `meta`.
    Done {
        /// Owning fragment.
        meta: MetaId,
        /// Leaf node index.
        leaf: u32,
        /// Whether the exact key was present in the leaf.
        found: bool,
    },
    /// The key's insertion point is a compressed-edge split in master
    /// fragment `meta`.
    Diverge {
        /// Owning fragment.
        meta: MetaId,
    },
    /// Continue at another module.
    Forward {
        /// Next hop.
        to: RemoteRef<D>,
    },
}

/// Search reply: verdict plus (optionally) the deepest anchor seen locally.
#[derive(Clone, Copy, Debug)]
pub struct SearchReply<const D: usize> {
    /// Query index.
    pub qid: u32,
    /// Outcome.
    pub verdict: SearchVerdict<D>,
    /// Deepest path node with counter ≥ `want_anchor`, if requested/found.
    pub anchor: Option<AnchorInfo<D>>,
}

impl<const D: usize> Wire for SearchReply<D> {
    fn wire_bytes(&self) -> u64 {
        16 + self.anchor.map_or(0, |_| 28)
    }
}

/// Batched inserts targeted at one fragment.
#[derive(Clone, Debug)]
pub struct InsertTask<const D: usize> {
    /// Target master fragment.
    pub meta: MetaId,
    /// Sorted (key, point) pairs.
    pub items: Vec<Keyed<D>>,
}

impl<const D: usize> Wire for InsertTask<D> {
    fn wire_bytes(&self) -> u64 {
        12 + self.items.len() as u64 * (8 + Point::<D>::wire_bytes())
    }
}

/// Insert outcome for one fragment.
#[derive(Clone, Copy, Debug)]
pub struct InsertReply {
    /// Fragment.
    pub meta: MetaId,
    /// Points added.
    pub added: u64,
    /// New binary nodes created (structural-change signal for caching).
    pub new_nodes: u64,
    /// Fragment root count after the merge (exact local view).
    pub root_count: u64,
    /// Live binary nodes in the fragment (re-chunk trigger).
    pub live_nodes: u64,
}

impl Wire for InsertReply {
    fn wire_bytes(&self) -> u64 {
        32
    }
}

/// Batched deletes targeted at one fragment.
#[derive(Clone, Debug)]
pub struct DeleteTask<const D: usize> {
    /// Target master fragment.
    pub meta: MetaId,
    /// Sorted (key, point) pairs to remove.
    pub items: Vec<Keyed<D>>,
}

impl<const D: usize> Wire for DeleteTask<D> {
    fn wire_bytes(&self) -> u64 {
        12 + self.items.len() as u64 * (8 + Point::<D>::wire_bytes())
    }
}

/// Delete outcome for one fragment.
#[derive(Clone, Copy, Debug)]
pub struct DeleteReply<const D: usize> {
    /// Fragment.
    pub meta: MetaId,
    /// Instances removed.
    pub removed: u64,
    /// What happened to the fragment root.
    pub outcome: DeleteOutcome<D>,
    /// Root count and prefix after the delete (when kept).
    pub root_count: u64,
    /// Root prefix after the delete (when kept).
    pub root_prefix: Prefix<D>,
}

/// Root status after a fragment delete.
#[derive(Clone, Copy, Debug)]
pub enum DeleteOutcome<const D: usize> {
    /// Fragment persists.
    Kept,
    /// Fragment emptied (host must splice the parent).
    Empty,
    /// Fragment collapsed to a remote ref (host repoints the parent).
    Collapsed(RemoteRef<D>),
}

impl<const D: usize> Wire for DeleteReply<D> {
    fn wire_bytes(&self) -> u64 {
        40
    }
}

/// kNN subtree exploration task.
#[derive(Clone, Copy, Debug)]
pub struct KnnTask<const D: usize> {
    /// Query index.
    pub qid: u32,
    /// Fragment to explore.
    pub meta: MetaId,
    /// Start node (`u32::MAX` = fragment root).
    pub node: u32,
    /// Query point.
    pub q: Point<D>,
    /// Number of neighbors.
    pub k: u32,
    /// Current global pruning bound (comparable distance).
    pub bound: u64,
    /// Metric evaluated on the PIM side (the coarse metric under §6
    /// two-stage filtering, the target metric otherwise).
    pub metric: Metric,
    /// `false`: best-k exploration (Alg. 3 step 2). `true`: collect *every*
    /// point within `bound` (the step-4 sphere collection).
    pub ball: bool,
}

impl<const D: usize> Wire for KnnTask<D> {
    fn wire_bytes(&self) -> u64 {
        33 + Point::<D>::wire_bytes()
    }
}

/// kNN exploration reply.
#[derive(Clone, Debug)]
pub struct KnnReply<const D: usize> {
    /// Query index.
    pub qid: u32,
    /// Up to k best local candidates (comparable distance, point).
    pub cands: Vec<(u64, Point<D>)>,
    /// Remote subtrees still worth exploring, with box lower bounds.
    pub frontier: Vec<(RemoteRef<D>, u64)>,
    /// Master fragments whose payloads were fully covered locally (the host
    /// must not re-dispatch refs to them — they may have been reached by
    /// chasing a co-located ref).
    pub covered: Vec<MetaId>,
}

impl<const D: usize> Wire for KnnReply<D> {
    fn wire_bytes(&self) -> u64 {
        8 + self.cands.len() as u64 * (8 + Point::<D>::wire_bytes())
            + self.frontier.len() as u64 * (REMOTE_REF_BYTES + 8)
            + self.covered.len() as u64 * 8
    }
}

/// Box-query exploration task.
#[derive(Clone, Copy, Debug)]
pub struct BoxTask<const D: usize> {
    /// Query index.
    pub qid: u32,
    /// Fragment to explore.
    pub meta: MetaId,
    /// Start node (`u32::MAX` = fragment root).
    pub node: u32,
    /// The query box.
    pub query: Aabb<D>,
    /// Whether to return the points (BoxFetch) or only counts (BoxCount).
    pub fetch: bool,
}

impl<const D: usize> Wire for BoxTask<D> {
    fn wire_bytes(&self) -> u64 {
        17 + Aabb::<D>::wire_bytes()
    }
}

/// Box-query exploration reply.
#[derive(Clone, Debug)]
pub struct BoxReply<const D: usize> {
    /// Query index.
    pub qid: u32,
    /// Exact count of local points inside the box.
    pub count: u64,
    /// The points themselves (BoxFetch only).
    pub points: Vec<Point<D>>,
    /// Remote subtrees intersecting the box.
    pub frontier: Vec<RemoteRef<D>>,
    /// Master fragments fully handled locally (host must not re-dispatch).
    pub covered: Vec<MetaId>,
}

impl<const D: usize> Wire for BoxReply<D> {
    fn wire_bytes(&self) -> u64 {
        16 + self.points.len() as u64 * Point::<D>::wire_bytes()
            + self.frontier.len() as u64 * REMOTE_REF_BYTES
            + self.covered.len() as u64 * 8
    }
}

/// Management operations (structure distribution and maintenance).
#[derive(Clone, Debug)]
pub enum MgmtTask<const D: usize> {
    /// Install a master fragment on this module.
    InstallMaster(Fragment<D>),
    /// Install a structure-only cache copy.
    InstallCache(Fragment<D>),
    /// Drop a cache copy.
    DropCache(MetaId),
    /// Drop a master fragment.
    DropMaster(MetaId),
    /// Pull: send the full master fragment to the host.
    Pull(MetaId),
    /// Pull only the structure (leaves stubbed) — what a cache refresh
    /// ships.
    PullStructure(MetaId),
    /// Update the counter snapshot (and optionally prefix) of the remote
    /// child `child` inside fragment `parent` (master or cache).
    SyncChild {
        /// Parent fragment id.
        parent: MetaId,
        /// Child meta id whose snapshot changes.
        child: MetaId,
        /// New counter snapshot.
        sc: u64,
        /// New prefix if the child root restructured.
        prefix: Option<Prefix<D>>,
        /// How many individual update messages this batches. 1 under lazy
        /// counters; the per-op count when the Table 3 ablation syncs every
        /// change eagerly (each is charged on the wire and the core).
        repeat: u32,
    },
    /// Replace (or splice out) the remote child `child` of `parent`.
    ReplaceChild {
        /// Parent fragment id.
        parent: MetaId,
        /// Child to replace.
        child: MetaId,
        /// Replacement ref (`None` splices).
        replacement: Option<RemoteRef<D>>,
    },
    /// Split the fragment's root, registering its local children as new
    /// fragments with the provided (meta, module) ids. When `keep_root` the
    /// old fragment is left holding just the root node; otherwise the root
    /// is detached and returned (promotion into L0).
    SplitRoot {
        /// Fragment to split.
        meta: MetaId,
        /// Ids/placements for extracted children, left to right.
        new_ids: Vec<(MetaId, u32)>,
        /// Keep the root node as a (now tiny) fragment?
        keep_root: bool,
    },
}

impl<const D: usize> Wire for MgmtTask<D> {
    fn wire_bytes(&self) -> u64 {
        match self {
            // Installing ships the fragment's bytes over the channel.
            MgmtTask::InstallMaster(f) => 8 + f.bytes(),
            MgmtTask::InstallCache(f) => 8 + f.structure_bytes(),
            MgmtTask::DropCache(_)
            | MgmtTask::DropMaster(_)
            | MgmtTask::Pull(_)
            | MgmtTask::PullStructure(_) => 9,
            MgmtTask::SyncChild { prefix, repeat, .. } => {
                (24 + if prefix.is_some() { 12 } else { 0 }) * (*repeat as u64).max(1)
            }
            MgmtTask::ReplaceChild { replacement, .. } => {
                16 + replacement.map_or(1, |_| REMOTE_REF_BYTES)
            }
            MgmtTask::SplitRoot { new_ids, .. } => 9 + new_ids.len() as u64 * 12,
        }
    }
}

/// Replies to management operations.
#[derive(Clone, Debug)]
pub enum MgmtReply<const D: usize> {
    /// Nothing to report.
    Ack,
    /// The pulled fragment (full or structure-only).
    Pulled(Fragment<D>),
    /// Outcome of a `ReplaceChild` splice.
    ReplaceStatus {
        /// Parent fragment the splice ran in.
        parent: MetaId,
        /// Set when the parent fragment collapsed to a remote ref and must
        /// be dissolved by the host.
        collapsed: Option<RemoteRef<D>>,
    },
    /// Result of a root split.
    Split {
        /// The detached/retained root node (children rewritten remote).
        root: BNode<D>,
        /// Info about each extracted child fragment, left to right.
        children: Vec<SplitChildInfo<D>>,
        /// Extracted fragments that must move to *other* modules (fragments
        /// staying on this module were installed directly).
        moved: Vec<Fragment<D>>,
    },
}

/// Directory bookkeeping about one fragment created by a root split.
#[derive(Clone, Debug)]
pub struct SplitChildInfo<const D: usize> {
    /// Reference to the new fragment.
    pub r: RemoteRef<D>,
    /// Its live binary-node count.
    pub live_nodes: u64,
    /// Meta ids of the remote children now hanging under it (the host
    /// reassigns their directory parents).
    pub grandchildren: Vec<MetaId>,
}

impl<const D: usize> Wire for SplitChildInfo<D> {
    fn wire_bytes(&self) -> u64 {
        REMOTE_REF_BYTES + 8 + self.grandchildren.len() as u64 * 8
    }
}

impl<const D: usize> Wire for MgmtReply<D> {
    fn wire_bytes(&self) -> u64 {
        match self {
            MgmtReply::Ack => 1,
            MgmtReply::ReplaceStatus { collapsed, .. } => {
                9 + collapsed.map_or(0, |_| REMOTE_REF_BYTES)
            }
            MgmtReply::Pulled(f) => f.bytes(),
            MgmtReply::Split { root, children, moved } => {
                root.bytes()
                    + children.iter().map(Wire::wire_bytes).sum::<u64>()
                    + moved.iter().map(Fragment::bytes).sum::<u64>()
            }
        }
    }
}

impl<const D: usize> Wire for Fragment<D> {
    fn wire_bytes(&self) -> u64 {
        self.bytes()
    }
}

// ---------------------------------------------------------------------
// Handlers
// ---------------------------------------------------------------------

/// The module id is threaded in so handlers can chase refs that point back
/// at this module's own masters without a round trip.
pub fn handle_search<const D: usize>(
    module_id: usize,
    state: &mut ModuleState<D>,
    ctx: &mut PimCtx,
    tasks: Vec<SearchTask<D>>,
) -> Vec<SearchReply<D>> {
    let mut replies = Vec::with_capacity(tasks.len());
    for t in tasks {
        let mut meta = t.meta;
        let mut anchor: Option<AnchorInfo<D>> = None;
        let verdict = loop {
            let Some((frag, is_master)) = state.lookup(meta) else {
                // Shouldn't happen if host routing is correct; treat as a
                // forward to wherever the directory says (host resolves).
                break SearchVerdict::Forward {
                    to: RemoteRef { meta, module: module_id as u32, prefix: Prefix::root(), sc: 0 },
                };
            };
            if t.want_anchor > 0 {
                if let Some((prefix, loc)) =
                    frag.lowest_on_path_with_count(t.key, t.want_anchor, ctx)
                {
                    anchor = Some(match loc {
                        AnchorLoc::Local(n) => AnchorInfo {
                            meta,
                            module: frag.master_module,
                            node: n,
                            prefix,
                            sc: frag.node(n).count,
                        },
                        AnchorLoc::Remote(r) => AnchorInfo {
                            meta: r.meta,
                            module: r.module,
                            node: u32::MAX,
                            prefix,
                            sc: r.sc,
                        },
                    });
                }
            }
            match frag.search(t.key, ctx) {
                SearchEnd::Leaf(idx) => {
                    debug_assert!(is_master, "payload leaves exist only at masters");
                    let found = match &frag.node(idx).kind {
                        crate::frag::BKind::Leaf { points } => {
                            ctx.op(points.len() as u64);
                            points.contains_key(t.key)
                        }
                        _ => false,
                    };
                    break SearchVerdict::Done { meta, leaf: idx, found };
                }
                SearchEnd::Stub(_) => {
                    // Continue at the master of this cached fragment.
                    break SearchVerdict::Forward {
                        to: RemoteRef {
                            meta,
                            module: frag.master_module,
                            prefix: frag.root_node().prefix,
                            sc: frag.root_node().count,
                        },
                    };
                }
                SearchEnd::Diverge { .. } => {
                    if is_master {
                        break SearchVerdict::Diverge { meta };
                    } else {
                        // Structural insert must happen at the master.
                        break SearchVerdict::Forward {
                            to: RemoteRef {
                                meta,
                                module: frag.master_module,
                                prefix: frag.root_node().prefix,
                                sc: frag.root_node().count,
                            },
                        };
                    }
                }
                SearchEnd::Remote(r) => {
                    if state.lookup(r.meta).is_some() {
                        meta = r.meta; // free local hop (cache or co-located master)
                        ctx.op(4);
                        continue;
                    }
                    break SearchVerdict::Forward { to: r };
                }
            }
        };
        replies.push(SearchReply { qid: t.qid, verdict, anchor });
    }
    replies
}

/// Applies insert merges to master fragments.
pub fn handle_insert<const D: usize>(
    state: &mut ModuleState<D>,
    ctx: &mut PimCtx,
    tasks: Vec<InsertTask<D>>,
) -> Vec<InsertReply> {
    let mut replies = Vec::with_capacity(tasks.len());
    for t in tasks {
        let frag = state.masters.get_mut(&t.meta).expect("insert targets a master fragment");
        let added = t.items.len() as u64;
        let new_nodes = frag.merge(&t.items, ctx) as u64;
        replies.push(InsertReply {
            meta: t.meta,
            added,
            new_nodes,
            root_count: frag.root_node().count,
            live_nodes: frag.live_nodes() as u64,
        });
    }
    replies
}

/// Applies delete removals to master fragments.
pub fn handle_delete<const D: usize>(
    state: &mut ModuleState<D>,
    ctx: &mut PimCtx,
    tasks: Vec<DeleteTask<D>>,
) -> Vec<DeleteReply<D>> {
    let mut replies = Vec::with_capacity(tasks.len());
    for t in tasks {
        let frag = state.masters.get_mut(&t.meta).expect("delete targets a master fragment");
        let mut removed = 0usize;
        let outcome = match frag.remove(&t.items, &mut removed, ctx) {
            RootAfterRemove::Kept => DeleteOutcome::Kept,
            RootAfterRemove::Empty => DeleteOutcome::Empty,
            RootAfterRemove::CollapsedToRemote(r) => DeleteOutcome::Collapsed(r),
        };
        let (root_count, root_prefix) = match outcome {
            DeleteOutcome::Kept => (frag.root_node().count, frag.root_node().prefix),
            _ => (0, Prefix::root()),
        };
        match outcome {
            DeleteOutcome::Empty | DeleteOutcome::Collapsed(_) => {
                state.masters.remove(&t.meta);
            }
            DeleteOutcome::Kept => {}
        }
        replies.push(DeleteReply {
            meta: t.meta,
            removed: removed as u64,
            outcome,
            root_count,
            root_prefix,
        });
    }
    replies
}

/// kNN exploration: branch-and-bound through every locally-present
/// fragment, surfacing only truly-remote frontier.
pub fn handle_knn<const D: usize>(
    state: &mut ModuleState<D>,
    ctx: &mut PimCtx,
    tasks: Vec<KnnTask<D>>,
) -> Vec<KnnReply<D>> {
    let mut replies = Vec::with_capacity(tasks.len());
    for t in tasks {
        let mut cands: Vec<(u64, Point<D>)> = Vec::new();
        let mut frontier: Vec<(RemoteRef<D>, u64)> = Vec::new();
        let mut work: Vec<(MetaId, u32, u64)> = vec![(t.meta, t.node, 0)];
        let mut visited: Vec<MetaId> = Vec::new();
        while let Some((meta, node, lb)) = work.pop() {
            let bound = if t.ball {
                t.bound
            } else {
                crate::frag::knn_bound(&cands, t.k as usize).min(t.bound)
            };
            if lb > bound || visited.contains(&meta) {
                continue;
            }
            visited.push(meta);
            let Some((frag, _)) = state.lookup(meta) else {
                continue;
            };
            let start = if node == u32::MAX { frag.root } else { node };
            let mut local_frontier = Vec::new();
            if t.ball {
                frag.local_ball(
                    start,
                    &t.q,
                    t.bound,
                    t.metric,
                    &mut cands,
                    &mut local_frontier,
                    ctx,
                );
            } else {
                frag.local_knn(
                    start,
                    &t.q,
                    t.k as usize,
                    t.metric,
                    &mut cands,
                    &mut local_frontier,
                    ctx,
                );
            }
            for (r, d) in local_frontier {
                // Chase locally-present fragments, except a cached
                // fragment's stub refs (r.meta == meta), whose payloads live
                // only at the master.
                if r.meta != meta && !visited.contains(&r.meta) && state.lookup(r.meta).is_some() {
                    work.push((r.meta, u32::MAX, d));
                } else {
                    frontier.push((r, d));
                }
            }
        }
        // Trim frontier entries the final bound already excludes.
        let bound = if t.ball {
            t.bound
        } else {
            crate::frag::knn_bound(&cands, t.k as usize).min(t.bound)
        };
        frontier.retain(|(_, d)| *d <= bound);
        frontier.sort_unstable_by_key(|(r, d)| (*d, r.meta));
        frontier.dedup_by_key(|(r, _)| r.meta);
        let covered: Vec<MetaId> =
            visited.into_iter().filter(|m| state.masters.contains_key(m)).collect();
        replies.push(KnnReply { qid: t.qid, cands, frontier, covered });
    }
    replies
}

/// Box-query exploration.
pub fn handle_box<const D: usize>(
    state: &mut ModuleState<D>,
    ctx: &mut PimCtx,
    tasks: Vec<BoxTask<D>>,
) -> Vec<BoxReply<D>> {
    let mut replies = Vec::with_capacity(tasks.len());
    for t in tasks {
        let mut count = 0u64;
        let mut points = Vec::new();
        let mut frontier: Vec<RemoteRef<D>> = Vec::new();
        let mut work: Vec<(MetaId, u32)> = vec![(t.meta, t.node)];
        let mut visited: Vec<MetaId> = Vec::new();
        while let Some((meta, node)) = work.pop() {
            if visited.contains(&meta) {
                continue;
            }
            visited.push(meta);
            let Some((frag, _)) = state.lookup(meta) else {
                continue;
            };
            let start = if node == u32::MAX { frag.root } else { node };
            let mut local_frontier = Vec::new();
            if t.fetch {
                frag.local_box_fetch(start, &t.query, &mut points, &mut local_frontier, ctx);
            } else {
                count += frag.local_box_count(start, &t.query, &mut local_frontier, ctx);
            }
            // Chase locally-present fragments, except a cached fragment's
            // stub refs (r.meta == meta), whose payloads live only at the
            // master.
            for r in local_frontier {
                if r.meta != meta && !visited.contains(&r.meta) && state.lookup(r.meta).is_some() {
                    work.push((r.meta, u32::MAX));
                } else {
                    frontier.push(r);
                }
            }
        }
        frontier.sort_unstable_by_key(|r| r.meta);
        frontier.dedup_by_key(|r| r.meta);
        let covered: Vec<MetaId> =
            visited.into_iter().filter(|m| state.masters.contains_key(m)).collect();
        replies.push(BoxReply { qid: t.qid, count, points, frontier, covered });
    }
    replies
}

/// Management handler.
pub fn handle_mgmt<const D: usize>(
    module_id: usize,
    state: &mut ModuleState<D>,
    ctx: &mut PimCtx,
    tasks: Vec<MgmtTask<D>>,
) -> Vec<MgmtReply<D>> {
    let mut replies = Vec::with_capacity(tasks.len());
    for t in tasks {
        let reply = match t {
            MgmtTask::InstallMaster(f) => {
                ctx.mem(f.bytes());
                state.masters.insert(f.meta, f);
                MgmtReply::Ack
            }
            MgmtTask::InstallCache(f) => {
                ctx.mem(f.structure_bytes());
                state.caches.insert(f.meta, f);
                MgmtReply::Ack
            }
            MgmtTask::DropCache(m) => {
                state.caches.remove(&m);
                MgmtReply::Ack
            }
            MgmtTask::DropMaster(m) => {
                state.masters.remove(&m);
                MgmtReply::Ack
            }
            MgmtTask::Pull(m) => {
                let f = state.masters.get(&m).expect("pull targets a master");
                ctx.mem(f.bytes());
                MgmtReply::Pulled(f.clone())
            }
            MgmtTask::PullStructure(m) => {
                let f = state.masters.get(&m).expect("pull targets a master");
                ctx.mem(f.structure_bytes());
                MgmtReply::Pulled(f.structure_clone())
            }
            MgmtTask::SyncChild { parent, child, sc, prefix, repeat } => {
                let r = repeat.max(1) as u64;
                ctx.op(20 * r);
                ctx.mem(BNODE_BYTES * r);
                if let Some(f) = state.masters.get_mut(&parent) {
                    f.sync_remote_child(child, sc, prefix);
                }
                if let Some(f) = state.caches.get_mut(&parent) {
                    f.sync_remote_child(child, sc, prefix);
                }
                MgmtReply::Ack
            }
            MgmtTask::ReplaceChild { parent, child, replacement } => {
                ctx.op(30);
                ctx.mem(BNODE_BYTES);
                let mut collapsed = None;
                if let Some(f) = state.masters.get_mut(&parent) {
                    if let crate::frag::ReplaceOutcome::RootCollapsed(r) =
                        f.replace_remote_child(child, replacement)
                    {
                        collapsed = Some(r);
                    }
                }
                if let Some(f) = state.caches.get_mut(&parent) {
                    f.replace_remote_child(child, replacement);
                }
                if collapsed.is_some() {
                    state.masters.remove(&parent);
                }
                MgmtReply::ReplaceStatus { parent, collapsed }
            }
            MgmtTask::SplitRoot { meta, new_ids, keep_root } => {
                let mut f = state.masters.remove(&meta).expect("split targets a master");
                ctx.mem(f.bytes());
                let (root, frags) = f.split_root(new_ids.into_iter());
                let children: Vec<SplitChildInfo<D>> = frags
                    .iter()
                    .map(|fr| SplitChildInfo {
                        r: RemoteRef {
                            meta: fr.meta,
                            module: fr.master_module,
                            prefix: fr.root_node().prefix,
                            sc: fr.root_node().count,
                        },
                        live_nodes: fr.live_nodes() as u64,
                        grandchildren: fr.remote_children().iter().map(|r| r.meta).collect(),
                    })
                    .collect();
                let mut moved = Vec::new();
                for fr in frags {
                    if fr.master_module as usize == module_id {
                        state.masters.insert(fr.meta, fr);
                    } else {
                        moved.push(fr);
                    }
                }
                if keep_root {
                    let root_frag =
                        Fragment::singleton(meta, module_id as u32, root.clone(), f.leaf_cap);
                    state.masters.insert(meta, root_frag);
                }
                MgmtReply::Split { root, children, moved }
            }
        };
        replies.push(reply);
    }
    replies
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frag::{set_prefix, BKind, NullSink};

    fn keyed(pts: &[[u32; 3]]) -> Vec<Keyed<3>> {
        let mut v: Vec<Keyed<3>> = pts
            .iter()
            .map(|c| {
                let p = Point::new(*c);
                (ZKey::<3>::encode(&p), p)
            })
            .collect();
        v.sort_unstable_by_key(|(k, p)| (*k, p.coords));
        v
    }

    fn frag_of(meta: MetaId, module: u32, pts: &[[u32; 3]]) -> Fragment<3> {
        let items = keyed(pts);
        let mut f = Fragment::singleton(
            meta,
            module,
            BNode {
                prefix: set_prefix(&items[..1]),
                count: 1,
                kind: BKind::Leaf { points: items[..1].to_vec().into() },
            },
            4,
        );
        f.merge(&items[1..], &mut NullSink);
        f
    }

    #[test]
    fn search_handler_finds_local_leaf() {
        let mut st = ModuleState::<3>::default();
        st.masters.insert(9, frag_of(9, 0, &[[1, 2, 3], [4, 5, 6], [1000, 1000, 1000]]));
        let key = ZKey::<3>::encode(&Point::new([4, 5, 6]));
        let mut ctx = PimCtx::new();
        let r = handle_search(
            0,
            &mut st,
            &mut ctx,
            vec![SearchTask { qid: 7, key, meta: 9, want_anchor: 0 }],
        );
        assert_eq!(r.len(), 1);
        match r[0].verdict {
            SearchVerdict::Done { meta, found, .. } => {
                assert_eq!(meta, 9);
                assert!(found);
            }
            other => panic!("{other:?}"),
        }
        assert!(ctx.cycles > 0, "search must charge PIM cycles");
    }

    #[test]
    fn search_handler_reports_anchor() {
        let mut st = ModuleState::<3>::default();
        st.masters.insert(
            9,
            frag_of(9, 0, &[[0, 0, 0], [1, 1, 1], [2, 2, 2], [3, 3, 3], [1 << 20, 0, 0]]),
        );
        let key = ZKey::<3>::encode(&Point::new([0, 0, 0]));
        let mut ctx = PimCtx::new();
        let r = handle_search(
            0,
            &mut st,
            &mut ctx,
            vec![SearchTask { qid: 0, key, meta: 9, want_anchor: 2 }],
        );
        let a = r[0].anchor.expect("anchor expected");
        assert!(a.sc >= 2);
    }

    #[test]
    fn insert_handler_merges() {
        let mut st = ModuleState::<3>::default();
        st.masters.insert(3, frag_of(3, 0, &[[0, 0, 0]]));
        let mut ctx = PimCtx::new();
        let r = handle_insert(
            &mut st,
            &mut ctx,
            vec![InsertTask { meta: 3, items: keyed(&[[7, 7, 7], [9, 9, 9]]) }],
        );
        assert_eq!(r[0].added, 2);
        assert_eq!(r[0].root_count, 3);
    }

    #[test]
    fn delete_handler_reports_empty() {
        let mut st = ModuleState::<3>::default();
        st.masters.insert(3, frag_of(3, 0, &[[0, 0, 0]]));
        let mut ctx = PimCtx::new();
        let r = handle_delete(
            &mut st,
            &mut ctx,
            vec![DeleteTask { meta: 3, items: keyed(&[[0, 0, 0]]) }],
        );
        assert!(matches!(r[0].outcome, DeleteOutcome::Empty));
        assert!(!st.masters.contains_key(&3));
    }

    #[test]
    fn knn_handler_explores_colocated_fragments() {
        // Fragment 1 references fragment 2; both on this module → single
        // round resolves everything.
        let mut st = ModuleState::<3>::default();
        let f2 =
            frag_of(2, 0, &[[1_000_000, 1_000_000, 1_000_000], [1_000_010, 1_000_010, 1_000_010]]);
        let r2 = RemoteRef { meta: 2, module: 0, prefix: f2.root_node().prefix, sc: 2 };
        let f1_items = keyed(&[[0, 0, 0], [10, 10, 10]]);
        let leaf_pre = set_prefix(&f1_items);
        let root_pre = Prefix::new(leaf_pre.key, leaf_pre.key.common_prefix_len(r2.prefix.key));
        let f1 = Fragment {
            meta: 1,
            master_module: 0,
            nodes: vec![
                BNode {
                    prefix: root_pre,
                    count: 4,
                    kind: BKind::Internal {
                        left: crate::frag::ChildRef::Local(1),
                        right: crate::frag::ChildRef::Remote(r2),
                    },
                },
                BNode { prefix: leaf_pre, count: 2, kind: BKind::Leaf { points: f1_items.into() } },
            ],
            free: vec![],
            root: 0,
            leaf_cap: 4,
            chunk_dir: Default::default(),
            dir_bits: 0,
            dense_min: 0,
        };
        st.masters.insert(1, f1);
        st.masters.insert(2, f2);
        let mut ctx = PimCtx::new();
        let r = handle_knn(
            &mut st,
            &mut ctx,
            vec![KnnTask {
                qid: 0,
                meta: 1,
                node: u32::MAX,
                q: Point::new([1_000_001, 1_000_001, 1_000_001]),
                k: 1,
                bound: u64::MAX,
                metric: Metric::L2,
                ball: false,
            }],
        );
        assert_eq!(r[0].cands[0].1, Point::new([1_000_000, 1_000_000, 1_000_000]));
        assert!(r[0].frontier.is_empty());
    }

    #[test]
    fn mgmt_pull_returns_fragment() {
        let mut st = ModuleState::<3>::default();
        st.masters.insert(5, frag_of(5, 0, &[[1, 1, 1], [2, 2, 2]]));
        let mut ctx = PimCtx::new();
        let r = handle_mgmt(0, &mut st, &mut ctx, vec![MgmtTask::Pull(5)]);
        match &r[0] {
            MgmtReply::Pulled(f) => assert_eq!(f.meta, 5),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn resident_bytes_counts_masters_and_caches() {
        let mut st = ModuleState::<3>::default();
        let f = frag_of(1, 0, &[[1, 1, 1], [2, 2, 2], [3, 3, 3]]);
        let cache = f.structure_clone();
        st.masters.insert(1, f);
        st.caches.insert(1, cache);
        assert!(st.resident_bytes() > 0);
        let just_master = st.masters[&1].bytes();
        assert!(st.resident_bytes() > just_master);
    }
}
