//! Tunable configuration of the PIM-zd-tree (§3.1, §3.2, Table 2).
//!
//! The index's behaviour is governed by three structural knobs — the layer
//! thresholds `θ_L0` and `θ_L1` and the chunking factor `B` — plus the
//! push-pull thresholds of Alg. 1 and the lazy-counter deltas of Table 1.
//! The two presets are the paper's two implemented extremes:
//!
//! | knob | throughput-optimized | skew-resistant |
//! |------|----------------------|----------------|
//! | θ_L0 | n / P                | Θ(P)           |
//! | θ_L1 | 1 (no L2)            | Θ(log_B P)     |
//! | B    | θ_L0                 | 16             |

#![allow(clippy::unusual_byte_groupings)] // seeds are mnemonic, not numeric

use serde::{Deserialize, Serialize};

/// Which implementation techniques are enabled — each is a Table 3 ablation.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Toggles {
    /// Fast gap-interleave z-order computation (§6). Off = naive bitwise.
    pub fast_zorder: bool,
    /// Lazy counters (§3.4). Off = eagerly synchronize every counter change
    /// to every replica.
    pub lazy_counters: bool,
    /// Coarse(ℓ1-on-PIM)/fine(ℓ2-on-CPU) kNN filtering (§6). Off = evaluate
    /// the expensive metric directly on the PIM cores.
    pub coarse_fine_knn: bool,
    /// Practical chunking's dense mode (§6): fragments with ≥ B/4 nodes get
    /// a radix jump table at their root, replacing up to log2(B) sequential
    /// node reads per lookup with one table read.
    pub practical_chunking: bool,
}

impl Default for Toggles {
    fn default() -> Self {
        Self {
            fast_zorder: true,
            lazy_counters: true,
            coarse_fine_knn: true,
            practical_chunking: true,
        }
    }
}

/// Full configuration of a PIM-zd-tree instance.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct PimZdConfig {
    /// Subtree-size threshold for L0 (globally shared) membership:
    /// `T(N) ≥ theta_l0` ⇒ L0.
    pub theta_l0: u64,
    /// Subtree-size threshold for L2 (exclusive) membership:
    /// `T(N) < theta_l1` ⇒ L2.
    pub theta_l1: u64,
    /// Chunking factor `B` (§3.2): a meta-node rooted at `N` absorbs
    /// descendants with `T > T(N)/B`.
    pub chunk_b: u64,
    /// Leaf capacity (max points per leaf node).
    pub leaf_cap: usize,
    /// Pull threshold for L1 meta-nodes (Alg. 1 step 2): pull when more than
    /// this many queries target one meta-node.
    pub k_pull_l1: u64,
    /// Pull threshold per L2 level (Alg. 1 step 4): `K = B`.
    pub k_pull_l2: u64,
    /// Load-imbalance trigger: pull rounds run while the busiest module gets
    /// more than this multiple of the average load (Alg. 1: 3×).
    pub imbalance_factor: f64,
    /// Lazy-counter sync threshold Δ for L1 meta-nodes (Table 1); L0 path
    /// counters are host-maintained, and L2 has Δ = 0 (master-only exact).
    pub delta_l1: u64,
    /// Hash seed for master placement.
    pub placement_seed: u64,
    /// Implementation-technique toggles (Table 3 ablations).
    pub toggles: Toggles,
    /// Maximum binary nodes a fragment may hold before it is re-chunked
    /// (keeps pull costs bounded at O(B) — "practical chunking", §6).
    pub max_fragment_nodes: usize,
}

impl PimZdConfig {
    /// The throughput-optimized preset (Table 2): θ_L0 = n/P, θ_L1 = 1
    /// (no L2 layer), B = θ_L0 — each subtree below L0 is one meta-node on
    /// one module, so a balanced SEARCH costs O(1) communication.
    pub fn throughput_optimized(n_estimate: u64, p: usize) -> Self {
        let theta_l0 = (n_estimate / p as u64).max(64);
        Self {
            theta_l0,
            theta_l1: 1,
            chunk_b: theta_l0,
            leaf_cap: 16,
            // Pulling is the skew-resistant machinery; the throughput-
            // optimized extreme is a pure range-partitioned layout whose
            // allowed skew is (P log P, 3) — beyond that it simply degrades
            // (Fig. 9). Disable pulls entirely.
            k_pull_l1: u64::MAX,
            k_pull_l2: u64::MAX,
            imbalance_factor: 3.0,
            // Table 1: Δ_L1 = min(θ_L1, log_B(θ_L0/θ_L1)) degenerates; use
            // θ_L0/8 so root counters stay within the Lemma 3.1 band.
            delta_l1: (theta_l0 / 8).max(1),
            placement_seed: 0x9D_1A_2048,
            toggles: Toggles::default(),
            max_fragment_nodes: usize::MAX,
        }
    }

    /// The skew-resistant preset (Table 2): θ_L0 = Θ(P), θ_L1 = Θ(log_B P),
    /// B = 16 — fine-grained meta-nodes with L1 caching tolerate arbitrary
    /// skew at O(log_B log_B P) communication per operation.
    pub fn skew_resistant(p: usize) -> Self {
        let b = 16u64;
        let log_b_p = ((p.max(2) as f64).ln() / (b as f64).ln()).ceil().max(1.0) as u64;
        let theta_l0 = 4 * p as u64;
        let theta_l1 = (4 * log_b_p).max(2);
        let ratio = (theta_l0 / theta_l1).max(2);
        let log_b_ratio = ((ratio as f64).ln() / (b as f64).ln()).ceil().max(1.0) as u64;
        Self {
            theta_l0,
            theta_l1,
            chunk_b: b,
            leaf_cap: 16,
            k_pull_l1: b * log_b_ratio,
            k_pull_l2: b,
            imbalance_factor: 3.0,
            delta_l1: theta_l1.min(log_b_ratio).max(1),
            placement_seed: 0x5E_0B_2048,
            toggles: Toggles::default(),
            max_fragment_nodes: (8 * b as usize).max(64),
        }
    }

    /// Width in bits of the dense-mode chunk directory (§6), 0 when the
    /// feature is toggled off: log2(B), clamped so tables stay small.
    pub fn chunk_dir_bits(&self) -> u32 {
        if !self.toggles.practical_chunking {
            return 0;
        }
        let log_b = 64 - (self.chunk_b.max(2) - 1).leading_zeros();
        log_b.clamp(2, 8)
    }

    /// Minimum live nodes before a fragment switches to dense mode (B/4).
    pub fn chunk_dense_min(&self) -> u32 {
        (self.chunk_b / 4).clamp(4, u32::MAX as u64) as u32
    }

    /// Layer of a subtree-size value under this configuration.
    pub fn layer_of(&self, subtree_size: u64) -> Layer {
        if subtree_size >= self.theta_l0 {
            Layer::L0
        } else if subtree_size >= self.theta_l1 {
            Layer::L1
        } else {
            Layer::L2
        }
    }
}

/// The three layers of §3.1.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Layer {
    /// Globally shared (host-resident, replicated when it outgrows cache).
    L0,
    /// Partially shared (random master + ancestor/descendant caching).
    L1,
    /// Exclusive (master only).
    L2,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_preset_matches_table2() {
        let c = PimZdConfig::throughput_optimized(2_000_000, 2048);
        assert_eq!(c.theta_l0, 2_000_000 / 2048);
        assert_eq!(c.theta_l1, 1);
        assert_eq!(c.chunk_b, c.theta_l0);
    }

    #[test]
    fn skew_preset_matches_table2() {
        let c = PimZdConfig::skew_resistant(2048);
        assert_eq!(c.chunk_b, 16);
        assert_eq!(c.theta_l0, 4 * 2048);
        assert!(c.theta_l1 >= 2 && c.theta_l1 <= 64);
        assert!(c.max_fragment_nodes >= 64);
    }

    #[test]
    fn layer_classification() {
        let c = PimZdConfig::skew_resistant(64);
        assert_eq!(c.layer_of(c.theta_l0), Layer::L0);
        assert_eq!(c.layer_of(c.theta_l0 - 1), Layer::L1);
        assert_eq!(c.layer_of(c.theta_l1), Layer::L1);
        assert_eq!(c.layer_of(c.theta_l1 - 1), Layer::L2);
    }

    #[test]
    fn throughput_preset_has_floor_for_tiny_n() {
        let c = PimZdConfig::throughput_optimized(10, 2048);
        assert!(c.theta_l0 >= 64);
    }
}

#[cfg(test)]
mod chunking_cfg_tests {
    use super::*;

    #[test]
    fn chunk_dir_bits_follows_b() {
        let mut c = PimZdConfig::skew_resistant(64);
        assert_eq!(c.chunk_b, 16);
        assert_eq!(c.chunk_dir_bits(), 4, "log2(16)");
        assert_eq!(c.chunk_dense_min(), 4, "B/4");
        c.toggles.practical_chunking = false;
        assert_eq!(c.chunk_dir_bits(), 0, "toggle disables the table");
    }

    #[test]
    fn chunk_dir_bits_is_clamped_for_huge_b() {
        let c = PimZdConfig::throughput_optimized(1_000_000, 16);
        assert!(c.chunk_b > 256);
        assert_eq!(c.chunk_dir_bits(), 8, "tables stay bounded");
    }

    #[test]
    fn toggles_default_everything_on() {
        let t = Toggles::default();
        assert!(t.fast_zorder && t.lazy_counters && t.coarse_fine_knn && t.practical_chunking);
    }
}
