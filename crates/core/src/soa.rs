//! Structure-of-arrays candidate storage and the vectorizable kernels
//! over it.
//!
//! Leaf payloads and kNN candidate runs are the index's per-element hot
//! loops: every kNN, ball, and box query scans them computing distances or
//! containment per point. Stored AoS (`[(key, Point); n]`), each metric
//! evaluation strides over interleaved keys and coordinates and the
//! compiler cannot vectorize across points. This module keeps those runs
//! as one `u64` key lane plus `D` contiguous `u32` coordinate lanes —
//! [`PointSet`] for leaves, [`CoordBlock`] for keyless candidate runs — so
//! the distance and containment kernels become lane-major loops over
//! contiguous memory that auto-vectorize, processed in fixed-size chunks
//! through stack buffers (no per-leaf allocation).
//!
//! Everything here is observationally identical to the AoS code it
//! replaced: kernels evaluate per-point in index order with the exact
//! per-axis arithmetic of [`Point`]'s scalar methods (including the ℓ2²
//! saturating add), and [`KBest`] reproduces the historical
//! sort+dedup+truncate fine filter bit for bit — properties pinned by the
//! oracle suites in `tests/` and the round-trip tests below.

use pim_geom::{Aabb, Metric, Point};
use pim_zorder::ZKey;

/// A point paired with its Morton key (AoS view of one element).
pub type Keyed<const D: usize> = (ZKey<D>, Point<D>);

/// Points processed per stack-buffer chunk by the lane kernels.
const CHUNK: usize = 64;

/// Evaluates `metric` from `q` against `n` points stored in `lanes`,
/// chunk by chunk. `emit(base, dists)` receives the distances of points
/// `base..base + dists.len()` in index order. Per-axis arithmetic matches
/// [`Point::l1`]/[`Point::l2_sq`]/[`Point::linf`] exactly — same widening,
/// same saturating ℓ2² accumulation, same dimension order.
fn dist_chunks<const D: usize>(
    lanes: &[Vec<u32>; D],
    n: usize,
    q: &Point<D>,
    metric: Metric,
    mut emit: impl FnMut(usize, &[u64]),
) {
    let mut buf = [0u64; CHUNK];
    let mut base = 0;
    while base < n {
        let m = CHUNK.min(n - base);
        buf[..m].fill(0);
        match metric {
            Metric::L1 => {
                for (j, lane) in lanes.iter().enumerate() {
                    let qc = q.coords[j];
                    for (acc, &c) in buf[..m].iter_mut().zip(&lane[base..base + m]) {
                        *acc += u64::from(c.abs_diff(qc));
                    }
                }
            }
            Metric::L2 => {
                for (j, lane) in lanes.iter().enumerate() {
                    let qc = q.coords[j];
                    for (acc, &c) in buf[..m].iter_mut().zip(&lane[base..base + m]) {
                        let d = u64::from(c.abs_diff(qc));
                        *acc = acc.saturating_add(d * d);
                    }
                }
            }
            Metric::Linf => {
                for (j, lane) in lanes.iter().enumerate() {
                    let qc = q.coords[j];
                    for (acc, &c) in buf[..m].iter_mut().zip(&lane[base..base + m]) {
                        *acc = (*acc).max(u64::from(c.abs_diff(qc)));
                    }
                }
            }
        }
        emit(base, &buf[..m]);
        base += m;
    }
}

/// Leaf payload storage: one key lane + `D` coordinate lanes, element `i`
/// of every lane describing point `i`. Kept in the same `(key, coords)`
/// order the AoS `Vec<Keyed<D>>` held.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PointSet<const D: usize> {
    keys: Vec<u64>,
    lanes: [Vec<u32>; D],
}

impl<const D: usize> Default for PointSet<D> {
    fn default() -> Self {
        Self::new()
    }
}

impl<const D: usize> PointSet<D> {
    /// An empty set.
    pub fn new() -> Self {
        Self { keys: Vec::new(), lanes: std::array::from_fn(|_| Vec::new()) }
    }

    /// An empty set with room for `n` points in every lane.
    pub fn with_capacity(n: usize) -> Self {
        Self { keys: Vec::with_capacity(n), lanes: std::array::from_fn(|_| Vec::with_capacity(n)) }
    }

    /// Transposes an AoS slice into lanes.
    pub fn from_slice(items: &[Keyed<D>]) -> Self {
        let mut s = Self::with_capacity(items.len());
        for (k, p) in items {
            s.push(*k, p);
        }
        s
    }

    /// Number of stored points.
    #[inline]
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Appends one point.
    #[inline]
    pub fn push(&mut self, key: ZKey<D>, p: &Point<D>) {
        self.keys.push(key.0);
        for (lane, &c) in self.lanes.iter_mut().zip(&p.coords) {
            lane.push(c);
        }
    }

    /// The raw key lane.
    #[inline]
    pub fn keys(&self) -> &[u64] {
        &self.keys
    }

    /// The coordinate lane of dimension `j`.
    #[inline]
    pub fn lane(&self, j: usize) -> &[u32] {
        &self.lanes[j]
    }

    /// Key of element `i`.
    #[inline]
    pub fn key(&self, i: usize) -> ZKey<D> {
        ZKey(self.keys[i])
    }

    /// Point `i`, re-materialized from the lanes.
    #[inline]
    pub fn point(&self, i: usize) -> Point<D> {
        Point::new(std::array::from_fn(|j| self.lanes[j][i]))
    }

    /// Element `i` as an AoS pair.
    #[inline]
    pub fn get(&self, i: usize) -> Keyed<D> {
        (self.key(i), self.point(i))
    }

    /// Iterates elements as AoS pairs, in index order.
    pub fn iter(&self) -> impl Iterator<Item = Keyed<D>> + '_ {
        (0..self.len()).map(|i| self.get(i))
    }

    /// Transposes back to an AoS vector (structural edits — merge, delete —
    /// run on the AoS form, mirroring the clones the old layout made).
    pub fn to_vec(&self) -> Vec<Keyed<D>> {
        self.iter().collect()
    }

    /// Appends every element to an AoS vector.
    pub fn append_to(&self, out: &mut Vec<Keyed<D>>) {
        out.reserve(self.len());
        out.extend(self.iter());
    }

    /// Whether any stored key equals `key` — a branch-free scan of the
    /// contiguous key lane.
    #[inline]
    pub fn contains_key(&self, key: ZKey<D>) -> bool {
        self.keys.contains(&key.0)
    }

    /// Distance kernel over the coordinate lanes; see `dist_chunks`.
    #[inline]
    pub fn for_dist_chunks(&self, q: &Point<D>, metric: Metric, emit: impl FnMut(usize, &[u64])) {
        dist_chunks(&self.lanes, self.len(), q, metric, emit);
    }

    /// Counts stored points inside `query` (inclusive box containment),
    /// lane-major and branch-free within each chunk.
    pub fn count_in(&self, query: &Aabb<D>) -> u64 {
        let mut total = 0u64;
        self.for_box_chunks(query, |_, mask| {
            total += mask.iter().map(|&b| u64::from(b)).sum::<u64>();
        });
        total
    }

    /// Containment kernel: `emit(base, mask)` receives one `bool` per point
    /// of the chunk, `true` when the point lies inside `query`.
    pub fn for_box_chunks(&self, query: &Aabb<D>, mut emit: impl FnMut(usize, &[bool])) {
        let mut mask = [false; CHUNK];
        let n = self.len();
        let mut base = 0;
        while base < n {
            let m = CHUNK.min(n - base);
            mask[..m].fill(true);
            for (j, lane) in self.lanes.iter().enumerate() {
                let (lo, hi) = (query.lo.coords[j], query.hi.coords[j]);
                for (keep, &c) in mask[..m].iter_mut().zip(&lane[base..base + m]) {
                    *keep &= (c >= lo) & (c <= hi);
                }
            }
            emit(base, &mask[..m]);
            base += m;
        }
    }
}

impl<const D: usize> From<Vec<Keyed<D>>> for PointSet<D> {
    fn from(items: Vec<Keyed<D>>) -> Self {
        Self::from_slice(&items)
    }
}

impl<const D: usize> FromIterator<Keyed<D>> for PointSet<D> {
    fn from_iter<I: IntoIterator<Item = Keyed<D>>>(iter: I) -> Self {
        let mut s = Self::new();
        for (k, p) in iter {
            s.push(k, &p);
        }
        s
    }
}

/// A keyless candidate run: `D` coordinate lanes only. The kNN ball phase
/// accumulates every in-radius candidate here (host-local hits and module
/// replies alike) so the fine filter can re-evaluate distances with the
/// lane kernel instead of striding over AoS pairs.
#[derive(Clone, Debug)]
pub struct CoordBlock<const D: usize> {
    lanes: [Vec<u32>; D],
}

impl<const D: usize> Default for CoordBlock<D> {
    fn default() -> Self {
        Self::new()
    }
}

impl<const D: usize> CoordBlock<D> {
    /// An empty block.
    pub fn new() -> Self {
        Self { lanes: std::array::from_fn(|_| Vec::new()) }
    }

    /// Number of stored candidates.
    #[inline]
    pub fn len(&self) -> usize {
        self.lanes[0].len()
    }

    /// Whether the block is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.lanes[0].is_empty()
    }

    /// Appends one candidate point.
    #[inline]
    pub fn push(&mut self, p: &Point<D>) {
        for (lane, &c) in self.lanes.iter_mut().zip(&p.coords) {
            lane.push(c);
        }
    }

    /// Candidate `i`, re-materialized from the lanes.
    #[inline]
    pub fn point(&self, i: usize) -> Point<D> {
        Point::new(std::array::from_fn(|j| self.lanes[j][i]))
    }

    /// Distance kernel over the lanes; see `dist_chunks`.
    #[inline]
    pub fn for_dist_chunks(&self, q: &Point<D>, metric: Metric, emit: impl FnMut(usize, &[u64])) {
        dist_chunks(&self.lanes, self.len(), q, metric, emit);
    }
}

/// Where a traversal deposits accepted candidates. One leaf scan serves
/// both the module side (AoS reply vectors, which keep their wire format)
/// and the host side (lane blocks feeding the fine filter).
pub trait CandSink<const D: usize> {
    /// Accepts one candidate at comparable distance `dist`.
    fn accept(&mut self, dist: u64, p: Point<D>);
}

impl<const D: usize> CandSink<D> for Vec<(u64, Point<D>)> {
    #[inline]
    fn accept(&mut self, dist: u64, p: Point<D>) {
        self.push((dist, p));
    }
}

impl<const D: usize> CandSink<D> for CoordBlock<D> {
    #[inline]
    fn accept(&mut self, _dist: u64, p: Point<D>) {
        self.push(&p);
    }
}

/// Bounded selector of the `k` smallest *distinct* `(dist, coords)` pairs —
/// the kNN fine filter. A binary max-heap of capacity `k` ordered by
/// `(dist, coords)` replaces the historical collect-all + `sort_unstable` +
/// `dedup` + `truncate(k)` pipeline: same output bit for bit ("left run
/// wins ties" — ascending `(dist, coords)` order — with exact duplicates
/// collapsed), but O(n log k) with no O(n) buffer, and the offer path is a
/// compare against the root plus an index-arithmetic sift with no
/// data-dependent branching beyond it.
#[derive(Clone, Debug)]
pub struct KBest<const D: usize> {
    k: usize,
    /// Max-heap by `(dist, coords)`; `heap[0]` is the current k-th best.
    heap: Vec<(u64, Point<D>)>,
}

#[inline]
fn hkey<const D: usize>(e: &(u64, Point<D>)) -> (u64, [u32; D]) {
    (e.0, e.1.coords)
}

impl<const D: usize> KBest<D> {
    /// A selector keeping at most `k` entries (`k = 0` keeps none).
    pub fn new(k: usize) -> Self {
        Self { k, heap: Vec::with_capacity(k.min(1024)) }
    }

    /// Current pruning bound: the k-th best `(dist, coords)` key, or `MAX`
    /// until `k` distinct entries exist.
    #[inline]
    pub fn bound(&self) -> (u64, [u32; D]) {
        if self.heap.len() < self.k {
            (u64::MAX, [u32::MAX; D])
        } else {
            self.heap.first().map(hkey).unwrap_or((u64::MAX, [u32::MAX; D]))
        }
    }

    /// Offers one candidate; duplicates of a held entry are dropped so the
    /// selection is over *distinct* pairs, exactly like the historical
    /// `dedup()` on the sorted run.
    pub fn offer(&mut self, dist: u64, p: Point<D>) {
        if self.k == 0 {
            return;
        }
        let key = (dist, p.coords);
        if self.heap.len() >= self.k {
            // Full: only a strictly better key can displace the root, and
            // only a key not already held may enter.
            if key >= hkey(&self.heap[0]) {
                // Covers both "not better" and "duplicate of the root".
                return;
            }
            if self.heap.iter().any(|e| hkey(e) == key) {
                return;
            }
            self.heap[0] = (dist, p);
            self.sift_down(0);
        } else {
            if self.heap.iter().any(|e| hkey(e) == key) {
                return;
            }
            self.heap.push((dist, p));
            self.sift_up(self.heap.len() - 1);
        }
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if hkey(&self.heap[i]) <= hkey(&self.heap[parent]) {
                break;
            }
            self.heap.swap(i, parent);
            i = parent;
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        let n = self.heap.len();
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut largest = i;
            if l < n && hkey(&self.heap[l]) > hkey(&self.heap[largest]) {
                largest = l;
            }
            if r < n && hkey(&self.heap[r]) > hkey(&self.heap[largest]) {
                largest = r;
            }
            if largest == i {
                break;
            }
            self.heap.swap(i, largest);
            i = largest;
        }
    }

    /// The held entries in ascending `(dist, coords)` order — the final
    /// kNN result format.
    pub fn into_sorted(self) -> Vec<(u64, Point<D>)> {
        let mut v = self.heap;
        v.sort_unstable_by_key(|(d, p)| (*d, p.coords));
        v
    }
}

/// The full fine filter: distances from `q` to every candidate in `block`
/// via the lane kernel, selected down to the `k` smallest distinct pairs.
pub fn fine_select<const D: usize>(
    block: &CoordBlock<D>,
    q: &Point<D>,
    metric: Metric,
    k: usize,
) -> Vec<(u64, Point<D>)> {
    let mut best = KBest::new(k);
    block.for_dist_chunks(q, metric, |base, dists| {
        for (i, &dist) in dists.iter().enumerate() {
            best.offer(dist, block.point(base + i));
        }
    });
    best.into_sorted()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keyed(cs: &[[u32; 3]]) -> Vec<Keyed<3>> {
        cs.iter()
            .map(|c| {
                let p = Point::new(*c);
                (ZKey::<3>::encode(&p), p)
            })
            .collect()
    }

    #[test]
    fn aos_soa_aos_identity() {
        let items = keyed(&[[1, 2, 3], [4, 5, 6], [1, 2, 3], [0, 0, 0], [7, 7, 7]]);
        let set = PointSet::from_slice(&items);
        assert_eq!(set.len(), items.len());
        assert_eq!(set.to_vec(), items, "AoS→SoA→AoS must be the identity");
        for (i, (k, p)) in items.iter().enumerate() {
            assert_eq!(set.get(i), (*k, *p));
        }
        let round: PointSet<3> = items.clone().into();
        assert_eq!(round, set);
    }

    #[test]
    fn dist_kernel_matches_scalar_metrics() {
        let items = keyed(&[[0, 0, 0], [10, 20, 30], [5, 5, 5], [1 << 20, 3, 9]]);
        let set = PointSet::from_slice(&items);
        let q = Point::new([7u32, 7, 7]);
        for metric in [Metric::L1, Metric::L2, Metric::Linf] {
            let mut got = Vec::new();
            set.for_dist_chunks(&q, metric, |base, dists| {
                assert_eq!(base, got.len());
                got.extend_from_slice(dists);
            });
            let want: Vec<u64> = items.iter().map(|(_, p)| metric.cmp_dist(&q, p)).collect();
            assert_eq!(got, want, "{metric:?}");
        }
    }

    #[test]
    fn box_kernel_matches_scalar_containment() {
        let items = keyed(&[[0, 0, 0], [10, 20, 30], [5, 5, 5], [6, 9, 2]]);
        let set = PointSet::from_slice(&items);
        let query = Aabb::new(Point::new([1u32, 1, 1]), Point::new([10u32, 20, 30]));
        let mut inside = Vec::new();
        set.for_box_chunks(&query, |base, mask| {
            for (i, &m) in mask.iter().enumerate() {
                if m {
                    inside.push(set.point(base + i));
                }
            }
        });
        let want: Vec<Point<3>> =
            items.iter().map(|(_, p)| *p).filter(|p| query.contains(p)).collect();
        assert_eq!(inside, want);
        assert_eq!(set.count_in(&query), want.len() as u64);
    }

    #[test]
    fn kbest_is_sort_dedup_truncate() {
        let cands =
            [(5u64, [1u32, 1, 1]), (3, [2, 2, 2]), (5, [1, 1, 1]), (3, [0, 0, 0]), (9, [3, 3, 3])];
        for k in 0..=6 {
            let mut best = KBest::<3>::new(k);
            for (d, c) in cands {
                best.offer(d, Point::new(c));
            }
            let mut want: Vec<(u64, Point<3>)> =
                cands.iter().map(|(d, c)| (*d, Point::new(*c))).collect();
            want.sort_unstable_by_key(|(d, p)| (*d, p.coords));
            want.dedup();
            want.truncate(k);
            assert_eq!(best.into_sorted(), want, "k={k}");
        }
    }

    #[test]
    fn chunk_boundaries_are_seamless() {
        // More points than one chunk so the kernel's chunk loop is hit.
        let items: Vec<Keyed<3>> = (0..333u32)
            .map(|i| {
                let p = Point::new([i * 7 % 1000, i * 13 % 1000, i * 29 % 1000]);
                (ZKey::<3>::encode(&p), p)
            })
            .collect();
        let set = PointSet::from_slice(&items);
        let q = Point::new([500u32, 500, 500]);
        let mut got = Vec::new();
        set.for_dist_chunks(&q, Metric::L2, |_, d| got.extend_from_slice(d));
        let want: Vec<u64> = items.iter().map(|(_, p)| p.l2_sq(&q)).collect();
        assert_eq!(got, want);
    }
}
