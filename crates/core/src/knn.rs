//! Batched k-nearest-neighbor queries (Alg. 3) with the §6 two-stage
//! coarse/fine metric execution.
//!
//! Per query: (1) SEARCH records the trace and the *anchor* — the lowest
//! path node whose lazy counter guarantees ≥ k true points (we require
//! SC ≥ 2k, which by Lemma 3.1 implies T ≥ k). (2) Push-pull branch-and-
//! bound over the anchor's subtree yields k candidates under the *coarse*
//! metric (ℓ1 on the PIM side — additions only; UPMEM multiplies cost 32
//! cycles). (3) The k-th candidate distance defines a sphere; the lowest
//! trace node containing it is found host-side. (4) Push-pull collection
//! gathers every point inside the (√D-inflated, for ℓ2) sphere. (5) The
//! host evaluates the exact target metric over the collected set — the
//! fine-grained stage — and emits the final k.

use crate::frag::{knn_bound, push_candidate, HostSink, MetaId, RemoteRef};
use crate::host::PimZdTree;
use crate::module::{handle_knn, KnnReply, KnnTask};
use crate::soa::{fine_select, CoordBlock};
use pim_geom::{Aabb, Metric, Point};
use pim_zorder::prefix::Prefix;
use rustc_hash::FxHashMap;

/// Exploration target: a node in L0 (host) or in a fragment.
#[derive(Clone, Copy, Debug)]
enum Target<const D: usize> {
    L0(u32),
    Frag { meta: MetaId, module: u32, node: u32 },
}

/// Per-query exploration state.
struct QState<const D: usize> {
    q: Point<D>,
    /// Best-k candidates (coarse distance, point) — best-k mode only.
    cands: Vec<(u64, Point<D>)>,
    /// Sphere-collection candidates, stored lane-major so the step-5 fine
    /// filter runs as an auto-vectorized SoA distance kernel — ball mode
    /// only. The coarse distance is dropped on entry: the fine filter
    /// re-evaluates the target metric anyway.
    block: CoordBlock<D>,
    frontier: Vec<(Target<D>, u64)>,
    /// Fixed collection radius in ball mode; `None` = best-k mode.
    ball: Option<u64>,
    /// Metas whose master payloads were already covered for this query
    /// (prevents double-collection when refs arrive via multiple paths).
    visited: Vec<MetaId>,
}

impl<const D: usize> QState<D> {
    fn bound(&self, k: usize) -> u64 {
        match self.ball {
            Some(r) => r,
            None => knn_bound(&self.cands, k),
        }
    }
}

const MAX_ROUNDS: usize = 1000;

impl<const D: usize> PimZdTree<D> {
    /// Batched exact k-nearest-neighbor query under `metric`. Results are
    /// sorted by (comparable distance, coordinates); ℓ2 distances are
    /// squared.
    pub fn batch_knn(
        &mut self,
        queries: &[Point<D>],
        k: usize,
        metric: Metric,
    ) -> Vec<Vec<(u64, Point<D>)>> {
        if queries.is_empty() {
            return Vec::new();
        }
        self.phased("knn", |t| {
            t.measured(queries.len() as u64, |t| {
                let out = t.knn_inner(queries, k, metric);
                let elements: u64 = out.iter().map(|v| v.len() as u64).sum();
                (out, elements)
            })
        })
    }

    fn knn_inner(
        &mut self,
        queries: &[Point<D>],
        k: usize,
        metric: Metric,
    ) -> Vec<Vec<(u64, Point<D>)>> {
        let n = queries.len();
        // Empty tree or k = 0: every query answers with no neighbors. The
        // root is captured here so no later step needs to touch `self.l0`
        // unguarded.
        let l0_root = match self.l0.as_ref() {
            Some(l0) if k > 0 => l0.root,
            _ => return vec![Vec::new(); n],
        };
        let two_stage = self.cfg.toggles.coarse_fine_knn && metric.needs_multiplication();
        let coarse = if two_stage { Metric::L1 } else { metric };

        // Step 1: SEARCH with anchors (SC ≥ 2k ⇒ T ≥ k by Lemma 3.1).
        let want = (2 * k as u64).max(1);
        let s = self.batch_search_internal(queries, want);

        // Step 2: best-k exploration of the anchor subtrees (coarse metric).
        let mut states: Vec<QState<D>> = (0..n)
            .map(|qid| {
                let start = match &s.anchors[qid] {
                    Some(a) if a.meta == 0 => Target::L0(a.node),
                    Some(a) => Target::Frag { meta: a.meta, module: a.module, node: a.node },
                    // No anchor (tiny tree): start at the root.
                    None => Target::L0(l0_root),
                };
                QState {
                    q: queries[qid],
                    cands: Vec::new(),
                    block: CoordBlock::new(),
                    frontier: vec![(start, 0)],
                    ball: None,
                    visited: Vec::new(),
                }
            })
            .collect();
        self.explore(&mut states, k, coarse);

        // Step 3: sphere radius per query and the lowest trace node
        // containing it.
        let mut ball_states: Vec<QState<D>> = Vec::with_capacity(n);
        for (qid, st) in states.iter().enumerate() {
            let x = if st.cands.len() >= k { st.cands[k - 1].0 } else { u64::MAX };
            // Radius under the coarse metric guaranteed to contain the true
            // k nearest under the target metric.
            let radius = if x == u64::MAX {
                u64::MAX
            } else if two_stage {
                // Tighten first: evaluate the *fine* metric on the k coarse
                // candidates host-side (k cheap CPU multiplies). The k-th
                // fine distance r₂ upper-bounds the true k-th ℓ2 distance,
                // so the true kNN all lie within ℓ1 ≤ √D·r₂ ≤ √D·x.
                let mut fine: Vec<u64> = st
                    .cands
                    .iter()
                    .map(|(_, p)| {
                        self.meter.work(6 * D as u64);
                        metric.cmp_dist(&queries[qid], p)
                    })
                    .collect();
                fine.sort_unstable();
                let r2_sq = fine[k - 1];
                let r2 = isqrt_ceil(r2_sq);
                Metric::anchor_inflate(r2, D)
            } else {
                x
            };
            self.meter.work(30);
            let start =
                self.lowest_trace_node_containing(&s.hops[qid], &queries[qid], radius, coarse);
            ball_states.push(QState {
                q: queries[qid],
                cands: Vec::new(),
                block: CoordBlock::new(),
                frontier: vec![(start, 0)],
                ball: Some(radius),
                visited: Vec::new(),
            });
        }

        // Step 4: collect everything inside the spheres.
        self.explore(&mut ball_states, usize::MAX, coarse);

        // Step 5: fine filtering on the CPU (§6) — the SoA distance kernel
        // streams the collected lanes through a bounded max-heap, which is
        // observationally the old sort/dedup/truncate (same k results, same
        // (distance, coords) order, duplicates dropped). One aggregated
        // charge replaces the per-candidate charges: same total.
        let _span = pim_obs::span("fine_filter");
        let mut out = Vec::with_capacity(n);
        for st in ball_states {
            self.meter.work(6 * D as u64 * st.block.len() as u64);
            out.push(fine_select(&st.block, &st.q, metric, k));
        }
        out
    }

    /// Finds the deepest node on the query's (meta-granularity) trace whose
    /// box contains the ball of comparable radius `radius` around `q`; the
    /// trace is the host-visible L0 path plus the hop chain.
    fn lowest_trace_node_containing(
        &mut self,
        hops: &[RemoteRef<D>],
        q: &Point<D>,
        radius: u64,
        metric: Metric,
    ) -> Target<D> {
        // kNN on an empty tree returns before reaching this step; the hop
        // fallback keeps the path structurally panic-free regardless.
        let Some(l0) = self.l0.as_ref() else {
            return match hops.first() {
                Some(r) => Target::Frag { meta: r.meta, module: r.module, node: u32::MAX },
                None => Target::L0(u32::MAX),
            };
        };
        let mut best = Target::L0(l0.root);
        if radius == u64::MAX {
            return best;
        }
        // Axis half-width of the ball's bounding box.
        let hw = match metric {
            Metric::L2 => (radius as f64).sqrt().ceil() as u64,
            _ => radius,
        };
        let m = pim_geom::max_coord_for_dim(D) as i64;
        let lo = Point::new(q.coords.map(|c| (c as i64 - hw as i64).clamp(0, m) as u32));
        let hi = Point::new(q.coords.map(|c| (c as i64 + hw as i64).clamp(0, m) as u32));
        let ball_box = Aabb::new(lo, hi);
        // Clipping to the grid is safe: no point lies outside it.
        let contains = |p: &Prefix<D>| p.to_box().contains_box(&ball_box);

        // Descend the L0 path.
        let key = pim_zorder::ZKey::<D>::encode(q);
        let mut cur = l0.root;
        loop {
            self.meter.work(12);
            let node = l0.node(cur);
            if !node.prefix.covers(key) {
                break;
            }
            if contains(&node.prefix) {
                best = Target::L0(cur);
            }
            match &node.kind {
                crate::frag::BKind::Internal { left, right } => {
                    let side = node.prefix.side_of(key);
                    let child = if side == 0 { left } else { right };
                    match child {
                        crate::frag::ChildRef::Local(c) => cur = *c,
                        crate::frag::ChildRef::Remote(_) => break,
                    }
                }
                _ => break,
            }
        }
        // Then the hop chain (fragment roots).
        for r in hops {
            self.meter.work(12);
            if contains(&r.prefix) {
                best = Target::Frag { meta: r.meta, module: r.module, node: u32::MAX };
            }
        }
        best
    }

    /// The shared push-pull exploration engine (steps 2 and 4). Processes
    /// every query's frontier to exhaustion, using the host for L0 and
    /// pulled fragments and PIM rounds for the rest.
    fn explore(&mut self, states: &mut [QState<D>], k: usize, metric: Metric) {
        let mut rounds = 0;
        loop {
            rounds += 1;
            assert!(rounds < MAX_ROUNDS, "kNN exploration failed to converge");

            // Host phase: L0 targets.
            for st in states.iter_mut() {
                let mut rest: Vec<(Target<D>, u64)> = Vec::new();
                let frontier = std::mem::take(&mut st.frontier);
                for (t, lb) in frontier {
                    if lb > st.bound(k) {
                        continue;
                    }
                    match t {
                        Target::L0(node) => {
                            // No L0 (empty tree): nothing to visit there.
                            let Some(l0) = self.l0.as_ref() else { continue };
                            let mut sink = Self::l0_sink(&mut self.meter);
                            let mut remote = Vec::new();
                            match st.ball {
                                Some(r) => l0.local_ball(
                                    node,
                                    &st.q,
                                    r,
                                    metric,
                                    &mut st.block,
                                    &mut remote,
                                    &mut sink,
                                ),
                                None => l0.local_knn(
                                    node,
                                    &st.q,
                                    k,
                                    metric,
                                    &mut st.cands,
                                    &mut remote,
                                    &mut sink,
                                ),
                            }
                            for (r, d) in remote {
                                rest.push((
                                    Target::Frag { meta: r.meta, module: r.module, node: u32::MAX },
                                    d,
                                ));
                            }
                        }
                        other => rest.push((other, lb)),
                    }
                }
                st.frontier = rest;
            }

            // Dedup frontiers (multiple stubs/refs may name the same
            // target; keep the smallest lower bound) and drop targets whose
            // masters were already covered.
            for st in states.iter_mut() {
                st.frontier.sort_unstable_by_key(|(t, d)| (frontier_key(t), *d));
                st.frontier.dedup_by_key(|(t, _)| frontier_key(t));
                let visited = std::mem::take(&mut st.visited);
                st.frontier.retain(|(t, _)| match t {
                    Target::Frag { meta, .. } => !visited.contains(meta),
                    Target::L0(_) => true,
                });
                st.visited = visited;
            }

            // Gather fragment demand.
            let mut demand: FxHashMap<MetaId, u64> = FxHashMap::default();
            let mut any = false;
            for st in states.iter() {
                for (t, lb) in &st.frontier {
                    if *lb > st.bound(k) {
                        continue;
                    }
                    if let Target::Frag { meta, .. } = t {
                        *demand.entry(*meta).or_insert(0) += 1;
                        any = true;
                    }
                }
            }
            if !any {
                return;
            }

            // Pull phase.
            let to_pull = self.pull_candidates(&demand);
            let pulled = if to_pull.is_empty() {
                FxHashMap::default()
            } else {
                self.pull_fragments(&to_pull)
            };
            if !pulled.is_empty() {
                for st in states.iter_mut() {
                    let frontier = std::mem::take(&mut st.frontier);
                    let mut rest = Vec::new();
                    for (t, lb) in frontier {
                        let Target::Frag { meta, node, .. } = t else {
                            rest.push((t, lb));
                            continue;
                        };
                        let Some((frag, addr)) = pulled.get(&meta) else {
                            rest.push((t, lb));
                            continue;
                        };
                        if lb > st.bound(k) || st.visited.contains(&meta) {
                            continue;
                        }
                        st.visited.push(meta);
                        let start = if node == u32::MAX { frag.root } else { node };
                        let mut sink = HostSink { meter: &mut self.meter, base_addr: *addr };
                        let mut remote = Vec::new();
                        match st.ball {
                            Some(r) => frag.local_ball(
                                start,
                                &st.q,
                                r,
                                metric,
                                &mut st.block,
                                &mut remote,
                                &mut sink,
                            ),
                            None => frag.local_knn(
                                start,
                                &st.q,
                                k,
                                metric,
                                &mut st.cands,
                                &mut remote,
                                &mut sink,
                            ),
                        }
                        for (r, d) in remote {
                            rest.push((
                                Target::Frag { meta: r.meta, module: r.module, node: u32::MAX },
                                d,
                            ));
                        }
                    }
                    st.frontier = rest;
                }
                // Newly exposed targets may themselves be pulled/host-local:
                // loop back to the host phase.
                continue;
            }

            // Push phase.
            let mut tasks: Vec<Vec<KnnTask<D>>> = self.task_matrix();
            for (qid, st) in states.iter_mut().enumerate() {
                let bound = st.bound(k);
                let frontier = std::mem::take(&mut st.frontier);
                for (t, lb) in frontier {
                    if lb > bound {
                        continue;
                    }
                    let Target::Frag { meta, module, node } = t else { unreachable!() };
                    if st.visited.contains(&meta) {
                        continue;
                    }
                    // Directory-authoritative routing (the frontier ref's
                    // module hint goes stale across a recovery migration).
                    let module = self.dir.metas.get(&meta).map_or(module, |e| e.module);
                    tasks[module as usize].push(KnnTask {
                        qid: qid as u32,
                        meta,
                        node,
                        q: st.q,
                        k: k.min(u32::MAX as usize) as u32,
                        bound,
                        metric,
                        ball: st.ball.is_some(),
                    });
                }
            }
            let replies: Vec<Vec<KnnReply<D>>> =
                self.robust_round(tasks, |_, m, ctx, t| handle_knn(m, ctx, t));
            for reply in replies.into_iter().flatten() {
                let st = &mut states[reply.qid as usize];
                for m in reply.covered {
                    if !st.visited.contains(&m) {
                        st.visited.push(m);
                    }
                }
                for c in reply.cands {
                    match st.ball {
                        Some(r) => {
                            if c.0 <= r {
                                self.meter.work(8);
                                st.block.push(&c.1);
                            }
                        }
                        None => {
                            self.meter.work(30);
                            let mut sink = Self::l0_sink(&mut self.meter);
                            push_candidate(&mut st.cands, k, c, &mut sink);
                        }
                    }
                }
                for (r, d) in reply.frontier {
                    st.frontier
                        .push((Target::Frag { meta: r.meta, module: r.module, node: u32::MAX }, d));
                }
            }
        }
    }
}

/// Smallest `r` with `r² ≥ v` (exact integer ceiling square root).
fn isqrt_ceil(v: u64) -> u64 {
    let mut r = (v as f64).sqrt().ceil() as u64;
    while (r as u128) * (r as u128) < v as u128 {
        r += 1;
    }
    while r > 0 && ((r - 1) as u128) * ((r - 1) as u128) >= v as u128 {
        r -= 1;
    }
    r
}

/// Dedup key for frontier targets.
fn frontier_key<const D: usize>(t: &Target<D>) -> (u8, u64, u32) {
    match t {
        Target::L0(n) => (0, 0, *n),
        Target::Frag { meta, node, .. } => (1, *meta, *node),
    }
}

#[cfg(test)]
mod tests {
    use crate::config::PimZdConfig;
    use crate::host::PimZdTree;
    use pim_geom::{Metric, Point};
    use pim_sim::MachineConfig;
    use pim_workloads::uniform;

    fn brute(data: &[Point<3>], q: &Point<3>, k: usize, metric: Metric) -> Vec<(u64, Point<3>)> {
        let mut all: Vec<(u64, Point<3>)> =
            data.iter().map(|p| (metric.cmp_dist(q, p), *p)).collect();
        all.sort_unstable_by_key(|(d, p)| (*d, p.coords));
        all.dedup();
        all.truncate(k);
        all
    }

    #[test]
    fn knn_matches_brute_force_throughput_mode() {
        let pts = uniform::<3>(4_000, 1);
        let cfg = PimZdConfig::throughput_optimized(4_000, 16);
        let mut t = PimZdTree::build(&pts, cfg, MachineConfig::with_modules(16));
        let queries: Vec<Point<3>> = pts.iter().step_by(200).copied().collect();
        for k in [1usize, 5, 20] {
            let got = t.batch_knn(&queries, k, Metric::L2);
            for (i, q) in queries.iter().enumerate() {
                assert_eq!(got[i], brute(&pts, q, k, Metric::L2), "q#{i} k={k}");
            }
        }
    }

    #[test]
    fn knn_matches_brute_force_skew_mode() {
        let pts = uniform::<3>(6_000, 2);
        let cfg = PimZdConfig::skew_resistant(16);
        let mut t = PimZdTree::build(&pts, cfg, MachineConfig::with_modules(16));
        let queries: Vec<Point<3>> = uniform::<3>(10, 3);
        let got = t.batch_knn(&queries, 10, Metric::L2);
        for (i, q) in queries.iter().enumerate() {
            assert_eq!(got[i], brute(&pts, q, 10, Metric::L2), "q#{i}");
        }
    }

    #[test]
    fn knn_l1_metric_single_stage() {
        let pts = uniform::<3>(2_000, 4);
        let cfg = PimZdConfig::throughput_optimized(2_000, 8);
        let mut t = PimZdTree::build(&pts, cfg, MachineConfig::with_modules(8));
        let q = pts[17];
        let got = t.batch_knn(&[q], 7, Metric::L1);
        assert_eq!(got[0], brute(&pts, &q, 7, Metric::L1));
    }

    #[test]
    fn knn_without_coarse_fine_still_exact() {
        let pts = uniform::<3>(2_000, 5);
        let mut cfg = PimZdConfig::throughput_optimized(2_000, 8);
        cfg.toggles.coarse_fine_knn = false;
        let mut t = PimZdTree::build(&pts, cfg, MachineConfig::with_modules(8));
        let q = pts[99];
        let got = t.batch_knn(&[q], 5, Metric::L2);
        assert_eq!(got[0], brute(&pts, &q, 5, Metric::L2));
    }

    #[test]
    fn knn_k_exceeding_n_returns_everything() {
        let pts = uniform::<3>(50, 6);
        let cfg = PimZdConfig::throughput_optimized(50, 4);
        let mut t = PimZdTree::build(&pts, cfg, MachineConfig::with_modules(4));
        let got = t.batch_knn(&[pts[0]], 100, Metric::L2);
        assert_eq!(got[0].len(), 50);
    }
}
