//! Write-ahead log of applied mutation batches.
//!
//! Durability is a two-piece contract (see ARCHITECTURE.md §"Durability"):
//! a checkpoint captures the full host state at some epoch, and this log
//! records every mutation batch applied since, *before* it is applied.
//! Recovery is then "restore the checkpoint, replay every logged batch with
//! a later epoch" — and because the index is deterministic, the replayed
//! batches reproduce the original run's journals and metrics byte-for-byte.
//!
//! ## File layout
//!
//! ```text
//! header:  magic "PZDWAL01" (8) | version u32 | dims u32
//! record:  len u32 | crc u64 | payload (len bytes)
//! payload: epoch u64 | op u8 | n u32 | n × D × coord u32
//! ```
//!
//! All integers little-endian (the [`Enc`]/[`Dec`] codec). `crc` is
//! [`checksum_bytes`] over the payload under a fixed WAL key; the checksum is
//! length-seeded, so a record whose `len` field was damaged fails its crc
//! too. `epoch` is the epoch the batch *produces* (the pre-batch epoch + 1),
//! which is what lets replay skip batches already inside a checkpoint.
//!
//! ## Torn tails vs corruption
//!
//! A host crash can tear the last record (the process died mid-`write`).
//! [`WalReadMode::Recovery`] therefore treats an *incomplete* trailing
//! record as the end of the log and reports the consistent byte length so
//! the recovery path can truncate the tear before appending again. A
//! *complete* record that fails its crc is never a tear — it is damage to
//! acknowledged data — and is a hard [`DurabilityError::Corrupt`] in both
//! modes. [`WalReadMode::Strict`] (integrity audits, tests) rejects even
//! the torn tail.

use crate::checkpoint::DurabilityError;
use pim_geom::Point;
use pim_sim::{checksum_bytes, Dec, Enc};
use std::io::{Read, Seek, Write};
use std::path::{Path, PathBuf};

/// WAL file magic.
pub const WAL_MAGIC: [u8; 8] = *b"PZDWAL01";
/// Current (only) WAL format version.
pub const WAL_VERSION: u32 = 1;
/// Keyed-checksum domain for WAL record crcs.
const WAL_KEY: u64 = 0x5a44_5741_4c4b_3159; // "ZDWALK1Y"
/// Bytes of the file header.
const WAL_HEADER_BYTES: usize = 16;
/// Bytes of a record frame before its payload (`len u32 | crc u64`).
const WAL_FRAME_BYTES: usize = 12;
/// Artifact tag used in [`DurabilityError`]s from this module.
const ARTIFACT: &str = "wal";

/// What a logged batch did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WalOp {
    /// `batch_insert`.
    Insert,
    /// `batch_delete`.
    Delete,
}

impl WalOp {
    fn code(self) -> u8 {
        match self {
            WalOp::Insert => 0,
            WalOp::Delete => 1,
        }
    }

    fn from_code(c: u8) -> Option<Self> {
        match c {
            0 => Some(WalOp::Insert),
            1 => Some(WalOp::Delete),
            _ => None,
        }
    }
}

/// One decoded WAL record: a mutation batch and the epoch it produced.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WalRecord<const D: usize> {
    /// Epoch after applying this batch (pre-batch epoch + 1).
    pub epoch: u64,
    /// Insert or delete.
    pub op: WalOp,
    /// The batch's points, in submission order.
    pub points: Vec<Point<D>>,
}

/// How strictly to treat an incomplete trailing record (see module docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WalReadMode {
    /// Tolerate a torn tail: stop at the last complete record and report
    /// the consistent length (crash recovery).
    Recovery,
    /// Reject any trailing garbage (integrity audits).
    Strict,
}

/// An open write-ahead log. Attach to a tree via
/// [`PimZdTree::set_wal`](crate::PimZdTree::set_wal); every subsequent
/// mutation batch is appended (and synced) before it is applied.
#[derive(Debug)]
pub struct Wal {
    file: std::fs::File,
    path: PathBuf,
}

impl Wal {
    /// Creates a fresh (empty) log at `path`, truncating any existing file.
    /// `D` is recorded in the header; replay rejects dimension mismatches.
    pub fn create<const D: usize>(path: impl AsRef<Path>) -> Result<Self, DurabilityError> {
        let path = path.as_ref().to_path_buf();
        let mut file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        let mut e = Enc::new();
        e.bytes(&WAL_MAGIC);
        e.u32(WAL_VERSION);
        e.u32(D as u32);
        file.write_all(e.as_slice())?;
        file.sync_data()?;
        Ok(Self { file, path })
    }

    /// Opens an existing log for appending, validating its header against
    /// `D`. The caller is responsible for having truncated any torn tail
    /// first (the recovery path does; see
    /// [`PimZdTree::recover`](crate::PimZdTree::recover)).
    pub fn open_for_append<const D: usize>(
        path: impl AsRef<Path>,
    ) -> Result<Self, DurabilityError> {
        let path = path.as_ref().to_path_buf();
        let mut file = std::fs::OpenOptions::new().read(true).write(true).open(&path)?;
        let mut header = [0u8; WAL_HEADER_BYTES];
        file.read_exact(&mut header)
            .map_err(|_| DurabilityError::Truncated { artifact: ARTIFACT, offset: 0 })?;
        validate_header::<D>(&header)?;
        file.seek(std::io::SeekFrom::End(0))?;
        Ok(Self { file, path })
    }

    /// The log's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends (and syncs) one batch. `epoch` is the epoch the batch will
    /// produce once applied.
    pub fn append<const D: usize>(
        &mut self,
        epoch: u64,
        op: WalOp,
        points: &[Point<D>],
    ) -> Result<(), DurabilityError> {
        let mut p = Enc::new();
        p.u64(epoch);
        p.u8(op.code());
        p.u32(points.len() as u32);
        for pt in points {
            for &c in &pt.coords {
                p.u32(c);
            }
        }
        let payload = p.into_bytes();
        let mut frame = Enc::new();
        frame.u32(payload.len() as u32);
        frame.u64(checksum_bytes(WAL_KEY, &payload));
        frame.bytes(&payload);
        self.file.write_all(frame.as_slice())?;
        self.file.sync_data()?;
        Ok(())
    }
}

fn validate_header<const D: usize>(header: &[u8]) -> Result<(), DurabilityError> {
    let mut d = Dec::new(header);
    let magic =
        d.bytes(8).map_err(|_| DurabilityError::Truncated { artifact: ARTIFACT, offset: 0 })?;
    if magic != WAL_MAGIC.as_slice() {
        return Err(DurabilityError::BadMagic { artifact: ARTIFACT });
    }
    let version =
        d.u32().map_err(|_| DurabilityError::Truncated { artifact: ARTIFACT, offset: 8 })?;
    if version != WAL_VERSION {
        return Err(DurabilityError::BadVersion {
            artifact: ARTIFACT,
            found: version,
            supported: WAL_VERSION,
        });
    }
    let dims =
        d.u32().map_err(|_| DurabilityError::Truncated { artifact: ARTIFACT, offset: 12 })?;
    if dims != D as u32 {
        return Err(DurabilityError::DimMismatch {
            artifact: ARTIFACT,
            found: dims,
            expected: D as u32,
        });
    }
    Ok(())
}

/// Reads and decodes a WAL file. Returns the records and the *consistent
/// length* — the byte offset just past the last complete record, which is
/// where recovery truncates before appending again.
pub fn read_wal<const D: usize>(
    path: impl AsRef<Path>,
    mode: WalReadMode,
) -> Result<(Vec<WalRecord<D>>, u64), DurabilityError> {
    let bytes = std::fs::read(path)?;
    let (records, consistent) = decode_wal::<D>(&bytes, mode)?;
    Ok((records, consistent as u64))
}

/// Decodes a WAL image from memory (see [`read_wal`]). The second element
/// of the result is the consistent byte length.
pub fn decode_wal<const D: usize>(
    bytes: &[u8],
    mode: WalReadMode,
) -> Result<(Vec<WalRecord<D>>, usize), DurabilityError> {
    if bytes.len() < WAL_HEADER_BYTES {
        return Err(DurabilityError::Truncated { artifact: ARTIFACT, offset: bytes.len() });
    }
    validate_header::<D>(&bytes[..WAL_HEADER_BYTES])?;
    let mut records = Vec::new();
    let mut pos = WAL_HEADER_BYTES;
    loop {
        let remaining = bytes.len() - pos;
        if remaining == 0 {
            break;
        }
        if remaining < WAL_FRAME_BYTES {
            match mode {
                WalReadMode::Recovery => break,
                WalReadMode::Strict => {
                    return Err(DurabilityError::Truncated { artifact: ARTIFACT, offset: pos })
                }
            }
        }
        let mut frame = Dec::new(&bytes[pos..pos + WAL_FRAME_BYTES]);
        let len = frame.u32().expect("frame slice is 12 bytes") as usize;
        let crc = frame.u64().expect("frame slice is 12 bytes");
        if remaining - WAL_FRAME_BYTES < len {
            match mode {
                WalReadMode::Recovery => break,
                WalReadMode::Strict => {
                    return Err(DurabilityError::Truncated { artifact: ARTIFACT, offset: pos })
                }
            }
        }
        let payload = &bytes[pos + WAL_FRAME_BYTES..pos + WAL_FRAME_BYTES + len];
        // A complete record with a bad crc is damage to acknowledged data,
        // never a torn tail — hard error in both modes.
        if checksum_bytes(WAL_KEY, payload) != crc {
            return Err(DurabilityError::Corrupt {
                artifact: ARTIFACT,
                detail: format!("record at offset {pos} fails its checksum"),
            });
        }
        records.push(decode_payload::<D>(payload, pos)?);
        pos += WAL_FRAME_BYTES + len;
    }
    Ok((records, pos))
}

fn decode_payload<const D: usize>(
    payload: &[u8],
    offset: usize,
) -> Result<WalRecord<D>, DurabilityError> {
    let corrupt = |detail: String| DurabilityError::Corrupt { artifact: ARTIFACT, detail };
    let short = |e: pim_sim::ShortRead| DurabilityError::Corrupt {
        artifact: ARTIFACT,
        detail: format!("record at offset {offset}: payload short read ({e})"),
    };
    let mut d = Dec::new(payload);
    let epoch = d.u64().map_err(short)?;
    let op_code = d.u8().map_err(short)?;
    let op = WalOp::from_code(op_code)
        .ok_or_else(|| corrupt(format!("record at offset {offset}: unknown op code {op_code}")))?;
    let n = d.u32().map_err(short)? as usize;
    // The payload length is implied exactly by `n`; anything else means the
    // record was damaged in a way the frame length hid.
    if d.remaining() != n * 4 * D {
        return Err(corrupt(format!(
            "record at offset {offset}: {} payload bytes for {n} {D}-dim points",
            d.remaining()
        )));
    }
    let mut points = Vec::with_capacity(n);
    for _ in 0..n {
        let mut coords = [0u32; D];
        for c in coords.iter_mut() {
            *c = d.u32().map_err(short)?;
        }
        points.push(Point::new(coords));
    }
    Ok(WalRecord { epoch, op, points })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(vals: &[[u32; 2]]) -> Vec<Point<2>> {
        vals.iter().map(|&c| Point::new(c)).collect()
    }

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("pim_zd_wal_test_{name}_{}", std::process::id()));
        p
    }

    #[test]
    fn append_and_read_roundtrip() {
        let path = tmp("roundtrip");
        let mut wal = Wal::create::<2>(&path).unwrap();
        wal.append(1, WalOp::Insert, &pts(&[[1, 2], [3, 4]])).unwrap();
        wal.append(2, WalOp::Delete, &pts(&[[1, 2]])).unwrap();
        wal.append::<2>(3, WalOp::Insert, &[]).unwrap();
        let (recs, consistent) = read_wal::<2>(&path, WalReadMode::Strict).unwrap();
        assert_eq!(consistent, std::fs::metadata(&path).unwrap().len());
        assert_eq!(recs.len(), 3);
        assert_eq!(
            recs[0],
            WalRecord { epoch: 1, op: WalOp::Insert, points: pts(&[[1, 2], [3, 4]]) }
        );
        assert_eq!(recs[1], WalRecord { epoch: 2, op: WalOp::Delete, points: pts(&[[1, 2]]) });
        assert_eq!(recs[2].points, Vec::<Point<2>>::new());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_recovered_but_rejected_strictly() {
        let path = tmp("torn");
        let mut wal = Wal::create::<2>(&path).unwrap();
        wal.append(1, WalOp::Insert, &pts(&[[7, 8]])).unwrap();
        let full = std::fs::metadata(&path).unwrap().len();
        wal.append(2, WalOp::Insert, &pts(&[[9, 10]])).unwrap();
        drop(wal);
        // Tear the second record mid-payload.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        let (recs, consistent) = read_wal::<2>(&path, WalReadMode::Recovery).unwrap();
        assert_eq!(recs.len(), 1, "torn record dropped");
        assert_eq!(consistent, full, "consistent point is the last complete record");
        assert!(matches!(
            read_wal::<2>(&path, WalReadMode::Strict),
            Err(DurabilityError::Truncated { artifact: "wal", .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn complete_record_with_bad_crc_is_corrupt_in_both_modes() {
        let path = tmp("crc");
        let mut wal = Wal::create::<2>(&path).unwrap();
        wal.append(1, WalOp::Insert, &pts(&[[7, 8]])).unwrap();
        drop(wal);
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01; // flip a payload bit; the record stays complete
        std::fs::write(&path, &bytes).unwrap();
        for mode in [WalReadMode::Recovery, WalReadMode::Strict] {
            assert!(matches!(
                read_wal::<2>(&path, mode),
                Err(DurabilityError::Corrupt { artifact: "wal", .. })
            ));
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn header_mismatches_are_typed() {
        let path = tmp("header");
        Wal::create::<2>(&path).unwrap();
        let good = std::fs::read(&path).unwrap();

        let mut bumped = good.clone();
        bumped[8] = 99; // version low byte
        std::fs::write(&path, &bumped).unwrap();
        assert!(matches!(
            read_wal::<2>(&path, WalReadMode::Recovery),
            Err(DurabilityError::BadVersion { artifact: "wal", found: 99, supported: 1 })
        ));

        let mut wrong_magic = good.clone();
        wrong_magic[0] = b'X';
        std::fs::write(&path, &wrong_magic).unwrap();
        assert!(matches!(
            read_wal::<2>(&path, WalReadMode::Recovery),
            Err(DurabilityError::BadMagic { artifact: "wal" })
        ));

        std::fs::write(&path, &good).unwrap();
        assert!(matches!(
            read_wal::<3>(&path, WalReadMode::Recovery),
            Err(DurabilityError::DimMismatch { artifact: "wal", found: 2, expected: 3 })
        ));
        std::fs::remove_file(&path).ok();
    }
}
